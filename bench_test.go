// Package digs_test holds the benchmark harness that regenerates every
// table and figure of the paper's evaluation (go test -bench=. -benchmem).
// Each benchmark runs a reduced-size campaign of the corresponding
// experiment and reports the figure's headline numbers as custom metrics,
// so a bench run doubles as a regression check on the reproduced results.
// The digs-bench command runs the same experiments at full size.
package digs_test

import (
	"testing"
	"time"

	"github.com/digs-net/digs/internal/core"
	"github.com/digs-net/digs/internal/experiments"
	"github.com/digs-net/digs/internal/mac"
	"github.com/digs-net/digs/internal/metrics"
	"github.com/digs-net/digs/internal/sim"
	"github.com/digs-net/digs/internal/topology"
	"github.com/digs-net/digs/internal/whart"
)

// BenchmarkFig03NetworkManagerUpdate regenerates Figure 3: the centralized
// WirelessHART Network Manager's update cycle on all four deployments.
func BenchmarkFig03NetworkManagerUpdate(b *testing.B) {
	var fullA, halfA time.Duration
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunFig3()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			switch r.Topology {
			case "testbed-a":
				fullA = r.Total
			case "half-testbed-a":
				halfA = r.Total
			}
		}
	}
	b.ReportMetric(fullA.Seconds(), "fullA-update-s")
	b.ReportMetric(halfA.Seconds(), "halfA-update-s")
}

// BenchmarkFig04OrchestraRepairTime regenerates Figure 4: Orchestra's
// repair time when jammers switch on.
func BenchmarkFig04OrchestraRepairTime(b *testing.B) {
	var median float64
	for i := 0; i < b.N; i++ {
		opts := experiments.DefaultRepairOptions()
		opts.JammerCounts = []int{2}
		opts.Repetitions = 2
		rs, err := experiments.RunFig4And5(opts)
		if err != nil {
			b.Fatal(err)
		}
		median = metrics.Quantile(experiments.RepairTimesSeconds(rs), 0.5)
	}
	b.ReportMetric(median, "repair-median-s")
}

// BenchmarkFig05PDRDuringRepair regenerates Figure 5: flow PDR during the
// repair window per jammer count.
func BenchmarkFig05PDRDuringRepair(b *testing.B) {
	var median float64
	for i := 0; i < b.N; i++ {
		opts := experiments.DefaultRepairOptions()
		opts.JammerCounts = []int{3}
		opts.Repetitions = 1
		rs, err := experiments.RunFig4And5(opts)
		if err != nil {
			b.Fatal(err)
		}
		median = metrics.Quantile(rs[0].FlowPDRs, 0.5)
	}
	b.ReportMetric(median, "repair-pdr-median")
}

// interferenceBench shares the Figure 9 / Figure 10 harness.
func interferenceBench(b *testing.B, testbed string, dutyCycleMetric bool) {
	b.Helper()
	var dPDR, oPDR, dLat, oLat float64
	for i := 0; i < b.N; i++ {
		opts := experiments.DefaultInterferenceOptions(testbed)
		opts.FlowSets = 10
		res, err := experiments.RunInterference(opts)
		if err != nil {
			b.Fatal(err)
		}
		dPDR = metrics.Mean(experiments.PDRs(res.DiGS))
		oPDR = metrics.Mean(experiments.PDRs(res.Orchestra))
		dLat = metrics.Quantile(experiments.AllLatenciesMs(res.DiGS), 0.5)
		oLat = metrics.Quantile(experiments.AllLatenciesMs(res.Orchestra), 0.5)
	}
	b.ReportMetric(dPDR, "digs-pdr")
	b.ReportMetric(oPDR, "orchestra-pdr")
	b.ReportMetric(dLat, "digs-latency-ms")
	b.ReportMetric(oLat, "orchestra-latency-ms")
	_ = dutyCycleMetric
}

// BenchmarkFig09aPDRInterferenceA regenerates Figure 9(a)/(b)/(e):
// Testbed A under three WiFi jammers, both stacks.
func BenchmarkFig09aPDRInterferenceA(b *testing.B) {
	interferenceBench(b, "A", false)
}

// BenchmarkFig09fMicrobenchmark regenerates Figure 9(f): packet-level
// delivery around a jammer burst.
func BenchmarkFig09fMicrobenchmark(b *testing.B) {
	var delivered float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig9f(experiments.DiGS, 3)
		if err != nil {
			b.Fatal(err)
		}
		total, got := 0, 0
		for _, seqs := range res.Delivered {
			for _, ok := range seqs {
				total++
				if ok {
					got++
				}
			}
		}
		delivered = float64(got) / float64(total)
	}
	b.ReportMetric(delivered, "digs-burst-window-pdr")
}

// BenchmarkFig10TestbedB regenerates Figure 10: the Testbed B campaign.
func BenchmarkFig10TestbedB(b *testing.B) {
	interferenceBench(b, "B", false)
}

// BenchmarkFig11aNodeFailurePDR regenerates Figure 11(a)/(c): per-flow PDR
// and power with routers killed in turn.
func BenchmarkFig11aNodeFailurePDR(b *testing.B) {
	var dPDR, oPDR float64
	for i := 0; i < b.N; i++ {
		opts := experiments.DefaultFailureOptions()
		opts.Repetitions = 2
		digs, orch, err := experiments.RunFig11(opts)
		if err != nil {
			b.Fatal(err)
		}
		dPDR = metrics.Mean(digs.FlowPDRs)
		oPDR = metrics.Mean(orch.FlowPDRs)
	}
	b.ReportMetric(dPDR, "digs-pdr")
	b.ReportMetric(oPDR, "orchestra-pdr")
}

// BenchmarkFig11bFailureMicrobenchmark regenerates Figure 11(b): the
// packet-level record around a router death.
func BenchmarkFig11bFailureMicrobenchmark(b *testing.B) {
	var delivered float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig11b(experiments.DiGS, 11)
		if err != nil {
			b.Fatal(err)
		}
		total, got := 0, 0
		for _, seqs := range res.Delivered {
			for _, ok := range seqs {
				total++
				if ok {
					got++
				}
			}
		}
		delivered = float64(got) / float64(total)
	}
	b.ReportMetric(delivered, "digs-failure-window-pdr")
}

// BenchmarkFig12LargeScale regenerates Figure 12: the 150-node simulation
// study with periodic disturbers.
func BenchmarkFig12LargeScale(b *testing.B) {
	var dPDR, oPDR float64
	for i := 0; i < b.N; i++ {
		opts := experiments.DefaultLargeScaleOptions()
		opts.FlowSets = 4
		res, err := experiments.RunFig12(opts)
		if err != nil {
			b.Fatal(err)
		}
		dPDR = metrics.Mean(experiments.PDRs(res.DiGS))
		oPDR = metrics.Mean(experiments.PDRs(res.Orchestra))
	}
	b.ReportMetric(dPDR, "digs-pdr")
	b.ReportMetric(oPDR, "orchestra-pdr")
}

// BenchmarkFig13Initialization regenerates Figure 13: joining times under
// both stacks.
func BenchmarkFig13Initialization(b *testing.B) {
	var dMean, oMean float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig13(5)
		if err != nil {
			b.Fatal(err)
		}
		sum := func(ds []time.Duration) float64 {
			t := 0.0
			for _, d := range ds {
				t += d.Seconds()
			}
			return t / float64(len(ds))
		}
		dMean, oMean = sum(res.DiGS), sum(res.Orchestra)
	}
	b.ReportMetric(dMean, "digs-join-mean-s")
	b.ReportMetric(oMean, "orchestra-join-mean-s")
}

// BenchmarkEq5Contention exercises the Section VI-B analysis formulas.
func BenchmarkEq5Contention(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += core.ContentionProbability(0.5, 50, 47)
		sink += core.ExpectedAppSkip(core.DefaultConfig(2))
	}
	if sink == 0 {
		b.Fatal("degenerate analysis results")
	}
}

// --- Ablations: the design choices DESIGN.md section 5 calls out. ---

// BenchmarkAblationSingleVsDualParent isolates graph routing's route
// diversity where it matters most: DiGS with the backup route disabled vs
// full DiGS, with routers killed in turn (the Figure 11 scenario).
func BenchmarkAblationSingleVsDualParent(b *testing.B) {
	var with, without float64
	for i := 0; i < b.N; i++ {
		opts := experiments.DefaultFailureOptions()
		opts.Repetitions = 3
		full, err := experiments.RunFailureSingle(experiments.DiGS, opts)
		if err != nil {
			b.Fatal(err)
		}
		cfg := core.DefaultConfig(2)
		cfg.DisableBackup = true
		opts.DiGSConfig = &cfg
		single, err := experiments.RunFailureSingle(experiments.DiGS, opts)
		if err != nil {
			b.Fatal(err)
		}
		with = metrics.Mean(full.FlowPDRs)
		without = metrics.Mean(single.FlowPDRs)
	}
	b.ReportMetric(with, "dual-parent-pdr")
	b.ReportMetric(without, "single-parent-pdr")
}

// BenchmarkAblationWeightedETX isolates Eq. (1): the weighted-ETX
// advertisement vs a plain primary-path cost, under router failures
// (the weighted cost prices backup-path quality into route choice).
func BenchmarkAblationWeightedETX(b *testing.B) {
	var weighted, plain float64
	for i := 0; i < b.N; i++ {
		opts := experiments.DefaultFailureOptions()
		opts.Repetitions = 3
		full, err := experiments.RunFailureSingle(experiments.DiGS, opts)
		if err != nil {
			b.Fatal(err)
		}
		cfg := core.DefaultConfig(2)
		cfg.PlainETX = true
		opts.DiGSConfig = &cfg
		pl, err := experiments.RunFailureSingle(experiments.DiGS, opts)
		if err != nil {
			b.Fatal(err)
		}
		weighted = metrics.Mean(full.FlowPDRs)
		plain = metrics.Mean(pl.FlowPDRs)
	}
	b.ReportMetric(weighted, "weighted-etx-pdr")
	b.ReportMetric(plain, "plain-etx-pdr")
}

// BenchmarkAblationTrickle contrasts Trickle-paced join-in beacons against
// a fixed-minimum-interval beacon (no interval growth): control overhead
// in control transmissions per node per minute.
func BenchmarkAblationTrickle(b *testing.B) {
	var trickleTx, fixedTx float64
	for i := 0; i < b.N; i++ {
		trickleTx = controlTxRate(b, core.DefaultConfig(2))
		cfg := core.DefaultConfig(2)
		// Fixed 5 s beacon interval, no growth. (At Imin itself the
		// shared slot saturates and the network cannot even form — the
		// strongest possible argument for Trickle.)
		cfg.Trickle.IminSlots = 500
		cfg.Trickle.Doublings = 0
		fixedTx = controlTxRate(b, cfg)
	}
	b.ReportMetric(trickleTx, "trickle-ctrl-tx-per-node-min")
	b.ReportMetric(fixedTx, "fixed-ctrl-tx-per-node-min")
}

// BenchmarkCentralVsDistributedRoutes compares the centralized Network
// Manager's graph (global knowledge) with what DiGS builds distributedly:
// backup coverage of each.
func BenchmarkCentralVsDistributedRoutes(b *testing.B) {
	var central float64
	for i := 0; i < b.N; i++ {
		topo := topology.TestbedA()
		routes, err := whart.ComputeGraphRoutes(topo)
		if err != nil {
			b.Fatal(err)
		}
		central = routes.BackupCoverage(topo)
	}
	b.ReportMetric(central, "central-backup-coverage")
}

// controlTxRate converges a DiGS network with the given configuration and
// returns steady-state control transmissions per node per minute.
func controlTxRate(b *testing.B, cfg core.Config) float64 {
	b.Helper()
	topo := topology.TestbedA()
	nw := sim.NewNetwork(topo, 3)
	net, err := core.Build(nw, cfg, mac.DefaultConfig(), 3)
	if err != nil {
		b.Fatal(err)
	}
	if _, ok := nw.RunUntil(sim.SlotsFor(4*time.Minute), func() bool {
		return net.JoinedCount() == topo.N()
	}); !ok {
		b.Fatal("network did not converge")
	}
	nw.Run(sim.SlotsFor(time.Minute)) // settle
	before := int64(0)
	for i := 1; i <= topo.N(); i++ {
		before += net.Nodes[i].Stats().TxControl
	}
	const window = 3 * time.Minute
	nw.Run(sim.SlotsFor(window))
	after := int64(0)
	for i := 1; i <= topo.N(); i++ {
		after += net.Nodes[i].Stats().TxControl
	}
	return float64(after-before) / float64(topo.N()) / window.Minutes()
}

// BenchmarkWirelessHARTStaticVsFailure runs the executable centralized
// baseline through the node-failure scenario: with a static schedule the
// degradation is permanent (the Figure 3 motivation), in contrast to
// DiGS's distributed failover in BenchmarkFig11aNodeFailurePDR.
func BenchmarkWirelessHARTStaticVsFailure(b *testing.B) {
	var clean, failed float64
	for i := 0; i < b.N; i++ {
		var err error
		clean, failed, err = experiments.RunWhartFailure(3)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(clean, "whart-clean-pdr")
	b.ReportMetric(failed, "whart-failed-pdr")
}

// BenchmarkAblationAppFrameLength explores the latency/overhead trade the
// application slotframe length sets: shorter frames mean more transmit
// opportunities per second (lower latency) at more idle listening.
func BenchmarkAblationAppFrameLength(b *testing.B) {
	lengths := []int64{97, 151, 307}
	medians := make([]float64, len(lengths))
	pdrs := make([]float64, len(lengths))
	for i := 0; i < b.N; i++ {
		for li, l := range lengths {
			cfg := core.DefaultConfig(2)
			cfg.AppFrameLen = l
			opts := experiments.DefaultInterferenceOptions("A")
			opts.FlowSets = 6
			opts.DiGSConfig = &cfg
			rs, err := experiments.RunInterferenceSingle(experiments.DiGS, opts)
			if err != nil {
				b.Fatal(err)
			}
			medians[li] = metrics.Quantile(experiments.AllLatenciesMs(rs), 0.5)
			pdrs[li] = metrics.Mean(experiments.PDRs(rs))
		}
	}
	b.ReportMetric(medians[0], "latency-ms-L97")
	b.ReportMetric(medians[1], "latency-ms-L151")
	b.ReportMetric(medians[2], "latency-ms-L307")
	b.ReportMetric(pdrs[1], "pdr-L151")
}

// BenchmarkAblationAttempts varies A, the transmission attempts scheduled
// per packet per slotframe (Eq. 4): A=2 drops the backup attempt's
// redundancy budget, A=4 doubles the primary retries.
func BenchmarkAblationAttempts(b *testing.B) {
	attempts := []int{2, 3, 4}
	pdrs := make([]float64, len(attempts))
	for i := 0; i < b.N; i++ {
		for ai, a := range attempts {
			cfg := core.DefaultConfig(2)
			cfg.Attempts = a
			opts := experiments.DefaultInterferenceOptions("A")
			opts.FlowSets = 6
			opts.DiGSConfig = &cfg
			rs, err := experiments.RunInterferenceSingle(experiments.DiGS, opts)
			if err != nil {
				b.Fatal(err)
			}
			pdrs[ai] = metrics.Mean(experiments.PDRs(rs))
		}
	}
	b.ReportMetric(pdrs[0], "pdr-A2")
	b.ReportMetric(pdrs[1], "pdr-A3")
	b.ReportMetric(pdrs[2], "pdr-A4")
}
