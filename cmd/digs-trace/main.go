// Command digs-trace analyses a packet-lifecycle trace exported by
// digs-sim or digs-bench (-trace flag): it replays the JSONL event stream
// through the telemetry aggregator and prints per-hop latency breakdowns,
// drop-reason tables with per-node loss attribution, schedule-cell heatmap
// summaries and queue-depth histograms.
//
// Examples:
//
//	digs-sim -protocol digs -trace run.jsonl && digs-trace run.jsonl
//	digs-bench -fig 4 -trace fig4.jsonl && digs-trace -per-flow fig4.jsonl
//	digs-trace -frame 151 -top 5 run.jsonl
//	cat run.jsonl | digs-trace -
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"github.com/digs-net/digs/internal/phy"
	"github.com/digs-net/digs/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "digs-trace:", err)
		os.Exit(1)
	}
}

func run() error {
	frame := flag.Int64("frame", 151,
		"slotframe length cells are folded over (DiGS application slotframe: 151; 0 disables the cell summary)")
	top := flag.Int("top", 10, "rows to print in the hottest-cells and top-offenders tables")
	perFlow := flag.Bool("per-flow", false, "print the per-flow delivery table")
	flag.Parse()

	if flag.NArg() != 1 {
		return fmt.Errorf("usage: digs-trace [flags] <trace.jsonl | ->")
	}
	var r io.Reader
	if path := flag.Arg(0); path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}

	agg := telemetry.NewAggregate(*frame)
	if err := telemetry.Scan(r, func(ev telemetry.Event) error {
		agg.Record(ev)
		return nil
	}); err != nil {
		return err
	}
	report(os.Stdout, agg, *top, *perFlow)
	return nil
}

// slotMs converts a slot count to milliseconds.
func slotMs(slots int64) float64 {
	return float64(slots) * float64(phy.SlotDuration.Milliseconds())
}

func report(w io.Writer, agg *telemetry.Aggregate, top int, perFlow bool) {
	nodes := agg.NodesByID()
	var collisions int64
	for _, n := range nodes {
		collisions += n.Collisions
	}

	fmt.Fprintf(w, "=== trace summary ===\n")
	fmt.Fprintf(w, "events:        %d (%d jobs, %d nodes)\n", agg.Events(), agg.Jobs(), len(nodes))
	fmt.Fprintf(w, "packets:       %d generated, %d delivered, PDR %.3f\n",
		agg.Generated(), agg.Delivered(), agg.PDR())
	fmt.Fprintf(w, "collisions:    %d observed\n", collisions)
	fmt.Fprintf(w, "route changes: %d\n", agg.RouteChanges())
	// Traces written without -invariants carry no violation events, so this
	// line (absent from the golden files) only appears for monitored runs.
	if v, rp := agg.Violations(), agg.Repairs(); v > 0 || rp > 0 {
		fmt.Fprintf(w, "invariants:    %d violation(s), %d watchdog repair(s) (see digs-doctor)\n", v, rp)
	}

	if perFlow {
		fmt.Fprintf(w, "\n=== per-flow delivery ===\n")
		for _, r := range flowRows(agg) {
			fmt.Fprintf(w, "  job %2d flow %3d: %3d/%3d delivered  PDR %.3f\n",
				r.job, r.flow, r.got, r.sent, r.pdr)
		}
	}

	fmt.Fprintf(w, "\n=== per-hop latency (delivered packets) ===\n")
	rows := agg.HopLatencies()
	if len(rows) == 0 {
		fmt.Fprintf(w, "  (none delivered)\n")
	}
	for _, h := range rows {
		fmt.Fprintf(w, "  %d hop(s): %4d packets  median %6.0f ms  p90 %6.0f ms  max %6.0f ms\n",
			h.Hops, h.Count, slotMs(h.MedianASN), slotMs(h.P90ASN), slotMs(h.MaxASN))
	}

	fmt.Fprintf(w, "\n=== drops by reason ===\n")
	totals := agg.DropTotals()
	anyDrop := false
	for _, reason := range telemetry.DropReasons() {
		if totals[reason] == 0 {
			continue
		}
		anyDrop = true
		fmt.Fprintf(w, "  %-14s %6d\n", reason.String()+":", totals[reason])
	}
	if !anyDrop {
		fmt.Fprintf(w, "  (no drops)\n")
	} else if offenders := topOffenders(nodes, top); len(offenders) > 0 {
		fmt.Fprintf(w, "  top offender nodes:\n")
		for _, n := range offenders {
			var parts []string
			for _, reason := range telemetry.DropReasons() {
				if n.Drops[reason] > 0 {
					parts = append(parts, fmt.Sprintf("%s %d", reason, n.Drops[reason]))
				}
			}
			fmt.Fprintf(w, "    node %3d: %5d drops (%s)\n",
				n.Node, n.DropTotal(), strings.Join(parts, ", "))
		}
	}

	if agg.FrameLen > 0 {
		fmt.Fprintf(w, "\n=== hottest schedule cells (slotframe %d) ===\n", agg.FrameLen)
		cells := agg.HottestCells(top)
		if len(cells) == 0 {
			fmt.Fprintf(w, "  (no transmissions)\n")
		}
		for _, c := range cells {
			ackPct := 0.0
			if c.Tx > 0 {
				ackPct = 100 * float64(c.Acked) / float64(c.Tx)
			}
			fmt.Fprintf(w, "  cell (%3d, ch-off %2d): %6d tx  %5.1f%% acked  owner node %3d (%d tx-er(s))\n",
				c.Cell.Offset, c.Cell.ChOff, c.Tx, ackPct, c.Owner, c.Owners)
		}
	}

	fmt.Fprintf(w, "\n=== queue depth at enqueue ===\n")
	hist := agg.QueueHist()
	var histTotal, histMax int64
	last := 0
	for i, n := range hist {
		histTotal += n
		if n > histMax {
			histMax = n
		}
		if n > 0 {
			last = i
		}
	}
	if histTotal == 0 {
		fmt.Fprintf(w, "  (no enqueues)\n")
		return
	}
	for i := 0; i <= last; i++ {
		bar := strings.Repeat("#", scaleBar(hist[i], histMax, 40))
		label := fmt.Sprintf("%d", i)
		if i == telemetry.QueueHistBuckets-1 {
			label = fmt.Sprintf(">=%d", i)
		}
		fmt.Fprintf(w, "  depth %4s: %7d %s\n", label, hist[i], bar)
	}
}

// scaleBar sizes a histogram bar to at most width characters, keeping
// non-zero counts visible.
func scaleBar(n, max int64, width int) int {
	if n <= 0 || max <= 0 {
		return 0
	}
	w := int(n * int64(width) / max)
	if w == 0 {
		w = 1
	}
	return w
}

// flowRow is one line of the per-flow delivery table.
type flowRow struct {
	job       int32
	flow      uint16
	sent, got int
	pdr       float64
}

// flowRows folds spans into per-(job, flow) delivery counts, sorted for
// deterministic output.
func flowRows(agg *telemetry.Aggregate) []flowRow {
	type key struct {
		job  int32
		flow uint16
	}
	acc := make(map[key]*flowRow)
	for k, s := range agg.Spans() {
		kk := key{k.Job, k.Flow}
		r := acc[kk]
		if r == nil {
			r = &flowRow{job: k.Job, flow: k.Flow}
			acc[kk] = r
		}
		r.sent++
		if s.HasDelivered {
			r.got++
		}
	}
	out := make([]flowRow, 0, len(acc))
	for _, r := range acc {
		if r.sent > 0 {
			r.pdr = float64(r.got) / float64(r.sent)
		}
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].job != out[j].job {
			return out[i].job < out[j].job
		}
		return out[i].flow < out[j].flow
	})
	return out
}

// topOffenders returns the nodes with the most drops, sorted by drop count
// descending with node-ID tie-breaks.
func topOffenders(nodes []*telemetry.NodeStats, top int) []*telemetry.NodeStats {
	var out []*telemetry.NodeStats
	for _, n := range nodes {
		if n.DropTotal() > 0 {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		di, dj := out[i].DropTotal(), out[j].DropTotal()
		if di != dj {
			return di > dj
		}
		return out[i].Node < out[j].Node
	})
	if top > 0 && len(out) > top {
		out = out[:top]
	}
	return out
}
