// Command digs-chaos runs a declarative fault plan against the protocol
// stacks and reports how each one recovers: per-fault time-to-reconverge,
// packets lost during the repair window and drop attribution by reason.
//
// Plans are JSON (see internal/chaos); "fig8" names the built-in Figure 8
// jammer scenario. Every stack named in -protocols runs the same plan on
// the same topology and seed, so the printed table is a like-for-like
// robustness comparison. Repetitions and protocols fan out over the
// campaign worker pool; output and traces are byte-identical at any
// -parallel value.
//
// With -warm-start, formation is paid once per (topology, protocol, seed,
// config) and cached as a deterministic snapshot (see internal/snapshot):
// later runs — other plans, other branches — restore the converged network
// instead of re-forming it, with bit-identical results.
//
// Examples:
//
//	digs-chaos -plan fig8 -topology testbed-a   # four-way: digs,orchestra,whart,sdn
//	digs-chaos -plan crash.json -protocols digs,adaptive -reps 4 -parallel 4
//	digs-chaos -plan plan.json -trace out.jsonl    # analyse with digs-trace
//	digs-chaos -plan fig8 -warm-start              # snapshot-cached formation
//	digs-chaos -plan fig8 -bench-warmstart BENCH_warmstart.json
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/digs-net/digs/internal/campaign"
	"github.com/digs-net/digs/internal/chaos"
	"github.com/digs-net/digs/internal/flows"
	"github.com/digs-net/digs/internal/invariant"
	"github.com/digs-net/digs/internal/scenario"
	"github.com/digs-net/digs/internal/sim"
	"github.com/digs-net/digs/internal/snapshot"
	"github.com/digs-net/digs/internal/telemetry"
	"github.com/digs-net/digs/internal/topology"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "digs-chaos:", err)
		os.Exit(1)
	}
}

type options struct {
	plan       string
	topology   string
	protocols  []string
	duration   time.Duration
	period     time.Duration
	seed       int64
	trace      string
	invariants bool
	asJSON     bool
	snapCache  string
	reps       int
	requireRec bool
}

func run() error {
	var opts options
	var protoList string
	flag.StringVar(&opts.plan, "plan", "",
		"fault plan: a JSON file path, or \"fig8\" for the built-in jammer scenario")
	flag.StringVar(&opts.topology, "topology", "testbed-a",
		"deployment: "+scenario.TopologyNames)
	flag.StringVar(&protoList, "protocols", "digs,orchestra,whart,sdn",
		"comma-separated stacks to subject to the plan (registered: "+scenario.StackNames()+")")
	flag.DurationVar(&opts.duration, "duration", 2*time.Minute,
		"measurement window from the plan epoch (extended to cover the plan's horizon)")
	flag.DurationVar(&opts.period, "period", 5*time.Second, "packet period per flow")
	flag.Int64Var(&opts.seed, "seed", 1, "simulation seed")
	flag.StringVar(&opts.trace, "trace", "",
		"write the packet-lifecycle + fault event trace (JSONL) to this file")
	flag.BoolVar(&opts.invariants, "invariants", false,
		"run the invariant monitor with self-healing watchdogs during the plan")
	flag.BoolVar(&opts.asJSON, "json", false,
		"emit the recovery reports as JSON instead of tables")
	flag.BoolVar(&opts.requireRec, "require-recovery", false,
		"exit nonzero if any fault never reconverges within its window (smoke-test assertion)")
	warmStart := flag.Bool("warm-start", false,
		"restore formation from the snapshot cache instead of re-forming (populating it on miss)")
	flag.StringVar(&opts.snapCache, "snap-cache", "",
		"snapshot cache directory (implies -warm-start; default .digs-snapcache)")
	benchPath := flag.String("bench-warmstart", "",
		"run the campaign cold then warm-started, verify identical output, write the timings to this JSON file")
	reps := flag.Int("reps", 1, "independent repetitions (seed, seed+1, ...)")
	parallel := flag.Int("parallel", 0, "campaign worker pool size (0 = GOMAXPROCS)")
	flag.Parse()

	if opts.plan == "" {
		return errors.New("-plan is required (a JSON file, or \"fig8\")")
	}
	campaign.SetDefaultWorkers(*parallel)
	topo, err := scenario.PickTopology(opts.topology)
	if err != nil {
		return err
	}
	for _, p := range strings.Split(protoList, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		if !scenario.StackRegistered(p) {
			return fmt.Errorf("unknown protocol %q (registered: %s)", p, scenario.StackNames())
		}
		opts.protocols = append(opts.protocols, p)
	}
	if len(opts.protocols) == 0 {
		return errors.New("no protocols selected")
	}
	opts.reps = *reps
	if *warmStart && opts.snapCache == "" {
		opts.snapCache = ".digs-snapcache"
	}
	if *benchPath != "" {
		if opts.trace != "" {
			return errors.New("-bench-warmstart and -trace are mutually exclusive")
		}
		return runBench(opts, topo, *benchPath)
	}

	outs, err := runCampaign(opts)
	if err != nil {
		return err
	}
	if opts.requireRec {
		// A truncated window (packets still in flight at trace end) is not a
		// failed recovery; "never" — the window closed without reconvergence
		// — is.
		for _, o := range outs {
			for _, f := range o.result.Faults {
				if f.TTRSlots < 0 && !f.Truncated {
					return fmt.Errorf("%s rep %d: fault #%d.%d (%s on node %d) never reconverged",
						o.result.Protocol, o.result.Rep, f.Entry, f.Occ, f.Kind, f.Node)
				}
			}
		}
	}

	if opts.asJSON {
		runs := make([]*runResult, len(outs))
		for i, o := range outs {
			runs[i] = o.result
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Plan     string       `json:"plan"`
			Topology string       `json:"topology"`
			Reps     int          `json:"reps"`
			Runs     []*runResult `json:"runs"`
		}{opts.plan, topo.Name, opts.reps, runs}); err != nil {
			return err
		}
	} else {
		renderText(os.Stdout, opts, topo.Name, outs)
	}
	if opts.trace != "" {
		parts := make([][]byte, len(outs))
		for i, o := range outs {
			parts[i] = o.trace.Bytes()
		}
		f, err := os.Create(opts.trace)
		if err != nil {
			return err
		}
		if err := telemetry.MergeJSONL(f, parts...); err != nil {
			f.Close()
			return fmt.Errorf("trace %s: %w", opts.trace, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		// Keep stdout pure JSON when -json is set.
		msgOut := io.Writer(os.Stdout)
		if opts.asJSON {
			msgOut = os.Stderr
		}
		fmt.Fprintf(msgOut, "trace written to %s (%d jobs merged)\n", opts.trace, len(outs))
	}
	return nil
}

// loadPlan resolves -plan for one job (the fig8 built-in depends on the
// topology and seed, so it is constructed per run).
func loadPlan(name string, topo *topology.Topology, seed int64) (*chaos.Plan, error) {
	if name == "fig8" {
		return chaos.Fig8JammerPlan(topo, seed), nil
	}
	return chaos.LoadFile(name)
}

// runResult is one job's machine-readable outcome (-json output).
type runResult struct {
	Protocol string `json:"protocol"`
	Rep      int    `json:"rep"`
	Seed     int64  `json:"seed"`
	// FormedSlots is how long network formation took.
	FormedSlots int64             `json:"formed_slots"`
	Faults      []faultJSON       `json:"faults"`
	Generated   int               `json:"generated"`
	Lost        int               `json:"lost"`
	Invariants  *invariant.Report `json:"invariants,omitempty"`
}

// faultJSON flattens one chaos.FaultReport with stringly drop reasons.
type faultJSON struct {
	Entry      int            `json:"entry"`
	Occ        int            `json:"occ"`
	Kind       string         `json:"kind"`
	Node       int            `json:"node"`
	StartASN   int64          `json:"start_asn"`
	EndASN     int64          `json:"end_asn"`
	ReconASN   int64          `json:"recon_asn"`
	TTRSlots   int64          `json:"ttr_slots"`
	Truncated  bool           `json:"truncated,omitempty"`
	Generated  int            `json:"generated"`
	Lost       int            `json:"lost"`
	InFlight   int            `json:"in_flight,omitempty"`
	Violations int            `json:"violations"`
	Drops      map[string]int `json:"drops,omitempty"`
}

// runPlan executes the fault plan against one protocol stack and writes
// the recovery report to w. With a snapshot cache, formation warm-starts
// from a cached converged network when one is there and populates the
// cache when not; the report is bit-identical either way.
func runPlan(w io.Writer, opts options, proto string, seed int64, cache *snapshot.Cache,
	jsonl telemetry.Tracer) (*runResult, error) {
	topo, err := scenario.PickTopology(opts.topology)
	if err != nil {
		return nil, err
	}
	plan, err := loadPlan(opts.plan, topo, seed)
	if err != nil {
		return nil, err
	}
	sc, err := scenario.Build(scenario.Params{
		Topology: topo, TopologyName: opts.topology, Protocol: proto,
		Seed: seed, Period: opts.period,
	})
	if err != nil {
		return nil, err
	}
	nw := sc.NW

	// Formation, then a settling margin before the plan epoch — restored
	// from the snapshot cache instead when warm-starting.
	meta, _, err := sc.WarmStart(cache, "formed+30s", func() (map[string]string, error) {
		formSlots, ok := nw.RunUntil(sim.SlotsFor(6*time.Minute), func() bool {
			return sc.Joined() == topo.N()
		})
		if !ok {
			return nil, fmt.Errorf("only %d/%d nodes joined during formation", sc.Joined(), topo.N())
		}
		nw.Run(sim.SlotsFor(30 * time.Second))
		return map[string]string{"formed_slots": strconv.FormatInt(formSlots, 10)}, nil
	})
	if err != nil {
		return nil, err
	}
	formSlots, err := strconv.ParseInt(meta.Extra["formed_slots"], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("snapshot metadata formed_slots: %w", err)
	}
	fmt.Fprintf(w, "network formed in %v\n", sim.TimeAt(formSlots))

	// Recovery analyzer and optional JSONL export share one emit chain;
	// the injector rides the stack's tracer to observe route changes.
	rec := chaos.NewRecovery()
	chain := telemetry.Multi(rec, jsonl)

	// The invariant monitor emits into the same chain (so violations land
	// in the trace and the recovery windows) but is chained after it, so
	// it never observes its own emissions. Attached post-formation: the
	// checks gate on joined state, and the watchdog heals through the
	// stack's reboot path with callbacks preserved.
	var mon *invariant.Monitor
	if opts.invariants {
		mon = invariant.New(invariant.Config{Emit: chain, Heal: sc.Healer})
		chain = telemetry.Multi(rec, jsonl, mon)
		invariant.Attach(nw, mon, sc.Prober, 0)
	}
	live := func() int {
		n := 0
		for i := 1; i <= topo.N(); i++ {
			if !nw.Failed(topology.NodeID(i)) {
				n++
			}
		}
		return n
	}
	inj, err := chaos.Apply(nw, plan, chain, chaos.Hooks{
		Converged: func() bool { return sc.Joined() >= live() },
		Reboot: func(id topology.NodeID, asn sim.ASN, lose bool) {
			sc.MACNode(int(id)).Reboot(asn, lose)
		},
	})
	if err != nil {
		return nil, err
	}
	sc.SetTracer(telemetry.Multi(chain, inj))
	telemetry.AttachSim(nw, chain)

	// Flows from the testbed's suggested sources; sources the plan has
	// currently crashed skip their injections (a dead mote sends nothing).
	fset := flows.FixedSet(topo.SuggestedSources, opts.period)
	window := opts.duration
	if h := plan.Horizon() + 30*time.Second; h > window {
		window = h
	}
	packets := int(window / opts.period)
	flows.Schedule(nw, fset, packets, func(f flows.Flow, seq uint16, asn sim.ASN) {
		if nw.Failed(f.Source) {
			return
		}
		_ = sc.MACNode(int(f.Source)).InjectData(&sim.Frame{
			Origin: f.Source, FlowID: f.ID, Seq: seq, BornASN: asn,
		})
	})

	// Run the plan window plus a drain-and-recover tail.
	nw.Run(sim.SlotsFor(window + 45*time.Second))
	sc.SetTracer(nil)
	if err := chain.Flush(); err != nil {
		return nil, err
	}
	report(w, plan, rec, mon)
	return buildResult(formSlots, plan, rec, mon), nil
}

// buildResult folds one run into the -json shape.
func buildResult(formSlots int64, plan *chaos.Plan, rec *chaos.Recovery, mon *invariant.Monitor) *runResult {
	res := &runResult{
		FormedSlots: formSlots,
		Faults:      []faultJSON{},
		Generated:   rec.Generated(),
		Lost:        rec.Lost(),
	}
	for _, r := range rec.Report() {
		kind := "?"
		if r.Entry < len(plan.Entries) {
			kind = string(plan.Entries[r.Entry].Kind)
		}
		fj := faultJSON{
			Entry: r.Entry, Occ: r.Occ, Kind: kind, Node: int(r.Node),
			StartASN: r.StartASN, EndASN: r.EndASN, ReconASN: r.ReconASN,
			TTRSlots: r.TTRSlots, Truncated: r.Truncated,
			Generated: r.Generated, Lost: r.Lost, InFlight: r.InFlight,
			Violations: r.Violations,
		}
		if len(r.Drops) > 0 {
			fj.Drops = make(map[string]int, len(r.Drops))
			for reason, n := range r.Drops {
				fj.Drops[reason.String()] = n
			}
		}
		res.Faults = append(res.Faults, fj)
	}
	if mon != nil {
		rep := mon.Report()
		res.Invariants = &rep
	}
	return res
}

// report prints the per-fault recovery table and the run totals.
func report(w io.Writer, plan *chaos.Plan, rec *chaos.Recovery, mon *invariant.Monitor) {
	reps := rec.Report()
	if len(reps) == 0 {
		fmt.Fprintln(w, "no faults fired inside the run window")
	} else {
		fmt.Fprintf(w, "%-6s %-13s %6s %10s %10s %9s %5s  %s\n",
			"fault", "kind", "target", "start", "ttr", "lost/gen", "viol", "drops in window")
		truncated := 0
		for _, r := range reps {
			kind := "?"
			if r.Entry < len(plan.Entries) {
				kind = string(plan.Entries[r.Entry].Kind)
			}
			ttr := "never"
			if r.TTRSlots >= 0 {
				ttr = sim.TimeAt(r.TTRSlots).String()
			} else if r.Truncated {
				ttr = "trunc"
				truncated += r.InFlight
			}
			fmt.Fprintf(w, "#%d.%-4d %-13s %6d %10v %10s %5d/%-3d %5d  %s\n",
				r.Entry, r.Occ, kind, r.Node, sim.TimeAt(r.StartASN), ttr,
				r.Lost, r.Generated, r.Violations, dropSummary(r.Drops))
		}
		if truncated > 0 {
			fmt.Fprintf(w, "trace ended mid-repair: %d packet(s) still in flight, not counted lost\n",
				truncated)
		}
	}
	fmt.Fprintf(w, "totals: generated %d, lost %d\n", rec.Generated(), rec.Lost())
	if mon != nil {
		invariant.WriteText(w, mon.Report())
	}
}

// dropSummary formats a drop-reason map deterministically.
func dropSummary(drops map[telemetry.DropReason]int) string {
	if len(drops) == 0 {
		return "-"
	}
	reasons := make([]telemetry.DropReason, 0, len(drops))
	for r := range drops {
		reasons = append(reasons, r)
	}
	sort.Slice(reasons, func(i, j int) bool { return reasons[i] < reasons[j] })
	parts := make([]string, 0, len(reasons))
	for _, r := range reasons {
		parts = append(parts, fmt.Sprintf("%s=%d", r, drops[r]))
	}
	return strings.Join(parts, " ")
}

// jobOut is one campaign job's buffered output: report text, trace part
// and machine-readable result, printed and merged in job-index order so
// the output is byte-identical at any worker count.
type jobOut struct {
	log    bytes.Buffer
	trace  bytes.Buffer
	result *runResult
}

// runCampaign fans one job per (rep, protocol) over the worker pool.
func runCampaign(opts options) ([]*jobOut, error) {
	var cache *snapshot.Cache
	if opts.snapCache != "" {
		cache = &snapshot.Cache{Dir: opts.snapCache}
	}
	nJobs := opts.reps * len(opts.protocols)
	outs, err := campaign.Map(campaign.New(0), nJobs, func(i int) (*jobOut, error) {
		rep := i / len(opts.protocols)
		proto := opts.protocols[i%len(opts.protocols)]
		seed := opts.seed + int64(rep)
		o := &jobOut{}
		var jsonl telemetry.Tracer
		if opts.trace != "" {
			jsonl = telemetry.WithJob(telemetry.NewJSONL(&o.trace), i)
		}
		fmt.Fprintf(&o.log, "=== %s rep %d (seed %d) ===\n", proto, rep, seed)
		res, err := runPlan(&o.log, opts, proto, seed, cache, jsonl)
		if err != nil {
			return nil, fmt.Errorf("%s rep %d (seed %d): %w", proto, rep, seed, err)
		}
		res.Protocol, res.Rep, res.Seed = proto, rep, seed
		o.result = res
		return o, nil
	})
	var pe *campaign.PanicError
	if errors.As(err, &pe) {
		return nil, fmt.Errorf("job %d panicked: %v\n%s", pe.Job, pe.Value, pe.Stack)
	}
	return outs, err
}

// renderText writes the human-readable campaign report. Nothing in it may
// depend on whether formation ran or was restored: the bench mode
// byte-compares a cold and a warm rendering.
func renderText(w io.Writer, opts options, topoName string, outs []*jobOut) {
	fmt.Fprintf(w, "chaos plan %q on %s, %d rep(s) x %s (workers=%d)\n\n",
		opts.plan, topoName, opts.reps, strings.Join(opts.protocols, "+"), campaign.DefaultWorkers())
	for _, o := range outs {
		w.Write(o.log.Bytes())
		fmt.Fprintln(w)
	}
}

// benchReport is the -bench-warmstart JSON shape.
type benchReport struct {
	Plan            string   `json:"plan"`
	Topology        string   `json:"topology"`
	Protocols       []string `json:"protocols"`
	Reps            int      `json:"reps"`
	Workers         int      `json:"workers"`
	ColdSeconds     float64  `json:"cold_seconds"`
	WarmSeconds     float64  `json:"warm_seconds"`
	Speedup         float64  `json:"speedup"`
	OutputIdentical bool     `json:"output_identical"`
}

// runBench times the same campaign twice against one snapshot cache — the
// first pass forms every network cold and populates the cache, the second
// restores from it — verifies the two reports are byte-identical, and
// records the wall-clock comparison.
func runBench(opts options, topo *topology.Topology, outPath string) error {
	if opts.snapCache == "" {
		dir, err := os.MkdirTemp("", "digs-snapcache-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		opts.snapCache = dir
	}
	render := func(outs []*jobOut) []byte {
		var b bytes.Buffer
		renderText(&b, opts, topo.Name, outs)
		return b.Bytes()
	}
	t0 := time.Now()
	coldOuts, err := runCampaign(opts)
	if err != nil {
		return err
	}
	cold := time.Since(t0)
	t1 := time.Now()
	warmOuts, err := runCampaign(opts)
	if err != nil {
		return err
	}
	warm := time.Since(t1)

	coldText, warmText := render(coldOuts), render(warmOuts)
	identical := bytes.Equal(coldText, warmText)
	os.Stdout.Write(warmText)

	rep := benchReport{
		Plan: opts.plan, Topology: topo.Name, Protocols: opts.protocols,
		Reps: opts.reps, Workers: campaign.DefaultWorkers(),
		ColdSeconds: cold.Seconds(), WarmSeconds: warm.Seconds(),
		Speedup:         cold.Seconds() / warm.Seconds(),
		OutputIdentical: identical,
	}
	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("warm-start bench: cold %.2fs, warm %.2fs (%.1fx), output identical: %v -> %s\n",
		rep.ColdSeconds, rep.WarmSeconds, rep.Speedup, identical, outPath)
	if !identical {
		return errors.New("warm-started campaign output differs from the cold run")
	}
	return nil
}
