// Command digs-snap takes, inspects, diffs and resumes deterministic
// simulation snapshots (see internal/snapshot). A snapshot captures the
// complete state of a scenario — simulator, MAC, protocol stacks, RNG
// stream positions — so resuming it is bit-identical to never having
// stopped. That makes it a branching tool: one converged network can seed
// any number of what-if continuations, and `diff` pinpoints where two
// branches that should agree first diverge.
//
// Examples:
//
//	digs-snap take -topology testbed-a -protocol digs -slots 30000 -o formed.snap
//	digs-snap info formed.snap
//	digs-snap resume -snap formed.snap -slots 6000 -o later.snap
//	digs-snap resume -snap formed.snap -plan fig8 -trace jam.jsonl
//	digs-snap diff later.snap other.snap
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/digs-net/digs/internal/chaos"
	"github.com/digs-net/digs/internal/flows"
	"github.com/digs-net/digs/internal/scenario"
	"github.com/digs-net/digs/internal/sim"
	"github.com/digs-net/digs/internal/snapshot"
	"github.com/digs-net/digs/internal/telemetry"
	"github.com/digs-net/digs/internal/topology"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "digs-snap:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return errors.New("usage: digs-snap <take|info|diff|resume> [flags]")
	}
	switch args[0] {
	case "take":
		return cmdTake(args[1:])
	case "info":
		return cmdInfo(args[1:])
	case "diff":
		return cmdDiff(args[1:])
	case "resume":
		return cmdResume(args[1:])
	default:
		return fmt.Errorf("unknown command %q (want take, info, diff or resume)", args[0])
	}
}

// cmdTake builds a scenario, runs it for a fixed number of slots and
// writes the snapshot.
func cmdTake(args []string) error {
	fs := flag.NewFlagSet("take", flag.ContinueOnError)
	topoName := fs.String("topology", "testbed-a", "deployment: "+scenario.TopologyNames)
	proto := fs.String("protocol", "digs", "stack: digs, orchestra, whart")
	seed := fs.Int64("seed", 1, "simulation seed")
	slots := fs.Int64("slots", 0, "slots to run before taking the snapshot")
	period := fs.Duration("period", 5*time.Second, "flow packet period (dimensions the WirelessHART schedule)")
	label := fs.String("label", "", "snapshot label (default \"slot-<N>\")")
	out := fs.String("o", "", "output snapshot file (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return errors.New("take: -o is required")
	}
	sc, err := scenario.Build(scenario.Params{
		TopologyName: *topoName, Protocol: *proto, Seed: *seed, Period: *period,
	})
	if err != nil {
		return err
	}
	sc.NW.Run(*slots)
	lbl := *label
	if lbl == "" {
		lbl = fmt.Sprintf("slot-%d", sc.NW.ASN())
	}
	snap, err := sc.Take(lbl, nil)
	if err != nil {
		return err
	}
	if err := snapshot.WriteFile(*out, snap); err != nil {
		return err
	}
	fmt.Printf("snapshot of %s/%s seed %d at slot %d -> %s\n",
		*topoName, *proto, *seed, snap.Meta.Slot, *out)
	return nil
}

// cmdInfo prints a snapshot's metadata and state summary.
func cmdInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return errors.New("info: one snapshot file argument required")
	}
	s, err := snapshot.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	fmt.Print(snapshot.Summary(s))
	return nil
}

// cmdDiff compares two snapshots field by field; exit status 1 means they
// differ (so scripts can assert identity).
func cmdDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return errors.New("diff: two snapshot file arguments required")
	}
	a, err := snapshot.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	b, err := snapshot.ReadFile(fs.Arg(1))
	if err != nil {
		return err
	}
	d := snapshot.Diff(a, b)
	if len(d) == 0 {
		fmt.Println("snapshots are identical")
		return nil
	}
	for _, line := range d {
		fmt.Println(line)
	}
	return fmt.Errorf("%d field(s) differ", len(d))
}

// cmdResume restores a snapshot into a fresh build and continues it:
// either plainly for -slots (optionally writing a new snapshot), or
// branching into a chaos plan with a recovery report.
func cmdResume(args []string) error {
	fs := flag.NewFlagSet("resume", flag.ContinueOnError)
	snapPath := fs.String("snap", "", "snapshot to resume (required)")
	slots := fs.Int64("slots", 0, "slots to run after restoring")
	label := fs.String("label", "", "label for the new snapshot (default \"slot-<N>\")")
	out := fs.String("o", "", "write the post-run snapshot here")
	planName := fs.String("plan", "", "branch into a chaos plan: a JSON file, or \"fig8\"")
	trace := fs.String("trace", "", "write the branch's telemetry trace (JSONL) to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *snapPath == "" {
		return errors.New("resume: -snap is required")
	}
	if *planName != "" && *out != "" {
		return errors.New("resume: -plan and -o are mutually exclusive (a plan leaves interferers behind, which snapshots refuse to capture)")
	}
	snap, err := snapshot.ReadFile(*snapPath)
	if err != nil {
		return err
	}
	sc, err := scenario.BuildFromMeta(snap.Meta)
	if err != nil {
		return err
	}
	if err := sc.Restore(snap); err != nil {
		return err
	}
	fmt.Printf("resumed %s/%s seed %d at slot %d\n",
		snap.Meta.Topology, snap.Meta.Protocol, snap.Meta.Seed, snap.Meta.Slot)

	if *planName != "" {
		return resumePlan(sc, *planName, *trace)
	}

	var jsonl *telemetry.JSONL
	var traceFile *os.File
	if *trace != "" {
		traceFile, err = os.Create(*trace)
		if err != nil {
			return err
		}
		defer traceFile.Close()
		jsonl = telemetry.NewJSONL(traceFile)
		sc.SetTracer(jsonl)
		telemetry.AttachSim(sc.NW, jsonl)
	}
	sc.NW.Run(*slots)
	if jsonl != nil {
		sc.SetTracer(nil)
		telemetry.AttachSim(sc.NW, nil)
		if err := jsonl.Flush(); err != nil {
			return err
		}
	}
	fmt.Printf("ran %d slot(s), now at slot %d\n", *slots, sc.NW.ASN())
	if *out != "" {
		lbl := *label
		if lbl == "" {
			lbl = fmt.Sprintf("slot-%d", sc.NW.ASN())
		}
		next, err := sc.Take(lbl, nil)
		if err != nil {
			return err
		}
		if err := snapshot.WriteFile(*out, next); err != nil {
			return err
		}
		fmt.Printf("snapshot -> %s\n", *out)
	}
	return nil
}

// resumePlan branches the restored scenario into a fault plan and prints
// the recovery table, mirroring one digs-chaos run without the formation.
func resumePlan(sc *scenario.Scenario, planName, tracePath string) error {
	topo := sc.Params.Topology
	var plan *chaos.Plan
	var err error
	if planName == "fig8" {
		plan = chaos.Fig8JammerPlan(topo, sc.Params.Seed)
	} else if plan, err = chaos.LoadFile(planName); err != nil {
		return err
	}

	rec := chaos.NewRecovery()
	sinks := []telemetry.Tracer{rec}
	var traceFile *os.File
	if tracePath != "" {
		traceFile, err = os.Create(tracePath)
		if err != nil {
			return err
		}
		defer traceFile.Close()
		sinks = append(sinks, telemetry.NewJSONL(traceFile))
	}
	chain := telemetry.Multi(sinks...)

	live := func() int {
		n := 0
		for i := 1; i <= topo.N(); i++ {
			if !sc.NW.Failed(topology.NodeID(i)) {
				n++
			}
		}
		return n
	}
	inj, err := chaos.Apply(sc.NW, plan, chain, chaos.Hooks{
		Converged: func() bool { return sc.Joined() >= live() },
		Reboot: func(id topology.NodeID, asn sim.ASN, lose bool) {
			sc.MACNode(int(id)).Reboot(asn, lose)
		},
	})
	if err != nil {
		return err
	}
	sc.SetTracer(telemetry.Multi(chain, inj))
	telemetry.AttachSim(sc.NW, chain)

	period := sc.Params.Period
	window := plan.Horizon() + 60*time.Second
	fset := flows.FixedSet(topo.SuggestedSources, period)
	flows.Schedule(sc.NW, fset, int(window/period), func(f flows.Flow, seq uint16, asn sim.ASN) {
		if sc.NW.Failed(f.Source) {
			return
		}
		_ = sc.MACNode(int(f.Source)).InjectData(&sim.Frame{
			Origin: f.Source, FlowID: f.ID, Seq: seq, BornASN: asn,
		})
	})
	sc.NW.Run(sim.SlotsFor(window + 45*time.Second))
	sc.SetTracer(nil)
	telemetry.AttachSim(sc.NW, nil)
	if err := chain.Flush(); err != nil {
		return err
	}

	for _, r := range rec.Report() {
		kind := "?"
		if r.Entry < len(plan.Entries) {
			kind = string(plan.Entries[r.Entry].Kind)
		}
		ttr := "never"
		if r.TTRSlots >= 0 {
			ttr = sim.TimeAt(r.TTRSlots).String()
		} else if r.Truncated {
			ttr = "trunc"
		}
		fmt.Printf("#%d.%d %-13s node %-3d ttr %-8s lost %d/%d\n",
			r.Entry, r.Occ, kind, r.Node, ttr, r.Lost, r.Generated)
	}
	fmt.Printf("totals: generated %d, lost %d\n", rec.Generated(), rec.Lost())
	return nil
}
