// Command digs-doctor replays a packet-lifecycle trace (JSONL, as written
// by digs-sim/digs-bench/digs-chaos with -trace) and prints the invariant
// violation and watchdog-repair report. Traces recorded with -invariants
// already carry violation/repair events; -recheck additionally re-runs the
// event-driven invariant checks over the raw packet events, so even traces
// recorded without the monitor can be diagnosed after the fact.
//
// Examples:
//
//	digs-chaos -plan fig8 -invariants -trace run.jsonl && digs-doctor run.jsonl
//	digs-doctor -recheck -frame 151 old-trace.jsonl
//	digs-doctor -strict run.jsonl   # exit 1 on any violation (CI gate)
//	cat run.jsonl | digs-doctor -
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/digs-net/digs/internal/invariant"
	"github.com/digs-net/digs/internal/sim"
	"github.com/digs-net/digs/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "digs-doctor:", err)
		os.Exit(1)
	}
}

func run() error {
	strict := flag.Bool("strict", false,
		"exit non-zero when the trace contains (or recheck finds) any violation")
	recheck := flag.Bool("recheck", false,
		"re-run the event-driven invariant checks over the raw packet events")
	frame := flag.Int64("frame", invariant.DefaultFrameLen,
		"slotframe length for the recheck's schedule-conflict cells")
	list := flag.Int("list", 10,
		"violation/repair detail rows to print per section (0 disables)")
	flag.Parse()

	if flag.NArg() != 1 {
		return fmt.Errorf("usage: digs-doctor [flags] <trace.jsonl | ->")
	}
	var r io.Reader
	if path := flag.Arg(0); path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}

	var (
		events     int
		jobs       = map[int32]struct{}{}
		viols      []invariant.Violation
		violEvents []telemetry.Event
		reps       []invariant.Repair
		mon        *invariant.Monitor
	)
	if *recheck {
		mon = invariant.New(invariant.Config{FrameLen: *frame})
	}
	if err := telemetry.Scan(r, func(ev telemetry.Event) error {
		events++
		jobs[ev.Job] = struct{}{}
		switch ev.Type {
		case telemetry.EvViolation:
			viols = append(viols, invariant.Violation{
				Code: invariant.Code(ev.Code), ASN: ev.ASN,
				Node: ev.Node, Peer: ev.Peer, Origin: ev.Origin,
				Flow: ev.Flow, Channel: ev.Channel, ChOff: ev.ChOff,
			})
			violEvents = append(violEvents, ev)
		case telemetry.EvRepair:
			reps = append(reps, invariant.Repair{
				ASN: ev.ASN, Node: ev.Node,
				Attempt: int(ev.Attempt), Trigger: invariant.Code(ev.Code),
			})
		}
		if mon != nil {
			mon.Record(ev)
		}
		return nil
	}); err != nil {
		return err
	}

	w := os.Stdout
	fmt.Fprintf(w, "=== trace ===\n")
	fmt.Fprintf(w, "events: %d (%d job(s))\n", events, len(jobs))

	rep := invariant.ReportFrom(viols, reps)
	fmt.Fprintf(w, "\n=== recorded by the in-run monitor ===\n")
	invariant.WriteText(w, rep)
	printViolations(w, violEvents, len(jobs) > 1, *list)
	printRepairs(w, reps, *list)

	total := rep.Total
	if mon != nil {
		// The recheck monitor counted the trace's own violation events as
		// "recorded"; only its freshly detected ones belong in this section.
		re := mon.Report()
		re.RecordedViolations, re.RecordedRepairs = 0, 0
		fmt.Fprintf(w, "\n=== re-detected by replaying packet events ===\n")
		invariant.WriteText(w, re)
		total += re.Total
	}

	if *strict {
		if total > 0 {
			return fmt.Errorf("strict: %d violation(s) in trace", total)
		}
		fmt.Fprintf(w, "\nstrict: clean\n")
	}
	return nil
}

// printViolations lists individual violations with their context, capped
// at limit rows.
func printViolations(w io.Writer, evs []telemetry.Event, multiJob bool, limit int) {
	if len(evs) == 0 || limit <= 0 {
		return
	}
	fmt.Fprintf(w, "violation detail:\n")
	for i, ev := range evs {
		if i == limit {
			fmt.Fprintf(w, "  ... %d more\n", len(evs)-limit)
			break
		}
		job := ""
		if multiJob {
			job = fmt.Sprintf("job %2d  ", ev.Job)
		}
		ctx := fmt.Sprintf("node %d", ev.Node)
		if ev.Peer != 0 {
			ctx += fmt.Sprintf(" peer %d", ev.Peer)
		}
		if ev.Origin != 0 || ev.Flow != 0 {
			ctx += fmt.Sprintf(" flow %d@%d", ev.Flow, ev.Origin)
		}
		if invariant.Code(ev.Code) == invariant.CodeScheduleConflict {
			ctx += fmt.Sprintf(" ch %d (off %d)", ev.Channel, ev.ChOff)
		}
		fmt.Fprintf(w, "  %s@%-10v %-17s %s\n",
			job, sim.TimeAt(ev.ASN), invariant.Code(ev.Code), ctx)
	}
}

// printRepairs lists watchdog actions, capped at limit rows.
func printRepairs(w io.Writer, reps []invariant.Repair, limit int) {
	if len(reps) == 0 || limit <= 0 {
		return
	}
	fmt.Fprintf(w, "watchdog repairs:\n")
	for i, rp := range reps {
		if i == limit {
			fmt.Fprintf(w, "  ... %d more\n", len(reps)-limit)
			break
		}
		fmt.Fprintf(w, "  @%-10v node %3d rebooted (attempt %d, trigger %s)\n",
			sim.TimeAt(rp.ASN), rp.Node, rp.Attempt, rp.Trigger)
	}
}
