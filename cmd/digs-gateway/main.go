// Command digs-gateway is the fault-tolerant front tier over a fleet of
// digs-server backends: one address that routes scenario submissions by
// rendezvous hashing on the spec's content address with R-way replica
// placement, probes every backend's readiness, trips per-backend
// circuit breakers, fails work over to surviving replicas, hedges slow
// reads, and read-repairs under-replicated results.
//
//	digs-server -addr :8081 -name b0 -data /var/lib/digs/b0 &
//	digs-server -addr :8082 -name b1 -data /var/lib/digs/b1 &
//	digs-server -addr :8083 -name b2 -data /var/lib/digs/b2 &
//	digs-gateway -addr :8080 \
//	    -backends http://localhost:8081,http://localhost:8082,http://localhost:8083
//
// Clients speak the ordinary digs-server API to the gateway and cannot
// tell the replicated tier from one durable process — killing any
// single backend costs a failover, never an error.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/digs-net/digs/internal/gateway"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "digs-gateway:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8080", "listen address")
	backends := flag.String("backends", "", "comma-separated digs-server base URLs (required)")
	replicas := flag.Int("replicas", 2, "replica placement factor R: backends per spec")
	probe := flag.Duration("probe", 500*time.Millisecond, "readiness probe interval")
	probeTimeout := flag.Duration("probe-timeout", time.Second, "readiness probe timeout")
	brFailures := flag.Int("breaker-failures", 3, "consecutive errors that trip a backend's breaker")
	brOpen := flag.Duration("breaker-open", 2*time.Second, "open-breaker cooldown before the half-open trial")
	submitRetries := flag.Int("submit-retries", 12,
		"total backend attempts one submission may consume across failover and backoff")
	reqTimeout := flag.Duration("request-timeout", 10*time.Second, "per-backend API call timeout")
	hedge := flag.Duration("hedge", 0,
		"fixed hedged-read delay (0 = adaptive p90 of recent reads, clamped to [10ms,2s])")
	flag.Parse()

	if *backends == "" {
		return fmt.Errorf("-backends is required (comma-separated digs-server URLs)")
	}
	var urls []string
	for _, u := range strings.Split(*backends, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}

	gw, err := gateway.New(gateway.Config{
		Backends:        urls,
		Replicas:        *replicas,
		ProbeInterval:   *probe,
		ProbeTimeout:    *probeTimeout,
		BreakerFailures: *brFailures,
		BreakerOpenFor:  *brOpen,
		SubmitRetries:   *submitRetries,
		RequestTimeout:  *reqTimeout,
		HedgeDelay:      *hedge,
	})
	if err != nil {
		return err
	}
	defer gw.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: gw.Handler()}
	log.Printf("digs-gateway listening on %s (backends=%d replicas=%d probe=%v)",
		ln.Addr(), len(urls), *replicas, *probe)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	stop()
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		return err
	}
	log.Printf("digs-gateway stopped")
	return nil
}
