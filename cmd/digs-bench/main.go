// Command digs-bench regenerates every table and figure of the paper's
// evaluation (Figures 3-5 of the Section IV empirical study and Figures
// 9-13 of Section VII) and prints the series each figure plots.
//
//	digs-bench -fig all          # everything, interactive scale
//	digs-bench -fig 9 -full      # Figure 9 at the paper's 300 flow sets
//	digs-bench -fig 3            # just the Network Manager update times
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/digs-net/digs/internal/campaign"
	"github.com/digs-net/digs/internal/experiments"
	"github.com/digs-net/digs/internal/metrics"
	"github.com/digs-net/digs/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "digs-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	fig := flag.String("fig", "all",
		"figure to regenerate: 3, 4, 5, 9, 9f, 10, 11, 11b, 12, 13, whart or all")
	full := flag.Bool("full", false, "paper-scale campaign sizes (slow)")
	seed := flag.Int64("seed", 1, "simulation seed")
	parallel := flag.Int("parallel", 0,
		"campaign worker pool size (0 = GOMAXPROCS); campaigns are bit-identical at any setting")
	baseline := flag.String("perf-baseline", "",
		"time a reduced campaign sequentially and in parallel, write the JSON report to this file, and exit")
	trace := flag.String("trace", "",
		"write the packet-lifecycle trace of the Figure 4/5 campaign (JSONL) to this file; requires -fig 4 or -fig 5")
	smoke := flag.Bool("smoke", false,
		"shrink the Figure 4/5 campaign to one run (2 jammers, 1 repetition) for CI smoke tests")
	invariants := flag.Bool("invariants", false,
		"run the invariant monitor with self-healing watchdogs during the Figure 4/5 campaign")
	snapCache := flag.String("snap-cache", "",
		"snapshot cache directory for the Figure 9/10/11 campaigns: formation restores from it when cached and populates it when not, with bit-identical figures")
	benchScale := flag.String("bench-scale", "",
		"run the scale benchmark matrix (nodes x protocol x shards), write the JSON report to this file, and exit")
	benchGate := flag.String("bench-gate", "",
		"re-time the gated scale matrix cells and fail on >15% slots/s regression vs this checked-in BENCH_scale.json")
	benchController := flag.String("bench-controller", "",
		"run the controller-stack matrix (sdn/adaptive x dense/sharded), write the JSON report to this file, and exit")
	scaleSmoke := flag.Bool("scale-smoke", false,
		"briefly step a generated 10k-node deployment on the sparse sharded engine under DiGS and Orchestra, then exit")
	flag.Parse()

	campaign.SetDefaultWorkers(*parallel)
	if *baseline != "" {
		return writePerfBaseline(*baseline, *seed)
	}
	if *benchScale != "" {
		return writeBenchScale(*benchScale, *seed)
	}
	if *benchGate != "" {
		return gateBenchScale(*benchGate, *seed)
	}
	if *benchController != "" {
		return writeBenchController(*benchController, *seed)
	}
	if *scaleSmoke {
		return runScaleSmoke(*seed)
	}
	if *trace != "" && *fig != "4" && *fig != "5" {
		return fmt.Errorf("-trace is only wired into the Figure 4/5 campaign; add -fig 4")
	}

	want := func(name string) bool { return *fig == "all" || *fig == name }
	ran := false

	if want("3") {
		ran = true
		if err := fig3(); err != nil {
			return err
		}
	}
	if want("4") || want("5") {
		ran = true
		if err := fig4and5(*full, *smoke, *invariants, *seed, *trace); err != nil {
			return err
		}
	}
	if want("9") {
		ran = true
		if err := interferenceFigure("9", "A", *full, *seed, *snapCache); err != nil {
			return err
		}
	}
	if want("9f") {
		ran = true
		if err := fig9f(*seed); err != nil {
			return err
		}
	}
	if want("10") {
		ran = true
		if err := interferenceFigure("10", "B", *full, *seed, *snapCache); err != nil {
			return err
		}
	}
	if want("11") {
		ran = true
		if err := fig11(*full, *seed, *snapCache); err != nil {
			return err
		}
	}
	if want("11b") {
		ran = true
		if err := fig11b(*seed); err != nil {
			return err
		}
	}
	if want("12") {
		ran = true
		if err := fig12(*full, *seed); err != nil {
			return err
		}
	}
	if want("13") {
		ran = true
		if err := fig13(*seed); err != nil {
			return err
		}
	}
	if want("whart") {
		ran = true
		if err := whartStatic(*seed); err != nil {
			return err
		}
	}
	if !ran {
		return fmt.Errorf("unknown figure %q", *fig)
	}
	return nil
}

func header(title string) {
	fmt.Printf("\n===== %s =====\n", title)
}

func fig3() error {
	header("Figure 3: WirelessHART Network Manager update time")
	rows, err := experiments.RunFig3()
	if err != nil {
		return err
	}
	fmt.Printf("%-16s %6s %10s %10s %12s %10s\n",
		"topology", "nodes", "collect", "compute", "disseminate", "total")
	for _, r := range rows {
		fmt.Printf("%-16s %6d %10.1fs %10.1fs %12.1fs %10.1fs\n",
			r.Topology, r.Nodes, r.Collect.Seconds(), r.Compute.Seconds(),
			r.Disseminate.Seconds(), r.Total.Seconds())
	}
	return nil
}

func fig4and5(full, smoke, invariants bool, seed int64, trace string) error {
	header("Figures 4 & 5: Orchestra repair under interference")
	opts := experiments.DefaultRepairOptions()
	opts.Seed = seed
	opts.Invariants = invariants
	if !full {
		opts.Repetitions = 2
	}
	if smoke {
		opts.JammerCounts = []int{2}
		opts.Repetitions = 1
	}

	// With -trace, every campaign job writes its own job-stamped JSONL
	// part; the parts merge in job order, so the combined trace is
	// byte-identical at any -parallel setting.
	var parts []bytes.Buffer
	if trace != "" {
		parts = make([]bytes.Buffer, len(opts.JammerCounts)*opts.Repetitions)
		opts.Tracer = func(job int) telemetry.Tracer {
			return telemetry.WithJob(telemetry.NewJSONL(&parts[job]), job)
		}
	}

	rs, err := experiments.RunFig4And5(opts)
	if err != nil {
		return err
	}
	if trace != "" {
		raw := make([][]byte, len(parts))
		for i := range parts {
			raw[i] = parts[i].Bytes()
		}
		f, err := os.Create(trace)
		if err != nil {
			return err
		}
		if err := telemetry.MergeJSONL(f, raw...); err != nil {
			f.Close()
			return fmt.Errorf("trace %s: %w", trace, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("trace written to %s (%d jobs merged)\n", trace, len(parts))
	}
	fmt.Println("Figure 4 - repair time CDF samples (seconds):")
	for _, p := range metrics.CDF(experiments.RepairTimesSeconds(rs)) {
		fmt.Printf("  %6.1f s  P=%.2f\n", p.Value, p.P)
	}
	fmt.Println("Figure 5 - PDR during repair, per jammer count:")
	byJammers := map[int][]float64{}
	for _, r := range rs {
		byJammers[r.Jammers] = append(byJammers[r.Jammers], r.FlowPDRs...)
	}
	for _, jc := range opts.JammerCounts {
		b := metrics.NewBoxplot(byJammers[jc])
		fmt.Printf("  %d jammer(s): min %.3f  q1 %.3f  median %.3f  q3 %.3f  max %.3f\n",
			jc, b.Min, b.Q1, b.Median, b.Q3, b.Max)
	}
	if invariants {
		var viol, reps int
		for _, r := range rs {
			viol += r.Violations
			reps += r.Repairs
		}
		fmt.Printf("Invariant monitor: %d violation(s), %d watchdog repair(s) across %d run(s)\n",
			viol, reps, len(rs))
	}
	return nil
}

func interferenceFigure(figName, testbed string, full bool, seed int64, snapCache string) error {
	header(fmt.Sprintf("Figure %s: DiGS vs Orchestra under interference (Testbed %s)",
		figName, testbed))
	opts := experiments.DefaultInterferenceOptions(testbed)
	opts.Seed = seed
	opts.CacheDir = snapCache
	if full {
		opts.FlowSets = 300
		if testbed == "B" {
			opts.FlowSets = 220
		}
	}
	res, err := experiments.RunInterference(opts)
	if err != nil {
		return err
	}
	printComparison(res, figName == "12")
	return nil
}

func printComparison(res *experiments.InterferenceResult, dutyCycle bool) {
	dPDR := experiments.PDRs(res.DiGS)
	oPDR := experiments.PDRs(res.Orchestra)
	fmt.Printf("(a) PDR over flow sets:\n")
	fmt.Printf("    %-10s mean %.3f±%.3f  median %.3f  worst %.3f  %%sets>0.95: %.0f%%\n",
		"DiGS", metrics.Mean(dPDR), 1.96*metrics.StdErr(dPDR), metrics.Quantile(dPDR, 0.5),
		metrics.Min(dPDR), 100*metrics.FractionAbove(dPDR, 0.95))
	fmt.Printf("    %-10s mean %.3f±%.3f  median %.3f  worst %.3f  %%sets>0.95: %.0f%%\n",
		"Orchestra", metrics.Mean(oPDR), 1.96*metrics.StdErr(oPDR), metrics.Quantile(oPDR, 0.5),
		metrics.Min(oPDR), 100*metrics.FractionAbove(oPDR, 0.95))
	fmt.Printf("    PDR CDF DiGS:      %s\n", metrics.SparkCDF(dPDR, "%.2f"))
	fmt.Printf("    PDR CDF Orchestra: %s\n", metrics.SparkCDF(oPDR, "%.2f"))

	dLat := experiments.AllLatenciesMs(res.DiGS)
	oLat := experiments.AllLatenciesMs(res.Orchestra)
	fmt.Printf("(b) latency (ms):\n")
	fmt.Printf("    %-10s median %6.0f  mean %6.0f  p90 %6.0f\n",
		"DiGS", metrics.Quantile(dLat, 0.5), metrics.Mean(dLat), metrics.Quantile(dLat, 0.9))
	fmt.Printf("    %-10s median %6.0f  mean %6.0f  p90 %6.0f\n",
		"Orchestra", metrics.Quantile(oLat, 0.5), metrics.Mean(oLat), metrics.Quantile(oLat, 0.9))

	if dutyCycle {
		dDuty := experiments.DutiesPerPacket(res.DiGS)
		oDuty := experiments.DutiesPerPacket(res.Orchestra)
		fmt.Printf("(c) duty cycle per received packet (%%):\n")
		fmt.Printf("    %-10s median %.4f\n", "DiGS", metrics.Quantile(dDuty, 0.5))
		fmt.Printf("    %-10s median %.4f\n", "Orchestra", metrics.Quantile(oDuty, 0.5))
		return
	}
	dPow := experiments.PowersPerPacket(res.DiGS)
	oPow := experiments.PowersPerPacket(res.Orchestra)
	fmt.Printf("(e) power per received packet (mW):\n")
	fmt.Printf("    %-10s median %.4f\n", "DiGS", metrics.Quantile(dPow, 0.5))
	fmt.Printf("    %-10s median %.4f\n", "Orchestra", metrics.Quantile(oPow, 0.5))
}

func microTable(res *experiments.MicrobenchResult) {
	fmt.Printf("flow \\ seq:")
	for s := res.FromSeq; s <= res.ToSeq; s++ {
		fmt.Printf(" %3d", s)
	}
	fmt.Println()
	for flow := uint16(1); int(flow) <= len(res.Delivered); flow++ {
		fmt.Printf("  flow %2d: ", flow)
		for s := res.FromSeq; s <= res.ToSeq; s++ {
			mark := "  ."
			if res.Delivered[flow][s] {
				mark = "  O"
			}
			fmt.Print(mark)
		}
		fmt.Println()
	}
}

func fig9f(seed int64) error {
	header("Figure 9(f): delivery micro-benchmark around a jammer burst")
	for _, proto := range []experiments.Protocol{experiments.DiGS, experiments.Orchestra} {
		res, err := experiments.RunFig9f(proto, seed)
		if err != nil {
			return err
		}
		fmt.Printf("%s (O = delivered, . = lost):\n", proto)
		microTable(res)
	}
	return nil
}

func fig11(full bool, seed int64, snapCache string) error {
	header("Figure 11: node failure tolerance")
	opts := experiments.DefaultFailureOptions()
	opts.Seed = seed
	opts.CacheDir = snapCache
	if full {
		opts.Repetitions = 34
	}
	digs, orch, err := experiments.RunFig11(opts)
	if err != nil {
		return err
	}
	fmt.Printf("(a) flow PDR with a failed router:\n")
	fmt.Printf("    %-10s mean %.3f  disconnected flows %d/%d\n",
		"DiGS", metrics.Mean(digs.FlowPDRs), digs.DisconnectedFlows, digs.TotalFlows)
	fmt.Printf("    %-10s mean %.3f  disconnected flows %d/%d\n",
		"Orchestra", metrics.Mean(orch.FlowPDRs), orch.DisconnectedFlows, orch.TotalFlows)
	fmt.Printf("(c) power per received packet during failures (mW, median):\n")
	fmt.Printf("    %-10s %.4f\n", "DiGS", metrics.Quantile(digs.PowerPerPacket, 0.5))
	fmt.Printf("    %-10s %.4f\n", "Orchestra", metrics.Quantile(orch.PowerPerPacket, 0.5))
	return nil
}

func fig11b(seed int64) error {
	header("Figure 11(b): delivery micro-benchmark around a router failure")
	for _, proto := range []experiments.Protocol{experiments.DiGS, experiments.Orchestra} {
		res, err := experiments.RunFig11b(proto, seed)
		if err != nil {
			return err
		}
		fmt.Printf("%s (router dies before seq 33; O = delivered, . = lost):\n", proto)
		microTable(res)
	}
	return nil
}

func fig12(full bool, seed int64) error {
	header("Figure 12: 150-node simulation with periodic disturbers")
	opts := experiments.DefaultLargeScaleOptions()
	opts.Seed = seed
	if full {
		opts.FlowSets = 300
	}
	res, err := experiments.RunFig12(opts)
	if err != nil {
		return err
	}
	printComparison(res, true)
	return nil
}

// whartStatic contrasts the executable centralized baseline against the
// adaptive stacks under a router failure: the static schedule's PDR before
// and after (it never recovers — Figure 3 explains why).
func whartStatic(seed int64) error {
	header("Extra: static WirelessHART schedule under a router failure")
	clean, failed, err := experiments.RunWhartFailure(seed)
	if err != nil {
		return err
	}
	fmt.Printf("  clean PDR:          %.3f\n", clean)
	fmt.Printf("  after failure PDR:  %.3f (permanent until the manager pushes\n", failed)
	fmt.Printf("                      a new schedule, which Figure 3 prices in minutes)\n")
	return nil
}

func fig13(seed int64) error {
	header("Figure 13: network initialization (joining time CDF)")
	res, err := experiments.RunFig13(seed)
	if err != nil {
		return err
	}
	summarize := func(name string, ds []time.Duration) {
		var s []float64
		for _, d := range ds {
			s = append(s, d.Seconds())
		}
		fmt.Printf("  %-10s mean %5.1f s  median %5.1f s  p90 %5.1f s  max %5.1f s\n",
			name, metrics.Mean(s), metrics.Quantile(s, 0.5),
			metrics.Quantile(s, 0.9), metrics.Max(s))
	}
	summarize("DiGS", res.DiGS)
	summarize("Orchestra", res.Orchestra)
	return nil
}
