package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"
)

// controllerReport is the BENCH_controller.json schema: the controller
// stacks' tracked behavior snapshot. Each cell reuses the scale matrix
// machinery — the interesting columns here are joined (does the stack
// fully form within the warm window?) and slots/s (what the extra
// control plane costs the engine).
type controllerReport struct {
	GeneratedAt string      `json:"generated_at"`
	GoVersion   string      `json:"go_version"`
	NumCPU      int         `json:"num_cpu"`
	GOMAXPROCS  int         `json:"gomaxprocs"`
	SingleCPU   bool        `json:"single_cpu"`
	Note        string      `json:"note"`
	Cases       []scaleCase `json:"cases"`
}

// controllerMatrix exercises both controller stacks on the dense paper
// testbed and on the sparse sharded engine. The sdn warm window covers
// its full formation transient (in-band collection + dissemination puts
// it minutes behind the autonomous stacks by design — that latency is
// the paper's point); adaptive forms about as fast as digs.
func controllerMatrix() []scaleCase {
	return []scaleCase{
		{Name: "sdn-testbed-a-dense", Topology: "testbed-a", Protocol: "sdn",
			Engine: "dense", WarmSlots: 26_000, TimedSlots: 6_000},
		{Name: "adaptive-testbed-a-dense", Topology: "testbed-a", Protocol: "adaptive",
			Engine: "dense", WarmSlots: 12_000, TimedSlots: 6_000},
		{Name: "sdn-80-scale-2", Topology: "gen-field-80-3", Protocol: "sdn",
			Engine: "scale", Shards: 2, WarmSlots: 26_000, TimedSlots: 6_000},
		{Name: "adaptive-80-scale-2", Topology: "gen-field-80-3", Protocol: "adaptive",
			Engine: "scale", Shards: 2, WarmSlots: 12_000, TimedSlots: 6_000},
	}
}

// writeBenchController runs the controller matrix and writes
// BENCH_controller.json.
func writeBenchController(path string, seed int64) error {
	report := controllerReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		SingleCPU:   runtime.GOMAXPROCS(0) == 1,
		Note:        "joined counts the nodes synced after the warm window; sdn forms slower than the autonomous stacks by design (in-band collection + dissemination)",
		Cases:       controllerMatrix(),
	}
	for i := range report.Cases {
		c := &report.Cases[i]
		fmt.Fprintf(os.Stderr, "bench-controller: %s (%s, %s engine)...\n",
			c.Name, c.Topology, c.Engine)
		if err := runScaleCase(c, seed); err != nil {
			return err
		}
		if c.Joined == 0 {
			return fmt.Errorf("bench-controller: %s: no node joined within %d warm slots", c.Name, c.WarmSlots)
		}
		fmt.Printf("%-26s nodes=%-4d joined=%-4d wall=%6.2fs  %8.0f slots/s\n",
			c.Name, c.Nodes, c.Joined, c.WallS, c.SlotsPerS)
	}
	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}
