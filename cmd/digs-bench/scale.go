package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"github.com/digs-net/digs/internal/flows"
	"github.com/digs-net/digs/internal/scenario"
	"github.com/digs-net/digs/internal/sim"
)

// scaleCase is one cell of the scale benchmark matrix.
type scaleCase struct {
	Name     string `json:"name"`
	Topology string `json:"topology"`
	Nodes    int    `json:"nodes"`
	Protocol string `json:"protocol"`
	// Engine is "dense" (legacy sequential slot loop over the full RSS
	// matrix) or "scale" (sparse sharded engine).
	Engine string `json:"engine"`
	Shards int    `json:"shards"`
	// Gate marks the cells bench-gate re-times in CI.
	Gate bool `json:"gate"`

	WarmSlots  int64 `json:"warm_slots"`
	TimedSlots int64 `json:"timed_slots"`

	Joined     int       `json:"joined"`
	WallS      float64   `json:"wall_s"`
	SlotsPerS  float64   `json:"slots_per_s"`
	ShardBusyS []float64 `json:"shard_busy_s,omitempty"`
	// SpeedupVsDense is filled on scale cells that have a dense twin in
	// the matrix (same topology and protocol): dense wall / scale wall.
	SpeedupVsDense float64 `json:"speedup_vs_dense,omitempty"`
}

// scaleReport is the BENCH_scale.json schema. GOMAXPROCS and SingleCPU
// are recorded so a ~1.0x shard speedup on a single-CPU runner is read as
// "time-sliced, not parallel" instead of a regression.
type scaleReport struct {
	GeneratedAt string      `json:"generated_at"`
	GoVersion   string      `json:"go_version"`
	NumCPU      int         `json:"num_cpu"`
	GOMAXPROCS  int         `json:"gomaxprocs"`
	SingleCPU   bool        `json:"single_cpu"`
	Note        string      `json:"note"`
	Cases       []scaleCase `json:"cases"`
}

// scaleMatrix is the tracked benchmark matrix: nodes x protocol x shards,
// plus the dense-engine twin at 1k nodes that anchors the speedup claim.
// Budgets keep the full matrix under ~2 minutes on one CPU; the timed
// window starts after a warm-up so it measures the converged steady state
// (where napping and sparse resolution pay), not the join transient.
func scaleMatrix() []scaleCase {
	return []scaleCase{
		{Name: "digs-1k-dense", Topology: "gen-plant-1000-3", Protocol: "digs",
			Engine: "dense", WarmSlots: 60_000, TimedSlots: 10_000, Gate: true},
		{Name: "digs-1k-scale-1", Topology: "gen-plant-1000-3", Protocol: "digs",
			Engine: "scale", Shards: 1, WarmSlots: 60_000, TimedSlots: 10_000, Gate: true},
		{Name: "digs-1k-scale-2", Topology: "gen-plant-1000-3", Protocol: "digs",
			Engine: "scale", Shards: 2, WarmSlots: 60_000, TimedSlots: 10_000},
		{Name: "digs-1k-scale-4", Topology: "gen-plant-1000-3", Protocol: "digs",
			Engine: "scale", Shards: 4, WarmSlots: 60_000, TimedSlots: 10_000},
		{Name: "orchestra-1k-scale-1", Topology: "gen-plant-1000-3", Protocol: "orchestra",
			Engine: "scale", Shards: 1, WarmSlots: 60_000, TimedSlots: 10_000},
		{Name: "digs-10k-scale-1", Topology: "gen-plant-10000-3", Protocol: "digs",
			Engine: "scale", Shards: 1, WarmSlots: 5_000, TimedSlots: 3_000},
		{Name: "digs-10k-scale-4", Topology: "gen-plant-10000-3", Protocol: "digs",
			Engine: "scale", Shards: 4, WarmSlots: 5_000, TimedSlots: 3_000},
		{Name: "orchestra-10k-scale-1", Topology: "gen-plant-10000-3", Protocol: "orchestra",
			Engine: "scale", Shards: 1, WarmSlots: 5_000, TimedSlots: 3_000},
	}
}

// runScaleCase executes one matrix cell: build, warm up, then time a
// steady-state window with the topology's suggested flows live. Any
// registered stack runs here — the scenario registry is the dispatch.
func runScaleCase(c *scaleCase, seed int64) error {
	topo, err := scenario.PickTopology(c.Topology)
	if err != nil {
		return fmt.Errorf("scale case %s: %w", c.Name, err)
	}
	c.Nodes = topo.N()

	p := scenario.Params{Topology: topo, TopologyName: c.Topology, Protocol: c.Protocol, Seed: seed}
	switch c.Engine {
	case "dense":
		topo.ForceSparse = false
		if topo.SparseOnly() {
			return fmt.Errorf("scale case %s: %d nodes cannot run the dense engine", c.Name, topo.N())
		}
	case "scale":
		p.Shards = c.Shards
		if p.Shards < 1 {
			p.Shards = 1
		}
	default:
		return fmt.Errorf("scale case %s: unknown engine %q", c.Name, c.Engine)
	}
	sc, err := scenario.Build(p)
	if err != nil {
		return fmt.Errorf("scale case %s: %w", c.Name, err)
	}
	nw := sc.NW

	nw.Run(c.WarmSlots)
	fset := flows.FixedSet(topo.SuggestedSources, 2*time.Second)
	flows.Schedule(nw, fset, int(c.TimedSlots/200)+1, func(f flows.Flow, seq uint16, asn sim.ASN) {
		_ = sc.MACNode(int(f.Source)).InjectData(&sim.Frame{Origin: f.Source, FlowID: f.ID, Seq: seq, BornASN: asn})
	})
	busyBefore := nw.ShardBusy()
	start := time.Now()
	nw.Run(c.TimedSlots)
	wall := time.Since(start)

	c.Joined = sc.Joined()
	c.WallS = wall.Seconds()
	c.SlotsPerS = float64(c.TimedSlots) / wall.Seconds()
	if busy := nw.ShardBusy(); busy != nil {
		c.ShardBusyS = make([]float64, len(busy))
		for i := range busy {
			d := busy[i]
			if busyBefore != nil && i < len(busyBefore) {
				d -= busyBefore[i]
			}
			c.ShardBusyS[i] = d.Seconds()
		}
	}
	return nil
}

// runScaleSmoke briefly steps a generated 10k-node deployment on the
// sparse sharded engine under both distributed stacks — a cheap CI check
// that the massive-scale path still builds, shards and makes join
// progress. WirelessHART is excluded by design: its centralised manager
// computes the whole schedule up front, which is the scaling limit the
// paper's distributed approach removes.
func runScaleSmoke(seed int64) error {
	const slots = 6000
	for _, tc := range []struct {
		protocol string
		shards   int
	}{
		{"digs", 4},
		{"orchestra", 1},
	} {
		c := scaleCase{Name: "smoke-" + tc.protocol, Topology: "gen-plant-10000-3",
			Protocol: tc.protocol, Engine: "scale", Shards: tc.shards,
			WarmSlots: 0, TimedSlots: slots}
		fmt.Fprintf(os.Stderr, "scale-smoke: %s on %s, %d shards, %d slots...\n",
			tc.protocol, c.Topology, tc.shards, slots)
		if err := runScaleCase(&c, seed); err != nil {
			return err
		}
		if c.Joined == 0 {
			return fmt.Errorf("scale-smoke: %s: no node joined within %d slots", tc.protocol, slots)
		}
		fmt.Printf("%-16s nodes=%d joined=%d  %8.0f slots/s\n", c.Name, c.Nodes, c.Joined, c.SlotsPerS)
	}
	return nil
}

// writeBenchScale runs the full matrix and writes BENCH_scale.json.
func writeBenchScale(path string, seed int64) error {
	report := scaleReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		SingleCPU:   runtime.GOMAXPROCS(0) == 1,
		Cases:       scaleMatrix(),
	}
	if report.SingleCPU {
		report.Note = "single-CPU host: multi-shard cells measure goroutine time-slicing, not parallel speedup; shard_busy_s still shows the per-shard work split"
	} else {
		report.Note = "multi-CPU host: multi-shard wall-clock reflects real parallelism"
	}
	denseWall := map[string]float64{}
	for i := range report.Cases {
		c := &report.Cases[i]
		fmt.Fprintf(os.Stderr, "bench-scale: %s (%s, %s engine, %d shards)...\n",
			c.Name, c.Topology, c.Engine, c.Shards)
		if err := runScaleCase(c, seed); err != nil {
			return err
		}
		key := c.Topology + "/" + c.Protocol
		if c.Engine == "dense" {
			denseWall[key] = c.WallS
		} else if dw, ok := denseWall[key]; ok && c.WallS > 0 {
			c.SpeedupVsDense = dw / c.WallS
		}
		fmt.Printf("%-24s nodes=%-6d joined=%-6d wall=%6.2fs  %8.0f slots/s", c.Name, c.Nodes, c.Joined, c.WallS, c.SlotsPerS)
		if c.SpeedupVsDense > 0 {
			fmt.Printf("  %.2fx vs dense", c.SpeedupVsDense)
		}
		fmt.Println()
	}
	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}

// gateBenchScale re-times the gated matrix cells and fails when any is
// more than 15% slower (slots/s) than the checked-in BENCH_scale.json.
// Speedups update nothing: refreshing the baseline is an explicit
// `make bench-scale` + commit.
func gateBenchScale(path string, seed int64) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("bench-gate: read baseline: %w (run `make bench-scale` to create it)", err)
	}
	var baseline scaleReport
	if err := json.Unmarshal(blob, &baseline); err != nil {
		return fmt.Errorf("bench-gate: parse %s: %w", path, err)
	}
	base := map[string]scaleCase{}
	for _, c := range baseline.Cases {
		base[c.Name] = c
	}
	const tolerance = 0.15
	failed := 0
	for _, c := range scaleMatrix() {
		if !c.Gate {
			continue
		}
		ref, ok := base[c.Name]
		if !ok || ref.SlotsPerS <= 0 {
			return fmt.Errorf("bench-gate: baseline %s has no usable entry %q (run `make bench-scale`)", path, c.Name)
		}
		fmt.Fprintf(os.Stderr, "bench-gate: %s...\n", c.Name)
		if err := runScaleCase(&c, seed); err != nil {
			return err
		}
		ratio := c.SlotsPerS / ref.SlotsPerS
		status := "ok"
		if ratio < 1-tolerance {
			status = "REGRESSION"
			failed++
		}
		fmt.Printf("%-24s baseline %8.0f slots/s  now %8.0f slots/s  (%.2fx)  %s\n",
			c.Name, ref.SlotsPerS, c.SlotsPerS, ratio, status)
	}
	if failed > 0 {
		return fmt.Errorf("bench-gate: %d cell(s) regressed more than %.0f%% vs %s", failed, tolerance*100, path)
	}
	return nil
}
