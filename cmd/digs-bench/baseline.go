package main

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"time"

	"github.com/digs-net/digs/internal/campaign"
	"github.com/digs-net/digs/internal/experiments"
)

// baselineCampaign is one campaign's sequential-vs-parallel timing record.
type baselineCampaign struct {
	Name        string  `json:"name"`
	Jobs        int     `json:"jobs"`
	SequentialS float64 `json:"sequential_s"`
	ParallelS   float64 `json:"parallel_s"`
	Speedup     float64 `json:"speedup"`
	// Identical reports whether the parallel run reproduced the
	// sequential run's results bit for bit — the campaign runner's
	// determinism contract.
	Identical bool `json:"identical"`
}

// baselineReport is the BENCH_baseline.json schema future PRs diff against
// to track the perf trajectory.
type baselineReport struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	NumCPU      int    `json:"num_cpu"`
	// GOMAXPROCS and SingleCPU label the parallel timings: on a
	// single-CPU runner a ~1.0x campaign "speedup" is goroutine
	// time-slicing, not a parallelism regression.
	GOMAXPROCS int                `json:"gomaxprocs"`
	SingleCPU  bool               `json:"single_cpu"`
	Workers    int                `json:"workers"`
	Campaigns  []baselineCampaign `json:"campaigns"`
}

// writePerfBaseline times reduced campaigns sequentially (one worker) and
// on the full pool, verifies the outputs are identical, and writes the
// JSON report. On a single-core machine the speedup is ~1 by construction;
// the identity check still validates determinism.
func writePerfBaseline(path string, seed int64) error {
	workers := campaign.DefaultWorkers()
	report := baselineReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		SingleCPU:   runtime.GOMAXPROCS(0) == 1,
		Workers:     workers,
		Campaigns:   []baselineCampaign{},
	}

	// Campaign 1: the acceptance campaign — RunInterference, Testbed A,
	// 10 flow sets per protocol (two protocol jobs).
	{
		run := func(parallel int) (*experiments.InterferenceResult, time.Duration, error) {
			opts := experiments.DefaultInterferenceOptions("A")
			opts.FlowSets = 10
			opts.Seed = seed
			opts.Parallel = parallel
			start := time.Now()
			res, err := experiments.RunInterference(opts)
			return res, time.Since(start), err
		}
		fmt.Fprintln(os.Stderr, "perf-baseline: RunInterference FlowSets=10, sequential...")
		seqRes, seqT, err := run(1)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "perf-baseline: sequential %.1fs; parallel (%d workers)...\n",
			seqT.Seconds(), workers)
		parRes, parT, err := run(workers)
		if err != nil {
			return err
		}
		report.Campaigns = append(report.Campaigns, baselineCampaign{
			Name:        "RunInterference-testbedA-10sets",
			Jobs:        2,
			SequentialS: seqT.Seconds(),
			ParallelS:   parT.Seconds(),
			Speedup:     seqT.Seconds() / parT.Seconds(),
			Identical:   reflect.DeepEqual(seqRes, parRes),
		})
	}

	// Campaign 2: RunFig4And5 with one repetition per jammer count (four
	// independent jobs) — the shape a multi-core pool flattens best.
	{
		run := func(parallel int) ([]experiments.RepairResult, time.Duration, error) {
			opts := experiments.DefaultRepairOptions()
			opts.Repetitions = 1
			opts.Seed = seed
			opts.Parallel = parallel
			start := time.Now()
			res, err := experiments.RunFig4And5(opts)
			return res, time.Since(start), err
		}
		fmt.Fprintln(os.Stderr, "perf-baseline: RunFig4And5 4 jammer counts, sequential...")
		seqRes, seqT, err := run(1)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "perf-baseline: sequential %.1fs; parallel (%d workers)...\n",
			seqT.Seconds(), workers)
		parRes, parT, err := run(workers)
		if err != nil {
			return err
		}
		report.Campaigns = append(report.Campaigns, baselineCampaign{
			Name:        "RunFig4And5-4jammerCounts",
			Jobs:        4,
			SequentialS: seqT.Seconds(),
			ParallelS:   parT.Seconds(),
			Speedup:     seqT.Seconds() / parT.Seconds(),
			Identical:   reflect.DeepEqual(seqRes, parRes),
		})
	}

	for _, c := range report.Campaigns {
		if !c.Identical {
			return fmt.Errorf("perf-baseline: %s: parallel results differ from sequential", c.Name)
		}
		fmt.Printf("%-32s jobs=%d  sequential %.1fs  parallel %.1fs  speedup %.2fx  identical=%v\n",
			c.Name, c.Jobs, c.SequentialS, c.ParallelS, c.Speedup, c.Identical)
	}

	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}
