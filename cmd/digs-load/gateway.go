// Gateway-tier harnesses for digs-load: self-hosting a replicated
// gateway+backends tier for the bench and smoke, the -partition
// harness (blackhole one backend mid-burst behind the fault proxy and
// assert clean failover), and the -gateway -crash harness (SIGKILL a
// real backend process mid-burst and assert zero acknowledged jobs
// lost through the gateway).
package main

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"github.com/digs-net/digs/internal/gateway"
	"github.com/digs-net/digs/internal/gateway/faultproxy"
	"github.com/digs-net/digs/internal/server"
)

// inprocBackend is one in-process digs-server on a loopback port.
type inprocBackend struct {
	srv  *server.Server
	hs   *http.Server
	addr string // host:port
}

func (b *inprocBackend) stop() {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	b.srv.Shutdown(ctx)
	b.hs.Shutdown(ctx)
}

// startInprocBackends stands up n digs-servers (b0..bN) on loopback
// ports, each with its own temp data dir.
func startInprocBackends(n, workers int) ([]*inprocBackend, error) {
	var backends []*inprocBackend
	fail := func(err error) ([]*inprocBackend, error) {
		for _, b := range backends {
			b.stop()
		}
		return nil, err
	}
	for i := 0; i < n; i++ {
		srv, err := server.New(server.Config{
			Workers: workers,
			DataDir: mustTempDir(),
			Name:    fmt.Sprintf("b%d", i),
		})
		if err != nil {
			return fail(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			srv.Shutdown(context.Background())
			return fail(err)
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln)
		backends = append(backends, &inprocBackend{srv: srv, hs: hs, addr: ln.Addr().String()})
	}
	return backends, nil
}

// serveGateway puts a Gateway on a loopback port and returns its base
// URL plus a stopper.
func serveGateway(gw *gateway.Gateway) (stop func(), url string, err error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		gw.Close()
		return nil, "", err
	}
	hs := &http.Server{Handler: gw.Handler()}
	go hs.Serve(ln)
	stop = func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		hs.Shutdown(ctx)
		gw.Close()
	}
	return stop, "http://" + ln.Addr().String(), nil
}

// selfHostGateway stands up the in-process replicated tier the bench
// and smoke run against in -gateway mode: opts.backends digs-servers
// plus a digs-gateway routing across them.
func selfHostGateway(opts options) (stop func(), url string, err error) {
	n := opts.backends
	if n < 1 {
		n = 1
	}
	backends, err := startInprocBackends(n, opts.workers)
	if err != nil {
		return nil, "", err
	}
	stopBackends := func() {
		for _, b := range backends {
			b.stop()
		}
	}
	urls := make([]string, len(backends))
	for i, b := range backends {
		urls[i] = "http://" + b.addr
	}
	gw, err := gateway.New(gateway.Config{Backends: urls, Replicas: opts.replicas})
	if err != nil {
		stopBackends()
		return nil, "", err
	}
	stopGW, gwURL, err := serveGateway(gw)
	if err != nil {
		stopBackends()
		return nil, "", err
	}
	fmt.Fprintf(os.Stderr, "self-hosted gateway tier: %d backends, R=%d\n", n, opts.replicas)
	return func() { stopGW(); stopBackends() }, gwURL, nil
}

// gatewayStats fetches and decodes the gateway's /v1/stats document.
func gatewayStats(cl *client) (*gateway.Stats, error) {
	body, code, err := cl.getBytes("/v1/stats")
	if err != nil {
		return nil, err
	}
	if code != http.StatusOK {
		return nil, fmt.Errorf("gateway stats: HTTP %d", code)
	}
	var st gateway.Stats
	if err := json.Unmarshal(body, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// backendStat picks one backend's entry out of the gateway stats.
func backendStat(st *gateway.Stats, key string) *gateway.BackendStats {
	for i := range st.Backends {
		if st.Backends[i].Name == key {
			return &st.Backends[i]
		}
	}
	return nil
}

// pickVictim returns the backend key holding the most primary
// placements — killing or partitioning it guarantees the fault lands
// on real work, not an idle spare.
func pickVictim(cl *client, candidates []string) (string, error) {
	st, err := gatewayStats(cl)
	if err != nil {
		return "", err
	}
	best, bestPrimaries := "", int64(-1)
	for _, key := range candidates {
		bs := backendStat(st, key)
		if bs == nil {
			continue
		}
		if bs.PrimaryJobs > bestPrimaries {
			best, bestPrimaries = key, bs.PrimaryJobs
		}
	}
	if best == "" {
		return "", fmt.Errorf("no candidate backend found in gateway stats")
	}
	return best, nil
}

// ackedJob is one submission the gateway acknowledged with 202.
type ackedJob struct{ jobID, specHash string }

// burstResult is what a gateway submission burst produced.
type burstResult struct {
	mu   sync.Mutex
	acc  []ackedJob
	errs []string
}

func (r *burstResult) acked() []ackedJob {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]ackedJob(nil), r.acc...)
}

func (r *burstResult) errors() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.errs...)
}

// runBurst fires jobs submissions at the gateway concurrently, using
// seeds seedBase..seedBase+jobs-1, and closes halfway once half of them
// are acknowledged — the moment the harness injects its fault. Every
// submission must come back 202 (or 200 from the cache): through a
// gateway, a failed submit IS the bug, so errors are recorded, not
// tolerated.
func runBurst(cl *client, jobs int, seedBase int64, halfway chan<- struct{}) (*burstResult, *sync.WaitGroup) {
	res := &burstResult{}
	halfAt := jobs / 2
	if halfAt < 1 {
		halfAt = 1
	}
	var once sync.Once
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := cl.submit(benchSpec(seedBase+int64(i), 10*time.Second))
			res.mu.Lock()
			defer res.mu.Unlock()
			switch {
			case err != nil:
				res.errs = append(res.errs, fmt.Sprintf("seed %d: %v", seedBase+int64(i), err))
			case resp.code == http.StatusAccepted:
				res.acc = append(res.acc, ackedJob{resp.JobID, resp.SpecHash})
				if len(res.acc) == halfAt {
					once.Do(func() { close(halfway) })
				}
			case resp.code == http.StatusOK:
				// Cache hit: already done, nothing to track.
			default:
				res.errs = append(res.errs, fmt.Sprintf("seed %d: HTTP %d: %s", seedBase+int64(i), resp.code, resp.Error))
			}
		}(i)
	}
	return res, &wg
}

// verifyAcked drives every acknowledged job to a terminal state through
// the gateway and checks the stored result bytes re-hash to the job's
// reported content address.
func verifyAcked(cl *client, acked []ackedJob, deadline time.Time) error {
	for _, a := range acked {
		view, err := cl.awaitTerminal(a.jobID, deadline)
		if err != nil {
			return fmt.Errorf("job %s (spec %s): %w", a.jobID, a.specHash, err)
		}
		if view.Status != server.StatusDone {
			return fmt.Errorf("job %s ended %s: %s", a.jobID, view.Status, view.Error)
		}
		body, code, err := cl.getBytes("/v1/results/" + a.specHash)
		if err != nil {
			return err
		}
		if code != http.StatusOK {
			return fmt.Errorf("job %s: stored result %s: HTTP %d", a.jobID, a.specHash, code)
		}
		sum := sha256.Sum256(bytes.TrimSpace(body))
		if got := hex.EncodeToString(sum[:]); got != view.ResultHash {
			return fmt.Errorf("job %s: stored result hashes to %s, job reports %s", a.jobID, got, view.ResultHash)
		}
	}
	return nil
}

// partitionHarness is the -gateway -partition mode: prove that a
// network partition of one backend mid-burst costs failovers, never
// errors.
//
//  1. Stand up opts.backends in-process digs-servers, each behind a
//     fault-injecting proxy, and a gateway routing across the proxies.
//  2. Fire a concurrent burst; the moment half is acknowledged,
//     blackhole the backend holding the most primary placements (new
//     connections hang, established ones are reset — a real partition).
//  3. The gateway's probe must evict the victim within one probe
//     interval + timeout; the burst must finish with zero submission
//     errors (429/503/timeouts absorbed by failover and retry budget).
//  4. Every acknowledged job must reach done through the gateway with
//     intact, correctly hashed result bytes.
//  5. Heal the partition; the probe must re-admit the backend.
func partitionHarness(opts options) error {
	n := opts.backends
	if n < 2 {
		n = 3
	}
	const (
		probeInterval = 150 * time.Millisecond
		probeTimeout  = 750 * time.Millisecond
	)

	backends, err := startInprocBackends(n, opts.workers)
	if err != nil {
		return err
	}
	defer func() {
		for _, b := range backends {
			b.stop()
		}
	}()
	addrs := make([]string, len(backends))
	for i, b := range backends {
		addrs[i] = b.addr
	}
	fleet, err := faultproxy.NewFleet(addrs)
	if err != nil {
		return err
	}
	defer fleet.Close()

	gw, err := gateway.New(gateway.Config{
		Backends:        fleet.URLs(),
		Replicas:        opts.replicas,
		ProbeInterval:   probeInterval,
		ProbeTimeout:    probeTimeout,
		BreakerFailures: 2,
		BreakerOpenFor:  time.Second,
		RequestTimeout:  2 * time.Second,
	})
	if err != nil {
		return err
	}
	stopGW, gwURL, err := serveGateway(gw)
	if err != nil {
		return err
	}
	defer stopGW()
	cl := newClient(gwURL, opts.reqTimeout)
	fmt.Fprintf(os.Stderr, "partition harness: %d backends behind fault proxies, R=%d\n", n, opts.replicas)

	halfway := make(chan struct{})
	res, wg := runBurst(cl, opts.crashJobs, 12000, halfway)
	select {
	case <-halfway:
	case <-time.After(30 * time.Second):
		return fmt.Errorf("burst never reached half acknowledged")
	}

	victim, err := pickVictim(cl, fleet.URLs())
	if err != nil {
		return err
	}
	var proxy *faultproxy.Proxy
	for _, p := range fleet.Proxies {
		if p.URL() == victim {
			proxy = p
		}
	}
	if proxy == nil {
		return fmt.Errorf("no fault proxy for victim %s", victim)
	}
	partitionedAt := time.Now()
	proxy.Partition()
	fmt.Printf("partitioned %s mid-burst (most primary placements)\n", victim)

	// The prober must evict the victim within one interval + timeout
	// (plus scheduling slack): that is the gateway's detection contract.
	tripBudget := probeInterval + probeTimeout + 1500*time.Millisecond
	var tripped time.Duration
	for {
		st, err := gatewayStats(cl)
		if err != nil {
			return err
		}
		if bs := backendStat(st, victim); bs != nil && (!bs.Ready || bs.Breaker == "open") {
			tripped = time.Since(partitionedAt)
			break
		}
		if time.Since(partitionedAt) > tripBudget {
			return fmt.Errorf("partitioned backend still routable %v after the partition (budget %v)",
				time.Since(partitionedAt), tripBudget)
		}
		time.Sleep(25 * time.Millisecond)
	}
	fmt.Printf("probe evicted the partitioned backend in %v (budget %v)\n",
		tripped.Round(time.Millisecond), tripBudget)

	wg.Wait()
	if errs := res.errors(); len(errs) > 0 {
		return fmt.Errorf("%d submissions surfaced errors through the gateway:\n  %s",
			len(errs), strings.Join(errs, "\n  "))
	}
	acked := res.acked()
	if err := verifyAcked(cl, acked, time.Now().Add(2*time.Minute)); err != nil {
		return err
	}

	// Heal the partition: the probe must re-admit the backend (probe
	// success is the breaker's half-open trial).
	proxy.Heal()
	healedAt := time.Now()
	for {
		st, err := gatewayStats(cl)
		if err != nil {
			return err
		}
		if bs := backendStat(st, victim); bs != nil && bs.Ready && bs.Breaker == "closed" {
			break
		}
		if time.Since(healedAt) > 10*time.Second {
			return fmt.Errorf("healed backend was never re-admitted")
		}
		time.Sleep(50 * time.Millisecond)
	}
	st, err := gatewayStats(cl)
	if err != nil {
		return err
	}
	fmt.Printf("healed backend re-admitted in %v\n", time.Since(healedAt).Round(time.Millisecond))
	fmt.Printf("all %d acknowledged jobs done with verified results "+
		"(failovers %d, resubmits %d, 429 retries %d, shed %d)\n",
		len(acked), st.Failovers, st.Resubmits, st.Retried429, st.Shed)
	fmt.Println("partition harness: OK — zero submission errors across a mid-burst partition")
	return nil
}

// startGateway launches the digs-gateway binary over the given backend
// URLs on a kernel-assigned port.
func startGateway(bin string, backends []string, replicas int) (*serverProc, error) {
	return spawnListener(bin, "gateway", []string{
		"-addr", "127.0.0.1:0",
		"-backends", strings.Join(backends, ","),
		"-replicas", strconv.Itoa(replicas),
		"-probe", "200ms",
		"-probe-timeout", "1s",
		"-request-timeout", "5s",
	})
}

// gatewayCrashHarness is the -gateway -crash mode: prove that
// SIGKILLing a whole backend process mid-burst costs nothing a client
// can see.
//
//  1. Start opts.backends real digs-server processes (1 worker each, so
//     backlogs build) and a real digs-gateway over them.
//  2. Fire a concurrent burst at the gateway; the moment half is
//     acknowledged, SIGKILL the backend holding the most primary
//     placements.
//  3. The burst must finish with zero submission errors — failover and
//     the retry budget absorb the loss.
//  4. Every acknowledged job must reach done through the gateway, with
//     result bytes that re-hash to the job's reported content address
//     (served or re-replicated from the surviving replica).
//  5. The gateway and surviving backends must still shut down cleanly.
func gatewayCrashHarness(opts options) error {
	n := opts.backends
	if n < 2 {
		n = 3
	}
	serverBin, cleanupSrv, err := buildBinary(opts.serverBin, "./cmd/digs-server", "digs-server")
	if err != nil {
		return err
	}
	defer cleanupSrv()
	gatewayBin, cleanupGW, err := buildBinary(opts.gatewayBin, "./cmd/digs-gateway", "digs-gateway")
	if err != nil {
		return err
	}
	defer cleanupGW()

	var procs []*serverProc
	var urls []string
	killedKey := ""
	defer func() {
		for i, p := range procs {
			if p != nil && urls[i] != killedKey {
				p.kill()
			}
		}
	}()
	for i := 0; i < n; i++ {
		dataDir, err := os.MkdirTemp("", fmt.Sprintf("digs-gwcrash-b%d-", i))
		if err != nil {
			return err
		}
		defer os.RemoveAll(dataDir)
		sp, err := startServer(serverBin, dataDir, 1, "-name", fmt.Sprintf("b%d", i))
		if err != nil {
			return err
		}
		procs = append(procs, sp)
		urls = append(urls, sp.base)
	}
	gwProc, err := startGateway(gatewayBin, urls, opts.replicas)
	if err != nil {
		return err
	}
	gwClean := false
	defer func() {
		if !gwClean {
			gwProc.kill()
		}
	}()
	cl := newClient(gwProc.base, opts.reqTimeout)

	halfway := make(chan struct{})
	res, wg := runBurst(cl, opts.crashJobs, 9500, halfway)
	select {
	case <-halfway:
	case <-time.After(30 * time.Second):
		return fmt.Errorf("burst never reached half acknowledged")
	}

	victim, err := pickVictim(cl, urls)
	if err != nil {
		return err
	}
	var victimProc *serverProc
	for i, u := range urls {
		if u == victim {
			victimProc = procs[i]
		}
	}
	victimProc.kill() // SIGKILL: no drain, no goodbye
	killedKey = victim
	fmt.Printf("SIGKILLed backend %s mid-burst (most primary placements)\n", victim)

	wg.Wait()
	if errs := res.errors(); len(errs) > 0 {
		return fmt.Errorf("%d submissions surfaced errors through the gateway:\n  %s",
			len(errs), strings.Join(errs, "\n  "))
	}
	acked := res.acked()
	fmt.Printf("burst done: %d jobs acknowledged, zero submission errors\n", len(acked))
	if err := verifyAcked(cl, acked, time.Now().Add(2*time.Minute)); err != nil {
		return err
	}

	st, err := gatewayStats(cl)
	if err != nil {
		return err
	}
	if bs := backendStat(st, victim); bs != nil && bs.Ready {
		return fmt.Errorf("killed backend %s still marked ready in gateway stats", victim)
	}
	fmt.Printf("all %d acknowledged jobs done with verified results "+
		"(failovers %d, resubmits %d, read repairs %d, hedged reads %d)\n",
		len(acked), st.Failovers, st.Resubmits, st.ReadRepairs, st.HedgedReads)

	// The tier must still die politely.
	if err := gwProc.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	if err := gwProc.cmd.Wait(); err != nil {
		return fmt.Errorf("gateway exited uncleanly: %w", err)
	}
	gwClean = true
	for i, p := range procs {
		if urls[i] == killedKey {
			continue
		}
		if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
			return err
		}
		if err := p.cmd.Wait(); err != nil {
			return fmt.Errorf("backend %s exited uncleanly: %w", urls[i], err)
		}
		procs[i] = nil
	}
	fmt.Println("gateway crash harness: OK — a dead backend cost failovers, never errors")
	return nil
}
