// Command digs-load exercises a digs-server with a mixed workload and
// reports throughput and latency:
//
//	digs-load -o BENCH_server.json         # self-host, bench, write report
//	digs-load -url http://host:8080 -n 40  # hammer a remote server
//	digs-load -gate BENCH_server.json      # re-run and fail on regression
//	digs-load -smoke                       # end-to-end smoke (ci)
//
// The bench runs three request classes against the same server:
//
//	cold — never-seen scenarios: full formation + measurement window
//	warm — same deployments, longer window: formation restored from the
//	       server's warm pool, only the window simulates
//	dup  — byte-for-byte repeats: content-addressed cache hits, no
//	       simulation at all
//
// Latency is submit-to-result: the POST plus (for 202) following the
// job's SSE stream to its terminal event. The expected shape is
// dup ≪ warm < cold.
//
// -smoke runs the issue's end-to-end scenario instead: submit a small
// generated plant, follow the SSE stream to completion, verify the
// result hash and the content-addressed store round-trip, resubmit and
// demand a cache hit, and check the server result is bit-identical to an
// in-process run of the same spec.
//
// -crash runs the crash-safety harness: spawn a real digs-server
// process, SIGKILL it in the middle of a submission burst, restart it
// on the same data directory, and assert that every job the dead server
// acknowledged reaches a terminal state with intact, correctly hashed
// result bytes — zero accepted jobs lost.
//
// Backpressure (429 + Retry-After) is honored everywhere with a bounded
// retry budget, so the load numbers measure throughput rather than
// counting the server's own flow control as failures.
package main

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/digs-net/digs/internal/scenario"
	"github.com/digs-net/digs/internal/server"
	"github.com/digs-net/digs/internal/store"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "digs-load:", err)
		os.Exit(1)
	}
}

type options struct {
	url        string
	n          int
	conc       int
	workers    int
	out        string
	gate       string
	tol        float64
	smoke      bool
	crash      bool
	serverBin  string
	crashJobs  int
	reqTimeout time.Duration
	gateway    bool
	backends   int
	replicas   int
	partition  bool
	gatewayBin string
}

func run() error {
	var opts options
	flag.StringVar(&opts.url, "url", "", "target server base URL (empty = self-host an in-process server)")
	flag.IntVar(&opts.n, "n", 24, "requests per class (cold, warm, dup)")
	flag.IntVar(&opts.conc, "conc", 2, "concurrent clients")
	flag.IntVar(&opts.workers, "workers", 2, "self-hosted server's worker pool size")
	flag.StringVar(&opts.out, "o", "", "write the bench report to this JSON file")
	flag.StringVar(&opts.gate, "gate", "", "re-run the bench and fail on regression vs this baseline report")
	flag.Float64Var(&opts.tol, "tol", 0.5,
		"gate tolerance: fail when req/s drops or p99 grows by more than this fraction")
	flag.BoolVar(&opts.smoke, "smoke", false, "run the end-to-end smoke instead of the bench")
	flag.BoolVar(&opts.crash, "crash", false,
		"run the crash-safety harness: SIGKILL a real digs-server mid-burst, restart, assert zero lost jobs")
	flag.StringVar(&opts.serverBin, "server-bin", "",
		"digs-server binary for -crash (empty = go build one into a temp dir)")
	flag.IntVar(&opts.crashJobs, "crash-jobs", 12, "burst size for -crash")
	flag.DurationVar(&opts.reqTimeout, "req-timeout", 30*time.Second,
		"per-request timeout for submit/status/stats calls (SSE streams are exempt)")
	flag.BoolVar(&opts.gateway, "gateway", false,
		"drive a digs-gateway tier over -backends digs-servers instead of one server")
	flag.IntVar(&opts.backends, "backends", 3, "backend count behind the gateway (-gateway modes)")
	flag.IntVar(&opts.replicas, "replicas", 2, "gateway replica placement factor (-gateway modes)")
	flag.BoolVar(&opts.partition, "partition", false,
		"with -gateway: partition one backend mid-burst via the fault proxy and assert clean failover")
	flag.StringVar(&opts.gatewayBin, "gateway-bin", "",
		"digs-gateway binary for -gateway -crash (empty = go build one into a temp dir)")
	flag.Parse()

	if opts.crash {
		if opts.gateway {
			return gatewayCrashHarness(opts)
		}
		return crashHarness(opts)
	}
	if opts.partition {
		if !opts.gateway {
			return fmt.Errorf("-partition requires -gateway")
		}
		return partitionHarness(opts)
	}

	base := opts.url
	if base == "" {
		var stop func()
		var url string
		var err error
		if opts.gateway {
			stop, url, err = selfHostGateway(opts)
		} else {
			stop, url, err = selfHost(opts.workers)
		}
		if err != nil {
			return err
		}
		defer stop()
		base = url
	}
	cl := newClient(base, opts.reqTimeout)

	if opts.smoke {
		return smoke(cl, opts.url == "")
	}
	rep, err := bench(cl, opts)
	if err != nil {
		return err
	}
	printReport(rep)
	if opts.out != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := store.WriteFileAtomic(opts.out, append(b, '\n')); err != nil {
			return err
		}
		fmt.Printf("report written to %s\n", opts.out)
	}
	if opts.gate != "" {
		return gate(rep, opts.gate, opts.tol)
	}
	return nil
}

// selfHost starts an in-process digs-server on a loopback port.
func selfHost(workers int) (stop func(), url string, err error) {
	srv, err := server.New(server.Config{
		Workers: workers,
		DataDir: mustTempDir(),
	})
	if err != nil {
		return nil, "", err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	stop = func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		srv.Shutdown(ctx)
		hs.Shutdown(ctx)
	}
	return stop, "http://" + ln.Addr().String(), nil
}

func mustTempDir() string {
	d, err := os.MkdirTemp("", "digs-load-")
	if err != nil {
		panic(err)
	}
	return d
}

// client is a thin JSON/SSE client for the digs-server API.
//
// Two HTTP clients, on purpose: api carries a per-request timeout so a
// hung or partitioned backend can never stall a submit/status/stats
// call forever, while stream has no timeout — an SSE stream is supposed
// to stay open for the life of the job — and is bounded instead by a
// cancellable context (streamBudget end to end).
type client struct {
	base   string
	api    http.Client
	stream http.Client
	// streamBudget bounds one SSE follow end to end (default 5m).
	streamBudget time.Duration
	// retried429 counts submissions that were pushed back with 429 and
	// retried after the server's Retry-After hint — backpressure the
	// server designed in, not failures.
	retried429 atomic.Int64
}

// newClient builds a client whose non-streaming calls time out after
// reqTimeout (0 = 30s).
func newClient(base string, reqTimeout time.Duration) *client {
	if reqTimeout <= 0 {
		reqTimeout = 30 * time.Second
	}
	return &client{
		base:         base,
		api:          http.Client{Timeout: reqTimeout},
		streamBudget: 5 * time.Minute,
	}
}

type submitResp struct {
	code     int
	JobID    string          `json:"job_id"`
	SpecHash string          `json:"spec_hash"`
	Cached   bool            `json:"cached"`
	Dedup    bool            `json:"dedup"`
	Result   json.RawMessage `json:"result"`
	Error    string          `json:"error"`
}

// max429Retries bounds how long a submission chases Retry-After hints
// before the backpressure is reported as a real error.
const max429Retries = 10

// submit posts the spec, honoring 429 + Retry-After with a bounded
// retry budget: a loaded queue or tenant quota is flow control, and
// counting it as failure would make the bench measure the limiter
// instead of the server.
func (c *client) submit(spec scenario.Spec) (*submitResp, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	for attempt := 0; ; attempt++ {
		resp, err := c.api.Post(c.base+"/v1/scenarios", "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		out := &submitResp{code: resp.StatusCode}
		decErr := json.NewDecoder(resp.Body).Decode(out)
		hint := resp.Header.Get("Retry-After")
		resp.Body.Close()
		if decErr != nil {
			return nil, fmt.Errorf("decoding %d response: %w", resp.StatusCode, decErr)
		}
		if out.code != http.StatusTooManyRequests || attempt >= max429Retries {
			return out, nil
		}
		c.retried429.Add(1)
		time.Sleep(retryAfterDelay(hint))
	}
}

// retryAfterDelay converts a Retry-After header into a wait, clamped to
// [100ms, 5s] so a malformed or hostile hint cannot stall the client.
func retryAfterDelay(hint string) time.Duration {
	d := time.Second
	if secs, err := strconv.Atoi(strings.TrimSpace(hint)); err == nil && secs >= 0 {
		d = time.Duration(secs) * time.Second
	}
	if d < 100*time.Millisecond {
		d = 100 * time.Millisecond
	}
	if d > 5*time.Second {
		d = 5 * time.Second
	}
	return d
}

// followStream consumes the job's SSE stream until the terminal "done"
// event and returns the final job view plus the telemetry line count.
// The stream client carries no timeout (a live stream is not slow), but
// the whole follow runs under a cancellable deadline so a backend that
// hangs mid-stream cannot stall the bench forever.
func (c *client) followStream(jobID string) (*server.View, int, error) {
	budget := c.streamBudget
	if budget <= 0 {
		budget = 5 * time.Minute
	}
	ctx, cancel := context.WithTimeout(context.Background(), budget)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+jobID+"/stream", nil)
	if err != nil {
		return nil, 0, err
	}
	resp, err := c.stream.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, 0, fmt.Errorf("stream: HTTP %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	event, lines := "message", 0
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			if event == "done" {
				var v server.View
				if err := json.Unmarshal([]byte(data), &v); err != nil {
					return nil, lines, err
				}
				return &v, lines, nil
			}
			if event == "message" {
				lines++
			}
		case line == "":
			event = "message"
		}
	}
	return nil, lines, fmt.Errorf("stream for %s ended without a done event (%v)", jobID, sc.Err())
}

// submitAndWait runs one request to its terminal state and returns the
// submit-to-result latency.
func (c *client) submitAndWait(spec scenario.Spec) (lat time.Duration, cached bool, err error) {
	start := time.Now()
	resp, err := c.submit(spec)
	if err != nil {
		return 0, false, err
	}
	switch resp.code {
	case http.StatusOK:
		return time.Since(start), true, nil
	case http.StatusAccepted:
		view, _, err := c.followStream(resp.JobID)
		if err != nil {
			return 0, false, err
		}
		if view.Status != server.StatusDone {
			return 0, false, fmt.Errorf("job %s: %s (%s)", resp.JobID, view.Status, view.Error)
		}
		return time.Since(start), false, nil
	default:
		return 0, false, fmt.Errorf("submit: HTTP %d: %s", resp.code, resp.Error)
	}
}

func (c *client) stats() (*server.Stats, error) {
	resp, err := c.api.Get(c.base + "/v1/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var st server.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// benchSpec is the workload scenario family: a 20-node testbed whose
// cold run is dominated by formation, so warm starts have real headroom.
func benchSpec(seed int64, window time.Duration) scenario.Spec {
	return scenario.Spec{
		Topology: "half-testbed-a", Protocol: "digs", Seed: seed,
		Period: scenario.Duration(2 * time.Second),
		Window: scenario.Duration(window),
	}
}

// ClassReport is one request class's latency summary.
type ClassReport struct {
	Name     string  `json:"name"`
	Requests int     `json:"requests"`
	MeanMs   float64 `json:"mean_ms"`
	P50Ms    float64 `json:"p50_ms"`
	P99Ms    float64 `json:"p99_ms"`
}

// Report is the BENCH_server.json document.
type Report struct {
	GeneratedAt string        `json:"generated_at"`
	GoVersion   string        `json:"go_version"`
	NumCPU      int           `json:"num_cpu"`
	GoMaxProcs  int           `json:"gomaxprocs"`
	SingleCPU   bool          `json:"single_cpu"`
	Note        string        `json:"note"`
	Workers     int           `json:"workers"`
	Concurrency int           `json:"concurrency"`
	PerClass    int           `json:"per_class"`
	TotalReqs   int           `json:"total_requests"`
	WallS       float64       `json:"wall_s"`
	ReqPerS     float64       `json:"req_per_s"`
	WarmHits    int64         `json:"warm_hits"`
	WarmHitRate float64       `json:"warm_hit_rate"`
	CacheHits   int64         `json:"cache_hits"`
	Retried429  int64         `json:"retried_429"`
	Classes     []ClassReport `json:"classes"`
}

// runClass pushes n requests of one class through conc clients and
// returns the sorted latencies in ms.
func runClass(cl *client, conc int, specs []scenario.Spec) ([]float64, error) {
	lats := make([]float64, len(specs))
	errs := make([]error, len(specs))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				lat, _, err := cl.submitAndWait(specs[i])
				lats[i], errs[i] = float64(lat)/float64(time.Millisecond), err
			}
		}()
	}
	for i := range specs {
		next <- i
	}
	close(next)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("request %d: %w", i, err)
		}
	}
	sort.Float64s(lats)
	return lats, nil
}

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func bench(cl *client, opts options) (*Report, error) {
	const coldWindow, warmWindow = 10 * time.Second, 15 * time.Second
	cold := make([]scenario.Spec, opts.n)
	warm := make([]scenario.Spec, opts.n)
	dup := make([]scenario.Spec, opts.n)
	for i := range cold {
		seed := int64(1000 + i)
		cold[i] = benchSpec(seed, coldWindow)
		// Same deployment and seed, longer window: shares the cold run's
		// formation snapshot but is a distinct scenario (no cache hit).
		warm[i] = benchSpec(seed, warmWindow)
		// Byte-identical resubmission: content-addressed cache hit.
		dup[i] = benchSpec(seed, coldWindow)
	}

	start := time.Now()
	classes := make([]ClassReport, 0, 3)
	for _, c := range []struct {
		name  string
		specs []scenario.Spec
	}{{"cold", cold}, {"warm", warm}, {"dup", dup}} {
		fmt.Fprintf(os.Stderr, "class %s: %d requests, conc %d\n", c.name, len(c.specs), opts.conc)
		lats, err := runClass(cl, opts.conc, c.specs)
		if err != nil {
			return nil, fmt.Errorf("class %s: %w", c.name, err)
		}
		classes = append(classes, ClassReport{
			Name: c.name, Requests: len(lats),
			MeanMs: mean(lats), P50Ms: quantile(lats, 0.5), P99Ms: quantile(lats, 0.99),
		})
	}
	wall := time.Since(start)

	st, err := cl.stats()
	if err != nil {
		return nil, err
	}
	rep := &Report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		SingleCPU:   runtime.NumCPU() == 1,
		Note: "latency is submit-to-result over HTTP (SSE followed to the done event); " +
			"warm rides the server's formation snapshot pool, dup is a content-addressed cache hit",
		Workers:     opts.workers,
		Concurrency: opts.conc,
		PerClass:    opts.n,
		TotalReqs:   3 * opts.n,
		WallS:       wall.Seconds(),
		ReqPerS:     float64(3*opts.n) / wall.Seconds(),
		WarmHits:    st.WarmHits,
		CacheHits:   st.CacheHits,
		Retried429:  cl.retried429.Load(),
		Classes:     classes,
	}
	if st.Completed > 0 {
		rep.WarmHitRate = float64(st.WarmHits) / float64(st.Completed)
	}

	// The warm pool must actually be doing its job, or the report is
	// advertising a feature that silently broke.
	if opts.gateway {
		// Behind the gateway, warm and cold specs hash differently and can
		// land on disjoint replica sets, so warm starts are opportunistic
		// there. The dup class still routes to its cold twin's replicas by
		// construction — the cache-hit contract survives the tier.
		if rep.CacheHits < int64(opts.n) {
			return nil, fmt.Errorf("only %d/%d dup-class requests hit the result cache through the gateway",
				rep.CacheHits, opts.n)
		}
		return rep, nil
	}
	if rep.WarmHits < int64(opts.n) {
		return nil, fmt.Errorf("only %d/%d warm-class requests warm-started", rep.WarmHits, opts.n)
	}
	if rep.CacheHits < int64(opts.n) {
		return nil, fmt.Errorf("only %d/%d dup-class requests hit the result cache", rep.CacheHits, opts.n)
	}
	if cw, ww := classMean(classes, "cold"), classMean(classes, "warm"); ww >= cw {
		return nil, fmt.Errorf("warm starts are not faster than cold runs (warm %.0f ms >= cold %.0f ms)", ww, cw)
	}
	return rep, nil
}

func classMean(cs []ClassReport, name string) float64 {
	for _, c := range cs {
		if c.Name == name {
			return c.MeanMs
		}
	}
	return 0
}

func printReport(r *Report) {
	fmt.Printf("=== digs-server load: %d requests in %.2fs (%.1f req/s, conc %d, workers %d) ===\n",
		r.TotalReqs, r.WallS, r.ReqPerS, r.Concurrency, r.Workers)
	for _, c := range r.Classes {
		fmt.Printf("  %-5s %3d reqs  mean %7.1f ms  p50 %7.1f ms  p99 %7.1f ms\n",
			c.Name, c.Requests, c.MeanMs, c.P50Ms, c.P99Ms)
	}
	fmt.Printf("  warm hits %d (rate %.2f), cache hits %d, 429 retries %d\n",
		r.WarmHits, r.WarmHitRate, r.CacheHits, r.Retried429)
}

// gate fails when the fresh report regresses past tolerance vs the
// baseline: lower req/s or higher per-class p99.
func gate(fresh *Report, baselinePath string, tol float64) error {
	b, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base Report
	if err := json.Unmarshal(b, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", baselinePath, err)
	}
	var fails []string
	if floor := base.ReqPerS * (1 - tol); fresh.ReqPerS < floor {
		fails = append(fails, fmt.Sprintf("req/s %.1f below floor %.1f (baseline %.1f)",
			fresh.ReqPerS, floor, base.ReqPerS))
	}
	for _, bc := range base.Classes {
		fc := classReport(fresh.Classes, bc.Name)
		if fc == nil {
			fails = append(fails, fmt.Sprintf("class %s missing from fresh report", bc.Name))
			continue
		}
		if ceil := bc.P99Ms * (1 + tol); fc.P99Ms > ceil {
			fails = append(fails, fmt.Sprintf("class %s p99 %.1f ms above ceiling %.1f (baseline %.1f)",
				bc.Name, fc.P99Ms, ceil, bc.P99Ms))
		}
	}
	if len(fails) > 0 {
		return fmt.Errorf("bench gate vs %s:\n  %s", baselinePath, strings.Join(fails, "\n  "))
	}
	fmt.Printf("bench gate vs %s: OK (tolerance %.0f%%)\n", baselinePath, tol*100)
	return nil
}

func classReport(cs []ClassReport, name string) *ClassReport {
	for i := range cs {
		if cs[i].Name == name {
			return &cs[i]
		}
	}
	return nil
}

// smoke is the end-to-end check `make server-smoke` runs: one small
// generated plant through the full submit → SSE → content-addressed
// result pipeline, with hash and cache-hit verification.
func smoke(cl *client, selfHosted bool) error {
	spec := scenario.Spec{
		Topology: "gen-plant-300-1", Protocol: "digs", Seed: 3,
		Window: scenario.Duration(20 * time.Second),
	}
	resp, err := cl.submit(spec)
	if err != nil {
		return err
	}
	if resp.code != http.StatusAccepted {
		return fmt.Errorf("submit: HTTP %d (%s)", resp.code, resp.Error)
	}
	fmt.Printf("submitted %s as job %s\n", resp.SpecHash, resp.JobID)

	view, lines, err := cl.followStream(resp.JobID)
	if err != nil {
		return err
	}
	if view.Status != server.StatusDone {
		return fmt.Errorf("job finished %s: %s", view.Status, view.Error)
	}
	if lines == 0 {
		return fmt.Errorf("SSE stream carried no telemetry")
	}
	sum := sha256.Sum256(view.Result)
	if got := hex.EncodeToString(sum[:]); got != view.ResultHash {
		return fmt.Errorf("result hash mismatch: sha256(result) %s != reported %s", got, view.ResultHash)
	}
	fmt.Printf("streamed %d telemetry lines; result %s verified\n", lines, view.ResultHash)

	// The content-addressed store must serve the same bytes.
	sr, err := cl.api.Get(cl.base + "/v1/results/" + resp.SpecHash)
	if err != nil {
		return err
	}
	stored := new(bytes.Buffer)
	stored.ReadFrom(sr.Body)
	sr.Body.Close()
	if sr.StatusCode != http.StatusOK {
		return fmt.Errorf("stored result: HTTP %d", sr.StatusCode)
	}
	if !bytes.Equal(bytes.TrimSpace(stored.Bytes()), bytes.TrimSpace(view.Result)) {
		return fmt.Errorf("stored result differs from the job's result")
	}

	// An identical resubmission is a cache hit, served without a job.
	again, err := cl.submit(spec)
	if err != nil {
		return err
	}
	if again.code != http.StatusOK || !again.Cached {
		return fmt.Errorf("resubmission: HTTP %d cached=%v, want a 200 cache hit", again.code, again.Cached)
	}
	if !bytes.Equal(bytes.TrimSpace(again.Result), bytes.TrimSpace(view.Result)) {
		return fmt.Errorf("cached result differs from the original")
	}
	fmt.Println("duplicate submission served from the content-addressed store")

	// CLI parity: the server's result must be bit-identical to running
	// the same spec in-process through the shared executor.
	if selfHosted {
		direct, _, err := scenario.RunSpec(context.Background(), spec, scenario.RunOpts{})
		if err != nil {
			return err
		}
		want, err := direct.Encode()
		if err != nil {
			return err
		}
		if !bytes.Equal(bytes.TrimSpace(view.Result), want) {
			return fmt.Errorf("server result differs from direct run:\nserver: %s\ndirect: %s",
				view.Result, want)
		}
		fmt.Println("server result bit-identical to the direct in-process run")
	}
	fmt.Println("server-smoke: OK")
	return nil
}

// serverProc is a real digs-server child process under harness control.
type serverProc struct {
	cmd  *exec.Cmd
	base string
}

func (p *serverProc) kill() {
	p.cmd.Process.Kill()
	p.cmd.Wait()
}

// startServer launches the digs-server binary on a kernel-assigned port
// and waits for its "listening on" log line to learn the address. Extra
// args (e.g. -name) are appended to the baseline flag set.
func startServer(bin, dataDir string, workers int, extra ...string) (*serverProc, error) {
	args := append([]string{
		"-addr", "127.0.0.1:0",
		"-data", dataDir,
		"-workers", strconv.Itoa(workers),
		"-quota", "0",
		"-drain", "30s",
	}, extra...)
	return spawnListener(bin, "server", args)
}

// spawnListener launches a child process that reports its
// kernel-assigned address with a "listening on <addr>" stderr log line
// and waits for that line.
func spawnListener(bin, label string, args []string) (*serverProc, error) {
	cmd := exec.Command(bin, args...)
	cmd.Stdout = os.Stdout
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("starting %s: %w", bin, err)
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			fmt.Fprintln(os.Stderr, "  ["+label+"]", line)
			if i := strings.Index(line, "listening on "); i >= 0 {
				if f := strings.Fields(line[i+len("listening on "):]); len(f) > 0 {
					select {
					case addrCh <- f[0]:
					default:
					}
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return &serverProc{cmd: cmd, base: "http://" + addr}, nil
	case <-time.After(15 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		return nil, fmt.Errorf("%s never reported a listen address", label)
	}
}

// buildBinary compiles pkg into a temp dir, unless bin already names a
// prebuilt binary (then it is returned as-is with a no-op cleanup).
func buildBinary(bin, pkg, name string) (string, func(), error) {
	if bin != "" {
		return bin, func() {}, nil
	}
	dir, err := os.MkdirTemp("", "digs-bin-")
	if err != nil {
		return "", nil, err
	}
	out := filepath.Join(dir, name)
	fmt.Fprintf(os.Stderr, "building %s for the harness\n", name)
	cmd := exec.Command("go", "build", "-o", out, pkg)
	cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
	if err := cmd.Run(); err != nil {
		os.RemoveAll(dir)
		return "", nil, fmt.Errorf("building %s: %w", name, err)
	}
	return out, func() { os.RemoveAll(dir) }, nil
}

func (c *client) getBytes(path string) ([]byte, int, error) {
	resp, err := c.api.Get(c.base + path)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return b, resp.StatusCode, err
}

// awaitTerminal polls the job's status endpoint until it reaches a
// terminal state. A 404 means the server forgot an accepted job — the
// exact failure the crash harness exists to catch.
func (c *client) awaitTerminal(jobID string, deadline time.Time) (*server.View, error) {
	for {
		body, code, err := c.getBytes("/v1/jobs/" + jobID)
		if err != nil {
			return nil, err
		}
		if code == http.StatusNotFound {
			return nil, fmt.Errorf("job lost: status endpoint answers 404 after restart")
		}
		if code != http.StatusOK {
			return nil, fmt.Errorf("status: HTTP %d", code)
		}
		var v server.View
		if err := json.Unmarshal(body, &v); err != nil {
			return nil, err
		}
		switch v.Status {
		case server.StatusDone, server.StatusFailed, server.StatusCanceled:
			return &v, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("still %s at harness deadline", v.Status)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// crashHarness is the -crash mode: prove that SIGKILL — no drain, no
// journal close, mid-burst — loses nothing the server acknowledged.
//
//  1. Start a real digs-server (1 worker, so a backlog builds).
//  2. Submit a concurrent burst; the moment half the burst is
//     acknowledged with 202, SIGKILL the process.
//  3. Restart the server on the same data directory.
//  4. Every acknowledged job must reach done, its result bytes must
//     round-trip the content-addressed store and re-hash to the job's
//     reported content address, and the stats must show at least one
//     journal-recovered job (the kill really did interrupt work).
//  5. SIGTERM must still shut the restarted server down cleanly.
func crashHarness(opts options) error {
	dataDir, err := os.MkdirTemp("", "digs-crash-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dataDir)

	bin, cleanup, err := buildBinary(opts.serverBin, "./cmd/digs-server", "digs-server")
	if err != nil {
		return err
	}
	defer cleanup()

	sp, err := startServer(bin, dataDir, 1)
	if err != nil {
		return err
	}
	cl := newClient(sp.base, opts.reqTimeout)

	type acked struct{ jobID, specHash string }
	var (
		mu  sync.Mutex
		acc []acked
	)
	killAt := opts.crashJobs / 2
	if killAt < 1 {
		killAt = 1
	}
	killed := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < opts.crashJobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := cl.submit(benchSpec(int64(9000+i), 10*time.Second))
			if err != nil || resp.code != http.StatusAccepted {
				// The kill raced this submission: without a 202 in hand
				// the server never promised anything, so there is
				// nothing to assert.
				return
			}
			mu.Lock()
			acc = append(acc, acked{resp.JobID, resp.SpecHash})
			n := len(acc)
			mu.Unlock()
			if n == killAt {
				close(killed)
			}
		}(i)
	}
	select {
	case <-killed:
	case <-time.After(30 * time.Second):
		sp.kill()
		return fmt.Errorf("burst never reached %d accepted jobs", killAt)
	}
	sp.kill() // SIGKILL: no drain, no journal close, mid-burst
	wg.Wait()
	mu.Lock()
	accepted := append([]acked(nil), acc...)
	mu.Unlock()
	fmt.Printf("SIGKILLed the server holding %d acknowledged jobs\n", len(accepted))

	sp2, err := startServer(bin, dataDir, opts.workers)
	if err != nil {
		return fmt.Errorf("restart on the crashed data dir: %w", err)
	}
	clean := false
	defer func() {
		if !clean {
			sp2.kill()
		}
	}()
	cl2 := newClient(sp2.base, opts.reqTimeout)

	deadline := time.Now().Add(2 * time.Minute)
	for _, a := range accepted {
		view, err := cl2.awaitTerminal(a.jobID, deadline)
		if err != nil {
			return fmt.Errorf("job %s (spec %s): %w", a.jobID, a.specHash, err)
		}
		if view.Status != server.StatusDone {
			return fmt.Errorf("job %s ended %s after restart: %s", a.jobID, view.Status, view.Error)
		}
		body, code, err := cl2.getBytes("/v1/results/" + a.specHash)
		if err != nil {
			return err
		}
		if code != http.StatusOK {
			return fmt.Errorf("job %s: stored result %s: HTTP %d", a.jobID, a.specHash, code)
		}
		sum := sha256.Sum256(bytes.TrimSpace(body))
		if got := hex.EncodeToString(sum[:]); got != view.ResultHash {
			return fmt.Errorf("job %s: stored result hashes to %s, job reports %s",
				a.jobID, got, view.ResultHash)
		}
	}
	st, err := cl2.stats()
	if err != nil {
		return err
	}
	if st.Recovered == 0 {
		return fmt.Errorf("restarted server recovered no pending jobs — the kill missed the in-flight window")
	}
	fmt.Printf("all %d acknowledged jobs done with verified results (%d recovered from the journal, tail dropped %d)\n",
		len(accepted), st.Recovered, st.JournalDroppedTail)

	if err := sp2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	if err := sp2.cmd.Wait(); err != nil {
		return fmt.Errorf("restarted server exited uncleanly: %w", err)
	}
	clean = true
	fmt.Println("crash harness: OK — zero accepted jobs lost")
	return nil
}
