// Command digs-server runs WSAN simulations as a service: an HTTP daemon
// that accepts JSON scenario specs, schedules them on a bounded worker
// pool with per-tenant quotas and queue backpressure, streams each job's
// telemetry over SSE, caches completed results in a content-addressed
// store and warm-starts near-identical scenarios from a snapshot pool.
//
//	digs-server -addr :8080 -data /var/lib/digs -workers 4
//
//	curl -s localhost:8080/v1/scenarios -d '{"topology":"testbed-a","seed":3}'
//	curl -N localhost:8080/v1/jobs/j-000001/stream
//	curl -s localhost:8080/v1/jobs/j-000001/result
//
// SIGINT/SIGTERM drain the server: in-flight simulations finish (up to
// -drain), queued jobs are canceled, then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/digs-net/digs/internal/server"
	"github.com/digs-net/digs/internal/store"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "digs-server:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "simulation worker pool size (0 = default 2)")
	queue := flag.Int("queue", 64, "job queue depth; a full queue answers 429 + Retry-After")
	quota := flag.Int("quota", 8, "max queued+running jobs per tenant (0 = unlimited)")
	maxNodes := flag.Int("max-nodes", 20000, "largest deployment accepted (413 above)")
	dataDir := flag.String("data", "digs-server-data",
		"data root: results/ (content-addressed store) and warm/ (snapshot pool); empty disables caching")
	resultEntries := flag.Int("result-entries", 4096, "result store LRU budget (entries, 0 = unbounded)")
	warmEntries := flag.Int("warm-entries", 256, "warm pool LRU budget (snapshots, 0 = unbounded)")
	warmBytes := flag.Int64("warm-bytes", 1<<30, "warm pool LRU budget (bytes, 0 = unbounded)")
	finishedJobs := flag.Int("finished-jobs", 256,
		"how many finished jobs stay addressable for status/stream replay before being forgotten")
	drain := flag.Duration("drain", 2*time.Minute,
		"how long a shutdown waits for in-flight simulations before aborting them")
	maxAttempts := flag.Int("max-attempts", 3,
		"times one job may run (first try included) before it is dead-lettered as failed")
	retryBase := flag.Duration("retry-base", 200*time.Millisecond,
		"backoff before a failed attempt's retry (doubles per failure, jittered)")
	retryCap := flag.Duration("retry-cap", 5*time.Second, "backoff ceiling")
	noJournal := flag.Bool("no-journal", false,
		"disable the durable job journal: accepted jobs no longer survive a crash")
	noJournalSync := flag.Bool("no-journal-sync", false,
		"skip the per-record journal fsync (faster submits, crash durability best-effort)")
	degradedAccept := flag.Bool("degraded-accept", false,
		"keep accepting submissions after journal/store writes start failing (default: shed with 503)")
	name := flag.String("name", "",
		"backend instance name echoed as X-DiGS-Backend (multi-node tiers; empty = no header)")
	flag.Parse()

	srv, err := server.New(server.Config{
		Workers:              *workers,
		QueueDepth:           *queue,
		TenantQuota:          *quota,
		MaxNodes:             *maxNodes,
		DataDir:              *dataDir,
		ResultBudget:         store.Budget{MaxEntries: *resultEntries},
		WarmBudget:           store.Budget{MaxEntries: *warmEntries, MaxBytes: *warmBytes},
		FinishedJobCap:       *finishedJobs,
		MaxAttempts:          *maxAttempts,
		RetryBase:            *retryBase,
		RetryCap:             *retryCap,
		DisableJournal:       *noJournal,
		JournalNoSync:        *noJournalSync,
		AllowDegradedSubmits: *degradedAccept,
		Name:                 *name,
	})
	if err != nil {
		return fmt.Errorf("recovering server state: %w", err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	log.Printf("digs-server listening on %s (workers=%d queue=%d quota=%d data=%q)",
		ln.Addr(), *workers, *queue, *quota, *dataDir)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way
	log.Printf("draining: in-flight jobs get %v, queued jobs cancel", *drain)

	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Printf("drain deadline hit; in-flight jobs aborted: %v", err)
	}
	if err := hs.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	log.Printf("digs-server stopped")
	return nil
}
