// Command digs-sim runs one WSAN scenario: it builds a topology, boots one
// of the registered protocol stacks (digs, orchestra, whart, sdn,
// adaptive), optionally adds WiFi jammers and a node failure, drives
// periodic uplink flows and prints the resulting reliability, latency and
// energy figures.
//
// Examples:
//
//	digs-sim -topology testbed-a -protocol digs -duration 2m
//	digs-sim -topology testbed-b -protocol orchestra -jammers 3
//	digs-sim -topology random-150 -protocol sdn -flows 20 -period 10s
//	digs-sim -reps 8 -parallel 4    # 8 seeds fanned over 4 workers
//	digs-sim -spec scenario.json    # run a JSON scenario spec (server parity)
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/digs-net/digs/internal/campaign"
	"github.com/digs-net/digs/internal/flows"
	"github.com/digs-net/digs/internal/interference"
	"github.com/digs-net/digs/internal/invariant"
	"github.com/digs-net/digs/internal/mac"
	"github.com/digs-net/digs/internal/metrics"
	"github.com/digs-net/digs/internal/scenario"
	"github.com/digs-net/digs/internal/sim"
	"github.com/digs-net/digs/internal/snapshot"
	"github.com/digs-net/digs/internal/telemetry"
	"github.com/digs-net/digs/internal/topology"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "digs-sim:", err)
		os.Exit(1)
	}
}

type options struct {
	topology   string
	protocol   string
	duration   time.Duration
	period     time.Duration
	flows      int
	jammers    int
	failNode   int
	seed       int64
	verbose    bool
	trace      string
	invariants bool
}

// summary is one scenario run's headline numbers.
type summary struct {
	Seed      int64
	Formation time.Duration
	PDR       float64
	Delivered int
	Sent      int
	LatMedian float64 // ms; NaN-free: zero when no latencies
	LatP90    float64
	LatMax    float64
	PowerMW   float64
}

func run() error {
	var opts options
	flag.StringVar(&opts.topology, "topology", "testbed-a",
		"deployment: "+scenario.TopologyNames)
	flag.StringVar(&opts.protocol, "protocol", "digs", "stack: "+scenario.StackNames())
	flag.DurationVar(&opts.duration, "duration", 2*time.Minute, "measurement window")
	flag.DurationVar(&opts.period, "period", 5*time.Second, "packet period per flow")
	flag.IntVar(&opts.flows, "flows", 0, "number of flows (0 = the testbed's suggested sources)")
	flag.IntVar(&opts.jammers, "jammers", 0, "WiFi jammers to enable (0..3)")
	flag.IntVar(&opts.failNode, "fail", 0, "node ID to fail mid-run (0 = none)")
	flag.Int64Var(&opts.seed, "seed", 1, "simulation seed")
	flag.BoolVar(&opts.verbose, "v", false, "print per-flow results")
	flag.StringVar(&opts.trace, "trace", "",
		"write a packet-lifecycle event trace (JSONL) to this file; analyse with digs-trace")
	flag.BoolVar(&opts.invariants, "invariants", false,
		"run the invariant monitor with self-healing watchdogs during the measurement window")
	reps := flag.Int("reps", 1, "independent repetitions (seed, seed+1, ...) aggregated at the end")
	parallel := flag.Int("parallel", 0, "campaign worker pool size (0 = GOMAXPROCS)")
	dumpNode := flag.Int("dump-schedule", 0,
		"print the combined-schedule roles of this node for one hyperperiod window and exit")
	specPath := flag.String("spec", "",
		"run a JSON scenario spec (\"-\" = stdin) through the shared executor and print its canonical result; bit-identical to a digs-server run of the same spec")
	warmDir := flag.String("warm", "", "with -spec: warm-start cache directory (shared with digs-server's warm pool)")
	flag.Parse()

	campaign.SetDefaultWorkers(*parallel)

	if *specPath != "" {
		return runSpecFile(*specPath, *warmDir, opts.trace)
	}
	if *warmDir != "" {
		return fmt.Errorf("-warm requires -spec")
	}

	if *reps <= 1 {
		var tr telemetry.Tracer
		if opts.trace != "" {
			f, err := os.Create(opts.trace)
			if err != nil {
				return err
			}
			defer f.Close()
			tr = telemetry.NewJSONL(f)
		}
		_, err := runScenario(opts, opts.seed, os.Stdout, *dumpNode, tr)
		if err != nil {
			return err
		}
		if tr != nil {
			if err := tr.Flush(); err != nil {
				return fmt.Errorf("trace %s: %w", opts.trace, err)
			}
			fmt.Printf("trace written to %s\n", opts.trace)
		}
		return nil
	}
	if *dumpNode > 0 {
		return fmt.Errorf("-dump-schedule is a single-run mode; drop -reps")
	}

	// Each repetition is an independent run with its own derived seed.
	// Runs buffer their output so the printed report reads identically
	// regardless of how the pool interleaved them. With -trace, each rep
	// writes its own job-stamped part; the parts merge in rep order, so
	// the combined trace is byte-identical at any worker count.
	type repOut struct {
		sum   summary
		log   bytes.Buffer
		trace bytes.Buffer
	}
	outs, err := campaign.Map(campaign.New(0), *reps, func(i int) (*repOut, error) {
		o := &repOut{}
		var tr telemetry.Tracer
		if opts.trace != "" {
			tr = telemetry.WithJob(telemetry.NewJSONL(&o.trace), i)
		}
		s, err := runScenario(opts, opts.seed+int64(i), &o.log, 0, tr)
		if err != nil {
			return nil, fmt.Errorf("rep %d (seed %d): %w", i, opts.seed+int64(i), err)
		}
		o.sum = *s
		return o, nil
	})
	var pe *campaign.PanicError
	if errors.As(err, &pe) {
		return fmt.Errorf("rep %d (seed %d) panicked: %v\n%s",
			pe.Job, opts.seed+int64(pe.Job), pe.Value, pe.Stack)
	}
	if err != nil {
		return err
	}
	if opts.trace != "" {
		parts := make([][]byte, len(outs))
		for i, o := range outs {
			parts[i] = o.trace.Bytes()
		}
		f, err := os.Create(opts.trace)
		if err != nil {
			return err
		}
		if err := telemetry.MergeJSONL(f, parts...); err != nil {
			f.Close()
			return fmt.Errorf("trace %s: %w", opts.trace, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("trace written to %s (%d reps merged)\n", opts.trace, len(outs))
	}

	var pdrs, medians, powers []float64
	for i, o := range outs {
		fmt.Printf("--- rep %d (seed %d) ---\n", i, o.sum.Seed)
		os.Stdout.Write(o.log.Bytes())
		pdrs = append(pdrs, o.sum.PDR)
		medians = append(medians, o.sum.LatMedian)
		powers = append(powers, o.sum.PowerMW)
	}
	fmt.Printf("\n=== aggregate over %d reps (workers=%d) ===\n", *reps, campaign.DefaultWorkers())
	fmt.Printf("PDR:               mean %.3f  min %.3f  max %.3f\n",
		metrics.Mean(pdrs), metrics.Min(pdrs), metrics.Max(pdrs))
	fmt.Printf("latency median:    mean %.0f ms\n", metrics.Mean(medians))
	fmt.Printf("power per packet:  mean %.3f mW\n", metrics.Mean(powers))
	return nil
}

// runSpecFile executes one JSON scenario spec through scenario.RunSpec —
// the exact code path digs-server uses — and prints the canonical result
// document on stdout (progress notes go to stderr). SIGINT/SIGTERM
// cancel the run at the next chunk boundary.
func runSpecFile(path, warmDir, tracePath string) error {
	var raw []byte
	var err error
	if path == "-" {
		raw, err = io.ReadAll(os.Stdin)
	} else {
		raw, err = os.ReadFile(path)
	}
	if err != nil {
		return err
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var spec scenario.Spec
	if err := dec.Decode(&spec); err != nil {
		return fmt.Errorf("decoding spec: %w", err)
	}
	if err := spec.Validate(); err != nil {
		return err
	}
	hash, err := spec.Hash()
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "spec %s\n", hash)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var ropts scenario.RunOpts
	if warmDir != "" {
		ropts.Warm = &snapshot.Cache{Dir: warmDir}
	}
	var traceFile *os.File
	if tracePath != "" {
		traceFile, err = os.Create(tracePath)
		if err != nil {
			return err
		}
		defer traceFile.Close()
		ropts.Tracer = telemetry.NewJSONL(traceFile)
	}

	res, rinfo, err := scenario.RunSpec(ctx, spec, ropts)
	if err != nil {
		return err
	}
	rhash, err := res.HashResult()
	if err != nil {
		return err
	}
	enc, err := res.Encode()
	if err != nil {
		return err
	}
	os.Stdout.Write(enc)
	fmt.Println()
	fmt.Fprintf(os.Stderr, "result %s (warm_hit=%v, wall %v)\n",
		rhash, rinfo.WarmHit, rinfo.Wall.Round(time.Millisecond))
	if traceFile != nil {
		fmt.Fprintf(os.Stderr, "trace written to %s\n", tracePath)
	}
	return nil
}

// runScenario executes one full scenario and writes its progress report to
// w. When dumpNode is non-zero it prints that node's combined schedule and
// returns early with a nil summary. A non-nil tracer records the packet
// lifecycle of the whole run (the caller owns flushing it).
func runScenario(opts options, seed int64, w io.Writer, dumpNode int, tracer telemetry.Tracer) (*summary, error) {
	sc, err := scenario.Build(scenario.Params{
		TopologyName: opts.topology,
		Protocol:     opts.protocol,
		Seed:         seed,
		Period:       opts.period,
		// The WirelessHART Network Manager needs a random flow request at
		// build time; the autonomous stacks take traffic as it comes.
		Flows: opts.flows,
	})
	if err != nil {
		return nil, err
	}
	nw, topo := sc.NW, sc.Params.Topology
	macNode, joined := sc.MACNode, sc.Joined
	if tracer != nil {
		sc.SetTracer(tracer)
		telemetry.AttachSim(nw, tracer)
	}

	fmt.Fprintf(w, "topology %s: %d nodes (%d APs), protocol %s\n",
		topo.Name, topo.N(), topo.NumAPs, opts.protocol)

	// Formation.
	formSlots, ok := nw.RunUntil(sim.SlotsFor(6*time.Minute), func() bool {
		return joined() == topo.N()
	})
	if !ok {
		return nil, fmt.Errorf("only %d/%d nodes joined during formation", joined(), topo.N())
	}
	fmt.Fprintf(w, "network formed in %v\n", sim.TimeAt(formSlots))
	nw.Run(sim.SlotsFor(30 * time.Second))

	if dumpNode > 0 {
		if sc.Schedule == nil {
			return nil, fmt.Errorf("-dump-schedule is not supported for -protocol %s", opts.protocol)
		}
		return nil, dumpSchedule(w, nw, sc.Schedule, dumpNode)
	}

	// The invariant monitor attaches after formation (its checks gate on
	// joined state) and rides the tracer chain; with the flag off the MAC
	// keeps its single-tracer nil check and the slot loop stays
	// zero-alloc. Violations are emitted into the JSONL trace when one is
	// being written.
	var mon *invariant.Monitor
	if opts.invariants {
		mon = invariant.New(invariant.Config{Emit: tracer, Heal: sc.Healer})
		var chain telemetry.Tracer = mon
		if tracer != nil {
			chain = telemetry.Multi(tracer, mon)
		}
		sc.SetTracer(chain)
		invariant.Attach(nw, mon, sc.Prober, 0)
	}

	// Interference.
	for j := 0; j < opts.jammers && j < len(topo.SuggestedJammers); j++ {
		wifiCh := []int{1, 6, 11}[j%3]
		nw.AddInterferer(&interference.Window{
			Source:   interference.NewWiFiJammer(topo, topo.SuggestedJammers[j], wifiCh, seed+int64(j)),
			StartASN: nw.ASN(),
		})
		fmt.Fprintf(w, "jammer on node %d (WiFi channel %d)\n", topo.SuggestedJammers[j], wifiCh)
	}

	// Flows.
	var fset []flows.Flow
	if opts.flows <= 0 && len(topo.SuggestedSources) > 0 {
		fset = flows.FixedSet(topo.SuggestedSources, opts.period)
	} else {
		n := opts.flows
		if n <= 0 {
			n = 8
		}
		rng := newRand(seed)
		fset, err = flows.RandomSet(topo, n, opts.period, rng)
		if err != nil {
			return nil, err
		}
	}

	col := metrics.NewCollector()
	sc.OnDeliver(func(asn sim.ASN, f *sim.Frame) { col.Delivered(f.FlowID, f.Seq, asn) })
	packets := int(opts.duration / opts.period)
	flows.Schedule(nw, fset, packets, func(f flows.Flow, seq uint16, asn sim.ASN) {
		col.Sent(f.ID, seq, asn)
		_ = macNode(int(f.Source)).InjectData(&sim.Frame{
			Origin: f.Source, FlowID: f.ID, Seq: seq, BornASN: asn,
		})
	})

	// Optional mid-run failure.
	if opts.failNode > 0 {
		half := nw.ASN() + sim.SlotsFor(opts.duration/2)
		victim := topology.NodeID(opts.failNode)
		nw.At(half, func() {
			nw.Fail(victim)
			fmt.Fprintf(w, "node %d failed at %v\n", victim, sim.TimeAt(half))
		})
	}

	startEnergy := totalEnergy(macNode, topo.N())
	start := nw.ASN()
	nw.Run(sim.SlotsFor(opts.duration + 15*time.Second))
	elapsed := sim.TimeAt(nw.ASN() - start)
	energy := totalEnergy(macNode, topo.N()) - startEnergy

	// Report.
	sum := &summary{
		Seed:      seed,
		Formation: sim.TimeAt(formSlots),
		PDR:       col.PDR(),
		Delivered: col.DeliveredCount(),
		Sent:      col.SentCount(),
		PowerMW:   metrics.PowerPerPacketMW(energy, elapsed, col.DeliveredCount()),
	}
	fmt.Fprintf(w, "\n=== results (%v window, %d flows, %v period) ===\n",
		opts.duration, len(fset), opts.period)
	fmt.Fprintf(w, "PDR:                 %.3f (%d/%d packets)\n",
		sum.PDR, sum.Delivered, sum.Sent)
	lats := metrics.DurationsToMillis(col.Latencies())
	if len(lats) > 0 {
		sum.LatMedian = metrics.Quantile(lats, 0.5)
		sum.LatP90 = metrics.Quantile(lats, 0.9)
		sum.LatMax = metrics.Max(lats)
		fmt.Fprintf(w, "latency median:      %.0f ms  (p90 %.0f ms, max %.0f ms)\n",
			sum.LatMedian, sum.LatP90, sum.LatMax)
	}
	fmt.Fprintf(w, "power per packet:    %.3f mW\n", sum.PowerMW)
	if mon != nil {
		invariant.WriteText(w, mon.Report())
	}
	if opts.verbose {
		for _, f := range fset {
			fmt.Fprintf(w, "  flow %2d (node %3d): PDR %.3f\n", f.ID, f.Source, col.FlowPDR(f.ID))
		}
	}
	return sum, nil
}

// dumpSchedule prints the node's combined-schedule decisions for the next
// 600 slots (6 seconds): the autonomous schedule made visible.
func dumpSchedule(w io.Writer, nw *sim.Network, schedule func(int, sim.ASN) mac.Assignment, id int) error {
	if id < 1 || id > nw.Topology().N() {
		return fmt.Errorf("node %d outside the topology", id)
	}
	names := map[mac.SlotRole]string{
		mac.RoleSleep: ".", mac.RoleTxEB: "E", mac.RoleRxEB: "e",
		mac.RoleShared: "S", mac.RoleTxData: "T", mac.RoleRxData: "R",
	}
	fmt.Fprintf(w, "combined schedule of node %d from ASN %d "+
		"(E/e = EB tx/rx, S = shared, T/R = data tx/rx, . = sleep):\n", id, nw.ASN())
	base := nw.ASN()
	for row := 0; row < 12; row++ {
		fmt.Fprintf(w, "  %7d  ", base+int64(row*50))
		for col := 0; col < 50; col++ {
			a := schedule(id, base+int64(row*50+col))
			fmt.Fprint(w, names[a.Role])
		}
		fmt.Fprintln(w)
	}
	return nil
}

func totalEnergy(macNode func(i int) *mac.Node, n int) float64 {
	total := 0.0
	for i := 1; i <= n; i++ {
		total += macNode(i).Stats().EnergyJoules
	}
	return total
}

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
