// Large scale: the paper's Section VII-D study in miniature — 150 field
// devices in a 300 m x 300 m area with five wide-band disturbers toggling
// every five minutes, DiGS vs Orchestra side by side.
//
//	go run ./examples/largescale
//
// With -nodes, the example instead runs the massive-scale engine on a
// procedurally generated deployment (sparse neighbor structure, sharded
// slot loop, per-node napping) — far beyond what the dense matrix could
// hold:
//
//	go run ./examples/largescale -nodes 10000 -gen plant -shards 4
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/digs-net/digs/internal/core"
	"github.com/digs-net/digs/internal/experiments"
	"github.com/digs-net/digs/internal/flows"
	"github.com/digs-net/digs/internal/metrics"
	"github.com/digs-net/digs/internal/scenario"
	"github.com/digs-net/digs/internal/sim"
	"github.com/digs-net/digs/internal/snapshot"
)

func main() {
	nodes := flag.Int("nodes", 0,
		"run a generated topology of this size on the scale engine instead of the paper study (try 10000)")
	gen := flag.String("gen", "plant", "generator kind for -nodes: plant, campus or field")
	shards := flag.Int("shards", 1,
		"scale-engine shard count (results are bit-identical for any value)")
	seed := flag.Int64("seed", 3, "simulation seed (and topology seed for -nodes)")
	flag.Parse()

	var err error
	if *nodes > 0 {
		err = runScale(*gen, *nodes, *shards, *seed)
	} else {
		err = runPaperStudy()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "largescale:", err)
		os.Exit(1)
	}
}

func runPaperStudy() error {
	opts := experiments.DefaultLargeScaleOptions()
	opts.FlowSets = 4 // keep the example interactive; digs-bench -fig 12 -full scales up
	fmt.Printf("150 nodes over %.0f m x %.0f m, %d disturbers, %d flow sets x %d flows\n",
		opts.AreaM, opts.AreaM, opts.Disturbers, opts.FlowSets, opts.FlowsPerSet)
	fmt.Println("running both protocol stacks (this takes a minute)...")

	res, err := experiments.RunFig12(opts)
	if err != nil {
		return err
	}

	report := func(name string, rs []experiments.FlowSetResult) {
		pdrs := experiments.PDRs(rs)
		lats := experiments.AllLatenciesMs(rs)
		fmt.Printf("%-10s PDR mean %.3f (worst set %.3f), median latency %.0f ms, "+
			"duty/packet %.4f%%\n",
			name, metrics.Mean(pdrs), metrics.Min(pdrs), metrics.Quantile(lats, 0.5),
			metrics.Quantile(experiments.DutiesPerPacket(rs), 0.5))
	}
	report("DiGS", res.DiGS)
	report("Orchestra", res.Orchestra)
	return nil
}

// runScale demonstrates the massive-scale path: a generated deployment on
// the sparse sharded engine, converged and then measured over one flow
// window.
func runScale(gen string, nodes, shards int, seed int64) error {
	topoName := fmt.Sprintf("gen-%s-%d-%d", gen, nodes, seed)
	sc, err := scenario.Build(scenario.Params{
		TopologyName: topoName,
		Protocol:     snapshot.ProtocolDiGS,
		Seed:         seed,
		Shards:       shards,
	})
	if err != nil {
		return err
	}
	topo := sc.NW.Topology()
	n := topo.N()
	fmt.Printf("%s: %d nodes (%d APs), %d directed links, %d shard(s)\n",
		topoName, n, topo.NumAPs, topo.SparseView().Links(), sc.NW.ShardCount())

	fmt.Println("converging (structurally-idle nodes nap between their slots)...")
	start := time.Now()
	// The join tail is long at scale: the generators keep guard-band
	// links, so the last few nodes hear a beacon only every ~100k slots.
	budget := sim.ASN(120_000 + int64(nodes)*30)
	sc.NW.RunUntil(budget, func() bool { return sc.Joined() == n })
	fmt.Printf("  %d/%d joined at slot %d (%.1fs wall, %.0f slots/s)\n",
		sc.Joined(), n, sc.NW.ASN(), time.Since(start).Seconds(),
		float64(sc.NW.ASN())/time.Since(start).Seconds())

	col := metrics.NewCollector()
	sc.OnDeliver(func(asn sim.ASN, f *sim.Frame) { col.Delivered(f.FlowID, f.Seq, asn) })
	fset := flows.FixedSet(topo.SuggestedSources, 2*time.Second)
	const packets = 20
	flows.Schedule(sc.NW, fset, packets, func(f flows.Flow, seq uint16, asn sim.ASN) {
		col.Sent(f.ID, seq, asn)
		_ = sc.MACNode(int(f.Source)).InjectData(&sim.Frame{
			Origin: f.Source, FlowID: f.ID, Seq: seq, BornASN: asn,
		})
	})
	// Drain long enough for the deepest paths: DiGS forwards one hop per
	// app slotframe, and ScaledConfig's frame grows with N, so budget
	// ~60 hops of frames on top of the injection span.
	drain := 60 * core.ScaledConfig(topo.NumAPs, n).AppFrameLen
	window := sim.SlotsFor(2*time.Second*packets) + sim.ASN(drain)
	start = time.Now()
	sc.NW.Run(window)
	el := time.Since(start)

	lats := col.Latencies()
	ms := make([]float64, len(lats))
	for i, l := range lats {
		ms[i] = float64(l.Milliseconds())
	}
	fmt.Printf("flow window: %d slots in %.1fs wall (%.0f slots/s)\n",
		window, el.Seconds(), float64(window)/el.Seconds())
	fmt.Printf("  %d flows x %d packets: PDR %.3f, median latency %.0f ms\n",
		len(fset), packets, col.PDR(), metrics.Quantile(ms, 0.5))
	return nil
}
