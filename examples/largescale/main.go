// Large scale: the paper's Section VII-D study in miniature — 150 field
// devices in a 300 m x 300 m area with five wide-band disturbers toggling
// every five minutes, DiGS vs Orchestra side by side.
//
//	go run ./examples/largescale
package main

import (
	"fmt"
	"os"

	"github.com/digs-net/digs/internal/experiments"
	"github.com/digs-net/digs/internal/metrics"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "largescale:", err)
		os.Exit(1)
	}
}

func run() error {
	opts := experiments.DefaultLargeScaleOptions()
	opts.FlowSets = 4 // keep the example interactive; digs-bench -fig 12 -full scales up
	fmt.Printf("150 nodes over %.0f m x %.0f m, %d disturbers, %d flow sets x %d flows\n",
		opts.AreaM, opts.AreaM, opts.Disturbers, opts.FlowSets, opts.FlowsPerSet)
	fmt.Println("running both protocol stacks (this takes a minute)...")

	res, err := experiments.RunFig12(opts)
	if err != nil {
		return err
	}

	report := func(name string, rs []experiments.FlowSetResult) {
		pdrs := experiments.PDRs(rs)
		lats := experiments.AllLatenciesMs(rs)
		fmt.Printf("%-10s PDR mean %.3f (worst set %.3f), median latency %.0f ms, "+
			"duty/packet %.4f%%\n",
			name, metrics.Mean(pdrs), metrics.Min(pdrs), metrics.Quantile(lats, 0.5),
			metrics.Quantile(experiments.DutiesPerPacket(rs), 0.5))
	}
	report("DiGS", res.DiGS)
	report("Orchestra", res.Orchestra)
	return nil
}
