// Actuation: the closed loop that makes a WSAN a sensor-ACTUATOR network.
// Sensors report readings uplink over the distributed graph routes; the
// gateway learns each device's path from the hops those reports record,
// and source-routes setpoint commands back downlink in autonomous command
// slots — no Network Manager anywhere.
//
//	go run ./examples/actuation
package main

import (
	"fmt"
	"os"
	"time"

	"github.com/digs-net/digs/internal/core"
	"github.com/digs-net/digs/internal/mac"
	"github.com/digs-net/digs/internal/sim"
	"github.com/digs-net/digs/internal/topology"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "actuation:", err)
		os.Exit(1)
	}
}

func run() error {
	topo := topology.TestbedA()
	nw := sim.NewNetwork(topo, 99)
	macCfg := mac.DefaultConfig()
	macCfg.DownlinkFrameLen = 149 // enable autonomous command slots
	net, err := core.Build(nw, core.DefaultConfig(topo.NumAPs), macCfg, 99)
	if err != nil {
		return err
	}
	gw := core.NewGateway(net)

	if _, ok := nw.RunUntil(sim.SlotsFor(4*time.Minute), func() bool {
		return net.JoinedCount() == topo.N()
	}); !ok {
		return fmt.Errorf("network did not converge")
	}
	fmt.Println("plant network formed; valves idle")

	// The control loop: a pressure sensor reports, the controller reacts
	// with a valve setpoint to the same device.
	sensor := topo.SuggestedSources[0]
	gw.Delivered = func(asn sim.ASN, f *sim.Frame) {
		if f.Origin == sensor {
			fmt.Printf("  controller: pressure report #%d from node %d (latency %v)\n",
				f.Seq, f.Origin, sim.TimeAt(asn-f.BornASN))
			// React: push a valve setpoint back to the device.
			if err := gw.SendCommand(sensor, []byte{byte(f.Seq)}); err != nil {
				fmt.Printf("  controller: command failed: %v\n", err)
			}
		}
	}
	commands := 0
	if err := net.OnCommand(sensor, func(asn sim.ASN, f *sim.Frame) {
		commands++
		fmt.Printf("  actuator %d: valve setpoint %d applied at t=%v\n",
			sensor, f.Payload[0], sim.TimeAt(asn))
	}); err != nil {
		return err
	}

	fmt.Printf("running 8 control rounds through sensor/actuator node %d:\n", sensor)
	for seq := uint16(0); seq < 8; seq++ {
		if err := net.Nodes[sensor].InjectData(&sim.Frame{
			Origin: sensor, FlowID: 1, Seq: seq, BornASN: nw.ASN(),
		}); err != nil {
			return err
		}
		nw.Run(sim.SlotsFor(10 * time.Second))
	}
	nw.Run(sim.SlotsFor(20 * time.Second))

	_, path, ok := gw.RouteTo(sensor)
	if ok {
		fmt.Printf("\nlearned downlink route to node %d: AP -> %v\n", sensor, path)
	}
	fmt.Printf("closed loops completed: %d/8\n", commands)
	if commands == 0 {
		return fmt.Errorf("no commands reached the actuator")
	}
	return nil
}
