// Factory failover: a process-control line where a relay node dies
// mid-production. The example runs the same scenario twice — once with
// DiGS, once with the single-parent Orchestra baseline — and prints the
// packet-by-packet delivery record around the failure, reproducing the
// paper's Figure 11(b) contrast: DiGS's backup routes carry the data
// through the failure, the tree-routing baseline goes dark until RPL
// repairs.
//
//	go run ./examples/factoryfailover
package main

import (
	"fmt"
	"os"
	"time"

	"github.com/digs-net/digs/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "factoryfailover:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("scenario: 8 sensor flows on the 50-node factory floor;")
	fmt.Println("the busiest relay node dies while packet #33 is in flight.")

	for _, proto := range []experiments.Protocol{experiments.DiGS, experiments.Orchestra} {
		res, err := experiments.RunFig11b(proto, 11)
		if err != nil {
			return err
		}
		fmt.Printf("\n--- %s ---\n", proto)
		printRecord(res)
	}
	fmt.Println("\nO = delivered, . = lost. DiGS's third transmission attempt already")
	fmt.Println("uses the backup parent, so the failure window stays covered.")
	return nil
}

func printRecord(res *experiments.MicrobenchResult) {
	fmt.Printf("packet #:      ")
	for s := res.FromSeq; s <= res.ToSeq; s++ {
		fmt.Printf("%3d", s)
	}
	fmt.Println()
	lost := 0
	for flow := uint16(1); int(flow) <= len(res.Delivered); flow++ {
		fmt.Printf("  sensor %2d:   ", flow)
		for s := res.FromSeq; s <= res.ToSeq; s++ {
			if res.Delivered[flow][s] {
				fmt.Print("  O")
			} else {
				fmt.Print("  .")
				lost++
			}
		}
		fmt.Println()
	}
	total := len(res.Delivered) * int(res.ToSeq-res.FromSeq+1)
	fmt.Printf("window delivery: %d/%d packets\n", total-lost, total)
}

var _ = time.Second // the scenario timing lives in the experiments package
