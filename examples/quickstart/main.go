// Quickstart: the smallest useful DiGS network.
//
// It builds the 20-node half testbed, lets the distributed graph routing
// converge, prints the routing graph every node computed for itself (best
// and backup parent — no central manager anywhere), then pushes a few
// sensor readings to the access points.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"
	"time"

	"github.com/digs-net/digs/internal/core"
	"github.com/digs-net/digs/internal/mac"
	"github.com/digs-net/digs/internal/metrics"
	"github.com/digs-net/digs/internal/sim"
	"github.com/digs-net/digs/internal/topology"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// A deployment is just node placements plus radio parameters.
	topo := topology.HalfTestbedA()
	fmt.Printf("deployment %q: %d devices, %d access points\n",
		topo.Name, topo.N(), topo.NumAPs)

	// One simulated network, one DiGS stack per device.
	nw := sim.NewNetwork(topo, 42)
	net, err := core.Build(nw, core.DefaultConfig(topo.NumAPs), mac.DefaultConfig(), 42)
	if err != nil {
		return err
	}

	// Let the devices join: they scan for beacons, synchronise, and pick
	// their primary and backup parents from join-in advertisements —
	// Algorithm 1 of the paper, running independently on every node.
	slots, ok := nw.RunUntil(sim.SlotsFor(5*time.Minute), func() bool {
		return net.JoinedCount() == topo.N()
	})
	if !ok {
		return fmt.Errorf("network did not converge")
	}
	fmt.Printf("all devices joined after %v\n\n", sim.TimeAt(slots))
	nw.Run(sim.SlotsFor(30 * time.Second)) // let backup parents thicken

	// Every field device has computed its own graph routes.
	fmt.Println("self-computed routing graph (primary / backup parent):")
	for i := topo.NumAPs + 1; i <= topo.N(); i++ {
		r := net.Stacks[i].Router()
		best, second := r.Parents()
		backup := "-"
		if second != 0 {
			backup = fmt.Sprintf("%d", second)
		}
		fmt.Printf("  node %2d -> %2d (backup %s), rank %d\n", i, best, backup, r.Rank())
	}

	// Send ten sensor readings from the farthest device.
	col := metrics.NewCollector()
	net.OnDeliver(func(asn sim.ASN, f *sim.Frame) {
		col.Delivered(f.FlowID, f.Seq, asn)
		fmt.Printf("  AP received reading #%d after %v\n",
			f.Seq, sim.TimeAt(asn-f.BornASN))
	})
	src := topology.NodeID(topo.N()) // the last (deepest) device
	fmt.Printf("\nsending 10 readings from node %d:\n", src)
	for seq := uint16(0); seq < 10; seq++ {
		asn := nw.ASN()
		col.Sent(1, seq, asn)
		if err := net.Nodes[src].InjectData(&sim.Frame{
			Origin: src, FlowID: 1, Seq: seq, BornASN: asn,
		}); err != nil {
			return err
		}
		nw.Run(sim.SlotsFor(2 * time.Second))
	}
	nw.Run(sim.SlotsFor(10 * time.Second))

	fmt.Printf("\ndelivered %d/10 (PDR %.0f%%)\n", col.DeliveredCount(), 100*col.PDR())
	return nil
}
