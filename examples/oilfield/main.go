// Oil field monitoring: the paper's motivating scenario — many battery
// powered wellhead sensors spread over a large field, reporting through a
// WSAN while co-located WiFi backhaul interferes.
//
// The example deploys 80 sensors over a 250 m x 250 m field, runs DiGS,
// switches on WiFi-like interference near the gateway, and shows how graph
// routing keeps the well data flowing while the interference is on.
//
//	go run ./examples/oilfield
package main

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"sort"
	"time"

	"github.com/digs-net/digs/internal/core"
	"github.com/digs-net/digs/internal/flows"
	"github.com/digs-net/digs/internal/interference"
	"github.com/digs-net/digs/internal/mac"
	"github.com/digs-net/digs/internal/metrics"
	"github.com/digs-net/digs/internal/sim"
	"github.com/digs-net/digs/internal/topology"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "oilfield:", err)
		os.Exit(1)
	}
}

// nearestToAPs returns the n field devices closest to any access point.
func nearestToAPs(topo *topology.Topology, n int) []topology.NodeID {
	type cand struct {
		id topology.NodeID
		d  float64
	}
	var cands []cand
	for i := topo.NumAPs + 1; i <= topo.N(); i++ {
		id := topology.NodeID(i)
		best := math.MaxFloat64
		for _, ap := range topo.APs() {
			if d := topo.Distance(id, ap); d < best {
				best = d
			}
		}
		cands = append(cands, cand{id, best})
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].d < cands[b].d })
	out := make([]topology.NodeID, n)
	for i := 0; i < n; i++ {
		out[i] = cands[i].id
	}
	return out
}

func run() error {
	topo := topology.NewRandom(80, 250, 250, 2026)
	fmt.Printf("oil field: %d wellhead sensors over %.0f m x %.0f m, 2 gateway APs\n",
		topo.N()-topo.NumAPs, 250.0, 250.0)

	nw := sim.NewNetwork(topo, 2026)
	net, err := core.Build(nw, core.DefaultConfig(topo.NumAPs), mac.DefaultConfig(), 2026)
	if err != nil {
		return err
	}
	if _, ok := nw.RunUntil(sim.SlotsFor(6*time.Minute), func() bool {
		return net.JoinedCount() == topo.N()
	}); !ok {
		return fmt.Errorf("field network did not converge (%d/%d)",
			net.JoinedCount(), topo.N())
	}
	fmt.Println("field network formed")
	nw.Run(sim.SlotsFor(30 * time.Second))

	// Pick twelve wells to report pressure every 10 s.
	rng := rand.New(rand.NewSource(7))
	wells, err := flows.RandomSet(topo, 12, 10*time.Second, rng)
	if err != nil {
		return err
	}

	seqBase := uint16(0)
	measure := func(label string, packets int) error {
		col := metrics.NewCollector()
		net.OnDeliver(func(asn sim.ASN, f *sim.Frame) { col.Delivered(f.FlowID, f.Seq, asn) })
		base := seqBase
		seqBase += uint16(packets) // end-to-end dedupe needs unique seqs
		flows.Schedule(nw, wells, packets, func(f flows.Flow, seq uint16, asn sim.ASN) {
			seq += base
			col.Sent(f.ID, seq, asn)
			_ = net.Nodes[f.Source].InjectData(&sim.Frame{
				Origin: f.Source, FlowID: f.ID, Seq: seq, BornASN: asn,
			})
		})
		nw.Run(sim.SlotsFor(10*time.Second*time.Duration(packets) + 20*time.Second))
		net.OnDeliver(nil)
		lats := metrics.DurationsToMillis(col.Latencies())
		fmt.Printf("%-28s PDR %.3f, median latency %.0f ms\n",
			label, col.PDR(), metrics.Quantile(lats, 0.5))
		return nil
	}

	// Phase 1: clean spectrum.
	if err := measure("clean spectrum:", 12); err != nil {
		return err
	}

	// Phase 2: the site's WiFi backhaul comes up near the gateway. Pick
	// the two field devices closest to the APs as the interferer sites.
	jammers := nearestToAPs(topo, 2)
	for j, at := range jammers {
		nw.AddInterferer(&interference.Window{
			Source:   interference.NewWiFiJammer(topo, at, []int{1, 6}[j], int64(j)+9),
			StartASN: nw.ASN(),
		})
	}
	fmt.Printf("WiFi backhaul interference on near the gateway (at wells %v)\n", jammers)
	// Let the distributed routing adapt: the estimators learn from live
	// traffic, so keep the wells reporting while they re-route.
	if err := measure("during adaptation:", 12); err != nil {
		return err
	}
	if err := measure("after re-routing:", 12); err != nil {
		return err
	}

	// Show that wells near the interference rerouted: count devices whose
	// primary parent changed since formation is visible via the parent
	// change counters.
	changes := int64(0)
	for i := topo.NumAPs + 1; i <= topo.N(); i++ {
		changes += net.Stacks[i].Router().ParentChanges()
	}
	fmt.Printf("total distributed route adaptations so far: %d (no manager involved)\n", changes)
	return nil
}
