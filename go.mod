module github.com/digs-net/digs

go 1.22
