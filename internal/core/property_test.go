package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/digs-net/digs/internal/mac"
	"github.com/digs-net/digs/internal/topology"
)

// TestAppTxSlotAlwaysInFrame: Eq. (4) slots stay inside the slotframe for
// any node ID, AP count, attempt count and frame length.
func TestAppTxSlotAlwaysInFrame(t *testing.T) {
	f := func(id uint16, numAPs uint8, attempts uint8, p uint8, frameLen uint16) bool {
		a := int(attempts)%8 + 1
		nap := int(numAPs)%8 + 1
		fl := int64(frameLen)%1000 + 1
		pp := int(p)%a + 1
		slot := AppTxSlot(topology.NodeID(id), nap, a, pp, fl)
		return slot >= 0 && slot < fl
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestAppTxSlotsDistinctWithinNode: a node's A attempt slots never collide
// with each other as long as the frame is long enough.
func TestAppTxSlotsDistinctWithinNode(t *testing.T) {
	f := func(id uint16, frameOdd uint8) bool {
		fl := int64(frameOdd)%500 + 7 // >= attempts
		seen := map[int64]bool{}
		for p := 1; p <= 3; p++ {
			s := AppTxSlot(topology.NodeID(id), 2, 3, p, fl)
			if seen[s] {
				return false
			}
			seen[s] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestWeightedETXBounded: Eq. (1) output always lies between the primary
// and backup accumulated ETX (the weights sum to 1 and are in [0, 1]).
func TestWeightedETXBounded(t *testing.T) {
	f := func(bp, a, b float64) bool {
		etxBP := 1 + math.Mod(math.Abs(bp), 15)  // 1..16
		lo := 1 + math.Mod(math.Abs(a), 30)      // 1..31
		hi := lo + math.Mod(math.Abs(b), 30) + 1 // > lo
		w := weightedETX(etxBP, lo, hi)
		return w >= lo-1e-9 && w <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestRouterInvariantsUnderRandomEvents drives a router with arbitrary
// event sequences and checks its structural invariants after every step:
//
//   - best != second when both set;
//   - joined implies finite advertised ETXw and non-infinite rank;
//   - the neighbour-table rank of each selected parent is strictly below
//     the node's own rank (loop-freedom);
//   - ETXw is never negative.
func TestRouterInvariantsUnderRandomEvents(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		r := NewRouter(100, false, 1<<40, 1<<40, 4)
		for step := 0; step < 120; step++ {
			from := topology.NodeID(rng.Intn(20) + 1)
			switch rng.Intn(4) {
			case 0, 1:
				j := JoinIn{
					Rank: uint16(rng.Intn(60) + 1),
					ETXw: rng.Float64() * 12,
				}
				if rng.Intn(10) == 0 {
					j.Rank = RankInfinity
				}
				r.OnJoinIn(int64(step), from, j, -60-rng.Float64()*35)
			case 2:
				r.OnTxResult(int64(step), from, rng.Intn(3) > 0)
			case 3:
				r.Maintain(int64(step))
			}
			checkRouterInvariants(t, r, trial, step)
		}
	}
}

func checkRouterInvariants(t *testing.T, r *Router, trial, step int) {
	t.Helper()
	best, second := r.Parents()
	if best != 0 && best == second {
		t.Fatalf("trial %d step %d: best == second == %d", trial, step, best)
	}
	if second != 0 && best == 0 {
		t.Fatalf("trial %d step %d: second parent without best", trial, step)
	}
	if r.Joined() {
		adv, ok := r.Advertisement()
		if !ok {
			t.Fatalf("trial %d step %d: joined but not advertising", trial, step)
		}
		if adv.Rank >= RankInfinity {
			t.Fatalf("trial %d step %d: joined with infinite rank", trial, step)
		}
		if adv.ETXw < 0 || math.IsNaN(adv.ETXw) || math.IsInf(adv.ETXw, 0) {
			t.Fatalf("trial %d step %d: bad advertised ETXw %v", trial, step, adv.ETXw)
		}
	} else if r.Rank() != RankInfinity {
		t.Fatalf("trial %d step %d: unjoined with finite rank %d", trial, step, r.Rank())
	}
	for _, parent := range []topology.NodeID{best, second} {
		if parent == 0 {
			continue
		}
		e, ok := r.neighbors[parent]
		if !ok {
			t.Fatalf("trial %d step %d: parent %d not in neighbour table", trial, step, parent)
		}
		if e.rank >= r.Rank() {
			t.Fatalf("trial %d step %d: parent %d rank %d >= own rank %d",
				trial, step, parent, e.rank, r.Rank())
		}
	}
}

// TestStackAssignmentsDeterministic: the combined schedule is a pure
// function of the slot for fixed routing state.
func TestStackAssignmentsDeterministic(t *testing.T) {
	s := newStack(t, 7, false, DefaultConfig(2))
	s.Router().OnJoinIn(0, 1, JoinIn{Rank: 1, ETXw: 0}, -60)
	for asn := int64(0); asn < 2000; asn++ {
		a1 := s.sched.Assignment(asn)
		a2 := s.sched.Assignment(asn)
		if a1 != a2 {
			t.Fatalf("assignment not deterministic at ASN %d: %+v vs %+v", asn, a1, a2)
		}
	}
}

// TestSchedulerNeverDoubleBooks: in every slot the node has exactly one
// role, and its EB slot is never overridden (sync has top priority).
func TestSchedulerNeverDoubleBooks(t *testing.T) {
	cfg := DefaultConfig(2)
	s := newStack(t, 9, false, cfg)
	s.Router().OnJoinIn(0, 1, JoinIn{Rank: 1, ETXw: 0}, -60)
	s.Router().OnChildCallback(0, 15, JoinedCallback{Role: RoleBestParent})

	ebSlot := int64(9 - 1)
	hyper := cfg.SyncFrameLen * cfg.RoutingFrameLen // sample window
	for asn := int64(0); asn < hyper; asn++ {
		a := s.sched.Assignment(asn)
		if asn%cfg.SyncFrameLen == ebSlot && a.Role != mac.RoleTxEB {
			t.Fatalf("EB slot overridden at ASN %d by role %v", asn, a.Role)
		}
	}
}
