package core

import (
	"bytes"
	"testing"
)

// FuzzUnmarshalJoinIn checks the join-in payload codec never panics on
// arbitrary bytes and that accepted payloads round-trip bit-exactly
// (ETXw travels as a float32, so Marshal(Unmarshal(b)) must equal b).
func FuzzUnmarshalJoinIn(f *testing.F) {
	f.Add(JoinIn{Rank: 1, ETXw: 0}.Marshal())
	f.Add(JoinIn{Rank: 7, ETXw: 3.25}.Marshal())
	f.Add(JoinIn{Rank: RankInfinity, ETXw: 1e30}.Marshal())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}) // NaN ETXw bits
	f.Fuzz(func(t *testing.T, data []byte) {
		j, err := UnmarshalJoinIn(data)
		if err != nil {
			return
		}
		if j.ETXw < 0 || j.ETXw != j.ETXw {
			t.Fatalf("accepted invalid ETXw %v", j.ETXw)
		}
		if out := j.Marshal(); !bytes.Equal(out, data) {
			t.Fatalf("round trip changed payload: %x -> %x", data, out)
		}
	})
}

// FuzzUnmarshalJoinedCallback checks the joined-callback codec rejects
// everything but the two defined roles and round-trips what it accepts.
func FuzzUnmarshalJoinedCallback(f *testing.F) {
	f.Add(JoinedCallback{Role: RoleBestParent}.Marshal())
	f.Add(JoinedCallback{Role: RoleSecondParent}.Marshal())
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{3})
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := UnmarshalJoinedCallback(data)
		if err != nil {
			return
		}
		if c.Role != RoleBestParent && c.Role != RoleSecondParent {
			t.Fatalf("accepted unknown role %d", c.Role)
		}
		if out := c.Marshal(); !bytes.Equal(out, data) {
			t.Fatalf("round trip changed payload: %x -> %x", data, out)
		}
	})
}
