package core

import (
	"fmt"
	"math/rand"

	"github.com/digs-net/digs/internal/detrand"
	"github.com/digs-net/digs/internal/mac"
	"github.com/digs-net/digs/internal/sim"
	"github.com/digs-net/digs/internal/telemetry"
	"github.com/digs-net/digs/internal/topology"
)

// Network bundles the per-node MAC and DiGS instances running over one
// simulated network.
type Network struct {
	Nodes  []*mac.Node // indexed by node ID, entry 0 nil
	Stacks []*Stack    // indexed by node ID, entry 0 nil
}

// Build attaches a full DiGS stack to every node of the network's
// topology. Sink callbacks can then be installed on the AP nodes.
func Build(nw *sim.Network, cfg Config, macCfg mac.Config, seed int64) (*Network, error) {
	topo := nw.Topology()
	if cfg.NumAPs != topo.NumAPs {
		return nil, fmt.Errorf("digs build: config NumAPs %d != topology NumAPs %d",
			cfg.NumAPs, topo.NumAPs)
	}
	out := &Network{
		Nodes:  make([]*mac.Node, topo.N()+1),
		Stacks: make([]*Stack, topo.N()+1),
	}
	for i := 1; i <= topo.N(); i++ {
		id := topology.NodeID(i)
		isAP := topo.IsAP(id)
		// A counting source (same value stream as rand.NewSource) keeps
		// the stack's RNG position checkpointable for snapshots.
		src := detrand.New(seed*7919 + int64(i))
		stack, err := NewStack(id, isAP, cfg, rand.New(src))
		if err != nil {
			return nil, err
		}
		stack.rngSrc = src
		node := mac.NewNode(id, isAP, stack, macCfg)
		if err := nw.Attach(node); err != nil {
			return nil, fmt.Errorf("digs build: %w", err)
		}
		out.Nodes[i] = node
		out.Stacks[i] = stack
	}
	return out, nil
}

// OnDeliver installs the sink callback on every access point.
func (n *Network) OnDeliver(fn func(asn sim.ASN, f *sim.Frame)) {
	for _, node := range n.Nodes[1:] {
		if node.IsAP() {
			node.Sink = fn
		}
	}
}

// SetTracer installs (or, with nil, removes) a packet-lifecycle tracer on
// every node, and wires the routers' reselection callbacks so parent
// switches appear in the event stream as route-change events.
func (n *Network) SetTracer(t telemetry.Tracer) {
	for i, node := range n.Nodes {
		if node == nil {
			continue
		}
		node.SetTracer(t)
		r := n.Stacks[i].Router()
		if t == nil {
			r.OnRouteChange = nil
			continue
		}
		id := topology.NodeID(i)
		r.OnRouteChange = func(asn sim.ASN, best, second topology.NodeID) {
			t.Record(telemetry.Event{
				ASN:   int64(asn),
				Type:  telemetry.EvRouteChange,
				Node:  id,
				Peer:  best,
				Peer2: second,
			})
		}
	}
}

// JoinedCount returns how many nodes are synchronised and have selected a
// best parent (APs count as joined).
func (n *Network) JoinedCount() int {
	joined := 0
	for i, node := range n.Nodes {
		if node == nil {
			continue
		}
		if synced, _ := node.Synced(); synced && n.Stacks[i].Router().Joined() {
			joined++
		}
	}
	return joined
}
