package core

import (
	"math"
	"testing"

	"github.com/digs-net/digs/internal/topology"
)

// rssForETX inverts the paper's RSS-to-initial-ETX mapping so router tests
// can inject exact link ETX values.
func rssForETX(etx float64) float64 {
	return -60 - (etx-1)*15
}

func newFieldRouter(id topology.NodeID) *Router {
	return NewRouter(id, false, 1<<40, 1<<40, 1)
}

func joinIn(t *testing.T, r *Router, asn int64, from topology.NodeID,
	rank uint16, etxw, linkETX float64) bool {
	t.Helper()
	return r.OnJoinIn(asn, from, JoinIn{Rank: rank, ETXw: etxw}, rssForETX(linkETX))
}

func TestAPRouterIsRoot(t *testing.T) {
	r := NewRouter(1, true, 1000, 1000, 1)
	if r.Rank() != 1 {
		t.Fatalf("AP rank = %d, want 1", r.Rank())
	}
	if r.ETXw() != 0 {
		t.Fatalf("AP ETXw = %f, want 0", r.ETXw())
	}
	adv, ok := r.Advertisement()
	if !ok || adv.Rank != 1 || adv.ETXw != 0 {
		t.Fatalf("AP advertisement = %+v/%v, want rank 1, etxw 0", adv, ok)
	}
	// APs never select parents.
	if changed := joinIn(t, r, 0, 5, 2, 1.0, 1.0); changed {
		t.Fatal("AP changed parents on a join-in")
	}
}

func TestUnjoinedRouterDoesNotAdvertise(t *testing.T) {
	r := newFieldRouter(7)
	if _, ok := r.Advertisement(); ok {
		t.Fatal("unjoined node advertised")
	}
	if r.Rank() != RankInfinity {
		t.Fatalf("unjoined rank = %d, want infinity", r.Rank())
	}
	if r.Joined() {
		t.Fatal("unjoined node reports joined")
	}
}

func TestFirstJoinInAdoptsBestParent(t *testing.T) {
	r := newFieldRouter(5)
	if changed := joinIn(t, r, 10, 1, 1, 0, 1.0); !changed {
		t.Fatal("first join-in did not change parents")
	}
	best, second := r.Parents()
	if best != 1 || second != 0 {
		t.Fatalf("parents = (%d, %d), want (1, 0)", best, second)
	}
	if r.Rank() != 2 {
		t.Fatalf("rank = %d, want 2", r.Rank())
	}
	at, ok := r.FirstParentAt()
	if !ok || at != 10 {
		t.Fatalf("FirstParentAt = (%d, %v), want (10, true)", at, ok)
	}
}

// TestRoutingExampleFig6 replays the paper's Figure 6 worked example and
// checks the generated graph routes match Figure 6(b):
// primary paths #3 -> #4 -> #6 -> AP2 and #5 -> AP1; backup links
// #3 -> #5, #4 -> #5, #5 -> AP2 and #6 -> AP1. Node IDs here: AP1=1,
// AP2=2, and field devices keep their figure numbers (3, 4, 5, 6).
func TestRoutingExampleFig6(t *testing.T) {
	r5 := newFieldRouter(5)
	r6 := newFieldRouter(6)
	r4 := newFieldRouter(4)
	r3 := newFieldRouter(3)

	// APs start broadcasting; #5 and #6 join.
	joinIn(t, r5, 1, 1, 1, 0, 1.0) // ETX(5, AP1) = 1.0
	joinIn(t, r5, 2, 2, 1, 0, 1.2) // ETX(5, AP2) = 1.2
	joinIn(t, r6, 1, 2, 1, 0, 1.0) // ETX(6, AP2) = 1.0
	joinIn(t, r6, 2, 1, 1, 0, 1.5) // ETX(6, AP1) = 1.5

	if best, second := r5.Parents(); best != 1 || second != 2 {
		t.Fatalf("#5 parents = (%d, %d), want (AP1, AP2)", best, second)
	}
	if best, second := r6.Parents(); best != 2 || second != 1 {
		t.Fatalf("#6 parents = (%d, %d), want (AP2, AP1)", best, second)
	}
	if r5.Rank() != 2 || r6.Rank() != 2 {
		t.Fatalf("ranks #5=%d #6=%d, want 2 and 2", r5.Rank(), r6.Rank())
	}

	// The #5 <-> #6 link must not be selected for routing: same rank.
	adv6, _ := r6.Advertisement()
	joinIn(t, r5, 3, 6, adv6.Rank, adv6.ETXw, 1.0)
	if best, second := r5.Parents(); best != 1 || second != 2 {
		t.Fatalf("#5 adopted same-rank #6: parents (%d, %d)", best, second)
	}

	// #4 hears #6 (best) and #5 (backup).
	adv5, _ := r5.Advertisement()
	joinIn(t, r4, 4, 6, adv6.Rank, adv6.ETXw, 1.0) // ETXa(4,6) = 1 + ETXw(6)
	joinIn(t, r4, 5, 5, adv5.Rank, adv5.ETXw, 1.5) // ETXa(4,5) = 1.5 + ETXw(5)
	if best, second := r4.Parents(); best != 6 || second != 5 {
		t.Fatalf("#4 parents = (%d, %d), want (6, 5)", best, second)
	}
	if r4.Rank() != 3 {
		t.Fatalf("#4 rank = %d, want 3", r4.Rank())
	}

	// #3 compares ETXa(3,4) with ETXa(3,5).
	adv4, _ := r4.Advertisement()
	joinIn(t, r3, 6, 4, adv4.Rank, adv4.ETXw, 1.0) // ETXa = 1 + ETXw(4)
	joinIn(t, r3, 7, 5, adv5.Rank, adv5.ETXw, 2.5) // ETXa = 2.5 + ETXw(5)
	if best, second := r3.Parents(); best != 4 || second != 5 {
		t.Fatalf("#3 parents = (%d, %d), want (4, 5)", best, second)
	}
	if r3.Rank() != 4 {
		t.Fatalf("#3 rank = %d, want 4", r3.Rank())
	}
}

func TestWeightedETXEquationOne(t *testing.T) {
	// With a perfect link to the best parent (ETX 1), w1 = 1 and the
	// backup path contributes nothing.
	if got := weightedETX(1.0, 2.0, 9.0); math.Abs(got-2.0) > 1e-9 {
		t.Fatalf("weightedETX(1, 2, 9) = %f, want 2", got)
	}
	// ETX_bp = 2: fail prob per attempt 0.5, w2 = 0.25, w1 = 0.75.
	want := 0.75*3.0 + 0.25*5.0
	if got := weightedETX(2.0, 3.0, 5.0); math.Abs(got-want) > 1e-9 {
		t.Fatalf("weightedETX(2, 3, 5) = %f, want %f", got, want)
	}
	// Without a backup the primary accumulates fully.
	if got := weightedETX(2.0, 3.0, math.Inf(1)); got != 3.0 {
		t.Fatalf("weightedETX without backup = %f, want 3", got)
	}
}

func TestBetterParentReplacesBest(t *testing.T) {
	r := newFieldRouter(9)
	joinIn(t, r, 1, 4, 2, 1.0, 2.0) // etxa = 3.0
	if best, _ := r.Parents(); best != 4 {
		t.Fatalf("best = %d, want 4", best)
	}
	// A strictly better route shows up: becomes best, old best demotes to
	// second (it has rank 2 < new rank 2... rank(5)=1+1=2; old best rank 2
	// is NOT < 2, so it cannot be the backup).
	changed := joinIn(t, r, 2, 5, 1, 0, 1.0) // etxa = 1.0
	if !changed {
		t.Fatal("better parent did not trigger a change")
	}
	best, second := r.Parents()
	if best != 5 {
		t.Fatalf("best = %d, want 5", best)
	}
	// Node 4 advertises rank 2 == our new rank 2: loop rule excludes it.
	if second != 0 {
		t.Fatalf("second = %d, want none (rank rule)", second)
	}
}

func TestSecondParentRequiresLowerRank(t *testing.T) {
	r := newFieldRouter(9)
	joinIn(t, r, 1, 4, 1, 0, 1.0) // best: rank 1 root, our rank 2
	joinIn(t, r, 2, 5, 2, 1.0, 1.0)
	// Node 5 has rank 2 == our rank: not eligible as backup.
	if _, second := r.Parents(); second != 0 {
		t.Fatalf("second = %d, want none", second)
	}
	// Node 6 at rank 1 qualifies.
	joinIn(t, r, 3, 6, 1, 0, 1.4)
	if _, second := r.Parents(); second != 6 {
		t.Fatalf("second = %d, want 6", second)
	}
}

func TestTxFailuresSteerAwayFromDegradedParent(t *testing.T) {
	r := newFieldRouter(9)
	joinIn(t, r, 1, 4, 1, 0, 1.0)
	joinIn(t, r, 2, 5, 1, 0, 1.2)
	if best, second := r.Parents(); best != 4 || second != 5 {
		t.Fatalf("parents = (%d, %d), want (4, 5)", best, second)
	}
	// Node 4 dies: transmissions fail, its link ETX inflates, and the
	// router promotes node 5 without waiting for control traffic.
	changed := false
	for i := 0; i < 50 && !changed; i++ {
		changed = r.OnTxResult(int64(10+i), 4, false)
		if best, _ := r.Parents(); best == 5 {
			break
		}
	}
	if best, _ := r.Parents(); best != 5 {
		t.Fatalf("best = %d after sustained failures, want 5", best)
	}
}

func TestMaintainExpiresNeighborsAndChildren(t *testing.T) {
	r := NewRouter(9, false, 100, 100, 1)
	joinIn(t, r, 1, 4, 1, 0, 1.0)
	r.OnChildCallback(1, 12, JoinedCallback{Role: RoleBestParent})
	if len(r.Children()) != 1 {
		t.Fatal("child not recorded")
	}
	v := r.ChildVersion()

	// Within the timeout nothing expires.
	if r.Maintain(50) {
		t.Fatal("maintain changed parents prematurely")
	}
	if len(r.Children()) != 1 {
		t.Fatal("child expired prematurely")
	}

	// After the timeout both the stale neighbour (parent!) and the child
	// disappear.
	changed := r.Maintain(200)
	if !changed {
		t.Fatal("losing the only parent did not report a change")
	}
	if best, _ := r.Parents(); best != 0 {
		t.Fatalf("best = %d after expiry, want none", best)
	}
	if r.Rank() != RankInfinity {
		t.Fatalf("rank = %d after expiry, want infinity", r.Rank())
	}
	if len(r.Children()) != 0 {
		t.Fatal("child not expired")
	}
	if r.ChildVersion() == v {
		t.Fatal("child version not bumped on expiry")
	}
}

func TestChildRefreshPreventsExpiry(t *testing.T) {
	r := NewRouter(9, false, 1000, 100, 1)
	r.OnChildCallback(1, 12, JoinedCallback{Role: RoleBestParent})
	r.RefreshChild(90, 12)
	r.Maintain(150) // 150-90 < 100: still fresh
	if len(r.Children()) != 1 {
		t.Fatal("refreshed child expired")
	}
}

func TestAdvertisementTracksETXw(t *testing.T) {
	r := newFieldRouter(9)
	joinIn(t, r, 1, 4, 1, 0, 1.0)
	adv, ok := r.Advertisement()
	if !ok {
		t.Fatal("joined node does not advertise")
	}
	if adv.Rank != 2 {
		t.Fatalf("advertised rank = %d, want 2", adv.Rank)
	}
	if math.Abs(adv.ETXw-1.0) > 1e-9 {
		t.Fatalf("advertised ETXw = %f, want 1.0 (perfect single path)", adv.ETXw)
	}
}

func TestParentChangesCounter(t *testing.T) {
	r := newFieldRouter(9)
	if r.ParentChanges() != 0 {
		t.Fatal("fresh router has parent changes")
	}
	joinIn(t, r, 1, 4, 1, 0, 1.0)
	joinIn(t, r, 2, 5, 1, 0, 1.2) // adds a second parent: a change
	if got := r.ParentChanges(); got != 2 {
		t.Fatalf("parent changes = %d, want 2", got)
	}
	// Re-hearing the same state changes nothing.
	joinIn(t, r, 3, 4, 1, 0, 1.0)
	if got := r.ParentChanges(); got != 2 {
		t.Fatalf("parent changes after no-op = %d, want 2", got)
	}
}
