package core

import (
	"fmt"
	"math/rand"

	"github.com/digs-net/digs/internal/detrand"
	"github.com/digs-net/digs/internal/mac"
	"github.com/digs-net/digs/internal/phy"
	"github.com/digs-net/digs/internal/sim"
	"github.com/digs-net/digs/internal/topology"
	"github.com/digs-net/digs/internal/trickle"
)

// pendingCallback is a joined-callback waiting for a shared slot.
type pendingCallback struct {
	to    topology.NodeID
	role  ParentRole
	tries int
}

// callbackRetries bounds how often a lost joined-callback is retried
// before waiting for the next maintenance tick to try again.
const callbackRetries = 8

// Stack is one node's complete DiGS protocol instance: distributed graph
// routing plus autonomous scheduling. It implements mac.Protocol.
type Stack struct {
	id   topology.NodeID
	isAP bool
	cfg  Config

	router *Router
	sched  *scheduler
	tr     *trickle.Timer
	rng    *rand.Rand
	// rngSrc is set when the stack was built over a counting source
	// (core.Build does this); it is what makes the stack's RNG position
	// checkpointable.
	rngSrc *detrand.Source

	pending      []pendingCallback
	wantJoinIn   bool
	nextMaintain sim.ASN
	nextSolicit  sim.ASN
	synced       bool

	// A parent is confirmed once it has acknowledged our joined-callback:
	// only then does it listen in our Eq. (4) slots, so only then do we
	// send data to it. This handshake is what keeps a reselection from
	// burning transmission attempts (and link-estimator penalties) on a
	// parent that does not yet know the child.
	lastBest, lastSecond           topology.NodeID
	bestConfirmed, secondConfirmed bool

	// fallbackParent is the most recent primary parent that completed
	// the handshake. While a freshly selected parent is still
	// unconfirmed, data keeps flowing through the fallback (it still
	// lists us as a child and listens in our slots), so reselection does
	// not stall the pipe.
	fallbackParent topology.NodeID
}

var _ mac.Protocol = (*Stack)(nil)

// NewStack builds a DiGS stack for one node. The rng drives Trickle jitter
// only; give each node a distinct seed for realistic desynchronisation.
func NewStack(id topology.NodeID, isAP bool, cfg Config, rng *rand.Rand) (*Stack, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	tr, err := trickle.NewTimer(cfg.Trickle, rng)
	if err != nil {
		return nil, fmt.Errorf("digs stack %d: %w", id, err)
	}
	router := NewRouter(id, isAP, cfg.neighborTimeoutSlots(), cfg.childTimeoutSlots(),
		cfg.RankGranularity)
	router.plainETX = cfg.PlainETX
	return &Stack{
		id:     id,
		isAP:   isAP,
		cfg:    cfg,
		router: router,
		sched:  newScheduler(id, isAP, cfg, router),
		tr:     tr,
		rng:    rng,
	}, nil
}

// Router exposes the routing state for experiments and tests.
func (s *Stack) Router() *Router { return s.router }

// Reset implements mac.Resetter: it discards every piece of learned
// routing and scheduling state — neighbour table, parents, children,
// schedule, pending handshakes — returning the stack to its
// just-constructed state. Installed callbacks (Router.OnRouteChange) and
// configuration survive, so a chaos-plan reboot with state loss keeps
// reporting route changes through the same telemetry chain.
func (s *Stack) Reset() {
	onChange := s.router.OnRouteChange
	router := NewRouter(s.id, s.isAP, s.cfg.neighborTimeoutSlots(), s.cfg.childTimeoutSlots(),
		s.cfg.RankGranularity)
	router.plainETX = s.cfg.PlainETX
	router.OnRouteChange = onChange
	s.router = router
	s.sched = newScheduler(s.id, s.isAP, s.cfg, router)
	// NewTimer only fails on invalid config, which Validate already
	// accepted at construction.
	s.tr, _ = trickle.NewTimer(s.cfg.Trickle, s.rng)
	s.pending = nil
	s.wantJoinIn = false
	s.nextMaintain = 0
	s.nextSolicit = 0
	s.synced = false
	s.lastBest, s.lastSecond = 0, 0
	s.bestConfirmed, s.secondConfirmed = false, false
	s.fallbackParent = 0
}

// Assignment implements mac.Protocol. It also advances the Trickle timer
// (one call per slot) and latches a pending join-in until the next shared
// slot, and runs periodic routing-state maintenance.
func (s *Stack) Assignment(asn sim.ASN) mac.Assignment {
	if asn >= s.nextMaintain {
		s.nextMaintain = asn + s.cfg.maintainSlots()
		if s.router.Maintain(asn) {
			s.onParentsChanged(asn)
		}
		s.requeueUnconfirmed()
	}
	if s.tr.Fires(asn) {
		s.wantJoinIn = true
	}
	return s.sched.Assignment(asn)
}

// NextActive implements mac.NextActiver: the schedule's next non-sleep
// slot, pulled earlier when one of the stack's own timers needs an exact
// slot — the Trickle timer's fire/rollover point, and the periodic
// maintenance deadline (so neighbour and parent timeouts are not checked
// later than per-slot stepping would have).
func (s *Stack) NextActive(after sim.ASN) sim.ASN {
	w := s.sched.NextActive(after)
	if s.synced {
		if e := s.tr.NextEvent(int64(after)); e >= int64(after) && sim.ASN(e) < w {
			w = sim.ASN(e)
		}
	}
	if s.nextMaintain < w {
		if s.nextMaintain >= after {
			w = s.nextMaintain
		} else {
			w = after
		}
	}
	return w
}

// OnSynced implements mac.Protocol: the node joined the TSCH network and
// may start routing.
func (s *Stack) OnSynced(asn sim.ASN) {
	s.synced = true
	s.tr.Start(asn)
	// Give the normal join-in wave a head start before soliciting.
	s.nextSolicit = asn + 500 + sim.ASN(s.rng.Intn(500))
}

// EBPayload implements mac.Protocol: enhanced beacons carry the node's
// current advertisement (the 802.15.4e join metric), so neighbour tables
// stay fresh from the collision-free sync slotframe as well.
func (s *Stack) EBPayload() []byte {
	adv, ok := s.router.Advertisement()
	if !ok {
		return nil
	}
	return adv.Marshal()
}

// OnFrame implements mac.Protocol.
func (s *Stack) OnFrame(asn sim.ASN, f *sim.Frame, rssi float64) {
	switch f.Kind {
	case sim.KindEB:
		if j, err := UnmarshalJoinIn(f.Payload); err == nil {
			if s.router.OnJoinIn(asn, f.Src, j, rssi) {
				s.onParentsChanged(asn)
			}
			return
		}
		s.router.Observe(f.Src, rssi)
	case sim.KindJoinIn:
		j, err := UnmarshalJoinIn(f.Payload)
		if err != nil {
			return // corrupted or foreign frame: ignore
		}
		if s.router.OnJoinIn(asn, f.Src, j, rssi) {
			s.onParentsChanged(asn)
		} else {
			s.tr.Hear()
		}
	case sim.KindJoinedCallback:
		cb, err := UnmarshalJoinedCallback(f.Payload)
		if err != nil {
			return
		}
		s.router.Observe(f.Src, rssi)
		s.router.OnChildCallback(asn, f.Src, cb)
	case sim.KindSolicit:
		s.router.Observe(f.Src, rssi)
		if s.router.Joined() {
			s.tr.Reset(asn)
		}
	case sim.KindData:
		s.router.Observe(f.Src, rssi)
		s.router.RefreshChild(asn, f.Src)
	}
}

// SharedFrame implements mac.Protocol: joined-callbacks take precedence,
// then the latched Trickle join-in beacon. Join-in broadcasts apply a
// 1/2-persistent coin, emulating the CSMA/CA contention resolution real
// TSCH shared slots perform inside the slot (our medium is slot-atomic).
func (s *Stack) SharedFrame(asn sim.ASN) (*sim.Frame, bool) {
	if len(s.pending) > 0 {
		if s.rng.Intn(2) == 1 {
			return nil, false // persistence coin: listen this time
		}
		cb := s.pending[0]
		return &sim.Frame{
			Kind:    sim.KindJoinedCallback,
			Src:     s.id,
			Dst:     cb.to,
			Payload: JoinedCallback{Role: cb.role}.Marshal(),
		}, true
	}
	if s.synced && !s.router.Joined() {
		// Synchronised but still parentless after a grace period:
		// solicit advertisements instead of waiting out the neighbours'
		// Trickle intervals (the RPL DIS mechanism). Rate-limited so a
		// cold-starting network does not jam its own shared slot.
		if asn >= s.nextSolicit {
			s.nextSolicit = asn + 1000 + sim.ASN(s.rng.Intn(500))
			return &sim.Frame{Kind: sim.KindSolicit, Src: s.id, Dst: topology.Broadcast}, false
		}
		return nil, false
	}
	if !s.wantJoinIn || s.rng.Intn(2) == 1 {
		return nil, false
	}
	adv, ok := s.router.Advertisement()
	if !ok {
		s.wantJoinIn = false
		return nil, false
	}
	s.wantJoinIn = false
	return &sim.Frame{
		Kind:    sim.KindJoinIn,
		Src:     s.id,
		Dst:     topology.Broadcast,
		Payload: adv.Marshal(),
	}, false
}

// NextHop implements mac.Protocol: attempts 1..A-1 use the primary route,
// the final attempt the backup route (WirelessHART retry rule). Only
// confirmed parents receive data.
func (s *Stack) NextHop(_ sim.ASN, attempt int) (topology.NodeID, bool) {
	best, second := s.router.Parents()
	if !s.cfg.DisableBackup && attempt >= s.cfg.Attempts && second != 0 && s.secondConfirmed {
		return second, true
	}
	if best != 0 && s.bestConfirmed {
		return best, true
	}
	// The new best parent has not acknowledged its joined-callback yet:
	// keep the data moving through the last confirmed parent while its
	// link still works (it keeps listening for us until its child entry
	// expires).
	if s.fallbackParent != 0 && s.router.LinkETX(s.fallbackParent) < phy.ETXUnreachable {
		return s.fallbackParent, true
	}
	return 0, false
}

// OnTxResult implements mac.Protocol.
func (s *Stack) OnTxResult(asn sim.ASN, f *sim.Frame, to topology.NodeID, acked bool) {
	if f.Kind == sim.KindJoinedCallback {
		if len(s.pending) > 0 && s.pending[0].to == to {
			head := s.pending[0]
			s.pending = s.pending[1:]
			if !acked && head.tries+1 < callbackRetries {
				head.tries++
				s.pending = append(s.pending, head)
			}
		}
		if acked {
			best, second := s.router.Parents()
			if to == best {
				s.bestConfirmed = true
				s.fallbackParent = to
			}
			if to == second {
				s.secondConfirmed = true
			}
		}
	}
	if s.router.OnTxResult(asn, to, acked) {
		s.onParentsChanged(asn)
	}
}

// onParentsChanged reacts to a best/second parent change: inform the new
// parents via joined-callbacks (confirmation handshake) and reset Trickle
// so neighbours learn the new ETXw and rank quickly (Section V).
func (s *Stack) onParentsChanged(asn sim.ASN) {
	best, second := s.router.Parents()
	if best != s.lastBest {
		s.bestConfirmed = false
	}
	if second != s.lastSecond {
		s.secondConfirmed = false
	}
	s.lastBest, s.lastSecond = best, second

	s.pending = s.pending[:0]
	if best != 0 && !s.bestConfirmed {
		s.pending = append(s.pending, pendingCallback{to: best, role: RoleBestParent})
	}
	if second != 0 && !s.secondConfirmed && !s.cfg.DisableBackup {
		s.pending = append(s.pending, pendingCallback{to: second, role: RoleSecondParent})
	}
	if s.synced {
		s.tr.Reset(asn)
	}
}

// requeueUnconfirmed re-issues joined-callbacks for parents that have not
// acknowledged one yet (e.g. the earlier attempts all collided in the
// shared slot). Without this, an unlucky node would never complete the
// confirmation handshake and its data would stay parked.
func (s *Stack) requeueUnconfirmed() {
	has := func(to topology.NodeID, role ParentRole) bool {
		for _, p := range s.pending {
			if p.to == to && p.role == role {
				return true
			}
		}
		return false
	}
	best, second := s.router.Parents()
	if best != 0 && !s.bestConfirmed && !has(best, RoleBestParent) {
		s.pending = append(s.pending, pendingCallback{to: best, role: RoleBestParent})
	}
	if second != 0 && !s.secondConfirmed && !s.cfg.DisableBackup && !has(second, RoleSecondParent) {
		s.pending = append(s.pending, pendingCallback{to: second, role: RoleSecondParent})
	}
}
