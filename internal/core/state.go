package core

import (
	"fmt"
	"sort"

	"github.com/digs-net/digs/internal/link"
	"github.com/digs-net/digs/internal/topology"
	"github.com/digs-net/digs/internal/trickle"
)

// NeighborState is one neighbour-table entry as plain old data.
type NeighborState struct {
	Node      topology.NodeID
	Rank      uint16
	ETXw      float64
	LastHeard int64
}

// ChildState is one child-table entry as plain old data.
type ChildState struct {
	Node      topology.NodeID
	Role      uint8
	LastHeard int64
}

// RouterState is the complete mutable routing state of one DiGS node.
type RouterState struct {
	Rank          uint16
	ETXw          float64
	Best          topology.NodeID
	Second        topology.NodeID
	ETXaBest      float64
	ETXaSecond    float64
	Neighbors     []NeighborState // sorted by node ID
	Children      []ChildState    // sorted by node ID
	Links         []link.LinkState
	FirstParentAt int64
	HasParentedAt bool
	ParentChanges int64
	ChildVersion  int64
}

// PendingCallbackState is one queued joined-callback.
type PendingCallbackState struct {
	To    topology.NodeID
	Role  uint8
	Tries int
}

// StackState is the complete mutable state of one DiGS stack: router,
// Trickle timer, RNG position and the handshake/maintenance registers.
// The scheduler's slot maps are construction-derived (transmit side) or a
// cache keyed on the router's child version (receive side) and are rebuilt
// lazily after a restore.
type StackState struct {
	Router   RouterState
	Trickle  trickle.State
	RNGDraws uint64

	Pending      []PendingCallbackState
	WantJoinIn   bool
	NextMaintain int64
	NextSolicit  int64
	Synced       bool

	LastBest        topology.NodeID
	LastSecond      topology.NodeID
	BestConfirmed   bool
	SecondConfirmed bool
	FallbackParent  topology.NodeID
}

// CaptureState snapshots the router, with tables sorted for a stable wire
// form.
func (r *Router) CaptureState() RouterState {
	st := RouterState{
		Rank:          r.rank,
		ETXw:          r.etxw,
		Best:          r.best,
		Second:        r.second,
		ETXaBest:      r.etxaBest,
		ETXaSecond:    r.etxaSecond,
		Links:         r.est.CaptureState(),
		FirstParentAt: r.firstParentAt,
		HasParentedAt: r.hasParentedAt,
		ParentChanges: r.parentChanges,
		ChildVersion:  r.childVersion,
	}
	if len(r.neighbors) > 0 {
		st.Neighbors = make([]NeighborState, 0, len(r.neighbors))
		for id, e := range r.neighbors {
			st.Neighbors = append(st.Neighbors, NeighborState{Node: id, Rank: e.rank,
				ETXw: e.etxw, LastHeard: e.lastHeard})
		}
		sort.Slice(st.Neighbors, func(i, j int) bool { return st.Neighbors[i].Node < st.Neighbors[j].Node })
	}
	if len(r.children) > 0 {
		st.Children = make([]ChildState, 0, len(r.children))
		for id, c := range r.children {
			st.Children = append(st.Children, ChildState{Node: id, Role: uint8(c.role),
				LastHeard: c.lastHeard})
		}
		sort.Slice(st.Children, func(i, j int) bool { return st.Children[i].Node < st.Children[j].Node })
	}
	return st
}

// RestoreState overlays a captured routing state. The OnRouteChange
// callback installed on the freshly built router survives.
func (r *Router) RestoreState(st RouterState) {
	r.rank = st.Rank
	r.etxw = st.ETXw
	r.best = st.Best
	r.second = st.Second
	r.etxaBest = st.ETXaBest
	r.etxaSecond = st.ETXaSecond
	r.est.RestoreState(st.Links)
	r.neighbors = make(map[topology.NodeID]neighborEntry, len(st.Neighbors))
	for _, e := range st.Neighbors {
		r.neighbors[e.Node] = neighborEntry{rank: e.Rank, etxw: e.ETXw, lastHeard: e.LastHeard}
	}
	r.children = make(map[topology.NodeID]childEntry, len(st.Children))
	for _, c := range st.Children {
		r.children[c.Node] = childEntry{role: ParentRole(c.Role), lastHeard: c.LastHeard}
	}
	r.firstParentAt = st.FirstParentAt
	r.hasParentedAt = st.HasParentedAt
	r.parentChanges = st.ParentChanges
	r.childVersion = st.ChildVersion
}

// CaptureState snapshots the stack. It fails for stacks constructed with
// an external RNG (NewStack with a caller-owned rand.Rand): only
// Build-created stacks track their generator position.
func (s *Stack) CaptureState() (*StackState, error) {
	if s.rngSrc == nil {
		return nil, fmt.Errorf("digs stack %d: not built with a checkpointable RNG (use core.Build)", s.id)
	}
	st := &StackState{
		Router:          s.router.CaptureState(),
		Trickle:         s.tr.CaptureState(),
		RNGDraws:        s.rngSrc.Draws(),
		WantJoinIn:      s.wantJoinIn,
		NextMaintain:    s.nextMaintain,
		NextSolicit:     s.nextSolicit,
		Synced:          s.synced,
		LastBest:        s.lastBest,
		LastSecond:      s.lastSecond,
		BestConfirmed:   s.bestConfirmed,
		SecondConfirmed: s.secondConfirmed,
		FallbackParent:  s.fallbackParent,
	}
	if len(s.pending) > 0 {
		st.Pending = make([]PendingCallbackState, len(s.pending))
		for i, p := range s.pending {
			st.Pending[i] = PendingCallbackState{To: p.to, Role: uint8(p.role), Tries: p.tries}
		}
	}
	return st, nil
}

// RestoreState overlays a captured stack state onto a freshly built stack
// (same node, same configuration, same build seed). The receive-side
// schedule cache is invalidated; it rebuilds lazily from the restored
// child table, exactly as it would have after the next child change.
func (s *Stack) RestoreState(st *StackState) error {
	if s.rngSrc == nil {
		return fmt.Errorf("digs stack %d: not built with a checkpointable RNG (use core.Build)", s.id)
	}
	s.router.RestoreState(st.Router)
	s.tr.RestoreState(st.Trickle)
	s.rngSrc.Reset(st.RNGDraws)
	s.pending = nil
	if len(st.Pending) > 0 {
		s.pending = make([]pendingCallback, len(st.Pending))
		for i, p := range st.Pending {
			s.pending[i] = pendingCallback{to: p.To, role: ParentRole(p.Role), tries: p.Tries}
		}
	}
	s.wantJoinIn = st.WantJoinIn
	s.nextMaintain = st.NextMaintain
	s.nextSolicit = st.NextSolicit
	s.synced = st.Synced
	s.lastBest = st.LastBest
	s.lastSecond = st.LastSecond
	s.bestConfirmed = st.BestConfirmed
	s.secondConfirmed = st.SecondConfirmed
	s.fallbackParent = st.FallbackParent
	s.sched.cacheValid = false
	return nil
}

// CaptureState snapshots every stack and MAC node of the network, indexed
// by node ID (entry 0 nil).
func (n *Network) CaptureState() ([]*StackState, error) {
	out := make([]*StackState, len(n.Stacks))
	for i, s := range n.Stacks {
		if s == nil {
			continue
		}
		st, err := s.CaptureState()
		if err != nil {
			return nil, err
		}
		out[i] = st
	}
	return out, nil
}

// RestoreState overlays captured stack states onto a freshly built
// network.
func (n *Network) RestoreState(states []*StackState) error {
	if len(states) != len(n.Stacks) {
		return fmt.Errorf("digs restore: %d stack states for %d stacks", len(states), len(n.Stacks))
	}
	for i, s := range n.Stacks {
		if s == nil {
			continue
		}
		if states[i] == nil {
			return fmt.Errorf("digs restore: missing state for node %d", i)
		}
		if err := s.RestoreState(states[i]); err != nil {
			return err
		}
	}
	return nil
}
