package core

import (
	"github.com/digs-net/digs/internal/invariant"
	"github.com/digs-net/digs/internal/sim"
	"github.com/digs-net/digs/internal/topology"
)

// Prober returns the invariant-monitor probe for this stack: a snapshot
// of every node's MAC and routing state, in ascending node-ID order,
// consuming no randomness.
func (n *Network) Prober(nw *sim.Network) invariant.Prober {
	return func(states []invariant.NodeState) []invariant.NodeState {
		for i, node := range n.Nodes {
			if node == nil {
				continue
			}
			r := n.Stacks[i].Router()
			best, second := r.Parents()
			synced, _ := node.Synced()
			states = append(states, invariant.NodeState{
				ID:        topology.NodeID(i),
				IsAP:      node.IsAP(),
				Alive:     !nw.Failed(topology.NodeID(i)),
				Synced:    synced,
				Parent:    best,
				Backup:    second,
				Queue:     node.QueueLen(),
				LastRx:    node.LastRx(),
				Neighbors: r.Neighbors(),
			})
		}
		return states
	}
}

// Healer returns the watchdog hook: a degraded-mode recovery that
// cold-restarts the node, discarding schedule and routing state through
// the stack's Resetter so it resyncs and rejoins from scratch (sink and
// tracer callbacks survive the reboot).
func (n *Network) Healer() func(id topology.NodeID, asn sim.ASN) {
	return func(id topology.NodeID, asn sim.ASN) {
		if int(id) < len(n.Nodes) && n.Nodes[id] != nil {
			n.Nodes[id].Reboot(asn, true)
		}
	}
}
