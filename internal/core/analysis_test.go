package core

import (
	"math"
	"testing"
)

func TestContentionProbabilityEquationFive(t *testing.T) {
	// L >= N branch: p = 1 - e^{-T*L/N}.
	got := ContentionProbability(0.5, 10, 20)
	want := 1 - math.Exp(-0.5*20.0/10.0)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("L>=N branch = %v, want %v", got, want)
	}
	// L < N branch: p = 1 - e^{-T}.
	got = ContentionProbability(0.5, 100, 20)
	want = 1 - math.Exp(-0.5)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("L<N branch = %v, want %v", got, want)
	}
	// Degenerate inputs.
	if ContentionProbability(0, 10, 20) != 0 {
		t.Fatal("zero load must give zero contention")
	}
	if ContentionProbability(0.5, 0, 20) != 0 {
		t.Fatal("zero nodes must give zero contention")
	}
}

func TestContentionProbabilityMonotoneInLoad(t *testing.T) {
	prev := -1.0
	for load := 0.1; load < 5; load += 0.1 {
		p := ContentionProbability(load, 50, 47)
		if p <= prev {
			t.Fatalf("contention not increasing at load %.1f", load)
		}
		if p < 0 || p > 1 {
			t.Fatalf("contention %.3f outside [0,1]", p)
		}
		prev = p
	}
}

func TestSkipProbabilityEquationSix(t *testing.T) {
	// No higher-priority slotframes: never skipped.
	if got := SkipProbability(nil); got != 0 {
		t.Fatalf("skip with no competitors = %v, want 0", got)
	}
	// One competitor with 2 active slots out of 10: p = 0.2.
	got := SkipProbability([]SlotframeLoad{{ActiveSlots: 2, Length: 10}})
	if math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("single competitor = %v, want 0.2", got)
	}
	// Two competitors compose: 1 - (1-0.2)(1-0.1) = 0.28.
	got = SkipProbability([]SlotframeLoad{
		{ActiveSlots: 2, Length: 10},
		{ActiveSlots: 1, Length: 10},
	})
	if math.Abs(got-0.28) > 1e-12 {
		t.Fatalf("two competitors = %v, want 0.28", got)
	}
	// Saturated competitor clamps at 1.
	got = SkipProbability([]SlotframeLoad{{ActiveSlots: 20, Length: 10}})
	if got != 1 {
		t.Fatalf("saturated competitor = %v, want 1", got)
	}
}

func TestExpectedAppSkipIsSmallForPaperConfig(t *testing.T) {
	// The paper argues the skip probability is very low in practice for
	// the 557/47/151 configuration; with 2 sync slots and 1 shared slot
	// it is 2/557 + 1/47 - overlap ~ 2.5%.
	p := ExpectedAppSkip(DefaultConfig(2))
	if p <= 0 || p > 0.05 {
		t.Fatalf("expected app skip = %.4f, want small but positive (<5%%)", p)
	}
}
