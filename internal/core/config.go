package core

import (
	"fmt"
	"time"

	"github.com/digs-net/digs/internal/sim"
	"github.com/digs-net/digs/internal/trickle"
)

// Config holds the DiGS stack parameters. The defaults reproduce the
// paper's evaluation setup (Section VII): slotframe lengths 557 / 47 / 151
// and the WirelessHART rule of three transmission attempts per packet, the
// first two over the primary route and the last over the backup route.
type Config struct {
	// NumAPs is the number of access points (they hold the lowest IDs).
	NumAPs int

	// SyncFrameLen, RoutingFrameLen and AppFrameLen are the three
	// slotframe periods in slots. They should be pairwise coprime so no
	// traffic class is starved by schedule combination.
	SyncFrameLen    int64
	RoutingFrameLen int64
	AppFrameLen     int64

	// Attempts is A: transmission attempts scheduled per packet per app
	// slotframe. Attempts 1..A-1 use the best parent, attempt A the
	// second-best.
	Attempts int

	// Trickle controls join-in beaconing, in slot units. A firing latches
	// a join-in that goes out in the next shared slot the node wins.
	Trickle trickle.Config

	// NeighborTimeout and ChildTimeout expire stale routing state.
	NeighborTimeout time.Duration
	ChildTimeout    time.Duration

	// MaintainEvery is how often expiry and reselection run.
	MaintainEvery time.Duration

	// RankGranularity is the MinHopRankIncrease analogue: the per-hop rank
	// step is the link ETX scaled by this factor. 1 reproduces the paper's
	// +1-per-hop exposition; the default 4 gives the finer strata RPL
	// implementations use, which widens backup-parent eligibility.
	RankGranularity int

	// DisableBackup turns off the backup route (ablation: all attempts go
	// to the best parent, isolating the value of graph routing's route
	// diversity).
	DisableBackup bool

	// PlainETX advertises the primary path's accumulated ETX instead of
	// the Eq. (1) weighted blend (ablation for the weighted cost).
	PlainETX bool
}

// DefaultConfig returns the paper's evaluation configuration.
func DefaultConfig(numAPs int) Config {
	return Config{
		NumAPs:          numAPs,
		SyncFrameLen:    557,
		RoutingFrameLen: 47,
		AppFrameLen:     151,
		Attempts:        3,
		// Imin 1 s, Imax ~2 min.
		Trickle:         trickle.Config{IminSlots: 100, Doublings: 7, K: 6},
		NeighborTimeout: 5 * time.Minute,
		ChildTimeout:    5 * time.Minute,
		MaintainEvery:   5 * time.Second,
		RankGranularity: 4,
	}
}

// paperEnvelopeNodes is the largest deployment the paper's fixed
// slotframe lengths are dimensioned for (the Section VII-D large-scale
// study). Up to here ScaledConfig returns DefaultConfig unchanged, so
// every paper-reproduction testbed keeps its exact published schedule.
const paperEnvelopeNodes = 150

// ScaledConfig returns a configuration dimensioned for a deployment of
// the given total size. The paper's evaluation parameters assume
// A*(N-N_AP) < L_app and N < L_sync; beyond a few hundred nodes both
// wrap many times over and the network degrades in three distinct ways,
// each countered by one scaling rule:
//
//   - EB collisions: with N > L_sync several nodes share each sync slot
//     and beacons collide persistently, so nodes cannot join. L_sync
//     grows to the smallest prime >= N+5, capped at 2003 — beyond the
//     cap, co-slot nodes are thousands of IDs apart, which the
//     generators' spatial ID assignment turns into physical distance
//     (spatial reuse).
//   - App-slot contention: Eq. (4) slots wrap mod L_app and co-slot
//     transmitters collide, while receivers' child-slot maps overwrite
//     each other. L_app grows to the smallest prime >= A*(N-N_AP)/appLanes,
//     so the channel lanes keep co-slot transmitters mostly separable.
//     Larger L_app trades per-hop latency (one app frame per hop) for
//     less contention.
//   - Routing-state expiry: neighbour freshness is only refreshed by
//     join-ins on the single shared routing slot, whose contention grows
//     with density; with Trickle at Imax (~2 min) a 5-minute timeout
//     expires live parents and the converged network churns. The
//     timeouts widen to 30 minutes (~15x Imax).
//
// The three slotframe lengths stay pairwise coprime (all prime, and
// distinct from RoutingFrameLen 47).
func ScaledConfig(numAPs, nodes int) Config {
	cfg := DefaultConfig(numAPs)
	if nodes <= paperEnvelopeNodes {
		return cfg
	}
	sync := nextPrime(int64(nodes) + 5)
	if sync > 2003 {
		sync = 2003
	}
	if sync > cfg.SyncFrameLen {
		cfg.SyncFrameLen = sync
	}
	app := nextPrime(int64(cfg.Attempts*(nodes-numAPs)) / appLanes)
	if app > cfg.AppFrameLen {
		cfg.AppFrameLen = app
	}
	if cfg.AppFrameLen == cfg.SyncFrameLen {
		cfg.AppFrameLen = nextPrime(cfg.AppFrameLen + 1)
	}
	cfg.NeighborTimeout = 30 * time.Minute
	cfg.ChildTimeout = 30 * time.Minute
	return cfg
}

// nextPrime returns the smallest prime >= n (and >= 2).
func nextPrime(n int64) int64 {
	if n < 2 {
		return 2
	}
	for ; ; n++ {
		prime := true
		for d := int64(2); d*d <= n; d++ {
			if n%d == 0 {
				prime = false
				break
			}
		}
		if prime {
			return n
		}
	}
}

// Validate checks the configuration for structural problems.
func (c Config) Validate() error {
	if c.NumAPs < 1 {
		return fmt.Errorf("digs config: NumAPs %d, want >= 1", c.NumAPs)
	}
	if c.SyncFrameLen <= 0 || c.RoutingFrameLen <= 0 || c.AppFrameLen <= 0 {
		return fmt.Errorf("digs config: slotframe lengths must be positive (%d, %d, %d)",
			c.SyncFrameLen, c.RoutingFrameLen, c.AppFrameLen)
	}
	if c.Attempts < 1 {
		return fmt.Errorf("digs config: Attempts %d, want >= 1", c.Attempts)
	}
	if gcd(c.SyncFrameLen, c.RoutingFrameLen) != 1 ||
		gcd(c.SyncFrameLen, c.AppFrameLen) != 1 ||
		gcd(c.RoutingFrameLen, c.AppFrameLen) != 1 {
		return fmt.Errorf("digs config: slotframe lengths %d, %d, %d must be pairwise coprime",
			c.SyncFrameLen, c.RoutingFrameLen, c.AppFrameLen)
	}
	return nil
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func (c Config) neighborTimeoutSlots() sim.ASN { return sim.SlotsFor(c.NeighborTimeout) }
func (c Config) childTimeoutSlots() sim.ASN    { return sim.SlotsFor(c.ChildTimeout) }
func (c Config) maintainSlots() sim.ASN        { return sim.SlotsFor(c.MaintainEvery) }
