package core

import (
	"fmt"

	"github.com/digs-net/digs/internal/sim"
	"github.com/digs-net/digs/internal/topology"
)

// Gateway is the wired side of the WSAN: it owns the access points,
// learns downlink routes from the paths uplink data frames record, and
// source-routes actuation commands back into the mesh (the paper's
// footnote 2: the downlink graph follows the same method as the uplink
// graph; WirelessHART gateways source-route downstream).
type Gateway struct {
	net *Network

	// routes caches, per field device, the most recently observed uplink
	// path (AP-side first) and the AP that received it.
	routes map[topology.NodeID]downRoute

	// Delivered is invoked for every data frame arriving at any AP (after
	// route learning). Optional.
	Delivered func(asn sim.ASN, f *sim.Frame)
}

type downRoute struct {
	ap   topology.NodeID
	path []topology.NodeID // AP-adjacent hop first, destination last
}

// NewGateway wires the gateway onto the network's access points. It takes
// over the AP sink callbacks; use Delivered for application-level
// notifications.
func NewGateway(net *Network) *Gateway {
	g := &Gateway{
		net:    net,
		routes: make(map[topology.NodeID]downRoute),
	}
	for _, node := range net.Nodes[1:] {
		if node == nil || !node.IsAP() {
			continue
		}
		ap := node.ID()
		node.Sink = func(asn sim.ASN, f *sim.Frame) { g.observe(ap, asn, f) }
	}
	return g
}

// observe learns the downlink route from an uplink frame's recorded path.
func (g *Gateway) observe(ap topology.NodeID, asn sim.ASN, f *sim.Frame) {
	// The frame's Route holds the hops it traversed origin-side first; the
	// final transmitter is f.Src. Reversed, that is the source route from
	// the AP back to the origin.
	path := make([]topology.NodeID, 0, len(f.Route)+1)
	path = append(path, f.Src)
	for i := len(f.Route) - 1; i >= 0; i-- {
		path = append(path, f.Route[i])
	}
	// Defensive: the destination must terminate the route.
	if path[len(path)-1] != f.Origin {
		path = append(path, f.Origin)
	}
	g.routes[f.Origin] = downRoute{ap: ap, path: path}
	if g.Delivered != nil {
		g.Delivered(asn, f)
	}
}

// RouteTo returns the cached source route to a device (AP-adjacent hop
// first, destination last) and the AP holding it.
func (g *Gateway) RouteTo(dst topology.NodeID) (ap topology.NodeID, path []topology.NodeID, ok bool) {
	r, ok := g.routes[dst]
	if !ok {
		return 0, nil, false
	}
	return r.ap, append([]topology.NodeID(nil), r.path...), true
}

// KnownDevices returns how many field devices the gateway has routes for.
func (g *Gateway) KnownDevices() int { return len(g.routes) }

// SendCommand source-routes an actuation command to the device, using the
// most recent uplink path. It fails if no route has been learned yet or
// downlink is disabled at the MAC.
func (g *Gateway) SendCommand(dst topology.NodeID, payload []byte) error {
	r, ok := g.routes[dst]
	if !ok {
		return fmt.Errorf("gateway: no route to device %d yet (no uplink traffic seen)", dst)
	}
	return g.net.Nodes[r.ap].SendCommand(r.path, payload)
}

// BroadcastBulletin disseminates a network-wide bulletin from the first
// access point over the broadcast graph (requires
// mac.Config.BroadcastFrameLen > 0).
func (g *Gateway) BroadcastBulletin(payload []byte) error {
	for _, node := range g.net.Nodes[1:] {
		if node != nil && node.IsAP() {
			return node.Broadcast(payload)
		}
	}
	return fmt.Errorf("gateway: no access point attached")
}

// OnCommand installs a command handler on a field device (the actuator
// callback).
func (n *Network) OnCommand(id topology.NodeID, fn func(asn sim.ASN, f *sim.Frame)) error {
	if int(id) >= len(n.Nodes) || n.Nodes[id] == nil {
		return fmt.Errorf("digs network: no node %d", id)
	}
	n.Nodes[id].CommandSink = fn
	return nil
}
