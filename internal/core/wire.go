// Package core implements the paper's contribution: DiGS distributed
// graph routing (Section V, Algorithm 1) and the autonomous transmission
// scheduling that derives each node's TSCH schedule purely from local state
// (Section VI). The Stack type plugs both into the shared TSCH MAC.
package core

import (
	"encoding/binary"
	"fmt"
	"math"
)

// RankInfinity marks a node that has not joined the routing graph.
const RankInfinity = math.MaxUint16

// JoinIn is the payload of a join-in message: the sender's rank and
// weighted ETX, which receivers use to compute accumulated ETX values
// (Algorithm 1).
type JoinIn struct {
	Rank uint16
	ETXw float64
}

const joinInSize = 2 + 4

// Marshal encodes the join-in payload.
func (j JoinIn) Marshal() []byte {
	buf := make([]byte, joinInSize)
	binary.BigEndian.PutUint16(buf[0:2], j.Rank)
	binary.BigEndian.PutUint32(buf[2:6], math.Float32bits(float32(j.ETXw)))
	return buf
}

// UnmarshalJoinIn decodes a join-in payload.
func UnmarshalJoinIn(b []byte) (JoinIn, error) {
	if len(b) != joinInSize {
		return JoinIn{}, fmt.Errorf("join-in payload: %d bytes, want %d", len(b), joinInSize)
	}
	etxw := float64(math.Float32frombits(binary.BigEndian.Uint32(b[2:6])))
	if math.IsNaN(etxw) || etxw < 0 {
		return JoinIn{}, fmt.Errorf("join-in payload: invalid ETXw %v", etxw)
	}
	return JoinIn{
		Rank: binary.BigEndian.Uint16(b[0:2]),
		ETXw: etxw,
	}, nil
}

// ParentRole says which routing role the callback sender assigned to the
// callback's receiver.
type ParentRole uint8

// Parent roles.
const (
	// RoleBestParent marks the receiver as the sender's primary parent.
	RoleBestParent ParentRole = iota + 1
	// RoleSecondParent marks the receiver as the sender's backup parent.
	RoleSecondParent
)

// JoinedCallback is the payload of a joined-callback message, informing a
// selected parent of its role so it can schedule receive slots for the
// child.
type JoinedCallback struct {
	Role ParentRole
}

const joinedCallbackSize = 1

// Marshal encodes the joined-callback payload.
func (c JoinedCallback) Marshal() []byte {
	return []byte{byte(c.Role)}
}

// UnmarshalJoinedCallback decodes a joined-callback payload.
func UnmarshalJoinedCallback(b []byte) (JoinedCallback, error) {
	if len(b) != joinedCallbackSize {
		return JoinedCallback{}, fmt.Errorf("joined-callback payload: %d bytes, want %d",
			len(b), joinedCallbackSize)
	}
	role := ParentRole(b[0])
	if role != RoleBestParent && role != RoleSecondParent {
		return JoinedCallback{}, fmt.Errorf("joined-callback payload: unknown role %d", role)
	}
	return JoinedCallback{Role: role}, nil
}
