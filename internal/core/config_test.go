package core

import (
	"reflect"
	"testing"
)

// Within the paper envelope, ScaledConfig must not disturb the published
// evaluation configuration at all — the reproduction figures depend on it.
func TestScaledConfigPaperEnvelopeUnchanged(t *testing.T) {
	for _, n := range []int{2, 50, 100, paperEnvelopeNodes} {
		if got, want := ScaledConfig(2, n), DefaultConfig(2); !reflect.DeepEqual(got, want) {
			t.Fatalf("ScaledConfig(2, %d) = %+v, want DefaultConfig %+v", n, got, want)
		}
	}
}

// Beyond the envelope every produced configuration must still validate
// (pairwise-coprime slotframes) and follow the dimensioning rules.
func TestScaledConfigDimensioning(t *testing.T) {
	for _, tc := range []struct {
		nodes    int
		wantSync int64
	}{
		{302, 557},    // sync floor: never below the paper's 557
		{1002, 1009},  // smallest prime >= N+5
		{1998, 2003},  // at the cap
		{10004, 2003}, // capped: spatial reuse carries the wrap
		{100004, 2003},
	} {
		cfg := ScaledConfig(2, tc.nodes)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("ScaledConfig(2, %d): %v", tc.nodes, err)
		}
		if cfg.SyncFrameLen != tc.wantSync {
			t.Errorf("ScaledConfig(2, %d).SyncFrameLen = %d, want %d",
				tc.nodes, cfg.SyncFrameLen, tc.wantSync)
		}
		if cfg.AppFrameLen < DefaultConfig(2).AppFrameLen {
			t.Errorf("ScaledConfig(2, %d).AppFrameLen = %d below default",
				tc.nodes, cfg.AppFrameLen)
		}
		if cfg.NeighborTimeout <= DefaultConfig(2).NeighborTimeout {
			t.Errorf("ScaledConfig(2, %d) kept the paper NeighborTimeout", tc.nodes)
		}
	}
}

// The sync==app collision bump must keep the triple coprime: around 8k
// nodes the app rule lands exactly on the 2003 sync cap.
func TestScaledConfigSyncAppCollision(t *testing.T) {
	for n := 7900; n <= 8100; n++ {
		cfg := ScaledConfig(2, n)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("ScaledConfig(2, %d): %v", n, err)
		}
		if cfg.AppFrameLen == cfg.SyncFrameLen {
			t.Fatalf("ScaledConfig(2, %d): sync and app frames both %d", n, cfg.AppFrameLen)
		}
	}
}

func TestNextPrime(t *testing.T) {
	for _, tc := range []struct{ in, want int64 }{
		{-3, 2}, {0, 2}, {2, 2}, {3, 3}, {4, 5}, {250, 251}, {1007, 1009}, {2499, 2503},
	} {
		if got := nextPrime(tc.in); got != tc.want {
			t.Errorf("nextPrime(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}
