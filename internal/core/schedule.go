package core

import (
	"github.com/digs-net/digs/internal/mac"
	"github.com/digs-net/digs/internal/sim"
	"github.com/digs-net/digs/internal/topology"
)

// Channel offsets per traffic class; distinct lanes keep a node's EB from
// colliding with another node's data slot that happens to share the ASN.
const (
	syncChannelOffset    = 0
	routingChannelOffset = 1
	appChannelOffset     = 2

	// appLanes spreads application cells over several channel offsets,
	// derived from the transmitting node's ID. When the network outgrows
	// the application slotframe (the paper's 150-node study: 3*150 slots
	// wrap mod 151), nodes sharing a wrapped slot then still use distinct
	// channels — the standard autonomous-TSCH practice (Orchestra, ALICE).
	appLanes = 12
)

// appLane returns the channel-offset lane of a node's application cells;
// both the sender and its parents derive it from the sender's ID alone.
func appLane(id topology.NodeID) uint8 {
	return appChannelOffset + uint8((int64(id)*13)%appLanes)
}

// Slotframe priorities: the paper gives synchronisation traffic the
// highest priority and application traffic the lowest (Section VI).
const (
	syncPriority    = 0
	routingPriority = 1
	appPriority     = 2
)

// AppTxSlot returns the application-slotframe slot offset for the given
// node's p-th transmission attempt, per the paper's Eq. (4):
//
//	s = A*(NodeID - N_AP) - A + p
//
// mapped onto 0-based slot offsets and wrapped to the slotframe length.
// Nodes whose slots exceed the slotframe length wrap around and may share
// slots; the paper's configurations avoid this (A*(N-N_AP) < L_app).
func AppTxSlot(id topology.NodeID, numAPs, attempts, p int, frameLen int64) int64 {
	s := int64(attempts)*int64(int(id)-numAPs) - int64(attempts) + int64(p)
	// s is 1-based per the paper; slot offsets are 0-based.
	return ((s-1)%frameLen + frameLen) % frameLen
}

// scheduler derives the node's combined TSCH schedule from purely local
// state: its own ID (sync and app transmit slots), its best parent (sync
// listen slot) and its children (app listen slots). No negotiation with
// neighbours ever happens, which is the paper's headline property.
type scheduler struct {
	id     topology.NodeID
	isAP   bool
	cfg    Config
	router *Router

	combiner *mac.Combiner

	// Cached app-slotframe maps, rebuilt when the child set changes.
	txSlots      map[int64]int             // slot offset -> attempt number
	rxSlots      map[int64]topology.NodeID // slot offset -> transmitting child
	cacheVersion int64
	cacheValid   bool
}

func newScheduler(id topology.NodeID, isAP bool, cfg Config, router *Router) *scheduler {
	s := &scheduler{id: id, isAP: isAP, cfg: cfg, router: router}
	s.txSlots = make(map[int64]int, cfg.Attempts)
	if !isAP {
		for p := 1; p <= cfg.Attempts; p++ {
			s.txSlots[AppTxSlot(id, cfg.NumAPs, cfg.Attempts, p, cfg.AppFrameLen)] = p
		}
	}
	s.combiner = mac.NewCombiner(
		mac.Slotframe{
			Length:        cfg.SyncFrameLen,
			Priority:      syncPriority,
			ChannelOffset: syncChannelOffset,
			Role:          s.syncRole,
		},
		mac.Slotframe{
			Length:        cfg.RoutingFrameLen,
			Priority:      routingPriority,
			ChannelOffset: routingChannelOffset,
			Role:          s.routingRole,
		},
		mac.Slotframe{
			Length:        cfg.AppFrameLen,
			Priority:      appPriority,
			ChannelOffset: appChannelOffset,
			Role:          s.appRole,
		},
	)
	return s
}

// Assignment resolves the combined schedule for a slot. Application cells
// get their channel lane from the transmitting node's ID.
func (s *scheduler) Assignment(asn sim.ASN) mac.Assignment {
	a := s.combiner.Assignment(asn)
	switch a.Role {
	case mac.RoleTxData:
		a.ChannelOffset = appLane(s.id)
	case mac.RoleRxData:
		if child, ok := s.rxSlots[asn%s.cfg.AppFrameLen]; ok {
			a.ChannelOffset = appLane(child)
		}
	}
	return a
}

// syncRole: node i broadcasts its EB in slot i-1 of the sync slotframe and
// listens in its best parent's slot (Section VI "Assigning Slots for
// Synchronization").
func (s *scheduler) syncRole(offset int64, _ sim.ASN) (mac.SlotRole, int) {
	if offset == int64(s.id-1)%s.cfg.SyncFrameLen {
		return mac.RoleTxEB, 0
	}
	if best, _ := s.router.Parents(); best != 0 &&
		offset == int64(best-1)%s.cfg.SyncFrameLen {
		return mac.RoleRxEB, 0
	}
	return mac.RoleSleep, 0
}

// routingRole: one fixed shared slot per routing slotframe for everyone
// (Section VI "Assigning Slots for Routing").
func (s *scheduler) routingRole(offset int64, _ sim.ASN) (mac.SlotRole, int) {
	if offset == 0 {
		return mac.RoleShared, 0
	}
	return mac.RoleSleep, 0
}

// appRole: transmit in this node's Eq. (4) slots, listen in the Eq. (4)
// slots of every child (attempts 1..A-1 when we are its best parent, the
// final attempt when we are its backup).
func (s *scheduler) appRole(offset int64, _ sim.ASN) (mac.SlotRole, int) {
	if p, ok := s.txSlots[offset]; ok {
		return mac.RoleTxData, p
	}
	s.refreshRxCache()
	if _, ok := s.rxSlots[offset]; ok {
		return mac.RoleRxData, 0
	}
	return mac.RoleSleep, 0
}

// nextOffset returns the first ASN >= after that lands on the given slot
// offset of a slotframe of length frameLen.
func nextOffset(after sim.ASN, frameLen, offset int64) sim.ASN {
	return after + ((offset-after%frameLen)%frameLen+frameLen)%frameLen
}

// NextActive returns the earliest slot at or after `after` in which this
// node's combined schedule assigns any non-sleep role: its own EB slot,
// its best parent's EB slot, the shared routing slot, and its Eq. (4)
// transmit and listen cells. The result is the union over slotframes —
// conservative with respect to the combiner, which only ever picks among
// these same cells. Minimising over map keys is iteration-order safe.
func (s *scheduler) NextActive(after sim.ASN) sim.ASN {
	w := nextOffset(after, s.cfg.SyncFrameLen, int64(s.id-1)%s.cfg.SyncFrameLen)
	if best, _ := s.router.Parents(); best != 0 {
		if v := nextOffset(after, s.cfg.SyncFrameLen, int64(best-1)%s.cfg.SyncFrameLen); v < w {
			w = v
		}
	}
	if v := nextOffset(after, s.cfg.RoutingFrameLen, 0); v < w {
		w = v
	}
	for off := range s.txSlots {
		if v := nextOffset(after, s.cfg.AppFrameLen, off); v < w {
			w = v
		}
	}
	s.refreshRxCache()
	for off := range s.rxSlots {
		if v := nextOffset(after, s.cfg.AppFrameLen, off); v < w {
			w = v
		}
	}
	return w
}

func (s *scheduler) refreshRxCache() {
	v := s.router.ChildVersion()
	if s.cacheValid && v == s.cacheVersion {
		return
	}
	s.rxSlots = make(map[int64]topology.NodeID)
	// When two children's Eq. (4) cells collide on the same offset, the
	// lowest child ID wins — a deterministic rule, so the choice cannot
	// depend on the children map's iteration order.
	claim := func(slot int64, child topology.NodeID) {
		if cur, ok := s.rxSlots[slot]; !ok || child < cur {
			s.rxSlots[slot] = child
		}
	}
	for child, role := range s.router.Children() {
		switch role {
		case RoleBestParent:
			for p := 1; p < s.cfg.Attempts; p++ {
				claim(AppTxSlot(child, s.cfg.NumAPs, s.cfg.Attempts, p, s.cfg.AppFrameLen), child)
			}
			if s.cfg.Attempts == 1 {
				claim(AppTxSlot(child, s.cfg.NumAPs, s.cfg.Attempts, 1, s.cfg.AppFrameLen), child)
			}
		case RoleSecondParent:
			claim(AppTxSlot(child, s.cfg.NumAPs, s.cfg.Attempts, s.cfg.Attempts, s.cfg.AppFrameLen), child)
		}
	}
	s.cacheVersion = v
	s.cacheValid = true
}
