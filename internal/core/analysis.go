package core

import "math"

// This file implements the performance-analysis formulas of Section VI-B.

// ContentionProbability is Eq. (5): the probability that the shared
// routing slot suffers contention, for average Poisson traffic load T on
// the slot, N fully-connected nodes and slotframe length L.
func ContentionProbability(trafficLoad float64, numNodes int, frameLen int64) float64 {
	if trafficLoad <= 0 || numNodes <= 0 || frameLen <= 0 {
		return 0
	}
	if frameLen >= int64(numNodes) {
		return 1 - math.Exp(-trafficLoad*float64(frameLen)/float64(numNodes))
	}
	return 1 - math.Exp(-trafficLoad)
}

// SlotframeLoad describes one higher-priority slotframe for Eq. (6): how
// many of its slots are active per period.
type SlotframeLoad struct {
	ActiveSlots int
	Length      int64
}

// conflictProbability is p(conf_{A,B}): the chance a given slot of A
// coincides with an active slot of B, for coprime slotframe lengths.
func (l SlotframeLoad) conflictProbability() float64 {
	if l.Length <= 0 {
		return 0
	}
	p := float64(l.ActiveSlots) / float64(l.Length)
	if p > 1 {
		return 1
	}
	return p
}

// SkipProbability is Eq. (6): the probability that a slot of slotframe A
// is skipped during combination because some higher-priority slotframe
// claims it.
func SkipProbability(higherPriority []SlotframeLoad) float64 {
	keep := 1.0
	for _, b := range higherPriority {
		keep *= 1 - b.conflictProbability()
	}
	return 1 - keep
}

// ExpectedAppSkip computes the Eq. (6) skip probability for an application
// slot under the default DiGS configuration: it competes with the node's
// sync slots (one TX + one RX per sync slotframe) and the shared routing
// slot (one per routing slotframe).
func ExpectedAppSkip(cfg Config) float64 {
	return SkipProbability([]SlotframeLoad{
		{ActiveSlots: 2, Length: cfg.SyncFrameLen},
		{ActiveSlots: 1, Length: cfg.RoutingFrameLen},
	})
}
