package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestJoinInRoundTrip(t *testing.T) {
	f := func(rank uint16, etxw float32) bool {
		if etxw < 0 || math.IsNaN(float64(etxw)) || math.IsInf(float64(etxw), 0) {
			etxw = 2.5
		}
		in := JoinIn{Rank: rank, ETXw: float64(etxw)}
		out, err := UnmarshalJoinIn(in.Marshal())
		if err != nil {
			return false
		}
		return out.Rank == in.Rank && math.Abs(out.ETXw-in.ETXw) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestJoinInRejectsBadPayload(t *testing.T) {
	if _, err := UnmarshalJoinIn([]byte{1, 2, 3}); err == nil {
		t.Fatal("accepted short payload")
	}
	if _, err := UnmarshalJoinIn(nil); err == nil {
		t.Fatal("accepted nil payload")
	}
	// NaN ETXw must be rejected.
	bad := JoinIn{Rank: 1, ETXw: 1}.Marshal()
	bad[2], bad[3], bad[4], bad[5] = 0x7f, 0xc0, 0x00, 0x00 // float32 NaN
	if _, err := UnmarshalJoinIn(bad); err == nil {
		t.Fatal("accepted NaN ETXw")
	}
}

func TestJoinedCallbackRoundTrip(t *testing.T) {
	for _, role := range []ParentRole{RoleBestParent, RoleSecondParent} {
		out, err := UnmarshalJoinedCallback(JoinedCallback{Role: role}.Marshal())
		if err != nil {
			t.Fatal(err)
		}
		if out.Role != role {
			t.Fatalf("round trip role %d -> %d", role, out.Role)
		}
	}
}

func TestJoinedCallbackRejectsBadPayload(t *testing.T) {
	if _, err := UnmarshalJoinedCallback([]byte{}); err == nil {
		t.Fatal("accepted empty payload")
	}
	if _, err := UnmarshalJoinedCallback([]byte{99}); err == nil {
		t.Fatal("accepted unknown role")
	}
	if _, err := UnmarshalJoinedCallback([]byte{1, 2}); err == nil {
		t.Fatal("accepted oversized payload")
	}
}
