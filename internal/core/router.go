package core

import (
	"math"

	"github.com/digs-net/digs/internal/link"
	"github.com/digs-net/digs/internal/phy"
	"github.com/digs-net/digs/internal/sim"
	"github.com/digs-net/digs/internal/topology"
)

// parentSwitchMargin is the accumulated-ETX improvement a challenger needs
// to displace the incumbent best parent (route-flap damping).
const parentSwitchMargin = 1.25

// neighborEntry caches the last advertisement heard from a neighbour.
type neighborEntry struct {
	rank      uint16
	etxw      float64
	lastHeard sim.ASN
}

// childEntry tracks a downstream node that selected us as a parent.
type childEntry struct {
	role      ParentRole
	lastHeard sim.ASN
}

// Router holds one node's DiGS graph-routing state and implements
// Algorithm 1: parents are re-evaluated from the neighbour table whenever
// an advertisement arrives or a transmission outcome moves a link's ETX.
type Router struct {
	id   topology.NodeID
	isAP bool

	rank uint16
	etxw float64

	best       topology.NodeID // 0 when none
	second     topology.NodeID // 0 when none
	etxaBest   float64
	etxaSecond float64

	est       *link.Estimator
	neighbors map[topology.NodeID]neighborEntry
	children  map[topology.NodeID]childEntry

	neighborTimeout sim.ASN
	childTimeout    sim.ASN

	// rankScale is the RPL MinHopRankIncrease analogue: the rank step per
	// hop is max(1, round(linkETX * rankScale)). The paper's exposition
	// uses +1 per hop (scale such that a perfect link adds 1); the RPL
	// implementations DiGS builds on scale rank by link cost, which gives
	// the fine-grained strata that make backup parents widely available.
	rankScale int

	// plainETX advertises the primary accumulated ETX instead of the
	// Eq. (1) weighted blend (ablation knob).
	plainETX bool

	// firstParentAt records when the node first selected a best parent
	// (the paper's Figure 13 joining-time metric).
	firstParentAt sim.ASN
	hasParentedAt bool

	// parentChanges counts best/second reselections (control-plane churn).
	parentChanges int64

	childVersion int64

	// OnRouteChange, when set, is invoked on every best/second parent
	// reselection (including losing all parents, reported as zeros). The
	// telemetry subsystem uses it to attribute loss windows to route churn.
	OnRouteChange func(asn sim.ASN, best, second topology.NodeID)
}

// NewRouter creates the routing state for one node. Access points are
// graph roots: rank 1, ETXw 0 (Algorithm 1 initialisation). rankScale is
// the MinHopRankIncrease analogue: 1 reproduces the paper's +1-per-hop
// example ranks, larger values give finer strata.
func NewRouter(id topology.NodeID, isAP bool, neighborTimeout, childTimeout sim.ASN, rankScale int) *Router {
	if rankScale < 1 {
		rankScale = 1
	}
	r := &Router{
		id:              id,
		isAP:            isAP,
		rank:            RankInfinity,
		etxw:            math.Inf(1),
		est:             link.NewEstimator(),
		neighbors:       make(map[topology.NodeID]neighborEntry),
		children:        make(map[topology.NodeID]childEntry),
		neighborTimeout: neighborTimeout,
		childTimeout:    childTimeout,
		rankScale:       rankScale,
	}
	if isAP {
		r.rank = 1
		r.etxw = 0
	}
	return r
}

// rankIncrease is the rank step for a hop over a link with the given ETX.
func (r *Router) rankIncrease(linkETX float64) uint16 {
	inc := int(linkETX*float64(r.rankScale) + 0.5)
	if inc < 1 {
		inc = 1
	}
	if r.rankScale > 1 && inc < r.rankScale {
		inc = r.rankScale
	}
	return uint16(inc)
}

// Rank returns the node's current rank (RankInfinity before joining).
func (r *Router) Rank() uint16 { return r.rank }

// ETXw returns the node's weighted ETX (Eq. 1).
func (r *Router) ETXw() float64 { return r.etxw }

// Parents returns the best and second-best parents (0 when unset).
func (r *Router) Parents() (best, second topology.NodeID) { return r.best, r.second }

// Joined reports whether the node has a best parent (or is an AP).
func (r *Router) Joined() bool { return r.isAP || r.best != 0 }

// Neighbors returns the current neighbor-table size.
func (r *Router) Neighbors() int { return len(r.neighbors) }

// FirstParentAt returns when the node first acquired a best parent.
func (r *Router) FirstParentAt() (sim.ASN, bool) { return r.firstParentAt, r.hasParentedAt }

// ParentChanges returns the number of best/second parent reselections.
func (r *Router) ParentChanges() int64 { return r.parentChanges }

// Children returns the IDs of current children and the role this node
// plays for each.
func (r *Router) Children() map[topology.NodeID]ParentRole {
	out := make(map[topology.NodeID]ParentRole, len(r.children))
	for id, c := range r.children {
		out[id] = c.role
	}
	return out
}

// Advertisement returns the join-in payload this node currently
// advertises, and whether it should advertise at all (only joined nodes
// broadcast join-in messages).
func (r *Router) Advertisement() (JoinIn, bool) {
	if !r.Joined() {
		return JoinIn{}, false
	}
	etxw := r.etxw
	if math.IsInf(etxw, 1) {
		return JoinIn{}, false
	}
	return JoinIn{Rank: r.rank, ETXw: etxw}, true
}

// OnJoinIn folds a received join-in into the neighbour table and
// re-evaluates parents. It returns true when the best or second-best
// parent changed (the caller resets Trickle and emits joined-callbacks).
func (r *Router) OnJoinIn(asn sim.ASN, from topology.NodeID, j JoinIn, rssiDBm float64) bool {
	r.est.Observe(from, rssiDBm)
	r.neighbors[from] = neighborEntry{rank: j.Rank, etxw: j.ETXw, lastHeard: asn}
	if r.isAP {
		return false
	}
	return r.reselect(asn)
}

// OnChildCallback records a joined-callback from a child.
func (r *Router) OnChildCallback(asn sim.ASN, from topology.NodeID, cb JoinedCallback) {
	if old, ok := r.children[from]; !ok || old.role != cb.Role {
		r.childVersion++
	}
	r.children[from] = childEntry{role: cb.Role, lastHeard: asn}
}

// ChildVersion increments whenever the child set or roles change; schedule
// caches key on it.
func (r *Router) ChildVersion() int64 { return r.childVersion }

// RefreshChild bumps a child's liveness on any traffic from it.
func (r *Router) RefreshChild(asn sim.ASN, from topology.NodeID) {
	if c, ok := r.children[from]; ok {
		c.lastHeard = asn
		r.children[from] = c
	}
}

// Observe feeds link-quality information from any received frame.
func (r *Router) Observe(from topology.NodeID, rssiDBm float64) {
	r.est.Observe(from, rssiDBm)
}

// LinkETX exposes the current link estimate towards a neighbour.
func (r *Router) LinkETX(n topology.NodeID) float64 {
	return r.est.ETX(n)
}

// OnTxResult folds a unicast outcome into the link estimator and, on
// failure, re-evaluates parents (the paper penalises ETX on transmission
// errors, which is what eventually routes around degraded links). It
// returns true when parents changed.
func (r *Router) OnTxResult(asn sim.ASN, to topology.NodeID, acked bool) bool {
	r.est.TxResult(to, acked)
	if r.isAP || acked {
		return false
	}
	return r.reselect(asn)
}

// Maintain expires stale neighbours and children; call it periodically.
// It returns true when parents changed as a result.
func (r *Router) Maintain(asn sim.ASN) bool {
	for id, n := range r.neighbors {
		if asn-n.lastHeard > r.neighborTimeout {
			delete(r.neighbors, id)
			r.est.Forget(id)
		}
	}
	for id, c := range r.children {
		if asn-c.lastHeard > r.childTimeout {
			delete(r.children, id)
			r.childVersion++
		}
	}
	if r.isAP {
		return false
	}
	return r.reselect(asn)
}

// accETX returns the accumulated ETX to the access points through a
// neighbour: link ETX plus the neighbour's advertised weighted ETX
// (Table I: ETXa(n, i) = ETX(n, i) + ETXw(i)).
func (r *Router) accETX(n topology.NodeID, e neighborEntry) float64 {
	l := r.est.ETX(n)
	if l >= phy.ETXUnreachable {
		return math.Inf(1)
	}
	return l + e.etxw
}

// reselect recomputes best and second-best parents from the neighbour
// table, following Algorithm 1's selection rules:
//
//   - the best parent minimises accumulated ETX;
//   - rank becomes the best parent's rank + 1;
//   - the second-best parent minimises accumulated ETX among remaining
//     neighbours whose rank is strictly smaller than the node's own rank
//     (the no-same-rank-links rule that keeps the graph loop-free);
//   - ETXw follows Eq. (1) with the weights of Eqs. (2) and (3).
func (r *Router) reselect(asn sim.ASN) bool {
	oldBest, oldSecond := r.best, r.second

	best := topology.NodeID(0)
	bestETXa := math.Inf(1)
	for id, e := range r.neighbors {
		if e.rank >= RankInfinity {
			continue
		}
		// The no-same-rank-links rule (Figure 6): routing links must go
		// strictly towards the access points. A detached node (rank
		// infinity) may adopt anyone.
		if r.rank < RankInfinity && e.rank >= r.rank {
			continue
		}
		// Tie-break equal costs on the lower node ID: the winner must not
		// depend on map iteration order, or identical seeds diverge.
		if a := r.accETX(id, e); a < bestETXa || (a == bestETXa && best != 0 && id < best) {
			best, bestETXa = id, a
		}
	}

	// Hysteresis: keep the incumbent best parent unless the challenger
	// improves on it decisively. Without this, single lost frames on
	// healthy links flap the primary route (and with it the children's
	// listening schedules).
	if oldBest != 0 && best != oldBest {
		if e, ok := r.neighbors[oldBest]; ok && e.rank < RankInfinity && e.rank < r.rank {
			if a := r.accETX(oldBest, e); !math.IsInf(a, 1) && bestETXa > a-parentSwitchMargin {
				best, bestETXa = oldBest, a
			}
		}
	}

	if best == 0 {
		r.best, r.second = 0, 0
		r.rank = RankInfinity
		r.etxw = math.Inf(1)
		r.etxaBest, r.etxaSecond = math.Inf(1), math.Inf(1)
		return oldBest != 0 || oldSecond != 0
	}

	rank := r.neighbors[best].rank + r.rankIncrease(r.est.ETX(best))
	if rank < r.neighbors[best].rank || rank >= RankInfinity {
		rank = RankInfinity - 1 // saturate, never wrap
	}
	second := topology.NodeID(0)
	secondETXa := math.Inf(1)
	for id, e := range r.neighbors {
		if id == best || e.rank >= RankInfinity {
			continue
		}
		if uint16(e.rank) >= rank {
			continue // loop avoidance: parents must be strictly closer
		}
		if a := r.accETX(id, e); a < secondETXa || (a == secondETXa && second != 0 && id < second) {
			second, secondETXa = id, a
		}
	}
	// Hysteresis for the backup too: every switch restarts the
	// joined-callback confirmation with the new parent, so flapping the
	// backup role costs real attempt-3 coverage.
	if oldSecond != 0 && second != oldSecond && oldSecond != best {
		if e, ok := r.neighbors[oldSecond]; ok && e.rank < RankInfinity && e.rank < rank {
			if a := r.accETX(oldSecond, e); !math.IsInf(a, 1) && secondETXa > a-parentSwitchMargin {
				second, secondETXa = oldSecond, a
			}
		}
	}

	r.best, r.second = best, second
	r.rank = rank
	r.etxaBest = bestETXa
	r.etxaSecond = secondETXa
	if r.plainETX {
		r.etxw = bestETXa
	} else {
		r.etxw = weightedETX(r.est.ETX(best), bestETXa, secondETXa)
	}

	if !r.hasParentedAt {
		r.hasParentedAt = true
		r.firstParentAt = asn
	}
	changed := best != oldBest || second != oldSecond
	if changed {
		r.parentChanges++
		if r.OnRouteChange != nil {
			r.OnRouteChange(asn, best, second)
		}
	}
	return changed
}

// weightedETX computes Eq. (1): the advertised cost blends the primary and
// backup accumulated ETX by the probability that the first two transmission
// attempts (primary route) succeed versus fail.
func weightedETX(etxBestLink, etxaBest, etxaSecond float64) float64 {
	if math.IsInf(etxaBest, 1) {
		return math.Inf(1)
	}
	if math.IsInf(etxaSecond, 1) {
		// No backup parent: the primary path carries all the weight.
		return etxaBest
	}
	fail := 1 - 1/etxBestLink
	w2 := fail * fail // Eq. (3): first two attempts fail
	w1 := 1 - w2      // Eq. (2)
	return w1*etxaBest + w2*etxaSecond
}
