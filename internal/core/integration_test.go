package core

import (
	"testing"
	"time"

	"github.com/digs-net/digs/internal/invariant"
	"github.com/digs-net/digs/internal/mac"
	"github.com/digs-net/digs/internal/sim"
	"github.com/digs-net/digs/internal/topology"
)

// TestDiGSFormsGraphOnTestbedA boots a full DiGS network on the 50-node
// testbed and checks that the routing graph converges: every node joins,
// acquires a best parent, and (almost all) acquire a backup parent; ranks
// are consistent with the loop-free rule; and end-to-end data flows reach
// the access points.
func TestDiGSFormsGraphOnTestbedA(t *testing.T) {
	topo := topology.TestbedA()
	nw := sim.NewNetwork(topo, 11)
	cfg := DefaultConfig(topo.NumAPs)
	net, err := Build(nw, cfg, mac.DefaultConfig(), 11)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: convergence within 60 simulated seconds.
	slots, done := nw.RunUntil(sim.SlotsFor(150*time.Second), func() bool {
		return net.JoinedCount() == topo.N()
	})
	if !done {
		t.Fatalf("only %d/%d nodes joined after 150 s", net.JoinedCount(), topo.N())
	}
	t.Logf("all %d nodes joined after %v", topo.N(), sim.TimeAt(slots))

	// Let the graph thicken: backup parents accumulate as further
	// join-ins arrive after the initial join wave.
	nw.Run(sim.SlotsFor(60 * time.Second))

	// Loop-freedom: following best-parent pointers from any node must
	// reach an access point without revisiting a node. (Instantaneous
	// ranks can disagree transiently — it is a distance-vector protocol —
	// but the forwarding graph must be acyclic.)
	withBackup, detached := 0, 0
	for i := topo.NumAPs + 1; i <= topo.N(); i++ {
		visited := map[topology.NodeID]bool{}
		cur := topology.NodeID(i)
		for !topo.IsAP(cur) {
			if visited[cur] {
				t.Fatalf("primary-path loop through node %d starting at %d", cur, i)
			}
			visited[cur] = true
			best, _ := net.Stacks[cur].Router().Parents()
			if best == 0 {
				// Momentarily detached (rank-rule poisoning mid-update);
				// tolerated in small numbers, the node re-attaches on the
				// next advertisement.
				detached++
				break
			}
			cur = best
		}
		if _, second := net.Stacks[i].Router().Parents(); second != 0 {
			withBackup++
		}
	}
	if detached > 2 {
		t.Fatalf("%d paths hit detached nodes; expected at most transient cases", detached)
	}
	// Some first-hop nodes legitimately reach only one AP and some deep
	// nodes have a single lower-rank neighbour; the loop-free rank rule
	// then leaves them without a backup. The bulk of the mesh must still
	// be dual-homed for graph routing to mean anything.
	fieldDevices := topo.N() - topo.NumAPs
	if withBackup < fieldDevices*6/10 {
		t.Fatalf("only %d/%d field devices have a backup parent", withBackup, fieldDevices)
	}

	// Phase 2: end-to-end traffic. Each suggested source sends one packet
	// every 5 seconds for 60 seconds.
	delivered := make(map[[2]uint16]bool)
	net.OnDeliver(func(_ sim.ASN, f *sim.Frame) {
		delivered[[2]uint16{f.FlowID, f.Seq}] = true
	})
	sent := 0
	for round := 0; round < 12; round++ {
		for fi, src := range topo.SuggestedSources {
			if err := net.Nodes[src].InjectData(&sim.Frame{
				Origin: src, FlowID: uint16(fi + 1), Seq: uint16(round), BornASN: nw.ASN(),
			}); err != nil {
				t.Fatalf("inject round %d flow %d: %v", round, fi, err)
			}
			sent++
		}
		nw.Run(sim.SlotsFor(5 * time.Second))
	}
	nw.Run(sim.SlotsFor(5 * time.Second)) // drain

	pdr := float64(len(delivered)) / float64(sent)
	t.Logf("PDR in clean environment: %.3f (%d/%d)", pdr, len(delivered), sent)
	if pdr < 0.95 {
		t.Fatalf("clean-environment PDR %.3f, want >= 0.95", pdr)
	}
}

// TestDiGSSurvivesBestParentFailure reproduces the paper's headline
// failure-tolerance property in miniature: killing a primary parent must
// not stop delivery, because the third transmission attempt already uses
// the backup parent.
func TestDiGSSurvivesBestParentFailure(t *testing.T) {
	topo := topology.TestbedA()
	nw := sim.NewNetwork(topo, 13)
	net, err := Build(nw, DefaultConfig(topo.NumAPs), mac.DefaultConfig(), 13)
	if err != nil {
		t.Fatal(err)
	}
	if _, done := nw.RunUntil(sim.SlotsFor(150*time.Second), func() bool {
		return net.JoinedCount() == topo.N()
	}); !done {
		t.Fatal("network did not converge")
	}

	// Strict mode: the invariant monitor rides the rest of the test. The
	// parent kill below must be absorbed by backup routes without tripping
	// a single invariant — the watchdog Heal hook stays armed so a node
	// that does end up orphaned would both rejoin and fail the test.
	mon := invariant.New(invariant.Config{Heal: net.Healer()})
	invariant.Attach(nw, mon, net.Prober(nw), 0)

	// Pick a source whose best parent is a field device (a true router).
	var src, victim topology.NodeID
	for _, s := range topo.SuggestedSources {
		best, second := net.Stacks[s].Router().Parents()
		if best != 0 && !topo.IsAP(best) && second != 0 {
			src, victim = s, best
			break
		}
	}
	if src == 0 {
		t.Skip("no source routed through a field device in this seed")
	}

	delivered := 0
	net.OnDeliver(func(_ sim.ASN, f *sim.Frame) {
		if f.Origin == src {
			delivered++
		}
	})

	nw.Fail(victim)
	sent := 10
	for i := 0; i < sent; i++ {
		if err := net.Nodes[src].InjectData(&sim.Frame{
			Origin: src, FlowID: 1, Seq: uint16(i), BornASN: nw.ASN(),
		}); err != nil {
			t.Fatal(err)
		}
		nw.Run(sim.SlotsFor(5 * time.Second))
	}
	nw.Run(sim.SlotsFor(10 * time.Second))

	// Packets in flight during the reselection churn window may be lost
	// when downstream forwarders also routed through the victim (not
	// every hop of the chain is dual-homed); the bulk must arrive over
	// backup routes.
	if delivered < sent-2 {
		t.Fatalf("delivered %d/%d packets after primary parent failure, want >= %d "+
			"(backup route should carry them)", delivered, sent, sent-2)
	}
	if err := mon.Report().Err(); err != nil {
		t.Errorf("invariant monitor (strict): %v", err)
	}
}

// TestJoiningTimesAreStaggered checks the Figure 13 shape: nodes join in a
// wave, with close nodes joining in seconds and the whole network within
// tens of seconds.
func TestJoiningTimesAreStaggered(t *testing.T) {
	topo := topology.TestbedA()
	nw := sim.NewNetwork(topo, 17)
	net, err := Build(nw, DefaultConfig(topo.NumAPs), mac.DefaultConfig(), 17)
	if err != nil {
		t.Fatal(err)
	}
	if _, done := nw.RunUntil(sim.SlotsFor(120*time.Second), func() bool {
		return net.JoinedCount() == topo.N()
	}); !done {
		t.Fatalf("network did not converge: %d/%d", net.JoinedCount(), topo.N())
	}
	var earliest, latest time.Duration
	earliest = time.Hour
	for i := topo.NumAPs + 1; i <= topo.N(); i++ {
		at, ok := net.Stacks[i].Router().FirstParentAt()
		if !ok {
			t.Fatalf("node %d has no join time", i)
		}
		jt := sim.TimeAt(at)
		if jt < earliest {
			earliest = jt
		}
		if jt > latest {
			latest = jt
		}
	}
	t.Logf("join times: earliest %v, latest %v", earliest, latest)
	if earliest > 20*time.Second {
		t.Fatalf("earliest join %v, want within 20 s", earliest)
	}
	if latest < earliest+2*time.Second {
		t.Fatalf("join wave not staggered: earliest %v, latest %v", earliest, latest)
	}
}

// TestScheduleConsistencyNetworkWide verifies the autonomous schedule's
// defining property across a converged 50-node network: for every
// (parent, child, role) relation, the parent's combined schedule listens
// in exactly the child's Eq. (4) slots on the child's channel lane —
// except where one of the parent's own higher-priority slots (sync,
// shared, its own transmissions) overrides, which is the Eq. (6) skip the
// paper prices.
func TestScheduleConsistencyNetworkWide(t *testing.T) {
	topo := topology.TestbedA()
	nw := sim.NewNetwork(topo, 29)
	cfg := DefaultConfig(topo.NumAPs)
	net, err := Build(nw, cfg, mac.DefaultConfig(), 29)
	if err != nil {
		t.Fatal(err)
	}
	if _, done := nw.RunUntil(sim.SlotsFor(240*time.Second), func() bool {
		return net.JoinedCount() == topo.N()
	}); !done {
		t.Fatal("network did not converge")
	}
	nw.Run(sim.SlotsFor(30 * time.Second))

	base := nw.ASN() - nw.ASN()%cfg.AppFrameLen // align to an app frame
	pairs, skips, listens := 0, 0, 0
	for p := 1; p <= topo.N(); p++ {
		parent := net.Stacks[p]
		for child, role := range parent.Router().Children() {
			pairs++
			// Which attempts must the parent cover?
			var atts []int
			if role == RoleBestParent {
				for a := 1; a < cfg.Attempts; a++ {
					atts = append(atts, a)
				}
			} else {
				atts = []int{cfg.Attempts}
			}
			for _, a := range atts {
				offset := AppTxSlot(child, cfg.NumAPs, cfg.Attempts, a, cfg.AppFrameLen)
				asn := base + offset
				got := parent.Assignment(asn)
				switch got.Role {
				case mac.RoleRxData:
					listens++
					if got.ChannelOffset != appLane(child) {
						t.Fatalf("parent %d listens for child %d on lane %d, want %d",
							p, child, got.ChannelOffset, appLane(child))
					}
				case mac.RoleTxEB, mac.RoleRxEB, mac.RoleShared, mac.RoleTxData:
					skips++ // a legitimate higher-priority override
				default:
					t.Fatalf("parent %d sleeps through child %d attempt %d slot",
						p, child, a)
				}
			}
		}
	}
	if pairs == 0 {
		t.Fatal("no parent/child relations formed")
	}
	skipRate := float64(skips) / float64(skips+listens)
	t.Logf("checked %d relations: %d listen slots, %d overridden (%.1f%%; Eq. 6 predicts ~%.1f%%)",
		pairs, listens, skips, 100*skipRate, 100*ExpectedAppSkip(cfg))
	// The override rate must be of the same order as the Eq. (6)
	// prediction, not structural breakage.
	if skipRate > 5*ExpectedAppSkip(cfg)+0.05 {
		t.Fatalf("override rate %.2f far above the Eq. (6) prediction %.3f",
			skipRate, ExpectedAppSkip(cfg))
	}
}
