package core

import (
	"strings"
	"testing"

	"github.com/digs-net/digs/internal/mac"
	"github.com/digs-net/digs/internal/sim"
	"github.com/digs-net/digs/internal/topology"
)

// TestSendCommandErrorNamesTheDevice pins the error contract: callers route
// the message to operators, so it must identify the unreachable device and
// why the gateway cannot reach it.
func TestSendCommandErrorNamesTheDevice(t *testing.T) {
	topo := topology.TestbedA()
	nw := sim.NewNetwork(topo, 7)
	net, err := Build(nw, DefaultConfig(topo.NumAPs), mac.DefaultConfig(), 7)
	if err != nil {
		t.Fatal(err)
	}
	gw := NewGateway(net)
	err = gw.SendCommand(42, []byte{1})
	if err == nil {
		t.Fatal("SendCommand succeeded with no learned routes")
	}
	if !strings.Contains(err.Error(), "no route to device 42") {
		t.Fatalf("error does not name the device: %v", err)
	}
}

// TestBroadcastBulletinNoAPs exercises the defensive branch for a gateway
// wired onto a network without any access point.
func TestBroadcastBulletinNoAPs(t *testing.T) {
	gw := NewGateway(&Network{Nodes: make([]*mac.Node, 1)})
	err := gw.BroadcastBulletin([]byte("hello"))
	if err == nil {
		t.Fatal("BroadcastBulletin succeeded without an access point")
	}
	if !strings.Contains(err.Error(), "no access point") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestBroadcastBulletinDisabledSurfacesMACError checks that the MAC's
// broadcast-disabled error propagates through the gateway instead of being
// swallowed.
func TestBroadcastBulletinDisabledSurfacesMACError(t *testing.T) {
	topo := topology.TestbedA()
	nw := sim.NewNetwork(topo, 7)
	// Default MAC config: BroadcastFrameLen == 0, broadcast disabled.
	net, err := Build(nw, DefaultConfig(topo.NumAPs), mac.DefaultConfig(), 7)
	if err != nil {
		t.Fatal(err)
	}
	gw := NewGateway(net)
	if err := gw.BroadcastBulletin([]byte("x")); err == nil {
		t.Fatal("BroadcastBulletin succeeded with broadcast disabled at the MAC")
	}
}

// TestOnCommandErrorNamesTheNode pins the OnCommand error contract.
func TestOnCommandErrorNamesTheNode(t *testing.T) {
	topo := topology.TestbedA()
	nw := sim.NewNetwork(topo, 7)
	net, err := Build(nw, DefaultConfig(topo.NumAPs), mac.DefaultConfig(), 7)
	if err != nil {
		t.Fatal(err)
	}
	err = net.OnCommand(9999, nil)
	if err == nil {
		t.Fatal("OnCommand accepted a non-existent node")
	}
	if !strings.Contains(err.Error(), "no node 9999") {
		t.Fatalf("error does not name the node: %v", err)
	}
}
