package core

import (
	"math/rand"
	"testing"

	"github.com/digs-net/digs/internal/mac"
	"github.com/digs-net/digs/internal/sim"
	"github.com/digs-net/digs/internal/topology"
	"github.com/digs-net/digs/internal/trickle"
)

// fig7Config is the worked example of the paper's Figure 7: slotframe
// lengths 61 / 11 / 7, two access points, three attempts per packet.
func fig7Config() Config {
	cfg := DefaultConfig(2)
	cfg.SyncFrameLen = 61
	cfg.RoutingFrameLen = 11
	cfg.AppFrameLen = 7
	return cfg
}

func newStack(t *testing.T, id int, isAP bool, cfg Config) *Stack {
	t.Helper()
	s, err := NewStack(topoID(id), isAP, cfg, rand.New(rand.NewSource(int64(id))))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestAppTxSlotEquationFour(t *testing.T) {
	// Figure 7: N_AP = 2, A = 3, L_app = 7. Node #3 owns slots 1..3
	// (1-based) = offsets 0..2; node #4 owns slots 4..6 = offsets 3..5.
	tests := []struct {
		node    int
		attempt int
		want    int64
	}{
		{3, 1, 0}, {3, 2, 1}, {3, 3, 2},
		{4, 1, 3}, {4, 2, 4}, {4, 3, 5},
	}
	for _, tt := range tests {
		got := AppTxSlot(topoID(tt.node), 2, 3, tt.attempt, 7)
		if got != tt.want {
			t.Fatalf("AppTxSlot(node %d, attempt %d) = %d, want %d",
				tt.node, tt.attempt, got, tt.want)
		}
	}
}

func TestAppTxSlotWrapsModuloFrame(t *testing.T) {
	// Node 60 with A=3, NAP=2, L=151: base slot 3*58-3+1 = 172 -> wraps.
	got := AppTxSlot(topoID(60), 2, 3, 1, 151)
	if got != (172-1)%151 {
		t.Fatalf("wrapped slot = %d, want %d", got, (172-1)%151)
	}
	if got < 0 || got >= 151 {
		t.Fatalf("slot %d outside frame", got)
	}
}

// TestScheduleExampleFig7 reproduces the paper's Figure 7(e) combined
// schedule: at slot 0, nodes #1 and #3 use the slot for synchronisation
// traffic (highest priority) while #2 and #4 use it for routing.
func TestScheduleExampleFig7(t *testing.T) {
	cfg := fig7Config()
	s1 := newStack(t, 1, true, cfg)
	s2 := newStack(t, 2, true, cfg)
	s3 := newStack(t, 3, false, cfg)
	s4 := newStack(t, 4, false, cfg)

	// Wire the Figure 7(a) graph: #3 primary -> #1, backup -> #2;
	// #4 primary -> #2, backup -> #1.
	wireJoin := func(s *Stack, best, second int, bestETX, secondETX float64) {
		s.Router().OnJoinIn(0, topoID(best), JoinIn{Rank: 1, ETXw: 0}, rssForETX(bestETX))
		s.Router().OnJoinIn(0, topoID(second), JoinIn{Rank: 1, ETXw: 0}, rssForETX(secondETX))
	}
	wireJoin(s3, 1, 2, 1.0, 1.5)
	wireJoin(s4, 2, 1, 1.0, 1.5)
	// Complete the joined-callback confirmation handshake so data may
	// flow to the parents.
	confirm := func(s *Stack, best, second int) {
		cb := &sim.Frame{Kind: sim.KindJoinedCallback}
		s.OnTxResult(0, cb, topoID(best), true)
		s.OnTxResult(0, cb, topoID(second), true)
	}
	confirm(s3, 1, 2)
	confirm(s4, 2, 1)
	s1.Router().OnChildCallback(0, 3, JoinedCallback{Role: RoleBestParent})
	s1.Router().OnChildCallback(0, 4, JoinedCallback{Role: RoleSecondParent})
	s2.Router().OnChildCallback(0, 4, JoinedCallback{Role: RoleBestParent})
	s2.Router().OnChildCallback(0, 3, JoinedCallback{Role: RoleSecondParent})

	// Slot 0 (ASN 0): #1 transmits its EB, #3 listens for it (sync wins
	// over the shared routing slot); #2 and #4 get the routing slot.
	if got := s1.Assignment(0).Role; got != mac.RoleTxEB {
		t.Fatalf("node 1 slot 0 = %v, want TxEB", got)
	}
	if got := s3.Assignment(0).Role; got != mac.RoleRxEB {
		t.Fatalf("node 3 slot 0 = %v, want RxEB", got)
	}
	if got := s2.Assignment(0).Role; got != mac.RoleShared {
		t.Fatalf("node 2 slot 0 = %v, want Shared", got)
	}
	if got := s4.Assignment(0).Role; got != mac.RoleShared {
		t.Fatalf("node 4 slot 0 = %v, want Shared", got)
	}

	// Node #3 broadcasts its own EB in the third sync slot (offset 2).
	if got := s3.Assignment(2).Role; got != mac.RoleTxEB {
		t.Fatalf("node 3 slot 2 = %v, want TxEB", got)
	}

	// ASN 7: app slotframe offset 0 again, no sync/routing conflict.
	// #3 transmits its first attempt; #1 (its best parent) listens.
	a3 := s3.Assignment(7)
	if a3.Role != mac.RoleTxData || a3.Attempt != 1 {
		t.Fatalf("node 3 slot 7 = %+v, want TxData attempt 1", a3)
	}
	if got := s1.Assignment(7).Role; got != mac.RoleRxData {
		t.Fatalf("node 1 slot 7 = %v, want RxData", got)
	}

	// #3's third attempt (offset 2 of the app frame, e.g. ASN 16) goes to
	// the backup parent #2, which must listen.
	a3 = s3.Assignment(16)
	if a3.Role != mac.RoleTxData || a3.Attempt != 3 {
		t.Fatalf("node 3 slot 16 = %+v, want TxData attempt 3", a3)
	}
	if got := s2.Assignment(16).Role; got != mac.RoleRxData {
		t.Fatalf("node 2 slot 16 = %v, want RxData", got)
	}
	// And routing confirms: attempt 3 targets the backup parent.
	if hop, ok := s3.NextHop(0, 3); !ok || hop != 2 {
		t.Fatalf("node 3 attempt 3 next hop = (%d, %v), want (2, true)", hop, ok)
	}
	if hop, ok := s3.NextHop(0, 1); !ok || hop != 1 {
		t.Fatalf("node 3 attempt 1 next hop = (%d, %v), want (1, true)", hop, ok)
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := DefaultConfig(2)
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := cfg
	bad.SyncFrameLen = 10
	bad.RoutingFrameLen = 4 // gcd 2
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted non-coprime slotframe lengths")
	}
	bad = cfg
	bad.NumAPs = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted zero APs")
	}
	bad = cfg
	bad.Attempts = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted zero attempts")
	}
	bad = cfg
	bad.AppFrameLen = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted zero-length slotframe")
	}
}

func TestTrickleGatesJoinIn(t *testing.T) {
	cfg := fig7Config()
	cfg.Trickle = trickle.Config{IminSlots: 20, Doublings: 5, K: 0}
	s := newStack(t, 3, false, cfg)
	s.OnSynced(0)

	// Join via the public frame path so the stack queues its callback.
	join := &sim.Frame{Kind: sim.KindJoinIn, Src: 1,
		Payload: JoinIn{Rank: 1, ETXw: 0}.Marshal()}
	s.OnFrame(0, join, rssForETX(1.0))

	// The first shared frames must be the joined-callback to the parent
	// (a persistence coin may defer it a few slots), with acknowledgement
	// required.
	var f *sim.Frame
	var needAck bool
	for i := 0; i < 32 && f == nil; i++ {
		f, needAck = s.SharedFrame(sim.ASN(i))
	}
	if f == nil || f.Kind != sim.KindJoinedCallback || f.Dst != 1 {
		t.Fatalf("expected joined-callback to node 1, got %+v", f)
	}
	if !needAck {
		t.Fatal("joined-callback must be acknowledged")
	}
	s.OnTxResult(0, f, f.Dst, true)

	// Walk the slot loop: Assignment advances Trickle each slot; shared
	// slots (offset 0 of the routing frame) drain the latch. The join-in
	// rate must decay from startup to steady state.
	fires := func(fromASN, slots int64) int {
		n := 0
		for asn := fromASN; asn < fromASN+slots; asn++ {
			s.Assignment(asn)
			if asn%cfg.RoutingFrameLen == 0 {
				if f, _ := s.SharedFrame(asn); f != nil && f.Kind == sim.KindJoinIn {
					n++
				}
			}
		}
		return n
	}
	early := fires(1, 500)
	late := fires(50000, 500)
	if early == 0 {
		t.Fatal("no join-in beacons after joining")
	}
	if late >= early {
		t.Fatalf("join-in rate did not decay: early %d, late %d", early, late)
	}
}

func topoID(i int) topology.NodeID { return topology.NodeID(i) }
