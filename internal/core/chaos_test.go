package core

import (
	"math/rand"
	"sort"
	"testing"
	"time"

	"github.com/digs-net/digs/internal/mac"
	"github.com/digs-net/digs/internal/sim"
	"github.com/digs-net/digs/internal/topology"
)

// TestNetworkSurvivesChurn is the failure-injection soak test: random
// field devices die and recover continuously for ten simulated minutes;
// afterwards the routing graph must re-converge completely and carry
// traffic again. This exercises every repair path at once: dead-link
// detection, reselection, confirmation handshakes, neighbour expiry,
// rejoin after restore.
func TestNetworkSurvivesChurn(t *testing.T) {
	topo := topology.TestbedA()
	nw := sim.NewNetwork(topo, 77)
	net, err := Build(nw, DefaultConfig(topo.NumAPs), mac.DefaultConfig(), 77)
	if err != nil {
		t.Fatal(err)
	}
	if _, done := nw.RunUntil(sim.SlotsFor(240*time.Second), func() bool {
		return net.JoinedCount() == topo.N()
	}); !done {
		t.Fatal("network did not converge")
	}

	// Churn phase: every 20 s, kill a random healthy field device and
	// restore a random dead one, while background traffic flows.
	rng := rand.New(rand.NewSource(7))
	dead := map[topology.NodeID]bool{}
	delivered := 0
	net.OnDeliver(func(sim.ASN, *sim.Frame) { delivered++ })
	seq := uint16(0)
	for round := 0; round < 30; round++ {
		// Kill one.
		for tries := 0; tries < 20; tries++ {
			victim := topology.NodeID(topo.NumAPs + 1 + rng.Intn(topo.N()-topo.NumAPs))
			if !dead[victim] {
				nw.Fail(victim)
				dead[victim] = true
				break
			}
		}
		// Restore one (not necessarily the same), picked from a sorted
		// slice: ranging over the map here would consume rng draws in map
		// iteration order and make the whole run nondeterministic.
		if len(dead) > 0 && rng.Intn(2) == 0 {
			ids := make([]topology.NodeID, 0, len(dead))
			for id := range dead {
				ids = append(ids, id)
			}
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			id := ids[rng.Intn(len(ids))]
			nw.Restore(id)
			delete(dead, id)
		}
		// Background traffic from live sources.
		for _, src := range topo.SuggestedSources {
			if dead[src] {
				continue
			}
			seq++
			_ = net.Nodes[src].InjectData(&sim.Frame{
				Origin: src, FlowID: 1, Seq: seq, BornASN: nw.ASN(),
			})
		}
		nw.Run(sim.SlotsFor(20 * time.Second))
	}
	if delivered == 0 {
		t.Fatal("no packets delivered during churn")
	}
	t.Logf("delivered %d packets during churn with %d nodes still dead", delivered, len(dead))

	// Recovery phase: restore everyone and require full re-convergence.
	for id := range dead {
		nw.Restore(id)
	}
	if _, done := nw.RunUntil(sim.SlotsFor(240*time.Second), func() bool {
		return net.JoinedCount() == topo.N()
	}); !done {
		t.Fatalf("network did not re-converge after churn: %d/%d joined",
			net.JoinedCount(), topo.N())
	}

	// And it must still deliver reliably.
	after := 0
	net.OnDeliver(func(sim.ASN, *sim.Frame) { after++ })
	sent := 0
	for round := 0; round < 6; round++ {
		for _, src := range topo.SuggestedSources {
			seq++
			sent++
			_ = net.Nodes[src].InjectData(&sim.Frame{
				Origin: src, FlowID: 1, Seq: seq, BornASN: nw.ASN(),
			})
		}
		nw.Run(sim.SlotsFor(5 * time.Second))
	}
	nw.Run(sim.SlotsFor(20 * time.Second))
	if after < sent*8/10 {
		t.Fatalf("post-churn delivery %d/%d below 80%%", after, sent)
	}
	t.Logf("post-churn delivery: %d/%d", after, sent)
}
