package core

import (
	"testing"
	"time"

	"github.com/digs-net/digs/internal/mac"
	"github.com/digs-net/digs/internal/sim"
	"github.com/digs-net/digs/internal/topology"
)

// buildWithDownlink boots a DiGS network with the downlink slotframe
// enabled and a gateway wired onto the APs.
func buildWithDownlink(t *testing.T, seed int64) (*sim.Network, *Network, *Gateway) {
	t.Helper()
	topo := topology.TestbedA()
	nw := sim.NewNetwork(topo, seed)
	macCfg := mac.DefaultConfig()
	macCfg.DownlinkFrameLen = 149
	net, err := Build(nw, DefaultConfig(topo.NumAPs), macCfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	gw := NewGateway(net)
	if _, done := nw.RunUntil(sim.SlotsFor(240*time.Second), func() bool {
		return net.JoinedCount() == topo.N()
	}); !done {
		t.Fatal("network did not converge")
	}
	return nw, net, gw
}

func TestGatewayLearnsRoutesFromUplink(t *testing.T) {
	nw, net, gw := buildWithDownlink(t, 21)
	topo := nw.Topology()

	if gw.KnownDevices() != 0 {
		t.Fatal("gateway knows routes before any uplink traffic")
	}

	// Every source sends one reading; the gateway must learn a route to
	// each.
	for i, src := range topo.SuggestedSources {
		_ = net.Nodes[src].InjectData(&sim.Frame{
			Origin: src, FlowID: uint16(i + 1), Seq: 0, BornASN: nw.ASN(),
		})
	}
	nw.Run(sim.SlotsFor(30 * time.Second))

	for _, src := range topo.SuggestedSources {
		ap, path, ok := gw.RouteTo(src)
		if !ok {
			t.Fatalf("no route learned to source %d", src)
		}
		if !topo.IsAP(ap) {
			t.Fatalf("route to %d anchored at non-AP %d", src, ap)
		}
		if path[len(path)-1] != src {
			t.Fatalf("route to %d ends at %d", src, path[len(path)-1])
		}
		// No loops in the recorded path.
		seen := map[topology.NodeID]bool{}
		for _, hop := range path {
			if seen[hop] {
				t.Fatalf("route to %d revisits %d: %v", src, hop, path)
			}
			seen[hop] = true
		}
	}
}

func TestDownlinkCommandsReachActuators(t *testing.T) {
	nw, net, gw := buildWithDownlink(t, 21)
	topo := nw.Topology()

	// Uplink first so routes exist.
	for i, src := range topo.SuggestedSources {
		_ = net.Nodes[src].InjectData(&sim.Frame{
			Origin: src, FlowID: uint16(i + 1), Seq: 0, BornASN: nw.ASN(),
		})
	}
	nw.Run(sim.SlotsFor(30 * time.Second))

	// Command every source (they are our actuators).
	got := map[topology.NodeID][]byte{}
	for _, src := range topo.SuggestedSources {
		src := src
		if err := net.OnCommand(src, func(_ sim.ASN, f *sim.Frame) {
			got[src] = f.Payload
		}); err != nil {
			t.Fatal(err)
		}
		if err := gw.SendCommand(src, []byte{0x42, byte(src)}); err != nil {
			t.Fatalf("send command to %d: %v", src, err)
		}
	}
	nw.Run(sim.SlotsFor(60 * time.Second))

	delivered := 0
	for _, src := range topo.SuggestedSources {
		payload, ok := got[src]
		if !ok {
			continue
		}
		delivered++
		if len(payload) != 2 || payload[0] != 0x42 || payload[1] != byte(src) {
			t.Fatalf("actuator %d got payload %v", src, payload)
		}
	}
	t.Logf("commands delivered: %d/%d", delivered, len(topo.SuggestedSources))
	if delivered < len(topo.SuggestedSources)-1 {
		t.Fatalf("only %d/%d commands reached their actuators",
			delivered, len(topo.SuggestedSources))
	}
}

func TestSendCommandWithoutRouteFails(t *testing.T) {
	topo := topology.TestbedA()
	nw := sim.NewNetwork(topo, 5)
	macCfg := mac.DefaultConfig()
	macCfg.DownlinkFrameLen = 149
	net, err := Build(nw, DefaultConfig(topo.NumAPs), macCfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	gw := NewGateway(net)
	if err := gw.SendCommand(10, []byte{1}); err == nil {
		t.Fatal("sent a command without any learned route")
	}
}

func TestSendCommandDownlinkDisabled(t *testing.T) {
	topo := topology.TestbedA()
	nw := sim.NewNetwork(topo, 5)
	net, err := Build(nw, DefaultConfig(topo.NumAPs), mac.DefaultConfig(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Nodes[1].SendCommand([]topology.NodeID{3}, []byte{1}); err == nil {
		t.Fatal("downlink command accepted with downlink disabled")
	}
}

func TestOnCommandUnknownNode(t *testing.T) {
	topo := topology.TestbedA()
	nw := sim.NewNetwork(topo, 5)
	net, err := Build(nw, DefaultConfig(topo.NumAPs), mac.DefaultConfig(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.OnCommand(9999, nil); err == nil {
		t.Fatal("installed a command sink on a non-existent node")
	}
}

func TestBroadcastGraphReachesWholeTestbed(t *testing.T) {
	topo := topology.TestbedA()
	nw := sim.NewNetwork(topo, 33)
	macCfg := mac.DefaultConfig()
	macCfg.BroadcastFrameLen = 23
	net, err := Build(nw, DefaultConfig(topo.NumAPs), macCfg, 33)
	if err != nil {
		t.Fatal(err)
	}
	gw := NewGateway(net)
	if _, done := nw.RunUntil(sim.SlotsFor(240*time.Second), func() bool {
		return net.JoinedCount() == topo.N()
	}); !done {
		t.Fatal("network did not converge")
	}

	reached := map[topology.NodeID]bool{}
	for i := topo.NumAPs + 1; i <= topo.N(); i++ {
		id := topology.NodeID(i)
		net.Nodes[i].BulletinSink = func(sim.ASN, *sim.Frame) { reached[id] = true }
	}
	if err := gw.BroadcastBulletin([]byte("superframe update")); err != nil {
		t.Fatal(err)
	}
	nw.Run(sim.SlotsFor(60 * time.Second))

	missing := 0
	for i := topo.NumAPs + 1; i <= topo.N(); i++ {
		if !reached[topology.NodeID(i)] {
			missing++
		}
	}
	t.Logf("broadcast reached %d/%d field devices",
		topo.N()-topo.NumAPs-missing, topo.N()-topo.NumAPs)
	if missing > 2 {
		t.Fatalf("%d field devices never received the bulletin", missing)
	}
}
