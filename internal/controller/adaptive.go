package controller

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/digs-net/digs/internal/detrand"
	"github.com/digs-net/digs/internal/mac"
	"github.com/digs-net/digs/internal/rpl"
	"github.com/digs-net/digs/internal/sim"
	"github.com/digs-net/digs/internal/topology"
	"github.com/digs-net/digs/internal/trickle"
)

// AdaptiveConfig holds the distributed cell allocator's parameters. The
// slotframe lengths default to the paper's evaluation values (557/47/151),
// shared with DiGS and Orchestra.
type AdaptiveConfig struct {
	EBFrameLen     int64
	SharedFrameLen int64
	DataFrameLen   int64

	// Trickle gates DIO transmissions (slot units).
	Trickle trickle.Config

	NeighborTimeout time.Duration
	// MaintainEvery is the adaptation tick: queue depth and loss are
	// sampled and the cell budget adjusted once per tick.
	MaintainEvery time.Duration

	// RankGranularity is RPL's MinHopRankIncrease.
	RankGranularity int

	// MinCells / MaxCells bound the per-node transmit-cell budget in the
	// data slotframe.
	MinCells int
	MaxCells int
	// GrowQueue is the queue depth at an adaptation tick that triggers
	// allocating one more transmit cell.
	GrowQueue int
	// GrowFails is the number of failed data transmissions within one
	// tick that triggers allocating one more transmit cell.
	GrowFails int
	// ShrinkIdle is the number of consecutive fully idle ticks (empty
	// queue, no transmissions) after which one cell is shed.
	ShrinkIdle int
}

// DefaultAdaptiveConfig returns the evaluation configuration.
func DefaultAdaptiveConfig() AdaptiveConfig {
	return AdaptiveConfig{
		EBFrameLen:      557,
		SharedFrameLen:  47,
		DataFrameLen:    151,
		Trickle:         trickle.Config{IminSlots: 100, Doublings: 7, K: 6},
		NeighborTimeout: 5 * time.Minute,
		MaintainEvery:   5 * time.Second,
		RankGranularity: 4,
		MinCells:        1,
		MaxCells:        4,
		GrowQueue:       4,
		GrowFails:       2,
		ShrinkIdle:      3,
	}
}

// Validate checks the configuration.
func (c AdaptiveConfig) Validate() error {
	if c.EBFrameLen <= 0 || c.SharedFrameLen <= 0 || c.DataFrameLen <= 0 {
		return fmt.Errorf("adaptive config: slotframe lengths must be positive (%d, %d, %d)",
			c.EBFrameLen, c.SharedFrameLen, c.DataFrameLen)
	}
	if c.MinCells < 1 || c.MaxCells < c.MinCells {
		return fmt.Errorf("adaptive config: cell bounds %d..%d", c.MinCells, c.MaxCells)
	}
	// The j-th cell sits at stride 53 from the (j-1)-th; all MaxCells
	// slots of one node must be distinct modulo the frame length (they
	// are whenever 53 and the frame length are coprime, as with the
	// default 151).
	seen := make(map[int64]bool, c.MaxCells)
	for j := 0; j < c.MaxCells; j++ {
		slot := (int64(j) * 53) % c.DataFrameLen
		if seen[slot] {
			return fmt.Errorf("adaptive config: %d cells collide in a %d-slot frame",
				c.MaxCells, c.DataFrameLen)
		}
		seen[slot] = true
	}
	return nil
}

// adaptiveCellSlot returns the j-th transmit cell of a node in the data
// slotframe. The stride keeps one node's cells distinct for prime frame
// lengths; cross-node collisions land on different channel lanes.
func adaptiveCellSlot(id topology.NodeID, j int, frameLen int64) int64 {
	return (int64(id)*37 + int64(j)*53) % frameLen
}

// adaptivePayload is a DIO extended with the sender's current transmit
// cell count, so parents can mirror the sender's cells as listen cells.
func adaptivePayload(d rpl.DIO, cells int) []byte {
	return append(d.Marshal(), byte(cells))
}

// splitAdaptivePayload decodes the extended DIO payload.
func splitAdaptivePayload(b []byte) (rpl.DIO, int, error) {
	if len(b) != 7 {
		return rpl.DIO{}, 0, fmt.Errorf("adaptive dio payload: %d bytes, want 7", len(b))
	}
	d, err := rpl.UnmarshalDIO(b[:6])
	if err != nil {
		return rpl.DIO{}, 0, err
	}
	cells := int(b[6])
	if cells < 1 {
		cells = 1
	}
	return d, cells, nil
}

// AdaptiveStack is one node's adaptive-allocator instance: RPL routing
// (like Orchestra) under a sender-based unicast slotframe whose per-node
// cell count tracks observed load. It implements mac.Protocol.
type AdaptiveStack struct {
	id     topology.NodeID
	isRoot bool
	cfg    AdaptiveConfig

	router   *rpl.Router
	tr       *trickle.Timer
	rng      *rand.Rand
	combiner *mac.Combiner
	// rngSrc is the counting source BuildAdaptive wires in; it is what
	// makes the stack's RNG position checkpointable.
	rngSrc *detrand.Source

	// queueLen reads the owning MAC node's data queue depth; installed by
	// BuildAdaptive after the node exists. Reading our own node's queue
	// from our own Assignment keeps the sharded engine's no-cross-node-
	// state rule intact.
	queueLen func() int

	wantDIO      bool
	nextMaintain sim.ASN
	nextSolicit  sim.ASN
	synced       bool

	// txCells is the current transmit-cell budget.
	txCells int
	// idleTicks counts consecutive adaptation ticks with nothing to send.
	idleTicks int
	// failsSinceTick / sentSinceTick are the tick-local loss and activity
	// counters feeding the allocator.
	failsSinceTick int
	sentSinceTick  int

	// neighborCells caches the advertised cell count of each neighbor
	// (from extended DIOs); childCells maps data-slotframe offsets to the
	// potential child listening obligations derived from it, refreshed at
	// each maintenance tick like Orchestra's child-slot cache.
	neighborCells map[topology.NodeID]int
	childCells    map[int64]topology.NodeID
}

var _ mac.Protocol = (*AdaptiveStack)(nil)

// NewAdaptiveStack builds an adaptive stack for one node.
func NewAdaptiveStack(id topology.NodeID, isRoot bool, cfg AdaptiveConfig, rng *rand.Rand) (*AdaptiveStack, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	tr, err := trickle.NewTimer(cfg.Trickle, rng)
	if err != nil {
		return nil, fmt.Errorf("adaptive stack %d: %w", id, err)
	}
	s := &AdaptiveStack{
		id:      id,
		isRoot:  isRoot,
		cfg:     cfg,
		router:  rpl.NewRouter(id, isRoot, sim.SlotsFor(cfg.NeighborTimeout), cfg.RankGranularity),
		tr:      tr,
		rng:     rng,
		txCells: cfg.MinCells,
	}
	s.combiner = mac.NewCombiner(
		mac.Slotframe{Length: cfg.EBFrameLen, Priority: 0, ChannelOffset: ebChannelOffset,
			Role: s.ebRole},
		mac.Slotframe{Length: cfg.SharedFrameLen, Priority: 1, ChannelOffset: sharedChannelOffset,
			Role: s.sharedRole},
		mac.Slotframe{Length: cfg.DataFrameLen, Priority: 2, ChannelOffset: unicastChannelOffset,
			Role: s.dataRole},
	)
	return s, nil
}

// Router exposes the RPL state for experiments and tests.
func (s *AdaptiveStack) Router() *rpl.Router { return s.router }

// TxCells exposes the current transmit-cell budget for tests and probes.
func (s *AdaptiveStack) TxCells() int { return s.txCells }

// Reset implements mac.Resetter: back to the just-constructed state. The
// installed OnParentChange callback, the queue-length hook and the
// configuration survive, like the other stacks.
func (s *AdaptiveStack) Reset() {
	onChange := s.router.OnParentChange
	router := rpl.NewRouter(s.id, s.isRoot, sim.SlotsFor(s.cfg.NeighborTimeout),
		s.cfg.RankGranularity)
	router.OnParentChange = onChange
	s.router = router
	s.tr, _ = trickle.NewTimer(s.cfg.Trickle, s.rng)
	s.wantDIO = false
	s.nextMaintain = 0
	s.nextSolicit = 0
	s.synced = false
	s.txCells = s.cfg.MinCells
	s.idleTicks = 0
	s.failsSinceTick = 0
	s.sentSinceTick = 0
	s.neighborCells = nil
	s.childCells = nil
}

func (s *AdaptiveStack) ebRole(offset int64, _ sim.ASN) (mac.SlotRole, int) {
	if offset == int64(s.id-1)%s.cfg.EBFrameLen {
		return mac.RoleTxEB, 0
	}
	if p := s.router.Parent(); p != 0 && offset == int64(p-1)%s.cfg.EBFrameLen {
		return mac.RoleRxEB, 0
	}
	return mac.RoleSleep, 0
}

func (s *AdaptiveStack) sharedRole(offset int64, _ sim.ASN) (mac.SlotRole, int) {
	if offset == 0 {
		return mac.RoleShared, 0
	}
	return mac.RoleSleep, 0
}

// dataRole: transmit in our own cells (sender-based — the cell budget is
// ours to grow), listen in every potential child's advertised cells.
func (s *AdaptiveStack) dataRole(offset int64, _ sim.ASN) (mac.SlotRole, int) {
	if s.router.Parent() != 0 {
		for j := 0; j < s.txCells; j++ {
			if offset == adaptiveCellSlot(s.id, j, s.cfg.DataFrameLen) {
				return mac.RoleTxData, 1
			}
		}
	}
	if _, ok := s.childCells[offset]; ok {
		return mac.RoleRxData, 0
	}
	return mac.RoleSleep, 0
}

// refreshChildCells mirrors each potential child's advertised cell count
// as listen cells.
func (s *AdaptiveStack) refreshChildCells() {
	cells := make(map[int64]topology.NodeID)
	if s.isRoot || s.router.Parent() != 0 {
		for _, c := range s.router.PotentialChildren() {
			k := s.neighborCells[c]
			if k < s.cfg.MinCells {
				k = s.cfg.MinCells
			}
			if k > s.cfg.MaxCells {
				k = s.cfg.MaxCells
			}
			for j := 0; j < k; j++ {
				cells[adaptiveCellSlot(c, j, s.cfg.DataFrameLen)] = c
			}
		}
	}
	s.childCells = cells
}

// adapt is the allocator: grow under queue pressure or loss, shed after
// sustained idleness. A change re-advertises promptly via a Trickle reset
// so the parent's listen cells track the new budget.
func (s *AdaptiveStack) adapt(asn sim.ASN) {
	q := 0
	if s.queueLen != nil {
		q = s.queueLen()
	}
	changed := false
	switch {
	case q >= s.cfg.GrowQueue || s.failsSinceTick >= s.cfg.GrowFails:
		if s.txCells < s.cfg.MaxCells {
			s.txCells++
			changed = true
		}
		s.idleTicks = 0
	case q == 0 && s.sentSinceTick == 0:
		s.idleTicks++
		if s.idleTicks >= s.cfg.ShrinkIdle && s.txCells > s.cfg.MinCells {
			s.txCells--
			s.idleTicks = 0
			changed = true
		}
	default:
		s.idleTicks = 0
	}
	s.failsSinceTick = 0
	s.sentSinceTick = 0
	if changed && s.synced {
		s.tr.Reset(asn)
	}
}

// Assignment implements mac.Protocol.
func (s *AdaptiveStack) Assignment(asn sim.ASN) mac.Assignment {
	if asn >= s.nextMaintain {
		s.nextMaintain = asn + sim.SlotsFor(s.cfg.MaintainEvery)
		if s.router.Maintain(asn) && s.synced {
			s.tr.Reset(asn)
		}
		s.adapt(asn)
		s.refreshChildCells()
	}
	if s.tr.Fires(asn) {
		s.wantDIO = true
	}
	a := s.combiner.Assignment(asn)
	offset := asn % s.cfg.DataFrameLen
	switch a.Role {
	case mac.RoleTxData:
		a.ChannelOffset = unicastLane(s.id)
	case mac.RoleRxData:
		if c, ok := s.childCells[offset]; ok {
			a.ChannelOffset = unicastLane(c)
		}
	}
	return a
}

// OnSynced implements mac.Protocol.
func (s *AdaptiveStack) OnSynced(asn sim.ASN) {
	s.synced = true
	s.tr.Start(asn)
	s.nextSolicit = asn + 500 + sim.ASN(s.rng.Intn(500))
}

// EBPayload implements mac.Protocol: beacons carry the RPL join metric
// extended with the sender's cell count.
func (s *AdaptiveStack) EBPayload() []byte {
	adv, ok := s.router.Advertisement()
	if !ok {
		return nil
	}
	return adaptivePayload(adv, s.txCells)
}

// OnFrame implements mac.Protocol.
func (s *AdaptiveStack) OnFrame(asn sim.ASN, f *sim.Frame, rssi float64) {
	switch f.Kind {
	case sim.KindEB:
		if d, cells, err := splitAdaptivePayload(f.Payload); err == nil {
			s.noteNeighborCells(f.Src, cells)
			if s.router.OnDIO(asn, f.Src, d, rssi) && s.synced {
				s.tr.Reset(asn)
			}
			return
		}
		s.router.Observe(f.Src, rssi)
	case sim.KindJoinIn: // a DIO in this stack
		d, cells, err := splitAdaptivePayload(f.Payload)
		if err != nil {
			return
		}
		s.noteNeighborCells(f.Src, cells)
		if s.router.OnDIO(asn, f.Src, d, rssi) {
			if s.synced {
				s.tr.Reset(asn)
			}
		} else {
			s.tr.Hear()
		}
	case sim.KindSolicit:
		s.router.Observe(f.Src, rssi)
		if s.router.Joined() {
			s.tr.Reset(asn)
		}
	case sim.KindData:
		s.router.Observe(f.Src, rssi)
	}
}

func (s *AdaptiveStack) noteNeighborCells(from topology.NodeID, cells int) {
	if s.neighborCells == nil {
		s.neighborCells = make(map[topology.NodeID]int)
	}
	s.neighborCells[from] = cells
}

// SharedFrame implements mac.Protocol: DIS solicitation when parentless,
// Trickle-latched DIOs otherwise, both behind a persistence coin.
func (s *AdaptiveStack) SharedFrame(asn sim.ASN) (*sim.Frame, bool) {
	if s.synced && !s.router.Joined() {
		if asn >= s.nextSolicit {
			s.nextSolicit = asn + 1000 + sim.ASN(s.rng.Intn(500))
			return &sim.Frame{Kind: sim.KindSolicit, Src: s.id, Dst: topology.Broadcast}, false
		}
		return nil, false
	}
	if !s.wantDIO || s.rng.Intn(2) == 1 {
		return nil, false
	}
	adv, ok := s.router.Advertisement()
	if !ok {
		s.wantDIO = false
		return nil, false
	}
	s.wantDIO = false
	return &sim.Frame{
		Kind:    sim.KindJoinIn,
		Src:     s.id,
		Dst:     topology.Broadcast,
		Payload: adaptivePayload(adv, s.txCells),
	}, false
}

// NextHop implements mac.Protocol: the single RPL preferred parent.
func (s *AdaptiveStack) NextHop(sim.ASN, int) (topology.NodeID, bool) {
	p := s.router.Parent()
	return p, p != 0
}

// OnTxResult implements mac.Protocol: data outcomes feed both the RPL
// link estimator and the allocator's tick-local loss counter. Cells are
// dedicated (sender-based), so there is no contention backoff.
func (s *AdaptiveStack) OnTxResult(asn sim.ASN, f *sim.Frame, to topology.NodeID, acked bool) {
	if f.Kind == sim.KindData {
		s.sentSinceTick++
		if !acked {
			s.failsSinceTick++
		}
	}
	if s.router.OnTxResult(asn, to, acked) && s.synced {
		s.tr.Reset(asn)
	}
}
