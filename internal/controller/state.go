package controller

import (
	"fmt"
	"sort"

	"github.com/digs-net/digs/internal/mac"
	"github.com/digs-net/digs/internal/rpl"
	"github.com/digs-net/digs/internal/sim"
	"github.com/digs-net/digs/internal/topology"
	"github.com/digs-net/digs/internal/trickle"
)

// SDNHopsState is one gradient-table entry (hop distance to controller).
type SDNHopsState struct {
	Node  topology.NodeID
	Hops  uint8
	Heard int64
}

// SDNRSSState is one observed-link entry.
type SDNRSSState struct {
	Node  topology.NodeID
	RSS   float64
	Heard int64
}

// SDNCtrlState is one queued control frame with its retry bookkeeping.
type SDNCtrlState struct {
	Frame     mac.FrameState
	Tries     int
	NotBefore int64
}

// SDNReportState is one collected link-state report (controller only).
type SDNReportState struct {
	Node  topology.NodeID
	ASN   int64
	Neigh []SDNReportNeighbor
}

// SDNSentState is one dissemination-dedup entry (controller only).
type SDNSentState struct {
	Node     topology.NodeID
	Parent   topology.NodeID
	Children []topology.NodeID
}

// SDNStackState is the complete mutable state of one SDN stack. The
// child-cell map is not captured: applyConfig derives it from Children
// deterministically, so the restore path recomputes it.
type SDNStackState struct {
	Synced  bool
	Uplink  topology.NodeID
	OwnHops uint8

	// HasHops/HasRSS distinguish nil tables (never populated since
	// construction or reset) from empty populated ones.
	HasHops bool
	Hops    []SDNHopsState // sorted by node
	HasRSS  bool
	RSS     []SDNRSSState // sorted by node

	NextMaintain int64
	NextReport   int64

	CfgEpoch          uint16
	Parent            topology.NodeID
	Children          []topology.NodeID
	ConsecParentFails int

	CtrlQ []SDNCtrlState

	// Controller-only state (zero values on every other node).
	Reports       []SDNReportState // sorted by node
	Epoch         uint16
	EpochCount    int64
	NextRecompute int64
	LastSent      []SDNSentState // sorted by node
}

// CaptureState snapshots the stack.
func (s *SDNStack) CaptureState() *SDNStackState {
	st := &SDNStackState{
		Synced:            s.synced,
		Uplink:            s.uplink,
		OwnHops:           s.ownHops,
		NextMaintain:      int64(s.nextMaintain),
		NextReport:        int64(s.nextReport),
		CfgEpoch:          s.cfgEpoch,
		Parent:            s.parent,
		Children:          append([]topology.NodeID(nil), s.children...),
		ConsecParentFails: s.consecParentFails,
		Epoch:             s.epoch,
		EpochCount:        s.epochCount,
		NextRecompute:     int64(s.nextRecompute),
	}
	if s.hops != nil {
		st.HasHops = true
		st.Hops = make([]SDNHopsState, 0, len(s.hops))
		for n, e := range s.hops {
			st.Hops = append(st.Hops, SDNHopsState{Node: n, Hops: e.hops, Heard: int64(e.heard)})
		}
		sort.Slice(st.Hops, func(i, j int) bool { return st.Hops[i].Node < st.Hops[j].Node })
	}
	if s.rss != nil {
		st.HasRSS = true
		st.RSS = make([]SDNRSSState, 0, len(s.rss))
		for n, e := range s.rss {
			st.RSS = append(st.RSS, SDNRSSState{Node: n, RSS: e.rss, Heard: int64(e.heard)})
		}
		sort.Slice(st.RSS, func(i, j int) bool { return st.RSS[i].Node < st.RSS[j].Node })
	}
	for _, e := range s.ctrlQ {
		st.CtrlQ = append(st.CtrlQ, SDNCtrlState{
			Frame:     mac.CaptureFrame(e.frame),
			Tries:     e.tries,
			NotBefore: int64(e.notBefore),
		})
	}
	for n, e := range s.reports {
		st.Reports = append(st.Reports, SDNReportState{
			Node: n, ASN: int64(e.asn),
			Neigh: append([]SDNReportNeighbor(nil), e.neigh...),
		})
	}
	sort.Slice(st.Reports, func(i, j int) bool { return st.Reports[i].Node < st.Reports[j].Node })
	for n, c := range s.lastSent {
		st.LastSent = append(st.LastSent, SDNSentState{
			Node: n, Parent: c.parent,
			Children: append([]topology.NodeID(nil), c.children...),
		})
	}
	sort.Slice(st.LastSent, func(i, j int) bool { return st.LastSent[i].Node < st.LastSent[j].Node })
	return st
}

// RestoreState overlays a captured stack state onto a freshly built stack
// (same node, same configuration).
func (s *SDNStack) RestoreState(st *SDNStackState) error {
	if !s.controller() && (len(st.Reports) > 0 || len(st.LastSent) > 0 || st.EpochCount != 0) {
		return fmt.Errorf("sdn stack %d: controller state in a non-controller snapshot entry", s.id)
	}
	s.synced = st.Synced
	s.uplink = st.Uplink
	s.ownHops = st.OwnHops
	s.hops = nil
	if st.HasHops {
		s.hops = make(map[topology.NodeID]sdnHopsEntry, len(st.Hops))
		for _, e := range st.Hops {
			s.hops[e.Node] = sdnHopsEntry{hops: e.Hops, heard: sim.ASN(e.Heard)}
		}
	}
	s.rss = nil
	if st.HasRSS {
		s.rss = make(map[topology.NodeID]sdnRSSEntry, len(st.RSS))
		for _, e := range st.RSS {
			s.rss[e.Node] = sdnRSSEntry{rss: e.RSS, heard: sim.ASN(e.Heard)}
		}
	}
	s.nextMaintain = sim.ASN(st.NextMaintain)
	s.nextReport = sim.ASN(st.NextReport)
	s.cfgEpoch = st.CfgEpoch
	s.parent = st.Parent
	s.children = append([]topology.NodeID(nil), st.Children...)
	s.childCells = make(map[int64]topology.NodeID, len(s.children))
	for _, c := range s.children {
		s.childCells[sdnCell(c, s.cfg.DataFrameLen)] = c
	}
	s.consecParentFails = st.ConsecParentFails
	s.ctrlQ = nil
	for _, e := range st.CtrlQ {
		fs := e.Frame
		s.ctrlQ = append(s.ctrlQ, sdnCtrlEntry{
			frame:     fs.Restore(),
			tries:     e.Tries,
			notBefore: sim.ASN(e.NotBefore),
		})
	}
	if s.controller() {
		s.reports = make(map[topology.NodeID]sdnReportEntry, len(st.Reports))
		for _, e := range st.Reports {
			s.reports[e.Node] = sdnReportEntry{
				asn:   sim.ASN(e.ASN),
				neigh: append([]SDNReportNeighbor(nil), e.Neigh...),
			}
		}
		s.epoch = st.Epoch
		s.epochCount = st.EpochCount
		s.nextRecompute = sim.ASN(st.NextRecompute)
		s.lastSent = make(map[topology.NodeID]sdnNodeConfig, len(st.LastSent))
		for _, e := range st.LastSent {
			s.lastSent[e.Node] = sdnNodeConfig{
				parent:   e.Parent,
				children: append([]topology.NodeID(nil), e.Children...),
			}
		}
	}
	return nil
}

// CaptureState snapshots every stack of the network, indexed by node ID
// (entry 0 nil).
func (n *SDNNetwork) CaptureState() ([]*SDNStackState, error) {
	out := make([]*SDNStackState, len(n.Stacks))
	for i, s := range n.Stacks {
		if s != nil {
			out[i] = s.CaptureState()
		}
	}
	return out, nil
}

// RestoreState overlays captured stack states onto a freshly built network.
func (n *SDNNetwork) RestoreState(states []*SDNStackState) error {
	if len(states) != len(n.Stacks) {
		return fmt.Errorf("sdn restore: %d stack states for %d stacks", len(states), len(n.Stacks))
	}
	for i, s := range n.Stacks {
		if s == nil {
			continue
		}
		if states[i] == nil {
			return fmt.Errorf("sdn restore: missing state for node %d", i)
		}
		if err := s.RestoreState(states[i]); err != nil {
			return err
		}
	}
	return nil
}

// AdaptiveCellState is one cached neighbor cell-count entry.
type AdaptiveCellState struct {
	Node  topology.NodeID
	Cells int
}

// AdaptiveChildCellState is one listen-cell cache entry.
type AdaptiveChildCellState struct {
	Slot int64
	Node topology.NodeID
}

// AdaptiveStackState is the complete mutable state of one adaptive stack.
// Both caches are captured rather than recomputed on restore: they refresh
// only at maintenance ticks, so a restore-time recompute could be fresher
// than the interrupted run's cache and diverge from it.
type AdaptiveStackState struct {
	Router   rpl.RouterState
	Trickle  trickle.State
	RNGDraws uint64

	WantDIO      bool
	NextMaintain int64
	NextSolicit  int64
	Synced       bool

	TxCells        int
	IdleTicks      int
	FailsSinceTick int
	SentSinceTick  int

	// HasNeighborCells/HasChildCells distinguish nil caches (never
	// populated since construction or reset) from empty populated ones.
	HasNeighborCells bool
	NeighborCells    []AdaptiveCellState // sorted by node
	HasChildCells    bool
	ChildCells       []AdaptiveChildCellState // sorted by slot
}

// CaptureState snapshots the stack. It fails for stacks constructed with
// an external RNG (NewAdaptiveStack with a caller-owned rand.Rand): only
// BuildAdaptive-created stacks track their generator position.
func (s *AdaptiveStack) CaptureState() (*AdaptiveStackState, error) {
	if s.rngSrc == nil {
		return nil, fmt.Errorf("adaptive stack %d: not built with a checkpointable RNG (use controller.BuildAdaptive)", s.id)
	}
	st := &AdaptiveStackState{
		Router:         s.router.CaptureState(),
		Trickle:        s.tr.CaptureState(),
		RNGDraws:       s.rngSrc.Draws(),
		WantDIO:        s.wantDIO,
		NextMaintain:   int64(s.nextMaintain),
		NextSolicit:    int64(s.nextSolicit),
		Synced:         s.synced,
		TxCells:        s.txCells,
		IdleTicks:      s.idleTicks,
		FailsSinceTick: s.failsSinceTick,
		SentSinceTick:  s.sentSinceTick,
	}
	if s.neighborCells != nil {
		st.HasNeighborCells = true
		st.NeighborCells = make([]AdaptiveCellState, 0, len(s.neighborCells))
		for n, c := range s.neighborCells {
			st.NeighborCells = append(st.NeighborCells, AdaptiveCellState{Node: n, Cells: c})
		}
		sort.Slice(st.NeighborCells, func(i, j int) bool {
			return st.NeighborCells[i].Node < st.NeighborCells[j].Node
		})
	}
	if s.childCells != nil {
		st.HasChildCells = true
		st.ChildCells = make([]AdaptiveChildCellState, 0, len(s.childCells))
		for slot, id := range s.childCells {
			st.ChildCells = append(st.ChildCells, AdaptiveChildCellState{Slot: slot, Node: id})
		}
		sort.Slice(st.ChildCells, func(i, j int) bool {
			return st.ChildCells[i].Slot < st.ChildCells[j].Slot
		})
	}
	return st, nil
}

// RestoreState overlays a captured stack state onto a freshly built stack
// (same node, same configuration, same build seed).
func (s *AdaptiveStack) RestoreState(st *AdaptiveStackState) error {
	if s.rngSrc == nil {
		return fmt.Errorf("adaptive stack %d: not built with a checkpointable RNG (use controller.BuildAdaptive)", s.id)
	}
	s.router.RestoreState(st.Router)
	s.tr.RestoreState(st.Trickle)
	s.rngSrc.Reset(st.RNGDraws)
	s.wantDIO = st.WantDIO
	s.nextMaintain = sim.ASN(st.NextMaintain)
	s.nextSolicit = sim.ASN(st.NextSolicit)
	s.synced = st.Synced
	s.txCells = st.TxCells
	s.idleTicks = st.IdleTicks
	s.failsSinceTick = st.FailsSinceTick
	s.sentSinceTick = st.SentSinceTick
	if st.HasNeighborCells {
		s.neighborCells = make(map[topology.NodeID]int, len(st.NeighborCells))
		for _, c := range st.NeighborCells {
			s.neighborCells[c.Node] = c.Cells
		}
	} else {
		s.neighborCells = nil
	}
	if st.HasChildCells {
		s.childCells = make(map[int64]topology.NodeID, len(st.ChildCells))
		for _, c := range st.ChildCells {
			s.childCells[c.Slot] = c.Node
		}
	} else {
		s.childCells = nil
	}
	return nil
}

// CaptureState snapshots every stack of the network, indexed by node ID
// (entry 0 nil).
func (n *AdaptiveNetwork) CaptureState() ([]*AdaptiveStackState, error) {
	out := make([]*AdaptiveStackState, len(n.Stacks))
	for i, s := range n.Stacks {
		if s == nil {
			continue
		}
		st, err := s.CaptureState()
		if err != nil {
			return nil, err
		}
		out[i] = st
	}
	return out, nil
}

// RestoreState overlays captured stack states onto a freshly built network.
func (n *AdaptiveNetwork) RestoreState(states []*AdaptiveStackState) error {
	if len(states) != len(n.Stacks) {
		return fmt.Errorf("adaptive restore: %d stack states for %d stacks", len(states), len(n.Stacks))
	}
	for i, s := range n.Stacks {
		if s == nil {
			continue
		}
		if states[i] == nil {
			return fmt.Errorf("adaptive restore: missing state for node %d", i)
		}
		if err := s.RestoreState(states[i]); err != nil {
			return err
		}
	}
	return nil
}
