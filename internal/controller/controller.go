// Package controller hosts the pluggable controller-layer stacks the
// four-way comparison adds on top of the paper's three fixed protocols:
//
//   - adaptive: a distributed slotframe/cell allocator (HRL-TSCH style)
//     that grows and sheds per-link transmit cells from observed queue
//     depth and loss, over RPL routing — autonomous scheduling with a
//     reactive schedule instead of Orchestra's static hash.
//   - sdn: a centralized SDN-style controller node that periodically
//     collects link/neighbor state over in-band report slots, recomputes
//     routes (shortest path over the collected RSS graph) and slotframe
//     assignments centrally, and disseminates them in-band — so its
//     reconvergence cost after faults is modeled, not free.
//
// Both stacks implement mac.Protocol, keep all mutable state per node
// (the sharded scale engine runs nodes in parallel by spatial partition,
// so cross-node shared state would break the bit-identical-at-any-shard-
// count guarantee), and expose the same capture/restore surface as the
// existing stacks so snapshots and warm starts work unchanged.
package controller

import (
	"github.com/digs-net/digs/internal/topology"
)

// Channel offsets mirror the DiGS/Orchestra configuration so the
// comparison isolates routing/scheduling, not radio parameters.
const (
	ebChannelOffset      = 0
	sharedChannelOffset  = 1
	unicastChannelOffset = 2

	// unicastLanes spreads unicast cells over several channel offsets
	// derived from the cell owner's ID, so hash collisions in the cell
	// space land on different channels.
	unicastLanes = 12
)

// unicastLane returns the channel-offset lane of a node's unicast cells.
func unicastLane(id topology.NodeID) uint8 {
	return unicastChannelOffset + uint8((int64(id)*13)%unicastLanes)
}
