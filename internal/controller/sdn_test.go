package controller

import (
	"reflect"
	"testing"

	"github.com/digs-net/digs/internal/topology"
)

// TestReportWireRoundTrip drives the report payload both ways, including
// the RSS clamping to the one-byte attenuation field.
func TestReportWireRoundTrip(t *testing.T) {
	in := []SDNReportNeighbor{
		{Node: 1, RSS: -60},
		{Node: 70000, RSS: -91},
		{Node: 3, RSS: -255},
	}
	out, err := unmarshalReport(marshalReport(in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("report round-trip: got %+v want %+v", out, in)
	}

	// Out-of-range RSS clamps instead of wrapping.
	clamped, err := unmarshalReport(marshalReport([]SDNReportNeighbor{
		{Node: 2, RSS: -300}, {Node: 4, RSS: 10},
	}))
	if err != nil {
		t.Fatal(err)
	}
	if clamped[0].RSS != -255 || clamped[1].RSS != 0 {
		t.Fatalf("clamping failed: %+v", clamped)
	}

	// Truncated payloads are rejected, not misread.
	b := marshalReport(in)
	for _, bad := range [][]byte{nil, {}, b[:len(b)-1], append(append([]byte(nil), b...), 0)} {
		if _, err := unmarshalReport(bad); err == nil {
			t.Fatalf("unmarshalReport accepted %d bytes", len(bad))
		}
	}
}

// TestConfigWireRoundTrip drives the config payload both ways.
func TestConfigWireRoundTrip(t *testing.T) {
	cases := []struct {
		epoch    uint16
		parent   topology.NodeID
		children []topology.NodeID
	}{
		{1, 5, []topology.NodeID{2, 3, 70000}},
		{65535, 0, nil},
		{9, 1, []topology.NodeID{}},
	}
	for _, c := range cases {
		e, p, ch, err := unmarshalConfig(marshalConfig(c.epoch, c.parent, c.children))
		if err != nil {
			t.Fatal(err)
		}
		if e != c.epoch || p != c.parent || len(ch) != len(c.children) {
			t.Fatalf("config round-trip: got (%d,%d,%v) want %+v", e, p, ch, c)
		}
		for i := range ch {
			if ch[i] != c.children[i] {
				t.Fatalf("child %d: got %d want %d", i, ch[i], c.children[i])
			}
		}
	}
	b := marshalConfig(3, 1, []topology.NodeID{2})
	for _, bad := range [][]byte{nil, b[:6], b[:len(b)-1], append(append([]byte(nil), b...), 0)} {
		if _, _, _, err := unmarshalConfig(bad); err == nil {
			t.Fatalf("unmarshalConfig accepted %d bytes", len(bad))
		}
	}
}

// TestEpochNewer pins the lollipop semantics: forward progress and
// controller-restart jumps win; small regressions and replays lose.
func TestEpochNewer(t *testing.T) {
	cases := []struct {
		e, have uint16
		want    bool
	}{
		{1, 0, true},     // first config
		{5, 4, true},     // normal advance
		{5, 5, false},    // replay
		{4, 5, false},    // stale
		{5, 36, false},   // small regression: ignore
		{1, 40, true},    // huge regression: controller restarted
		{2, 65530, true},    // wraparound advance
		{65530, 2, false},   // small regression hidden by the wrap: ignore
		{100, 30000, true}, // huge backward jump: restart
	}
	for _, c := range cases {
		if got := epochNewer(c.e, c.have); got != c.want {
			t.Errorf("epochNewer(%d, %d) = %v, want %v", c.e, c.have, got, c.want)
		}
	}
}

// graphFromEdges builds the controller's adjacency view directly, the way
// buildGraph would from symmetrized reports.
func graphFromEdges(edges map[[2]topology.NodeID]float64) *sdnGraph {
	g := &sdnGraph{
		adj:   make(map[topology.NodeID][]sdnGraphEdge),
		index: make(map[topology.NodeID]struct{}),
	}
	add := func(n topology.NodeID) {
		if _, ok := g.index[n]; !ok {
			g.index[n] = struct{}{}
			g.nodes = append(g.nodes, n)
		}
	}
	for k, etx := range edges {
		add(k[0])
		add(k[1])
		g.adj[k[0]] = append(g.adj[k[0]], sdnGraphEdge{peer: k[1], etx: etx})
		g.adj[k[1]] = append(g.adj[k[1]], sdnGraphEdge{peer: k[0], etx: etx})
	}
	for i := range g.nodes {
		for j := i + 1; j < len(g.nodes); j++ {
			if g.nodes[j] < g.nodes[i] {
				g.nodes[i], g.nodes[j] = g.nodes[j], g.nodes[i]
			}
		}
	}
	for _, n := range g.nodes {
		a := g.adj[n]
		for i := range a {
			for j := i + 1; j < len(a); j++ {
				if a[j].peer < a[i].peer {
					a[i], a[j] = a[j], a[i]
				}
			}
		}
	}
	return g
}

// TestShortestPathsDeterministic proves the controller's route computation
// is a pure function of the graph: equal-cost ties break to the lower node
// ID, and repeated runs return identical predecessor maps.
func TestShortestPathsDeterministic(t *testing.T) {
	// 1 is the sink. 4 can reach it through 2 or 3 at identical cost; the
	// tie must break to 2 every time.
	g := graphFromEdges(map[[2]topology.NodeID]float64{
		{1, 2}: 1, {1, 3}: 1, {2, 4}: 1, {3, 4}: 1, {4, 5}: 2,
	})
	first := g.shortestPaths([]topology.NodeID{1})
	if first[4] != 2 {
		t.Fatalf("tie-break: node 4's predecessor is %d, want 2", first[4])
	}
	if first[5] != 4 || first[2] != 1 || first[3] != 1 {
		t.Fatalf("tree shape wrong: %v", first)
	}
	for i := 0; i < 50; i++ {
		if again := g.shortestPaths([]topology.NodeID{1}); !reflect.DeepEqual(again, first) {
			t.Fatalf("run %d diverged: %v vs %v", i, again, first)
		}
	}

	// Unreachable nodes get no predecessor and pathFrom reports nil.
	g2 := graphFromEdges(map[[2]topology.NodeID]float64{
		{1, 2}: 1, {8, 9}: 1,
	})
	prev := g2.shortestPaths([]topology.NodeID{1})
	if _, ok := prev[9]; ok {
		t.Fatal("disconnected node 9 got a predecessor")
	}
	if p := pathFrom(prev, 1, 9); p != nil {
		t.Fatalf("pathFrom to unreachable node: %v", p)
	}
	if p := pathFrom(prev, 1, 2); len(p) != 1 || p[0] != 2 {
		t.Fatalf("pathFrom(1→2) = %v", p)
	}
	if p := pathFrom(prev, 1, 1); p == nil || len(p) != 0 {
		t.Fatalf("pathFrom to self = %v", p)
	}
}

// TestSDNCellLayout pins the cell hash and its lane split so config
// changes that would silently desynchronize deployed snapshots fail here.
func TestSDNCellLayout(t *testing.T) {
	if got := sdnCell(9, 53); got != (9*37)%53 {
		t.Fatalf("sdnCell(9) = %d", got)
	}
	for id := topology.NodeID(1); id <= 300; id++ {
		lane := sdnCtrlLane(id)
		if lane < sdnCtrlChannelBase || lane >= sdnCtrlChannelBase+sdnCtrlLanes {
			t.Fatalf("ctrl lane %d out of range for node %d", lane, id)
		}
		dl := sdnDataLane(id)
		if dl < sdnDataChannelBase || dl >= sdnDataChannelBase+sdnDataLanes {
			t.Fatalf("data lane %d out of range for node %d", dl, id)
		}
	}
}
