package controller

import (
	"math/rand"
	"testing"

	"github.com/digs-net/digs/internal/rpl"
	"github.com/digs-net/digs/internal/topology"
)

func newTestAdaptive(t *testing.T) *AdaptiveStack {
	t.Helper()
	s, err := NewAdaptiveStack(2, false, DefaultAdaptiveConfig(), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestAdaptiveGrowShrink drives the allocator through its whole budget
// range: queue pressure and loss grow it one cell per tick up to MaxCells,
// sustained idleness sheds back down to MinCells, activity resets the
// idle streak.
func TestAdaptiveGrowShrink(t *testing.T) {
	s := newTestAdaptive(t)
	cfg := s.cfg
	if s.txCells != cfg.MinCells {
		t.Fatalf("fresh stack has %d cells, want MinCells=%d", s.txCells, cfg.MinCells)
	}

	// Queue pressure: one cell per tick, capped at MaxCells.
	s.queueLen = func() int { return cfg.GrowQueue }
	for i := 0; i < cfg.MaxCells+2; i++ {
		s.adapt(int64(1000 + i))
	}
	if s.txCells != cfg.MaxCells {
		t.Fatalf("after sustained pressure: %d cells, want MaxCells=%d", s.txCells, cfg.MaxCells)
	}

	// Idle: needs ShrinkIdle consecutive idle ticks per shed cell.
	s.queueLen = func() int { return 0 }
	ticks := 0
	for s.txCells > cfg.MinCells {
		s.adapt(int64(2000 + ticks))
		ticks++
		if ticks > cfg.ShrinkIdle*(cfg.MaxCells+1) {
			t.Fatalf("allocator never shed below %d cells", s.txCells)
		}
	}
	if ticks != cfg.ShrinkIdle*(cfg.MaxCells-cfg.MinCells) {
		t.Fatalf("shed %d cells in %d ticks, want %d", cfg.MaxCells-cfg.MinCells, ticks,
			cfg.ShrinkIdle*(cfg.MaxCells-cfg.MinCells))
	}

	// Loss also grows, even with an empty queue.
	s.failsSinceTick = cfg.GrowFails
	s.adapt(3000)
	if s.txCells != cfg.MinCells+1 {
		t.Fatalf("loss did not grow: %d cells", s.txCells)
	}
	if s.failsSinceTick != 0 || s.sentSinceTick != 0 {
		t.Fatal("tick counters not cleared")
	}

	// Activity without pressure holds the budget and resets the idle streak.
	s.idleTicks = cfg.ShrinkIdle - 1
	s.sentSinceTick = 1
	s.adapt(4000)
	if s.txCells != cfg.MinCells+1 || s.idleTicks != 0 {
		t.Fatalf("active tick: cells=%d idle=%d", s.txCells, s.idleTicks)
	}
}

// TestAdaptivePayloadRoundTrip pins the extended-DIO wire format.
func TestAdaptivePayloadRoundTrip(t *testing.T) {
	d := rpl.DIO{Rank: 512, PathETX: 2.5}
	b := adaptivePayload(d, 3)
	back, cells, err := splitAdaptivePayload(b)
	if err != nil {
		t.Fatal(err)
	}
	if back != d || cells != 3 {
		t.Fatalf("round-trip: got (%+v, %d)", back, cells)
	}
	// A zero cell count from the wire is floored to 1: every synced node
	// owns at least its base cell.
	if _, cells, err := splitAdaptivePayload(adaptivePayload(d, 0)); err != nil || cells != 1 {
		t.Fatalf("zero cells: (%d, %v)", cells, err)
	}
	for _, bad := range [][]byte{nil, b[:6], append(append([]byte(nil), b...), 0)} {
		if _, _, err := splitAdaptivePayload(bad); err == nil {
			t.Fatalf("splitAdaptivePayload accepted %d bytes", len(bad))
		}
	}
}

// TestAdaptiveCellSlots proves one node's cells stay distinct over the
// whole budget range for the default frame length.
func TestAdaptiveCellSlots(t *testing.T) {
	cfg := DefaultAdaptiveConfig()
	for id := topology.NodeID(1); id <= 300; id++ {
		seen := make(map[int64]bool, cfg.MaxCells)
		for j := 0; j < cfg.MaxCells; j++ {
			slot := adaptiveCellSlot(id, j, cfg.DataFrameLen)
			if slot < 0 || slot >= cfg.DataFrameLen {
				t.Fatalf("node %d cell %d out of frame: %d", id, j, slot)
			}
			if seen[slot] {
				t.Fatalf("node %d cells collide at slot %d", id, slot)
			}
			seen[slot] = true
		}
	}
}

// TestConfigValidation covers both stacks' config validators.
func TestConfigValidation(t *testing.T) {
	if err := DefaultAdaptiveConfig().Validate(); err != nil {
		t.Fatalf("default adaptive config invalid: %v", err)
	}
	if err := DefaultSDNConfig().Validate(); err != nil {
		t.Fatalf("default sdn config invalid: %v", err)
	}
	bad := DefaultAdaptiveConfig()
	bad.MaxCells = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("MaxCells=0 accepted")
	}
	collide := DefaultAdaptiveConfig()
	collide.DataFrameLen = 53 // stride 53 ≡ 0: every cell lands on one slot
	collide.MaxCells = 2
	if err := collide.Validate(); err == nil {
		t.Fatal("colliding cell layout accepted")
	}
}
