package controller

import (
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"github.com/digs-net/digs/internal/mac"
	"github.com/digs-net/digs/internal/sim"
	"github.com/digs-net/digs/internal/topology"
)

// SDNConfig holds the centralized controller's parameters.
//
// The model is deliberately honest about in-band cost: the controller is
// one radio node (the lowest-ID access point), every link-state report
// crosses the mesh hop by hop through dedicated control cells, and every
// recomputed configuration travels back the same way, source-routed over
// the graph the controller last collected. Nothing is teleported.
type SDNConfig struct {
	EBFrameLen   int64 // beacon slotframe (sync + hop gradient)
	CtrlFrameLen int64 // report/config slotframe (receiver-based cells)
	DataFrameLen int64 // data slotframe (sender-based cells)

	// ReportEvery is each node's link-state report period.
	ReportEvery time.Duration
	// RecomputeEvery is the controller's route/schedule recompute period.
	RecomputeEvery time.Duration
	// StaleAfter drops a node's report from the controller's view; a node
	// that stops reporting (crash) disappears from the graph after this.
	StaleAfter time.Duration
	// NeighborStale expires a node's local gradient/signal table entries.
	NeighborStale time.Duration
	// MaintainEvery is the local bookkeeping tick (gradient refresh,
	// report scheduling).
	MaintainEvery time.Duration

	// MaxNeighborsReported caps a report to the strongest links.
	MaxNeighborsReported int
	// MaxChildren caps a disseminated configuration's listen-cell list.
	MaxChildren int
	// CtrlQueueCap bounds a relay's pending control frames;
	// CtrlQueueCapController bounds the controller's dissemination queue.
	CtrlQueueCap           int
	CtrlQueueCapController int
	// MaxCtrlTries drops a control frame after that many failed hops.
	MaxCtrlTries int
	// DeadAckThreshold is the consecutive unacked data transmissions
	// after which a node declares its configured parent dead, drops out
	// of the routed set and raises an alarm report.
	DeadAckThreshold int
	// FullRefreshEvery re-disseminates every configuration (not just
	// changed ones) every that-many recompute epochs.
	FullRefreshEvery int
	// ControllerCells provisions that many receive cells at the controller
	// in the control slotframe (senders spread over them by their own ID).
	// One cell caps inbound reports at 1/CtrlFrameLen per slot — far below
	// what a full deployment offers — so the sink gets the extra bandwidth
	// a real SDN-WSAN root is dimensioned with.
	ControllerCells int
}

// DefaultSDNConfig returns the evaluation configuration.
func DefaultSDNConfig() SDNConfig {
	return SDNConfig{
		EBFrameLen:           557,
		CtrlFrameLen:         53,
		DataFrameLen:         151,
		ReportEvery:          10 * time.Second,
		RecomputeEvery:       15 * time.Second,
		StaleAfter:           90 * time.Second,
		NeighborStale:        60 * time.Second,
		MaintainEvery:        time.Second,
		MaxNeighborsReported: 16,
		MaxChildren:          64,
		CtrlQueueCap:         16,
		CtrlQueueCapController: 64,
		MaxCtrlTries:         8,
		DeadAckThreshold:     8,
		FullRefreshEvery:     4,
		ControllerCells:      4,
	}
}

// Validate checks the configuration.
func (c SDNConfig) Validate() error {
	if c.EBFrameLen <= 0 || c.CtrlFrameLen <= 0 || c.DataFrameLen <= 0 {
		return fmt.Errorf("sdn config: slotframe lengths must be positive (%d, %d, %d)",
			c.EBFrameLen, c.CtrlFrameLen, c.DataFrameLen)
	}
	if c.MaxNeighborsReported < 1 || c.MaxNeighborsReported > 255 {
		return fmt.Errorf("sdn config: max neighbors reported %d (want 1..255)", c.MaxNeighborsReported)
	}
	if c.MaxChildren < 1 || c.MaxChildren > 255 {
		return fmt.Errorf("sdn config: max children %d (want 1..255)", c.MaxChildren)
	}
	if c.CtrlQueueCap < 1 || c.CtrlQueueCapController < 1 {
		return fmt.Errorf("sdn config: control queue caps must be positive")
	}
	if c.DeadAckThreshold < 1 {
		return fmt.Errorf("sdn config: dead-ack threshold must be positive")
	}
	if c.FullRefreshEvery < 1 {
		return fmt.Errorf("sdn config: full refresh period must be positive")
	}
	if c.ControllerCells < 1 {
		return fmt.Errorf("sdn config: controller cells must be positive")
	}
	// The controller's j-th cell sits at stride 17 from the base cell; all
	// of them must be distinct modulo the control frame length.
	seen := make(map[int64]bool, c.ControllerCells)
	for j := 0; j < c.ControllerCells; j++ {
		slot := (int64(j) * 17) % c.CtrlFrameLen
		if seen[slot] {
			return fmt.Errorf("sdn config: %d controller cells collide in a %d-slot frame",
				c.ControllerCells, c.CtrlFrameLen)
		}
		seen[slot] = true
	}
	return nil
}

// sdn control-plane channel lanes: control cells hop on a small lane set
// derived from the cell owner, data cells on the remaining lanes.
const (
	sdnCtrlChannelBase = 1
	sdnCtrlLanes       = 4
	sdnDataChannelBase = sdnCtrlChannelBase + sdnCtrlLanes
	sdnDataLanes       = 11
)

func sdnCtrlLane(owner topology.NodeID) uint8 {
	return sdnCtrlChannelBase + uint8((int64(owner)*11)%sdnCtrlLanes)
}

func sdnDataLane(owner topology.NodeID) uint8 {
	return sdnDataChannelBase + uint8((int64(owner)*13)%sdnDataLanes)
}

// sdnCell is the receiver-based control cell / sender-based data cell of
// a node.
func sdnCell(id topology.NodeID, frameLen int64) int64 {
	return (int64(id) * 37) % frameLen
}

// ctrlCellTo is the control cell a frame from this node to dst uses. The
// controller owns ControllerCells receive cells (stride 17 apart in the
// frame) and senders spread over them by their own ID; every other node
// owns exactly one.
func (s *SDNStack) ctrlCellTo(dst topology.NodeID) int64 {
	base := sdnCell(dst, s.cfg.CtrlFrameLen)
	if dst != s.controllerID || s.cfg.ControllerCells <= 1 {
		return base
	}
	j := int64(s.id) % int64(s.cfg.ControllerCells)
	return (base + j*17) % s.cfg.CtrlFrameLen
}

// ownCtrlCell reports whether offset is one of this node's receive cells.
func (s *SDNStack) ownCtrlCell(offset int64) bool {
	base := sdnCell(s.id, s.cfg.CtrlFrameLen)
	if !s.controller() {
		return offset == base
	}
	for j := int64(0); j < int64(s.cfg.ControllerCells); j++ {
		if offset == (base+j*17)%s.cfg.CtrlFrameLen {
			return true
		}
	}
	return false
}

// sdnHopsUnknown marks a node that has no path-to-controller estimate yet.
const sdnHopsUnknown = 255

// --- wire formats (report and config payloads) ---

// marshalReport encodes [n][id u32, -rss u8]*: the reporter's strongest
// observed links.
func marshalReport(neigh []SDNReportNeighbor) []byte {
	b := make([]byte, 1, 1+5*len(neigh))
	b[0] = byte(len(neigh))
	for _, e := range neigh {
		var idb [4]byte
		binary.BigEndian.PutUint32(idb[:], uint32(e.Node))
		b = append(b, idb[:]...)
		r := -e.RSS
		if r < 0 {
			r = 0
		}
		if r > 255 {
			r = 255
		}
		b = append(b, byte(r))
	}
	return b
}

func unmarshalReport(b []byte) ([]SDNReportNeighbor, error) {
	if len(b) < 1 {
		return nil, fmt.Errorf("sdn report: empty payload")
	}
	n := int(b[0])
	if len(b) != 1+5*n {
		return nil, fmt.Errorf("sdn report: %d bytes for %d entries", len(b), n)
	}
	out := make([]SDNReportNeighbor, n)
	for i := 0; i < n; i++ {
		off := 1 + 5*i
		out[i].Node = topology.NodeID(binary.BigEndian.Uint32(b[off : off+4]))
		out[i].RSS = -float64(b[off+4])
	}
	return out, nil
}

// marshalConfig encodes [epoch u16][parent u32][n u8][child u32]*.
func marshalConfig(epoch uint16, parent topology.NodeID, children []topology.NodeID) []byte {
	b := make([]byte, 7, 7+4*len(children))
	binary.BigEndian.PutUint16(b[0:2], epoch)
	binary.BigEndian.PutUint32(b[2:6], uint32(parent))
	b[6] = byte(len(children))
	for _, c := range children {
		var cb [4]byte
		binary.BigEndian.PutUint32(cb[:], uint32(c))
		b = append(b, cb[:]...)
	}
	return b
}

func unmarshalConfig(b []byte) (epoch uint16, parent topology.NodeID, children []topology.NodeID, err error) {
	if len(b) < 7 {
		return 0, 0, nil, fmt.Errorf("sdn config: %d bytes, want >= 7", len(b))
	}
	n := int(b[6])
	if len(b) != 7+4*n {
		return 0, 0, nil, fmt.Errorf("sdn config: %d bytes for %d children", len(b), n)
	}
	epoch = binary.BigEndian.Uint16(b[0:2])
	parent = topology.NodeID(binary.BigEndian.Uint32(b[2:6]))
	if n > 0 {
		children = make([]topology.NodeID, n)
		for i := range children {
			children[i] = topology.NodeID(binary.BigEndian.Uint32(b[7+4*i : 11+4*i]))
		}
	}
	return epoch, parent, children, nil
}

// epochNewer compares config epochs with wraparound; a huge backward jump
// reads as a controller restart and is accepted too (lollipop-style), so a
// rebooted controller regains authority without waiting out the sequence
// space.
func epochNewer(e, have uint16) bool {
	d := int16(e - have)
	return d > 0 || d < -32
}

// --- per-node tables ---

type sdnHopsEntry struct {
	hops  uint8
	heard sim.ASN
}

type sdnRSSEntry struct {
	rss   float64
	heard sim.ASN
}

type sdnCtrlEntry struct {
	frame *sim.Frame
	tries int
	// notBefore delays the next transmission attempt: deterministic,
	// sender-ID-salted backoff so two relays aiming at the same control
	// cell do not collide in lockstep forever.
	notBefore sim.ASN
}

type sdnReportEntry struct {
	asn   sim.ASN
	neigh []SDNReportNeighbor
}

type sdnNodeConfig struct {
	parent   topology.NodeID
	children []topology.NodeID // sorted ascending
}

func sameConfig(a, b sdnNodeConfig) bool {
	if a.parent != b.parent || len(a.children) != len(b.children) {
		return false
	}
	for i := range a.children {
		if a.children[i] != b.children[i] {
			return false
		}
	}
	return true
}

// SDNStack is one node's stack instance. Exactly one node per network —
// the lowest-ID access point — runs the controller role; all controller
// state lives inside that node's stack, so the sharded engine's
// no-cross-node-mutation rule holds.
type SDNStack struct {
	id           topology.NodeID
	isAP         bool
	controllerID topology.NodeID
	roster       int               // topology node count (provisioned, like the controller address)
	aps          []topology.NodeID // sink set, sorted (provisioned)
	cfg          SDNConfig
	combiner     *mac.Combiner

	synced bool

	// Gradient toward the controller (from beacon hop counts): used only
	// to route reports before/around a configured tree.
	hops    map[topology.NodeID]sdnHopsEntry
	uplink  topology.NodeID
	ownHops uint8

	// Observed link table (from overheard beacons in discovery slots).
	rss map[topology.NodeID]sdnRSSEntry

	nextMaintain sim.ASN
	nextReport   sim.ASN

	// Configured data plane (pushed by the controller).
	cfgEpoch   uint16
	parent     topology.NodeID
	children   []topology.NodeID // sorted
	childCells map[int64]topology.NodeID
	// consecParentFails counts consecutive unacked data transmissions;
	// crossing DeadAckThreshold declares the parent dead.
	consecParentFails int

	ctrlQ []sdnCtrlEntry

	// onParentChange reports data-plane route changes to telemetry.
	onParentChange func(asn sim.ASN, parent topology.NodeID)

	// --- controller-only state (nil maps on every other node) ---
	reports       map[topology.NodeID]sdnReportEntry
	epoch         uint16
	epochCount    int64
	nextRecompute sim.ASN
	lastSent      map[topology.NodeID]sdnNodeConfig
}

var _ mac.Protocol = (*SDNStack)(nil)

// SDNReportNeighbor is one link observation inside a report.
type SDNReportNeighbor struct {
	Node topology.NodeID
	RSS  float64
}

// NewSDNStack builds one node's stack. controllerID is the elected
// controller (lowest-ID access point), roster the deployment's node count
// and aps the sink set; all are provisioning-time constants, like a real
// controller address.
func NewSDNStack(id topology.NodeID, isAP bool, controllerID topology.NodeID,
	roster int, aps []topology.NodeID, cfg SDNConfig) (*SDNStack, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sortedAPs := append([]topology.NodeID(nil), aps...)
	sort.Slice(sortedAPs, func(i, j int) bool { return sortedAPs[i] < sortedAPs[j] })
	s := &SDNStack{
		id:           id,
		isAP:         isAP,
		controllerID: controllerID,
		roster:       roster,
		aps:          sortedAPs,
		cfg:          cfg,
		ownHops:      sdnHopsUnknown,
	}
	if s.controller() {
		s.ownHops = 0
		s.reports = make(map[topology.NodeID]sdnReportEntry)
		s.lastSent = make(map[topology.NodeID]sdnNodeConfig)
	}
	s.combiner = mac.NewCombiner(
		mac.Slotframe{Length: cfg.EBFrameLen, Priority: 0, ChannelOffset: ebChannelOffset,
			Role: s.ebRole},
		mac.Slotframe{Length: cfg.CtrlFrameLen, Priority: 1, ChannelOffset: sdnCtrlChannelBase,
			Role: s.ctrlRole},
		mac.Slotframe{Length: cfg.DataFrameLen, Priority: 2, ChannelOffset: sdnDataChannelBase,
			Role: s.dataRole},
		// Discovery fills otherwise-idle slots with listening on other
		// nodes' beacon slots: that is how the link table the controller
		// collects gets populated. Lowest priority — it never displaces a
		// scheduled cell.
		mac.Slotframe{Length: cfg.EBFrameLen, Priority: 3, ChannelOffset: ebChannelOffset,
			Role: s.discoveryRole},
	)
	return s, nil
}

// controller reports whether this node runs the controller role.
func (s *SDNStack) controller() bool { return s.id == s.controllerID }

// Controller exposes the role for probes and tests.
func (s *SDNStack) Controller() bool { return s.controller() }

// Parent exposes the configured data-plane parent.
func (s *SDNStack) Parent() topology.NodeID { return s.parent }

// Configured reports whether the node holds a routed data-plane state:
// access points sink traffic by construction, everyone else needs a
// controller-assigned parent.
func (s *SDNStack) Configured() bool { return s.isAP || s.parent != 0 }

// KnownReports exposes how many fresh node reports the controller holds
// (0 on non-controller nodes).
func (s *SDNStack) KnownReports() int { return len(s.reports) }

// Reset implements mac.Resetter: full state loss, as after a reboot
// without persistent storage. Configuration, identity and the telemetry
// callback survive.
func (s *SDNStack) Reset() {
	s.synced = false
	s.hops = nil
	s.uplink = 0
	s.ownHops = sdnHopsUnknown
	s.rss = nil
	s.nextMaintain = 0
	s.nextReport = 0
	s.cfgEpoch = 0
	s.parent = 0
	s.children = nil
	s.childCells = nil
	s.consecParentFails = 0
	s.ctrlQ = nil
	if s.controller() {
		s.ownHops = 0
		s.reports = make(map[topology.NodeID]sdnReportEntry)
		s.epoch = 0
		s.epochCount = 0
		s.nextRecompute = 0
		s.lastSent = make(map[topology.NodeID]sdnNodeConfig)
	}
}

// timeSource is the node this node tracks beacons from: the configured
// parent when routed, the report uplink while bootstrapping.
func (s *SDNStack) timeSource() topology.NodeID {
	if s.parent != 0 {
		return s.parent
	}
	return s.uplink
}

func (s *SDNStack) ebRole(offset int64, _ sim.ASN) (mac.SlotRole, int) {
	if offset == int64(s.id-1)%s.cfg.EBFrameLen {
		return mac.RoleTxEB, 0
	}
	if ts := s.timeSource(); ts != 0 && offset == int64(ts-1)%s.cfg.EBFrameLen {
		return mac.RoleRxEB, 0
	}
	return mac.RoleSleep, 0
}

// ctrlHead returns the control-queue head if it is eligible at this slot.
func (s *SDNStack) ctrlHead(asn sim.ASN) *sdnCtrlEntry {
	if len(s.ctrlQ) == 0 {
		return nil
	}
	e := &s.ctrlQ[0]
	if asn < e.notBefore {
		return nil
	}
	return e
}

func (s *SDNStack) ctrlRole(offset int64, asn sim.ASN) (mac.SlotRole, int) {
	if e := s.ctrlHead(asn); e != nil && offset == s.ctrlCellTo(e.frame.Dst) {
		return mac.RoleShared, 0
	}
	if s.ownCtrlCell(offset) {
		return mac.RoleShared, 0
	}
	return mac.RoleSleep, 0
}

func (s *SDNStack) dataRole(offset int64, _ sim.ASN) (mac.SlotRole, int) {
	if s.parent != 0 && offset == sdnCell(s.id, s.cfg.DataFrameLen) {
		return mac.RoleTxData, 1
	}
	if _, ok := s.childCells[offset]; ok {
		return mac.RoleRxData, 0
	}
	return mac.RoleSleep, 0
}

func (s *SDNStack) discoveryRole(offset int64, _ sim.ASN) (mac.SlotRole, int) {
	// Every deployment node k beacons at (k-1) % EBFrameLen; listen on
	// any occupied beacon slot that is not otherwise scheduled.
	if offset < int64(s.roster) && offset != int64(s.id-1)%s.cfg.EBFrameLen {
		return mac.RoleRxEB, 0
	}
	return mac.RoleSleep, 0
}

// maintain is the local bookkeeping tick.
func (s *SDNStack) maintain(asn sim.ASN) {
	stale := asn - sim.SlotsFor(s.cfg.NeighborStale)
	for n, e := range s.hops {
		if e.heard < stale {
			delete(s.hops, n)
		}
	}
	for n, e := range s.rss {
		if e.heard < stale {
			delete(s.rss, n)
		}
	}
	// Recompute the report uplink: the freshest-gradient neighbor with
	// the fewest hops to the controller. Equal-hop candidates are ranked
	// by an ID-salted key so different nodes spread over different relays
	// instead of dogpiling the lowest-ID one.
	if !s.controller() {
		best := topology.NodeID(0)
		bestHops := uint8(sdnHopsUnknown)
		ids := make([]topology.NodeID, 0, len(s.hops))
		for n := range s.hops {
			ids = append(ids, n)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		salt := func(n topology.NodeID) int64 {
			return (int64(n)*31 + int64(s.id)*7) % 97
		}
		for _, n := range ids {
			h := s.hops[n].hops
			if h < bestHops {
				bestHops = h
				best = n
			} else if h == bestHops && best != 0 && salt(n) < salt(best) {
				best = n
			}
		}
		s.uplink = best
		if best == 0 {
			s.ownHops = sdnHopsUnknown
		} else if bestHops >= sdnHopsUnknown-1 {
			s.ownHops = sdnHopsUnknown - 1
		} else {
			s.ownHops = bestHops + 1
		}
		// Report when due and routable.
		if s.synced && s.uplink != 0 && asn >= s.nextReport {
			s.enqueueReport(asn)
			s.nextReport = asn + sim.SlotsFor(s.cfg.ReportEvery)
		}
	}
}

// enqueueReport packages the strongest observed links into a report frame
// headed for the controller via the gradient uplink.
func (s *SDNStack) enqueueReport(asn sim.ASN) {
	neigh := make([]SDNReportNeighbor, 0, len(s.rss))
	for n, e := range s.rss {
		neigh = append(neigh, SDNReportNeighbor{Node: n, RSS: e.rss})
	}
	// Strongest first, ties to the lowest ID, capped.
	sort.Slice(neigh, func(i, j int) bool {
		if neigh[i].RSS != neigh[j].RSS {
			return neigh[i].RSS > neigh[j].RSS
		}
		return neigh[i].Node < neigh[j].Node
	})
	if len(neigh) > s.cfg.MaxNeighborsReported {
		neigh = neigh[:s.cfg.MaxNeighborsReported]
	}
	s.enqueueCtrl(&sim.Frame{
		Kind:    sim.KindReport,
		Src:     s.id,
		Dst:     s.uplink,
		Origin:  s.id,
		BornASN: asn,
		Payload: marshalReport(neigh),
	})
}

// enqueueCtrl appends to the bounded control queue; overflow drops the
// newcomer (deterministically — the periodic report/refresh machinery
// retries later). It reports whether the frame was admitted.
func (s *SDNStack) enqueueCtrl(f *sim.Frame) bool {
	limit := s.cfg.CtrlQueueCap
	if s.controller() {
		limit = s.cfg.CtrlQueueCapController
	}
	if len(s.ctrlQ) >= limit {
		return false
	}
	s.ctrlQ = append(s.ctrlQ, sdnCtrlEntry{frame: f})
	return true
}

// Assignment implements mac.Protocol.
func (s *SDNStack) Assignment(asn sim.ASN) mac.Assignment {
	if asn >= s.nextMaintain {
		s.nextMaintain = asn + sim.SlotsFor(s.cfg.MaintainEvery)
		s.maintain(asn)
	}
	if s.controller() && s.synced && asn >= s.nextRecompute {
		s.nextRecompute = asn + sim.SlotsFor(s.cfg.RecomputeEvery)
		s.recompute(asn)
	}
	a := s.combiner.Assignment(asn)
	switch a.Role {
	case mac.RoleShared:
		// Control cells hop on the cell owner's lane: the target's when
		// transmitting, ours when listening.
		if e := s.ctrlHead(asn); e != nil &&
			asn%s.cfg.CtrlFrameLen == s.ctrlCellTo(e.frame.Dst) {
			a.ChannelOffset = sdnCtrlLane(e.frame.Dst)
		} else {
			a.ChannelOffset = sdnCtrlLane(s.id)
		}
	case mac.RoleTxData:
		a.ChannelOffset = sdnDataLane(s.id)
	case mac.RoleRxData:
		if c, ok := s.childCells[asn%s.cfg.DataFrameLen]; ok {
			a.ChannelOffset = sdnDataLane(c)
		}
	}
	return a
}

// OnSynced implements mac.Protocol.
func (s *SDNStack) OnSynced(asn sim.ASN) {
	s.synced = true
	s.nextMaintain = asn
	// Stagger first reports by node ID so a freshly formed network does
	// not dogpile the gradient in one slotframe.
	s.nextReport = asn + 200 + (int64(s.id)*31)%sim.SlotsFor(s.cfg.ReportEvery)
	if s.controller() {
		s.nextRecompute = asn + sim.SlotsFor(s.cfg.RecomputeEvery)
	}
}

// EBPayload implements mac.Protocol: beacons carry the hop distance to
// the controller, which is what bootstraps report routing.
func (s *SDNStack) EBPayload() []byte {
	return []byte{s.ownHops}
}

// OnFrame implements mac.Protocol.
func (s *SDNStack) OnFrame(asn sim.ASN, f *sim.Frame, rssi float64) {
	switch f.Kind {
	case sim.KindEB:
		if s.rss == nil {
			s.rss = make(map[topology.NodeID]sdnRSSEntry)
		}
		s.rss[f.Src] = sdnRSSEntry{rss: rssi, heard: asn}
		if len(f.Payload) == 1 && f.Payload[0] != sdnHopsUnknown {
			if s.hops == nil {
				s.hops = make(map[topology.NodeID]sdnHopsEntry)
			}
			s.hops[f.Src] = sdnHopsEntry{hops: f.Payload[0], heard: asn}
		}
	case sim.KindReport:
		if f.Dst != s.id {
			return
		}
		if s.controller() {
			s.absorbReport(asn, f)
			return
		}
		// Relay toward the controller via our current uplink. A relay
		// with no uplink (gradient hole) drops; the origin re-reports.
		if s.uplink == 0 || f.Origin == s.id {
			return
		}
		s.enqueueCtrl(&sim.Frame{
			Kind:    sim.KindReport,
			Src:     s.id,
			Dst:     s.uplink,
			Origin:  f.Origin,
			BornASN: f.BornASN,
			Payload: append([]byte(nil), f.Payload...),
		})
	case sim.KindConfig:
		if f.Dst != s.id {
			return
		}
		if len(f.Route) == 0 {
			s.applyConfig(asn, f.Payload)
			return
		}
		// Source-routed relay: peel the next hop off the remaining route.
		next := f.Route[0]
		s.enqueueCtrl(&sim.Frame{
			Kind:    sim.KindConfig,
			Src:     s.id,
			Dst:     next,
			Origin:  f.Origin,
			BornASN: f.BornASN,
			Route:   append([]topology.NodeID(nil), f.Route[1:]...),
			Payload: append([]byte(nil), f.Payload...),
		})
	}
}

// absorbReport ingests one node's link-state report.
func (s *SDNStack) absorbReport(asn sim.ASN, f *sim.Frame) {
	neigh, err := unmarshalReport(f.Payload)
	if err != nil {
		return
	}
	s.reports[f.Origin] = sdnReportEntry{asn: asn, neigh: neigh}
}

// applyConfig installs a controller-pushed route/schedule assignment.
func (s *SDNStack) applyConfig(asn sim.ASN, payload []byte) {
	epoch, parent, children, err := unmarshalConfig(payload)
	if err != nil {
		return
	}
	if s.cfgEpoch != 0 && !epochNewer(epoch, s.cfgEpoch) {
		return
	}
	oldParent := s.parent
	s.cfgEpoch = epoch
	s.parent = parent
	s.children = children
	s.childCells = make(map[int64]topology.NodeID, len(children))
	for _, c := range children {
		s.childCells[sdnCell(c, s.cfg.DataFrameLen)] = c
	}
	s.consecParentFails = 0
	if parent != oldParent && s.onParentChange != nil {
		s.onParentChange(asn, parent)
	}
}

// loseParent declares the configured parent dead after sustained data
// loss: the node leaves the routed set (honest time-to-repair — it is
// broken until the controller reroutes it) and raises an alarm report
// with the dead link scrubbed.
func (s *SDNStack) loseParent(asn sim.ASN) {
	dead := s.parent
	s.parent = 0
	s.consecParentFails = 0
	delete(s.rss, dead)
	delete(s.hops, dead)
	s.nextReport = asn // alarm: report at the next maintenance tick
	s.nextMaintain = asn
	if s.onParentChange != nil {
		s.onParentChange(asn, 0)
	}
}

// SharedFrame implements mac.Protocol: transmit the control-queue head
// when this slot is its target's cell, listen otherwise.
func (s *SDNStack) SharedFrame(asn sim.ASN) (*sim.Frame, bool) {
	e := s.ctrlHead(asn)
	if e == nil || asn%s.cfg.CtrlFrameLen != s.ctrlCellTo(e.frame.Dst) {
		return nil, false
	}
	return e.frame, true
}

// NextHop implements mac.Protocol: strictly the controller-assigned
// parent. No local repair — rerouting is the controller's job, and its
// latency is the point of the comparison.
func (s *SDNStack) NextHop(sim.ASN, int) (topology.NodeID, bool) {
	return s.parent, s.parent != 0
}

// OnTxResult implements mac.Protocol.
func (s *SDNStack) OnTxResult(asn sim.ASN, f *sim.Frame, to topology.NodeID, acked bool) {
	switch f.Kind {
	case sim.KindData:
		if acked {
			s.consecParentFails = 0
		} else if to == s.parent && s.parent != 0 {
			s.consecParentFails++
			if s.consecParentFails >= s.cfg.DeadAckThreshold {
				s.loseParent(asn)
			}
		}
	case sim.KindReport, sim.KindConfig:
		if len(s.ctrlQ) == 0 || s.ctrlQ[0].frame != f {
			return
		}
		if acked {
			s.ctrlQ = s.ctrlQ[1:]
			return
		}
		e := &s.ctrlQ[0]
		e.tries++
		if e.tries >= s.cfg.MaxCtrlTries {
			s.ctrlQ = s.ctrlQ[1:]
			return
		}
		// Deterministic ID-salted backoff: de-syncs relays that keep
		// colliding in the same receiver cell.
		e.notBefore = asn + 1 + (int64(s.id)*7+int64(e.tries)*13)%(3*s.cfg.CtrlFrameLen)
	}
}
