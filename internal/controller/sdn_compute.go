package controller

import (
	"math"
	"sort"

	"github.com/digs-net/digs/internal/link"
	"github.com/digs-net/digs/internal/sim"
	"github.com/digs-net/digs/internal/topology"
)

// This file is the controller role's brain: assemble the graph the
// reports describe, run shortest-path over it, and turn the result into
// per-node configurations disseminated in-band. It runs inside the
// controller node's own Assignment, so the sharded engine's per-node
// isolation holds — the cost of collection and dissemination is paid in
// radio slots like everything else.

// sdnGraph is the adjacency view assembled from the collected reports.
type sdnGraph struct {
	nodes []topology.NodeID                      // sorted
	adj   map[topology.NodeID][]sdnGraphEdge     // per node, sorted by peer
	index map[topology.NodeID]struct{}           // membership
}

type sdnGraphEdge struct {
	peer topology.NodeID
	etx  float64
}

// buildGraph symmetrizes the reported link observations (strongest
// direction wins) and weights edges by the RSS→ETX map the distributed
// stacks also start from.
func (s *SDNStack) buildGraph(asn sim.ASN) *sdnGraph {
	type pair struct{ a, b topology.NodeID }
	best := make(map[pair]float64)
	note := func(a, b topology.NodeID, rss float64) {
		if a == 0 || b == 0 || a == b || a == topology.Broadcast || b == topology.Broadcast {
			return
		}
		if b < a {
			a, b = b, a
		}
		k := pair{a, b}
		if cur, ok := best[k]; !ok || rss > cur {
			best[k] = rss
		}
	}
	for n, rep := range s.reports {
		for _, e := range rep.neigh {
			note(n, e.Node, e.RSS)
		}
	}
	// The controller is a node too: its own observations are the one
	// report that never has to cross the mesh.
	stale := asn - sim.SlotsFor(s.cfg.NeighborStale)
	for n, e := range s.rss {
		if e.heard >= stale {
			note(s.id, n, e.rss)
		}
	}

	g := &sdnGraph{
		adj:   make(map[topology.NodeID][]sdnGraphEdge),
		index: make(map[topology.NodeID]struct{}),
	}
	add := func(n topology.NodeID) {
		if _, ok := g.index[n]; !ok {
			g.index[n] = struct{}{}
			g.nodes = append(g.nodes, n)
		}
	}
	add(s.id)
	for k, rss := range best {
		etx := link.InitialETX(rss)
		add(k.a)
		add(k.b)
		g.adj[k.a] = append(g.adj[k.a], sdnGraphEdge{peer: k.b, etx: etx})
		g.adj[k.b] = append(g.adj[k.b], sdnGraphEdge{peer: k.a, etx: etx})
	}
	sort.Slice(g.nodes, func(i, j int) bool { return g.nodes[i] < g.nodes[j] })
	for _, n := range g.nodes {
		a := g.adj[n]
		sort.Slice(a, func(i, j int) bool { return a[i].peer < a[j].peer })
	}
	return g
}

// shortestPaths is a deterministic O(V²) multi-source Dijkstra: sources
// start at distance 0, ties break to the lower node ID, neighbors relax
// in sorted order. Returns predecessor (toward the nearest source) per
// reached node.
func (g *sdnGraph) shortestPaths(sources []topology.NodeID) map[topology.NodeID]topology.NodeID {
	dist := make(map[topology.NodeID]float64, len(g.nodes))
	prev := make(map[topology.NodeID]topology.NodeID, len(g.nodes))
	done := make(map[topology.NodeID]bool, len(g.nodes))
	for _, n := range g.nodes {
		dist[n] = math.Inf(1)
	}
	for _, src := range sources {
		if _, ok := g.index[src]; ok {
			dist[src] = 0
		}
	}
	for {
		u := topology.NodeID(0)
		best := math.Inf(1)
		for _, n := range g.nodes { // sorted: deterministic tie-break
			if !done[n] && dist[n] < best {
				best = dist[n]
				u = n
			}
		}
		if u == 0 {
			break
		}
		done[u] = true
		for _, e := range g.adj[u] {
			if nd := best + e.etx; nd < dist[e.peer] {
				dist[e.peer] = nd
				prev[e.peer] = u
			}
		}
	}
	return prev
}

// pathFrom walks predecessors back from target to the (single) source and
// returns the forward hop list source→…→target, excluding the source. A
// nil return means the target is unreachable in the collected graph.
func pathFrom(prev map[topology.NodeID]topology.NodeID, source, target topology.NodeID) []topology.NodeID {
	if target == source {
		return []topology.NodeID{}
	}
	var rev []topology.NodeID
	for at := target; at != source; {
		p, ok := prev[at]
		if !ok || len(rev) > len(prev)+1 {
			return nil
		}
		rev = append(rev, at)
		at = p
	}
	out := make([]topology.NodeID, len(rev))
	for i, n := range rev {
		out[len(rev)-1-i] = n
	}
	return out
}

// recompute is the controller's periodic epoch: prune stale reports,
// rebuild the graph, recompute the routing tree toward the sinks, and
// queue configuration pushes for every node whose assignment changed
// (everyone, on full-refresh epochs). Dissemination rides the control
// slotframe hop by hop, so reconvergence takes as long as the radio
// takes — the quantity digs-chaos measures.
func (s *SDNStack) recompute(asn sim.ASN) {
	stale := asn - sim.SlotsFor(s.cfg.StaleAfter)
	for n, e := range s.reports {
		if e.asn < stale {
			delete(s.reports, n)
		}
	}
	g := s.buildGraph(asn)

	// Routing tree: every node's parent is its predecessor toward the
	// nearest access point.
	treePrev := g.shortestPaths(s.aps)
	children := make(map[topology.NodeID][]topology.NodeID)
	for _, n := range g.nodes {
		if p, ok := treePrev[n]; ok && p != 0 {
			children[p] = append(children[p], n)
		}
	}
	for p := range children {
		c := children[p]
		sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
		if len(c) > s.cfg.MaxChildren {
			c = c[:s.cfg.MaxChildren]
		}
		children[p] = c
	}
	isAP := make(map[topology.NodeID]bool, len(s.aps))
	for _, ap := range s.aps {
		isAP[ap] = true
	}

	// Dissemination paths: source-routed from the controller over the
	// same collected graph.
	dissemPrev := g.shortestPaths([]topology.NodeID{s.id})

	s.epoch++
	if s.epoch == 0 {
		s.epoch = 1
	}
	s.epochCount++
	fullRefresh := s.epochCount%int64(s.cfg.FullRefreshEvery) == 1

	for _, target := range g.nodes {
		cfg := sdnNodeConfig{children: children[target]}
		if !isAP[target] {
			cfg.parent = treePrev[target]
		}
		if target == s.id {
			// The controller configures itself without spending slots.
			s.applyConfig(asn, marshalConfig(s.epoch, cfg.parent, cfg.children))
			s.lastSent[target] = cfg
			continue
		}
		if cfg.parent == 0 && !isAP[target] {
			// Unreachable from the sinks in the collected graph: nothing
			// useful to push.
			continue
		}
		if !fullRefresh {
			if last, ok := s.lastSent[target]; ok && sameConfig(last, cfg) {
				continue
			}
		}
		path := pathFrom(dissemPrev, s.id, target)
		if len(path) == 0 {
			continue
		}
		f := &sim.Frame{
			Kind:    sim.KindConfig,
			Src:     s.id,
			Dst:     path[0],
			Origin:  target,
			BornASN: asn,
			Payload: marshalConfig(s.epoch, cfg.parent, cfg.children),
		}
		if len(path) > 1 {
			f.Route = append([]topology.NodeID(nil), path[1:]...)
		}
		if s.enqueueCtrl(f) {
			s.lastSent[target] = cfg
		}
	}
}
