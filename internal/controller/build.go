package controller

import (
	"fmt"
	"math/rand"

	"github.com/digs-net/digs/internal/detrand"
	"github.com/digs-net/digs/internal/invariant"
	"github.com/digs-net/digs/internal/mac"
	"github.com/digs-net/digs/internal/sim"
	"github.com/digs-net/digs/internal/telemetry"
	"github.com/digs-net/digs/internal/topology"
)

// SDNNetwork bundles the per-node MAC and SDN stack instances running over
// one simulated network.
type SDNNetwork struct {
	Nodes  []*mac.Node // indexed by node ID, entry 0 nil
	Stacks []*SDNStack // indexed by node ID, entry 0 nil
}

// BuildSDN attaches an SDN stack to every node of the network's topology.
// The lowest-ID access point runs the controller role; the others are
// plain switches that report links up and accept configurations down.
func BuildSDN(nw *sim.Network, cfg SDNConfig, macCfg mac.Config) (*SDNNetwork, error) {
	topo := nw.Topology()
	aps := topo.APs()
	if len(aps) == 0 {
		return nil, fmt.Errorf("sdn build: topology has no access points")
	}
	controllerID := aps[0]
	for _, ap := range aps {
		if ap < controllerID {
			controllerID = ap
		}
	}
	out := &SDNNetwork{
		Nodes:  make([]*mac.Node, topo.N()+1),
		Stacks: make([]*SDNStack, topo.N()+1),
	}
	for i := 1; i <= topo.N(); i++ {
		id := topology.NodeID(i)
		stack, err := NewSDNStack(id, topo.IsAP(id), controllerID, topo.N(), aps, cfg)
		if err != nil {
			return nil, err
		}
		node := mac.NewNode(id, topo.IsAP(id), stack, macCfg)
		if err := nw.Attach(node); err != nil {
			return nil, fmt.Errorf("sdn build: %w", err)
		}
		out.Nodes[i] = node
		out.Stacks[i] = stack
	}
	return out, nil
}

// OnDeliver installs the sink callback on every access point.
func (n *SDNNetwork) OnDeliver(fn func(asn sim.ASN, f *sim.Frame)) {
	for _, node := range n.Nodes[1:] {
		if node.IsAP() {
			node.Sink = fn
		}
	}
}

// SetTracer installs (or, with nil, removes) a packet-lifecycle tracer on
// every node, and wires the configured-parent-change callback so both
// controller reroutes and dead-parent drops appear as route-change events.
func (n *SDNNetwork) SetTracer(t telemetry.Tracer) {
	for i, node := range n.Nodes {
		if node == nil {
			continue
		}
		node.SetTracer(t)
		s := n.Stacks[i]
		if t == nil {
			s.onParentChange = nil
			continue
		}
		id := topology.NodeID(i)
		s.onParentChange = func(asn sim.ASN, parent topology.NodeID) {
			t.Record(telemetry.Event{
				ASN:  int64(asn),
				Type: telemetry.EvRouteChange,
				Node: id,
				Peer: parent,
			})
		}
	}
}

// JoinedCount returns how many nodes are synchronised and hold a routed
// data-plane state (a controller-assigned parent; access points sink by
// construction). It only rises once the controller has collected reports
// and disseminated configurations — in-band convergence, not free.
func (n *SDNNetwork) JoinedCount() int {
	joined := 0
	for i, node := range n.Nodes {
		if node == nil {
			continue
		}
		if synced, _ := node.Synced(); synced && n.Stacks[i].Configured() {
			joined++
		}
	}
	return joined
}

// Prober returns the invariant-monitor probe. The controller assigns a
// single parent per node, so Backup is always 0, like Orchestra.
func (n *SDNNetwork) Prober(nw *sim.Network) invariant.Prober {
	return func(states []invariant.NodeState) []invariant.NodeState {
		for i, node := range n.Nodes {
			if node == nil {
				continue
			}
			s := n.Stacks[i]
			synced, _ := node.Synced()
			states = append(states, invariant.NodeState{
				ID:        topology.NodeID(i),
				IsAP:      node.IsAP(),
				Alive:     !nw.Failed(topology.NodeID(i)),
				Synced:    synced,
				Parent:    s.Parent(),
				Queue:     node.QueueLen(),
				LastRx:    node.LastRx(),
				Neighbors: len(s.rss),
			})
		}
		return states
	}
}

// Healer returns the watchdog hook: a cold restart through the stack's
// Resetter, so the node rejoins from scratch and waits to be reconfigured.
func (n *SDNNetwork) Healer() func(id topology.NodeID, asn sim.ASN) {
	return func(id topology.NodeID, asn sim.ASN) {
		if int(id) < len(n.Nodes) && n.Nodes[id] != nil {
			n.Nodes[id].Reboot(asn, true)
		}
	}
}

// AdaptiveNetwork bundles the per-node MAC and adaptive-allocator stacks
// running over one simulated network.
type AdaptiveNetwork struct {
	Nodes  []*mac.Node      // indexed by node ID, entry 0 nil
	Stacks []*AdaptiveStack // indexed by node ID, entry 0 nil
}

// BuildAdaptive attaches an adaptive stack to every node of the network's
// topology (access points act as RPL roots).
func BuildAdaptive(nw *sim.Network, cfg AdaptiveConfig, macCfg mac.Config, seed int64) (*AdaptiveNetwork, error) {
	topo := nw.Topology()
	out := &AdaptiveNetwork{
		Nodes:  make([]*mac.Node, topo.N()+1),
		Stacks: make([]*AdaptiveStack, topo.N()+1),
	}
	for i := 1; i <= topo.N(); i++ {
		id := topology.NodeID(i)
		isRoot := topo.IsAP(id)
		// A counting source (same value stream as rand.NewSource) keeps
		// the stack's RNG position checkpointable for snapshots. The
		// multiplier differs from Orchestra's so the two RPL-based stacks
		// do not share random streams at equal seeds.
		src := detrand.New(seed*7877 + int64(i))
		stack, err := NewAdaptiveStack(id, isRoot, cfg, rand.New(src))
		if err != nil {
			return nil, err
		}
		stack.rngSrc = src
		node := mac.NewNode(id, isRoot, stack, macCfg)
		if err := nw.Attach(node); err != nil {
			return nil, fmt.Errorf("adaptive build: %w", err)
		}
		// The allocator samples its own node's queue depth at adaptation
		// ticks; reading our own queue from our own Assignment keeps the
		// sharded engine's no-cross-node-state rule intact.
		stack.queueLen = node.QueueLen
		out.Nodes[i] = node
		out.Stacks[i] = stack
	}
	return out, nil
}

// OnDeliver installs the sink callback on every access point.
func (n *AdaptiveNetwork) OnDeliver(fn func(asn sim.ASN, f *sim.Frame)) {
	for _, node := range n.Nodes[1:] {
		if node.IsAP() {
			node.Sink = fn
		}
	}
}

// SetTracer installs (or, with nil, removes) a packet-lifecycle tracer on
// every node, and wires the RPL parent-switch callback so route churn
// appears in the event stream as route-change events.
func (n *AdaptiveNetwork) SetTracer(t telemetry.Tracer) {
	for i, node := range n.Nodes {
		if node == nil {
			continue
		}
		node.SetTracer(t)
		r := n.Stacks[i].Router()
		if t == nil {
			r.OnParentChange = nil
			continue
		}
		id := topology.NodeID(i)
		r.OnParentChange = func(asn sim.ASN, parent topology.NodeID) {
			t.Record(telemetry.Event{
				ASN:  int64(asn),
				Type: telemetry.EvRouteChange,
				Node: id,
				Peer: parent,
			})
		}
	}
}

// JoinedCount returns how many nodes are synchronised and in the DODAG.
func (n *AdaptiveNetwork) JoinedCount() int {
	joined := 0
	for i, node := range n.Nodes {
		if node == nil {
			continue
		}
		if synced, _ := node.Synced(); synced && n.Stacks[i].Router().Joined() {
			joined++
		}
	}
	return joined
}

// Prober returns the invariant-monitor probe. RPL keeps a single preferred
// parent, so Backup is always 0, like Orchestra.
func (n *AdaptiveNetwork) Prober(nw *sim.Network) invariant.Prober {
	return func(states []invariant.NodeState) []invariant.NodeState {
		for i, node := range n.Nodes {
			if node == nil {
				continue
			}
			r := n.Stacks[i].Router()
			synced, _ := node.Synced()
			states = append(states, invariant.NodeState{
				ID:        topology.NodeID(i),
				IsAP:      node.IsAP(),
				Alive:     !nw.Failed(topology.NodeID(i)),
				Synced:    synced,
				Parent:    r.Parent(),
				Queue:     node.QueueLen(),
				LastRx:    node.LastRx(),
				Neighbors: r.Neighbors(),
			})
		}
		return states
	}
}

// Healer returns the watchdog hook: a cold restart through the stack's
// Resetter, so the node rejoins the DODAG from scratch.
func (n *AdaptiveNetwork) Healer() func(id topology.NodeID, asn sim.ASN) {
	return func(id topology.NodeID, asn sim.ASN) {
		if int(id) < len(n.Nodes) && n.Nodes[id] != nil {
			n.Nodes[id].Reboot(asn, true)
		}
	}
}
