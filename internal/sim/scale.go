package sim

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/digs-net/digs/internal/detrand"
	"github.com/digs-net/digs/internal/phy"
	"github.com/digs-net/digs/internal/topology"
)

// The scale engine is the massive-topology execution mode of Network: the
// same device contract and medium model, restructured so per-slot cost
// scales with active links instead of n^2 and the device phases can run
// shard-parallel while staying bit-identical for every shard count.
//
// Three things differ from the legacy slot loop:
//
//  1. The dense (n+1)^2 RSS matrix is replaced by the topology's
//     radius-pruned CSR adjacency. A listener resolves receptions by
//     scanning its own neighbour row (O(degree)) instead of the global
//     per-channel transmitter lists, and the fade overlay is keyed on
//     sparse link indices.
//
//  2. All randomness is counter-based: each fading and decode draw is a
//     pure hash of (seed, asn, src, dst, salt) instead of the next value
//     of a shared sequential generator. Draw values therefore do not
//     depend on the order listeners resolve, which is what makes the
//     output invariant across shard counts — the same trick the engine
//     already used for clock-drift decisions.
//
//  3. Devices are partitioned into contiguous node-ID ranges, one per
//     shard. The plan and end-of-slot phases run shard-parallel;
//     per-shard event buffers are drained in shard order after each
//     parallel section, which is ascending node-ID order and therefore
//     the same order for 1, 2, 4 or 8 shards. The procedural generators
//     assign IDs in spatial scan order, so contiguous ID ranges are also
//     spatially compact regions. Access points always land in shard 0
//     (lowest IDs), making that goroutine the only one that runs sink
//     callbacks and touches gateway-side state.
//
// Devices that implement Napper additionally let the engine skip their
// Plan/EndSlot calls entirely across structurally idle stretches, and
// Run fast-forwards the clock through the event heap when every device
// is napping.

// Napper is optionally implemented by devices that can predict their own
// idle stretches. After EndSlot(asn) the engine asks NextWake(asn); a
// return w > asn+1 promises the device would plan OpSleep for every slot
// in (asn, w), and the engine then skips its Plan/EndSlot calls until
// slot w (or until Network.Wake). On waking, AccrueSleep(k) reports the k
// skipped slots so the device can settle its per-slot accounting exactly
// as if EndSlot had been called with a sleep report k times.
type Napper interface {
	NextWake(asn ASN) ASN
	AccrueSleep(slots int64)
}

// Hash salts separating the independent per-(slot, src, dst) draw streams.
const (
	saltFade      = 1
	saltDecode    = 2
	saltAckFade   = 3
	saltAckDecode = 4
)

// shardBuf is one shard's scratch: resolution buffers plus the trace
// buffer drained in shard order after each parallel section.
type shardBuf struct {
	traces    []TraceEvent
	cand      []candidate
	interf    []float64
	ackInterf []float64
}

type scaleState struct {
	sparse   *topology.SparseRSS
	shards   int
	seedHash uint64

	// bounds[s]..bounds[s+1] is shard s's half-open node-ID range.
	bounds []int
	bufs   []*shardBuf

	// shardBusy accumulates wall-clock time spent in each shard's device
	// phases; busy is the goroutine-safe accumulator behind it.
	shardBusy []time.Duration
	busy      []atomic.Int64

	// fade is the link attenuation overlay keyed by sparse link index
	// (directed entries, kept symmetric); nil until the first AddLinkFade.
	fade []float64

	// napUntil[id] != 0 means the device sleeps until that slot
	// (exclusive); napStart[id] is the last slot it executed.
	napUntil []ASN
	napStart []ASN
	// awake counts attached devices not napping (touched from shard
	// goroutines during plan/finish, hence atomic); the all-idle
	// fast-forward check reads it between phases.
	awake atomic.Int64

	// notify, when set, brackets the device-parallel phases (telemetry
	// splitters buffer per shard between notify(true) and notify(false)).
	notify func(parallel bool)

	// runCap bounds the all-napping fast-forward so Run/RunUntil stop at
	// their target slot; 0 means single-stepping (no fast-forward).
	runCap ASN
}

// NewScaleNetwork creates a network in scale mode over the topology's
// radius-pruned sparse adjacency, partitioned into the given number of
// shards. Output is bit-identical for any shard count (the legacy
// NewNetwork engine is a different medium resolution order and RNG
// discipline, so legacy and scale runs are each internally deterministic
// but not comparable to each other). Shard counts are clamped to [1, n].
func NewScaleNetwork(topo *topology.Topology, seed int64, shards int) *Network {
	n := topo.N()
	if shards < 1 {
		shards = 1
	}
	if shards > n {
		shards = n
	}
	src := detrand.New(seed)
	nw := &Network{
		topo:              topo,
		devices:           make([]Device, n+1),
		failed:            make([]bool, n+1),
		seed:              seed,
		rngSrc:            src,
		rng:               nil, // scale mode draws are counter-based
		FastFadingSigmaDB: 2.0,
		rssDim:            n + 1,
		numDevs:           n,
		ops:               make([]RadioOp, n+1),
		reports:           make([]SlotReport, n+1),
	}
	sc := &scaleState{
		sparse:   topo.SparseView(),
		shards:   shards,
		seedHash: detrand.Mix(0, uint64(seed)),
		napUntil: make([]ASN, n+1),
		napStart: make([]ASN, n+1),
		bufs:     make([]*shardBuf, shards),
		bounds:   shardBounds(n, topo.NumAPs, shards),
	}
	sc.shardBusy = make([]time.Duration, shards)
	sc.busy = make([]atomic.Int64, shards)
	for s := range sc.bufs {
		sc.bufs[s] = &shardBuf{}
	}
	nw.scale = sc
	return nw
}

// shardBounds splits 1..n into `shards` contiguous half-open ranges,
// keeping every access point (IDs 1..numAPs) inside shard 0 so sink
// callbacks and the event heap have a single owning goroutine per phase.
func shardBounds(n, numAPs, shards int) []int {
	bounds := make([]int, shards+1)
	bounds[0] = 1
	for s := 1; s < shards; s++ {
		b := 1 + (n*s)/shards
		if b < numAPs+1 {
			b = numAPs + 1
		}
		if b < bounds[s-1] {
			b = bounds[s-1]
		}
		bounds[s] = b
	}
	bounds[shards] = n + 1
	return bounds
}

// ScaleMode reports whether this network runs the sparse sharded engine.
func (nw *Network) ScaleMode() bool { return nw.scale != nil }

// ShardCount returns the number of shards (1 outside scale mode).
func (nw *Network) ShardCount() int {
	if nw.scale == nil {
		return 1
	}
	return nw.scale.shards
}

// ShardOf returns the shard owning the given node (0 outside scale mode).
// Telemetry splitters use it to give each node the buffer matching the
// goroutine that will record through it.
func (nw *Network) ShardOf(id topology.NodeID) int {
	if nw.scale == nil {
		return 0
	}
	b := nw.scale.bounds
	for s := 0; s < len(b)-1; s++ {
		if int(id) < b[s+1] {
			return s
		}
	}
	return len(b) - 2
}

// SetParallelNotify installs a hook called with true right before each
// device-parallel phase and false right after it joins. Scale mode only;
// telemetry splitters use it to switch between direct and per-shard
// buffered recording.
func (nw *Network) SetParallelNotify(fn func(parallel bool)) {
	if nw.scale != nil {
		nw.scale.notify = fn
	}
}

// Wake cancels a napping device's remaining sleep: it settles the skipped
// slots immediately and resumes Plan calls from the next Step. Layers
// that hand a device new work outside the radio path (flow injection,
// node restoration) must call it first, or the device would sleep through
// its own transmit slots.
func (nw *Network) Wake(id topology.NodeID) {
	sc := nw.scale
	if sc == nil || id < 1 || int(id) > nw.numDevs || sc.napUntil[id] == 0 {
		return
	}
	if slept := nw.asn - sc.napStart[id] - 1; slept > 0 {
		if d, ok := nw.devices[id].(Napper); ok {
			d.AccrueSleep(slept)
		}
	}
	sc.napUntil[id] = 0
	sc.awake.Add(1)
}

// slotHash derives the order-independent draw for one (slot, src, dst,
// salt) event.
func (nw *Network) slotHash(asn ASN, a, b topology.NodeID, salt uint64) uint64 {
	h := detrand.Mix(nw.scale.seedHash, uint64(asn))
	h = detrand.Mix(h, uint64(a))
	h = detrand.Mix(h, uint64(b))
	return detrand.Mix(h, salt)
}

// run executes fn once per shard over its ID range, in parallel when the
// network has more than one shard, accumulating each shard's busy time.
func (sc *scaleState) run(fn func(shard, lo, hi int)) {
	if sc.shards == 1 {
		start := time.Now()
		fn(0, sc.bounds[0], sc.bounds[1])
		sc.shardBusy[0] += time.Since(start)
		return
	}
	var wg sync.WaitGroup
	wg.Add(sc.shards)
	for s := 0; s < sc.shards; s++ {
		go func(s int) {
			defer wg.Done()
			start := time.Now()
			fn(s, sc.bounds[s], sc.bounds[s+1])
			sc.busy[s].Add(int64(time.Since(start)))
		}(s)
	}
	wg.Wait()
	for s := 0; s < sc.shards; s++ {
		sc.shardBusy[s] = time.Duration(sc.busy[s].Load())
	}
}

// ShardBusy returns the cumulative wall-clock time each shard goroutine
// spent executing device phases (nil outside scale mode). On a single-CPU
// host the per-shard times sum to roughly the whole run — the benchmark
// reports use them to label a ~1.0x "speedup" as scheduler time-slicing
// rather than real parallel speedup.
func (nw *Network) ShardBusy() []time.Duration {
	if nw.scale == nil {
		return nil
	}
	return append([]time.Duration(nil), nw.scale.shardBusy...)
}

// drainTraces forwards each shard's buffered engine trace events in shard
// order — ascending node-ID order, identical for every shard count.
func (nw *Network) drainTraces() {
	for _, buf := range nw.scale.bufs {
		if nw.Trace != nil {
			for i := range buf.traces {
				nw.Trace(buf.traces[i])
			}
		}
		buf.traces = buf.traces[:0]
	}
}

func (sc *scaleState) notifyParallel(on bool) {
	if sc.notify != nil {
		sc.notify(on)
	}
}

// stepScale executes one slot in scale mode.
func (nw *Network) stepScale() {
	nw.started = true
	sc := nw.scale
	asn := nw.asn

	for len(nw.pending) > 0 && nw.pending[0].asn <= asn {
		nw.pending.pop().fn()
	}

	// All-napping fast-forward: when every attached live device is asleep,
	// jump straight to the earliest wake or scheduled event (bounded by the
	// Run target). Nothing can happen in between: no device plans, so the
	// medium is silent, and sleep accounting settles at each wake.
	if sc.awake.Load() == 0 && sc.runCap > asn+1 {
		target := sc.runCap
		for id := 1; id <= nw.numDevs; id++ {
			if nw.devices[id] == nil || nw.failed[id] {
				continue
			}
			if w := sc.napUntil[id]; w != 0 && w < target {
				target = w
			}
		}
		if len(nw.pending) > 0 && nw.pending[0].asn < target {
			target = nw.pending[0].asn
		}
		if target > asn {
			nw.asn = target
			asn = target
			for len(nw.pending) > 0 && nw.pending[0].asn <= asn {
				nw.pending.pop().fn()
			}
		}
	}

	// Phase 1: plans, shard-parallel.
	sc.notifyParallel(true)
	sc.run(func(shard, lo, hi int) {
		buf := sc.bufs[shard]
		for id := lo; id < hi; id++ {
			nw.planOne(topology.NodeID(id), asn, buf)
		}
	})
	sc.notifyParallel(false)
	nw.drainTraces()

	// Phase 2: medium resolution per listener, shard-parallel. Pure engine
	// code — no device calls — so no parallel notification is needed; each
	// listener writes only its own report plus the unique Acked flag of a
	// unicast sender addressing it.
	sc.run(func(shard, lo, hi int) {
		buf := sc.bufs[shard]
		for id := lo; id < hi; id++ {
			op := nw.ops[id]
			if op.Kind != OpRx && op.Kind != OpScan {
				continue
			}
			if nw.driftProb != nil && nw.misses[id] {
				continue // listening outside the slot's guard window
			}
			nw.resolveListenerScale(topology.NodeID(id), op, asn, buf)
		}
	})
	nw.drainTraces()

	// Phase 3: energy classes, reports and nap decisions, shard-parallel.
	sc.notifyParallel(true)
	sc.run(func(shard, lo, hi int) {
		for id := lo; id < hi; id++ {
			nw.finishOne(topology.NodeID(id), asn)
		}
	})
	sc.notifyParallel(false)

	nw.asn++
}

// planOne runs the plan phase for one device: nap bookkeeping, the Plan
// call, drift, and the transmit trace into the shard's buffer.
func (nw *Network) planOne(id topology.NodeID, asn ASN, buf *shardBuf) {
	sc := nw.scale
	nw.ops[id] = RadioOp{Kind: OpSleep}
	nw.reports[id] = SlotReport{}
	d := nw.devices[id]
	if d == nil || nw.failed[id] {
		return
	}
	if w := sc.napUntil[id]; w != 0 {
		if w > asn {
			return // napping: Plan and EndSlot both skipped this slot
		}
		// Wake: settle the skipped slots before the device plans again.
		if slept := asn - sc.napStart[id] - 1; slept > 0 {
			if np, ok := d.(Napper); ok {
				np.AccrueSleep(slept)
			}
		}
		sc.napUntil[id] = 0
		sc.awake.Add(1)
	}
	op := d.Plan(asn)
	nw.ops[id] = op
	nw.reports[id].Op = op
	if nw.driftProb != nil {
		if nw.misses[id] = nw.driftMiss(int(id), asn); nw.misses[id] {
			return
		}
	}
	if op.Kind == OpTx {
		if op.Frame == nil {
			nw.ops[id] = RadioOp{Kind: OpSleep}
			nw.reports[id].Op = nw.ops[id]
			return
		}
		if nw.Trace != nil {
			buf.traces = append(buf.traces, TraceEvent{ASN: asn, Kind: TraceTx,
				Src: id, Dst: op.Frame.Dst, Frame: op.Frame, Channel: op.Channel})
		}
	}
}

// resolveListenerScale decides what a listener hears, walking the
// listener's sparse neighbour row instead of the global per-channel
// transmitter lists: per-slot resolution cost is O(degree), independent
// of network size. The row is in ascending neighbour-ID order, so
// candidate ordering — and with it capture ties and the interference
// summation order — is identical for every shard count.
func (nw *Network) resolveListenerScale(listener topology.NodeID, op RadioOp, asn ASN, buf *shardBuf) {
	sc := nw.scale
	rep := &nw.reports[listener]
	cols, vals, base := sc.sparse.Row(listener)
	wide := op.Kind == OpScan && op.Channel == 0

	cands := buf.cand[:0]
	for i, src := range cols {
		sop := &nw.ops[src]
		if sop.Kind != OpTx {
			continue
		}
		if int(sop.Channel) >= int(phy.LastChannel)+1 {
			continue // out-of-band plan: never heard (legacy parity)
		}
		if !wide && sop.Channel != op.Channel {
			continue
		}
		if nw.driftProb != nil && nw.misses[src] {
			continue // transmitter fired outside the guard window
		}
		mean := vals[i]
		if sc.fade != nil {
			mean -= sc.fade[base+i]
		}
		rss := mean + detrand.Norm(nw.slotHash(asn, src, listener, saltFade))*nw.FastFadingSigmaDB
		if rss >= phy.SensitivityDBm {
			cands = append(cands, candidate{src: src, rss: rss, ch: sop.Channel})
		}
	}
	buf.cand = cands
	if len(cands) == 0 {
		return // idle listen
	}

	best := 0
	for i := 1; i < len(cands); i++ {
		if cands[i].rss > cands[best].rss {
			best = i
		}
	}
	interf := buf.interf[:0]
	for i, c := range cands {
		if i != best && c.ch == cands[best].ch {
			interf = append(interf, c.rss)
		}
	}
	interf = nw.interferenceAt(listener, cands[best].ch, asn, interf)
	buf.interf = interf

	rep.Activity = phy.ActivityRxFrame
	if phy.SIRdB(cands[best].rss, interf) < phy.CaptureThresholdDB {
		rep.Collision = true
		if nw.Trace != nil {
			buf.traces = append(buf.traces, TraceEvent{ASN: asn, Kind: TraceCollision,
				Dst: listener, Channel: cands[best].ch})
		}
		return
	}
	if detrand.Uniform(nw.slotHash(asn, cands[best].src, listener, saltDecode)) >= phy.PRR(cands[best].rss) {
		rep.Collision = true
		return
	}

	frame := nw.ops[cands[best].src].Frame
	if !frame.Broadcast() && frame.Dst != listener {
		return
	}
	rep.Received = frame
	rep.RSSI = cands[best].rss
	if nw.Trace != nil {
		buf.traces = append(buf.traces, TraceEvent{ASN: asn, Kind: TraceDeliver,
			Src: cands[best].src, Dst: listener, Frame: frame,
			Channel: cands[best].ch, RSS: cands[best].rss})
	}

	if frame.Dst == listener && nw.ops[cands[best].src].NeedAck {
		rep.Activity = phy.ActivityRxFrameAck
		nw.resolveAckScale(cands[best].src, listener, cands[best].ch, asn, buf)
	}
}

// resolveAckScale decides whether the ACK decodes at the sender. Only the
// unique unicast destination reaches here for a given sender, so the
// cross-shard write to reports[sender].Acked has exactly one writer.
func (nw *Network) resolveAckScale(sender, receiver topology.NodeID, ch phy.Channel, asn ASN, buf *shardBuf) {
	sc := nw.scale
	idx := sc.sparse.LinkIndex(receiver, sender)
	if idx < 0 {
		return // pruned link: the data frame arrived on fading luck, the ACK will not
	}
	mean := sc.sparse.ValueAt(idx)
	if sc.fade != nil {
		mean -= sc.fade[idx]
	}
	rss := mean + detrand.Norm(nw.slotHash(asn, receiver, sender, saltAckFade))*nw.FastFadingSigmaDB
	if rss < phy.SensitivityDBm {
		return
	}
	interf := nw.interferenceAt(sender, ch, asn, buf.ackInterf[:0])
	buf.ackInterf = interf
	if phy.SIRdB(rss, interf) < phy.CaptureThresholdDB {
		return
	}
	if detrand.Uniform(nw.slotHash(asn, receiver, sender, saltAckDecode)) < phy.PRR(rss+1.5) {
		nw.reports[sender].Acked = true
	}
}

// finishOne assigns the slot's energy class, delivers the report, and asks
// the device for its next wake.
func (nw *Network) finishOne(id topology.NodeID, asn ASN) {
	sc := nw.scale
	d := nw.devices[id]
	if d == nil || nw.failed[id] {
		return
	}
	if w := sc.napUntil[id]; w != 0 && w > asn {
		return // napping: accounting settles at wake
	}
	op := nw.ops[id]
	rep := &nw.reports[id]
	switch op.Kind {
	case OpSleep:
		rep.Activity = phy.ActivitySleep
	case OpScan:
		rep.Activity = phy.ActivityScan
	case OpRx:
		if rep.Activity == 0 {
			rep.Activity = phy.ActivityRxIdle
		}
	case OpTx:
		if op.NeedAck {
			rep.Activity = phy.ActivityTxAwaitAck
		} else {
			rep.Activity = phy.ActivityTx
		}
	}
	d.EndSlot(asn, *rep)
	if np, ok := d.(Napper); ok {
		if w := np.NextWake(asn); w > asn+1 {
			sc.napUntil[id] = w
			sc.napStart[id] = asn
			sc.awake.Add(-1)
		}
	}
}
