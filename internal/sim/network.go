package sim

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/digs-net/digs/internal/phy"
	"github.com/digs-net/digs/internal/topology"
)

// Network owns the shared medium and drives attached devices slot by slot.
type Network struct {
	topo        *topology.Topology
	devices     []Device // indexed by node ID; nil when not attached
	failed      []bool
	interferers []Interferer
	rng         *rand.Rand
	asn         ASN

	// FastFadingSigmaDB adds zero-mean Gaussian fading to each reception,
	// on top of the topology's static shadowing. It defaults to 2 dB.
	FastFadingSigmaDB float64

	// Trace, when non-nil, receives an event per transmission, delivery
	// and collision. It must be fast; it runs inline in the slot loop.
	Trace func(TraceEvent)

	events map[ASN][]func()

	// scratch buffers reused across slots
	ops       []RadioOp
	reports   []SlotReport
	byChannel map[phy.Channel][]topology.NodeID
}

// NewNetwork creates an empty network over the given topology, seeded for
// reproducibility.
func NewNetwork(topo *topology.Topology, seed int64) *Network {
	n := topo.N()
	return &Network{
		topo:              topo,
		devices:           make([]Device, n+1),
		failed:            make([]bool, n+1),
		rng:               rand.New(rand.NewSource(seed)),
		FastFadingSigmaDB: 2.0,
		events:            make(map[ASN][]func()),
		ops:               make([]RadioOp, n+1),
		reports:           make([]SlotReport, n+1),
		byChannel:         make(map[phy.Channel][]topology.NodeID, phy.NumChannels),
	}
}

// Topology returns the deployment the network runs over.
func (nw *Network) Topology() *topology.Topology { return nw.topo }

// ASN returns the current absolute slot number.
func (nw *Network) ASN() ASN { return nw.asn }

// Attach registers a device. It returns an error if the ID is outside the
// topology or already attached.
func (nw *Network) Attach(d Device) error {
	id := d.ID()
	if id < 1 || int(id) > nw.topo.N() {
		return fmt.Errorf("attach device %d: outside topology (1..%d)", id, nw.topo.N())
	}
	if nw.devices[id] != nil {
		return fmt.Errorf("attach device %d: already attached", id)
	}
	nw.devices[id] = d
	return nil
}

// AddInterferer registers an interference source.
func (nw *Network) AddInterferer(i Interferer) {
	nw.interferers = append(nw.interferers, i)
}

// Fail marks a node as dead: it stops planning, transmitting and receiving.
func (nw *Network) Fail(id topology.NodeID) {
	if id >= 1 && int(id) < len(nw.failed) {
		nw.failed[id] = true
	}
}

// Restore brings a failed node back.
func (nw *Network) Restore(id topology.NodeID) {
	if id >= 1 && int(id) < len(nw.failed) {
		nw.failed[id] = false
	}
}

// Failed reports whether a node is currently dead.
func (nw *Network) Failed(id topology.NodeID) bool {
	return id >= 1 && int(id) < len(nw.failed) && nw.failed[id]
}

// Run advances the network by the given number of slots.
func (nw *Network) Run(slots int64) {
	for i := int64(0); i < slots; i++ {
		nw.Step()
	}
}

// RunUntil advances the network until the predicate returns true or the
// slot budget is exhausted. It returns the number of slots executed and
// whether the predicate fired.
func (nw *Network) RunUntil(maxSlots int64, done func() bool) (int64, bool) {
	for i := int64(0); i < maxSlots; i++ {
		if done() {
			return i, true
		}
		nw.Step()
	}
	return maxSlots, done()
}

// At schedules fn to run at the start of the given slot (failure injection,
// scenario phase changes, measurement snapshots). Scheduling in the past is
// a no-op.
func (nw *Network) At(asn ASN, fn func()) {
	if asn < nw.asn {
		return
	}
	nw.events[asn] = append(nw.events[asn], fn)
}

// AfterDuration schedules fn to run the given wall-clock time from now.
func (nw *Network) AfterDuration(d time.Duration, fn func()) {
	nw.At(nw.asn+SlotsFor(d), fn)
}

// Step executes one TSCH slot: plan, resolve the medium, report.
func (nw *Network) Step() {
	asn := nw.asn
	n := nw.topo.N()

	if fns, ok := nw.events[asn]; ok {
		for _, fn := range fns {
			fn()
		}
		delete(nw.events, asn)
	}

	// Phase 1: plans.
	for ch := range nw.byChannel {
		nw.byChannel[ch] = nw.byChannel[ch][:0]
	}
	for id := 1; id <= n; id++ {
		nw.ops[id] = RadioOp{Kind: OpSleep}
		nw.reports[id] = SlotReport{}
		d := nw.devices[id]
		if d == nil || nw.failed[id] {
			continue
		}
		op := d.Plan(asn)
		nw.ops[id] = op
		nw.reports[id].Op = op
		if op.Kind == OpTx {
			if op.Frame == nil {
				// A transmit plan with no frame degrades to sleep.
				nw.ops[id] = RadioOp{Kind: OpSleep}
				nw.reports[id].Op = nw.ops[id]
				continue
			}
			nw.byChannel[op.Channel] = append(nw.byChannel[op.Channel], topology.NodeID(id))
			nw.trace(TraceEvent{ASN: asn, Kind: TraceTx, Src: topology.NodeID(id),
				Dst: op.Frame.Dst, Frame: op.Frame, Channel: op.Channel})
		}
	}

	// Phase 2: resolve receptions per listening device.
	for id := 1; id <= n; id++ {
		op := nw.ops[id]
		if op.Kind != OpRx && op.Kind != OpScan {
			continue
		}
		nw.resolveListener(topology.NodeID(id), op, asn)
	}

	// Phase 3: transmitter outcomes and energy classes.
	for id := 1; id <= n; id++ {
		op := nw.ops[id]
		rep := &nw.reports[id]
		switch op.Kind {
		case OpSleep:
			rep.Activity = phy.ActivitySleep
		case OpScan:
			rep.Activity = phy.ActivityScan
		case OpRx:
			if rep.Activity == 0 {
				rep.Activity = phy.ActivityRxIdle
			}
		case OpTx:
			if op.NeedAck {
				rep.Activity = phy.ActivityTxAwaitAck
			} else {
				rep.Activity = phy.ActivityTx
			}
		}
	}

	// Phase 4: reports.
	for id := 1; id <= n; id++ {
		d := nw.devices[id]
		if d == nil || nw.failed[id] {
			continue
		}
		d.EndSlot(asn, nw.reports[id])
	}
	nw.asn++
}

// resolveListener decides what the listener hears this slot.
func (nw *Network) resolveListener(listener topology.NodeID, op RadioOp, asn ASN) {
	rep := &nw.reports[listener]

	// Candidate transmissions: a wide-band scan (channel 0) hears every
	// channel; synchronised receivers and single-channel scanners only
	// their channel.
	var txs []topology.NodeID
	if op.Kind == OpScan && op.Channel == 0 {
		for _, list := range nw.byChannel {
			txs = append(txs, list...)
		}
	} else {
		txs = nw.byChannel[op.Channel]
	}

	// Detectable frames at this listener, with per-reception fading.
	type candidate struct {
		src topology.NodeID
		rss float64
		ch  phy.Channel
	}
	var cands []candidate
	for _, src := range txs {
		if src == listener {
			continue
		}
		rss := nw.topo.RSS(src, listener) + nw.rng.NormFloat64()*nw.FastFadingSigmaDB
		if rss >= phy.SensitivityDBm {
			cands = append(cands, candidate{src: src, rss: rss, ch: nw.ops[src].Channel})
		}
	}
	if len(cands) == 0 {
		return // idle listen
	}

	// Strongest candidate competes against the rest plus interference.
	best := 0
	for i := 1; i < len(cands); i++ {
		if cands[i].rss > cands[best].rss {
			best = i
		}
	}
	interf := make([]float64, 0, len(cands)+len(nw.interferers))
	for i, c := range cands {
		if i != best && c.ch == cands[best].ch {
			interf = append(interf, c.rss)
		}
	}
	interf = nw.interferenceAt(listener, cands[best].ch, asn, interf)

	rep.Activity = phy.ActivityRxFrame // energy was spent regardless of decode
	if phy.SIRdB(cands[best].rss, interf) < phy.CaptureThresholdDB {
		rep.Collision = true
		nw.trace(TraceEvent{ASN: asn, Kind: TraceCollision, Dst: listener, Channel: cands[best].ch})
		return
	}
	if nw.rng.Float64() >= phy.PRR(cands[best].rss) {
		rep.Collision = true // undecodable: counts as noise for the listener
		return
	}

	frame := nw.ops[cands[best].src].Frame
	if !frame.Broadcast() && frame.Dst != listener {
		// Overheard unicast for someone else: MAC filters it out, but the
		// energy was spent.
		return
	}
	rep.Received = frame
	rep.RSSI = cands[best].rss
	nw.trace(TraceEvent{ASN: asn, Kind: TraceDeliver, Src: cands[best].src,
		Dst: listener, Frame: frame, Channel: cands[best].ch})

	// ACK for unicast frames addressed to this listener.
	if frame.Dst == listener && nw.ops[cands[best].src].NeedAck {
		rep.Activity = phy.ActivityRxFrameAck
		nw.resolveAck(cands[best].src, listener, cands[best].ch, asn)
	}
}

// resolveAck decides whether the ACK from receiver back to sender decodes.
func (nw *Network) resolveAck(sender, receiver topology.NodeID, ch phy.Channel, asn ASN) {
	rss := nw.topo.RSS(receiver, sender) + nw.rng.NormFloat64()*nw.FastFadingSigmaDB
	if rss < phy.SensitivityDBm {
		return
	}
	interf := nw.interferenceAt(sender, ch, asn, nil)
	if phy.SIRdB(rss, interf) < phy.CaptureThresholdDB {
		return
	}
	// ACKs are short; give them a small robustness bonus over full frames.
	if nw.rng.Float64() < phy.PRR(rss+1.5) {
		nw.reports[sender].Acked = true
	}
}

// interferenceAt appends the powers of all active interferers covering the
// channel as heard at the given node.
func (nw *Network) interferenceAt(at topology.NodeID, ch phy.Channel, asn ASN, into []float64) []float64 {
	for _, i := range nw.interferers {
		if !i.ActiveOn(asn, ch) {
			continue
		}
		p := i.PowerAtDBm(at)
		if p > phy.NoiseFloorDBm {
			into = append(into, p)
		}
	}
	return into
}

func (nw *Network) trace(ev TraceEvent) {
	if nw.Trace != nil {
		nw.Trace(ev)
	}
}
