package sim

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/digs-net/digs/internal/detrand"
	"github.com/digs-net/digs/internal/phy"
	"github.com/digs-net/digs/internal/topology"
)

// candidate is one detectable transmission at a listener.
type candidate struct {
	src topology.NodeID
	rss float64
	ch  phy.Channel
}

// pendingEvent is one scheduled callback. seq preserves FIFO order among
// events scheduled for the same slot.
type pendingEvent struct {
	asn ASN
	seq uint64
	fn  func()
}

// eventQueue is a binary min-heap ordered by (asn, seq). A heap keeps the
// per-slot cost of the common case — no event due — at a single length
// check plus one comparison, where the previous map keyed by ASN paid a
// hash lookup every slot.
type eventQueue []pendingEvent

func (q eventQueue) less(i, j int) bool {
	return q[i].asn < q[j].asn || (q[i].asn == q[j].asn && q[i].seq < q[j].seq)
}

func (q *eventQueue) push(e pendingEvent) {
	*q = append(*q, e)
	h := *q
	for i := len(h) - 1; i > 0; {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (q *eventQueue) pop() pendingEvent {
	h := *q
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h[last] = pendingEvent{} // release the func reference
	h = h[:last]
	*q = h
	for i := 0; ; {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < len(h) && h.less(left, smallest) {
			smallest = left
		}
		if right < len(h) && h.less(right, smallest) {
			smallest = right
		}
		if smallest == i {
			break
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
	return top
}

// Network owns the shared medium and drives attached devices slot by slot.
type Network struct {
	topo        *topology.Topology
	devices     []Device // indexed by node ID; nil when not attached
	failed      []bool
	interferers []Interferer
	seed        int64
	rngSrc      *detrand.Source
	rng         *rand.Rand
	asn         ASN
	started     bool

	// FastFadingSigmaDB adds zero-mean Gaussian fading to each reception,
	// on top of the topology's static shadowing. It defaults to 2 dB.
	FastFadingSigmaDB float64

	// Trace, when non-nil, receives an event per transmission, delivery
	// and collision. It must be fast; it runs inline in the slot loop.
	Trace func(TraceEvent)

	pending  eventQueue
	eventSeq uint64

	// rss is a flat (n+1)x(n+1) copy of the topology's mean-RSS matrix,
	// captured at construction. The hot path indexes it directly instead
	// of going through topology.RSS's lazy-init check and nested slices,
	// and a Network never races other Networks on a shared topology's
	// lazily built cache.
	rss     []float64
	rssDim  int
	numDevs int

	// fade is a lazily allocated symmetric attenuation overlay (dB,
	// positive weakens the link), indexed like rss. The chaos layer uses
	// it for correlated link fades and network partitions; nil until the
	// first AddLinkFade keeps the unfaulted hot path branch-predictable.
	fade []float64

	// scale, when non-nil, switches the network to the sparse sharded
	// engine (see scale.go): Step dispatches to stepScale, the dense rss
	// matrix stays unallocated, and fades key on sparse link indices.
	scale *scaleState

	// driftProb holds each node's per-slot clock misalignment
	// probability (0 = slot timer healthy), driftSeed the deterministic
	// per-node hash seed; both nil until the first SetClockDrift.
	driftProb []float64
	driftSeed []uint64
	misses    []bool // per-slot scratch: node misaligned this slot

	// Scratch buffers reused across slots: the steady-state slot loop
	// performs zero heap allocations.
	ops       []RadioOp
	reports   []SlotReport
	byChannel [phy.LastChannel + 1][]topology.NodeID
	activeCh  []phy.Channel
	txScratch []topology.NodeID
	candBuf   []candidate
	interfBuf []float64
	ackInterf []float64
}

// NewNetwork creates an empty network over the given topology, seeded for
// reproducibility.
func NewNetwork(topo *topology.Topology, seed int64) *Network {
	n := topo.N()
	src := detrand.New(seed)
	nw := &Network{
		topo:              topo,
		devices:           make([]Device, n+1),
		failed:            make([]bool, n+1),
		seed:              seed,
		rngSrc:            src,
		rng:               rand.New(src),
		FastFadingSigmaDB: 2.0,
		rss:               make([]float64, (n+1)*(n+1)),
		rssDim:            n + 1,
		numDevs:           n,
		ops:               make([]RadioOp, n+1),
		reports:           make([]SlotReport, n+1),
		activeCh:          make([]phy.Channel, 0, phy.NumChannels),
	}
	for a := 1; a <= n; a++ {
		for b := 1; b <= n; b++ {
			nw.rss[a*nw.rssDim+b] = topo.RSS(topology.NodeID(a), topology.NodeID(b))
		}
	}
	return nw
}

// rssAt returns the cached mean RSS of the link a->b, minus any active
// fade overlay.
func (nw *Network) rssAt(a, b topology.NodeID) float64 {
	r := nw.rss[int(a)*nw.rssDim+int(b)]
	if nw.fade != nil {
		r -= nw.fade[int(a)*nw.rssDim+int(b)]
	}
	return r
}

// AddLinkFade attenuates the link between a and b by dB in both
// directions, on top of the topology's static model (fault injection:
// correlated fades, partitions). Fades accumulate; pass a negative dB to
// lift one. Out-of-range IDs and self-links are ignored.
func (nw *Network) AddLinkFade(a, b topology.NodeID, dB float64) {
	if a == b || a < 1 || b < 1 || int(a) >= nw.rssDim || int(b) >= nw.rssDim {
		return
	}
	if sc := nw.scale; sc != nil {
		// Scale mode keys fades on sparse link indices; a pruned link is
		// already unreceivable, so fading it is a no-op.
		i, j := sc.sparse.LinkIndex(a, b), sc.sparse.LinkIndex(b, a)
		if i < 0 || j < 0 {
			return
		}
		if sc.fade == nil {
			sc.fade = make([]float64, sc.sparse.Links())
		}
		sc.fade[i] += dB
		sc.fade[j] += dB
		return
	}
	if nw.fade == nil {
		nw.fade = make([]float64, len(nw.rss))
	}
	nw.fade[int(a)*nw.rssDim+int(b)] += dB
	nw.fade[int(b)*nw.rssDim+int(a)] += dB
}

// SetClockDrift gives a node's slot timer a deterministic misalignment: in
// each slot, with probability missProb (clamped to [0,1]), the node's
// radio window misses the network's slot — its transmissions decode
// nowhere and it hears nothing, while still spending the energy. This
// abstracts accumulated oscillator drift exceeding the TSCH guard time
// between resynchronisations. missProb 0 restores a healthy timer. The
// per-slot decision is a pure hash of (seed, node, asn), so drift is
// reproducible and consumes no draws from the network's RNG.
func (nw *Network) SetClockDrift(id topology.NodeID, missProb float64, seed int64) {
	if id < 1 || int(id) >= nw.rssDim {
		return
	}
	if nw.driftProb == nil {
		if missProb <= 0 {
			return
		}
		nw.driftProb = make([]float64, nw.rssDim)
		nw.driftSeed = make([]uint64, nw.rssDim)
		nw.misses = make([]bool, nw.rssDim)
	}
	if missProb < 0 {
		missProb = 0
	} else if missProb > 1 {
		missProb = 1
	}
	nw.driftProb[id] = missProb
	nw.driftSeed[id] = uint64(seed)*0x9E3779B97F4A7C15 + uint64(id)
}

// driftMiss reports whether a drifting node's slot timer misses the given
// slot, as a pure function of (seed, node, asn).
func (nw *Network) driftMiss(id int, asn ASN) bool {
	p := nw.driftProb[id]
	if p <= 0 {
		return false
	}
	x := nw.driftSeed[id] ^ uint64(asn)*0x9E3779B97F4A7C15
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11)/float64(1<<53) < p
}

// Topology returns the deployment the network runs over.
func (nw *Network) Topology() *topology.Topology { return nw.topo }

// ASN returns the current absolute slot number.
func (nw *Network) ASN() ASN { return nw.asn }

// Started reports whether the network has executed at least one slot.
func (nw *Network) Started() bool { return nw.started }

// Attach registers a device. It returns an error if the ID is outside the
// topology, already attached, or the simulation has already started
// stepping (the engine's scratch buffers and channel lists assume a fixed
// device set once the slot loop runs).
func (nw *Network) Attach(d Device) error {
	if nw.started {
		return fmt.Errorf("attach device %d: simulation already started (attach all devices before the first Step)", d.ID())
	}
	id := d.ID()
	if id < 1 || int(id) > nw.topo.N() {
		return fmt.Errorf("attach device %d: outside topology (1..%d)", id, nw.topo.N())
	}
	if nw.devices[id] != nil {
		return fmt.Errorf("attach device %d: already attached", id)
	}
	nw.devices[id] = d
	if nw.scale != nil {
		nw.scale.awake.Add(1)
	}
	return nil
}

// AddInterferer registers an interference source.
func (nw *Network) AddInterferer(i Interferer) {
	nw.interferers = append(nw.interferers, i)
}

// Fail marks a node as dead: it stops planning, transmitting and receiving.
func (nw *Network) Fail(id topology.NodeID) {
	if id >= 1 && int(id) < len(nw.failed) {
		nw.Wake(id) // settle nap accounting up to the failure
		nw.failed[id] = true
	}
}

// Restore brings a failed node back.
func (nw *Network) Restore(id topology.NodeID) {
	if id >= 1 && int(id) < len(nw.failed) {
		nw.failed[id] = false
		nw.Wake(id)
	}
}

// Failed reports whether a node is currently dead.
func (nw *Network) Failed(id topology.NodeID) bool {
	return id >= 1 && int(id) < len(nw.failed) && nw.failed[id]
}

// Run advances the network to the slot `slots` after the current one. In
// scale mode a single Step may fast-forward through a stretch where every
// device naps, so the loop tracks the slot clock, not the call count; the
// fast-forward cap keeps it from overshooting the target.
func (nw *Network) Run(slots int64) {
	target := nw.asn + slots
	if nw.scale != nil {
		defer func() { nw.scale.runCap = 0 }()
	}
	for nw.asn < target {
		if nw.scale != nil {
			nw.scale.runCap = target
		}
		nw.Step()
	}
}

// RunUntil advances the network until the predicate returns true or the
// slot budget is exhausted. It returns the number of slots executed and
// whether the predicate fired.
func (nw *Network) RunUntil(maxSlots int64, done func() bool) (int64, bool) {
	start := nw.asn
	target := start + maxSlots
	if nw.scale != nil {
		defer func() { nw.scale.runCap = 0 }()
	}
	for nw.asn < target {
		if done() {
			return nw.asn - start, true
		}
		if nw.scale != nil {
			nw.scale.runCap = target
		}
		nw.Step()
	}
	return nw.asn - start, done()
}

// At schedules fn to run at the start of the given slot (failure injection,
// scenario phase changes, measurement snapshots). A past-dated slot fires
// at the next slot boundary instead of being silently dropped, so relative
// scenario scripts with negative or stale offsets still execute. Events
// for the same slot fire in scheduling order.
func (nw *Network) At(asn ASN, fn func()) {
	if asn < nw.asn {
		asn = nw.asn
	}
	nw.eventSeq++
	nw.pending.push(pendingEvent{asn: asn, seq: nw.eventSeq, fn: fn})
}

// AfterDuration schedules fn to run the given wall-clock time from now.
func (nw *Network) AfterDuration(d time.Duration, fn func()) {
	nw.At(nw.asn+SlotsFor(d), fn)
}

// Step executes one TSCH slot: plan, resolve the medium, report.
func (nw *Network) Step() {
	if nw.scale != nil {
		nw.stepScale()
		return
	}
	nw.started = true
	asn := nw.asn
	n := nw.numDevs

	for len(nw.pending) > 0 && nw.pending[0].asn <= asn {
		nw.pending.pop().fn()
	}

	// Phase 1: plans.
	for _, ch := range nw.activeCh {
		nw.byChannel[ch] = nw.byChannel[ch][:0]
	}
	nw.activeCh = nw.activeCh[:0]
	for id := 1; id <= n; id++ {
		nw.ops[id] = RadioOp{Kind: OpSleep}
		nw.reports[id] = SlotReport{}
		d := nw.devices[id]
		if d == nil || nw.failed[id] {
			continue
		}
		op := d.Plan(asn)
		nw.ops[id] = op
		nw.reports[id].Op = op
		if nw.driftProb != nil {
			// A misaligned slot: the radio acts outside the network's
			// guard window, so the node's transmission decodes nowhere and
			// its listen hears nothing — but the energy is still spent
			// (phase 3 charges the op's activity class as planned).
			if nw.misses[id] = nw.driftMiss(id, asn); nw.misses[id] {
				continue
			}
		}
		if op.Kind == OpTx {
			if op.Frame == nil {
				// A transmit plan with no frame degrades to sleep.
				nw.ops[id] = RadioOp{Kind: OpSleep}
				nw.reports[id].Op = nw.ops[id]
				continue
			}
			if int(op.Channel) < len(nw.byChannel) {
				if len(nw.byChannel[op.Channel]) == 0 {
					nw.activeCh = append(nw.activeCh, op.Channel)
				}
				nw.byChannel[op.Channel] = append(nw.byChannel[op.Channel], topology.NodeID(id))
			}
			nw.trace(TraceEvent{ASN: asn, Kind: TraceTx, Src: topology.NodeID(id),
				Dst: op.Frame.Dst, Frame: op.Frame, Channel: op.Channel})
		}
	}

	// Phase 2: resolve receptions per listening device.
	for id := 1; id <= n; id++ {
		op := nw.ops[id]
		if op.Kind != OpRx && op.Kind != OpScan {
			continue
		}
		if nw.driftProb != nil && nw.misses[id] {
			continue // listening outside the slot's guard window
		}
		nw.resolveListener(topology.NodeID(id), op, asn)
	}

	// Phase 3: transmitter outcomes and energy classes.
	for id := 1; id <= n; id++ {
		op := nw.ops[id]
		rep := &nw.reports[id]
		switch op.Kind {
		case OpSleep:
			rep.Activity = phy.ActivitySleep
		case OpScan:
			rep.Activity = phy.ActivityScan
		case OpRx:
			if rep.Activity == 0 {
				rep.Activity = phy.ActivityRxIdle
			}
		case OpTx:
			if op.NeedAck {
				rep.Activity = phy.ActivityTxAwaitAck
			} else {
				rep.Activity = phy.ActivityTx
			}
		}
	}

	// Phase 4: reports.
	for id := 1; id <= n; id++ {
		d := nw.devices[id]
		if d == nil || nw.failed[id] {
			continue
		}
		d.EndSlot(asn, nw.reports[id])
	}
	nw.asn++
}

// resolveListener decides what the listener hears this slot.
func (nw *Network) resolveListener(listener topology.NodeID, op RadioOp, asn ASN) {
	rep := &nw.reports[listener]

	// Candidate transmissions: a wide-band scan (channel 0) hears every
	// channel of the 2.4 GHz page; synchronised receivers and
	// single-channel scanners only their channel. The wide-band gather
	// walks channels in ascending order so the shared RNG's fading draws
	// are consumed in a fixed order (a map iteration here would reorder
	// them run to run).
	var txs []topology.NodeID
	if op.Kind == OpScan && op.Channel == 0 {
		wide := nw.txScratch[:0]
		for ch := phy.FirstChannel; ch <= phy.LastChannel; ch++ {
			wide = append(wide, nw.byChannel[ch]...)
		}
		nw.txScratch = wide
		txs = wide
	} else if int(op.Channel) < len(nw.byChannel) {
		txs = nw.byChannel[op.Channel]
	}

	// Detectable frames at this listener, with per-reception fading.
	cands := nw.candBuf[:0]
	for _, src := range txs {
		if src == listener {
			continue
		}
		rss := nw.rssAt(src, listener) + nw.rng.NormFloat64()*nw.FastFadingSigmaDB
		if rss >= phy.SensitivityDBm {
			cands = append(cands, candidate{src: src, rss: rss, ch: nw.ops[src].Channel})
		}
	}
	nw.candBuf = cands
	if len(cands) == 0 {
		return // idle listen
	}

	// Strongest candidate competes against the rest plus interference.
	best := 0
	for i := 1; i < len(cands); i++ {
		if cands[i].rss > cands[best].rss {
			best = i
		}
	}
	interf := nw.interfBuf[:0]
	for i, c := range cands {
		if i != best && c.ch == cands[best].ch {
			interf = append(interf, c.rss)
		}
	}
	interf = nw.interferenceAt(listener, cands[best].ch, asn, interf)
	nw.interfBuf = interf

	rep.Activity = phy.ActivityRxFrame // energy was spent regardless of decode
	if phy.SIRdB(cands[best].rss, interf) < phy.CaptureThresholdDB {
		rep.Collision = true
		nw.trace(TraceEvent{ASN: asn, Kind: TraceCollision, Dst: listener, Channel: cands[best].ch})
		return
	}
	if nw.rng.Float64() >= phy.PRR(cands[best].rss) {
		rep.Collision = true // undecodable: counts as noise for the listener
		return
	}

	frame := nw.ops[cands[best].src].Frame
	if !frame.Broadcast() && frame.Dst != listener {
		// Overheard unicast for someone else: MAC filters it out, but the
		// energy was spent.
		return
	}
	rep.Received = frame
	rep.RSSI = cands[best].rss
	nw.trace(TraceEvent{ASN: asn, Kind: TraceDeliver, Src: cands[best].src,
		Dst: listener, Frame: frame, Channel: cands[best].ch, RSS: cands[best].rss})

	// ACK for unicast frames addressed to this listener.
	if frame.Dst == listener && nw.ops[cands[best].src].NeedAck {
		rep.Activity = phy.ActivityRxFrameAck
		nw.resolveAck(cands[best].src, listener, cands[best].ch, asn)
	}
}

// resolveAck decides whether the ACK from receiver back to sender decodes.
func (nw *Network) resolveAck(sender, receiver topology.NodeID, ch phy.Channel, asn ASN) {
	rss := nw.rssAt(receiver, sender) + nw.rng.NormFloat64()*nw.FastFadingSigmaDB
	if rss < phy.SensitivityDBm {
		return
	}
	interf := nw.interferenceAt(sender, ch, asn, nw.ackInterf[:0])
	nw.ackInterf = interf
	if phy.SIRdB(rss, interf) < phy.CaptureThresholdDB {
		return
	}
	// ACKs are short; give them a small robustness bonus over full frames.
	if nw.rng.Float64() < phy.PRR(rss+1.5) {
		nw.reports[sender].Acked = true
	}
}

// interferenceAt appends the powers of all active interferers covering the
// channel as heard at the given node.
func (nw *Network) interferenceAt(at topology.NodeID, ch phy.Channel, asn ASN, into []float64) []float64 {
	for _, i := range nw.interferers {
		if !i.ActiveOn(asn, ch) {
			continue
		}
		p := i.PowerAtDBm(at)
		if p > phy.NoiseFloorDBm {
			into = append(into, p)
		}
	}
	return into
}

func (nw *Network) trace(ev TraceEvent) {
	if nw.Trace != nil {
		nw.Trace(ev)
	}
}
