// Package sim is the slot-synchronous discrete-event engine the whole
// reproduction runs on. TSCH divides time into 10 ms slots, so the engine
// advances one slot at a time: it asks every attached device what its radio
// does this slot (transmit, listen, scan, sleep), resolves the shared
// medium (propagation, collisions, capture, interference, ACKs) and
// reports the outcome back to each device. All randomness flows from one
// seeded generator, so every run is exactly reproducible.
package sim

import (
	"time"

	"github.com/digs-net/digs/internal/phy"
	"github.com/digs-net/digs/internal/topology"
)

// ASN is the absolute slot number since network start (TSCH terminology).
type ASN = int64

// SlotsFor converts a wall-clock duration into a slot count.
func SlotsFor(d time.Duration) int64 {
	return int64(d / phy.SlotDuration)
}

// TimeAt converts an absolute slot number into elapsed network time.
func TimeAt(asn ASN) time.Duration {
	return time.Duration(asn) * phy.SlotDuration
}

// FrameKind tags the protocol meaning of a frame. Kinds are defined here so
// the engine can stay protocol-agnostic while traces remain readable.
type FrameKind uint8

// Frame kinds used across the stacks in this repository.
const (
	// KindEB is a TSCH enhanced beacon (time synchronisation).
	KindEB FrameKind = iota + 1
	// KindJoinIn is a DiGS join-in routing beacon (or an RPL DIO for the
	// baseline stacks).
	KindJoinIn
	// KindJoinedCallback is a DiGS joined-callback (or an RPL DAO).
	KindJoinedCallback
	// KindData is an application data packet.
	KindData
	// KindCommand is a WirelessHART management command (topology report
	// request/response, route or schedule update).
	KindCommand
	// KindSolicit is a routing solicitation (RPL DIS equivalent): a
	// synchronised but not-yet-joined node asking neighbours to
	// re-advertise promptly.
	KindSolicit
	// KindReport is an SDN link-state report: a node's observed neighbour
	// list riding hop-by-hop toward the centralized controller.
	KindReport
	// KindConfig is an SDN configuration push: the controller's computed
	// route/schedule assignment for one node, source-routed in-band.
	KindConfig
)

// Frame is one link-layer frame. Protocol state rides in Payload using each
// protocol's wire format.
type Frame struct {
	Kind FrameKind
	Src  topology.NodeID
	Dst  topology.NodeID // topology.Broadcast for broadcasts
	Seq  uint16

	// Origin and FlowID identify the application packet end-to-end for
	// data frames (they survive multi-hop forwarding).
	Origin topology.NodeID
	FlowID uint16

	// BornASN is the slot the application packet was generated in, used
	// for end-to-end latency accounting.
	BornASN ASN

	// Route carries path information: for data frames, the hops recorded
	// on the way up (gateways learn topology from it); for command
	// frames, the remaining source route to the destination.
	Route []topology.NodeID

	Payload []byte
}

// Broadcast reports whether the frame is a link-layer broadcast.
func (f *Frame) Broadcast() bool { return f.Dst == topology.Broadcast }

// OpKind says what a device's radio does during one slot.
type OpKind int

// Radio operations.
const (
	// OpSleep keeps the radio off.
	OpSleep OpKind = iota + 1
	// OpTx transmits Frame on Channel.
	OpTx
	// OpRx listens on Channel for the slot's guard window.
	OpRx
	// OpScan listens for the whole slot (unsynchronised joining): on
	// Channel when set, or across the whole band when Channel is zero.
	OpScan
)

// RadioOp is a device's plan for one slot.
type RadioOp struct {
	Kind    OpKind
	Channel phy.Channel
	Frame   *Frame // OpTx only
	NeedAck bool   // OpTx unicast frames that expect an ACK
	// ChannelOffset is the schedule lane the slot was planned from (the
	// hopping offset that produced Channel). The engine ignores it; the
	// telemetry subsystem reads it back to name the schedule cell a
	// transmission attempt used.
	ChannelOffset uint8
}

// Sleep is the zero-cost plan.
func Sleep() RadioOp { return RadioOp{Kind: OpSleep} }

// SlotReport is what actually happened to a device during one slot.
type SlotReport struct {
	Op RadioOp

	// Received is the frame delivered to this device this slot, nil if
	// none. RSSI is its received strength.
	Received *Frame
	RSSI     float64

	// Acked is set for transmitters of NeedAck frames whose ACK came back.
	Acked bool

	// Collision is set for listeners that detected energy but could not
	// decode any frame (concurrent transmissions or interference).
	Collision bool

	// Activity is the radio energy class of the slot.
	Activity phy.SlotActivity
}

// Device is one protocol stack instance attached to the network.
type Device interface {
	// ID returns the device's node ID in the topology.
	ID() topology.NodeID
	// Plan is called at the start of each slot and returns the radio
	// operation for the slot.
	Plan(asn ASN) RadioOp
	// EndSlot is called after the medium resolves the slot.
	EndSlot(asn ASN, report SlotReport)
}

// Interferer is an external interference source (jammer, disturber). It is
// an interface so the interference package can implement JamLab-style
// models without the engine depending on them.
type Interferer interface {
	// ActiveOn reports whether the interferer radiates on the given
	// channel during the given slot. It must be deterministic: the engine
	// may query it several times per slot.
	ActiveOn(asn ASN, ch phy.Channel) bool
	// PowerAtDBm returns the interference power received at the given
	// node, or a value below the noise floor when out of range.
	PowerAtDBm(at topology.NodeID) float64
}

// TraceEvent is an observation hook record for experiment instrumentation.
type TraceEvent struct {
	ASN     ASN
	Kind    TraceKind
	Src     topology.NodeID
	Dst     topology.NodeID
	Frame   *Frame
	Channel phy.Channel
	// RSS is the received signal strength of a delivery, dBm (TraceDeliver
	// only).
	RSS float64
}

// TraceKind classifies trace events.
type TraceKind int

// Trace kinds.
const (
	// TraceTx records a transmission attempt.
	TraceTx TraceKind = iota + 1
	// TraceDeliver records a successful frame delivery.
	TraceDeliver
	// TraceCollision records a listener observing a collision.
	TraceCollision
)
