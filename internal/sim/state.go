package sim

import "fmt"

// NetworkState is the complete mutable state of a Network at a slot
// boundary, as plain old data. The scratch buffers and RSS matrix are
// construction-derived (topology + device count) and not part of it; the
// scheduled-event queue holds closures and therefore cannot be part of it —
// CaptureState refuses to run while events are pending. Scenario layers
// (chaos plans, flow generators) schedule their events after a restore,
// exactly as they would on a cold network.
type NetworkState struct {
	Seed     int64
	ASN      int64
	Started  bool
	EventSeq uint64
	// RNGDraws is the fading generator's position: the number of source
	// steps consumed since seeding.
	RNGDraws          uint64
	FastFadingSigmaDB float64
	Failed            []bool // indexed by node ID, entry 0 unused
	// Fade is the symmetric link-attenuation overlay, flattened like the
	// RSS matrix; nil when no fade was ever applied.
	Fade []float64
	// DriftProb/DriftSeed are the per-node clock-drift parameters; nil
	// when drift was never configured.
	DriftProb []float64
	DriftSeed []uint64

	// FadeLinkIdx/FadeLinkVal carry the scale engine's fade overlay as
	// (sparse link index, attenuation dB) pairs; nil outside scale mode or
	// when no fade is active. The indices are positions in the topology's
	// radius-pruned adjacency, which is a pure function of the topology —
	// the same deployment always yields the same link numbering.
	FadeLinkIdx []int32
	FadeLinkVal []float64

	// NapUntil/NapStart are the scale engine's per-node nap windows
	// (indexed by node ID, entry 0 unused); nil outside scale mode or when
	// no device was napping at capture.
	NapUntil []int64
	NapStart []int64
}

// CaptureState snapshots the network's mutable state. It fails while
// scheduled events or interferers are outstanding: both hold live closures
// and interfaces that no wire format can carry, so snapshots are taken at
// scenario quiesce points (after convergence, before the next plan or flow
// set is scheduled) where neither exists.
func (nw *Network) CaptureState() (*NetworkState, error) {
	if len(nw.pending) > 0 {
		return nil, fmt.Errorf("sim: capture with %d scheduled events pending (snapshot at a quiesce point, before scheduling scenario events)", len(nw.pending))
	}
	if len(nw.interferers) > 0 {
		return nil, fmt.Errorf("sim: capture with %d interferers registered (snapshot before fault injection)", len(nw.interferers))
	}
	st := &NetworkState{
		Seed:              nw.seed,
		ASN:               nw.asn,
		Started:           nw.started,
		EventSeq:          nw.eventSeq,
		RNGDraws:          nw.rngSrc.Draws(),
		FastFadingSigmaDB: nw.FastFadingSigmaDB,
		Failed:            append([]bool(nil), nw.failed...),
	}
	if nw.fade != nil {
		st.Fade = append([]float64(nil), nw.fade...)
	}
	if nw.driftProb != nil {
		st.DriftProb = append([]float64(nil), nw.driftProb...)
		st.DriftSeed = append([]uint64(nil), nw.driftSeed...)
	}
	if sc := nw.scale; sc != nil {
		for i, v := range sc.fade {
			if v != 0 {
				st.FadeLinkIdx = append(st.FadeLinkIdx, int32(i))
				st.FadeLinkVal = append(st.FadeLinkVal, v)
			}
		}
		for id := 1; id <= nw.numDevs; id++ {
			if sc.napUntil[id] != 0 {
				st.NapUntil = append([]int64(nil), sc.napUntil...)
				st.NapStart = append([]int64(nil), sc.napStart...)
				break
			}
		}
	}
	return st, nil
}

// RestoreState overlays a captured state onto a freshly built network: same
// topology, same seed, all devices attached, no slot executed yet. The
// state is deep-copied, so one in-memory snapshot can seed many branched
// networks.
func (nw *Network) RestoreState(st *NetworkState) error {
	if nw.started {
		return fmt.Errorf("sim: restore into a network that already stepped")
	}
	if st.Seed != nw.seed {
		return fmt.Errorf("sim: restore seed %d into network seeded %d", st.Seed, nw.seed)
	}
	if len(st.Failed) != len(nw.failed) {
		return fmt.Errorf("sim: restore failed-vector length %d, topology wants %d", len(st.Failed), len(nw.failed))
	}
	if nw.scale == nil && (st.FadeLinkIdx != nil || st.NapUntil != nil) {
		return fmt.Errorf("sim: restore scale-engine state into a dense-matrix network")
	}
	if nw.scale != nil && st.Fade != nil {
		return fmt.Errorf("sim: restore dense fade overlay into a scale-mode network")
	}
	if st.Fade != nil && len(st.Fade) != len(nw.rss) {
		return fmt.Errorf("sim: restore fade overlay length %d, topology wants %d", len(st.Fade), len(nw.rss))
	}
	if st.DriftProb != nil && (len(st.DriftProb) != nw.rssDim || len(st.DriftSeed) != nw.rssDim) {
		return fmt.Errorf("sim: restore drift vectors length %d/%d, topology wants %d",
			len(st.DriftProb), len(st.DriftSeed), nw.rssDim)
	}
	nw.asn = st.ASN
	nw.started = st.Started
	nw.eventSeq = st.EventSeq
	nw.rngSrc.Reset(st.RNGDraws)
	nw.FastFadingSigmaDB = st.FastFadingSigmaDB
	copy(nw.failed, st.Failed)
	if st.Fade != nil {
		nw.fade = append([]float64(nil), st.Fade...)
	} else {
		nw.fade = nil
	}
	if st.DriftProb != nil {
		nw.driftProb = append([]float64(nil), st.DriftProb...)
		nw.driftSeed = append([]uint64(nil), st.DriftSeed...)
		nw.misses = make([]bool, nw.rssDim)
	} else {
		nw.driftProb, nw.driftSeed, nw.misses = nil, nil, nil
	}
	if sc := nw.scale; sc != nil {
		if len(st.FadeLinkIdx) != len(st.FadeLinkVal) {
			return fmt.Errorf("sim: restore sparse fade pairs mismatched (%d indices, %d values)",
				len(st.FadeLinkIdx), len(st.FadeLinkVal))
		}
		sc.fade = nil
		for k, i := range st.FadeLinkIdx {
			if int(i) < 0 || int(i) >= sc.sparse.Links() {
				return fmt.Errorf("sim: restore fade link index %d outside adjacency (%d links)",
					i, sc.sparse.Links())
			}
			if sc.fade == nil {
				sc.fade = make([]float64, sc.sparse.Links())
			}
			sc.fade[i] = st.FadeLinkVal[k]
		}
		if st.NapUntil != nil {
			if len(st.NapUntil) != len(sc.napUntil) || len(st.NapStart) != len(sc.napStart) {
				return fmt.Errorf("sim: restore nap vectors length %d/%d, topology wants %d",
					len(st.NapUntil), len(st.NapStart), len(sc.napUntil))
			}
			copy(sc.napUntil, st.NapUntil)
			copy(sc.napStart, st.NapStart)
		} else {
			for i := range sc.napUntil {
				sc.napUntil[i] = 0
				sc.napStart[i] = 0
			}
		}
		sc.awake.Store(0)
		for id := 1; id <= nw.numDevs; id++ {
			if nw.devices[id] != nil && sc.napUntil[id] == 0 {
				sc.awake.Add(1)
			}
		}
	}
	return nil
}
