package sim

import (
	"testing"
	"time"

	"github.com/digs-net/digs/internal/phy"
	"github.com/digs-net/digs/internal/topology"
)

// pairTopology builds a tiny N-node line with 5 m spacing at full power,
// where adjacent nodes have perfect links.
func pairTopology(t *testing.T, n int) *topology.Topology {
	t.Helper()
	topo := &topology.Topology{
		Name:       "line",
		NumAPs:     1,
		TxPowerDBm: 0,
	}
	topo.Nodes = append(topo.Nodes, topology.Node{})
	for i := 1; i <= n; i++ {
		topo.Nodes = append(topo.Nodes, topology.Node{
			ID: topology.NodeID(i), X: float64(i) * 5, IsAP: i == 1,
		})
	}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	return topo
}

// scriptDevice is a programmable test device.
type scriptDevice struct {
	id      topology.NodeID
	plan    func(asn ASN) RadioOp
	reports []SlotReport
}

func (d *scriptDevice) ID() topology.NodeID { return d.id }
func (d *scriptDevice) Plan(asn ASN) RadioOp {
	if d.plan == nil {
		return Sleep()
	}
	return d.plan(asn)
}
func (d *scriptDevice) EndSlot(_ ASN, rep SlotReport) { d.reports = append(d.reports, rep) }

func txPlan(f *Frame, ch phy.Channel, ack bool) func(ASN) RadioOp {
	return func(ASN) RadioOp {
		return RadioOp{Kind: OpTx, Channel: ch, Frame: f, NeedAck: ack}
	}
}

func rxPlan(ch phy.Channel) func(ASN) RadioOp {
	return func(ASN) RadioOp { return RadioOp{Kind: OpRx, Channel: ch} }
}

func TestUnicastDeliveryAndAck(t *testing.T) {
	topo := pairTopology(t, 2)
	nw := NewNetwork(topo, 1)
	frame := &Frame{Kind: KindData, Src: 2, Dst: 1, Seq: 7}
	tx := &scriptDevice{id: 2, plan: txPlan(frame, 15, true)}
	rx := &scriptDevice{id: 1, plan: rxPlan(15)}
	for _, d := range []Device{tx, rx} {
		if err := nw.Attach(d); err != nil {
			t.Fatal(err)
		}
	}
	nw.Run(20)

	acked := 0
	for _, rep := range tx.reports {
		if rep.Acked {
			acked++
		}
	}
	delivered := 0
	for _, rep := range rx.reports {
		if rep.Received != nil {
			if rep.Received.Seq != 7 {
				t.Fatalf("delivered wrong frame: %+v", rep.Received)
			}
			delivered++
		}
	}
	if delivered < 19 {
		t.Fatalf("perfect 5m link delivered %d/20 frames", delivered)
	}
	if acked < 19 {
		t.Fatalf("perfect 5m link acked %d/20 frames", acked)
	}
	// Receiver spent ACK energy; sender waited for ACKs.
	if rx.reports[0].Activity != phy.ActivityRxFrameAck {
		t.Fatalf("receiver activity = %v, want RxFrameAck", rx.reports[0].Activity)
	}
	if tx.reports[0].Activity != phy.ActivityTxAwaitAck {
		t.Fatalf("sender activity = %v, want TxAwaitAck", tx.reports[0].Activity)
	}
}

func TestBroadcastHasNoAck(t *testing.T) {
	topo := pairTopology(t, 3)
	nw := NewNetwork(topo, 1)
	frame := &Frame{Kind: KindEB, Src: 2, Dst: topology.Broadcast}
	tx := &scriptDevice{id: 2, plan: txPlan(frame, 15, false)}
	rx1 := &scriptDevice{id: 1, plan: rxPlan(15)}
	rx3 := &scriptDevice{id: 3, plan: rxPlan(15)}
	for _, d := range []Device{tx, rx1, rx3} {
		if err := nw.Attach(d); err != nil {
			t.Fatal(err)
		}
	}
	nw.Run(10)
	for _, rep := range tx.reports {
		if rep.Acked {
			t.Fatal("broadcast frame got an ACK")
		}
	}
	for _, rx := range []*scriptDevice{rx1, rx3} {
		got := 0
		for _, rep := range rx.reports {
			if rep.Received != nil {
				got++
			}
		}
		if got < 9 {
			t.Fatalf("node %d received %d/10 broadcasts", rx.id, got)
		}
	}
}

func TestWrongChannelHearsNothing(t *testing.T) {
	topo := pairTopology(t, 2)
	nw := NewNetwork(topo, 1)
	frame := &Frame{Kind: KindData, Src: 2, Dst: 1}
	tx := &scriptDevice{id: 2, plan: txPlan(frame, 15, false)}
	rx := &scriptDevice{id: 1, plan: rxPlan(20)}
	for _, d := range []Device{tx, rx} {
		if err := nw.Attach(d); err != nil {
			t.Fatal(err)
		}
	}
	nw.Run(10)
	for _, rep := range rx.reports {
		if rep.Received != nil {
			t.Fatal("received a frame on the wrong channel")
		}
		if rep.Activity != phy.ActivityRxIdle {
			t.Fatalf("idle listener activity = %v, want RxIdle", rep.Activity)
		}
	}
}

func TestScanHearsAnyChannel(t *testing.T) {
	topo := pairTopology(t, 2)
	nw := NewNetwork(topo, 1)
	frame := &Frame{Kind: KindEB, Src: 1, Dst: topology.Broadcast}
	tx := &scriptDevice{id: 1, plan: func(asn ASN) RadioOp {
		return RadioOp{Kind: OpTx, Channel: phy.HopChannel(asn, 3), Frame: frame}
	}}
	rx := &scriptDevice{id: 2, plan: func(ASN) RadioOp { return RadioOp{Kind: OpScan} }}
	for _, d := range []Device{tx, rx} {
		if err := nw.Attach(d); err != nil {
			t.Fatal(err)
		}
	}
	nw.Run(10)
	got := 0
	for _, rep := range rx.reports {
		if rep.Received != nil {
			got++
		}
	}
	if got < 9 {
		t.Fatalf("scanner received %d/10 hopped broadcasts", got)
	}
}

func TestCollisionBetweenEqualPowerSenders(t *testing.T) {
	// Nodes 1 and 3 are equidistant from node 2; both transmit to it in
	// the same slot on the same channel. SIR ~ 0 dB so nothing decodes.
	topo := pairTopology(t, 3)
	nw := NewNetwork(topo, 1)
	nw.FastFadingSigmaDB = 0 // exact symmetry: SIR is exactly 0 dB
	f1 := &Frame{Kind: KindData, Src: 1, Dst: 2}
	f3 := &Frame{Kind: KindData, Src: 3, Dst: 2}
	tx1 := &scriptDevice{id: 1, plan: txPlan(f1, 15, false)}
	tx3 := &scriptDevice{id: 3, plan: txPlan(f3, 15, false)}
	rx := &scriptDevice{id: 2, plan: rxPlan(15)}
	for _, d := range []Device{tx1, tx3, rx} {
		if err := nw.Attach(d); err != nil {
			t.Fatal(err)
		}
	}
	nw.Run(50)
	delivered, collisions := 0, 0
	for _, rep := range rx.reports {
		if rep.Received != nil {
			delivered++
		}
		if rep.Collision {
			collisions++
		}
	}
	if delivered != 0 {
		t.Fatalf("equal-power collision delivered %d/50 frames; capture should fail", delivered)
	}
	if collisions != 50 {
		t.Fatalf("only %d/50 slots flagged as collisions", collisions)
	}
}

func TestCaptureStrongerFrameWins(t *testing.T) {
	// Node 2 is 5 m from node 1; node 4 is 15 m away. When both transmit,
	// node 2's frame is ~14 dB stronger at node 1 and should capture.
	topo := pairTopology(t, 4)
	nw := NewNetwork(topo, 1)
	fNear := &Frame{Kind: KindData, Src: 2, Dst: 1}
	fFar := &Frame{Kind: KindData, Src: 4, Dst: 1}
	near := &scriptDevice{id: 2, plan: txPlan(fNear, 15, false)}
	far := &scriptDevice{id: 4, plan: txPlan(fFar, 15, false)}
	rx := &scriptDevice{id: 1, plan: rxPlan(15)}
	for _, d := range []Device{near, far, rx} {
		if err := nw.Attach(d); err != nil {
			t.Fatal(err)
		}
	}
	nw.Run(50)
	nearWins := 0
	for _, rep := range rx.reports {
		if rep.Received != nil && rep.Received.Src == 2 {
			nearWins++
		}
	}
	if nearWins < 35 {
		t.Fatalf("capture effect: near frame decoded %d/50 times, want >= 35", nearWins)
	}
}

func TestFailedNodeIsSilentAndDeaf(t *testing.T) {
	topo := pairTopology(t, 2)
	nw := NewNetwork(topo, 1)
	frame := &Frame{Kind: KindData, Src: 2, Dst: 1}
	tx := &scriptDevice{id: 2, plan: txPlan(frame, 15, false)}
	rx := &scriptDevice{id: 1, plan: rxPlan(15)}
	for _, d := range []Device{tx, rx} {
		if err := nw.Attach(d); err != nil {
			t.Fatal(err)
		}
	}
	nw.Fail(2)
	nw.Run(10)
	for _, rep := range rx.reports {
		if rep.Received != nil {
			t.Fatal("received a frame from a failed node")
		}
	}
	if len(tx.reports) != 0 {
		t.Fatal("failed node still receives slot reports")
	}
	nw.Restore(2)
	nw.Run(10)
	if len(tx.reports) == 0 {
		t.Fatal("restored node gets no slot reports")
	}
}

func TestScheduledEventsFire(t *testing.T) {
	topo := pairTopology(t, 2)
	nw := NewNetwork(topo, 1)
	var fired []ASN
	nw.At(5, func() { fired = append(fired, 5) })
	nw.At(2, func() { fired = append(fired, 2) })
	nw.AfterDuration(100*time.Millisecond, func() { fired = append(fired, 10) })
	// A past-dated event fires at the next slot boundary instead of being
	// dropped (fault plans may script stale relative offsets).
	nw.At(-1, func() { fired = append(fired, nw.ASN()) })
	nw.Run(20)
	if len(fired) != 4 || fired[0] != 0 || fired[1] != 2 || fired[2] != 5 || fired[3] != 10 {
		t.Fatalf("events fired = %v, want [0 2 5 10]", fired)
	}
}

func TestAttachValidation(t *testing.T) {
	topo := pairTopology(t, 2)
	nw := NewNetwork(topo, 1)
	if err := nw.Attach(&scriptDevice{id: 99}); err == nil {
		t.Fatal("attached device outside topology")
	}
	if err := nw.Attach(&scriptDevice{id: 1}); err != nil {
		t.Fatal(err)
	}
	if err := nw.Attach(&scriptDevice{id: 1}); err == nil {
		t.Fatal("attached the same ID twice")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int {
		topo := pairTopology(t, 4)
		nw := NewNetwork(topo, 42)
		frame := &Frame{Kind: KindData, Src: 4, Dst: 3}
		tx := &scriptDevice{id: 4, plan: txPlan(frame, 15, true)}
		rx := &scriptDevice{id: 3, plan: rxPlan(15)}
		other := &scriptDevice{id: 2, plan: rxPlan(15)}
		for _, d := range []Device{tx, rx, other} {
			if err := nw.Attach(d); err != nil {
				t.Fatal(err)
			}
		}
		nw.Run(200)
		var out []int
		for i, rep := range rx.reports {
			if rep.Received != nil {
				out = append(out, i)
			}
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at delivery %d: slot %d vs %d", i, a[i], b[i])
		}
	}
}

func TestTraceEvents(t *testing.T) {
	topo := pairTopology(t, 2)
	nw := NewNetwork(topo, 1)
	frame := &Frame{Kind: KindData, Src: 2, Dst: 1}
	tx := &scriptDevice{id: 2, plan: txPlan(frame, 15, false)}
	rx := &scriptDevice{id: 1, plan: rxPlan(15)}
	for _, d := range []Device{tx, rx} {
		if err := nw.Attach(d); err != nil {
			t.Fatal(err)
		}
	}
	var txEvents, deliverEvents int
	nw.Trace = func(ev TraceEvent) {
		switch ev.Kind {
		case TraceTx:
			txEvents++
		case TraceDeliver:
			deliverEvents++
		}
	}
	nw.Run(10)
	if txEvents != 10 {
		t.Fatalf("traced %d transmissions, want 10", txEvents)
	}
	if deliverEvents < 9 {
		t.Fatalf("traced %d deliveries, want >= 9", deliverEvents)
	}
}

func TestOverheardUnicastIsFiltered(t *testing.T) {
	// Node 3 listens while node 2 unicasts to node 1: node 3 spends RX
	// energy but must not have the frame delivered.
	topo := pairTopology(t, 3)
	nw := NewNetwork(topo, 1)
	frame := &Frame{Kind: KindData, Src: 2, Dst: 1}
	tx := &scriptDevice{id: 2, plan: txPlan(frame, 15, false)}
	rx := &scriptDevice{id: 1, plan: rxPlan(15)}
	snoop := &scriptDevice{id: 3, plan: rxPlan(15)}
	for _, d := range []Device{tx, rx, snoop} {
		if err := nw.Attach(d); err != nil {
			t.Fatal(err)
		}
	}
	nw.Run(10)
	for _, rep := range snoop.reports {
		if rep.Received != nil {
			t.Fatal("snooper had someone else's unicast delivered")
		}
	}
}

func TestSlotsForAndTimeAt(t *testing.T) {
	if got := SlotsFor(time.Second); got != 100 {
		t.Fatalf("SlotsFor(1s) = %d, want 100", got)
	}
	if got := TimeAt(100); got != time.Second {
		t.Fatalf("TimeAt(100) = %v, want 1s", got)
	}
}

func TestRunUntilSemantics(t *testing.T) {
	topo := pairTopology(t, 2)
	nw := NewNetwork(topo, 1)
	// Predicate true immediately: zero slots run.
	ran, ok := nw.RunUntil(100, func() bool { return true })
	if ran != 0 || !ok {
		t.Fatalf("immediate predicate: ran %d, ok %v", ran, ok)
	}
	// Predicate true after 7 slots.
	ran, ok = nw.RunUntil(100, func() bool { return nw.ASN() >= 7 })
	if ran != 7 || !ok {
		t.Fatalf("delayed predicate: ran %d, ok %v", ran, ok)
	}
	// Budget exhaustion.
	ran, ok = nw.RunUntil(5, func() bool { return false })
	if ran != 5 || ok {
		t.Fatalf("exhausted budget: ran %d, ok %v", ran, ok)
	}
	if nw.Topology() != topo {
		t.Fatal("Topology accessor broken")
	}
	if nw.Failed(999) {
		t.Fatal("out-of-range Failed should be false")
	}
}

func TestInterfererBelowNoiseFloorIgnored(t *testing.T) {
	topo := pairTopology(t, 2)
	nw := NewNetwork(topo, 1)
	nw.AddInterferer(&quietInterferer{})
	frame := &Frame{Kind: KindData, Src: 2, Dst: 1}
	tx := &scriptDevice{id: 2, plan: txPlan(frame, 15, false)}
	rx := &scriptDevice{id: 1, plan: rxPlan(15)}
	for _, d := range []Device{tx, rx} {
		if err := nw.Attach(d); err != nil {
			t.Fatal(err)
		}
	}
	nw.Run(20)
	got := 0
	for _, rep := range rx.reports {
		if rep.Received != nil {
			got++
		}
	}
	if got < 19 {
		t.Fatalf("sub-noise interferer disturbed delivery: %d/20", got)
	}
}

type quietInterferer struct{}

func (quietInterferer) ActiveOn(ASN, phy.Channel) bool     { return true }
func (quietInterferer) PowerAtDBm(topology.NodeID) float64 { return -150 }

func TestStrongInterfererBlocksAcks(t *testing.T) {
	// An interferer audible only at the SENDER corrupts the ACK path: the
	// receiver gets the frame but the sender never learns.
	topo := pairTopology(t, 2)
	nw := NewNetwork(topo, 1)
	nw.AddInterferer(&senderSideInterferer{victim: 2})
	frame := &Frame{Kind: KindData, Src: 2, Dst: 1}
	tx := &scriptDevice{id: 2, plan: txPlan(frame, 15, true)}
	rx := &scriptDevice{id: 1, plan: rxPlan(15)}
	for _, d := range []Device{tx, rx} {
		if err := nw.Attach(d); err != nil {
			t.Fatal(err)
		}
	}
	nw.Run(30)
	received, acked := 0, 0
	for _, rep := range rx.reports {
		if rep.Received != nil {
			received++
		}
	}
	for _, rep := range tx.reports {
		if rep.Acked {
			acked++
		}
	}
	if received < 25 {
		t.Fatalf("receiver side should be clean: %d/30", received)
	}
	if acked > 5 {
		t.Fatalf("sender-side interference should kill ACKs: %d acked", acked)
	}
}

type senderSideInterferer struct{ victim topology.NodeID }

func (senderSideInterferer) ActiveOn(ASN, phy.Channel) bool { return true }
func (s senderSideInterferer) PowerAtDBm(at topology.NodeID) float64 {
	if at == s.victim {
		return -40
	}
	return -150
}

func TestAttachAfterStartRejected(t *testing.T) {
	topo := pairTopology(t, 3)
	nw := NewNetwork(topo, 1)
	if err := nw.Attach(&scriptDevice{id: 1}); err != nil {
		t.Fatal(err)
	}
	if nw.Started() {
		t.Fatal("network started before the first Step")
	}
	nw.Run(1)
	if !nw.Started() {
		t.Fatal("network not started after a Step")
	}
	if err := nw.Attach(&scriptDevice{id: 2}); err == nil {
		t.Fatal("attached a device after the simulation started")
	}
}

// TestWideScanDeterministicOrder regresses the map-iteration bug: a
// wide-band scan gathers transmitters across channels, and the shared
// RNG's fading draws must be consumed in a fixed order so identical seeds
// give identical traces. With the old byChannel map this reordered
// run-to-run whenever two transmitters used different channels.
func TestWideScanDeterministicOrder(t *testing.T) {
	run := func() []float64 {
		topo := pairTopology(t, 5)
		nw := NewNetwork(topo, 99)
		// Four concurrent broadcasters on four different channels.
		for i, ch := range []phy.Channel{26, 11, 19, 14} {
			id := topology.NodeID(i + 1)
			f := &Frame{Kind: KindEB, Src: id, Dst: topology.Broadcast}
			if err := nw.Attach(&scriptDevice{id: id, plan: txPlan(f, ch, false)}); err != nil {
				t.Fatal(err)
			}
		}
		scanner := &scriptDevice{id: 5, plan: func(ASN) RadioOp { return RadioOp{Kind: OpScan} }}
		if err := nw.Attach(scanner); err != nil {
			t.Fatal(err)
		}
		nw.Run(100)
		var rssis []float64
		for _, rep := range scanner.reports {
			if rep.Received != nil {
				rssis = append(rssis, rep.RSSI, float64(rep.Received.Src))
			}
		}
		return rssis
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("wide-scan traces differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("wide-scan traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
	if len(a) == 0 {
		t.Fatal("scanner heard nothing")
	}
}

// quietDevice plans without recording reports, so the slot loop's
// allocation behaviour can be measured in isolation.
type quietDevice struct {
	id   topology.NodeID
	plan func(asn ASN) RadioOp
}

func (d *quietDevice) ID() topology.NodeID     { return d.id }
func (d *quietDevice) Plan(asn ASN) RadioOp    { return d.plan(asn) }
func (d *quietDevice) EndSlot(ASN, SlotReport) {}

// TestSlotLoopZeroAllocs pins the steady-state slot loop at zero heap
// allocations per slot: transmissions, receptions, ACKs, a wide-band
// scanner and an active interferer all resolve out of reused scratch
// buffers once the first slots have warmed them up.
func TestSlotLoopZeroAllocs(t *testing.T) {
	topo := pairTopology(t, 4)
	nw := NewNetwork(topo, 7)
	nw.AddInterferer(&quietInterferer{})
	frame := &Frame{Kind: KindData, Src: 2, Dst: 1}
	eb := &Frame{Kind: KindEB, Src: 3, Dst: topology.Broadcast}
	devs := []*quietDevice{
		{id: 1, plan: func(ASN) RadioOp { return RadioOp{Kind: OpRx, Channel: 15} }},
		{id: 2, plan: func(ASN) RadioOp {
			return RadioOp{Kind: OpTx, Channel: 15, Frame: frame, NeedAck: true}
		}},
		{id: 3, plan: func(asn ASN) RadioOp {
			return RadioOp{Kind: OpTx, Channel: phy.HopChannel(asn, 2), Frame: eb}
		}},
		{id: 4, plan: func(ASN) RadioOp { return RadioOp{Kind: OpScan} }},
	}
	for _, d := range devs {
		if err := nw.Attach(d); err != nil {
			t.Fatal(err)
		}
	}
	nw.Run(200) // warm the scratch buffers past any growth
	allocs := testing.AllocsPerRun(300, func() { nw.Step() })
	if allocs != 0 {
		t.Fatalf("steady-state slot loop allocates %.1f objects/slot, want 0", allocs)
	}
}

// TestEventQueueOrderAndChaining covers the heap replacement for the old
// per-slot event map: interleaved scheduling, same-slot FIFO order, and
// events scheduled from inside an event for the same slot.
func TestEventQueueOrderAndChaining(t *testing.T) {
	topo := pairTopology(t, 2)
	nw := NewNetwork(topo, 1)
	var fired []int
	nw.At(7, func() { fired = append(fired, 71) })
	nw.At(3, func() { fired = append(fired, 3) })
	nw.At(7, func() { fired = append(fired, 72) })
	nw.At(5, func() {
		fired = append(fired, 5)
		// Chain an event for the same slot from inside an event: it must
		// run within this slot, not be lost.
		nw.At(5, func() { fired = append(fired, 55) })
	})
	nw.Run(10)
	want := []int{3, 5, 55, 71, 72}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
}

// BenchmarkSlotLoop measures the raw per-slot cost of the engine with a
// busy medium (profile with go test -bench=SlotLoop -cpuprofile).
func BenchmarkSlotLoop(b *testing.B) {
	topo := &topology.Topology{Name: "bench-line", NumAPs: 1, TxPowerDBm: 0}
	topo.Nodes = append(topo.Nodes, topology.Node{})
	const n = 50
	for i := 1; i <= n; i++ {
		topo.Nodes = append(topo.Nodes, topology.Node{
			ID: topology.NodeID(i), X: float64(i) * 5, IsAP: i == 1,
		})
	}
	nw := NewNetwork(topo, 1)
	frames := make([]*Frame, n+1)
	for i := 1; i <= n; i++ {
		frames[i] = &Frame{Kind: KindData, Src: topology.NodeID(i), Dst: topology.NodeID(i - 1)}
	}
	for i := 1; i <= n; i++ {
		id := topology.NodeID(i)
		var plan func(asn ASN) RadioOp
		switch {
		case i%2 == 0:
			f := frames[i]
			plan = func(asn ASN) RadioOp {
				return RadioOp{Kind: OpTx, Channel: phy.HopChannel(asn, uint8(i%16)), Frame: f, NeedAck: true}
			}
		default:
			plan = func(asn ASN) RadioOp {
				return RadioOp{Kind: OpRx, Channel: phy.HopChannel(asn, uint8((i+1)%16))}
			}
		}
		if err := nw.Attach(&quietDevice{id: id, plan: plan}); err != nil {
			b.Fatal(err)
		}
	}
	nw.Run(100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw.Step()
	}
}

// TestLinkFadeSilencesLink fades a perfect link below sensitivity and
// checks delivery stops, then lifts the fade and checks it resumes.
func TestLinkFadeSilencesLink(t *testing.T) {
	topo := pairTopology(t, 2)
	nw := NewNetwork(topo, 1)
	nw.FastFadingSigmaDB = 0
	frame := &Frame{Kind: KindData, Src: 2, Dst: 1, Seq: 7}
	tx := &scriptDevice{id: 2, plan: txPlan(frame, 15, false)}
	rx := &scriptDevice{id: 1, plan: rxPlan(15)}
	for _, d := range []Device{tx, rx} {
		if err := nw.Attach(d); err != nil {
			t.Fatal(err)
		}
	}
	received := func() int {
		n := 0
		for _, rep := range rx.reports {
			if rep.Received != nil {
				n++
			}
		}
		return n
	}

	nw.AddLinkFade(1, 2, 200)
	nw.Run(20)
	if received() != 0 {
		t.Fatalf("received %d frames across a 200 dB fade", received())
	}
	nw.AddLinkFade(1, 2, -200)
	nw.Run(20)
	if received() == 0 {
		t.Fatal("no frames received after the fade lifted")
	}
}

// TestClockDriftBlocksSlots gives the receiver a fully drifted slot timer
// and checks it decodes nothing while the fault is active, recovers when
// cleared, and that the pattern is a pure function of the drift seed.
func TestClockDriftBlocksSlots(t *testing.T) {
	run := func(missProb float64, seed int64) int {
		topo := pairTopology(t, 2)
		nw := NewNetwork(topo, 1)
		nw.FastFadingSigmaDB = 0
		frame := &Frame{Kind: KindData, Src: 2, Dst: 1, Seq: 7}
		tx := &scriptDevice{id: 2, plan: txPlan(frame, 15, false)}
		rx := &scriptDevice{id: 1, plan: rxPlan(15)}
		for _, d := range []Device{tx, rx} {
			if err := nw.Attach(d); err != nil {
				t.Fatal(err)
			}
		}
		nw.SetClockDrift(1, missProb, seed)
		nw.Run(200)
		n := 0
		for _, rep := range rx.reports {
			if rep.Received != nil {
				n++
			}
		}
		return n
	}
	if got := run(1.0, 3); got != 0 {
		t.Fatalf("fully drifted receiver decoded %d frames", got)
	}
	healthy := run(0, 3)
	if healthy == 0 {
		t.Fatal("healthy receiver decoded nothing")
	}
	half := run(0.5, 3)
	if half == 0 || half >= healthy {
		t.Fatalf("half-drifted receiver decoded %d frames (healthy %d)", half, healthy)
	}
	if again := run(0.5, 3); again != half {
		t.Fatalf("same drift seed decoded %d then %d frames", half, again)
	}
	if other := run(0.5, 4); other == half {
		t.Logf("different drift seeds coincided at %d frames (possible, just unlikely)", other)
	}
}
