package telemetry

import "github.com/digs-net/digs/internal/topology"

// Splitter adapts any Tracer for the scale engine's shard-parallel slot
// phases. During a parallel phase, Record calls land on per-shard buffers
// — safe without locks because every instrumented layer records events
// with Node set to the node being processed, and each node is processed
// by exactly one shard goroutine. When the phase ends, the buffers drain
// into the downstream tracer in shard order, which (with the engine's
// contiguous ID-range sharding and ascending in-shard processing order)
// is ascending node-ID order for any shard count: the downstream stream
// is bit-identical whether the run used 1 shard or 8.
//
// Outside parallel phases — scheduled events, the engine's own trace
// drain, and every dense-engine run — Record passes straight through.
//
// Wire it with Network.SetParallelNotify(sp.SetParallel); the engine
// calls SetParallel from the main goroutine only, so no synchronisation
// is needed around the mode flag.
type Splitter struct {
	out      Tracer
	shardOf  func(topology.NodeID) int
	bufs     [][]Event
	parallel bool
}

// NewSplitter wraps the downstream tracer for a network with the given
// shard count; shardOf maps a node ID to its owning shard (use
// Network.ShardOf).
func NewSplitter(out Tracer, shards int, shardOf func(topology.NodeID) int) *Splitter {
	if shards < 1 {
		shards = 1
	}
	return &Splitter{out: out, shardOf: shardOf, bufs: make([][]Event, shards)}
}

// SetParallel is the engine's phase bracket: true as a shard-parallel
// phase starts, false as it ends. Ending a phase drains the buffers in
// shard order.
func (s *Splitter) SetParallel(on bool) {
	if on {
		s.parallel = true
		return
	}
	s.parallel = false
	for i := range s.bufs {
		for _, ev := range s.bufs[i] {
			s.out.Record(ev)
		}
		s.bufs[i] = s.bufs[i][:0]
	}
}

// Record implements Tracer.
func (s *Splitter) Record(ev Event) {
	if !s.parallel {
		s.out.Record(ev)
		return
	}
	sh := s.shardOf(ev.Node)
	if sh < 0 || sh >= len(s.bufs) {
		sh = 0
	}
	s.bufs[sh] = append(s.bufs[sh], ev)
}

// Flush implements Tracer by flushing the downstream tracer.
func (s *Splitter) Flush() error { return s.out.Flush() }
