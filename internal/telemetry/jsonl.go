package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"github.com/digs-net/digs/internal/topology"
)

// header is the first line of every JSONL trace stream.
type header struct {
	Schema  string `json:"schema"`
	Version int    `json:"version"`
}

// headerLine returns the serialized stream header (without newline).
func headerLine() []byte {
	return []byte(fmt.Sprintf(`{"schema":%q,"version":%d}`, SchemaName, SchemaVersion))
}

// JSONL exports events as one JSON object per line, preceded by a
// versioned schema header. Lines are written in a fixed field order with
// deterministic number formatting, so two identical simulations produce
// byte-identical streams — the property the campaign merge and the
// golden tests rest on.
type JSONL struct {
	w   io.Writer
	buf []byte
	err error
}

var _ Tracer = (*JSONL)(nil)

// NewJSONL returns a JSONL sink writing to w. The schema header is
// written immediately. The sink is not safe for concurrent use; parallel
// campaigns give each job its own sink (see WithJob and MergeJSONL).
func NewJSONL(w io.Writer) *JSONL {
	s := &JSONL{w: w, buf: make([]byte, 0, 256)}
	_, s.err = w.Write(append(headerLine(), '\n'))
	return s
}

// Record implements Tracer: it appends one line to the stream.
func (s *JSONL) Record(ev Event) {
	if s.err != nil {
		return
	}
	s.buf = appendEventJSON(s.buf[:0], &ev)
	s.buf = append(s.buf, '\n')
	_, s.err = s.w.Write(s.buf)
}

// Flush implements Tracer. The sink writes through on every Record, so
// Flush only reports the first write error.
func (s *JSONL) Flush() error { return s.err }

// appendEventJSON serializes one event in the fixed v1 field order.
func appendEventJSON(b []byte, ev *Event) []byte {
	b = append(b, `{"asn":`...)
	b = strconv.AppendInt(b, ev.ASN, 10)
	b = append(b, `,"ev":"`...)
	b = append(b, ev.Type.String()...)
	b = append(b, `","node":`...)
	b = strconv.AppendInt(b, int64(ev.Node), 10)
	b = append(b, `,"peer":`...)
	b = strconv.AppendInt(b, int64(ev.Peer), 10)
	b = append(b, `,"peer2":`...)
	b = strconv.AppendInt(b, int64(ev.Peer2), 10)
	b = append(b, `,"origin":`...)
	b = strconv.AppendInt(b, int64(ev.Origin), 10)
	b = append(b, `,"flow":`...)
	b = strconv.AppendUint(b, uint64(ev.Flow), 10)
	b = append(b, `,"seq":`...)
	b = strconv.AppendUint(b, uint64(ev.Seq), 10)
	b = append(b, `,"kind":`...)
	b = strconv.AppendUint(b, uint64(ev.Kind), 10)
	b = append(b, `,"hop":`...)
	b = strconv.AppendUint(b, uint64(ev.Hop), 10)
	b = append(b, `,"try":`...)
	b = strconv.AppendUint(b, uint64(ev.Attempt), 10)
	b = append(b, `,"ch":`...)
	b = strconv.AppendUint(b, uint64(ev.Channel), 10)
	b = append(b, `,"choff":`...)
	b = strconv.AppendUint(b, uint64(ev.ChOff), 10)
	b = append(b, `,"ack":`...)
	b = strconv.AppendBool(b, ev.Acked)
	b = append(b, `,"rss":`...)
	b = strconv.AppendFloat(b, ev.RSS, 'g', -1, 64)
	b = append(b, `,"q":`...)
	b = strconv.AppendInt(b, int64(ev.Queue), 10)
	b = append(b, `,"reason":"`...)
	b = append(b, ev.Reason.String()...)
	b = append(b, `","code":`...)
	b = strconv.AppendUint(b, uint64(ev.Code), 10)
	b = append(b, `,"job":`...)
	b = strconv.AppendInt(b, int64(ev.Job), 10)
	b = append(b, `,"born":`...)
	b = strconv.AppendInt(b, ev.Born, 10)
	return append(b, '}')
}

// jsonEvent mirrors the v1 line layout for decoding.
type jsonEvent struct {
	ASN    int64   `json:"asn"`
	Ev     string  `json:"ev"`
	Node   int     `json:"node"`
	Peer   int     `json:"peer"`
	Peer2  int     `json:"peer2"`
	Origin int     `json:"origin"`
	Flow   uint16  `json:"flow"`
	Seq    uint16  `json:"seq"`
	Kind   uint8   `json:"kind"`
	Hop    uint8   `json:"hop"`
	Try    uint16  `json:"try"`
	Ch     uint8   `json:"ch"`
	ChOff  uint8   `json:"choff"`
	Ack    bool    `json:"ack"`
	RSS    float64 `json:"rss"`
	Q      int16   `json:"q"`
	Reason string  `json:"reason"`
	Code   uint8   `json:"code"`
	Job    int32   `json:"job"`
	Born   int64   `json:"born"`
}

// Scan reads a JSONL stream, validates its schema header and calls fn for
// every event in order. It stops at the first error from fn.
func Scan(r io.Reader, fn func(Event) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	first := true
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		if first {
			first = false
			var h header
			if err := json.Unmarshal(raw, &h); err != nil || h.Schema == "" {
				return fmt.Errorf("telemetry: line 1 is not a trace header: %q", raw)
			}
			if h.Schema != SchemaName || h.Version != SchemaVersion {
				return fmt.Errorf("telemetry: unsupported trace schema %s/v%d (want %s/v%d)",
					h.Schema, h.Version, SchemaName, SchemaVersion)
			}
			continue
		}
		var je jsonEvent
		if err := json.Unmarshal(raw, &je); err != nil {
			return fmt.Errorf("telemetry: line %d: %w", line, err)
		}
		ev := Event{
			ASN:     je.ASN,
			Type:    EventTypeFromString(je.Ev),
			Node:    topology.NodeID(je.Node),
			Peer:    topology.NodeID(je.Peer),
			Peer2:   topology.NodeID(je.Peer2),
			Origin:  topology.NodeID(je.Origin),
			Flow:    je.Flow,
			Seq:     je.Seq,
			Kind:    je.Kind,
			Hop:     je.Hop,
			Attempt: je.Try,
			Channel: je.Ch,
			ChOff:   je.ChOff,
			Acked:   je.Ack,
			RSS:     je.RSS,
			Queue:   je.Q,
			Reason:  DropReasonFromString(je.Reason),
			Code:    je.Code,
			Job:     je.Job,
			Born:    je.Born,
		}
		if ev.Type == 0 {
			return fmt.Errorf("telemetry: line %d: unknown event type %q", line, je.Ev)
		}
		if err := fn(ev); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("telemetry: %w", err)
	}
	if first {
		return fmt.Errorf("telemetry: empty trace (missing schema header)")
	}
	return nil
}

// MergeJSONL concatenates per-job JSONL streams into one stream: a single
// schema header followed by each part's events in the order given. Each
// part must itself be a valid stream (its header is validated and then
// stripped). Merging job-indexed parts in job order is deterministic, so
// a campaign produces byte-identical merged traces at any worker count.
func MergeJSONL(dst io.Writer, parts ...[]byte) error {
	want := append(headerLine(), '\n')
	if _, err := dst.Write(want); err != nil {
		return err
	}
	for i, p := range parts {
		if !bytes.HasPrefix(p, want) {
			head, _, _ := bytes.Cut(p, []byte("\n"))
			return fmt.Errorf("telemetry: merge part %d: bad or missing schema header %q", i, head)
		}
		if _, err := dst.Write(p[len(want):]); err != nil {
			return err
		}
	}
	return nil
}
