package telemetry

import (
	"sort"

	"github.com/digs-net/digs/internal/topology"
)

// SpanKey identifies one application packet end to end across a merged
// multi-job trace.
type SpanKey struct {
	Job    int32
	Origin topology.NodeID
	Flow   uint16
	Seq    uint16
}

// Span is the folded lifecycle of one application packet.
type Span struct {
	// Born is the generation slot; Delivered the first sink arrival
	// (HasDelivered false while in flight or lost).
	Born         int64
	Delivered    int64
	HasDelivered bool
	// Hops is the number of links the packet crossed to its sink (0
	// until delivered).
	Hops uint8
	// Attempts counts transmission attempts spent on the packet across
	// all hops.
	Attempts int
	// DropReason is set when some node dropped the packet (the packet
	// may still deliver over a redundant route).
	DropReason DropReason
}

// NodeStats attributes losses and load to one node: where a packet died
// and what its radio spent, reconstructed purely from the event stream.
type NodeStats struct {
	Node       topology.NodeID
	TxAttempts int64
	TxAcked    int64
	TxData     int64
	Received   int64
	Delivered  int64
	Collisions int64
	Drops      [len(reasonNames)]int64
	MaxQueue   int16
}

// DropTotal sums the node's drops across reasons.
func (n *NodeStats) DropTotal() int64 {
	var t int64
	for _, d := range n.Drops {
		t += d
	}
	return t
}

// CellKey names one schedule cell: the slot offset within the folding
// slotframe and the channel offset (hopping lane).
type CellKey struct {
	Offset int64
	ChOff  uint8
}

// CellStats is the utilization of one schedule cell.
type CellStats struct {
	Cell  CellKey
	Tx    int64
	Acked int64
	// Owner is the node that transmitted most in the cell, Owners the
	// number of distinct transmitters (dedicated cells have one).
	Owner  topology.NodeID
	Owners int
	owners map[topology.NodeID]int64
}

// QueueHistBuckets bounds the queue-depth histogram; the last bucket
// collects every depth >= QueueHistBuckets-1.
const QueueHistBuckets = 17

// Aggregate folds the event stream into the summaries the digs-trace CLI
// prints: packet spans (PDR, latency), per-hop loss attribution, per-cell
// utilization and queue-depth histograms. It implements Tracer, so it can
// run live as a sink or replay a decoded JSONL stream.
type Aggregate struct {
	// FrameLen is the slotframe length cells are folded over (the
	// protocol's application slotframe; digs-trace exposes it as -frame).
	FrameLen int64

	events       int64
	jobs         map[int32]struct{}
	spans        map[SpanKey]*Span
	nodes        map[topology.NodeID]*NodeStats
	cells        map[CellKey]*CellStats
	queueHist    [QueueHistBuckets]int64
	routeChanges int64
	faults       int64
	reconverged  int64
	violations   int64
	repairs      int64
}

var _ Tracer = (*Aggregate)(nil)

// NewAggregate returns an empty aggregating sink folding cells over the
// given slotframe length (<= 0 disables cell folding).
func NewAggregate(frameLen int64) *Aggregate {
	return &Aggregate{
		FrameLen: frameLen,
		jobs:     make(map[int32]struct{}),
		spans:    make(map[SpanKey]*Span),
		nodes:    make(map[topology.NodeID]*NodeStats),
		cells:    make(map[CellKey]*CellStats),
	}
}

func (a *Aggregate) node(id topology.NodeID) *NodeStats {
	n := a.nodes[id]
	if n == nil {
		n = &NodeStats{Node: id}
		a.nodes[id] = n
	}
	return n
}

func (a *Aggregate) span(ev *Event) *Span {
	k := SpanKey{Job: ev.Job, Origin: ev.Origin, Flow: ev.Flow, Seq: ev.Seq}
	s := a.spans[k]
	if s == nil {
		s = &Span{Born: ev.Born}
		a.spans[k] = s
	}
	return s
}

// Record implements Tracer.
func (a *Aggregate) Record(ev Event) {
	a.events++
	a.jobs[ev.Job] = struct{}{}
	n := a.node(ev.Node)
	if ev.Queue > n.MaxQueue {
		n.MaxQueue = ev.Queue
	}

	switch ev.Type {
	case EvGenerated:
		a.span(&ev).Born = ev.Born
	case EvEnqueued:
		b := int(ev.Queue)
		if b >= QueueHistBuckets {
			b = QueueHistBuckets - 1
		}
		if b >= 0 {
			a.queueHist[b]++
		}
	case EvTxAttempt:
		n.TxAttempts++
		if ev.Acked {
			n.TxAcked++
		}
		if ev.Kind == kindData {
			n.TxData++
			a.span(&ev).Attempts++
		}
		if a.FrameLen > 0 {
			k := CellKey{Offset: ev.ASN % a.FrameLen, ChOff: ev.ChOff}
			c := a.cells[k]
			if c == nil {
				c = &CellStats{Cell: k, owners: make(map[topology.NodeID]int64)}
				a.cells[k] = c
			}
			c.Tx++
			if ev.Acked {
				c.Acked++
			}
			c.owners[ev.Node]++
		}
	case EvReceived:
		n.Received++
	case EvDelivered:
		n.Delivered++
		s := a.span(&ev)
		if !s.HasDelivered || ev.ASN < s.Delivered {
			s.Delivered = ev.ASN
			s.Hops = ev.Hop
		}
		s.HasDelivered = true
	case EvDropped:
		if int(ev.Reason) < len(n.Drops) {
			n.Drops[ev.Reason]++
		}
		if ev.Kind == kindData && ev.Reason != ReasonDuplicate {
			a.span(&ev).DropReason = ev.Reason
		}
	case EvCollision:
		n.Collisions++
	case EvRouteChange:
		a.routeChanges++
	case EvFaultStart:
		a.faults++
	case EvReconverged:
		a.reconverged++
	case EvViolation:
		a.violations++
	case EvRepair:
		a.repairs++
	}
}

// kindData mirrors sim.KindData without importing sim (the value is part
// of the wire schema; pinned by the golden test).
const kindData = 4

// Flush implements Tracer.
func (a *Aggregate) Flush() error { return nil }

// Events returns how many events were folded.
func (a *Aggregate) Events() int64 { return a.events }

// Jobs returns how many distinct campaign jobs the trace contains.
func (a *Aggregate) Jobs() int { return len(a.jobs) }

// RouteChanges returns the number of routing adjacency changes.
func (a *Aggregate) RouteChanges() int64 { return a.routeChanges }

// Faults returns the number of chaos fault activations in the trace.
func (a *Aggregate) Faults() int64 { return a.faults }

// Reconverged returns the number of post-fault reconvergence marks.
func (a *Aggregate) Reconverged() int64 { return a.reconverged }

// Violations returns how many invariant-violation events the stream
// carried (recorded by a run with the invariant monitor enabled).
func (a *Aggregate) Violations() int64 { return a.violations }

// Repairs returns how many watchdog repair events the stream carried.
func (a *Aggregate) Repairs() int64 { return a.repairs }

// Generated returns the number of distinct application packets seen.
func (a *Aggregate) Generated() int { return len(a.spans) }

// Delivered returns the number of distinct packets that reached a sink.
func (a *Aggregate) Delivered() int {
	n := 0
	for _, s := range a.spans {
		if s.HasDelivered {
			n++
		}
	}
	return n
}

// PDR returns the end-to-end delivery rate across the whole trace,
// reconstructed from the event stream alone.
func (a *Aggregate) PDR() float64 {
	if len(a.spans) == 0 {
		return 0
	}
	return float64(a.Delivered()) / float64(len(a.spans))
}

// FlowPDR returns the delivery rate of one flow within one job.
func (a *Aggregate) FlowPDR(job int32, flow uint16) float64 {
	sent, got := 0, 0
	for k, s := range a.spans {
		if k.Job != job || k.Flow != flow {
			continue
		}
		sent++
		if s.HasDelivered {
			got++
		}
	}
	if sent == 0 {
		return 0
	}
	return float64(got) / float64(sent)
}

// Spans returns every packet span keyed for deterministic iteration.
func (a *Aggregate) Spans() map[SpanKey]*Span { return a.spans }

// NodesByID returns per-node loss attribution sorted by node ID.
func (a *Aggregate) NodesByID() []*NodeStats {
	out := make([]*NodeStats, 0, len(a.nodes))
	for _, n := range a.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// DropTotals sums drops by reason across all nodes.
func (a *Aggregate) DropTotals() [len(reasonNames)]int64 {
	var t [len(reasonNames)]int64
	for _, n := range a.nodes {
		for r, d := range n.Drops {
			t[r] += d
		}
	}
	return t
}

// HottestCells returns the top cells by transmission count (owner fields
// resolved), sorted by count descending with (offset, choff) tie-breaks.
func (a *Aggregate) HottestCells(top int) []*CellStats {
	out := make([]*CellStats, 0, len(a.cells))
	for _, c := range a.cells {
		c.Owners = len(c.owners)
		var bestN int64 = -1
		for id, n := range c.owners {
			if n > bestN || (n == bestN && id < c.Owner) {
				c.Owner, bestN = id, n
			}
		}
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Tx != out[j].Tx {
			return out[i].Tx > out[j].Tx
		}
		if out[i].Cell.Offset != out[j].Cell.Offset {
			return out[i].Cell.Offset < out[j].Cell.Offset
		}
		return out[i].Cell.ChOff < out[j].Cell.ChOff
	})
	if top > 0 && len(out) > top {
		out = out[:top]
	}
	return out
}

// QueueHist returns the queue-depth histogram observed at enqueue time;
// index i counts enqueues that left i packets queued (last bucket: >=).
func (a *Aggregate) QueueHist() [QueueHistBuckets]int64 { return a.queueHist }

// HopLatency is one row of the per-hop latency breakdown: the latency
// distribution of packets delivered over a given hop count.
type HopLatency struct {
	Hops      uint8
	Count     int
	MedianASN int64 // slots, end to end
	P90ASN    int64
	MaxASN    int64
}

// HopLatencies buckets delivered packets by hop count and summarises
// their end-to-end latency in slots, sorted by hop count.
func (a *Aggregate) HopLatencies() []HopLatency {
	byHops := make(map[uint8][]int64)
	for _, s := range a.spans {
		if s.HasDelivered {
			byHops[s.Hops] = append(byHops[s.Hops], s.Delivered-s.Born)
		}
	}
	out := make([]HopLatency, 0, len(byHops))
	for h, lats := range byHops {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		out = append(out, HopLatency{
			Hops:      h,
			Count:     len(lats),
			MedianASN: quantileASN(lats, 0.5),
			P90ASN:    quantileASN(lats, 0.9),
			MaxASN:    lats[len(lats)-1],
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Hops < out[j].Hops })
	return out
}

// quantileASN returns the nearest-rank quantile of a sorted slice.
func quantileASN(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// DropReasons returns the ordered list of known drop reasons (skipping
// the none reason), for deterministic report tables.
func DropReasons() []DropReason {
	out := make([]DropReason, 0, len(reasonNames)-1)
	for r := 1; r < len(reasonNames); r++ {
		out = append(out, DropReason(r))
	}
	return out
}
