// Package telemetry is the packet-lifecycle tracing subsystem: a
// structured event stream that follows every application packet from
// generation through each enqueue, transmission attempt and reception to
// its delivery or typed drop, as spans keyed by (origin, flow, seq, hop).
//
// Recording goes through the Tracer interface so sinks are pluggable: a
// bounded in-memory ring (Ring), a JSONL exporter with a versioned schema
// (JSONL), and an aggregating sink that folds the stream into per-hop
// loss attribution, per-cell utilization and queue-depth histograms
// (Aggregate). The cmd/digs-trace CLI replays an exported JSONL stream
// through the same Aggregate.
//
// The disabled path is a nil check: instrumented code guards every
// Record call with `if tracer != nil`, events are plain value structs
// built on the caller's stack, and no hook point allocates — the
// engine's zero-allocation slot loop stays zero-alloc with tracing off.
package telemetry

import "github.com/digs-net/digs/internal/topology"

// SchemaName and SchemaVersion identify the JSONL export format. Bump the
// version on any field change; readers refuse streams they do not know.
const (
	SchemaName    = "digs-trace"
	SchemaVersion = 3
)

// EventType classifies a lifecycle event.
type EventType uint8

// Lifecycle event types, in the order a packet experiences them.
const (
	// EvGenerated marks an application packet created at its origin.
	EvGenerated EventType = iota + 1
	// EvEnqueued marks a packet entering a node's forwarding queue
	// (locally generated or accepted from a neighbour for forwarding).
	EvEnqueued
	// EvTxAttempt marks one finished transmission attempt, with its ACK
	// outcome, physical channel and schedule-cell coordinates.
	EvTxAttempt
	// EvReceived marks a data frame decoded at a node, with its RSS.
	EvReceived
	// EvDelivered marks a data packet accepted at an access-point sink.
	EvDelivered
	// EvDropped marks a packet leaving the network without delivery;
	// Reason says why.
	EvDropped
	// EvCollision marks a listener detecting undecodable energy (emitted
	// by the engine adapter, see AttachSim).
	EvCollision
	// EvRouteChange marks a routing adjacency change: Peer is the new
	// best parent (0 = lost), Peer2 the new backup where the protocol
	// keeps one.
	EvRouteChange
	// EvFaultStart marks a chaos-plan fault becoming active: Flow is the
	// plan entry index, Seq the occurrence number for periodic faults,
	// Node the first target (0 for region-wide faults).
	EvFaultStart
	// EvFaultEnd marks a chaos-plan fault window closing (faults with no
	// end emit only EvFaultStart).
	EvFaultEnd
	// EvReconverged marks the routing layer settling after a fault: all
	// live nodes are routed again and no route change happened for the
	// injector's quiet window. Flow/Seq name the fault it answers.
	EvReconverged
	// EvViolation marks a runtime safety-invariant violation detected by
	// the invariant monitor. Code identifies the invariant (see
	// internal/invariant), Node the primary offender, Peer a counterparty
	// where one exists (the next hop closing a routing loop, the second
	// transmitter of a schedule conflict), and Flow/Origin localize
	// flow-scoped violations. Channel/ChOff name the conflicting cell for
	// schedule conflicts.
	EvViolation
	// EvRepair marks a watchdog-triggered degraded-mode recovery action:
	// Node was resynced/rejoined because of a sustained violation. Code
	// carries the triggering invariant and Attempt the 1-based recovery
	// attempt number (backoff doubles between attempts).
	EvRepair
)

var eventNames = [...]string{
	EvGenerated:   "gen",
	EvEnqueued:    "enq",
	EvTxAttempt:   "tx",
	EvReceived:    "rx",
	EvDelivered:   "dlv",
	EvDropped:     "drop",
	EvCollision:   "col",
	EvRouteChange: "route",
	EvFaultStart:  "fault_start",
	EvFaultEnd:    "fault_end",
	EvReconverged: "reconverged",
	EvViolation:   "violation",
	EvRepair:      "repair",
}

// String returns the compact wire name of the event type.
func (t EventType) String() string {
	if int(t) < len(eventNames) && eventNames[t] != "" {
		return eventNames[t]
	}
	return "unknown"
}

// EventTypeFromString inverts String; it returns 0 for unknown names.
func EventTypeFromString(s string) EventType {
	for t, name := range eventNames {
		if name == s {
			return EventType(t)
		}
	}
	return 0
}

// DropReason types the causes a packet can leave the network for.
type DropReason uint8

// Drop reasons.
const (
	// ReasonNone is the zero value (not a drop).
	ReasonNone DropReason = iota
	// ReasonQueueFull: the bounded forwarding queue had no room.
	ReasonQueueFull
	// ReasonMaxRetries: the retransmission budget ran out.
	ReasonMaxRetries
	// ReasonSplitHorizon: the only available next hop was the packet's
	// upstream sender for too many transmit opportunities.
	ReasonSplitHorizon
	// ReasonDuplicate: duplicate suppression rejected a copy already
	// seen (redundant-route or retransmission duplicate).
	ReasonDuplicate
	// ReasonEvicted: the queue was full and the drop-oldest overflow
	// policy evicted this (oldest) packet to admit a newer one.
	ReasonEvicted
)

var reasonNames = [...]string{
	ReasonNone:         "",
	ReasonQueueFull:    "queue-full",
	ReasonMaxRetries:   "max-retries",
	ReasonSplitHorizon: "split-horizon",
	ReasonDuplicate:    "duplicate",
	ReasonEvicted:      "queue-evict",
}

// String returns the wire name of the drop reason ("" for none).
func (r DropReason) String() string {
	if int(r) < len(reasonNames) {
		return reasonNames[r]
	}
	return "unknown"
}

// DropReasonFromString inverts String.
func DropReasonFromString(s string) DropReason {
	for r, name := range reasonNames {
		if name == s && s != "" {
			return DropReason(r)
		}
	}
	return ReasonNone
}

// Event is one packet-lifecycle observation. It is a plain value struct:
// hook points build it on the stack and hand it to Tracer.Record, so the
// disabled path costs one nil check and the enabled path does not force a
// heap allocation per event.
type Event struct {
	// ASN is the absolute slot number the event happened in.
	ASN  int64
	Type EventType
	// Node is where the event happened.
	Node topology.NodeID
	// Peer is the counterparty: tx destination, rx source, or the new
	// best parent for route events.
	Peer topology.NodeID
	// Peer2 is the new backup parent for route events (0 when none).
	Peer2 topology.NodeID

	// Origin, Flow and Seq identify the application packet end to end;
	// with Job they key the packet's span across a merged trace.
	Origin topology.NodeID
	Flow   uint16
	Seq    uint16

	// Kind is the frame kind (sim.FrameKind) for tx/rx/drop events.
	Kind uint8
	// Hop counts the links the packet has crossed when received or
	// enqueued (1 = arrived over its first link).
	Hop uint8
	// Attempt numbers the transmission attempt for one packet, 1-based.
	Attempt uint16
	// Channel is the physical channel of a tx/collision event; ChOff is
	// the schedule's channel offset (hopping lane), which together with
	// ASN modulo the slotframe length names the schedule cell.
	Channel uint8
	ChOff   uint8
	// Acked reports the ACK outcome of a tx attempt.
	Acked bool
	// RSS is the received signal strength of an rx event, dBm.
	RSS float64
	// Queue is the node's data-queue depth after the event.
	Queue int16
	// Reason types drop events.
	Reason DropReason
	// Code identifies the violated invariant for violation events and the
	// triggering invariant for repair events (an invariant.Code value; the
	// schema stores the raw number so telemetry stays layering-clean).
	Code uint8
	// Job is the campaign job index the event belongs to in a merged
	// multi-run trace (see WithJob and MergeJSONL).
	Job int32
	// Born is the packet's generation slot, for latency accounting.
	Born int64
}

// Tracer records lifecycle events. Implementations must be cheap: Record
// runs inline in the simulator's slot loop. Code holding a Tracer treats
// nil as "tracing disabled" and must nil-check before calling.
type Tracer interface {
	// Record observes one event.
	Record(ev Event)
	// Flush forces buffered state out (e.g. to the underlying writer)
	// and reports the first error the sink encountered.
	Flush() error
}

// multi fans events out to several sinks.
type multi struct{ sinks []Tracer }

// Multi returns a Tracer that forwards every event to all given sinks
// (nil sinks are skipped). A single non-nil sink is returned unwrapped.
func Multi(sinks ...Tracer) Tracer {
	var live []Tracer
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return &multi{sinks: live}
}

func (m *multi) Record(ev Event) {
	for _, s := range m.sinks {
		s.Record(ev)
	}
}

func (m *multi) Flush() error {
	var first error
	for _, s := range m.sinks {
		if err := s.Flush(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// jobTracer stamps every event with a campaign job index.
type jobTracer struct {
	next Tracer
	job  int32
}

// WithJob wraps a tracer so every recorded event carries the given
// campaign job index. Parallel campaigns give each job its own sink
// wrapped with its index, so merged traces keep runs distinguishable
// (identical flow/seq pairs recur across independent repetitions).
func WithJob(t Tracer, job int) Tracer {
	if t == nil {
		return nil
	}
	return &jobTracer{next: t, job: int32(job)}
}

func (j *jobTracer) Record(ev Event) {
	ev.Job = j.job
	j.next.Record(ev)
}

func (j *jobTracer) Flush() error { return j.next.Flush() }
