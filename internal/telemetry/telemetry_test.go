package telemetry

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/digs-net/digs/internal/sim"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// goldenEvents is a synthetic packet lifecycle exercising every event type
// and every serialized field, including negative RSS, job stamps and a
// typed drop.
func goldenEvents() []Event {
	return []Event{
		{ASN: 100, Type: EvGenerated, Node: 9, Origin: 9, Flow: 3, Seq: 21, Kind: kindData, Born: 100},
		{ASN: 100, Type: EvEnqueued, Node: 9, Origin: 9, Flow: 3, Seq: 21, Kind: kindData, Queue: 1, Born: 100},
		{ASN: 113, Type: EvTxAttempt, Node: 9, Peer: 4, Origin: 9, Flow: 3, Seq: 21, Kind: kindData,
			Attempt: 1, Channel: 17, ChOff: 2, Acked: false, Queue: 1, Born: 100},
		{ASN: 120, Type: EvCollision, Node: 4, Channel: 17},
		{ASN: 264, Type: EvTxAttempt, Node: 9, Peer: 4, Origin: 9, Flow: 3, Seq: 21, Kind: kindData,
			Attempt: 2, Channel: 22, ChOff: 2, Acked: true, Queue: 1, Born: 100},
		{ASN: 264, Type: EvReceived, Node: 4, Peer: 9, Origin: 9, Flow: 3, Seq: 21, Kind: kindData,
			Hop: 1, RSS: -71.25, Born: 100},
		{ASN: 264, Type: EvEnqueued, Node: 4, Origin: 9, Flow: 3, Seq: 21, Kind: kindData,
			Hop: 1, Queue: 2, Born: 100},
		{ASN: 300, Type: EvRouteChange, Node: 4, Peer: 2, Peer2: 7},
		{ASN: 415, Type: EvTxAttempt, Node: 4, Peer: 1, Origin: 9, Flow: 3, Seq: 21, Kind: kindData,
			Attempt: 1, Channel: 11, ChOff: 5, Acked: true, Queue: 2, Born: 100},
		{ASN: 415, Type: EvReceived, Node: 1, Peer: 4, Origin: 9, Flow: 3, Seq: 21, Kind: kindData,
			Hop: 2, RSS: -58.5, Born: 100},
		{ASN: 415, Type: EvDelivered, Node: 1, Peer: 4, Origin: 9, Flow: 3, Seq: 21, Kind: kindData,
			Hop: 2, Born: 100},
		{ASN: 500, Type: EvGenerated, Node: 8, Origin: 8, Flow: 2, Seq: 5, Kind: kindData, Born: 500},
		{ASN: 500, Type: EvDropped, Node: 8, Origin: 8, Flow: 2, Seq: 5, Kind: kindData,
			Reason: ReasonQueueFull, Queue: 16, Born: 500},
		{ASN: 600, Type: EvDropped, Node: 4, Peer: 9, Origin: 9, Flow: 3, Seq: 21, Kind: kindData,
			Reason: ReasonDuplicate, Hop: 1, Born: 100, Job: 1},
		{ASN: 700, Type: EvFaultStart, Node: 4, Flow: 0, Seq: 1},
		{ASN: 700, Type: EvGenerated, Node: 9, Origin: 9, Flow: 3, Seq: 22, Kind: kindData, Born: 700},
		{ASN: 720, Type: EvDropped, Node: 9, Origin: 9, Flow: 3, Seq: 22, Kind: kindData,
			Reason: ReasonEvicted, Queue: 16, Born: 700},
		{ASN: 900, Type: EvFaultEnd, Node: 4, Flow: 0, Seq: 1},
		{ASN: 1000, Type: EvViolation, Node: 7, Peer: 3, Code: 1},
		{ASN: 1100, Type: EvRepair, Node: 7, Attempt: 2, Code: 4},
		{ASN: 1400, Type: EvReconverged, Flow: 0, Seq: 1},
	}
}

// TestKindDataMatchesSim pins the aggregator's wire-schema mirror of the
// data frame kind to the engine's value: the two must never drift.
func TestKindDataMatchesSim(t *testing.T) {
	if kindData != uint8(sim.KindData) {
		t.Fatalf("telemetry.kindData = %d, sim.KindData = %d; the v1 wire schema pins %d",
			kindData, uint8(sim.KindData), kindData)
	}
}

// TestJSONLGolden pins the v1 JSONL export byte for byte: field order,
// number formatting, event and reason names. Any diff here is a schema
// change and must come with a SchemaVersion bump.
func TestJSONLGolden(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONL(&buf)
	for _, ev := range goldenEvents() {
		sink.Record(ev)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "golden.jsonl")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with go test -run JSONLGolden -update-golden)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("JSONL export drifted from the v1 golden schema.\ngot:\n%s\nwant:\n%s\n"+
			"If this change is intentional, bump SchemaVersion and regenerate with -update-golden.",
			buf.Bytes(), want)
	}
}

// TestScanRoundTrip decodes the exported stream back into events and
// re-encodes them, proving Scan inverts the writer exactly.
func TestScanRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONL(&buf)
	for _, ev := range goldenEvents() {
		sink.Record(ev)
	}

	var decoded []Event
	if err := Scan(bytes.NewReader(buf.Bytes()), func(ev Event) error {
		decoded = append(decoded, ev)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := goldenEvents()
	if len(decoded) != len(want) {
		t.Fatalf("decoded %d events, want %d", len(decoded), len(want))
	}
	for i := range want {
		if decoded[i] != want[i] {
			t.Fatalf("event %d round-trips to %+v, want %+v", i, decoded[i], want[i])
		}
	}

	var re bytes.Buffer
	sink2 := NewJSONL(&re)
	for _, ev := range decoded {
		sink2.Record(ev)
	}
	if !bytes.Equal(buf.Bytes(), re.Bytes()) {
		t.Fatal("re-encoded stream differs from the original")
	}
}

// TestScanRejectsBadStreams covers the reader's validation: wrong schema,
// wrong version, unknown event names and the empty stream.
func TestScanRejectsBadStreams(t *testing.T) {
	head := string(headerLine()) + "\n"
	cases := map[string]string{
		"wrong schema":  `{"schema":"other","version":1}` + "\n",
		"wrong version": `{"schema":"digs-trace","version":99}` + "\n",
		"no header":     "",
		"unknown event": head + `{"asn":1,"ev":"warp"}` + "\n",
	}
	for name, in := range cases {
		if err := Scan(strings.NewReader(in), func(Event) error { return nil }); err == nil {
			t.Errorf("%s: Scan accepted the stream", name)
		}
	}
}

// TestRingWraps checks the bounded sink overwrites oldest-first and counts
// what it lost.
func TestRingWraps(t *testing.T) {
	r := NewRing(3)
	for i := 1; i <= 5; i++ {
		r.Record(Event{ASN: int64(i)})
	}
	if r.Len() != 3 {
		t.Fatalf("ring holds %d events, want 3", r.Len())
	}
	if r.Dropped() != 2 {
		t.Fatalf("ring dropped %d events, want 2", r.Dropped())
	}
	got := r.Events()
	for i, wantASN := range []int64{3, 4, 5} {
		if got[i].ASN != wantASN {
			t.Fatalf("ring events = %+v, want ASNs 3,4,5", got)
		}
	}
}

// TestMergeJSONL merges job-stamped parts and checks the result is one
// valid stream whose events keep their job indices and part order.
func TestMergeJSONL(t *testing.T) {
	var p0, p1 bytes.Buffer
	s0 := WithJob(NewJSONL(&p0), 0)
	s1 := WithJob(NewJSONL(&p1), 1)
	s0.Record(Event{ASN: 10, Type: EvGenerated, Node: 2})
	s1.Record(Event{ASN: 5, Type: EvGenerated, Node: 3})
	s1.Record(Event{ASN: 6, Type: EvDelivered, Node: 1})

	var merged bytes.Buffer
	if err := MergeJSONL(&merged, p0.Bytes(), p1.Bytes()); err != nil {
		t.Fatal(err)
	}
	var got []Event
	if err := Scan(bytes.NewReader(merged.Bytes()), func(ev Event) error {
		got = append(got, ev)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("merged stream has %d events, want 3", len(got))
	}
	if got[0].Job != 0 || got[1].Job != 1 || got[2].Job != 1 {
		t.Fatalf("job stamps = %d,%d,%d, want 0,1,1", got[0].Job, got[1].Job, got[2].Job)
	}
	if got[0].ASN != 10 || got[1].ASN != 5 {
		t.Fatal("merge reordered parts; they must concatenate in job order")
	}

	// A part without a header must be rejected, not silently corrupted.
	if err := MergeJSONL(&bytes.Buffer{}, []byte("{\"asn\":1}\n")); err == nil {
		t.Fatal("MergeJSONL accepted a headerless part")
	}
}

// TestAggregateFoldsLifecycle replays the synthetic lifecycle through the
// aggregating sink and checks every summary it feeds the CLI.
func TestAggregateFoldsLifecycle(t *testing.T) {
	a := NewAggregate(151)
	for _, ev := range goldenEvents() {
		a.Record(ev)
	}

	// Three packets generated (jobs 0), one delivered.
	if a.Generated() != 3 || a.Delivered() != 1 {
		t.Fatalf("generated/delivered = %d/%d, want 3/1", a.Generated(), a.Delivered())
	}
	if pdr := a.PDR(); pdr != 1.0/3.0 {
		t.Fatalf("PDR = %v, want 1/3", pdr)
	}
	if got := a.FlowPDR(0, 3); got != 0.5 {
		t.Fatalf("flow 3 PDR = %v, want 0.5", got)
	}
	if got := a.FlowPDR(0, 2); got != 0.0 {
		t.Fatalf("flow 2 PDR = %v, want 0.0", got)
	}

	// The delivered span crossed 2 hops with latency 315 slots.
	lat := a.HopLatencies()
	if len(lat) != 1 || lat[0].Hops != 2 || lat[0].MedianASN != 315 {
		t.Fatalf("hop latencies = %+v, want one row: 2 hops, 315 slots", lat)
	}

	// Drop attribution: queue-full at node 8, the job-1 duplicate at node
	// 4, and the drop-oldest eviction at node 9.
	totals := a.DropTotals()
	if totals[ReasonQueueFull] != 1 || totals[ReasonDuplicate] != 1 || totals[ReasonEvicted] != 1 {
		t.Fatalf("drop totals = %v, want 1 queue-full, 1 duplicate, 1 queue-evict", totals)
	}

	// Recovery markers: one fault activation and one reconvergence.
	if a.Faults() != 1 || a.Reconverged() != 1 {
		t.Fatalf("faults/reconverged = %d/%d, want 1/1", a.Faults(), a.Reconverged())
	}

	// Cell folding: ASN 113 and 264 are offsets 113 and 113 (264-151) on
	// channel offset 2 — the same cell, 2 tx, 1 acked.
	cells := a.HottestCells(1)
	if len(cells) != 1 {
		t.Fatalf("no cells folded")
	}
	c := cells[0]
	if c.Cell.Offset != 113 || c.Cell.ChOff != 2 || c.Tx != 2 || c.Acked != 1 || c.Owner != 9 {
		t.Fatalf("hottest cell = %+v, want offset 113 choff 2: 2 tx, 1 acked, owner 9", c)
	}

	if a.RouteChanges() != 1 {
		t.Fatalf("route changes = %d, want 1", a.RouteChanges())
	}
	hist := a.QueueHist()
	if hist[1] != 1 || hist[2] != 1 {
		t.Fatalf("queue histogram = %v, want one enqueue at depth 1 and one at 2", hist)
	}
	// Jobs 0 and 1 both appear.
	if a.Jobs() != 2 {
		t.Fatalf("jobs = %d, want 2", a.Jobs())
	}
}

// TestMultiFansOut checks the fan-out helper skips nils and unwraps a
// single live sink.
func TestMultiFansOut(t *testing.T) {
	if Multi(nil, nil) != nil {
		t.Fatal("Multi of nils should be nil")
	}
	r := NewRing(4)
	if got := Multi(nil, r); got != Tracer(r) {
		t.Fatal("Multi with one live sink should unwrap it")
	}
	r2 := NewRing(4)
	m := Multi(r, r2)
	m.Record(Event{ASN: 1})
	if r.Len() != 1 || r2.Len() != 1 {
		t.Fatalf("fan-out recorded %d/%d events, want 1/1", r.Len(), r2.Len())
	}
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
}
