package telemetry

import (
	"bytes"
	"testing"
)

// FuzzScanJSONL hammers the versioned JSONL reader with arbitrary bytes:
// corrupt or truncated streams must come back as errors, never panics,
// and any stream Scan accepts must survive a re-encode/re-scan round trip
// unchanged. When the accepted stream also carries the exact canonical
// header, MergeJSONL must splice it without corrupting it.
func FuzzScanJSONL(f *testing.F) {
	// Seed with a real export plus the classic trouble spots: empty input,
	// a bare header, a header cut mid-line, a truncated event line, a
	// non-JSON line and a wrong-version header.
	var valid bytes.Buffer
	sink := NewJSONL(&valid)
	for _, ev := range goldenEvents() {
		sink.Record(ev)
	}
	f.Add(valid.Bytes())
	f.Add([]byte{})
	f.Add(append(headerLine(), '\n'))
	f.Add(headerLine()[:len(headerLine())/2])
	f.Add([]byte(string(headerLine()) + "\n" + `{"asn":12,"ev":"tx","nod`))
	f.Add([]byte(string(headerLine()) + "\n" + "not json at all\n"))
	f.Add([]byte(`{"schema":"digs-trace","version":1}` + "\n" + `{"asn":1,"ev":"gen"}` + "\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		var events []Event
		if err := Scan(bytes.NewReader(data), func(ev Event) error {
			events = append(events, ev)
			return nil
		}); err != nil {
			return // rejected is fine; panicking is not
		}

		// Accepted: re-encoding the decoded events and scanning again must
		// yield the same events (the canonical encoder inverts the reader).
		var re bytes.Buffer
		out := NewJSONL(&re)
		for _, ev := range events {
			out.Record(ev)
		}
		if err := out.Flush(); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		var again []Event
		if err := Scan(bytes.NewReader(re.Bytes()), func(ev Event) error {
			again = append(again, ev)
			return nil
		}); err != nil {
			t.Fatalf("re-encoded stream rejected: %v", err)
		}
		if len(again) != len(events) {
			t.Fatalf("round trip lost events: %d -> %d", len(events), len(again))
		}
		for i := range events {
			if again[i] != events[i] {
				t.Fatalf("event %d round-trips to %+v, want %+v", i, again[i], events[i])
			}
		}

		// Merging the canonical stream with the raw part must either reject
		// the part (non-canonical header) or produce a stream Scan accepts.
		var merged bytes.Buffer
		if err := MergeJSONL(&merged, re.Bytes(), data); err == nil {
			n := 0
			if err := Scan(bytes.NewReader(merged.Bytes()), func(Event) error {
				n++
				return nil
			}); err != nil {
				t.Fatalf("merge of two accepted parts does not scan: %v", err)
			}
			if n != 2*len(events) {
				t.Fatalf("merged stream has %d events, want %d", n, 2*len(events))
			}
		}
	})
}
