package telemetry

import "github.com/digs-net/digs/internal/sim"

// AttachSim hooks the engine's medium-resolution trace into a tracer:
// collisions a listener observed become EvCollision events. The MAC layer
// reports every other lifecycle step itself with richer context (queue
// depths, attempt numbers, ACK outcomes); collisions are the one loss
// cause only the engine can attribute, because the listener decodes
// nothing it could hand upward. Passing a nil tracer detaches the hook,
// restoring the engine's zero-overhead path.
func AttachSim(nw *sim.Network, t Tracer) {
	if t == nil {
		nw.Trace = nil
		return
	}
	nw.Trace = func(ev sim.TraceEvent) {
		if ev.Kind != sim.TraceCollision {
			return
		}
		t.Record(Event{
			ASN:     int64(ev.ASN),
			Type:    EvCollision,
			Node:    ev.Dst,
			Channel: uint8(ev.Channel),
		})
	}
}
