package telemetry

// Ring is a bounded in-memory sink keeping the most recent events. It is
// the cheapest always-on sink: a fixed array written round-robin, no
// allocation per event, suitable as a flight recorder that is dumped only
// when something goes wrong.
type Ring struct {
	buf     []Event
	next    int
	full    bool
	dropped int64
}

var _ Tracer = (*Ring)(nil)

// NewRing returns a ring sink bounded to capacity events (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, capacity)}
}

// Record implements Tracer.
func (r *Ring) Record(ev Event) {
	if r.full {
		r.dropped++
	}
	r.buf[r.next] = ev
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// Flush implements Tracer; a ring has nothing to flush.
func (r *Ring) Flush() error { return nil }

// Len returns how many events the ring currently holds.
func (r *Ring) Len() int {
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// Dropped returns how many events were overwritten after the ring filled.
func (r *Ring) Dropped() int64 { return r.dropped }

// Events returns the retained events in arrival order (oldest first).
func (r *Ring) Events() []Event {
	out := make([]Event, 0, r.Len())
	if r.full {
		out = append(out, r.buf[r.next:]...)
	}
	return append(out, r.buf[:r.next]...)
}
