package interference

import (
	"testing"
	"time"

	"github.com/digs-net/digs/internal/sim"
	"github.com/digs-net/digs/internal/topology"
)

func TestScheduleFailuresFailsAndRecovers(t *testing.T) {
	topo := topology.TestbedA()
	nw := sim.NewNetwork(topo, 1)
	ScheduleFailures(nw, []FailureEvent{
		{Node: 5, At: time.Second},                                // permanent
		{Node: 9, At: 2 * time.Second, RecoverAfter: time.Second}, // transient
	})

	if nw.Failed(5) || nw.Failed(9) {
		t.Fatal("no event should have fired before the run starts")
	}
	nw.Run(sim.SlotsFor(time.Second) + 1)
	if !nw.Failed(5) || nw.Failed(9) {
		t.Fatalf("after 1s: Failed(5)=%v Failed(9)=%v, want true/false", nw.Failed(5), nw.Failed(9))
	}
	nw.Run(sim.SlotsFor(time.Second))
	if !nw.Failed(9) {
		t.Fatal("node 9 should be down at 2s")
	}
	nw.Run(sim.SlotsFor(time.Second))
	if nw.Failed(9) {
		t.Fatal("node 9 should have recovered at 3s")
	}
	if !nw.Failed(5) {
		t.Fatal("node 5 has no RecoverAfter and must stay dead")
	}
}

// TestScheduleFailuresPastEventsFireImmediately pins the clamping contract:
// an event dated before the network's current slot is not dropped —
// sim.Network.At pulls it forward to the next processed slot.
func TestScheduleFailuresPastEventsFireImmediately(t *testing.T) {
	topo := topology.TestbedA()
	nw := sim.NewNetwork(topo, 1)
	nw.Run(100)

	ScheduleFailures(nw, []FailureEvent{{Node: 7, At: -time.Minute}})
	if nw.Failed(7) {
		t.Fatal("event must not fire synchronously at scheduling time")
	}
	nw.Run(1)
	if !nw.Failed(7) {
		t.Fatal("past-dated failure event did not fire on the next slot")
	}
}
