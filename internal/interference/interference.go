// Package interference implements the controlled interference sources the
// paper evaluates under: JamLab-style jammers that emulate WiFi data
// streaming and Bluetooth traffic, the Cooja disturber nodes used in the
// 150-node simulation study, and a node-failure injector. All temporal
// behaviour is a pure deterministic function of (seed, slot), so repeated
// queries within a slot and repeated runs are consistent.
package interference

import (
	"time"

	"github.com/digs-net/digs/internal/phy"
	"github.com/digs-net/digs/internal/sim"
	"github.com/digs-net/digs/internal/topology"
)

// splitmix64 is a tiny statelessly-seedable hash used to derive per-slot
// pseudo-random decisions.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashFloat returns a uniform [0,1) value derived from the inputs.
func hashFloat(seed uint64, asn sim.ASN, ch phy.Channel) float64 {
	h := splitmix64(seed ^ uint64(asn)*0x9e3779b97f4a7c15 ^ uint64(ch)<<48)
	return float64(h>>11) / float64(1<<53)
}

// placement holds the common spatial model: the jammer radiates from a
// testbed node's position at elevated power (JamLab reconfigures a mote;
// the paper raises its TX power to emulate 802.11's larger footprint). The
// jammer's propagation reuses the topology's link model — including the
// per-link wall shadowing — so the disturbed region is patchy the way a
// real building is, which is what leaves room for routing around it.
type placement struct {
	topo       *topology.Topology
	at         topology.NodeID
	txPowerDBm float64
}

// PowerAtDBm returns the interference power this source lands on a node.
func (p placement) PowerAtDBm(node topology.NodeID) float64 {
	if node == p.at {
		return p.txPowerDBm // co-located: saturates the front end
	}
	// Same path loss and shadowing as a mote transmission from that spot,
	// shifted by the power difference.
	return p.topo.RSS(p.at, node) + (p.txPowerDBm - p.topo.TxPowerDBm)
}

// WiFiJammer emulates JamLab's "WiFi data streaming" regeneration mode: a
// 20 MHz 802.11 transmitter blanketing four adjacent 802.15.4 channels with
// bursty traffic at streaming duty cycle.
type WiFiJammer struct {
	placement
	channels  map[phy.Channel]bool
	dutyCycle float64
	seed      uint64
}

var _ sim.Interferer = (*WiFiJammer)(nil)

// NewWiFiJammer places a WiFi-streaming jammer at the given node, occupying
// the 802.15.4 channels overlapped by the given WiFi channel (1, 6 or 11).
func NewWiFiJammer(topo *topology.Topology, at topology.NodeID, wifiChannel int, seed int64) *WiFiJammer {
	chs := make(map[phy.Channel]bool)
	for _, c := range phy.WiFiOverlap(wifiChannel) {
		chs[c] = true
	}
	return &WiFiJammer{
		placement: placement{topo: topo, at: at, txPowerDBm: -7},
		channels:  chs,
		// Probability a WiFi burst overlaps the 4.3 ms 802.15.4 frame
		// inside an active 10 ms slot, at streaming load.
		dutyCycle: 0.45,
		seed:      uint64(seed)*2654435761 + uint64(at),
	}
}

// ActiveOn implements sim.Interferer. Streaming traffic is bursty: within
// an on-burst most slots carry WiFi frames; bursts alternate with short
// idle gaps (rate adaptation, inter-frame spacing).
func (j *WiFiJammer) ActiveOn(asn sim.ASN, ch phy.Channel) bool {
	if !j.channels[ch] {
		return false
	}
	// 300-slot (3 s) macro bursts with 85% on-phase, then per-slot duty.
	burst := splitmix64(j.seed^uint64(asn/300)) % 100
	if burst >= 85 {
		return false
	}
	return hashFloat(j.seed, asn, 0) < j.dutyCycle
}

// BluetoothJammer emulates JamLab's Bluetooth mode: a frequency-hopping
// 1 MHz interferer that lands on any given 802.15.4 channel only
// occasionally, but does so constantly across the whole band.
type BluetoothJammer struct {
	placement
	seed uint64
}

var _ sim.Interferer = (*BluetoothJammer)(nil)

// NewBluetoothJammer places a Bluetooth-emulating jammer at the given node.
func NewBluetoothJammer(topo *topology.Topology, at topology.NodeID, seed int64) *BluetoothJammer {
	return &BluetoothJammer{
		placement: placement{topo: topo, at: at, txPowerDBm: -8},
		seed:      uint64(seed)*40503 + uint64(at),
	}
}

// ActiveOn implements sim.Interferer. Bluetooth hops over 79 MHz; a 2 MHz
// 802.15.4 channel is hit by roughly 1600 hops/s * 2/79 ~ 40% of 10 ms
// slots at full load; we model a busy piconet at half load.
func (j *BluetoothJammer) ActiveOn(asn sim.ASN, ch phy.Channel) bool {
	return hashFloat(j.seed, asn, ch) < 0.20
}

// CoojaDisturber reproduces the disturber nodes of the paper's Section
// VII-D simulation: an interferer that turns on and off every five
// minutes. It occupies a four-channel block (a Cooja disturber radiates a
// wide carrier, but nowhere near the full 80 MHz band), so channel hopping
// retains clear slots to retry in.
type CoojaDisturber struct {
	placement
	periodSlots int64
	phase       int64
	channels    map[phy.Channel]bool
}

var _ sim.Interferer = (*CoojaDisturber)(nil)

// NewCoojaDisturber places a disturber at the given node with the paper's
// 5-minute on / 5-minute off cycle. The phase index staggers multiple
// disturbers so they do not all toggle in the same slot, and shifts each
// disturber's channel block.
func NewCoojaDisturber(topo *topology.Topology, at topology.NodeID, phase int) *CoojaDisturber {
	chs := make(map[phy.Channel]bool, 4)
	first := phy.Channel(phy.FirstChannel + (phase*4)%(phy.NumChannels-3))
	for c := first; c < first+4 && c <= phy.LastChannel; c++ {
		chs[c] = true
	}
	return &CoojaDisturber{
		placement:   placement{topo: topo, at: at, txPowerDBm: topo.TxPowerDBm + 3},
		periodSlots: sim.SlotsFor(5 * time.Minute),
		phase:       int64(phase) * 6000, // 1-minute stagger
		channels:    chs,
	}
}

// ActiveOn implements sim.Interferer.
func (d *CoojaDisturber) ActiveOn(asn sim.ASN, ch phy.Channel) bool {
	if !d.channels[ch] {
		return false
	}
	return ((asn+d.phase)/d.periodSlots)%2 == 0
}
