package interference

import (
	"time"

	"github.com/digs-net/digs/internal/sim"
	"github.com/digs-net/digs/internal/topology"
)

// FailureEvent is one scheduled node death (and optional recovery).
type FailureEvent struct {
	Node topology.NodeID
	At   time.Duration
	// RecoverAfter restores the node this long after the failure; zero
	// means the node stays dead.
	RecoverAfter time.Duration
}

// ScheduleFailures registers the given failure events on the network,
// relative to the network's current time. Events dated in the past (a
// negative At, or a simulation already beyond the offset) are not lost:
// sim.Network.At clamps them to the next slot, so they fire immediately.
func ScheduleFailures(nw *sim.Network, events []FailureEvent) {
	base := nw.ASN()
	for _, ev := range events {
		ev := ev
		nw.At(base+sim.SlotsFor(ev.At), func() { nw.Fail(ev.Node) })
		if ev.RecoverAfter > 0 {
			nw.At(base+sim.SlotsFor(ev.At+ev.RecoverAfter), func() { nw.Restore(ev.Node) })
		}
	}
}
