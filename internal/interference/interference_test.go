package interference

import (
	"testing"
	"time"

	"github.com/digs-net/digs/internal/phy"
	"github.com/digs-net/digs/internal/sim"
	"github.com/digs-net/digs/internal/topology"
)

func TestWiFiJammerChannelsAndDuty(t *testing.T) {
	topo := topology.TestbedA()
	j := NewWiFiJammer(topo, topo.SuggestedJammers[0], 6, 1)

	inBand, outOfBand := 0, 0
	const slots = 20000
	for asn := sim.ASN(0); asn < slots; asn++ {
		if j.ActiveOn(asn, 17) { // WiFi ch6 covers 802.15.4 ch 16..19
			inBand++
		}
		if j.ActiveOn(asn, 26) { // far outside
			outOfBand++
		}
	}
	if outOfBand != 0 {
		t.Fatalf("WiFi jammer active on non-overlapping channel %d times", outOfBand)
	}
	duty := float64(inBand) / slots
	if duty < 0.25 || duty > 0.6 {
		t.Fatalf("WiFi jammer duty cycle %.2f, want streaming-like 0.25..0.6", duty)
	}
}

func TestWiFiJammerDeterministicPerSlot(t *testing.T) {
	topo := topology.TestbedA()
	j := NewWiFiJammer(topo, 10, 1, 7)
	for asn := sim.ASN(0); asn < 1000; asn++ {
		for _, ch := range []phy.Channel{11, 12, 13, 14} {
			if j.ActiveOn(asn, ch) != j.ActiveOn(asn, ch) {
				t.Fatalf("jammer activity not deterministic at ASN %d ch %d", asn, ch)
			}
		}
	}
}

func TestBluetoothJammerSparseButBandWide(t *testing.T) {
	topo := topology.TestbedA()
	j := NewBluetoothJammer(topo, 10, 3)
	const slots = 20000
	for ch := phy.Channel(phy.FirstChannel); ch <= phy.LastChannel; ch++ {
		hits := 0
		for asn := sim.ASN(0); asn < slots; asn++ {
			if j.ActiveOn(asn, ch) {
				hits++
			}
		}
		rate := float64(hits) / slots
		if rate < 0.10 || rate > 0.35 {
			t.Fatalf("Bluetooth hit rate on ch %d is %.2f, want sparse 0.10..0.35", ch, rate)
		}
	}
}

func TestCoojaDisturberPeriod(t *testing.T) {
	topo := topology.NewRandom(150, 300, 300, 7)
	d := NewCoojaDisturber(topo, 10, 0)
	fiveMin := sim.SlotsFor(5 * time.Minute)
	if !d.ActiveOn(0, 12) {
		t.Fatal("disturber should start in the on-phase")
	}
	if d.ActiveOn(fiveMin, 12) {
		t.Fatal("disturber should be off in the second 5-minute phase")
	}
	if !d.ActiveOn(2*fiveMin, 12) {
		t.Fatal("disturber should be on again in the third phase")
	}
	// A four-channel block, not the full band.
	covered := 0
	for ch := phy.Channel(phy.FirstChannel); ch <= phy.LastChannel; ch++ {
		if d.ActiveOn(0, ch) {
			covered++
		}
	}
	if covered != 4 {
		t.Fatalf("disturber covers %d channels, want 4", covered)
	}
}

func TestDisturberPhaseStagger(t *testing.T) {
	topo := topology.NewRandom(150, 300, 300, 7)
	d0 := NewCoojaDisturber(topo, 10, 0)
	d3 := NewCoojaDisturber(topo, 11, 3)
	// Compare each on a channel it covers (blocks differ per phase).
	differ := false
	for asn := sim.ASN(0); asn < sim.SlotsFor(20*time.Minute); asn += 100 {
		if d0.ActiveOn(asn, 12) != d3.ActiveOn(asn, 24) {
			differ = true
			break
		}
	}
	if !differ {
		t.Fatal("staggered disturbers toggle identically")
	}
}

func TestJammerPowerFallsWithDistance(t *testing.T) {
	topo := topology.TestbedA()
	j := NewWiFiJammer(topo, 10, 1, 1)
	// Find a near and a far node.
	var near, far topology.NodeID
	nearD, farD := 1e9, 0.0
	for i := 1; i <= topo.N(); i++ {
		id := topology.NodeID(i)
		if id == 10 {
			continue
		}
		d := topo.Distance(10, id)
		if d < nearD {
			nearD, near = d, id
		}
		if d > farD {
			farD, far = d, id
		}
	}
	if j.PowerAtDBm(near) <= j.PowerAtDBm(far) {
		t.Fatalf("jammer power at %.0fm (%.1f dBm) <= at %.0fm (%.1f dBm)",
			nearD, j.PowerAtDBm(near), farD, j.PowerAtDBm(far))
	}
	if got := j.PowerAtDBm(10); got != -7 {
		t.Fatalf("co-located jammer power = %.1f, want TX power -7", got)
	}
}

func TestJammerDisruptsNearbyLink(t *testing.T) {
	// End-to-end: a perfect link with a co-channel jammer next to the
	// receiver loses most frames on jammed channels while an un-jammed
	// channel stays clean.
	topo := topology.TestbedA()
	nw := sim.NewNetwork(topo, 1)
	jamNode := topology.NodeID(10)
	// Transmit from the closest neighbour of node 10's closest neighbour
	// to keep geometry simple: use suggested source and its AP.
	j := NewWiFiJammer(topo, jamNode, 1, 1) // covers ch 11..14
	nw.AddInterferer(j)

	// Pick receiver = node nearest the jammer, sender = nearest to that.
	rxID := nearestTo(topo, jamNode)
	txID := nearestTo(topo, rxID)

	countDelivered := func(ch phy.Channel) int {
		nw2 := sim.NewNetwork(topo, 1)
		nw2.AddInterferer(j)
		frame := &sim.Frame{Kind: sim.KindData, Src: txID, Dst: rxID}
		delivered := 0
		tx := &planDevice{id: txID, op: sim.RadioOp{Kind: sim.OpTx, Channel: ch, Frame: frame}}
		rx := &planDevice{id: rxID, op: sim.RadioOp{Kind: sim.OpRx, Channel: ch},
			onRx: func() { delivered++ }}
		if err := nw2.Attach(tx); err != nil {
			t.Fatal(err)
		}
		if err := nw2.Attach(rx); err != nil {
			t.Fatal(err)
		}
		nw2.Run(3000)
		return delivered
	}

	jammed := countDelivered(12)
	clear := countDelivered(25)
	if clear < 2400 {
		t.Fatalf("clear channel delivered only %d/3000", clear)
	}
	if jammed > (clear*6)/10 {
		t.Fatalf("jammed channel delivered %d/3000 vs clear %d; jammer too weak", jammed, clear)
	}
}

func nearestTo(topo *topology.Topology, id topology.NodeID) topology.NodeID {
	bestD := 1e18
	var best topology.NodeID
	for i := 1; i <= topo.N(); i++ {
		n := topology.NodeID(i)
		if n == id {
			continue
		}
		if d := topo.Distance(id, n); d < bestD {
			bestD, best = d, n
		}
	}
	return best
}

type planDevice struct {
	id   topology.NodeID
	op   sim.RadioOp
	onRx func()
}

func (d *planDevice) ID() topology.NodeID      { return d.id }
func (d *planDevice) Plan(sim.ASN) sim.RadioOp { return d.op }
func (d *planDevice) EndSlot(_ sim.ASN, rep sim.SlotReport) {
	if rep.Received != nil && d.onRx != nil {
		d.onRx()
	}
}

func TestScheduleFailures(t *testing.T) {
	topo := topology.TestbedA()
	nw := sim.NewNetwork(topo, 1)
	ScheduleFailures(nw, []FailureEvent{
		{Node: 5, At: 100 * time.Millisecond},
		{Node: 6, At: 100 * time.Millisecond, RecoverAfter: 100 * time.Millisecond},
	})
	if nw.Failed(5) || nw.Failed(6) {
		t.Fatal("failures applied before their time")
	}
	nw.Run(11)
	if !nw.Failed(5) || !nw.Failed(6) {
		t.Fatal("failures not applied at 100ms")
	}
	nw.Run(10)
	if nw.Failed(6) {
		t.Fatal("node 6 not recovered after 100ms")
	}
	if !nw.Failed(5) {
		t.Fatal("node 5 should stay dead")
	}
}

func TestWindowGatesInterferer(t *testing.T) {
	topo := topology.TestbedA()
	j := NewWiFiJammer(topo, 10, 1, 1)
	w := &Window{Source: j, StartASN: 100, StopASN: 200}
	// Find a slot where the raw jammer is active inside the window.
	activeInside := false
	for asn := sim.ASN(100); asn < 200; asn++ {
		if j.ActiveOn(asn, 12) {
			if !w.ActiveOn(asn, 12) {
				t.Fatalf("window suppressed an in-range slot %d", asn)
			}
			activeInside = true
		}
	}
	if !activeInside {
		t.Fatal("jammer never active inside the window")
	}
	for asn := sim.ASN(0); asn < 100; asn++ {
		if w.ActiveOn(asn, 12) {
			t.Fatalf("window active before start at %d", asn)
		}
	}
	for asn := sim.ASN(200); asn < 300; asn++ {
		if w.ActiveOn(asn, 12) {
			t.Fatalf("window active after stop at %d", asn)
		}
	}
	// Zero stop means open-ended.
	open := &Window{Source: j, StartASN: 100}
	found := false
	for asn := sim.ASN(10000); asn < 10500 && !found; asn++ {
		found = open.ActiveOn(asn, 12)
	}
	if !found {
		t.Fatal("open-ended window never active")
	}
	if w.PowerAtDBm(10) != j.PowerAtDBm(10) {
		t.Fatal("window changed the power model")
	}
}
