package interference

import (
	"github.com/digs-net/digs/internal/phy"
	"github.com/digs-net/digs/internal/sim"
	"github.com/digs-net/digs/internal/topology"
)

// Window gates another interferer to a slot range, so experiments can form
// the network cleanly and then switch jamming on (and optionally off).
type Window struct {
	// Source is the wrapped interferer.
	Source sim.Interferer
	// StartASN is the first slot the source radiates in.
	StartASN sim.ASN
	// StopASN disables the source from this slot on; zero means never.
	StopASN sim.ASN
}

var _ sim.Interferer = (*Window)(nil)

// ActiveOn implements sim.Interferer.
func (w *Window) ActiveOn(asn sim.ASN, ch phy.Channel) bool {
	if asn < w.StartASN {
		return false
	}
	if w.StopASN != 0 && asn >= w.StopASN {
		return false
	}
	return w.Source.ActiveOn(asn, ch)
}

// PowerAtDBm implements sim.Interferer.
func (w *Window) PowerAtDBm(at topology.NodeID) float64 {
	return w.Source.PowerAtDBm(at)
}
