package whart

import (
	"fmt"

	"github.com/digs-net/digs/internal/mac"
	"github.com/digs-net/digs/internal/sim"
	"github.com/digs-net/digs/internal/topology"
)

// This file makes the centralized baseline executable: the Network
// Manager's routes and TDMA superframe are loaded into per-node stacks
// that run on the same simulator as DiGS and Orchestra. The stack is
// deliberately static — that is the point of the comparison: when the
// network changes (a router dies, a jammer appears), a WirelessHART
// device keeps following the stale schedule until the manager pushes a
// new one, which Figure 3 shows takes minutes.

// Channel offsets: EBs use lane 0; data cells use the centrally assigned
// offset shifted above it.
const (
	ebChannelOffset     = 0
	dataChannelBase     = 1
	stackSyncFrameLen   = 557
	maxDataChannelLanes = 14
)

// cell is one scheduled action for a node.
type cell struct {
	role    mac.SlotRole
	offset  uint8
	peer    topology.NodeID
	attempt int
	backup  bool
}

// Stack executes a node's slice of a centrally computed superframe. It
// implements mac.Protocol.
type Stack struct {
	id     topology.NodeID
	isAP   bool
	routes *Routes

	frameLen int64
	cells    map[int64]cell
}

var _ mac.Protocol = (*Stack)(nil)

// NewStack builds the static per-node schedule from the manager's
// superframe.
func NewStack(id topology.NodeID, isAP bool, routes *Routes, sf *Superframe) (*Stack, error) {
	if sf.Length <= 0 {
		return nil, fmt.Errorf("whart stack %d: empty superframe", id)
	}
	s := &Stack{
		id:       id,
		isAP:     isAP,
		routes:   routes,
		frameLen: sf.Length,
		cells:    make(map[int64]cell),
	}
	for _, e := range sf.Entries {
		switch id {
		case e.Tx:
			s.cells[e.Slot] = cell{
				role:    mac.RoleTxData,
				offset:  dataChannelBase + e.ChannelOffset%maxDataChannelLanes,
				peer:    e.Rx,
				attempt: 1,
				backup:  e.Backup,
			}
		case e.Rx:
			s.cells[e.Slot] = cell{
				role:   mac.RoleRxData,
				offset: dataChannelBase + e.ChannelOffset%maxDataChannelLanes,
				peer:   e.Tx,
			}
		}
	}
	return s, nil
}

// Assignment implements mac.Protocol: the sync slotframe (EBs, same rule
// as the distributed stacks) overlays the data superframe.
func (s *Stack) Assignment(asn sim.ASN) mac.Assignment {
	syncOffset := asn % stackSyncFrameLen
	if syncOffset == int64(s.id-1)%stackSyncFrameLen {
		return mac.Assignment{Role: mac.RoleTxEB, ChannelOffset: ebChannelOffset}
	}
	if !s.isAP {
		if best := s.routes.Best[s.id]; best != 0 &&
			syncOffset == int64(best-1)%stackSyncFrameLen {
			return mac.Assignment{Role: mac.RoleRxEB, ChannelOffset: ebChannelOffset}
		}
	}
	if c, ok := s.cells[asn%s.frameLen]; ok {
		return mac.Assignment{Role: c.role, ChannelOffset: c.offset, Attempt: c.attempt}
	}
	return mac.Assignment{Role: mac.RoleSleep}
}

// OnSynced implements mac.Protocol (the static stack needs no setup).
func (s *Stack) OnSynced(sim.ASN) {}

// EBPayload implements mac.Protocol: the centralized stack's beacons carry
// no routing metadata — the manager owns the topology.
func (s *Stack) EBPayload() []byte { return nil }

// OnFrame implements mac.Protocol (no distributed routing state to feed).
func (s *Stack) OnFrame(sim.ASN, *sim.Frame, float64) {}

// SharedFrame implements mac.Protocol: the centralized schedule has no
// shared slots (management traffic is modelled analytically; see
// UpdateCycle).
func (s *Stack) SharedFrame(sim.ASN) (*sim.Frame, bool) { return nil, false }

// NextHop implements mac.Protocol: the cell's peer is the centrally
// assigned receiver for this slot (primary-route cells target the primary
// parent, backup cells the backup parent).
func (s *Stack) NextHop(asn sim.ASN, _ int) (topology.NodeID, bool) {
	c, ok := s.cells[asn%s.frameLen]
	if !ok || c.role != mac.RoleTxData || c.peer == 0 {
		return 0, false
	}
	return c.peer, true
}

// OnTxResult implements mac.Protocol: the static stack does not adapt.
func (s *Stack) OnTxResult(sim.ASN, *sim.Frame, topology.NodeID, bool) {}
