// Package whart implements the centralized WirelessHART baseline: the
// Network Manager that computes graph routes and a TDMA transmission
// schedule from global topology knowledge, and a model of the in-band
// management cycle (collect topology -> compute -> disseminate) whose
// duration Figure 3 of the paper measures.
package whart

import (
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/digs-net/digs/internal/phy"
	"github.com/digs-net/digs/internal/topology"
)

// usablePRR is the minimum mean packet reception rate for a link to be
// admitted into the centrally computed routing graph.
const usablePRR = 0.35

// Routes is a centrally computed WirelessHART uplink routing graph: every
// field device has a primary parent and, where the topology allows, a
// backup parent, both strictly closer (in ETX distance) to the access
// points.
type Routes struct {
	// Best and Second are indexed by node ID (entry 0 and AP entries are
	// zero). Second is 0 where no backup exists.
	Best   []topology.NodeID
	Second []topology.NodeID
	// DistETX is each node's accumulated ETX to the nearest access point.
	DistETX []float64
	// Hops is each node's hop count along the primary path.
	Hops []int
}

// ComputeGraphRoutes runs the manager's global route computation: a
// Dijkstra pass from the access points over ETX link weights, then parent
// selection mirroring the WirelessHART rules (primary = minimum
// accumulated ETX; backup = next-best neighbour strictly closer to the
// APs). It fails if some device is unreachable.
func ComputeGraphRoutes(topo *topology.Topology) (*Routes, error) {
	n := topo.N()
	dist := make([]float64, n+1)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	for _, ap := range topo.APs() {
		dist[ap] = 0
	}

	linkETX := func(a, b topology.NodeID) (float64, bool) {
		prr := topo.PRR(a, b)
		if prr < usablePRR {
			return 0, false
		}
		return phy.LinkETX(prr), true
	}

	// Dijkstra over the usable-link graph.
	done := make([]bool, n+1)
	for {
		u := -1
		for i := 1; i <= n; i++ {
			if !done[i] && (u == -1 || dist[i] < dist[u]) {
				u = i
			}
		}
		if u == -1 || math.IsInf(dist[u], 1) {
			break
		}
		done[u] = true
		for v := 1; v <= n; v++ {
			if done[v] || v == u {
				continue
			}
			if w, ok := linkETX(topology.NodeID(u), topology.NodeID(v)); ok {
				if d := dist[u] + w; d < dist[v] {
					dist[v] = d
				}
			}
		}
	}

	routes := &Routes{
		Best:    make([]topology.NodeID, n+1),
		Second:  make([]topology.NodeID, n+1),
		DistETX: dist,
		Hops:    make([]int, n+1),
	}
	for i := topo.NumAPs + 1; i <= n; i++ {
		id := topology.NodeID(i)
		if math.IsInf(dist[i], 1) {
			return nil, fmt.Errorf("whart routes: device %d unreachable", i)
		}
		type cand struct {
			id   topology.NodeID
			cost float64
		}
		var cands []cand
		for v := 1; v <= n; v++ {
			if v == i {
				continue
			}
			w, ok := linkETX(id, topology.NodeID(v))
			if !ok || dist[v] >= dist[i] {
				continue // parents must be strictly closer
			}
			cands = append(cands, cand{id: topology.NodeID(v), cost: dist[v] + w})
		}
		if len(cands) == 0 {
			return nil, fmt.Errorf("whart routes: device %d has no eligible parent", i)
		}
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].cost != cands[b].cost {
				return cands[a].cost < cands[b].cost
			}
			return cands[a].id < cands[b].id
		})
		routes.Best[i] = cands[0].id
		if len(cands) > 1 {
			routes.Second[i] = cands[1].id
		}
	}

	// Hop counts along the primary paths.
	for i := topo.NumAPs + 1; i <= n; i++ {
		hops, cur := 0, topology.NodeID(i)
		for !topo.IsAP(cur) && hops <= n {
			cur = routes.Best[cur]
			hops++
			if cur == 0 {
				return nil, fmt.Errorf("whart routes: broken primary path at %d", i)
			}
		}
		routes.Hops[i] = hops
	}
	return routes, nil
}

// BackupCoverage returns the fraction of field devices with a backup
// parent (used to compare central vs distributed graph construction).
func (r *Routes) BackupCoverage(topo *topology.Topology) float64 {
	total, with := 0, 0
	for i := topo.NumAPs + 1; i <= topo.N(); i++ {
		total++
		if r.Second[i] != 0 {
			with++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(with) / float64(total)
}

// ManagerConfig models the pace of the in-band management plane. Real
// WirelessHART networks reserve sparse management slots in the superframe;
// every management command travels hop by hop through them, which is what
// makes the Figure 3 update times grow so steeply with network size.
type ManagerConfig struct {
	// ManagementSlotPeriod is the spacing of management slots in
	// (10 ms) slots: one management transmission opportunity per period.
	ManagementSlotPeriod int64
	// CollectCommands is the number of round-trip command exchanges the
	// manager needs per device to gather its neighbour health reports.
	CollectCommands int
	// DisseminateCommands is the number of acknowledged downlink updates
	// per device (route table write + schedule write).
	DisseminateCommands int
	// ComputePerDevice is the manager-side computation cost per device.
	ComputePerDevice time.Duration
}

// DefaultManagerConfig calibrates the model against Figure 3's testbed
// measurements (hundreds of seconds for a 50-node network).
func DefaultManagerConfig() ManagerConfig {
	return ManagerConfig{
		ManagementSlotPeriod: 100, // one management slot per second
		CollectCommands:      1,
		DisseminateCommands:  2,
		ComputePerDevice:     120 * time.Millisecond,
	}
}

// UpdateBreakdown is the duration of one full manager reaction to network
// dynamics, phase by phase.
type UpdateBreakdown struct {
	Collect     time.Duration
	Compute     time.Duration
	Disseminate time.Duration
}

// Total returns the end-to-end update time (the Figure 3 quantity).
func (u UpdateBreakdown) Total() time.Duration {
	return u.Collect + u.Compute + u.Disseminate
}

// UpdateCycle models one full centralized update: the manager polls every
// device for its neighbour table (one round trip of ETX-weighted hops per
// command, serialized through the management slots), recomputes routes and
// schedule, and pushes per-device updates back out.
func UpdateCycle(topo *topology.Topology, cfg ManagerConfig) (UpdateBreakdown, error) {
	routes, err := ComputeGraphRoutes(topo)
	if err != nil {
		return UpdateBreakdown{}, err
	}
	slotTime := time.Duration(cfg.ManagementSlotPeriod) * phy.SlotDuration

	var collect, disseminate time.Duration
	for i := topo.NumAPs + 1; i <= topo.N(); i++ {
		// A command round trip consumes one management slot per expected
		// transmission on each hop, both directions.
		roundTrip := time.Duration(2*routes.DistETX[i]) * slotTime
		collect += time.Duration(cfg.CollectCommands) * roundTrip
		disseminate += time.Duration(cfg.DisseminateCommands) * roundTrip
	}
	compute := time.Duration(topo.N()-topo.NumAPs) * cfg.ComputePerDevice
	return UpdateBreakdown{Collect: collect, Compute: compute, Disseminate: disseminate}, nil
}
