package whart

import (
	"fmt"

	"github.com/digs-net/digs/internal/mac"
	"github.com/digs-net/digs/internal/sim"
	"github.com/digs-net/digs/internal/telemetry"
	"github.com/digs-net/digs/internal/topology"
)

// Network bundles the per-node MAC and static WirelessHART stacks running
// over one simulated network, executing one centrally computed schedule.
type Network struct {
	Nodes  []*mac.Node // indexed by node ID, entry 0 nil
	Routes *Routes
	Frame  *Superframe
}

// Build computes graph routes and a TDMA superframe for the given flows
// and attaches a static stack to every node. This is the executable form
// of the WirelessHART baseline: the network runs exactly what the manager
// computed, with no adaptation.
func Build(nw *sim.Network, fl []Flow, macCfg mac.Config) (*Network, error) {
	topo := nw.Topology()
	routes, err := ComputeGraphRoutes(topo)
	if err != nil {
		return nil, err
	}
	sf, err := ComputeSchedule(topo, routes, fl)
	if err != nil {
		return nil, err
	}
	out := &Network{
		Nodes:  make([]*mac.Node, topo.N()+1),
		Routes: routes,
		Frame:  sf,
	}
	for i := 1; i <= topo.N(); i++ {
		id := topology.NodeID(i)
		stack, err := NewStack(id, topo.IsAP(id), routes, sf)
		if err != nil {
			return nil, err
		}
		node := mac.NewNode(id, topo.IsAP(id), stack, macCfg)
		if err := nw.Attach(node); err != nil {
			return nil, fmt.Errorf("whart build: %w", err)
		}
		out.Nodes[i] = node
	}
	return out, nil
}

// OnDeliver installs the sink callback on every access point.
func (n *Network) OnDeliver(fn func(asn sim.ASN, f *sim.Frame)) {
	for _, node := range n.Nodes[1:] {
		if node.IsAP() {
			node.Sink = fn
		}
	}
}

// SetTracer installs (or, with nil, removes) a packet-lifecycle tracer on
// every node. The static schedule never reroutes, so there is no
// route-change source to wire.
func (n *Network) SetTracer(t telemetry.Tracer) {
	for _, node := range n.Nodes[1:] {
		node.SetTracer(t)
	}
}
