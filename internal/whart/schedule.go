package whart

import (
	"fmt"

	"github.com/digs-net/digs/internal/topology"
)

// This file implements the Network Manager's centralized TDMA schedule
// construction (the counterpart the paper's autonomous scheduling
// replaces): dedicated slots are allocated hop by hop along each flow's
// primary path, with a retry slot on the primary route and one on the
// backup route per hop, following the WirelessHART convention the paper
// describes in Section V.

// Flow is one periodic uplink data flow.
type Flow struct {
	ID     uint16
	Source topology.NodeID
	// PeriodSlots is the packet generation period in slots.
	PeriodSlots int64
}

// Entry is one allocated cell.
type Entry struct {
	Slot          int64
	ChannelOffset uint8
	Tx, Rx        topology.NodeID
	FlowID        uint16
	// Backup marks retry cells routed over the backup parent.
	Backup bool
}

// Superframe is a centrally computed TDMA schedule.
type Superframe struct {
	Length  int64
	Entries []Entry
}

// maxChannelOffsets bounds parallel cells per slot (frequency reuse).
const maxChannelOffsets = 8

// ComputeSchedule allocates cells for every flow over the given routes.
// Per hop it allocates two dedicated cells on the primary route and one on
// the backup route (transmission, retransmission, backup retransmission —
// the paper's A=3 rule). Cells conflict when they share a slot and a node,
// or a slot and a channel offset.
func ComputeSchedule(topo *topology.Topology, routes *Routes, flows []Flow) (*Superframe, error) {
	length := int64(1)
	for _, f := range flows {
		if f.PeriodSlots <= 0 {
			return nil, fmt.Errorf("whart schedule: flow %d has period %d", f.ID, f.PeriodSlots)
		}
		if f.PeriodSlots > length {
			length = f.PeriodSlots
		}
	}

	sf := &Superframe{Length: length}
	nodeBusy := make(map[int64]map[topology.NodeID]bool)
	chBusy := make(map[int64]int)

	occupy := func(slot int64, tx, rx topology.NodeID) (uint8, bool) {
		nb := nodeBusy[slot]
		if nb[tx] || nb[rx] {
			return 0, false
		}
		if chBusy[slot] >= maxChannelOffsets {
			return 0, false
		}
		if nb == nil {
			nb = make(map[topology.NodeID]bool)
			nodeBusy[slot] = nb
		}
		nb[tx], nb[rx] = true, true
		off := uint8(chBusy[slot])
		chBusy[slot]++
		return off, true
	}

	for _, f := range flows {
		slot := int64(0)
		cur := f.Source
		for !topo.IsAP(cur) {
			best := routes.Best[cur]
			second := routes.Second[cur]
			if best == 0 {
				return nil, fmt.Errorf("whart schedule: flow %d stuck at node %d", f.ID, cur)
			}
			// Three attempts per hop: two primary, one backup.
			targets := []struct {
				rx     topology.NodeID
				backup bool
			}{{best, false}, {best, false}}
			if second != 0 {
				targets = append(targets, struct {
					rx     topology.NodeID
					backup bool
				}{second, true})
			}
			for _, tgt := range targets {
				placed := false
				for try := int64(0); try < length; try++ {
					s := (slot + try) % length
					if off, ok := occupy(s, cur, tgt.rx); ok {
						sf.Entries = append(sf.Entries, Entry{
							Slot: s, ChannelOffset: off,
							Tx: cur, Rx: tgt.rx, FlowID: f.ID, Backup: tgt.backup,
						})
						slot = s + 1
						placed = true
						break
					}
				}
				if !placed {
					return nil, fmt.Errorf("whart schedule: no slot for flow %d hop %d->%d",
						f.ID, cur, tgt.rx)
				}
			}
			cur = best
		}
	}
	return sf, nil
}

// Validate checks the schedule's structural invariants: no node is in two
// cells of the same slot and channel offsets never collide within a slot.
func (sf *Superframe) Validate() error {
	type slotKey struct {
		slot int64
		node topology.NodeID
	}
	nodes := make(map[slotKey]bool)
	type chKey struct {
		slot int64
		off  uint8
	}
	chans := make(map[chKey]bool)
	for _, e := range sf.Entries {
		if e.Slot < 0 || e.Slot >= sf.Length {
			return fmt.Errorf("whart schedule: slot %d outside superframe", e.Slot)
		}
		for _, n := range []topology.NodeID{e.Tx, e.Rx} {
			k := slotKey{e.Slot, n}
			if nodes[k] {
				return fmt.Errorf("whart schedule: node %d double-booked in slot %d", n, e.Slot)
			}
			nodes[k] = true
		}
		ck := chKey{e.Slot, e.ChannelOffset}
		if chans[ck] {
			return fmt.Errorf("whart schedule: channel offset %d reused in slot %d",
				e.ChannelOffset, e.Slot)
		}
		chans[ck] = true
	}
	return nil
}
