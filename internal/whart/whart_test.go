package whart

import (
	"math/rand"
	"testing"
	"time"

	"github.com/digs-net/digs/internal/topology"
)

func TestComputeGraphRoutesOnTestbedA(t *testing.T) {
	topo := topology.TestbedA()
	routes, err := ComputeGraphRoutes(topo)
	if err != nil {
		t.Fatal(err)
	}
	for i := topo.NumAPs + 1; i <= topo.N(); i++ {
		if routes.Best[i] == 0 {
			t.Fatalf("device %d has no primary parent", i)
		}
		if routes.Best[i] == topology.NodeID(i) {
			t.Fatalf("device %d is its own parent", i)
		}
		// Parents are strictly closer in ETX distance.
		if routes.DistETX[routes.Best[i]] >= routes.DistETX[i] {
			t.Fatalf("device %d primary parent %d not closer to APs", i, routes.Best[i])
		}
		if s := routes.Second[i]; s != 0 && routes.DistETX[s] >= routes.DistETX[i] {
			t.Fatalf("device %d backup parent %d not closer to APs", i, s)
		}
		if routes.Hops[i] < 1 || routes.Hops[i] > topo.N() {
			t.Fatalf("device %d hop count %d out of range", i, routes.Hops[i])
		}
	}
	// With global knowledge, the central computation should dual-home the
	// overwhelming majority of devices.
	if cov := routes.BackupCoverage(topo); cov < 0.8 {
		t.Fatalf("central backup coverage %.2f, want >= 0.8", cov)
	}
}

func TestRoutesAreLoopFree(t *testing.T) {
	topo := topology.TestbedB()
	routes, err := ComputeGraphRoutes(topo)
	if err != nil {
		t.Fatal(err)
	}
	for i := topo.NumAPs + 1; i <= topo.N(); i++ {
		seen := map[topology.NodeID]bool{}
		cur := topology.NodeID(i)
		for !topo.IsAP(cur) {
			if seen[cur] {
				t.Fatalf("primary path loop at %d from %d", cur, i)
			}
			seen[cur] = true
			cur = routes.Best[cur]
		}
	}
}

func TestUpdateCycleGrowsWithNetworkSize(t *testing.T) {
	cfg := DefaultManagerConfig()
	times := make(map[string]time.Duration)
	for _, topo := range []*topology.Topology{
		topology.HalfTestbedA(), topology.TestbedA(),
		topology.HalfTestbedB(), topology.TestbedB(),
	} {
		u, err := UpdateCycle(topo, cfg)
		if err != nil {
			t.Fatalf("%s: %v", topo.Name, err)
		}
		times[topo.Name] = u.Total()
		if u.Collect <= 0 || u.Disseminate <= 0 || u.Compute <= 0 {
			t.Fatalf("%s: empty phase in %+v", topo.Name, u)
		}
	}
	// Figure 3 shape: full testbeds take much longer than half testbeds,
	// and the absolute scale is minutes, not seconds.
	if times["testbed-a"] < 2*times["half-testbed-a"] {
		t.Fatalf("full A (%v) not >= 2x half A (%v)", times["testbed-a"], times["half-testbed-a"])
	}
	if times["testbed-b"] < 2*times["half-testbed-b"] {
		t.Fatalf("full B (%v) not >= 2x half B (%v)", times["testbed-b"], times["half-testbed-b"])
	}
	if times["testbed-a"] < 100*time.Second || times["testbed-a"] > 1500*time.Second {
		t.Fatalf("full A update time %v outside the Figure 3 magnitude", times["testbed-a"])
	}
}

func TestComputeSchedule(t *testing.T) {
	topo := topology.TestbedA()
	routes, err := ComputeGraphRoutes(topo)
	if err != nil {
		t.Fatal(err)
	}
	flows := make([]Flow, 0, len(topo.SuggestedSources))
	for i, src := range topo.SuggestedSources {
		flows = append(flows, Flow{ID: uint16(i + 1), Source: src, PeriodSlots: 500})
	}
	sf, err := ComputeSchedule(topo, routes, flows)
	if err != nil {
		t.Fatal(err)
	}
	if err := sf.Validate(); err != nil {
		t.Fatal(err)
	}
	if sf.Length != 500 {
		t.Fatalf("superframe length %d, want 500", sf.Length)
	}
	// Every flow must have cells, and backup cells must exist for flows
	// whose path nodes have backup parents.
	perFlow := map[uint16]int{}
	backups := 0
	for _, e := range sf.Entries {
		perFlow[e.FlowID]++
		if e.Backup {
			backups++
		}
	}
	for _, f := range flows {
		if perFlow[f.ID] == 0 {
			t.Fatalf("flow %d has no cells", f.ID)
		}
	}
	if backups == 0 {
		t.Fatal("no backup cells allocated")
	}
}

func TestComputeScheduleRejectsBadFlow(t *testing.T) {
	topo := topology.TestbedA()
	routes, err := ComputeGraphRoutes(topo)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ComputeSchedule(topo, routes, []Flow{{ID: 1, Source: 3, PeriodSlots: 0}}); err == nil {
		t.Fatal("accepted zero-period flow")
	}
}

func TestSuperframeValidateCatchesDoubleBooking(t *testing.T) {
	sf := &Superframe{Length: 10, Entries: []Entry{
		{Slot: 1, ChannelOffset: 0, Tx: 5, Rx: 6},
		{Slot: 1, ChannelOffset: 1, Tx: 6, Rx: 7}, // node 6 double-booked
	}}
	if err := sf.Validate(); err == nil {
		t.Fatal("validate missed node double-booking")
	}
	sf = &Superframe{Length: 10, Entries: []Entry{
		{Slot: 1, ChannelOffset: 0, Tx: 5, Rx: 6},
		{Slot: 1, ChannelOffset: 0, Tx: 8, Rx: 9}, // channel reuse
	}}
	if err := sf.Validate(); err == nil {
		t.Fatal("validate missed channel reuse")
	}
	sf = &Superframe{Length: 10, Entries: []Entry{{Slot: 12, Tx: 5, Rx: 6}}}
	if err := sf.Validate(); err == nil {
		t.Fatal("validate missed out-of-frame slot")
	}
}

func TestComputeScheduleRandomFlowsProperty(t *testing.T) {
	// For arbitrary flow sets drawn from the topology, the computed
	// superframe always validates and covers every hop of every flow.
	topo := topology.TestbedA()
	routes, err := ComputeGraphRoutes(topo)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 25; trial++ {
		n := rng.Intn(10) + 1
		fl := make([]Flow, 0, n)
		used := map[topology.NodeID]bool{}
		for len(fl) < n {
			src := topology.NodeID(topo.NumAPs + 1 + rng.Intn(topo.N()-topo.NumAPs))
			if used[src] {
				continue
			}
			used[src] = true
			fl = append(fl, Flow{
				ID:          uint16(len(fl) + 1),
				Source:      src,
				PeriodSlots: int64(rng.Intn(400)) + 200,
			})
		}
		sf, err := ComputeSchedule(topo, routes, fl)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := sf.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Every flow must have primary cells for each hop of its path.
		for _, f := range fl {
			hops := routes.Hops[f.Source]
			primary := 0
			for _, e := range sf.Entries {
				if e.FlowID == f.ID && !e.Backup {
					primary++
				}
			}
			if primary != 2*hops {
				t.Fatalf("trial %d flow %d: %d primary cells for %d hops, want %d",
					trial, f.ID, primary, hops, 2*hops)
			}
		}
	}
}
