package whart

import (
	"testing"
	"time"

	"github.com/digs-net/digs/internal/mac"
	"github.com/digs-net/digs/internal/metrics"
	"github.com/digs-net/digs/internal/sim"
	"github.com/digs-net/digs/internal/topology"
)

func buildWhartNet(t *testing.T, seed int64) (*sim.Network, *Network, []Flow) {
	t.Helper()
	topo := topology.TestbedA()
	nw := sim.NewNetwork(topo, seed)
	fl := make([]Flow, 0, len(topo.SuggestedSources))
	for i, src := range topo.SuggestedSources {
		fl = append(fl, Flow{ID: uint16(i + 1), Source: src, PeriodSlots: 500})
	}
	net, err := Build(nw, fl, mac.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return nw, net, fl
}

func TestStaticStackDeliversInCleanNetwork(t *testing.T) {
	nw, net, fl := buildWhartNet(t, 3)
	col := metrics.NewCollector()
	net.OnDeliver(func(asn sim.ASN, f *sim.Frame) { col.Delivered(f.FlowID, f.Seq, asn) })

	// WirelessHART devices get their schedule pre-installed; only sync is
	// needed, which the EB wave provides quickly.
	nw.Run(sim.SlotsFor(60 * time.Second))

	const packets = 12
	for p := 0; p < packets; p++ {
		for _, f := range fl {
			seq := uint16(p)
			col.Sent(f.ID, seq, nw.ASN())
			_ = net.Nodes[f.Source].InjectData(&sim.Frame{
				Origin: f.Source, FlowID: f.ID, Seq: seq, BornASN: nw.ASN(),
			})
		}
		nw.Run(500) // one flow period
	}
	nw.Run(sim.SlotsFor(15 * time.Second))

	pdr := col.PDR()
	t.Logf("centralized WirelessHART clean PDR: %.3f", pdr)
	if pdr < 0.9 {
		t.Fatalf("clean-network PDR %.3f, want >= 0.9 (the manager computed these routes)", pdr)
	}
}

func TestStaticStackDoesNotAdaptToFailure(t *testing.T) {
	nw, net, fl := buildWhartNet(t, 3)
	col := metrics.NewCollector()
	net.OnDeliver(func(asn sim.ASN, f *sim.Frame) { col.Delivered(f.FlowID, f.Seq, asn) })
	nw.Run(sim.SlotsFor(60 * time.Second))

	// Kill the most-used primary parent. The static schedule keeps
	// pointing at it: flows routed through the victim on BOTH primary and
	// backup should go dark, and those with a live backup survive at
	// reduced reliability — but nothing ever re-routes.
	use := map[topology.NodeID]int{}
	for _, f := range fl {
		cur := f.Source
		for !nw.Topology().IsAP(cur) {
			use[net.Routes.Best[cur]]++
			cur = net.Routes.Best[cur]
		}
	}
	var victim topology.NodeID
	best := 0
	for id, n := range use {
		if !nw.Topology().IsAP(id) && n > best {
			victim, best = id, n
		}
	}
	if victim == 0 {
		t.Skip("all primary routes are single-hop in this seed")
	}
	nw.Fail(victim)

	const packets = 12
	for p := 0; p < packets; p++ {
		for _, f := range fl {
			seq := uint16(100 + p)
			col.Sent(f.ID, seq, nw.ASN())
			_ = net.Nodes[f.Source].InjectData(&sim.Frame{
				Origin: f.Source, FlowID: f.ID, Seq: seq, BornASN: nw.ASN(),
			})
		}
		nw.Run(500)
	}
	nw.Run(sim.SlotsFor(15 * time.Second))

	// The victim's children keep burning their primary cells forever; at
	// least one flow must be visibly degraded, and the network never
	// recovers (that is Figure 3's motivation: the manager needs minutes
	// to push a fix).
	degraded := 0
	for _, f := range fl {
		if col.FlowPDR(f.ID) < 0.999 {
			degraded++
		}
	}
	t.Logf("degraded flows after failure with static schedule: %d/%d", degraded, len(fl))
	if degraded == 0 {
		t.Fatal("killing the busiest router degraded nothing; victim selection is wrong")
	}
}

func TestStackCellsMatchSuperframe(t *testing.T) {
	topo := topology.TestbedA()
	routes, err := ComputeGraphRoutes(topo)
	if err != nil {
		t.Fatal(err)
	}
	fl := []Flow{{ID: 1, Source: topo.SuggestedSources[0], PeriodSlots: 400}}
	sf, err := ComputeSchedule(topo, routes, fl)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range sf.Entries {
		tx, err := NewStack(e.Tx, topo.IsAP(e.Tx), routes, sf)
		if err != nil {
			t.Fatal(err)
		}
		rx, err := NewStack(e.Rx, topo.IsAP(e.Rx), routes, sf)
		if err != nil {
			t.Fatal(err)
		}
		// Pick an ASN landing on this slot but clear of both nodes' sync
		// slots.
		asn := e.Slot
		for i := 0; i < 600; i++ {
			aTx, aRx := tx.Assignment(asn), rx.Assignment(asn)
			if aTx.Role == mac.RoleTxEB || aTx.Role == mac.RoleRxEB ||
				aRx.Role == mac.RoleTxEB || aRx.Role == mac.RoleRxEB {
				asn += sf.Length
				continue
			}
			if aTx.Role != mac.RoleTxData {
				t.Fatalf("tx node %d role %v in its cell", e.Tx, aTx.Role)
			}
			if aRx.Role != mac.RoleRxData {
				t.Fatalf("rx node %d role %v in its cell", e.Rx, aRx.Role)
			}
			if aTx.ChannelOffset != aRx.ChannelOffset {
				t.Fatalf("cell channel mismatch: %d vs %d", aTx.ChannelOffset, aRx.ChannelOffset)
			}
			if hop, ok := tx.NextHop(asn, 1); !ok || hop != e.Rx {
				t.Fatalf("next hop (%d, %v), want (%d, true)", hop, ok, e.Rx)
			}
			break
		}
	}
}
