package whart

import (
	"github.com/digs-net/digs/internal/invariant"
	"github.com/digs-net/digs/internal/sim"
	"github.com/digs-net/digs/internal/topology"
)

// Prober returns the invariant-monitor probe for this stack. The routes
// are the manager's static graph: parents never change at runtime, so
// the loop check watches the computed graph and the liveness checks
// watch the MAC.
func (n *Network) Prober(nw *sim.Network) invariant.Prober {
	return func(states []invariant.NodeState) []invariant.NodeState {
		for i, node := range n.Nodes {
			if node == nil {
				continue
			}
			id := topology.NodeID(i)
			synced, _ := node.Synced()
			neighbors := 0
			if n.Routes.Best[i] != 0 {
				neighbors++
			}
			if n.Routes.Second[i] != 0 {
				neighbors++
			}
			states = append(states, invariant.NodeState{
				ID:        id,
				IsAP:      node.IsAP(),
				Alive:     !nw.Failed(id),
				Synced:    synced,
				Parent:    n.Routes.Best[i],
				Backup:    n.Routes.Second[i],
				Queue:     node.QueueLen(),
				LastRx:    node.LastRx(),
				Neighbors: neighbors,
			})
		}
		return states
	}
}

// Healer returns the watchdog hook. A static stack has no routing state
// to rebuild — the reboot resyncs the node's clock against the next
// beacon and it resumes the manager's schedule.
func (n *Network) Healer() func(id topology.NodeID, asn sim.ASN) {
	return func(id topology.NodeID, asn sim.ASN) {
		if int(id) < len(n.Nodes) && n.Nodes[id] != nil {
			n.Nodes[id].Reboot(asn, false)
		}
	}
}
