// Package trickle implements the Trickle algorithm (RFC 6206) in TSCH slot
// time. DiGS and the RPL baseline both gate their routing beacons (join-in
// messages / DIOs) with a Trickle timer: transmissions are frequent right
// after a change (interval Imin) and exponentially rarer in steady state
// (up to Imin * 2^doublings), with suppression when enough consistent
// messages from neighbours have already been heard.
package trickle

import (
	"fmt"
	"math/rand"
)

// Timer is one Trickle instance, advanced in slot time. It is not safe for
// concurrent use; each simulated node owns its own timer.
type Timer struct {
	iminSlots int64
	imaxSlots int64
	k         int

	interval      int64 // current interval length I
	intervalStart int64 // ASN of interval start
	fireAt        int64 // chosen slot t in [I/2, I)
	counter       int   // consistent messages heard this interval
	started       bool

	rng *rand.Rand
}

// Config holds Trickle parameters.
type Config struct {
	// IminSlots is the minimum interval in slots.
	IminSlots int64
	// Doublings is how many times the interval may double (Imax =
	// Imin * 2^Doublings).
	Doublings int
	// K is the redundancy constant: transmission is suppressed when at
	// least K consistent messages were heard in the interval. K <= 0 means
	// no suppression.
	K int
}

// DefaultConfig matches the paper's Contiki deployment: Imin of 1 s worth
// of slots doubling up to about 17 minutes, redundancy 10 (effectively
// rarely suppressing in sparse neighbourhoods).
func DefaultConfig() Config {
	return Config{IminSlots: 100, Doublings: 10, K: 10}
}

// NewTimer creates a Trickle timer. It returns an error for non-positive
// Imin or negative doublings.
func NewTimer(cfg Config, rng *rand.Rand) (*Timer, error) {
	if cfg.IminSlots <= 0 {
		return nil, fmt.Errorf("trickle: Imin must be positive, got %d", cfg.IminSlots)
	}
	if cfg.Doublings < 0 {
		return nil, fmt.Errorf("trickle: doublings must be non-negative, got %d", cfg.Doublings)
	}
	return &Timer{
		iminSlots: cfg.IminSlots,
		imaxSlots: cfg.IminSlots << uint(cfg.Doublings),
		k:         cfg.K,
		rng:       rng,
	}, nil
}

// Start begins the first interval at the given slot, at the minimum
// interval size (RFC 6206 section 4.2 step 1).
func (t *Timer) Start(asn int64) {
	t.interval = t.iminSlots
	t.begin(asn)
	t.started = true
}

// begin starts a new interval of the current size at asn.
func (t *Timer) begin(asn int64) {
	t.intervalStart = asn
	half := t.interval / 2
	t.fireAt = asn + half + t.rng.Int63n(t.interval-half)
	t.counter = 0
}

// Reset reacts to an inconsistency: the interval collapses back to Imin
// and restarts (RFC 6206 section 4.2 step 6). Resetting an already-minimal
// interval does nothing, per the RFC.
func (t *Timer) Reset(asn int64) {
	if !t.started {
		t.Start(asn)
		return
	}
	if t.interval == t.iminSlots {
		return
	}
	t.interval = t.iminSlots
	t.begin(asn)
}

// Hear records a consistent message from a neighbour (RFC 6206 section 4.2
// step 3).
func (t *Timer) Hear() {
	t.counter++
}

// Fires advances the timer to the given slot and reports whether the node
// should transmit in it. It must be called once per slot in order.
func (t *Timer) Fires(asn int64) bool {
	if !t.started {
		return false
	}
	if asn >= t.intervalStart+t.interval {
		// Interval expired: double (capped) and start the next one.
		t.interval *= 2
		if t.interval > t.imaxSlots {
			t.interval = t.imaxSlots
		}
		t.begin(asn)
	}
	if asn != t.fireAt {
		return false
	}
	return t.k <= 0 || t.counter < t.k
}

// NextEvent returns the next slot at which Fires must be called exactly:
// the pending fire slot if it is still at or after `after`, otherwise the
// end of the current interval (where the rollover happens). Callers that
// skip slots must not skip past the returned slot, or a scheduled
// transmission is silently lost. Returns `after` when not started.
func (t *Timer) NextEvent(after int64) int64 {
	if !t.started {
		return after
	}
	if t.fireAt >= after {
		return t.fireAt
	}
	return t.intervalStart + t.interval
}

// Interval returns the current interval length in slots (for tests and
// introspection).
func (t *Timer) Interval() int64 { return t.interval }

// IntervalStart returns the slot the current interval began at.
func (t *Timer) IntervalStart() int64 { return t.intervalStart }

// Started reports whether the timer is running.
func (t *Timer) Started() bool { return t.started }
