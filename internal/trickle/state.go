package trickle

// State is a timer's complete mutable state. Imin/Imax/K are
// construction-time configuration; the RNG is owned by the stack and its
// position is captured there.
type State struct {
	Interval      int64
	IntervalStart int64
	FireAt        int64
	Counter       int
	Started       bool
}

// CaptureState snapshots the timer.
func (t *Timer) CaptureState() State {
	return State{
		Interval:      t.interval,
		IntervalStart: t.intervalStart,
		FireAt:        t.fireAt,
		Counter:       t.counter,
		Started:       t.started,
	}
}

// RestoreState overlays a captured state onto a freshly built timer.
func (t *Timer) RestoreState(st State) {
	t.interval = st.Interval
	t.intervalStart = st.IntervalStart
	t.fireAt = st.FireAt
	t.counter = st.Counter
	t.started = st.Started
}
