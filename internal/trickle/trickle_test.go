package trickle

import (
	"math/rand"
	"testing"
)

func newTimer(t *testing.T, cfg Config) *Timer {
	t.Helper()
	tr, err := NewTimer(cfg, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewTimerValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewTimer(Config{IminSlots: 0, Doublings: 1}, rng); err == nil {
		t.Fatal("accepted zero Imin")
	}
	if _, err := NewTimer(Config{IminSlots: 10, Doublings: -1}, rng); err == nil {
		t.Fatal("accepted negative doublings")
	}
}

func TestUnstartedTimerNeverFires(t *testing.T) {
	tr := newTimer(t, Config{IminSlots: 10, Doublings: 2, K: 0})
	for asn := int64(0); asn < 100; asn++ {
		if tr.Fires(asn) {
			t.Fatal("unstarted timer fired")
		}
	}
}

func TestFiresOncePerInterval(t *testing.T) {
	tr := newTimer(t, Config{IminSlots: 16, Doublings: 0, K: 0})
	tr.Start(0)
	fires := 0
	var fireSlots []int64
	for asn := int64(0); asn < 160; asn++ {
		if tr.Fires(asn) {
			fires++
			fireSlots = append(fireSlots, asn)
		}
	}
	if fires != 10 {
		t.Fatalf("fixed 16-slot interval fired %d times in 160 slots, want 10 (%v)", fires, fireSlots)
	}
	// Every firing must land in the second half of its interval.
	for _, s := range fireSlots {
		off := s % 16
		if off < 8 {
			t.Fatalf("fired at offset %d, want in [8,16)", off)
		}
	}
}

func TestIntervalDoublesAndCaps(t *testing.T) {
	tr := newTimer(t, Config{IminSlots: 10, Doublings: 3, K: 0})
	tr.Start(0)
	if tr.Interval() != 10 {
		t.Fatalf("initial interval %d, want 10", tr.Interval())
	}
	// Walk far enough for the interval to cap at 80.
	for asn := int64(0); asn < 1000; asn++ {
		tr.Fires(asn)
	}
	if tr.Interval() != 80 {
		t.Fatalf("capped interval %d, want 80", tr.Interval())
	}
}

func TestResetCollapsesInterval(t *testing.T) {
	tr := newTimer(t, Config{IminSlots: 10, Doublings: 3, K: 0})
	tr.Start(0)
	asn := int64(0)
	for ; asn < 500; asn++ {
		tr.Fires(asn)
	}
	if tr.Interval() <= 10 {
		t.Fatal("interval did not grow before reset")
	}
	tr.Reset(asn)
	if tr.Interval() != 10 {
		t.Fatalf("reset interval %d, want 10", tr.Interval())
	}
	// Reset fires promptly afterwards: within 2*Imin slots.
	fired := false
	for end := asn + 20; asn < end; asn++ {
		if tr.Fires(asn) {
			fired = true
			break
		}
	}
	if !fired {
		t.Fatal("no transmission within 2*Imin after reset")
	}
}

func TestResetOnMinimalIntervalIsNoOp(t *testing.T) {
	tr := newTimer(t, Config{IminSlots: 10, Doublings: 3, K: 0})
	tr.Start(0)
	before := tr.Interval()
	tr.Reset(0)
	if tr.Interval() != before {
		t.Fatal("reset on minimal interval changed state")
	}
}

func TestResetOnUnstartedStarts(t *testing.T) {
	tr := newTimer(t, Config{IminSlots: 10, Doublings: 3, K: 0})
	tr.Reset(5)
	if !tr.Started() {
		t.Fatal("reset did not start an unstarted timer")
	}
}

func TestSuppressionWithK(t *testing.T) {
	tr := newTimer(t, Config{IminSlots: 16, Doublings: 0, K: 2})
	tr.Start(0)
	// Hear 2 consistent messages every interval: should always suppress.
	// Fires is evaluated at slot start (plan phase), hears arrive within
	// the slot, so Fires comes first.
	fires := 0
	for asn := int64(0); asn < 320; asn++ {
		if tr.Fires(asn) {
			fires++
		}
		if asn%16 == 0 {
			tr.Hear()
			tr.Hear()
		}
	}
	if fires != 0 {
		t.Fatalf("suppression failed: fired %d times with k=2 and 2 heard per interval", fires)
	}
}

func TestNoSuppressionBelowK(t *testing.T) {
	tr := newTimer(t, Config{IminSlots: 16, Doublings: 0, K: 3})
	tr.Start(0)
	fires := 0
	for asn := int64(0); asn < 320; asn++ {
		if tr.Fires(asn) {
			fires++
		}
		if asn%16 == 0 {
			tr.Hear() // only 1 < k=3
		}
	}
	if fires != 20 {
		t.Fatalf("fired %d times, want every interval (20)", fires)
	}
}

func TestSteadyStateTransmissionRateDrops(t *testing.T) {
	// The defining Trickle property: the transmission rate decays after
	// start and stays low until a reset.
	tr := newTimer(t, Config{IminSlots: 10, Doublings: 6, K: 0})
	tr.Start(0)
	countIn := func(from, to int64) int {
		c := 0
		for asn := from; asn < to; asn++ {
			if tr.Fires(asn) {
				c++
			}
		}
		return c
	}
	early := countIn(0, 200)
	late := countIn(5000, 5200)
	if late >= early {
		t.Fatalf("transmission rate did not decay: early %d, late %d", early, late)
	}
}

func TestFireAlwaysInSecondHalfProperty(t *testing.T) {
	// RFC 6206: the transmission time t is always in [I/2, I) of the
	// current interval, for any configuration and any walk length.
	for seed := int64(0); seed < 20; seed++ {
		tr, err := NewTimer(Config{IminSlots: 8, Doublings: 5, K: 0},
			rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		tr.Start(0)
		for asn := int64(0); asn < 5000; asn++ {
			fired := tr.Fires(asn)
			if fired {
				off := asn - tr.IntervalStart()
				if off < tr.Interval()/2 || off >= tr.Interval() {
					t.Fatalf("seed %d: fired at offset %d of interval %d",
						seed, off, tr.Interval())
				}
			}
		}
	}
}

func TestResetStormIsBounded(t *testing.T) {
	// Even under constant inconsistency resets, at most one transmission
	// occurs per Imin interval.
	tr, err := NewTimer(Config{IminSlots: 10, Doublings: 4, K: 0},
		rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	tr.Start(0)
	fires := 0
	for asn := int64(0); asn < 1000; asn++ {
		if asn%3 == 0 {
			tr.Reset(asn)
		}
		if tr.Fires(asn) {
			fires++
		}
	}
	if fires > 1000/10+2 {
		t.Fatalf("reset storm produced %d transmissions in 1000 slots", fires)
	}
}
