package detrand

import "math"

// Counter-based (stateless) random draws. Unlike Source, which owns a
// sequential stream whose values depend on how many draws preceded them,
// these derive each value purely from the identity of the event that needs
// it — hash(seed, counters...). Consumers that process events in different
// orders (or in parallel) therefore see bit-identical values, which is the
// property the sharded slot engine's determinism contract rests on. The
// mixer is the splitmix64 finalizer, whose avalanche behaviour makes
// adjacent counter values statistically independent.

const gamma = 0x9E3779B97F4A7C15 // splitmix64 increment (golden ratio)

// mix64 is the splitmix64 output permutation.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// Mix folds one word into a running hash. Start from a seed (any value,
// including 0) and fold each identifying counter in a fixed order.
func Mix(h, v uint64) uint64 {
	return mix64(h ^ (v+gamma)*0x2545F4914F6CDD1D)
}

// Hash3 hashes a seed and three identifying words — the common shape for
// per-(slot, src, dst) draws.
func Hash3(seed uint64, a, b, c uint64) uint64 {
	return Mix(Mix(Mix(mix64(seed+gamma), a), b), c)
}

// Uniform maps a hash to a float64 uniform on (0, 1]; the open lower bound
// makes it safe as the log argument in Box-Muller.
func Uniform(h uint64) float64 {
	return (float64(h>>11) + 1) / (1 << 53)
}

// Norm maps a hash to one standard normal deviate via Box-Muller over two
// words derived from it. Deterministic in h alone.
func Norm(h uint64) float64 {
	u1 := Uniform(mix64(h + gamma))
	u2 := Uniform(mix64(h + gamma + gamma))
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}
