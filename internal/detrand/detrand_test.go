package detrand

import (
	"math/rand"
	"testing"
)

// The wrapper must not perturb the value stream: wrapping rand.NewSource
// yields the same rand.Rand outputs as using it directly.
func TestStreamIdentical(t *testing.T) {
	plain := rand.New(rand.NewSource(42))
	counted := rand.New(New(42))
	for i := 0; i < 1000; i++ {
		switch i % 4 {
		case 0:
			if a, b := plain.Int63(), counted.Int63(); a != b {
				t.Fatalf("Int63 diverged at %d: %d vs %d", i, a, b)
			}
		case 1:
			if a, b := plain.Float64(), counted.Float64(); a != b {
				t.Fatalf("Float64 diverged at %d: %v vs %v", i, a, b)
			}
		case 2:
			if a, b := plain.NormFloat64(), counted.NormFloat64(); a != b {
				t.Fatalf("NormFloat64 diverged at %d: %v vs %v", i, a, b)
			}
		case 3:
			if a, b := plain.Intn(17), counted.Intn(17); a != b {
				t.Fatalf("Intn diverged at %d: %d vs %d", i, a, b)
			}
		}
	}
}

// Reset(draws) must position a stream exactly where an uninterrupted one
// would be, through the full rand.Rand API.
func TestResetFastForward(t *testing.T) {
	src := New(7)
	r := rand.New(src)
	for i := 0; i < 500; i++ {
		r.NormFloat64()
		r.Intn(100)
	}
	mark := src.Draws()
	want := make([]float64, 50)
	for i := range want {
		want[i] = r.Float64()
	}

	resumedSrc := New(7)
	resumedSrc.Reset(mark)
	resumed := rand.New(resumedSrc)
	for i := range want {
		if got := resumed.Float64(); got != want[i] {
			t.Fatalf("resumed stream diverged at draw %d: %v vs %v", i, got, want[i])
		}
	}
	if resumedSrc.Draws() != mark+50 {
		t.Fatalf("draw counter after resume: %d, want %d", resumedSrc.Draws(), mark+50)
	}
}

func TestSeedRestarts(t *testing.T) {
	s := New(3)
	r := rand.New(s)
	first := r.Int63()
	s.Seed(3)
	if s.Draws() != 0 {
		t.Fatalf("Seed must zero the counter, got %d", s.Draws())
	}
	if again := rand.New(s).Int63(); again != first {
		t.Fatalf("reseeded stream differs: %d vs %d", again, first)
	}
}
