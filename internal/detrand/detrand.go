// Package detrand wraps math/rand's seeded source with a draw counter,
// making RNG streams checkpointable. Every stateful component of the
// simulator draws from a source created here; because the wrapper forwards
// each call 1:1 to the underlying generator, the value stream is
// bit-identical to using rand.NewSource directly — existing golden and
// determinism tests are unaffected. A stream's position is then fully
// described by (seed, draws): restoring is reseeding a fresh source and
// fast-forwarding it the counted number of steps.
package detrand

import "math/rand"

// Source is a counting rand.Source64. It is not safe for concurrent use,
// matching the sources it wraps.
type Source struct {
	seed  int64
	src   rand.Source64
	draws uint64
}

var _ rand.Source64 = (*Source)(nil)

// New returns a counting source seeded like rand.NewSource(seed).
func New(seed int64) *Source {
	return &Source{seed: seed, src: rand.NewSource(seed).(rand.Source64)}
}

// Int63 implements rand.Source. One call advances the underlying
// generator exactly one step.
func (s *Source) Int63() int64 {
	s.draws++
	return s.src.Int63()
}

// Uint64 implements rand.Source64. One call advances the underlying
// generator exactly one step — the same step Int63 takes, so the draw
// counter measures generator position regardless of which method mix
// consumed the stream.
func (s *Source) Uint64() uint64 {
	s.draws++
	return s.src.Uint64()
}

// Seed implements rand.Source: it restarts the stream and zeroes the
// counter.
func (s *Source) Seed(seed int64) {
	s.seed = seed
	s.draws = 0
	s.src.Seed(seed)
}

// SeedValue returns the seed the current stream started from.
func (s *Source) SeedValue() int64 { return s.seed }

// Draws returns how many generator steps have been consumed since the
// last (re)seed.
func (s *Source) Draws() uint64 { return s.draws }

// Reset reseeds the source from its remembered seed and fast-forwards it
// to the given draw count, so the next value drawn is exactly the one an
// uninterrupted stream would produce.
func (s *Source) Reset(draws uint64) {
	s.src.Seed(s.seed)
	for i := uint64(0); i < draws; i++ {
		s.src.Uint64()
	}
	s.draws = draws
}
