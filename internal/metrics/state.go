package metrics

import "sort"

// PacketRecord is one (flow, seq) → slot entry of a collector map.
type PacketRecord struct {
	Flow uint16
	Seq  uint16
	ASN  int64
}

// CollectorState is a measurement window's complete state as plain old
// data, with both maps flattened in sorted order for a stable wire form.
type CollectorState struct {
	Sent          []PacketRecord
	Delivered     []PacketRecord
	OutOfWindow   int64
	DupDeliveries int64
}

func captureRecords(m map[packetKey]int64) []PacketRecord {
	if len(m) == 0 {
		return nil
	}
	out := make([]PacketRecord, 0, len(m))
	for k, at := range m {
		out = append(out, PacketRecord{Flow: k.flow, Seq: k.seq, ASN: at})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Flow != out[j].Flow {
			return out[i].Flow < out[j].Flow
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// CaptureState snapshots the collector.
func (c *Collector) CaptureState() *CollectorState {
	return &CollectorState{
		Sent:          captureRecords(c.sent),
		Delivered:     captureRecords(c.delivered),
		OutOfWindow:   c.outOfWindow,
		DupDeliveries: c.dupDeliveries,
	}
}

// RestoreState replaces the collector's contents with the captured window.
func (c *Collector) RestoreState(st *CollectorState) {
	c.sent = make(map[packetKey]int64, len(st.Sent))
	for _, r := range st.Sent {
		c.sent[packetKey{r.Flow, r.Seq}] = r.ASN
	}
	c.delivered = make(map[packetKey]int64, len(st.Delivered))
	for _, r := range st.Delivered {
		c.delivered[packetKey{r.Flow, r.Seq}] = r.ASN
	}
	c.outOfWindow = st.OutOfWindow
	c.dupDeliveries = st.DupDeliveries
}
