package metrics

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"github.com/digs-net/digs/internal/sim"
)

func TestCollectorPDRAndLatency(t *testing.T) {
	c := NewCollector()
	c.Sent(1, 0, 100)
	c.Sent(1, 1, 600)
	c.Sent(2, 0, 100)
	c.Delivered(1, 0, 150) // 50 slots = 500 ms
	c.Delivered(2, 0, 300) // 200 slots = 2 s

	if got := c.PDR(); math.Abs(got-2.0/3.0) > 1e-9 {
		t.Fatalf("PDR = %v, want 2/3", got)
	}
	if got := c.FlowPDR(1); got != 0.5 {
		t.Fatalf("flow 1 PDR = %v, want 0.5", got)
	}
	if got := c.FlowPDR(2); got != 1.0 {
		t.Fatalf("flow 2 PDR = %v, want 1", got)
	}
	lats := c.Latencies()
	if len(lats) != 2 || lats[0] != 500*time.Millisecond || lats[1] != 2*time.Second {
		t.Fatalf("latencies = %v", lats)
	}
}

func TestCollectorIgnoresUnknownAndDuplicates(t *testing.T) {
	c := NewCollector()
	c.Sent(1, 0, 100)
	c.Delivered(9, 9, 200) // never sent
	if c.DeliveredCount() != 0 {
		t.Fatal("unknown delivery counted")
	}
	c.Delivered(1, 0, 200)
	c.Delivered(1, 0, 300) // duplicate, later
	if c.DeliveredCount() != 1 {
		t.Fatal("duplicate delivery counted")
	}
	if got := c.Latencies()[0]; got != time.Second {
		t.Fatalf("duplicate overwrote earliest arrival: %v", got)
	}
	// An earlier duplicate (redundant path) improves the latency.
	c.Delivered(1, 0, 150)
	if got := c.Latencies()[0]; got != 500*time.Millisecond {
		t.Fatalf("earlier arrival not kept: %v", got)
	}
}

func TestCollectorFlowPDRUnknownFlow(t *testing.T) {
	c := NewCollector()
	if got := c.FlowPDR(42); got != 0 {
		t.Fatalf("unknown flow PDR = %v, want 0", got)
	}
	if got := c.PDR(); got != 0 {
		t.Fatalf("empty collector PDR = %v, want 0", got)
	}
}

func TestDeliveredSeqs(t *testing.T) {
	c := NewCollector()
	for seq := uint16(0); seq < 5; seq++ {
		c.Sent(1, seq, 0)
	}
	c.Delivered(1, 1, 10)
	c.Delivered(1, 3, 10)
	seqs := c.DeliveredSeqs(1)
	if !seqs[1] || !seqs[3] || seqs[0] || seqs[2] || seqs[4] {
		t.Fatalf("DeliveredSeqs = %v", seqs)
	}
}

func TestPowerPerPacketMW(t *testing.T) {
	// 1 J over 100 s = 10 mW average; 20 packets -> 0.5 mW per packet.
	got := PowerPerPacketMW(1.0, 100*time.Second, 20)
	if math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("power per packet = %v, want 0.5", got)
	}
	if !math.IsInf(PowerPerPacketMW(1, time.Second, 0), 1) {
		t.Fatal("zero deliveries must give +Inf")
	}
}

func TestDutyCyclePerPacket(t *testing.T) {
	// 10 nodes, each on 1 s of a 100 s window -> 1% duty; 10 packets ->
	// 0.1% per packet.
	got := DutyCyclePerPacket(10*time.Second, 10, 100*time.Second, 10)
	if math.Abs(got-0.1) > 1e-9 {
		t.Fatalf("duty per packet = %v, want 0.1", got)
	}
}

func TestCDF(t *testing.T) {
	pts := CDF([]float64{3, 1, 2})
	if len(pts) != 3 {
		t.Fatalf("CDF has %d points", len(pts))
	}
	if pts[0].Value != 1 || pts[2].Value != 3 {
		t.Fatalf("CDF not sorted: %v", pts)
	}
	if pts[2].P != 1.0 || math.Abs(pts[0].P-1.0/3.0) > 1e-9 {
		t.Fatalf("CDF probabilities wrong: %v", pts)
	}
	if CDF(nil) != nil {
		t.Fatal("empty CDF should be nil")
	}
}

func TestQuantile(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5}
	tests := []struct{ p, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, tt := range tests {
		if got := Quantile(s, tt.p); math.Abs(got-tt.want) > 1e-9 {
			t.Fatalf("Quantile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile should be NaN")
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		if len(raw) == 0 {
			return true
		}
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				raw[i] = 0
			}
		}
		pa := math.Mod(math.Abs(a), 1)
		pb := math.Mod(math.Abs(b), 1)
		if pa > pb {
			pa, pb = pb, pa
		}
		return Quantile(raw, pa) <= Quantile(raw, pb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBoxplot(t *testing.T) {
	b := NewBoxplot([]float64{1, 2, 3, 4, 5})
	if b.Min != 1 || b.Median != 3 || b.Max != 5 {
		t.Fatalf("boxplot = %+v", b)
	}
	if b.Q1 != 2 || b.Q3 != 4 {
		t.Fatalf("boxplot quartiles = %+v", b)
	}
}

func TestMeanAndFractionAbove(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); math.Abs(got-2) > 1e-9 {
		t.Fatalf("mean = %v", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("empty mean should be NaN")
	}
	if got := FractionAbove([]float64{1, 2, 3, 4}, 2.5); got != 0.5 {
		t.Fatalf("FractionAbove = %v, want 0.5", got)
	}
}

func TestDurationsToMillis(t *testing.T) {
	got := DurationsToMillis([]time.Duration{time.Second, 500 * time.Millisecond})
	if got[0] != 1000 || got[1] != 500 {
		t.Fatalf("DurationsToMillis = %v", got)
	}
}

func TestStdErr(t *testing.T) {
	if !math.IsNaN(StdErr([]float64{1})) {
		t.Fatal("stderr of one sample should be NaN")
	}
	// Samples 2,4,4,4,5,5,7,9: sd = 2.138, n = 8 -> se ~ 0.756.
	got := StdErr([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-0.7559) > 1e-3 {
		t.Fatalf("stderr = %v, want ~0.756", got)
	}
}

func TestSparkCDF(t *testing.T) {
	if got := SparkCDF(nil, "%.1f"); got != "(no samples)" {
		t.Fatalf("empty spark = %q", got)
	}
	got := SparkCDF([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, "%.0f")
	if len(got) == 0 || got[:4] != "p10=" {
		t.Fatalf("spark = %q", got)
	}
}

// TestCollectorCountsReconciliation covers the counters that reconcile the
// collector with a packet-lifecycle trace: out-of-window deliveries and
// duplicate deliveries are counted, never folded into PDR, and duplicate
// arrivals keep earliest-arrival latency semantics.
func TestCollectorCountsReconciliation(t *testing.T) {
	c := NewCollector()
	c.Sent(1, 1, 100)
	c.Sent(1, 2, 200)

	c.Delivered(1, 1, 400) // first arrival
	c.Delivered(1, 1, 450) // duplicate over a redundant route
	c.Delivered(1, 1, 350) // duplicate that arrived earlier: replaces latency
	c.Delivered(9, 9, 500) // generated outside the window

	if got := c.DeliveredCount(); got != 1 {
		t.Fatalf("delivered count = %d, want 1", got)
	}
	if got := c.DuplicateCount(); got != 2 {
		t.Fatalf("duplicate count = %d, want 2", got)
	}
	if got := c.OutOfWindowCount(); got != 1 {
		t.Fatalf("out-of-window count = %d, want 1", got)
	}
	if pdr := c.PDR(); pdr != 0.5 {
		t.Fatalf("PDR = %v, want 0.5 (duplicates and strays must not count)", pdr)
	}
	lats := c.Latencies()
	if len(lats) != 1 || lats[0] != sim.TimeAt(250) {
		t.Fatalf("latencies = %v, want one packet at 250 slots (earliest arrival)", lats)
	}
}
