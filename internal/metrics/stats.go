package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// CDFPoint is one point of an empirical cumulative distribution function.
type CDFPoint struct {
	Value float64
	// P is the cumulative probability at Value.
	P float64
}

// CDF computes the empirical CDF of the samples (sorted by value).
func CDF(samples []float64) []CDFPoint {
	if len(samples) == 0 {
		return nil
	}
	sorted := make([]float64, len(samples))
	copy(sorted, samples)
	sort.Float64s(sorted)
	out := make([]CDFPoint, len(sorted))
	for i, v := range sorted {
		out[i] = CDFPoint{Value: v, P: float64(i+1) / float64(len(sorted))}
	}
	return out
}

// Quantile returns the p-quantile (0..1) of the samples using linear
// interpolation. It returns NaN for empty input.
func Quantile(samples []float64, p float64) float64 {
	if len(samples) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(samples))
	copy(sorted, samples)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Mean returns the arithmetic mean (NaN for empty input).
func Mean(samples []float64) float64 {
	if len(samples) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range samples {
		sum += v
	}
	return sum / float64(len(samples))
}

// Min and Max return the extremes (NaN for empty input).
func Min(samples []float64) float64 { return Quantile(samples, 0) }

// Max returns the largest sample.
func Max(samples []float64) float64 { return Quantile(samples, 1) }

// Boxplot summarises samples the way the paper's boxplot figures do.
type Boxplot struct {
	Min, Q1, Median, Q3, Max float64
}

// NewBoxplot computes the five-number summary.
func NewBoxplot(samples []float64) Boxplot {
	return Boxplot{
		Min:    Quantile(samples, 0),
		Q1:     Quantile(samples, 0.25),
		Median: Quantile(samples, 0.5),
		Q3:     Quantile(samples, 0.75),
		Max:    Quantile(samples, 1),
	}
}

// DurationsToMillis converts durations to float milliseconds for the
// statistics helpers.
func DurationsToMillis(ds []time.Duration) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		out[i] = float64(d) / float64(time.Millisecond)
	}
	return out
}

// FractionAbove returns the share of samples strictly greater than x.
func FractionAbove(samples []float64, x float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	n := 0
	for _, v := range samples {
		if v > x {
			n++
		}
	}
	return float64(n) / float64(len(samples))
}

// StdErr returns the standard error of the mean (NaN for fewer than two
// samples).
func StdErr(samples []float64) float64 {
	n := len(samples)
	if n < 2 {
		return math.NaN()
	}
	m := Mean(samples)
	ss := 0.0
	for _, v := range samples {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss/float64(n-1)) / math.Sqrt(float64(n))
}

// SparkCDF renders an ASCII cumulative-distribution strip: each column is
// a decile of the probability axis, showing the sample value there.
func SparkCDF(samples []float64, format string) string {
	if len(samples) == 0 {
		return "(no samples)"
	}
	var b strings.Builder
	for p := 1; p <= 10; p++ {
		if p > 1 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "p%d0=", p)
		fmt.Fprintf(&b, format, Quantile(samples, float64(p)/10))
	}
	return b.String()
}
