// Package metrics implements the paper's evaluation metrics and the
// statistics its figures report: end-to-end packet delivery rate, latency,
// radio power per received packet, duty cycle, repair and joining times,
// and CDF / boxplot / percentile summaries.
package metrics

import (
	"math"
	"sort"
	"time"

	"github.com/digs-net/digs/internal/phy"
	"github.com/digs-net/digs/internal/sim"
)

// packetKey identifies one application packet end to end.
type packetKey struct {
	flow uint16
	seq  uint16
}

// Collector gathers per-packet outcomes for one measurement window.
type Collector struct {
	sent      map[packetKey]sim.ASN
	delivered map[packetKey]sim.ASN

	// outOfWindow counts deliveries of packets generated outside the
	// measurement window, dupDeliveries counts repeat arrivals of
	// already-delivered packets (redundant routes). Neither affects PDR;
	// they are exported so trace totals reconcile with collector totals.
	outOfWindow   int64
	dupDeliveries int64
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{
		sent:      make(map[packetKey]sim.ASN),
		delivered: make(map[packetKey]sim.ASN),
	}
}

// Sent records a generated packet.
func (c *Collector) Sent(flow, seq uint16, asn sim.ASN) {
	c.sent[packetKey{flow, seq}] = asn
}

// Delivered records a packet arriving at an access point. Duplicate
// deliveries (over redundant routes) count once, at the earliest arrival.
func (c *Collector) Delivered(flow, seq uint16, asn sim.ASN) {
	k := packetKey{flow, seq}
	if _, known := c.sent[k]; !known {
		c.outOfWindow++
		return // out-of-window packet
	}
	if prev, ok := c.delivered[k]; ok {
		c.dupDeliveries++
		if prev <= asn {
			return
		}
	}
	c.delivered[k] = asn
}

// OutOfWindowCount returns how many deliveries concerned packets generated
// outside the measurement window (before Sent was recorded).
func (c *Collector) OutOfWindowCount() int64 { return c.outOfWindow }

// DuplicateCount returns how many deliveries repeated an already-delivered
// packet (duplicates over redundant routes; counted once per extra arrival).
func (c *Collector) DuplicateCount() int64 { return c.dupDeliveries }

// SentCount returns the number of packets generated in the window.
func (c *Collector) SentCount() int { return len(c.sent) }

// DeliveredCount returns the number of distinct packets delivered.
func (c *Collector) DeliveredCount() int { return len(c.delivered) }

// PDR returns the end-to-end packet delivery rate of the window.
func (c *Collector) PDR() float64 {
	if len(c.sent) == 0 {
		return 0
	}
	return float64(len(c.delivered)) / float64(len(c.sent))
}

// FlowPDR returns the delivery rate of a single flow.
func (c *Collector) FlowPDR(flow uint16) float64 {
	sent, got := 0, 0
	for k := range c.sent {
		if k.flow != flow {
			continue
		}
		sent++
		if _, ok := c.delivered[k]; ok {
			got++
		}
	}
	if sent == 0 {
		return 0
	}
	return float64(got) / float64(sent)
}

// DeliveredSeqs returns which sequence numbers of a flow arrived (for the
// micro-benchmark figures).
func (c *Collector) DeliveredSeqs(flow uint16) map[uint16]bool {
	out := make(map[uint16]bool)
	for k := range c.delivered {
		if k.flow == flow {
			out[k.seq] = true
		}
	}
	return out
}

// Latencies returns the end-to-end latency of every delivered packet.
func (c *Collector) Latencies() []time.Duration {
	out := make([]time.Duration, 0, len(c.delivered))
	for k, at := range c.delivered {
		out = append(out, sim.TimeAt(at-c.sent[k]))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PowerPerPacketMW converts a window's total radio energy and delivered
// count into the paper's power-per-received-packet metric: the network's
// average radio power divided by the number of packets it delivered.
func PowerPerPacketMW(totalEnergyJoules float64, window time.Duration, deliveredPackets int) float64 {
	if window <= 0 || deliveredPackets == 0 {
		return math.Inf(1)
	}
	avgPowerMW := totalEnergyJoules / window.Seconds() * 1000
	return avgPowerMW / float64(deliveredPackets)
}

// DutyCyclePerPacket is the Figure 12(c) metric: the network's average
// radio duty cycle (percent) divided by the packets delivered.
func DutyCyclePerPacket(totalRadioOn time.Duration, nodeCount int, window time.Duration, deliveredPackets int) float64 {
	if window <= 0 || nodeCount == 0 || deliveredPackets == 0 {
		return math.Inf(1)
	}
	duty := float64(totalRadioOn) / float64(window) / float64(nodeCount) * 100
	return duty / float64(deliveredPackets)
}

// EnergyOf sums the radio energy of one slot activity sequence; re-exported
// here so experiment code does not need the phy package directly.
func EnergyOf(a phy.SlotActivity) float64 { return phy.EnergyJoules(a) }
