package scenario

import (
	"fmt"
	"sort"
	"strings"

	"github.com/digs-net/digs/internal/mac"
	"github.com/digs-net/digs/internal/sim"
)

// StackBuilder attaches one protocol stack to every node of the freshly
// built network and fills the Scenario's uniform surface (MACNode, Joined,
// SetTracer, OnDeliver, Prober, Healer, take/restore, ConfigHash). The
// builder receives the resolved Params (Topology non-nil, Period filled)
// and the MAC configuration the scenario computed from them.
type StackBuilder func(sc *Scenario, p Params, nw *sim.Network, macCfg mac.Config) error

var stackRegistry = map[string]StackBuilder{}

// RegisterStack adds a protocol stack under its -protocol name. Every CLI
// and the scenario spec validate against this one registry, so adding a
// controller implementation is a single registration. Registration happens
// from init functions; duplicate or empty names are programming errors.
func RegisterStack(name string, b StackBuilder) {
	if name == "" || b == nil {
		panic("scenario: RegisterStack with empty name or nil builder")
	}
	if _, dup := stackRegistry[name]; dup {
		panic(fmt.Sprintf("scenario: stack %q registered twice", name))
	}
	stackRegistry[name] = b
}

// StackRegistered reports whether a protocol name has a registered stack.
func StackRegistered(name string) bool {
	_, ok := stackRegistry[name]
	return ok
}

// RegisteredStacks lists the registered protocol names, sorted.
func RegisteredStacks() []string {
	names := make([]string, 0, len(stackRegistry))
	for name := range stackRegistry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// StackNames is the comma-joined registry contents, for flag help text and
// rejection messages.
func StackNames() string {
	return strings.Join(RegisteredStacks(), ", ")
}
