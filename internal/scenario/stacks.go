package scenario

import (
	"math/rand"

	"github.com/digs-net/digs/internal/controller"
	"github.com/digs-net/digs/internal/core"
	"github.com/digs-net/digs/internal/flows"
	"github.com/digs-net/digs/internal/mac"
	"github.com/digs-net/digs/internal/orchestra"
	"github.com/digs-net/digs/internal/sim"
	"github.com/digs-net/digs/internal/snapshot"
	"github.com/digs-net/digs/internal/whart"
)

// The five protocol stacks register here; Build dispatches through the
// registry, so the CLIs, the spec validator and the snapshot layer all
// agree on the same protocol name set without per-binary switches.
func init() {
	RegisterStack(snapshot.ProtocolDiGS, buildDiGS)
	RegisterStack(snapshot.ProtocolOrchestra, buildOrchestra)
	RegisterStack(snapshot.ProtocolWHART, buildWHART)
	RegisterStack(snapshot.ProtocolSDN, buildSDN)
	RegisterStack(snapshot.ProtocolAdaptive, buildAdaptive)
}

func buildDiGS(sc *Scenario, p Params, nw *sim.Network, macCfg mac.Config) error {
	// ScaledConfig == DefaultConfig within the paper envelope; only
	// generated massive-scale deployments get re-dimensioned frames.
	cfg := core.ScaledConfig(p.Topology.NumAPs, p.Topology.N())
	if p.DiGSConfig != nil {
		cfg = *p.DiGSConfig
	}
	net, err := core.Build(nw, cfg, macCfg, p.Seed)
	if err != nil {
		return err
	}
	sc.ConfigHash = snapshot.HashConfig(cfg, macCfg)
	sc.MACNode = func(i int) *mac.Node { return net.Nodes[i] }
	sc.Joined = net.JoinedCount
	sc.SetTracer = net.SetTracer
	sc.OnDeliver = net.OnDeliver
	sc.Prober = net.Prober(nw)
	sc.Healer = net.Healer()
	sc.Schedule = func(id int, asn sim.ASN) mac.Assignment { return net.Stacks[id].Assignment(asn) }
	sc.take = func(meta snapshot.Meta) (*snapshot.Snapshot, error) {
		return snapshot.TakeDiGS(meta, nw, net)
	}
	sc.restore = func(s *snapshot.Snapshot) error { return s.RestoreDiGS(nw, net) }
	return nil
}

func buildOrchestra(sc *Scenario, p Params, nw *sim.Network, macCfg mac.Config) error {
	cfg := orchestra.DefaultConfig()
	net, err := orchestra.Build(nw, cfg, macCfg, p.Seed)
	if err != nil {
		return err
	}
	sc.ConfigHash = snapshot.HashConfig(cfg, macCfg)
	sc.MACNode = func(i int) *mac.Node { return net.Nodes[i] }
	sc.Joined = net.JoinedCount
	sc.SetTracer = net.SetTracer
	sc.OnDeliver = net.OnDeliver
	sc.Prober = net.Prober(nw)
	sc.Healer = net.Healer()
	sc.Schedule = func(id int, asn sim.ASN) mac.Assignment { return net.Stacks[id].Assignment(asn) }
	sc.take = func(meta snapshot.Meta) (*snapshot.Snapshot, error) {
		return snapshot.TakeOrchestra(meta, nw, net)
	}
	sc.restore = func(s *snapshot.Snapshot) error { return s.RestoreOrchestra(nw, net) }
	return nil
}

func buildWHART(sc *Scenario, p Params, nw *sim.Network, macCfg mac.Config) error {
	topo := p.Topology
	// The Network Manager computes the TDMA schedule for its flow set up
	// front; a random-flows request therefore changes the build (and its
	// ConfigHash), unlike for the autonomous stacks.
	srcs := topo.SuggestedSources
	if p.Flows > 0 {
		rf, err := flows.RandomSet(topo, p.Flows, p.Period, rand.New(rand.NewSource(p.Seed)))
		if err != nil {
			return err
		}
		srcs = nil
		for _, f := range rf {
			srcs = append(srcs, f.Source)
		}
	}
	var fl []whart.Flow
	for i, src := range srcs {
		fl = append(fl, whart.Flow{
			ID: uint16(i + 1), Source: src, PeriodSlots: sim.SlotsFor(p.Period),
		})
	}
	net, err := whart.Build(nw, fl, macCfg)
	if err != nil {
		return err
	}
	sc.ConfigHash = snapshot.HashConfig(macCfg, fl)
	sc.MACNode = func(i int) *mac.Node { return net.Nodes[i] }
	sc.Joined = func() int {
		n := 0
		for i := 1; i <= topo.N(); i++ {
			if ok, _ := net.Nodes[i].Synced(); ok {
				n++
			}
		}
		return n
	}
	sc.SetTracer = net.SetTracer
	sc.OnDeliver = net.OnDeliver
	sc.Prober = net.Prober(nw)
	sc.Healer = net.Healer()
	// Schedule stays nil: the whart build does not retain its static
	// per-node stacks (the schedule is the superframe, inspectable there).
	sc.take = func(meta snapshot.Meta) (*snapshot.Snapshot, error) {
		return snapshot.TakeWHART(meta, nw, net)
	}
	sc.restore = func(s *snapshot.Snapshot) error { return s.RestoreWHART(nw, net) }
	return nil
}

func buildSDN(sc *Scenario, p Params, nw *sim.Network, macCfg mac.Config) error {
	cfg := controller.DefaultSDNConfig()
	net, err := controller.BuildSDN(nw, cfg, macCfg)
	if err != nil {
		return err
	}
	sc.ConfigHash = snapshot.HashConfig(cfg, macCfg)
	sc.MACNode = func(i int) *mac.Node { return net.Nodes[i] }
	sc.Joined = net.JoinedCount
	sc.SetTracer = net.SetTracer
	sc.OnDeliver = net.OnDeliver
	sc.Prober = net.Prober(nw)
	sc.Healer = net.Healer()
	sc.Schedule = func(id int, asn sim.ASN) mac.Assignment { return net.Stacks[id].Assignment(asn) }
	sc.take = func(meta snapshot.Meta) (*snapshot.Snapshot, error) {
		return snapshot.TakeSDN(meta, nw, net)
	}
	sc.restore = func(s *snapshot.Snapshot) error { return s.RestoreSDN(nw, net) }
	return nil
}

func buildAdaptive(sc *Scenario, p Params, nw *sim.Network, macCfg mac.Config) error {
	cfg := controller.DefaultAdaptiveConfig()
	net, err := controller.BuildAdaptive(nw, cfg, macCfg, p.Seed)
	if err != nil {
		return err
	}
	sc.ConfigHash = snapshot.HashConfig(cfg, macCfg)
	sc.MACNode = func(i int) *mac.Node { return net.Nodes[i] }
	sc.Joined = net.JoinedCount
	sc.SetTracer = net.SetTracer
	sc.OnDeliver = net.OnDeliver
	sc.Prober = net.Prober(nw)
	sc.Healer = net.Healer()
	sc.Schedule = func(id int, asn sim.ASN) mac.Assignment { return net.Stacks[id].Assignment(asn) }
	sc.take = func(meta snapshot.Meta) (*snapshot.Snapshot, error) {
		return snapshot.TakeAdaptive(meta, nw, net)
	}
	sc.restore = func(s *snapshot.Snapshot) error { return s.RestoreAdaptive(nw, net) }
	return nil
}
