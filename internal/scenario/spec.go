package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"github.com/digs-net/digs/internal/chaos"
	"github.com/digs-net/digs/internal/topology"
)

// Duration is chaos.Duration re-exported for scenario specs: it marshals
// to JSON as a human-readable string ("2m30s") and accepts plain numbers
// as seconds on input.
type Duration = chaos.Duration

// Spec is a complete, JSON-serializable scenario submission: everything
// needed to run one simulation to completion — deployment, protocol,
// traffic, interference, fault plan, monitoring — with nothing left to
// per-CLI wiring. It is the unit of work digs-server accepts and the
// input digs-sim's -spec mode runs, and both execute it through the same
// RunSpec, which is what makes server results bit-identical to CLI runs.
//
// Identity is canonical: two specs that differ only in JSON field order,
// omitted-vs-explicit defaults, or throughput knobs (Shards) are the same
// scenario and produce the same Hash — the content address under which
// results are cached.
type Spec struct {
	// Topology is a PickTopology name (testbeds or gen-* specs).
	// Empty defaults to "testbed-a".
	Topology string `json:"topology,omitempty"`
	// Protocol is a registered stack name (RegisteredStacks: digs,
	// orchestra, whart, sdn, adaptive). Empty defaults to "digs".
	Protocol string `json:"protocol,omitempty"`
	Seed     int64  `json:"seed,omitempty"`
	// Period is the per-flow packet period (default 5s).
	Period Duration `json:"period,omitempty"`
	// Window is the measurement window (default 2m). A fault plan whose
	// horizon outruns it extends the effective window deterministically.
	Window Duration `json:"window,omitempty"`
	// Flows selects random flow sources (0 = the deployment's suggested
	// sources).
	Flows int `json:"flows,omitempty"`
	// Jammers enables that many WiFi jammers at the deployment's
	// suggested positions.
	Jammers int `json:"jammers,omitempty"`
	// MacBoost multiplies the MAC attempt budget (0 and 1 are the
	// default budget).
	MacBoost int `json:"mac_boost,omitempty"`
	// JoinFraction is the formation target as a fraction of nodes
	// (0 = default: 1.0 for the named testbeds, 0.9 for generated
	// deployments, whose stragglers can legitimately never join).
	JoinFraction float64 `json:"join_fraction,omitempty"`
	// Invariants runs the runtime invariant monitor with self-healing
	// watchdogs during the measurement window.
	Invariants bool `json:"invariants,omitempty"`
	// PlanName selects a built-in chaos plan ("fig8"). Mutually
	// exclusive with Plan.
	PlanName string `json:"plan_name,omitempty"`
	// Plan is an inline chaos fault plan.
	Plan *chaos.Plan `json:"plan,omitempty"`
	// Shards selects the scale engine's shard count. It is a throughput
	// knob — results are bit-identical at any value — so it is excluded
	// from the spec's identity hash.
	Shards int `json:"shards,omitempty"`
}

// Spec defaults.
const (
	DefaultTopology = "testbed-a"
	DefaultProtocol = "digs"
	DefaultPeriod   = 5 * time.Second
	DefaultWindow   = 2 * time.Minute
	// DefaultGenJoinFraction is the formation target for generated
	// massive-scale deployments, where a tail of poorly placed devices
	// can legitimately never join (the paper's testbeds always form
	// fully).
	DefaultGenJoinFraction = 0.9
)

// IsGenerated reports whether the spec names a procedural gen-* topology.
func (s Spec) IsGenerated() bool { return strings.HasPrefix(s.Topology, "gen-") }

// GenNodes returns the requested node count for a gen-* topology spec and
// 0 for named deployments (or malformed specs, which Validate rejects).
func (s Spec) GenNodes() int {
	if p, ok, err := topology.ParseGenSpec(s.Topology); ok && err == nil {
		return p.Nodes
	}
	return 0
}

// Canonical returns the spec with every default filled in and every
// non-semantic knob normalised, so that all JSON spellings of the same
// scenario collapse to one value. Hash operates on the canonical form;
// Build(p) of a spec and of its canonical form construct the same
// simulation.
func (s Spec) Canonical() Spec {
	c := s
	if c.Topology == "" {
		c.Topology = DefaultTopology
	}
	if c.Protocol == "" {
		c.Protocol = DefaultProtocol
	}
	if c.Period <= 0 {
		c.Period = Duration(DefaultPeriod)
	}
	if c.Window <= 0 {
		c.Window = Duration(DefaultWindow)
	}
	if c.Flows < 0 {
		c.Flows = 0
	}
	if c.Jammers < 0 {
		c.Jammers = 0
	}
	// 0 and 1 are both "no boost" in the build path.
	if c.MacBoost <= 1 {
		c.MacBoost = 1
	}
	if c.JoinFraction <= 0 {
		if c.IsGenerated() {
			c.JoinFraction = DefaultGenJoinFraction
		} else {
			c.JoinFraction = 1.0
		}
	}
	if c.JoinFraction > 1 {
		c.JoinFraction = 1.0
	}
	// Shards is a throughput knob: any value runs the same scenario
	// bit-identically, so it cannot be part of the identity.
	c.Shards = 0
	// An empty plan is no plan.
	if c.Plan != nil && len(c.Plan.Entries) == 0 {
		c.Plan = nil
	}
	return c
}

// Validate checks the spec (in canonical form) for structural errors a
// server should reject at admission rather than at run time.
func (s Spec) Validate() error {
	c := s.Canonical()
	if !StackRegistered(c.Protocol) {
		return fmt.Errorf("spec: unknown protocol %q (registered: %s)", c.Protocol, StackNames())
	}
	if err := ValidTopologyName(c.Topology); err != nil {
		return fmt.Errorf("spec: %w", err)
	}
	if c.Jammers > 8 {
		return fmt.Errorf("spec: %d jammers (max 8)", c.Jammers)
	}
	if c.MacBoost > 16 {
		return fmt.Errorf("spec: mac_boost %d (max 16)", c.MacBoost)
	}
	if s.Shards < 0 || s.Shards > 64 {
		return fmt.Errorf("spec: shards %d (want 0..64)", s.Shards)
	}
	if time.Duration(c.Window) > 4*time.Hour {
		return fmt.Errorf("spec: window %v (max 4h)", time.Duration(c.Window))
	}
	if time.Duration(c.Period) > time.Duration(c.Window) {
		return fmt.Errorf("spec: period %v exceeds window %v",
			time.Duration(c.Period), time.Duration(c.Window))
	}
	if c.Plan != nil && c.PlanName != "" {
		return fmt.Errorf("spec: plan and plan_name are mutually exclusive")
	}
	if c.PlanName != "" && c.PlanName != "fig8" {
		return fmt.Errorf("spec: unknown plan_name %q (want \"fig8\")", c.PlanName)
	}
	return nil
}

// ValidTopologyName checks a -topology value without paying to build it
// (generating a 100k-node deployment just to validate a submission would
// be its own denial of service).
func ValidTopologyName(name string) error {
	switch name {
	case "testbed-a", "testbed-b", "half-testbed-a", "half-testbed-b", "random-150":
		return nil
	}
	if _, ok, err := topology.ParseGenSpec(name); ok {
		return err
	}
	return fmt.Errorf("unknown topology %q", name)
}

// Hash returns the spec's content address: a hex SHA-256 over the
// canonical form's deterministic JSON encoding. Field order of the
// original submission, omitted defaults and throughput knobs do not
// change it.
func (s Spec) Hash() (string, error) {
	b, err := json.Marshal(s.Canonical())
	if err != nil {
		return "", fmt.Errorf("spec: encoding for hash: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// Params maps the spec onto the scenario build parameters. Shards carries
// the submitted (non-canonical) value: it steers execution, not identity.
func (s Spec) Params() Params {
	c := s.Canonical()
	mb := c.MacBoost
	if mb <= 1 {
		mb = 0
	}
	return Params{
		TopologyName: c.Topology,
		Protocol:     c.Protocol,
		Seed:         c.Seed,
		Period:       time.Duration(c.Period),
		MacBoost:     mb,
		Shards:       s.Shards,
	}
}
