// Package scenario builds ready-to-run protocol scenarios — one of the
// registered stacks attached to a simulated network on a named topology —
// and pairs each with its checkpoint surface. It is the layer the CLIs and the
// warm-start machinery share: digs-snap takes and resumes snapshots of
// scenarios, digs-chaos branches fault plans off a cached converged one,
// and both must agree exactly on how a (topology, protocol, seed)
// combination is constructed, or a restored snapshot would overlay the
// wrong simulation.
package scenario

import (
	"fmt"
	"strconv"
	"time"

	"github.com/digs-net/digs/internal/core"
	"github.com/digs-net/digs/internal/invariant"
	"github.com/digs-net/digs/internal/mac"
	"github.com/digs-net/digs/internal/sim"
	"github.com/digs-net/digs/internal/snapshot"
	"github.com/digs-net/digs/internal/telemetry"
	"github.com/digs-net/digs/internal/topology"
)

// PickTopology resolves the deployment names the CLIs accept.
func PickTopology(name string) (*topology.Topology, error) {
	switch name {
	case "testbed-a":
		return topology.TestbedA(), nil
	case "testbed-b":
		return topology.TestbedB(), nil
	case "half-testbed-a":
		return topology.HalfTestbedA(), nil
	case "half-testbed-b":
		return topology.HalfTestbedB(), nil
	case "random-150":
		return topology.NewRandom(150, 300, 300, 7), nil
	default:
		if p, ok, err := topology.ParseGenSpec(name); ok {
			if err != nil {
				return nil, err
			}
			return topology.Generate(p)
		}
		return nil, fmt.Errorf("unknown topology %q", name)
	}
}

// TopologyNames lists the accepted -topology values.
const TopologyNames = "testbed-a, testbed-b, half-testbed-a, half-testbed-b, random-150, " +
	"gen-{plant,campus,field}-<nodes>[-<seed>]"

// Params selects and parameterises a scenario. The same Params always
// build the same simulation, which is what makes snapshots restorable:
// Meta records them, and Restore rejects a mismatch.
type Params struct {
	Topology *topology.Topology
	// TopologyName is the PickTopology name (stored in snapshot metadata
	// so a resuming process can rebuild the deployment).
	TopologyName string
	// Protocol is a registered stack name (see RegisteredStacks).
	Protocol string
	Seed     int64
	// Period is the per-flow packet period; the WirelessHART central
	// schedule is dimensioned by it (the other stacks ignore it).
	Period time.Duration
	// MacBoost multiplies the MAC attempt budget (0 or 1 = default). The
	// experiment runners give DiGS 3x: it schedules three attempts per
	// slotframe where Orchestra has one.
	MacBoost int
	// DiGSConfig overrides the DiGS stack configuration (ablations).
	DiGSConfig *core.Config
	// Shards selects the scale engine's shard count (0 = 1 shard when the
	// topology is sparse-only, dense engine otherwise). Any positive value
	// forces the scale engine; results are bit-identical for every shard
	// count, so Shards is a throughput knob, not a simulation parameter —
	// snapshots taken at one count restore at any other.
	Shards int
	// Flows requests that many random flow sources instead of the
	// deployment's suggested ones. Only the WirelessHART build consumes it
	// (the Network Manager needs the flow set up front to dimension its
	// central schedule); the autonomous stacks take traffic as it comes,
	// so their flow sets stay a property of the run, not the build.
	Flows int
}

// Scenario is a built, runnable protocol scenario with a uniform surface
// over the registered stacks.
type Scenario struct {
	Params Params
	NW     *sim.Network
	// ConfigHash fingerprints everything that shaped the build beyond
	// (topology, protocol, seed); snapshot metadata carries it.
	ConfigHash uint64

	MACNode   func(i int) *mac.Node
	Joined    func() int
	SetTracer func(telemetry.Tracer)
	OnDeliver func(fn func(asn sim.ASN, f *sim.Frame))
	Prober    invariant.Prober
	Healer    func(id topology.NodeID, asn sim.ASN)
	// Schedule reads one node's slot assignment (digs-sim's
	// -dump-schedule). Calling it advances protocol timers exactly like
	// the simulation would, so it is a run-ending inspection, not a peek.
	Schedule func(id int, asn sim.ASN) mac.Assignment

	take    func(meta snapshot.Meta) (*snapshot.Snapshot, error)
	restore func(s *snapshot.Snapshot) error
}

// Build constructs the scenario: a fresh network with the selected stack
// attached to every node, not yet stepped.
func Build(p Params) (*Scenario, error) {
	if p.Topology == nil {
		topo, err := PickTopology(p.TopologyName)
		if err != nil {
			return nil, err
		}
		p.Topology = topo
	}
	if p.TopologyName == "" {
		p.TopologyName = p.Topology.Name
	}
	if p.Period == 0 {
		p.Period = 5 * time.Second
	}
	topo := p.Topology
	var nw *sim.Network
	if p.Shards > 0 || topo.SparseOnly() {
		shards := p.Shards
		if shards < 1 {
			shards = 1
		}
		nw = sim.NewScaleNetwork(topo, p.Seed, shards)
	} else {
		nw = sim.NewNetwork(topo, p.Seed)
	}
	macCfg := mac.DefaultConfig()
	if p.MacBoost > 1 {
		macCfg.MaxTxPerPacket *= p.MacBoost
	}
	sc := &Scenario{Params: p, NW: nw}

	build, ok := stackRegistry[p.Protocol]
	if !ok {
		return nil, fmt.Errorf("unknown protocol %q (registered: %s)", p.Protocol, StackNames())
	}
	if err := build(sc, p, nw, macCfg); err != nil {
		return nil, err
	}
	if nw.ScaleMode() {
		// Device layers record telemetry from inside the shard-parallel
		// phases; interpose the per-shard splitter so any downstream sink
		// sees one deterministic stream regardless of shard count.
		inner := sc.SetTracer
		sc.SetTracer = func(t telemetry.Tracer) {
			if t == nil {
				nw.SetParallelNotify(nil)
				inner(nil)
				return
			}
			sp := telemetry.NewSplitter(t, nw.ShardCount(), nw.ShardOf)
			nw.SetParallelNotify(sp.SetParallel)
			inner(sp)
		}
	}
	return sc, nil
}

// BuildFromMeta rebuilds the scenario a snapshot was taken from, using the
// parameters its metadata records.
func BuildFromMeta(m snapshot.Meta) (*Scenario, error) {
	p := Params{
		TopologyName: m.Topology,
		Protocol:     m.Protocol,
		Seed:         m.Seed,
	}
	if v := m.Extra["period"]; v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			return nil, fmt.Errorf("snapshot meta period %q: %w", v, err)
		}
		p.Period = d
	}
	if v := m.Extra["mac_boost"]; v != "" {
		b, err := strconv.Atoi(v)
		if err != nil {
			return nil, fmt.Errorf("snapshot meta mac_boost %q: %w", v, err)
		}
		p.MacBoost = b
	}
	if v := m.Extra["flows"]; v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return nil, fmt.Errorf("snapshot meta flows %q: %w", v, err)
		}
		p.Flows = n
	}
	if v := m.Extra["scale"]; v != "" {
		// The snapshot came from a scale-engine run; rebuild in scale mode
		// (the exact shard count is a throughput knob, not identity — the
		// restoring process picks its own).
		p.Shards = 1
	}
	sc, err := Build(p)
	if err != nil {
		return nil, err
	}
	if sc.ConfigHash != m.ConfigHash {
		return nil, fmt.Errorf("snapshot configuration hash %016x, this build produces %016x (config drift?)",
			m.ConfigHash, sc.ConfigHash)
	}
	return sc, nil
}

// Take captures the scenario at the current slot under the given label.
// Extra entries land in the metadata next to the params needed to rebuild.
func (sc *Scenario) Take(label string, extra map[string]string) (*snapshot.Snapshot, error) {
	meta := snapshot.Meta{
		Topology:   sc.Params.TopologyName,
		Seed:       sc.Params.Seed,
		ConfigHash: sc.ConfigHash,
		Label:      label,
		Extra:      map[string]string{"period": sc.Params.Period.String()},
	}
	if sc.Params.MacBoost > 1 {
		meta.Extra["mac_boost"] = strconv.Itoa(sc.Params.MacBoost)
	}
	if sc.Params.Flows > 0 {
		meta.Extra["flows"] = strconv.Itoa(sc.Params.Flows)
	}
	if sc.NW.ScaleMode() && !sc.Params.Topology.SparseOnly() {
		// Sparse-only topologies rebuild in scale mode from the name alone;
		// explicitly-forced scale runs on small topologies need the marker.
		meta.Extra["scale"] = "1"
	}
	for k, v := range extra {
		meta.Extra[k] = v
	}
	return sc.take(meta)
}

// Restore overlays the snapshot onto this freshly built, never-stepped
// scenario.
func (sc *Scenario) Restore(s *snapshot.Snapshot) error {
	if s.Meta.ConfigHash != sc.ConfigHash {
		return fmt.Errorf("snapshot configuration hash %016x, scenario built %016x",
			s.Meta.ConfigHash, sc.ConfigHash)
	}
	return sc.restore(s)
}

// CacheKey is the warm-start cache identity of this scenario at a phase
// label.
func (sc *Scenario) CacheKey(label string) snapshot.Key {
	return snapshot.Key{
		Topology:   sc.Params.TopologyName,
		Protocol:   sc.Params.Protocol,
		Seed:       sc.Params.Seed,
		ConfigHash: sc.ConfigHash,
		Label:      label,
	}
}

// WarmStart brings the scenario to the phase named by label: from the
// cache when a snapshot is there (restoring it), otherwise by running
// form — which must leave the scenario at that phase and return any extra
// metadata to record — and storing the result for the next caller. It
// returns the snapshot metadata and whether the cache supplied it.
func (sc *Scenario) WarmStart(cache *snapshot.Cache, label string,
	form func() (map[string]string, error)) (snapshot.Meta, bool, error) {
	if cache != nil {
		snap, err := cache.Load(sc.CacheKey(label))
		if err != nil {
			return snapshot.Meta{}, false, err
		}
		if snap != nil {
			if err := sc.Restore(snap); err != nil {
				return snapshot.Meta{}, false, err
			}
			return snap.Meta, true, nil
		}
	}
	extra, err := form()
	if err != nil {
		return snapshot.Meta{}, false, err
	}
	snap, err := sc.Take(label, extra)
	if err != nil {
		return snapshot.Meta{}, false, err
	}
	if cache != nil {
		if err := cache.Store(sc.CacheKey(label), snap); err != nil {
			return snapshot.Meta{}, false, err
		}
	}
	return snap.Meta, false, nil
}
