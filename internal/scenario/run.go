package scenario

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"time"

	"github.com/digs-net/digs/internal/chaos"
	"github.com/digs-net/digs/internal/flows"
	"github.com/digs-net/digs/internal/interference"
	"github.com/digs-net/digs/internal/invariant"
	"github.com/digs-net/digs/internal/metrics"
	"github.com/digs-net/digs/internal/sim"
	"github.com/digs-net/digs/internal/snapshot"
	"github.com/digs-net/digs/internal/telemetry"
	"github.com/digs-net/digs/internal/topology"
)

// Result is the canonical outcome of one executed Spec. Its JSON encoding
// (Encode) is deterministic — fixed field order, shortest float
// formatting — so two bit-identical runs produce byte-identical results,
// which is what lets the server content-address results and lets tests
// assert server-vs-CLI and warm-vs-cold identity by comparing bytes.
//
// Execution-side facts that do not describe the simulation — whether the
// formation came from the warm pool, wall-clock time — deliberately live
// in RunInfo instead: a warm-started run must encode identically to a
// cold one.
type Result struct {
	SpecHash         string  `json:"spec_hash"`
	Topology         string  `json:"topology"`
	Protocol         string  `json:"protocol"`
	Seed             int64   `json:"seed"`
	Nodes            int     `json:"nodes"`
	JoinedAtForm     int     `json:"joined_at_form"`
	FormationSlots   int64   `json:"formation_slots"`
	WindowSlots      int64   `json:"window_slots"`
	FinalSlot        int64   `json:"final_slot"`
	Flows            int     `json:"flows"`
	Sent             int     `json:"sent"`
	Delivered        int     `json:"delivered"`
	PDR              float64 `json:"pdr"`
	LatencyMedianMs  float64 `json:"latency_median_ms"`
	LatencyP90Ms     float64 `json:"latency_p90_ms"`
	LatencyP99Ms     float64 `json:"latency_p99_ms"`
	LatencyMaxMs     float64 `json:"latency_max_ms"`
	PowerPerPacketMW float64 `json:"power_per_packet_mw"`
	Violations       int     `json:"violations"`
	Repairs          int     `json:"repairs"`
}

// Encode returns the canonical JSON encoding of the result.
func (r *Result) Encode() ([]byte, error) { return json.Marshal(r) }

// HashResult returns the hex SHA-256 of the canonical result encoding —
// the value the end-to-end determinism checks compare.
func (r *Result) HashResult() (string, error) {
	b, err := r.Encode()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// RunInfo reports execution-side facts about one RunSpec call, kept out
// of the canonical Result on purpose.
type RunInfo struct {
	// WarmHit reports that the formation phase was restored from the
	// warm-start cache instead of simulated.
	WarmHit bool
	// Wall is the call's wall-clock duration.
	Wall time.Duration
}

// RunOpts parameterises RunSpec.
type RunOpts struct {
	// Tracer observes the measurement window's telemetry (nil = off).
	// It is attached after formation/warm-start so cold and warm runs
	// emit byte-identical streams.
	Tracer telemetry.Tracer
	// Warm, when set, warm-starts the formation phase from this cache
	// (storing it on a miss). Results are bit-identical either way.
	Warm *snapshot.Cache
}

// formationLabel names the warm-pool phase for a formation target.
func formationLabel(frac float64) string {
	if frac >= 1 {
		return "formed+30s"
	}
	return fmt.Sprintf("formed%d+30s", int(math.Round(frac*100)))
}

// runChunks advances the network in chunks, checking for cancellation
// between them. The simulator has no preemption points, so cancellation
// latency is one chunk (50 simulated seconds), not one slot.
func runChunks(ctx context.Context, nw *sim.Network, slots int64) error {
	const chunk = 5000
	for slots > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		n := int64(chunk)
		if slots < n {
			n = slots
		}
		nw.Run(n)
		slots -= n
	}
	return ctx.Err()
}

// RunSpec executes the spec to completion and returns its canonical
// result: build (or warm-start) the scenario, form the network, attach
// observers, apply interference and fault plans, drive the flows through
// the measurement window and fold the collector into a Result. Both
// digs-server and digs-sim -spec run submissions through this one
// function, which is what makes their results bit-identical.
//
// Cancelling ctx abandons the run at the next chunk boundary with
// ctx.Err(); partial results are never returned.
func RunSpec(ctx context.Context, s Spec, opts RunOpts) (*Result, RunInfo, error) {
	start := time.Now()
	info := RunInfo{}
	fail := func(err error) (*Result, RunInfo, error) {
		info.Wall = time.Since(start)
		return nil, info, err
	}
	if err := s.Validate(); err != nil {
		return fail(err)
	}
	cs := s.Canonical()
	specHash, err := cs.Hash()
	if err != nil {
		return fail(err)
	}
	p := cs.Params()
	p.Shards = s.Shards
	sc, err := Build(p)
	if err != nil {
		return fail(err)
	}
	topo := sc.Params.Topology
	nw := sc.NW
	period := time.Duration(cs.Period)

	// Formation: run until the join target is met (plus a 30 s settling
	// margin), or restore exactly that state from the warm pool.
	target := int(math.Ceil(cs.JoinFraction * float64(topo.N())))
	if target > topo.N() {
		target = topo.N()
	}
	if target < 1 {
		target = 1
	}
	formTimeout := 6 * time.Minute
	if cs.IsGenerated() {
		// Re-dimensioned frames beyond the paper envelope form slower;
		// match core.ScaledConfig's widened timeouts.
		formTimeout = 30 * time.Minute
	}
	form := func() (map[string]string, error) {
		maxSlots := sim.SlotsFor(formTimeout)
		var ran int64
		formed := false
		for ran < maxSlots && !formed {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			budget := maxSlots - ran
			if budget > 5000 {
				budget = 5000
			}
			n, ok := nw.RunUntil(budget, func() bool { return sc.Joined() >= target })
			ran += n
			formed = ok
		}
		if !formed {
			return nil, fmt.Errorf("only %d/%d nodes joined during formation (target %d)",
				sc.Joined(), topo.N(), target)
		}
		nw.Run(sim.SlotsFor(30 * time.Second))
		return map[string]string{
			"formed_slots":   strconv.FormatInt(ran, 10),
			"joined_at_form": strconv.Itoa(sc.Joined()),
		}, nil
	}
	var extra map[string]string
	if opts.Warm != nil {
		meta, hit, err := sc.WarmStart(opts.Warm, formationLabel(cs.JoinFraction), form)
		if err != nil {
			return fail(err)
		}
		info.WarmHit = hit
		extra = meta.Extra
	} else {
		if extra, err = form(); err != nil {
			return fail(err)
		}
	}
	formSlots, err := strconv.ParseInt(extra["formed_slots"], 10, 64)
	if err != nil {
		return fail(fmt.Errorf("formation metadata formed_slots: %w", err))
	}
	joinedAtForm, err := strconv.Atoi(extra["joined_at_form"])
	if err != nil {
		return fail(fmt.Errorf("formation metadata joined_at_form: %w", err))
	}

	// Observers attach only now, so a warm-started run emits the same
	// telemetry stream as a cold one (formation events are by design not
	// part of the measurement).
	var chain telemetry.Tracer = opts.Tracer
	var mon *invariant.Monitor
	if cs.Invariants {
		mon = invariant.New(invariant.Config{Emit: opts.Tracer, Heal: sc.Healer})
		chain = telemetry.Multi(opts.Tracer, mon)
		invariant.Attach(nw, mon, sc.Prober, 0)
	}
	var plan *chaos.Plan
	switch {
	case cs.PlanName == "fig8":
		plan = chaos.Fig8JammerPlan(topo, cs.Seed)
	case cs.Plan != nil:
		plan = cs.Plan
	}
	stackTracer := chain
	if plan != nil {
		live := func() int {
			n := 0
			for i := 1; i <= topo.N(); i++ {
				if !nw.Failed(topology.NodeID(i)) {
					n++
				}
			}
			return n
		}
		inj, err := chaos.Apply(nw, plan, chain, chaos.Hooks{
			Converged: func() bool { return sc.Joined() >= live() },
			Reboot: func(id topology.NodeID, asn sim.ASN, lose bool) {
				sc.MACNode(int(id)).Reboot(asn, lose)
			},
		})
		if err != nil {
			return fail(err)
		}
		stackTracer = telemetry.Multi(chain, inj)
	}
	if stackTracer != nil {
		sc.SetTracer(stackTracer)
	}
	if chain != nil {
		telemetry.AttachSim(nw, chain)
	}

	// Interference: WiFi jammers at the deployment's suggested spots.
	for j := 0; j < cs.Jammers && j < len(topo.SuggestedJammers); j++ {
		wifiCh := []int{1, 6, 11}[j%3]
		nw.AddInterferer(&interference.Window{
			Source:   interference.NewWiFiJammer(topo, topo.SuggestedJammers[j], wifiCh, cs.Seed+int64(j)),
			StartASN: nw.ASN(),
		})
	}

	// Flows. A fault plan extends the effective window past its horizon
	// deterministically, so recovery is always observed.
	window := time.Duration(cs.Window)
	if plan != nil {
		if h := plan.Horizon() + 60*time.Second; h > window {
			window = h
		}
	}
	var fset []flows.Flow
	if cs.Flows <= 0 && len(topo.SuggestedSources) > 0 {
		fset = flows.FixedSet(topo.SuggestedSources, period)
	} else {
		n := cs.Flows
		if n <= 0 {
			n = 8
		}
		rng := rand.New(rand.NewSource(cs.Seed))
		fset, err = flows.RandomSet(topo, n, period, rng)
		if err != nil {
			return fail(err)
		}
	}
	col := metrics.NewCollector()
	sc.OnDeliver(func(asn sim.ASN, f *sim.Frame) { col.Delivered(f.FlowID, f.Seq, asn) })
	packets := int(window / period)
	flows.Schedule(nw, fset, packets, func(f flows.Flow, seq uint16, asn sim.ASN) {
		if nw.Failed(f.Source) {
			// A crashed source generates nothing (matters only under
			// fault plans; Failed is always false otherwise).
			return
		}
		col.Sent(f.ID, seq, asn)
		_ = sc.MACNode(int(f.Source)).InjectData(&sim.Frame{
			Origin: f.Source, FlowID: f.ID, Seq: seq, BornASN: asn,
		})
	})

	startEnergy := totalEnergy(sc, topo.N())
	startASN := nw.ASN()
	windowSlots := sim.SlotsFor(window + 15*time.Second)
	if err := runChunks(ctx, nw, windowSlots); err != nil {
		sc.SetTracer(nil)
		telemetry.AttachSim(nw, nil)
		return fail(err)
	}
	elapsed := sim.TimeAt(nw.ASN() - startASN)
	energy := totalEnergy(sc, topo.N()) - startEnergy

	sc.SetTracer(nil)
	telemetry.AttachSim(nw, nil)
	if chain != nil {
		if err := chain.Flush(); err != nil {
			return fail(err)
		}
	}

	res := &Result{
		SpecHash:         specHash,
		Topology:         cs.Topology,
		Protocol:         cs.Protocol,
		Seed:             cs.Seed,
		Nodes:            topo.N(),
		JoinedAtForm:     joinedAtForm,
		FormationSlots:   formSlots,
		WindowSlots:      windowSlots,
		FinalSlot:        nw.ASN(),
		Flows:            len(fset),
		Sent:             col.SentCount(),
		Delivered:        col.DeliveredCount(),
		PDR:              col.PDR(),
		PowerPerPacketMW: metrics.PowerPerPacketMW(energy, elapsed, col.DeliveredCount()),
	}
	if lats := metrics.DurationsToMillis(col.Latencies()); len(lats) > 0 {
		res.LatencyMedianMs = metrics.Quantile(lats, 0.5)
		res.LatencyP90Ms = metrics.Quantile(lats, 0.9)
		res.LatencyP99Ms = metrics.Quantile(lats, 0.99)
		res.LatencyMaxMs = metrics.Max(lats)
	}
	if mon != nil {
		rep := mon.Report()
		res.Violations = rep.Total
		res.Repairs = rep.Repairs
	}
	info.Wall = time.Since(start)
	return res, info, nil
}

// totalEnergy sums the MAC-layer energy model across all nodes.
func totalEnergy(sc *Scenario, n int) float64 {
	total := 0.0
	for i := 1; i <= n; i++ {
		total += sc.MACNode(i).Stats().EnergyJoules
	}
	return total
}
