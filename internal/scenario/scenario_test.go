package scenario

import (
	"bytes"
	"fmt"
	"reflect"
	"strconv"
	"testing"
	"time"

	"github.com/digs-net/digs/internal/campaign"
	"github.com/digs-net/digs/internal/chaos"
	"github.com/digs-net/digs/internal/flows"
	"github.com/digs-net/digs/internal/metrics"
	"github.com/digs-net/digs/internal/sim"
	"github.com/digs-net/digs/internal/snapshot"
	"github.com/digs-net/digs/internal/telemetry"
	"github.com/digs-net/digs/internal/topology"
)

const testTopo = "half-testbed-a"

// form runs the scenario through network formation plus the 30 s settling
// margin every consumer uses before measuring, and returns the metadata a
// warm-started run needs to report identically.
func form(sc *Scenario) (map[string]string, error) {
	n := sc.Params.Topology.N()
	slots, ok := sc.NW.RunUntil(sim.SlotsFor(6*time.Minute), func() bool {
		return sc.Joined() == n
	})
	if !ok {
		return nil, fmt.Errorf("only %d/%d joined during formation", sc.Joined(), n)
	}
	sc.NW.Run(sim.SlotsFor(30 * time.Second))
	return map[string]string{"formed_slots": strconv.FormatInt(slots, 10)}, nil
}

// runTraffic drives a fixed-source traffic window over the scenario with a
// JSONL tracer and a metrics collector attached, and returns both outputs:
// the complete telemetry stream and the measurement window, byte-for-byte
// comparable between two runs that should be identical.
func runTraffic(sc *Scenario) ([]byte, *metrics.CollectorState, error) {
	var trace bytes.Buffer
	jsonl := telemetry.NewJSONL(&trace)
	sc.SetTracer(jsonl)
	telemetry.AttachSim(sc.NW, jsonl)
	col := metrics.NewCollector()
	sc.OnDeliver(func(asn sim.ASN, f *sim.Frame) { col.Delivered(f.FlowID, f.Seq, asn) })

	const packets = 20
	period := time.Second
	fset := flows.FixedSet(sc.Params.Topology.SuggestedSources, period)
	flows.Schedule(sc.NW, fset, packets, func(f flows.Flow, seq uint16, asn sim.ASN) {
		col.Sent(f.ID, seq, asn)
		_ = sc.MACNode(int(f.Source)).InjectData(&sim.Frame{
			Origin: f.Source, FlowID: f.ID, Seq: seq, BornASN: asn,
		})
	})
	sc.NW.Run(sim.SlotsFor(period*packets + 15*time.Second))
	sc.OnDeliver(nil)
	sc.SetTracer(nil)
	telemetry.AttachSim(sc.NW, nil)
	if err := jsonl.Flush(); err != nil {
		return nil, nil, err
	}
	return trace.Bytes(), col.CaptureState(), nil
}

// TestResumeBitIdentity is the subsystem's core promise, per protocol:
// snapshot at S, restore into a fresh process (modelled by a fresh build),
// continue to T — and the trace, the metrics window and the complete final
// state are bit-identical to the run that never stopped.
func TestResumeBitIdentity(t *testing.T) {
	for _, proto := range []string{snapshot.ProtocolDiGS, snapshot.ProtocolOrchestra,
		snapshot.ProtocolWHART, snapshot.ProtocolSDN, snapshot.ProtocolAdaptive} {
		proto := proto
		t.Run(proto, func(t *testing.T) {
			t.Parallel()
			scA, err := Build(Params{TopologyName: testTopo, Protocol: proto, Seed: 1, Period: time.Second})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := form(scA); err != nil {
				t.Fatal(err)
			}
			snapS, err := scA.Take("formed+30s", nil)
			if err != nil {
				t.Fatal(err)
			}
			wireS, err := snapshot.Encode(snapS)
			if err != nil {
				t.Fatal(err)
			}

			// Straight-through: keep running A to T.
			traceA, colA, err := runTraffic(scA)
			if err != nil {
				t.Fatal(err)
			}
			finalA, err := scA.Take("end", nil)
			if err != nil {
				t.Fatal(err)
			}
			wireA, err := snapshot.Encode(finalA)
			if err != nil {
				t.Fatal(err)
			}

			// Resumed: decode the wire form into a fresh build, continue to T.
			decoded, err := snapshot.Decode(wireS)
			if err != nil {
				t.Fatal(err)
			}
			scB, err := BuildFromMeta(decoded.Meta)
			if err != nil {
				t.Fatal(err)
			}
			if err := scB.Restore(decoded); err != nil {
				t.Fatal(err)
			}
			traceB, colB, err := runTraffic(scB)
			if err != nil {
				t.Fatal(err)
			}
			finalB, err := scB.Take("end", nil)
			if err != nil {
				t.Fatal(err)
			}
			wireB, err := snapshot.Encode(finalB)
			if err != nil {
				t.Fatal(err)
			}

			if snapS.Meta.Slot == 0 {
				t.Fatal("snapshot taken at slot 0: formation did not run")
			}
			if len(traceA) == 0 || colA == nil || len(colA.Sent) == 0 {
				t.Fatalf("traffic window produced no evidence (trace %dB, %v)", len(traceA), colA)
			}
			if !bytes.Equal(traceA, traceB) {
				t.Errorf("telemetry traces diverge: %d vs %d bytes", len(traceA), len(traceB))
			}
			if !reflect.DeepEqual(colA, colB) {
				t.Errorf("metrics windows diverge: %+v vs %+v", colA, colB)
			}
			if !bytes.Equal(wireA, wireB) {
				d := snapshot.Diff(finalA, finalB)
				max := len(d)
				if max > 10 {
					d = d[:10]
				}
				t.Errorf("final snapshots diverge (%d fields):\n%v", max, d)
			}
		})
	}
}

// runChaos applies the Figure 8 jammer plan to an already-formed scenario
// and returns the recovery report plus run totals — the digs-chaos output
// a warm-started run must reproduce exactly.
func runChaos(sc *Scenario) ([]chaos.FaultReport, int, int, error) {
	topo := sc.Params.Topology
	plan := chaos.Fig8JammerPlan(topo, sc.Params.Seed)
	rec := chaos.NewRecovery()
	chain := telemetry.Multi(rec)
	live := func() int {
		n := 0
		for i := 1; i <= topo.N(); i++ {
			if !sc.NW.Failed(topology.NodeID(i)) {
				n++
			}
		}
		return n
	}
	inj, err := chaos.Apply(sc.NW, plan, chain, chaos.Hooks{
		Converged: func() bool { return sc.Joined() >= live() },
		Reboot: func(id topology.NodeID, asn sim.ASN, lose bool) {
			sc.MACNode(int(id)).Reboot(asn, lose)
		},
	})
	if err != nil {
		return nil, 0, 0, err
	}
	sc.SetTracer(telemetry.Multi(chain, inj))
	period := time.Second
	fset := flows.FixedSet(topo.SuggestedSources, period)
	window := plan.Horizon() + 60*time.Second
	flows.Schedule(sc.NW, fset, int(window/period), func(f flows.Flow, seq uint16, asn sim.ASN) {
		if sc.NW.Failed(f.Source) {
			return
		}
		_ = sc.MACNode(int(f.Source)).InjectData(&sim.Frame{
			Origin: f.Source, FlowID: f.ID, Seq: seq, BornASN: asn,
		})
	})
	sc.NW.Run(sim.SlotsFor(window + 30*time.Second))
	sc.SetTracer(nil)
	if err := chain.Flush(); err != nil {
		return nil, 0, 0, err
	}
	return rec.Report(), rec.Generated(), rec.Lost(), nil
}

// TestWarmStartChaosRecovery proves the warm-start path end to end: a
// chaos run branched off a cached formation snapshot produces exactly the
// recovery table of the run that formed the network itself.
func TestWarmStartChaosRecovery(t *testing.T) {
	cache := &snapshot.Cache{Dir: t.TempDir()}
	build := func() *Scenario {
		sc, err := Build(Params{TopologyName: testTopo, Protocol: snapshot.ProtocolDiGS, Seed: 3, Period: time.Second})
		if err != nil {
			t.Fatal(err)
		}
		return sc
	}

	cold := build()
	meta, warmed, err := cold.WarmStart(cache, "formed+30s", func() (map[string]string, error) {
		return form(cold)
	})
	if err != nil {
		t.Fatal(err)
	}
	if warmed {
		t.Fatal("first run must miss the empty cache")
	}
	coldRep, coldGen, coldLost, err := runChaos(cold)
	if err != nil {
		t.Fatal(err)
	}

	warm := build()
	wMeta, warmed, err := warm.WarmStart(cache, "formed+30s", func() (map[string]string, error) {
		t.Fatal("warm run must not re-form")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !warmed {
		t.Fatal("second run must hit the cache")
	}
	if wMeta.Extra["formed_slots"] != meta.Extra["formed_slots"] || wMeta.Extra["formed_slots"] == "" {
		t.Fatalf("formation metadata lost: %q vs %q", wMeta.Extra["formed_slots"], meta.Extra["formed_slots"])
	}
	warmRep, warmGen, warmLost, err := runChaos(warm)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(coldRep, warmRep) {
		t.Errorf("recovery tables diverge:\ncold: %+v\nwarm: %+v", coldRep, warmRep)
	}
	if coldGen != warmGen || coldLost != warmLost {
		t.Errorf("run totals diverge: cold %d/%d, warm %d/%d", coldLost, coldGen, warmLost, warmGen)
	}
}

// TestWarmStartCampaignDeterminism runs the same warm-started campaign at
// 1, 2, 4 and 8 workers and demands byte-identical output from all of
// them — including the first pass, which forms networks and populates the
// cache, so resumed campaigns are proven identical to uninterrupted ones
// at every worker count.
func TestWarmStartCampaignDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-worker campaign sweep")
	}
	cache := &snapshot.Cache{Dir: t.TempDir()}
	protos := []string{snapshot.ProtocolDiGS, snapshot.ProtocolOrchestra,
		snapshot.ProtocolSDN, snapshot.ProtocolAdaptive}

	runCampaign := func(workers int) ([]string, error) {
		return campaign.Map(campaign.New(workers), len(protos)*2, func(i int) (string, error) {
			sc, err := Build(Params{
				TopologyName: testTopo,
				Protocol:     protos[i%len(protos)],
				Seed:         5 + int64(i/len(protos)),
				Period:       time.Second,
			})
			if err != nil {
				return "", err
			}
			meta, _, err := sc.WarmStart(cache, "formed+30s", func() (map[string]string, error) {
				return form(sc)
			})
			if err != nil {
				return "", err
			}
			trace, col, err := runTraffic(sc)
			if err != nil {
				return "", err
			}
			final, err := sc.Take("end", nil)
			if err != nil {
				return "", err
			}
			wire, err := snapshot.Encode(final)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("formed=%s trace=%d delivered=%d state=%x",
				meta.Extra["formed_slots"], len(trace), len(col.Delivered), snapshot.HashConfig(wire)), nil
		})
	}

	var first []string
	for _, workers := range []int{1, 2, 4, 8} {
		out, err := runCampaign(workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if first == nil {
			first = out
			continue
		}
		if !reflect.DeepEqual(first, out) {
			t.Errorf("workers=%d output diverges:\nfirst: %v\n  now: %v", workers, first, out)
		}
	}
}
