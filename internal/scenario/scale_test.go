package scenario

import (
	"bytes"
	"fmt"
	"math"
	"testing"
	"time"

	"github.com/digs-net/digs/internal/flows"
	"github.com/digs-net/digs/internal/sim"
	"github.com/digs-net/digs/internal/snapshot"
	"github.com/digs-net/digs/internal/telemetry"
)

// runScale builds a scenario for the given stack on a generated sparse
// topology with the given shard count, converges it (to minJoin of the
// deployment — the centralized sdn stack legitimately configures a large
// mesh much more slowly than the distributed stacks form it), runs one
// flow window with telemetry attached, and returns a fingerprint of every
// observable output: the delivered-packet ledger, the per-node MAC
// statistics (exact float bits), the final ASN, and the raw telemetry
// JSONL bytes.
func runScale(t *testing.T, topoName, proto string, shards int, minJoin float64) (string, []byte) {
	t.Helper()
	sc, err := Build(Params{
		TopologyName: topoName,
		Protocol:     proto,
		Seed:         42,
		Period:       2 * time.Second,
		Shards:       shards,
	})
	if err != nil {
		t.Fatalf("build (%d shards): %v", shards, err)
	}
	if !sc.NW.ScaleMode() {
		t.Fatalf("expected scale mode for %s", topoName)
	}
	var trace bytes.Buffer
	sc.SetTracer(telemetry.NewJSONL(&trace))

	topo := sc.NW.Topology()
	n := topo.N()
	// Converge to full join or the slot cap, whichever first — either way
	// every shard count runs the identical slot sequence. Nodes whose only
	// links sit in the sub-sensitivity guard band can take very long to
	// join; they don't carry the test's flows.
	sc.NW.RunUntil(60_000, func() bool { return sc.Joined() == n })
	if j := sc.Joined(); float64(j) < float64(n)*minJoin {
		t.Fatalf("(%d shards) only %d/%d joined after %d slots", shards, j, n, sc.NW.ASN())
	}

	var delivered []string
	sc.OnDeliver(func(asn sim.ASN, f *sim.Frame) {
		delivered = append(delivered, fmt.Sprintf("%d/%d/%d@%d", f.Origin, f.FlowID, f.Seq, asn))
	})
	fset := flows.FixedSet(topo.SuggestedSources, 2*time.Second)
	sent := 0
	flows.Schedule(sc.NW, fset, 4, func(f flows.Flow, seq uint16, asn sim.ASN) {
		sent++
		_ = sc.MACNode(int(f.Source)).InjectData(&sim.Frame{
			Origin: f.Source, FlowID: f.ID, Seq: seq, BornASN: asn,
		})
	})
	sc.NW.Run(sim.SlotsFor(12 * time.Second))

	var fp bytes.Buffer
	fmt.Fprintf(&fp, "asn=%d sent=%d\n", sc.NW.ASN(), sent)
	for _, d := range delivered {
		fmt.Fprintln(&fp, d)
	}
	for i := 1; i <= n; i++ {
		st := sc.MACNode(i).Stats()
		fmt.Fprintf(&fp, "%d e=%x on=%d slots=%d tx=%d/%d rx=%d gen=%d fwd=%d sink=%d drop=%d/%d dup=%d\n",
			i, math.Float64bits(st.EnergyJoules), int64(st.RadioOnTime), st.Slots,
			st.TxData, st.TxControl, st.RxFrames, st.Generated, st.Forwarded,
			st.SinkDelivered, st.DroppedQueue, st.DroppedRetries, st.Duplicates)
	}
	return fp.String(), trace.Bytes()
}

// TestScaleShardBitIdentity is the tentpole's determinism guarantee: a
// sharded run is an implementation detail, not a simulation parameter.
// Metrics, per-node statistics and the telemetry stream must be
// bit-identical for shard counts 1, 2, 4 and 8.
func TestScaleShardBitIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run convergence test")
	}
	baseFP, baseTrace := runScale(t, "gen-field-300-3", snapshot.ProtocolDiGS, 1, 0.9)
	if len(baseTrace) == 0 {
		t.Fatal("telemetry stream empty — tracer not wired through the splitter")
	}
	for _, shards := range []int{2, 4, 8} {
		fp, tr := runScale(t, "gen-field-300-3", snapshot.ProtocolDiGS, shards, 0.9)
		if fp != baseFP {
			t.Errorf("%d shards: metrics fingerprint diverged from 1-shard run:\n%s",
				shards, firstDiff(baseFP, fp))
		}
		if !bytes.Equal(tr, baseTrace) {
			t.Errorf("%d shards: telemetry JSONL diverged from 1-shard run (%d vs %d bytes)",
				shards, len(tr), len(baseTrace))
		}
	}
}

// TestControllerScaleShardBitIdentity extends the shard-count guarantee to
// the controller-layer stacks: the adaptive allocator (whose cell budgets
// react to per-tick queue and loss observations) and the centralized sdn
// stack (whose controller node collects and disseminates in-band) must
// both produce bit-identical metrics and telemetry at 1, 2, 4 and 8
// shards. The sdn join floor is low on purpose: configuring an 80-node
// mesh through one controller takes many report/dissemination epochs, and
// this test is about determinism, not reconvergence speed.
func TestControllerScaleShardBitIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run convergence test")
	}
	for _, tc := range []struct {
		proto   string
		minJoin float64
	}{
		{snapshot.ProtocolAdaptive, 0.9},
		{snapshot.ProtocolSDN, 0.15},
	} {
		tc := tc
		t.Run(tc.proto, func(t *testing.T) {
			t.Parallel()
			baseFP, baseTrace := runScale(t, "gen-field-80-3", tc.proto, 1, tc.minJoin)
			if len(baseTrace) == 0 {
				t.Fatal("telemetry stream empty — tracer not wired through the splitter")
			}
			for _, shards := range []int{2, 4, 8} {
				fp, tr := runScale(t, "gen-field-80-3", tc.proto, shards, tc.minJoin)
				if fp != baseFP {
					t.Errorf("%d shards: metrics fingerprint diverged from 1-shard run:\n%s",
						shards, firstDiff(baseFP, fp))
				}
				if !bytes.Equal(tr, baseTrace) {
					t.Errorf("%d shards: telemetry JSONL diverged from 1-shard run (%d vs %d bytes)",
						shards, len(tr), len(baseTrace))
				}
			}
		})
	}
}

// TestScaleSnapshotRoundTrip10k takes a snapshot of a sharded 10k-node
// run mid-flight, restores it into a fresh build with a different shard
// count, and checks both continuations are bit-identical: checkpointing
// composes with the scale engine, and the shard count is free to change
// across a resume.
func TestScaleSnapshotRoundTrip10k(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-node run")
	}
	build := func(shards int) *Scenario {
		sc, err := Build(Params{
			TopologyName: "gen-plant-10000",
			Protocol:     snapshot.ProtocolDiGS,
			Seed:         7,
			Shards:       shards,
		})
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		return sc
	}
	fingerprint := func(sc *Scenario) string {
		var fp bytes.Buffer
		fmt.Fprintf(&fp, "asn=%d joined=%d\n", sc.NW.ASN(), sc.Joined())
		for i := 1; i <= sc.NW.Topology().N(); i++ {
			st := sc.MACNode(i).Stats()
			fmt.Fprintf(&fp, "%d e=%x slots=%d tx=%d/%d rx=%d\n",
				i, math.Float64bits(st.EnergyJoules), st.Slots, st.TxData, st.TxControl, st.RxFrames)
		}
		return fp.String()
	}

	orig := build(2)
	orig.NW.Run(2000)
	snap, err := orig.Take("midflight", nil)
	if err != nil {
		t.Fatalf("take: %v", err)
	}
	wire, err := snapshot.Encode(snap)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	back, err := snapshot.Decode(wire)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}

	resumed := build(8)
	if err := resumed.Restore(back); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if got, want := fingerprint(resumed), fingerprint(orig); got != want {
		t.Fatalf("restored state diverges before stepping:\n%s", firstDiff(want, got))
	}
	orig.NW.Run(1000)
	resumed.NW.Run(1000)
	if got, want := fingerprint(resumed), fingerprint(orig); got != want {
		t.Fatalf("continuations diverge (2 shards vs 8 shards from snapshot):\n%s", firstDiff(want, got))
	}
}

func firstDiff(a, b string) string {
	la, lb := len(a), len(b)
	n := la
	if lb < n {
		n = lb
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			lo := i - 80
			if lo < 0 {
				lo = 0
			}
			hiA, hiB := i+80, i+80
			if hiA > la {
				hiA = la
			}
			if hiB > lb {
				hiB = lb
			}
			return fmt.Sprintf("at byte %d:\n  a: …%s…\n  b: …%s…", i, a[lo:hiA], b[lo:hiB])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d", la, lb)
}
