package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"

	"github.com/digs-net/digs/internal/snapshot"
	"github.com/digs-net/digs/internal/telemetry"
)

// TestSpecHashCanonicalization: omitted defaults, explicit defaults and
// throughput knobs must all produce the same content address.
func TestSpecHashCanonicalization(t *testing.T) {
	base := Spec{Topology: "half-testbed-a", Protocol: "digs", Seed: 7}
	h0, err := base.Hash()
	if err != nil {
		t.Fatal(err)
	}
	variants := map[string]Spec{
		"explicit defaults": {
			Topology: "half-testbed-a", Protocol: "digs", Seed: 7,
			Period: Duration(5 * time.Second), Window: Duration(2 * time.Minute),
			MacBoost: 1, JoinFraction: 1.0,
		},
		"shards differ": {Topology: "half-testbed-a", Protocol: "digs", Seed: 7, Shards: 4},
		"mac_boost zero vs one": {
			Topology: "half-testbed-a", Protocol: "digs", Seed: 7, MacBoost: 1,
		},
	}
	for name, v := range variants {
		h, err := v.Hash()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if h != h0 {
			t.Errorf("%s: hash %s != base %s", name, h, h0)
		}
	}

	// Different scenarios must not collide.
	for name, v := range map[string]Spec{
		"seed":     {Topology: "half-testbed-a", Protocol: "digs", Seed: 8},
		"protocol": {Topology: "half-testbed-a", Protocol: "orchestra", Seed: 7},
		"window":   {Topology: "half-testbed-a", Protocol: "digs", Seed: 7, Window: Duration(time.Minute)},
		"plan":     {Topology: "half-testbed-a", Protocol: "digs", Seed: 7, PlanName: "fig8"},
	} {
		h, err := v.Hash()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if h == h0 {
			t.Errorf("%s: distinct scenario collided with base hash", name)
		}
	}
}

// TestSpecHashFieldOrderIndependent: the hash is computed from the
// decoded canonical form, so the JSON spelling of a submission — field
// order, omitted zero fields — cannot change it.
func TestSpecHashFieldOrderIndependent(t *testing.T) {
	a := []byte(`{"topology":"testbed-b","protocol":"orchestra","seed":3,"window":"1m"}`)
	b := []byte(`{"window":"60s","seed":3,"protocol":"orchestra","topology":"testbed-b","shards":2}`)
	var sa, sb Spec
	if err := json.Unmarshal(a, &sa); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &sb); err != nil {
		t.Fatal(err)
	}
	ha, err := sa.Hash()
	if err != nil {
		t.Fatal(err)
	}
	hb, err := sb.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb {
		t.Fatalf("field order / spelling changed the hash: %s vs %s", ha, hb)
	}
}

// TestBuildCanonicalRoundTrip: Build(p) and Build(canonical(p)) construct
// the same simulation — same configuration fingerprint, same cache key —
// so default-filled submissions warm-start from snapshots taken by
// explicit ones.
func TestBuildCanonicalRoundTrip(t *testing.T) {
	s := Spec{Topology: "half-testbed-b", Protocol: "digs", Seed: 11}
	sc1, err := Build(s.Params())
	if err != nil {
		t.Fatal(err)
	}
	sc2, err := Build(s.Canonical().Params())
	if err != nil {
		t.Fatal(err)
	}
	if sc1.ConfigHash != sc2.ConfigHash {
		t.Fatalf("ConfigHash %016x != canonical %016x", sc1.ConfigHash, sc2.ConfigHash)
	}
	if k1, k2 := sc1.CacheKey("formed+30s"), sc2.CacheKey("formed+30s"); k1 != k2 {
		t.Fatalf("cache keys differ: %s vs %s", k1, k2)
	}
}

func TestSpecValidate(t *testing.T) {
	bad := map[string]Spec{
		"protocol":        {Protocol: "tcp"},
		"topology":        {Topology: "gen-mars-100"},
		"plan name":       {PlanName: "fig99"},
		"period > window": {Period: Duration(3 * time.Minute), Window: Duration(time.Minute)},
		"shards":          {Shards: 1000},
	}
	for name, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, s)
		}
	}
	good := Spec{}
	if err := good.Validate(); err != nil {
		t.Errorf("zero spec must canonicalize to a valid default scenario: %v", err)
	}
}

// TestRunSpecColdWarmBitIdentical is the warm-pool contract end to end: a
// cold run, a cache-miss run that populates the warm pool, and a
// warm-started run must produce byte-identical canonical results AND
// byte-identical telemetry streams.
func TestRunSpecColdWarmBitIdentical(t *testing.T) {
	spec := Spec{
		Topology: "half-testbed-a", Protocol: "digs", Seed: 5,
		Period: Duration(2 * time.Second), Window: Duration(10 * time.Second),
	}
	run := func(warm *snapshot.Cache) ([]byte, []byte, bool) {
		t.Helper()
		var trace bytes.Buffer
		res, rinfo, err := RunSpec(context.Background(), spec,
			RunOpts{Tracer: telemetry.NewJSONL(&trace), Warm: warm})
		if err != nil {
			t.Fatal(err)
		}
		enc, err := res.Encode()
		if err != nil {
			t.Fatal(err)
		}
		return enc, trace.Bytes(), rinfo.WarmHit
	}

	cold, coldTrace, hit := run(nil)
	if hit {
		t.Fatal("cold run reported a warm hit")
	}
	cache := &snapshot.Cache{Dir: t.TempDir()}
	miss, missTrace, hit := run(cache)
	if hit {
		t.Fatal("first cached run must be a miss")
	}
	warm, warmTrace, hit := run(cache)
	if !hit {
		t.Fatal("second cached run must be a warm hit")
	}
	if !bytes.Equal(cold, miss) || !bytes.Equal(cold, warm) {
		t.Fatalf("results diverge:\ncold: %s\nmiss: %s\nwarm: %s", cold, miss, warm)
	}
	if !bytes.Equal(coldTrace, missTrace) || !bytes.Equal(coldTrace, warmTrace) {
		t.Fatalf("telemetry streams diverge (cold %d bytes, miss %d, warm %d)",
			len(coldTrace), len(missTrace), len(warmTrace))
	}
	if len(coldTrace) == 0 {
		t.Fatal("empty telemetry stream")
	}
}

// TestRunSpecCancelled: a cancelled context aborts the run with ctx.Err()
// and no partial result.
func TestRunSpecCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, _, err := RunSpec(ctx, Spec{Topology: "half-testbed-a", Seed: 1}, RunOpts{})
	if err == nil || res != nil {
		t.Fatalf("RunSpec(cancelled ctx) = %v, %v; want nil result and error", res, err)
	}
	if ctx.Err() == nil {
		t.Fatal("sanity")
	}
}
