package scenario

import (
	"strings"
	"testing"

	"github.com/digs-net/digs/internal/snapshot"
)

// TestStackRegistry pins the registered stack set: the five stacks are
// present in sorted order, and both rejection paths — Build and spec
// admission — enumerate them so a typo in a submission is a one-glance
// fix.
func TestStackRegistry(t *testing.T) {
	want := []string{
		snapshot.ProtocolAdaptive, snapshot.ProtocolDiGS,
		snapshot.ProtocolOrchestra, snapshot.ProtocolSDN, snapshot.ProtocolWHART,
	}
	got := RegisteredStacks()
	if len(got) != len(want) {
		t.Fatalf("RegisteredStacks() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("RegisteredStacks() = %v, want %v", got, want)
		}
	}
	for _, name := range want {
		if !StackRegistered(name) {
			t.Errorf("StackRegistered(%q) = false", name)
		}
	}
	if StackRegistered("tcp") {
		t.Error("StackRegistered accepted an unregistered name")
	}

	_, err := Build(Params{TopologyName: "half-testbed-a", Protocol: "tcp", Seed: 1})
	if err == nil {
		t.Fatal("Build accepted an unregistered protocol")
	}
	for _, name := range want {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("Build rejection %q does not enumerate %q", err, name)
		}
	}

	err = Spec{Protocol: "tcp"}.Validate()
	if err == nil {
		t.Fatal("Validate accepted an unregistered protocol")
	}
	for _, name := range want {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("spec rejection %q does not enumerate %q", err, name)
		}
	}
}

// TestSpecHashGolden pins the content addresses of representative specs.
// These hashes name cached results on disk and across digs-server
// deployments: a refactor that changes them silently orphans every stored
// result, so any intentional change must be visible here.
func TestSpecHashGolden(t *testing.T) {
	golden := []struct {
		spec Spec
		want string
	}{
		{Spec{},
			"ba22fa7b720f2017515f2464b6e434c8e288aaa58d9511721663acf41fca0725"},
		{Spec{Topology: "testbed-a", Protocol: "digs", Seed: 1},
			"28c60397e5ea0f30d6fc206d1d13480f1f222e8f036bbc0eaf58c17efef8377b"},
		{Spec{Topology: "testbed-b", Protocol: "orchestra", Seed: 2, Jammers: 2},
			"bae31c0d2bfdbb320a166f1c13b262bf97641ed68cf947bc25ead8678fdd2e68"},
		{Spec{Topology: "half-testbed-a", Protocol: "whart", Seed: 3, PlanName: "fig8"},
			"844d9786176d8213471792187c8a765583280baa003ecd23483b31393da9a412"},
		{Spec{Topology: "half-testbed-a", Protocol: "sdn", Seed: 1},
			"8f26330cd5382d04af75695b1b36d500c9bf46781c279a5433952dbfcfdb2c8e"},
		{Spec{Topology: "half-testbed-a", Protocol: "adaptive", Seed: 1},
			"3394d198b9539020504db7ddec58123240a6c3eeae96feb5c4e086e50414a87d"},
	}
	for _, g := range golden {
		h, err := g.spec.Hash()
		if err != nil {
			t.Fatal(err)
		}
		if h != g.want {
			t.Errorf("spec %+v: hash drifted to %s (cached results under %s are now orphaned)",
				g.spec, h, g.want)
		}
	}
}
