package invariant

import (
	"fmt"
	"io"
	"strings"

	"github.com/digs-net/digs/internal/sim"
)

// WriteText renders the report in the shape shared by the digs-sim,
// digs-chaos and digs-doctor CLIs: one headline, then a row per fired
// invariant with count, first sighting and worst offenders.
func WriteText(w io.Writer, rep Report) {
	if rep.Total == 0 && rep.RecordedViolations == 0 {
		fmt.Fprintf(w, "invariants: clean (%d watchdog repair(s))\n",
			rep.Repairs+rep.RecordedRepairs)
		return
	}
	fmt.Fprintf(w, "invariants: %d violation(s), %d watchdog repair(s)\n",
		rep.Total+rep.RecordedViolations, rep.Repairs+rep.RecordedRepairs)
	for _, cs := range rep.ByCode {
		worst := ""
		if len(cs.Offenders) > 0 {
			parts := make([]string, 0, 3)
			for i, o := range cs.Offenders {
				if i == 3 {
					break
				}
				parts = append(parts, fmt.Sprintf("%d x%d", o.Node, o.Count))
			}
			worst = "  worst: " + strings.Join(parts, ", ")
		}
		fmt.Fprintf(w, "  %-17s %4d  first@%v%s\n",
			cs.Code, cs.Count, sim.TimeAt(cs.FirstASN), worst)
	}
}
