// Package invariant is the runtime safety monitor: it turns the paper's
// correctness claims — loop-free uplink routing with redundant parents,
// effectively conflict-free autonomous schedules, bounded queues and live
// flows — into invariants checked online, while a scenario runs, instead
// of offline test assertions.
//
// The Monitor rides the packet-lifecycle telemetry chain (chain it with
// telemetry.Multi, exactly like chaos.Recovery) for the event-driven
// invariants, and takes periodic network-state snapshots through a Prober
// for the structural ones. Each violation is emitted as a schema-v3
// telemetry event (EvViolation) carrying enough context to localize it,
// and aggregated into a Report of counts, first-seen slots and worst
// offenders.
//
// On top of detection sits the self-healing half: a node flagged with
// sustained desync or orphaned routing state triggers the Heal hook —
// wired by callers to mac.Node.Reboot, which resyncs/rejoins through the
// protocol's Resetter while preserving callbacks — rate-limited by
// exponential backoff so a partitioned node does not thrash. Healing
// lives on the simulator's event queue, so campaigns stay bit-identical
// at any worker count.
package invariant

import (
	"fmt"
	"sort"

	"github.com/digs-net/digs/internal/sim"
	"github.com/digs-net/digs/internal/topology"
)

// Code identifies one monitored invariant. The raw value travels in the
// telemetry schema's "code" field.
type Code uint8

// The invariant catalog (see DESIGN.md §11).
const (
	// CodeRoutingLoop: following best-parent pointers from some node
	// returns to it — uplink frames would cycle until duplicate
	// suppression or retry budgets eat them.
	CodeRoutingLoop Code = iota + 1
	// CodeOrphan: a previously joined, alive node has lost time sync or
	// every parent and stayed that way beyond the grace window.
	CodeOrphan
	// CodeSingleParent: a joined node has no backup parent (checked only
	// when the monitor is configured to require one; DiGS keeps two
	// parents where density allows, but not every placement can).
	CodeSingleParent
	// CodeDesync: a node that believes it is synchronised has not decoded
	// a single frame for longer than the guard window — its clock has
	// drifted outside the guard time and its slots no longer line up.
	CodeDesync
	// CodeScheduleConflict: two distinct nodes transmitted data in the
	// same slot on the same physical channel, repeatedly, in the same
	// schedule cell — a persistent double-booking, not a chance collision.
	CodeScheduleConflict
	// CodeQueueStuck: a head-of-line packet kept failing past the stuck
	// threshold, or the data queue sat near capacity without draining —
	// the queue is stuck or growing without bound.
	CodeQueueStuck
	// CodeDupDelivery: the same application packet was delivered twice by
	// the same sink node — per-node duplicate suppression failed.
	CodeDupDelivery
	// CodeFlowStarved: a source kept generating packets but the flow
	// delivered nothing for the starvation window — silent starvation a
	// plain PDR number averages away.
	CodeFlowStarved
)

var codeNames = [...]string{
	CodeRoutingLoop:      "routing-loop",
	CodeOrphan:           "orphan",
	CodeSingleParent:     "single-parent",
	CodeDesync:           "desync",
	CodeScheduleConflict: "schedule-conflict",
	CodeQueueStuck:       "queue-stuck",
	CodeDupDelivery:      "dup-delivery",
	CodeFlowStarved:      "flow-starved",
}

// NumCodes bounds the valid Code values (codes are 1..NumCodes-1).
const NumCodes = len(codeNames)

// String returns the catalog name of the code.
func (c Code) String() string {
	if int(c) < len(codeNames) && codeNames[c] != "" {
		return codeNames[c]
	}
	return fmt.Sprintf("code-%d", uint8(c))
}

// MarshalText encodes the code by its catalog name, so JSON reports read
// "routing-loop" instead of a bare number.
func (c Code) MarshalText() ([]byte, error) { return []byte(c.String()), nil }

// Violation is one detected invariation violation with its context.
type Violation struct {
	Code Code
	// ASN is the slot the violation was detected in.
	ASN int64
	// Node is the primary offender; Peer a counterparty where one exists
	// (the next hop closing a loop, the second conflicting transmitter,
	// the dead next-hop of a stuck queue).
	Node, Peer topology.NodeID
	// Origin and Flow localize flow-scoped violations.
	Origin topology.NodeID
	Flow   uint16
	// Channel and ChOff name the conflicting cell for schedule conflicts.
	Channel uint8
	ChOff   uint8
}

// Repair is one watchdog recovery action.
type Repair struct {
	// ASN is when the node was healed; Attempt the 1-based attempt number
	// within the episode (backoff doubles between attempts).
	ASN     int64
	Node    topology.NodeID
	Attempt int
	// Trigger is the invariant that flagged the node.
	Trigger Code
}

// NodeState is one node's probed routing/MAC state, the input to the
// structural checks. Probers fill one per node, in ascending ID order.
type NodeState struct {
	ID   topology.NodeID
	IsAP bool
	// Alive is false while the chaos engine (or a scenario) holds the
	// node's radio failed; dead nodes are exempt from every check.
	Alive bool
	// Synced is the MAC's own belief — CodeDesync exists precisely
	// because this flag can be stale.
	Synced bool
	// Parent and Backup are the current uplink parents (0 = none).
	Parent, Backup topology.NodeID
	// Queue is the data-queue depth; LastRx the last slot the node
	// decoded any frame; Neighbors the routing neighbor-table size.
	Queue     int
	LastRx    sim.ASN
	Neighbors int
}

// Prober appends every node's current state to states and returns the
// extended slice. Implementations must append in ascending node-ID order
// and consume no randomness — probing must not perturb a seeded run.
type Prober func(states []NodeState) []NodeState

// Offender is one node's violation count within a code.
type Offender struct {
	Node  topology.NodeID
	Count int
}

// CodeStats aggregates one invariant's violations.
type CodeStats struct {
	Code     Code
	Count    int
	FirstASN int64
	// Offenders lists the nodes involved, worst first (violations with no
	// node context, e.g. flow-scoped ones, attribute to the flow origin).
	Offenders []Offender
}

// Report is the aggregated outcome of a monitored run.
type Report struct {
	// Total counts violations the monitor itself detected; Repairs the
	// watchdog recoveries it triggered.
	Total   int
	Repairs int
	// RecordedViolations/RecordedRepairs count violation/repair events
	// that were already present in a replayed trace (zero in live runs:
	// the monitor never sees its own emissions).
	RecordedViolations int
	RecordedRepairs    int
	// ByCode holds per-invariant stats in catalog order, only for codes
	// that fired.
	ByCode []CodeStats
}

// Err returns nil for a clean report and an error summarizing the
// violation counts otherwise — the strict mode tests use.
func (r Report) Err() error {
	if r.Total == 0 && r.RecordedViolations == 0 {
		return nil
	}
	s := fmt.Sprintf("%d invariant violation(s)", r.Total+r.RecordedViolations)
	for _, cs := range r.ByCode {
		s += fmt.Sprintf(", %s=%d", cs.Code, cs.Count)
	}
	return fmt.Errorf("%s", s)
}

// ReportFrom builds a Report straight from violation and repair lists —
// the replay path (digs-doctor) reconstructs both from a trace's
// EvViolation/EvRepair events and aggregates them exactly like a live
// monitor would.
func ReportFrom(violations []Violation, repairs []Repair) Report {
	return buildReport(violations, repairs, 0, 0)
}

// buildReport folds the violation list into the per-code aggregate.
func buildReport(violations []Violation, repairs []Repair, recViol, recRep int) Report {
	rep := Report{
		Total:              len(violations),
		Repairs:            len(repairs),
		RecordedViolations: recViol,
		RecordedRepairs:    recRep,
	}
	type agg struct {
		count    int
		firstASN int64
		byNode   map[topology.NodeID]int
	}
	codes := make(map[Code]*agg)
	for _, v := range violations {
		a := codes[v.Code]
		if a == nil {
			a = &agg{firstASN: v.ASN, byNode: make(map[topology.NodeID]int)}
			codes[v.Code] = a
		}
		a.count++
		if v.ASN < a.firstASN {
			a.firstASN = v.ASN
		}
		offender := v.Node
		if offender == 0 {
			offender = v.Origin
		}
		a.byNode[offender]++
	}
	for c := Code(1); int(c) < NumCodes; c++ {
		a := codes[c]
		if a == nil {
			continue
		}
		cs := CodeStats{Code: c, Count: a.count, FirstASN: a.firstASN}
		for n, k := range a.byNode {
			cs.Offenders = append(cs.Offenders, Offender{Node: n, Count: k})
		}
		sort.Slice(cs.Offenders, func(i, j int) bool {
			if cs.Offenders[i].Count != cs.Offenders[j].Count {
				return cs.Offenders[i].Count > cs.Offenders[j].Count
			}
			return cs.Offenders[i].Node < cs.Offenders[j].Node
		})
		rep.ByCode = append(rep.ByCode, cs)
	}
	return rep
}
