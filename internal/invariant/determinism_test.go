package invariant_test

import (
	"bytes"
	"testing"
	"time"

	"github.com/digs-net/digs/internal/campaign"
	"github.com/digs-net/digs/internal/core"
	"github.com/digs-net/digs/internal/invariant"
	"github.com/digs-net/digs/internal/mac"
	"github.com/digs-net/digs/internal/sim"
	"github.com/digs-net/digs/internal/telemetry"
	"github.com/digs-net/digs/internal/topology"
)

// driftOutcome is one job's result: the job-stamped trace plus the facts
// the assertions need.
type driftOutcome struct {
	trace      []byte
	repairs    int
	desyncs    int
	rejoined   bool
	violations int
}

// runDriftRejoin converges a DiGS network, drifts one node's clock fully
// out of the guard time, lets the watchdog detect the desync and reboot it
// (with backoff while the drift persists), then restores the clock and
// checks the node rejoins. Everything — drift, polling, healing — lives on
// deterministic hashes and the simulator event queue, so the same seed
// must produce the same trace bytes regardless of campaign scheduling.
func runDriftRejoin(t *testing.T, job int, seed int64) (driftOutcome, error) {
	topo := topology.HalfTestbedA()
	nw := sim.NewNetwork(topo, seed)
	net, err := core.Build(nw, core.DefaultConfig(topo.NumAPs), mac.DefaultConfig(), seed)
	if err != nil {
		return driftOutcome{}, err
	}
	if _, done := nw.RunUntil(sim.SlotsFor(240*time.Second), func() bool {
		return net.JoinedCount() == topo.N()
	}); !done {
		t.Errorf("job %d: network did not converge", job)
		return driftOutcome{}, nil
	}

	var buf bytes.Buffer
	jsonl := telemetry.WithJob(telemetry.NewJSONL(&buf), job)
	// Tight windows keep the test fast; the shape matches production use:
	// the monitor emits into the chain that excludes itself.
	mon := invariant.New(invariant.Config{
		Emit:        jsonl,
		Heal:        net.Healer(),
		DesyncGuard: 2500,
		OrphanGrace: 1000,
		HealBackoff: 500,
	})
	net.SetTracer(telemetry.Multi(jsonl, mon))
	invariant.Attach(nw, mon, net.Prober(nw), 200)

	victim := topo.SuggestedSources[0]
	nw.SetClockDrift(victim, 1.0, seed*7+3)
	nw.Run(sim.SlotsFor(60 * time.Second))
	nw.SetClockDrift(victim, 0, 0)
	nw.Run(sim.SlotsFor(120 * time.Second))

	if err := jsonl.Flush(); err != nil {
		return driftOutcome{}, err
	}
	rep := mon.Report()
	out := driftOutcome{
		trace:      append([]byte(nil), buf.Bytes()...),
		repairs:    rep.Repairs,
		rejoined:   net.JoinedCount() == topo.N(),
		violations: rep.Total,
	}
	for _, cs := range rep.ByCode {
		if cs.Code == invariant.CodeDesync {
			out.desyncs = cs.Count
		}
	}
	return out, nil
}

// TestWatchdogRejoinDeterministicAcrossWorkers is the acceptance check for
// the self-healing path: the watchdog must recover a clock-drifted node,
// and the merged campaign trace — violations, repairs and all — must be
// byte-identical whether the campaign runs sequentially or on a pool.
func TestWatchdogRejoinDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run campaign in -short mode")
	}
	const jobs = 3
	runCampaign := func(workers int) []byte {
		outs, err := campaign.Map(campaign.New(workers), jobs, func(i int) (driftOutcome, error) {
			return runDriftRejoin(t, i, int64(100+i))
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		parts := make([][]byte, len(outs))
		for i, o := range outs {
			if o.desyncs == 0 {
				t.Errorf("workers=%d job %d: drifted node never flagged desynced", workers, i)
			}
			if o.repairs == 0 {
				t.Errorf("workers=%d job %d: watchdog never rebooted the node", workers, i)
			}
			if !o.rejoined {
				t.Errorf("workers=%d job %d: node did not rejoin after the drift cleared", workers, i)
			}
			parts[i] = o.trace
		}
		var merged bytes.Buffer
		if err := telemetry.MergeJSONL(&merged, parts...); err != nil {
			t.Fatalf("workers=%d merge: %v", workers, err)
		}
		return merged.Bytes()
	}

	seq := runCampaign(1)
	par := runCampaign(4)
	if !bytes.Equal(seq, par) {
		t.Fatalf("merged campaign traces differ between 1 and 4 workers (%d vs %d bytes)",
			len(seq), len(par))
	}
}
