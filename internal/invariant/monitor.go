package invariant

import (
	"github.com/digs-net/digs/internal/sim"
	"github.com/digs-net/digs/internal/telemetry"
	"github.com/digs-net/digs/internal/topology"
)

// Default thresholds, in slots (10 ms each) unless noted. They are tuned
// so a healthy DiGS network reports zero violations in steady state: the
// structural graces sit well above EB periods and parent-reselection
// times, the conflict check demands persistence (chance collisions in
// shared slots never repeat in the same cell) and the stuck threshold
// sits below the MAC retry budget but above any lossy-link streak a
// usable route produces.
const (
	// DefaultPollSlots is the probe period (5 s).
	DefaultPollSlots = 500
	// DefaultFrameLen folds conflict cells over the application slotframe.
	DefaultFrameLen = 151
	// DefaultDesyncGuard: a synced node silent for 30 s (five EB periods)
	// has drifted out of the guard time.
	DefaultDesyncGuard = 3000
	// DefaultOrphanGrace: a previously joined node may be parentless or
	// unsynced for 20 s before it counts orphaned.
	DefaultOrphanGrace = 2000
	// DefaultBackupGrace applies to the opt-in single-parent check (60 s).
	DefaultBackupGrace = 6000
	// DefaultStarveWindow: a generating flow delivering nothing for 60 s
	// is starved.
	DefaultStarveWindow = 6000
	// DefaultStuckTxLimit is the consecutive un-acked data-attempt streak
	// that flags a head-of-line-stuck queue (below the 30-attempt retry
	// budget, far above any streak a usable link produces).
	DefaultStuckTxLimit = 25
	// DefaultQueueHighWater / DefaultQueueGrace: a queue at or above the
	// high-water depth for 30 s without draining is growing unboundedly.
	DefaultQueueHighWater = 12
	DefaultQueueGrace     = 3000
	// DefaultConflictMinSlots: a cell must double-book in this many
	// distinct slots before it counts as a schedule conflict.
	DefaultConflictMinSlots = 3
	// DefaultLoopConfirmPolls: a parent cycle must survive this many
	// consecutive probes (reselection makes single-poll loops transient).
	DefaultLoopConfirmPolls = 2
	// DefaultHealBackoff is the first watchdog retry delay (20 s); it
	// doubles per attempt up to DefaultHealBackoffCap (~5.5 min).
	DefaultHealBackoff    = 2000
	DefaultHealBackoffCap = 33000
)

// Config tunes the Monitor. The zero value of every field selects the
// package default; zero-valued Config is therefore a working
// detection-only monitor.
type Config struct {
	// Emit, when set, receives one EvViolation event per detected
	// violation and one EvRepair per watchdog action. Chain the monitor
	// AFTER this sink (the monitor must not observe its own emissions).
	Emit telemetry.Tracer
	// FrameLen folds schedule-conflict cells ((ASN mod FrameLen, channel)).
	FrameLen int64
	// Thresholds; see the Default* constants.
	DesyncGuard      int64
	OrphanGrace      int64
	BackupGrace      int64
	StarveWindow     int64
	StuckTxLimit     int
	QueueHighWater   int
	QueueGrace       int64
	ConflictMinSlots int
	LoopConfirmPolls int
	// RequireBackup enables the single-parent check. Off by default:
	// sparse placements legitimately leave some nodes with one parent.
	RequireBackup bool
	// Heal, when set, arms the watchdog: a node with a sustained orphan
	// or desync violation is handed to Heal (callers wire
	// mac.Node.Reboot(asn, true) — resync/rejoin through the protocol's
	// Resetter, callbacks preserved). Attempts back off exponentially
	// from HealBackoff to HealBackoffCap per episode.
	Heal           func(id topology.NodeID, asn sim.ASN)
	HealBackoff    int64
	HealBackoffCap int64
}

func (c *Config) fillDefaults() {
	if c.FrameLen <= 0 {
		c.FrameLen = DefaultFrameLen
	}
	if c.DesyncGuard <= 0 {
		c.DesyncGuard = DefaultDesyncGuard
	}
	if c.OrphanGrace <= 0 {
		c.OrphanGrace = DefaultOrphanGrace
	}
	if c.BackupGrace <= 0 {
		c.BackupGrace = DefaultBackupGrace
	}
	if c.StarveWindow <= 0 {
		c.StarveWindow = DefaultStarveWindow
	}
	if c.StuckTxLimit <= 0 {
		c.StuckTxLimit = DefaultStuckTxLimit
	}
	if c.QueueHighWater <= 0 {
		c.QueueHighWater = DefaultQueueHighWater
	}
	if c.QueueGrace <= 0 {
		c.QueueGrace = DefaultQueueGrace
	}
	if c.ConflictMinSlots <= 0 {
		c.ConflictMinSlots = DefaultConflictMinSlots
	}
	if c.LoopConfirmPolls <= 0 {
		c.LoopConfirmPolls = DefaultLoopConfirmPolls
	}
	if c.HealBackoff <= 0 {
		c.HealBackoff = DefaultHealBackoff
	}
	if c.HealBackoffCap <= 0 {
		c.HealBackoffCap = DefaultHealBackoffCap
	}
}

// nodeTrack is the monitor's per-node episode state. Condition trackers
// follow one pattern: a *Since slot records when the condition was first
// observed (-1 = not active), a flagged bit makes each episode emit one
// violation, and clearing the condition re-arms the tracker.
type nodeTrack struct {
	everJoined bool

	orphanSince  int64
	orphanFlag   bool
	desyncFlag   bool
	backupSince  int64
	backupFlag   bool
	qhighSince   int64
	qhighFlag    bool
	loopPolls    int
	loopFlag     bool
	consecFails  int
	consecPeer   topology.NodeID
	stuckFlag    bool
	healAttempts int
	healNextASN  int64
}

func newNodeTrack() *nodeTrack {
	return &nodeTrack{orphanSince: -1, backupSince: -1, qhighSince: -1}
}

// resetStructural re-arms every probe-driven tracker (used when a node
// dies or recovers — the next episode starts fresh).
func (t *nodeTrack) resetStructural() {
	t.orphanSince, t.orphanFlag = -1, false
	t.desyncFlag = false
	t.backupSince, t.backupFlag = -1, false
	t.qhighSince, t.qhighFlag = -1, false
	t.loopPolls, t.loopFlag = 0, false
	t.healAttempts, t.healNextASN = 0, 0
}

type spanKey struct {
	job    int32
	origin topology.NodeID
	flow   uint16
	seq    uint16
}

type flowKey struct {
	job    int32
	origin topology.NodeID
	flow   uint16
}

type flowTrack struct {
	// firstUndelivered is the slot of the first generation since the last
	// delivery; pending counts generations since then (0 = the flow is
	// currently delivering and firstUndelivered is stale).
	firstUndelivered int64
	pending          int
	flagged          bool
}

type cellKey struct {
	offset  int64
	channel uint8
}

type cellTrack struct {
	slots   int
	lastASN int64
	flagged bool
}

type txRec struct {
	node  topology.NodeID
	peer  topology.NodeID
	ch    uint8
	choff uint8
}

// Monitor is the online invariant checker. It implements telemetry.Tracer
// for the event-driven invariants; Poll (usually scheduled through
// Attach) runs the structural ones. It is not safe for concurrent use —
// like every sink, parallel campaign jobs each get their own.
type Monitor struct {
	cfg Config

	nodes map[topology.NodeID]*nodeTrack
	// deliveredBy records which sinks delivered each span, to catch a
	// node delivering the same packet twice (cross-sink duplicates are
	// route redundancy working, not a violation).
	deliveredBy map[spanKey]map[topology.NodeID]struct{}
	flows       map[flowKey]*flowTrack
	cells       map[cellKey]*cellTrack

	// slotTx batches the current slot's data transmissions; when the
	// stream's ASN advances the finished slot is checked for conflicts.
	slotASN int64
	slotTx  []txRec

	violations []Violation
	repairs    []Repair
	recViol    int
	recRep     int

	// scratch backs Attach's periodic probe snapshots.
	scratch []NodeState
}

var _ telemetry.Tracer = (*Monitor)(nil)

// New returns a Monitor; zero Config fields take the package defaults.
func New(cfg Config) *Monitor {
	cfg.fillDefaults()
	return &Monitor{
		cfg:         cfg,
		nodes:       make(map[topology.NodeID]*nodeTrack),
		deliveredBy: make(map[spanKey]map[topology.NodeID]struct{}),
		flows:       make(map[flowKey]*flowTrack),
		cells:       make(map[cellKey]*cellTrack),
		slotASN:     -1,
	}
}

func (m *Monitor) track(id topology.NodeID) *nodeTrack {
	t := m.nodes[id]
	if t == nil {
		t = newNodeTrack()
		m.nodes[id] = t
	}
	return t
}

// violate records one violation and emits its telemetry event.
func (m *Monitor) violate(v Violation) {
	m.violations = append(m.violations, v)
	if m.cfg.Emit != nil {
		m.cfg.Emit.Record(telemetry.Event{
			ASN: v.ASN, Type: telemetry.EvViolation,
			Node: v.Node, Peer: v.Peer, Origin: v.Origin, Flow: v.Flow,
			Channel: v.Channel, ChOff: v.ChOff, Code: uint8(v.Code),
		})
	}
}

// Record implements telemetry.Tracer: the event-driven invariants.
func (m *Monitor) Record(ev telemetry.Event) {
	if ev.ASN != m.slotASN {
		m.checkSlotConflicts()
		m.slotASN = ev.ASN
	}
	switch ev.Type {
	case telemetry.EvTxAttempt:
		if ev.Kind != uint8(sim.KindData) {
			return
		}
		m.slotTx = append(m.slotTx, txRec{node: ev.Node, peer: ev.Peer, ch: ev.Channel, choff: ev.ChOff})
		t := m.track(ev.Node)
		if ev.Acked {
			t.consecFails, t.stuckFlag = 0, false
			return
		}
		t.consecFails++
		t.consecPeer = ev.Peer
		if t.consecFails >= m.cfg.StuckTxLimit && !t.stuckFlag {
			t.stuckFlag = true
			m.violate(Violation{
				Code: CodeQueueStuck, ASN: ev.ASN, Node: ev.Node, Peer: ev.Peer,
			})
		}
	case telemetry.EvGenerated:
		fk := flowKey{job: ev.Job, origin: ev.Origin, flow: ev.Flow}
		ft := m.flows[fk]
		if ft == nil {
			ft = &flowTrack{}
			m.flows[fk] = ft
		}
		if ft.pending == 0 {
			ft.firstUndelivered = ev.ASN
		}
		ft.pending++
		if !ft.flagged && ft.pending >= 2 && ev.ASN-ft.firstUndelivered > m.cfg.StarveWindow {
			ft.flagged = true
			m.violate(Violation{
				Code: CodeFlowStarved, ASN: ev.ASN,
				Origin: ev.Origin, Flow: ev.Flow,
			})
		}
	case telemetry.EvDelivered:
		fk := flowKey{job: ev.Job, origin: ev.Origin, flow: ev.Flow}
		if ft := m.flows[fk]; ft != nil {
			ft.firstUndelivered, ft.pending, ft.flagged = 0, 0, false
		}
		sk := spanKey{job: ev.Job, origin: ev.Origin, flow: ev.Flow, seq: ev.Seq}
		sinks := m.deliveredBy[sk]
		if sinks == nil {
			sinks = make(map[topology.NodeID]struct{}, 1)
			m.deliveredBy[sk] = sinks
		}
		if _, dup := sinks[ev.Node]; dup {
			m.violate(Violation{
				Code: CodeDupDelivery, ASN: ev.ASN, Node: ev.Node,
				Origin: ev.Origin, Flow: ev.Flow,
			})
			return
		}
		sinks[ev.Node] = struct{}{}
	case telemetry.EvViolation:
		m.recViol++
	case telemetry.EvRepair:
		m.recRep++
	}
}

// checkSlotConflicts closes the batched slot: two distinct data
// transmitters on the same physical channel in the same slot interfere;
// the same cell (slot offset, channel) double-booking in ConflictMinSlots
// distinct slots is a persistent schedule conflict.
func (m *Monitor) checkSlotConflicts() {
	if len(m.slotTx) > 1 {
		for i := 0; i < len(m.slotTx); i++ {
			for j := i + 1; j < len(m.slotTx); j++ {
				a, b := m.slotTx[i], m.slotTx[j]
				if a.ch != b.ch || a.node == b.node {
					continue
				}
				// A transmitter and its own receiver-to-be never conflict;
				// distinct senders to anyone on one channel do.
				k := cellKey{offset: m.slotASN % m.cfg.FrameLen, channel: a.ch}
				c := m.cells[k]
				if c == nil {
					c = &cellTrack{lastASN: -1}
					m.cells[k] = c
				}
				if c.lastASN == m.slotASN {
					continue // one double-booking per slot per cell
				}
				c.lastASN = m.slotASN
				c.slots++
				if c.slots >= m.cfg.ConflictMinSlots && !c.flagged {
					c.flagged = true
					m.violate(Violation{
						Code: CodeScheduleConflict, ASN: m.slotASN,
						Node: a.node, Peer: b.node, Channel: a.ch, ChOff: a.choff,
					})
				}
			}
		}
	}
	m.slotTx = m.slotTx[:0]
}

// Flush implements telemetry.Tracer.
func (m *Monitor) Flush() error { return nil }

// Poll runs the structural checks against one probed snapshot and drives
// the watchdog. Attach schedules it on the simulator's event queue;
// offline replays may call it directly.
func (m *Monitor) Poll(asn sim.ASN, states []NodeState) {
	now := int64(asn)
	for i := range states {
		st := &states[i]
		t := m.track(st.ID)
		if !st.Alive {
			// Dead radios are the chaos engine's business, not a protocol
			// defect; the next live episode starts fresh.
			t.resetStructural()
			continue
		}
		joined := st.Synced && (st.Parent != 0 || st.IsAP)
		if joined {
			t.everJoined = true
		}
		m.checkOrphan(now, st, t, joined)
		m.checkDesync(now, st, t)
		m.checkBackup(now, st, t, joined)
		m.checkQueue(now, st, t)
		m.heal(now, st, t)
	}
	m.checkLoops(now, states)
}

func (m *Monitor) checkOrphan(now int64, st *NodeState, t *nodeTrack, joined bool) {
	if st.IsAP || !t.everJoined {
		return
	}
	if joined {
		t.orphanSince, t.orphanFlag = -1, false
		return
	}
	if t.orphanSince < 0 {
		t.orphanSince = now
	}
	if !t.orphanFlag && now-t.orphanSince > m.cfg.OrphanGrace {
		t.orphanFlag = true
		m.violate(Violation{Code: CodeOrphan, ASN: now, Node: st.ID})
	}
}

func (m *Monitor) checkDesync(now int64, st *NodeState, t *nodeTrack) {
	if st.IsAP || !st.Synced || !t.everJoined {
		t.desyncFlag = false
		return
	}
	if now-int64(st.LastRx) <= m.cfg.DesyncGuard {
		t.desyncFlag = false
		return
	}
	if !t.desyncFlag {
		t.desyncFlag = true
		m.violate(Violation{Code: CodeDesync, ASN: now, Node: st.ID})
	}
}

func (m *Monitor) checkBackup(now int64, st *NodeState, t *nodeTrack, joined bool) {
	if !m.cfg.RequireBackup || st.IsAP || !joined {
		t.backupSince, t.backupFlag = -1, false
		return
	}
	if st.Backup != 0 {
		t.backupSince, t.backupFlag = -1, false
		return
	}
	if t.backupSince < 0 {
		t.backupSince = now
	}
	if !t.backupFlag && now-t.backupSince > m.cfg.BackupGrace {
		t.backupFlag = true
		m.violate(Violation{Code: CodeSingleParent, ASN: now, Node: st.ID, Peer: st.Parent})
	}
}

func (m *Monitor) checkQueue(now int64, st *NodeState, t *nodeTrack) {
	if st.Queue < m.cfg.QueueHighWater {
		t.qhighSince, t.qhighFlag = -1, false
		return
	}
	if t.qhighSince < 0 {
		t.qhighSince = now
	}
	if !t.qhighFlag && now-t.qhighSince > m.cfg.QueueGrace {
		t.qhighFlag = true
		m.violate(Violation{Code: CodeQueueStuck, ASN: now, Node: st.ID, Peer: t.consecPeer})
	}
}

// heal is the watchdog: a node sitting in a flagged orphan or desync
// episode is handed to the Heal hook, with exponentially backed-off
// retries so a node that cannot rejoin (jammed, partitioned) does not
// thrash through endless reboots.
func (m *Monitor) heal(now int64, st *NodeState, t *nodeTrack) {
	if !(t.orphanFlag || t.desyncFlag) {
		// Healthy again: the next episode backs off from scratch.
		t.healAttempts, t.healNextASN = 0, 0
		return
	}
	if m.cfg.Heal == nil || st.IsAP {
		return
	}
	if now < t.healNextASN {
		return
	}
	trigger := CodeOrphan
	if t.desyncFlag {
		trigger = CodeDesync
	}
	t.healAttempts++
	backoff := m.cfg.HealBackoff << (t.healAttempts - 1)
	if backoff > m.cfg.HealBackoffCap || backoff <= 0 {
		backoff = m.cfg.HealBackoffCap
	}
	t.healNextASN = now + backoff
	m.repairs = append(m.repairs, Repair{
		ASN: now, Node: st.ID, Attempt: t.healAttempts, Trigger: trigger,
	})
	if m.cfg.Emit != nil {
		m.cfg.Emit.Record(telemetry.Event{
			ASN: now, Type: telemetry.EvRepair, Node: st.ID,
			Attempt: uint16(t.healAttempts), Code: uint8(trigger),
		})
	}
	m.cfg.Heal(st.ID, sim.ASN(now))
}

// checkLoops walks best-parent pointers over the snapshot and flags every
// node on a cycle that survives LoopConfirmPolls consecutive probes.
func (m *Monitor) checkLoops(now int64, states []NodeState) {
	parent := make(map[topology.NodeID]topology.NodeID, len(states))
	for i := range states {
		st := &states[i]
		if st.Alive && !st.IsAP && st.Parent != 0 {
			parent[st.ID] = st.Parent
		}
	}
	// color: 0 unvisited, 1 on the current walk, 2 finished.
	color := make(map[topology.NodeID]uint8, len(parent))
	inCycle := make(map[topology.NodeID]bool)
	for i := range states {
		start := states[i].ID
		if color[start] != 0 {
			continue
		}
		var path []topology.NodeID
		cur := start
		for {
			if _, ok := parent[cur]; !ok || color[cur] == 2 {
				break
			}
			if color[cur] == 1 {
				// Found a cycle: everything from cur's first occurrence on.
				for k := len(path) - 1; k >= 0; k-- {
					inCycle[path[k]] = true
					if path[k] == cur {
						break
					}
				}
				break
			}
			color[cur] = 1
			path = append(path, cur)
			cur = parent[cur]
		}
		for _, id := range path {
			color[id] = 2
		}
	}
	for i := range states {
		st := &states[i]
		t := m.track(st.ID)
		if !inCycle[st.ID] {
			t.loopPolls, t.loopFlag = 0, false
			continue
		}
		t.loopPolls++
		if t.loopPolls >= m.cfg.LoopConfirmPolls && !t.loopFlag {
			t.loopFlag = true
			m.violate(Violation{Code: CodeRoutingLoop, ASN: now, Node: st.ID, Peer: st.Parent})
		}
	}
}

// Violations returns every violation detected so far, in detection order.
func (m *Monitor) Violations() []Violation { return m.violations }

// Repairs returns every watchdog action taken so far.
func (m *Monitor) Repairs() []Repair { return m.repairs }

// Report aggregates the run (callable any time; it folds from scratch).
// The final slot's conflict batch is closed first.
func (m *Monitor) Report() Report {
	m.checkSlotConflicts()
	return buildReport(m.violations, m.repairs, m.recViol, m.recRep)
}

// Err is strict mode: nil when the run is invariant-clean, an error
// naming the violated invariants otherwise.
func (m *Monitor) Err() error { return m.Report().Err() }

// Attach schedules the monitor's periodic probe on the network's event
// queue, starting one period from now. every <= 0 selects
// DefaultPollSlots. Polling consumes no randomness and lives on the same
// deterministic queue as the rest of the run.
func Attach(nw *sim.Network, m *Monitor, probe Prober, every int64) {
	if nw == nil || m == nil || probe == nil {
		return
	}
	if every <= 0 {
		every = DefaultPollSlots
	}
	var tick func()
	tick = func() {
		m.scratch = probe(m.scratch[:0])
		m.Poll(nw.ASN(), m.scratch)
		nw.At(nw.ASN()+every, tick)
	}
	nw.At(nw.ASN()+every, tick)
}
