package invariant

import (
	"bytes"
	"strings"
	"testing"

	"github.com/digs-net/digs/internal/sim"
	"github.com/digs-net/digs/internal/telemetry"
	"github.com/digs-net/digs/internal/topology"
)

// joinedState is a healthy joined node snapshot at the given slot.
func joinedState(id topology.NodeID, parent topology.NodeID, now int64) NodeState {
	return NodeState{
		ID: id, Alive: true, Synced: true,
		Parent: parent, Backup: parent, LastRx: sim.ASN(now),
	}
}

func codesOf(m *Monitor) []Code {
	var out []Code
	for _, v := range m.Violations() {
		out = append(out, v.Code)
	}
	return out
}

func TestCleanSnapshotIsViolationFree(t *testing.T) {
	m := New(Config{})
	states := []NodeState{
		{ID: 1, IsAP: true, Alive: true, Synced: true},
		joinedState(2, 1, 0),
		joinedState(3, 2, 0),
	}
	for now := int64(0); now <= 10000; now += 500 {
		for i := range states {
			if !states[i].IsAP {
				states[i].LastRx = sim.ASN(now)
			}
		}
		m.Poll(sim.ASN(now), states)
	}
	if err := m.Err(); err != nil {
		t.Fatalf("clean network reported violations: %v", err)
	}
}

// A seeded two-node parent cycle must be flagged as a routing loop — but
// only once it survives the confirmation polls.
func TestDetectsSeededRoutingLoop(t *testing.T) {
	m := New(Config{})
	states := []NodeState{
		{ID: 1, IsAP: true, Alive: true, Synced: true},
		joinedState(2, 3, 0),
		joinedState(3, 2, 0),
		joinedState(4, 1, 0), // healthy bystander
	}
	m.Poll(0, states)
	if len(m.Violations()) != 0 {
		t.Fatalf("loop flagged on first sighting: %v", m.Violations())
	}
	m.Poll(500, states)
	got := codesOf(m)
	if len(got) != 2 || got[0] != CodeRoutingLoop || got[1] != CodeRoutingLoop {
		t.Fatalf("want routing-loop flagged for both cycle members, got %v", m.Violations())
	}
	// The episode reports once, not on every subsequent poll.
	m.Poll(1000, states)
	if len(m.Violations()) != 2 {
		t.Fatalf("loop re-reported while unchanged: %v", m.Violations())
	}
	// Breaking the cycle re-arms the tracker.
	states[1].Parent = 1
	m.Poll(1500, states)
	states[1].Parent = 3
	m.Poll(2000, states)
	m.Poll(2500, states)
	if len(m.Violations()) != 4 {
		t.Fatalf("re-formed loop not re-detected: %v", m.Violations())
	}
}

// Two distinct transmitters hitting the same physical channel in the same
// slot, recurring in the same schedule cell, is a conflicting schedule.
func TestDetectsSeededScheduleConflict(t *testing.T) {
	m := New(Config{FrameLen: 151})
	tx := func(asn int64, node topology.NodeID, ch uint8) {
		m.Record(telemetry.Event{
			ASN: asn, Type: telemetry.EvTxAttempt, Node: node,
			Kind: uint8(sim.KindData), Channel: ch, ChOff: 3,
		})
	}
	// Cell (offset 10, channel 5) double-booked in three slotframes.
	for rep := int64(0); rep < 3; rep++ {
		asn := 10 + rep*151
		tx(asn, 4, 5)
		tx(asn, 7, 5)
		// Same slot, different channel: never a conflict.
		tx(asn, 9, 6)
	}
	rep := m.Report()
	if len(rep.ByCode) != 1 || rep.ByCode[0].Code != CodeScheduleConflict || rep.ByCode[0].Count != 1 {
		t.Fatalf("want exactly one schedule-conflict violation, got %+v", rep.ByCode)
	}
	v := m.Violations()[0]
	if v.Node != 4 || v.Peer != 7 || v.Channel != 5 {
		t.Fatalf("conflict context wrong: %+v", v)
	}
}

// A chance collision (fewer recurrences than ConflictMinSlots) stays quiet.
func TestChanceCollisionBelowThresholdIgnored(t *testing.T) {
	m := New(Config{FrameLen: 151})
	for rep := int64(0); rep < 2; rep++ {
		asn := 10 + rep*151
		for _, n := range []topology.NodeID{4, 7} {
			m.Record(telemetry.Event{
				ASN: asn, Type: telemetry.EvTxAttempt, Node: n,
				Kind: uint8(sim.KindData), Channel: 5,
			})
		}
	}
	if err := m.Err(); err != nil {
		t.Fatalf("two collisions flagged as persistent conflict: %v", err)
	}
}

// A node silent past the guard window while claiming sync is desynced,
// and the watchdog must heal it with exponentially backed-off retries.
func TestDetectsDesyncAndHealsWithBackoff(t *testing.T) {
	var healed []int64
	m := New(Config{
		DesyncGuard: 100,
		Heal:        func(id topology.NodeID, asn sim.ASN) { healed = append(healed, int64(asn)) },
		HealBackoff: 100, HealBackoffCap: 350,
	})
	st := []NodeState{joinedState(2, 1, 0)}
	m.Poll(0, st) // fresh: establishes everJoined
	// The node keeps claiming sync but stops decoding anything.
	for now := int64(50); now <= 900; now += 50 {
		m.Poll(sim.ASN(now), st)
	}
	got := codesOf(m)
	if len(got) != 1 || got[0] != CodeDesync {
		t.Fatalf("want one desync violation, got %v", m.Violations())
	}
	// First heal on the poll after the guard expires (ASN 150), then
	// +100, +200, +350 (capped): 150, 250, 450, 800.
	want := []int64{150, 250, 450, 800}
	if len(healed) != len(want) {
		t.Fatalf("heal ASNs = %v, want %v", healed, want)
	}
	for i := range want {
		if healed[i] != want[i] {
			t.Fatalf("heal ASNs = %v, want %v", healed, want)
		}
	}
	reps := m.Repairs()
	for i, r := range reps {
		if r.Attempt != i+1 || r.Trigger != CodeDesync || r.Node != 2 {
			t.Fatalf("repair %d wrong: %+v", i, r)
		}
	}
	if m.Report().Repairs != len(want) {
		t.Fatalf("report repairs = %d, want %d", m.Report().Repairs, len(want))
	}
}

// A previously joined node that loses its parents beyond the grace window
// is orphaned; rejoining resets the episode and the watchdog backoff.
func TestDetectsOrphanAndResetsOnRejoin(t *testing.T) {
	var healed int
	m := New(Config{
		OrphanGrace: 100,
		Heal:        func(topology.NodeID, sim.ASN) { healed++ },
		HealBackoff: 1000, HealBackoffCap: 4000,
	})
	joined := []NodeState{joinedState(2, 1, 0)}
	orphan := []NodeState{{ID: 2, Alive: true, Synced: true, LastRx: 0}}
	m.Poll(0, joined)
	m.Poll(50, orphan)
	if len(m.Violations()) != 0 {
		t.Fatalf("orphan flagged inside grace window: %v", m.Violations())
	}
	m.Poll(200, orphan)
	got := codesOf(m)
	if len(got) != 1 || got[0] != CodeOrphan {
		t.Fatalf("want one orphan violation, got %v", m.Violations())
	}
	if healed != 1 {
		t.Fatalf("watchdog ran %d times, want 1", healed)
	}
	// Rejoined: episode closed; a later orphan episode starts from scratch.
	joined[0].LastRx = 300
	m.Poll(300, joined)
	m.Poll(350, orphan)
	m.Poll(500, orphan)
	if len(m.Violations()) != 2 {
		t.Fatalf("second orphan episode not detected: %v", m.Violations())
	}
	if healed != 2 {
		t.Fatalf("watchdog backoff not reset on rejoin: %d heals", healed)
	}
}

// A dead radio is the fault injector's doing, not a protocol defect.
func TestDeadNodesExemptFromChecks(t *testing.T) {
	m := New(Config{OrphanGrace: 100, DesyncGuard: 100})
	m.Poll(0, []NodeState{joinedState(2, 1, 0)})
	dead := []NodeState{{ID: 2, Alive: false}}
	for now := int64(50); now <= 1000; now += 50 {
		m.Poll(sim.ASN(now), dead)
	}
	if err := m.Err(); err != nil {
		t.Fatalf("dead node flagged: %v", err)
	}
}

// The same sink delivering one packet twice means duplicate suppression
// failed; a second sink delivering it is route redundancy working.
func TestDetectsSameSinkDupDeliveryOnly(t *testing.T) {
	m := New(Config{})
	del := func(asn int64, node topology.NodeID, seq uint16) {
		m.Record(telemetry.Event{
			ASN: asn, Type: telemetry.EvDelivered, Node: node,
			Origin: 9, Flow: 1, Seq: seq,
		})
	}
	del(100, 1, 7)
	del(105, 2, 7) // second AP: fine
	del(110, 1, 8) // next packet: fine
	if len(m.Violations()) != 0 {
		t.Fatalf("legit deliveries flagged: %v", m.Violations())
	}
	del(120, 1, 7) // same sink, same packet again
	got := codesOf(m)
	if len(got) != 1 || got[0] != CodeDupDelivery {
		t.Fatalf("want one dup-delivery violation, got %v", m.Violations())
	}
}

// A flow generating without delivering for the starvation window is
// starved; one delivery resets the episode.
func TestDetectsFlowStarvation(t *testing.T) {
	m := New(Config{StarveWindow: 1000})
	gen := func(asn int64, seq uint16) {
		m.Record(telemetry.Event{
			ASN: asn, Type: telemetry.EvGenerated, Origin: 5, Flow: 2, Seq: seq,
		})
	}
	gen(0, 1)
	gen(500, 2)
	m.Record(telemetry.Event{ASN: 600, Type: telemetry.EvDelivered, Node: 1, Origin: 5, Flow: 2, Seq: 1})
	gen(1200, 3) // window restarts at 1200 after the delivery
	if len(m.Violations()) != 0 {
		t.Fatalf("delivering flow flagged: %v", m.Violations())
	}
	gen(1700, 4)
	gen(2300, 5) // 2300-1200 > 1000 with nothing delivered since
	got := codesOf(m)
	if len(got) != 1 || got[0] != CodeFlowStarved {
		t.Fatalf("want one flow-starved violation, got %v", m.Violations())
	}
	if v := m.Violations()[0]; v.Origin != 5 || v.Flow != 2 {
		t.Fatalf("starvation context wrong: %+v", v)
	}
}

// A head-of-line packet failing past the stuck threshold flags the queue.
func TestDetectsHeadOfLineStuckQueue(t *testing.T) {
	m := New(Config{StuckTxLimit: 5})
	for i := int64(0); i < 4; i++ {
		m.Record(telemetry.Event{
			ASN: i * 151, Type: telemetry.EvTxAttempt, Node: 3, Peer: 8,
			Kind: uint8(sim.KindData),
		})
	}
	// An ack resets the streak.
	m.Record(telemetry.Event{
		ASN: 4 * 151, Type: telemetry.EvTxAttempt, Node: 3, Peer: 8,
		Kind: uint8(sim.KindData), Acked: true,
	})
	for i := int64(5); i < 10; i++ {
		m.Record(telemetry.Event{
			ASN: i * 151, Type: telemetry.EvTxAttempt, Node: 3, Peer: 8,
			Kind: uint8(sim.KindData),
		})
	}
	got := codesOf(m)
	if len(got) != 1 || got[0] != CodeQueueStuck {
		t.Fatalf("want one queue-stuck violation, got %v", m.Violations())
	}
	if v := m.Violations()[0]; v.Node != 3 || v.Peer != 8 {
		t.Fatalf("stuck context wrong: %+v", v)
	}
}

// A queue pinned at the high-water mark past the grace window is growing
// without bound.
func TestDetectsSustainedHighQueue(t *testing.T) {
	m := New(Config{QueueHighWater: 12, QueueGrace: 100})
	st := joinedState(2, 1, 0)
	st.Queue = 14
	m.Poll(0, []NodeState{st})
	m.Poll(50, []NodeState{st})
	if len(m.Violations()) != 0 {
		t.Fatalf("high queue flagged inside grace: %v", m.Violations())
	}
	st.LastRx = 200
	m.Poll(200, []NodeState{st})
	got := codesOf(m)
	if len(got) != 1 || got[0] != CodeQueueStuck {
		t.Fatalf("want one queue violation, got %v", m.Violations())
	}
	// Draining clears the episode.
	st.Queue = 2
	st.LastRx = 300
	m.Poll(300, []NodeState{st})
	st.Queue = 14
	st.LastRx = 400
	m.Poll(400, []NodeState{st})
	if len(m.Violations()) != 1 {
		t.Fatalf("drained queue did not re-arm: %v", m.Violations())
	}
}

// The single-parent check is opt-in and respects the grace window.
func TestSingleParentCheckOptIn(t *testing.T) {
	single := joinedState(2, 1, 0)
	single.Backup = 0

	m := New(Config{})
	m.Poll(0, []NodeState{single})
	single.LastRx = 100000
	m.Poll(100000, []NodeState{single})
	if err := m.Err(); err != nil {
		t.Fatalf("single parent flagged without RequireBackup: %v", err)
	}

	m = New(Config{RequireBackup: true, BackupGrace: 100})
	m.Poll(0, []NodeState{single})
	single.LastRx = 200
	m.Poll(200, []NodeState{single})
	got := codesOf(m)
	if len(got) != 1 || got[0] != CodeSingleParent {
		t.Fatalf("want one single-parent violation, got %v", m.Violations())
	}
}

// Violations must go out as schema events with the code attached, and a
// replayed trace's violation/repair events must be counted separately.
func TestEmitsTelemetryAndCountsReplayedEvents(t *testing.T) {
	var buf bytes.Buffer
	sink := telemetry.NewJSONL(&buf)
	m := New(Config{Emit: sink, OrphanGrace: 100})
	m.Poll(0, []NodeState{joinedState(2, 1, 0)})
	orphan := NodeState{ID: 2, Alive: true, Synced: false}
	m.Poll(200, []NodeState{orphan})
	m.Poll(350, []NodeState{orphan})
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"ev":"violation"`) {
		t.Fatalf("no violation event emitted:\n%s", buf.String())
	}
	var seen []telemetry.Event
	if err := telemetry.Scan(bytes.NewReader(buf.Bytes()), func(ev telemetry.Event) error {
		seen = append(seen, ev)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 1 || seen[0].Code != uint8(CodeOrphan) || seen[0].Node != 2 {
		t.Fatalf("emitted events wrong: %+v", seen)
	}

	// Replay: feed the emitted events back through a fresh monitor.
	replay := New(Config{})
	for _, ev := range seen {
		replay.Record(ev)
	}
	rep := replay.Report()
	if rep.RecordedViolations != 1 || rep.Total != 0 {
		t.Fatalf("replay counts wrong: %+v", rep)
	}
	if rep.Err() == nil {
		t.Fatal("strict mode ignored replayed violations")
	}
}

// Report must aggregate per code with worst-first offenders and a stable
// strict-mode error.
func TestReportAggregation(t *testing.T) {
	m := New(Config{})
	m.violations = []Violation{
		{Code: CodeOrphan, ASN: 900, Node: 5},
		{Code: CodeOrphan, ASN: 400, Node: 7},
		{Code: CodeOrphan, ASN: 700, Node: 7},
		{Code: CodeFlowStarved, ASN: 1200, Origin: 9, Flow: 3},
	}
	rep := m.Report()
	if rep.Total != 4 || len(rep.ByCode) != 2 {
		t.Fatalf("report shape wrong: %+v", rep)
	}
	orphans := rep.ByCode[0]
	if orphans.Code != CodeOrphan || orphans.Count != 3 || orphans.FirstASN != 400 {
		t.Fatalf("orphan stats wrong: %+v", orphans)
	}
	if len(orphans.Offenders) != 2 || orphans.Offenders[0] != (Offender{Node: 7, Count: 2}) {
		t.Fatalf("offenders not worst-first: %+v", orphans.Offenders)
	}
	if rep.ByCode[1].Offenders[0].Node != 9 {
		t.Fatalf("flow violation not attributed to origin: %+v", rep.ByCode[1])
	}
	err := rep.Err()
	if err == nil || !strings.Contains(err.Error(), "orphan=3") {
		t.Fatalf("strict error unhelpful: %v", err)
	}
}

// Attach must poll on the simulator's event queue at the chosen period.
func TestAttachPollsPeriodically(t *testing.T) {
	nw := sim.NewNetwork(topology.HalfTestbedA(), 1)
	m := New(Config{})
	var polls []int64
	probe := func(states []NodeState) []NodeState {
		polls = append(polls, int64(nw.ASN()))
		return append(states, joinedState(2, 1, int64(nw.ASN())))
	}
	Attach(nw, m, probe, 250)
	nw.Run(1000)
	want := []int64{250, 500, 750}
	if len(polls) != len(want) {
		t.Fatalf("polls at %v, want %v", polls, want)
	}
	for i := range want {
		if polls[i] != want[i] {
			t.Fatalf("polls at %v, want %v", polls, want)
		}
	}
	if err := m.Err(); err != nil {
		t.Fatalf("healthy probed node flagged: %v", err)
	}
}
