// Package campaign fans independent simulation runs out over a bounded
// worker pool. Every figure of the paper's evaluation is a campaign of
// dozens of mutually independent simulator instances (repetitions x flow
// sets x jammer counts x protocols), each owning its own topology,
// network and seeded RNG — an embarrassingly parallel workload.
//
// Determinism is the contract: a job's result may depend only on its
// index (each job derives its own RNG seed from the campaign seed and its
// index), and Map returns results in index order. A campaign therefore
// produces bit-identical output whether it runs on one worker or sixteen,
// and regardless of how the scheduler interleaves the workers.
package campaign

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// PanicError reports a job function that panicked. The campaign recovers
// it instead of letting one bad job kill the whole process, so callers can
// say which job (index, and whatever the caller knows about that index —
// protocol, repetition, jammer count) blew up rather than surfacing a bare
// stack trace with no campaign context.
type PanicError struct {
	// Job is the index of the job that panicked.
	Job int
	// Value is the value passed to panic.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("campaign job %d panicked: %v\n%s", e.Job, e.Value, e.Stack)
}

// runJob invokes one job, converting a panic into a *PanicError.
func runJob[T any](job func(i int) (T, error), i int) (v T, err error) {
	defer func() {
		if r := recover(); r != nil {
			buf := make([]byte, 64<<10)
			buf = buf[:runtime.Stack(buf, false)]
			err = &PanicError{Job: i, Value: r, Stack: buf}
		}
	}()
	return job(i)
}

// defaultWorkers overrides the fallback worker bound when positive; see
// SetDefaultWorkers.
var defaultWorkers atomic.Int32

// DefaultWorkers returns the process-wide default worker bound: the last
// positive value passed to SetDefaultWorkers, or GOMAXPROCS.
func DefaultWorkers() int {
	if n := defaultWorkers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// SetDefaultWorkers sets the process-wide default worker bound used by
// runners constructed with New(0). Passing n <= 0 resets the default to
// GOMAXPROCS. The command-line binaries wire their -parallel flag here.
func SetDefaultWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int32(n))
}

// Runner executes independent jobs over a bounded worker pool.
type Runner struct {
	workers int
}

// New returns a runner bounded to the given number of concurrent workers.
// workers <= 0 defers to DefaultWorkers at execution time, so a runner
// built from an unset option picks up the process-wide -parallel setting.
func New(workers int) *Runner {
	if workers < 0 {
		workers = 0
	}
	return &Runner{workers: workers}
}

// Workers returns the effective worker bound. A nil runner behaves like
// New(0).
func (r *Runner) Workers() int {
	if r == nil || r.workers <= 0 {
		return DefaultWorkers()
	}
	return r.workers
}

// Map runs jobs 0..n-1 over the runner's worker pool and returns their
// results in index order. Job functions must be self-contained: they may
// not share mutable state, so that scheduling order cannot influence any
// result (each simulation run owns its network and RNG).
//
// All jobs are attempted even when one fails; on failure Map returns the
// error of the lowest-indexed failing job, matching what a sequential
// loop with an early return would have surfaced first. A panicking job is
// recovered and surfaced as a *PanicError carrying the job index and the
// stack, so one bad run cannot kill a whole campaign without attribution.
func Map[T any](r *Runner, n int, job func(i int) (T, error)) ([]T, error) {
	return MapCtx(context.Background(), r, n, job)
}

// MapCtx is Map with cancellation: once ctx is done, no further queued
// job starts (jobs already executing run to completion — the simulator
// has no preemption points, so "cancel" means drain, not kill) and MapCtx
// returns ctx.Err(). A long-running service can thereby shut down a
// campaign cleanly: in-flight work finishes, the rest of the queue never
// runs. A job error still wins over the cancellation error when both
// occur, preserving Map's lowest-failing-index contract for the jobs that
// did run.
func MapCtx[T any](ctx context.Context, r *Runner, n int, job func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, ctx.Err()
	}
	results := make([]T, n)
	workers := r.Workers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		// Inline sequential path: no goroutines, stop at the first error
		// exactly like the pre-campaign loops did.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			v, err := runJob(job, i)
			if err != nil {
				return nil, err
			}
			results[i] = v
		}
		return results, nil
	}

	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				results[i], errs[i] = runJob(job, i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// Seed derives a per-run RNG seed from a campaign base seed and a run
// index with a SplitMix64 finalizer, so neighbouring runs get decorrelated
// generator states while the derivation stays a pure function of
// (base, run) — the property the parallel runner's determinism rests on.
func Seed(base int64, run int) int64 {
	z := uint64(base) + (uint64(run)+1)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}
