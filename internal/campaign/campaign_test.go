package campaign

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrdersResultsByIndex(t *testing.T) {
	r := New(8)
	got, err := Map(r, 100, func(i int) (int, error) {
		// Finish out of order on purpose.
		if i%7 == 0 {
			time.Sleep(time.Millisecond)
		}
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("got %d results, want 100", len(got))
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("result[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	var active, peak atomic.Int32
	r := New(workers)
	_, err := Map(r, 24, func(i int) (struct{}, error) {
		cur := active.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		active.Add(-1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent jobs, bound is %d", p, workers)
	}
}

func TestMapReturnsLowestIndexError(t *testing.T) {
	wantErr := errors.New("boom-3")
	r := New(4)
	_, err := Map(r, 10, func(i int) (int, error) {
		switch i {
		case 3:
			return 0, wantErr
		case 7:
			return 0, errors.New("boom-7")
		}
		return i, nil
	})
	if err != wantErr {
		t.Fatalf("err = %v, want %v (lowest failing index)", err, wantErr)
	}
}

func TestMapSequentialStopsAtFirstError(t *testing.T) {
	var ran atomic.Int32
	r := New(1)
	_, err := Map(r, 10, func(i int) (int, error) {
		ran.Add(1)
		if i == 2 {
			return 0, errors.New("stop")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if ran.Load() != 3 {
		t.Fatalf("sequential path ran %d jobs after an error at index 2, want 3", ran.Load())
	}
}

func TestMapParallelMatchesSequential(t *testing.T) {
	job := func(i int) (string, error) {
		// A pure function of the index, as the determinism contract
		// requires of real simulation jobs.
		return fmt.Sprintf("run-%d-seed-%d", i, Seed(42, i)), nil
	}
	seq, err := Map(New(1), 50, job)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Map(New(16), 50, job)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("result %d differs: sequential %q vs parallel %q", i, seq[i], par[i])
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map[int](New(4), 0, func(int) (int, error) { t.Fatal("job ran"); return 0, nil })
	if err != nil || got != nil {
		t.Fatalf("empty map: %v, %v", got, err)
	}
}

func TestWorkersDefaults(t *testing.T) {
	defer SetDefaultWorkers(0)
	if w := New(0).Workers(); w != runtime.GOMAXPROCS(0) {
		t.Fatalf("unset runner workers = %d, want GOMAXPROCS %d", w, runtime.GOMAXPROCS(0))
	}
	SetDefaultWorkers(5)
	if w := New(0).Workers(); w != 5 {
		t.Fatalf("after SetDefaultWorkers(5): %d", w)
	}
	if w := New(2).Workers(); w != 2 {
		t.Fatalf("explicit runner ignores its own bound: %d", w)
	}
	SetDefaultWorkers(-3)
	if w := New(0).Workers(); w != runtime.GOMAXPROCS(0) {
		t.Fatalf("negative reset: %d", w)
	}
	var nilRunner *Runner
	if w := nilRunner.Workers(); w != runtime.GOMAXPROCS(0) {
		t.Fatalf("nil runner workers = %d", w)
	}
}

func TestSeedDerivation(t *testing.T) {
	if Seed(1, 0) != Seed(1, 0) {
		t.Fatal("Seed is not deterministic")
	}
	seen := map[int64]bool{}
	for base := int64(0); base < 4; base++ {
		for run := 0; run < 64; run++ {
			s := Seed(base, run)
			if seen[s] {
				t.Fatalf("seed collision at base=%d run=%d", base, run)
			}
			seen[s] = true
		}
	}
}

// TestMapRecoversPanics checks a panicking job surfaces as a *PanicError
// carrying the job index and stack, on both the sequential and the
// parallel path, and that on the parallel path the other jobs still run.
func TestMapRecoversPanics(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var ran [8]bool
		_, err := Map(New(workers), 8, func(i int) (int, error) {
			ran[i] = true
			if i == 3 {
				panic("kaboom")
			}
			return i, nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *PanicError", workers, err)
		}
		if pe.Job != 3 {
			t.Fatalf("workers=%d: panic attributed to job %d, want 3", workers, pe.Job)
		}
		if pe.Value != "kaboom" {
			t.Fatalf("workers=%d: panic value = %v", workers, pe.Value)
		}
		if !strings.Contains(string(pe.Stack), "campaign_test.go") {
			t.Fatalf("workers=%d: stack does not point at the panicking job:\n%s", workers, pe.Stack)
		}
		if !strings.Contains(pe.Error(), "job 3 panicked: kaboom") {
			t.Fatalf("workers=%d: Error() = %q", workers, pe.Error())
		}
		if workers > 1 {
			// The pool must survive the panic and finish the other jobs.
			for i, r := range ran {
				if !r {
					t.Fatalf("workers=%d: job %d never ran after the panic", workers, i)
				}
			}
		}
	}
}

// TestMapReturnsLowestFailingJob pins the error-selection contract when
// panics and plain errors mix: the lowest-indexed failure wins.
func TestMapReturnsLowestFailingJob(t *testing.T) {
	boom := errors.New("boom")
	_, err := Map(New(4), 6, func(i int) (int, error) {
		switch i {
		case 2:
			return 0, boom
		case 4:
			panic("later")
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the job-2 error (lowest index)", err)
	}
}

// TestMapCtxCancelSkipsQueuedJobs proves the drain semantics: after
// cancellation no queued job starts, jobs already in flight complete, and
// MapCtx surfaces ctx.Err().
func TestMapCtxCancelSkipsQueuedJobs(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		const n = 64
		_, err := MapCtx(ctx, New(workers), n, func(i int) (int, error) {
			ran.Add(1)
			if ran.Load() >= int64(workers) {
				cancel() // every worker has a job in flight: cancel now
			}
			time.Sleep(time.Millisecond)
			return i, nil
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		// In-flight jobs (at most one per worker, plus the races that
		// claimed an index before observing the cancel) finish; the bulk
		// of the queue never runs.
		if got := ran.Load(); got >= n {
			t.Fatalf("workers=%d: all %d jobs ran despite cancellation", workers, got)
		}
	}
}

// TestMapCtxJobErrorWinsOverCancel pins the error-selection contract: a
// job failure that happened before the cancel is what the caller sees.
func TestMapCtxJobErrorWinsOverCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	boom := errors.New("boom")
	_, err := MapCtx(ctx, New(2), 8, func(i int) (int, error) {
		if i == 1 {
			cancel()
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want job error", err)
	}
}

// TestMapCtxBackgroundEquivalentToMap: an un-cancelled context changes
// nothing about Map's results.
func TestMapCtxBackgroundEquivalentToMap(t *testing.T) {
	got, err := MapCtx(context.Background(), New(4), 10, func(i int) (int, error) { return i * 2, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*2 {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}
