// Package chaos is the declarative fault-plan engine: it composes every
// failure mode the simulator supports — node crashes and reboots (with
// optional routing-state loss), duty-cycled and channel-hopping jammers,
// correlated link fades, access-point failover, network partitions and
// clock drift on the slot timer — into one schedulable scenario.
//
// A Plan is a seeded list of Entries, each a fault kind with targets,
// start offset, duration and optional period, loadable from JSON. Apply
// wires the plan into a sim.Network before the run starts; every fault
// draws its randomness from stateless hashes of (seed, slot), never from
// the network's RNG, so a plan perturbs nothing but what it names and
// runs bit-identically under the parallel campaign runner.
//
// The engine reports fault lifecycles through the telemetry stream
// (fault_start / fault_end / reconverged events); the Recovery sink folds
// that stream into per-fault time-to-reconverge and packets-lost-during-
// repair, which is what cmd/digs-chaos prints.
package chaos

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"github.com/digs-net/digs/internal/sim"
	"github.com/digs-net/digs/internal/topology"
)

// Kind names a fault kind in a plan entry.
type Kind string

// Fault kinds.
const (
	// KindNodeCrash kills the target nodes' radios; with a duration they
	// reboot when it ends (see Entry.LoseState).
	KindNodeCrash Kind = "node-crash"
	// KindAPFailover crashes an access point (the topology's first AP
	// when no target is given), forcing the network onto the others.
	KindAPFailover Kind = "ap-failover"
	// KindJamWiFi places a JamLab-style WiFi-streaming jammer at the
	// target node (Entry.WiFiChannel selects 1, 6 or 11). The mote itself
	// keeps running; add a node-crash entry to model a repurposed mote.
	KindJamWiFi Kind = "jam-wifi"
	// KindJamBluetooth places a channel-hopping Bluetooth jammer at the
	// target node.
	KindJamBluetooth Kind = "jam-bluetooth"
	// KindLinkFade weakens every link incident on the target region by
	// Entry.FadeDB for the fault window (a correlated fade: machinery,
	// a door, a forklift).
	KindLinkFade Kind = "link-fade"
	// KindPartition cuts the target island off from the rest of the
	// network (an extreme correlated fade) for the fault window.
	KindPartition Kind = "partition"
	// KindClockDrift desynchronises the targets' slot timers: each slot
	// independently misses with a probability derived from
	// Entry.DriftPPM, modelling guard-time overruns between
	// resynchronisations.
	KindClockDrift Kind = "clock-drift"
)

// Duration is a time.Duration that marshals to JSON as a string ("2m30s");
// plain numbers are accepted on input as seconds.
type Duration time.Duration

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var v any
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	switch x := v.(type) {
	case string:
		p, err := time.ParseDuration(x)
		if err != nil {
			return fmt.Errorf("chaos: bad duration %q: %w", x, err)
		}
		*d = Duration(p)
	case float64:
		*d = Duration(time.Duration(x * float64(time.Second)))
	default:
		return fmt.Errorf("chaos: duration must be a string or seconds, got %T", v)
	}
	return nil
}

// Slots converts the duration to whole slots.
func (d Duration) Slots() int64 { return sim.SlotsFor(time.Duration(d)) }

// Entry is one fault in a plan.
type Entry struct {
	Kind Kind `json:"kind"`
	// Targets are the affected nodes. Semantics per kind: the crashed
	// nodes (node-crash, ap-failover), the jammer's position (jam-*,
	// exactly one), the faded region (link-fade), the partitioned island
	// (partition), or the drifting nodes (clock-drift).
	Targets []topology.NodeID `json:"targets,omitempty"`
	// Start offsets the first occurrence from the plan epoch (the slot
	// Apply was called in).
	Start Duration `json:"start"`
	// Duration is how long each occurrence lasts; zero means permanent
	// (no fault_end, no restore).
	Duration Duration `json:"duration,omitempty"`
	// Period, when positive, repeats the fault every Period for Repeat
	// occurrences.
	Period Duration `json:"period,omitempty"`
	// Repeat is the occurrence count for periodic faults (>= 1).
	Repeat int `json:"repeat,omitempty"`
	// Seed overrides the entry's randomness seed; zero derives one from
	// the plan seed and the entry index.
	Seed int64 `json:"seed,omitempty"`
	// WiFiChannel selects the 802.11 channel a jam-wifi entry occupies
	// (1, 6 or 11).
	WiFiChannel int `json:"wifi_channel,omitempty"`
	// FadeDB is the attenuation a link-fade applies (required > 0);
	// partition uses it too, defaulting to a link-killing 200 dB.
	FadeDB float64 `json:"fade_db,omitempty"`
	// DriftPPM is the clock-drift magnitude in parts per million of a
	// free-running 32 kHz crystal (required > 0 for clock-drift).
	DriftPPM float64 `json:"drift_ppm,omitempty"`
	// LoseState makes a crash/failover reboot discard the protocol's
	// routing state (the node rejoins from scratch) instead of resuming
	// from persistent storage.
	LoseState bool `json:"lose_state,omitempty"`
}

// occurrences returns how many times the entry fires.
func (e *Entry) occurrences() int {
	if e.Period <= 0 {
		return 1
	}
	return e.Repeat
}

// Plan is a complete, seeded fault scenario.
type Plan struct {
	Name string `json:"name"`
	// Seed feeds every entry's stateless randomness (jammer duty cycles,
	// drift phases); the same plan and seed reproduce the same faults
	// bit-identically.
	Seed    int64   `json:"seed"`
	Entries []Entry `json:"entries"`
}

// Load decodes a plan from JSON. Unknown fields are rejected so typos in
// hand-written plans fail loudly.
func Load(r io.Reader) (*Plan, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	p := &Plan{}
	if err := dec.Decode(p); err != nil {
		return nil, fmt.Errorf("chaos: decoding plan: %w", err)
	}
	return p, nil
}

// LoadFile reads and decodes a plan file.
func LoadFile(path string) (*Plan, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	p, err := Load(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return p, nil
}

// Validate checks the plan against a topology. Apply calls it; load-time
// callers can run it early for better error messages.
func (p *Plan) Validate(topo *topology.Topology) error {
	for i := range p.Entries {
		if err := p.Entries[i].validate(topo); err != nil {
			return fmt.Errorf("chaos plan %q entry %d (%s): %w", p.Name, i, p.Entries[i].Kind, err)
		}
	}
	return nil
}

func (e *Entry) validate(topo *topology.Topology) error {
	if e.Start < 0 || e.Duration < 0 || e.Period < 0 {
		return fmt.Errorf("negative time field")
	}
	if e.Period > 0 {
		if e.Repeat < 1 {
			return fmt.Errorf("periodic entry needs repeat >= 1")
		}
		if e.Duration <= 0 {
			return fmt.Errorf("periodic entry needs a duration")
		}
		if e.Duration >= e.Period {
			return fmt.Errorf("duration %v must be shorter than period %v",
				time.Duration(e.Duration), time.Duration(e.Period))
		}
	}
	for _, id := range e.Targets {
		if id < 1 || int(id) > topo.N() {
			return fmt.Errorf("target %d outside topology (1..%d)", id, topo.N())
		}
	}
	switch e.Kind {
	case KindNodeCrash:
		if len(e.Targets) == 0 {
			return fmt.Errorf("needs at least one target")
		}
	case KindAPFailover:
		for _, id := range e.Targets {
			if !topo.IsAP(id) {
				return fmt.Errorf("target %d is not an access point", id)
			}
		}
	case KindJamWiFi:
		if len(e.Targets) != 1 {
			return fmt.Errorf("needs exactly one target (the jammer position)")
		}
		switch e.WiFiChannel {
		case 1, 6, 11:
		default:
			return fmt.Errorf("wifi_channel must be 1, 6 or 11 (got %d)", e.WiFiChannel)
		}
	case KindJamBluetooth:
		if len(e.Targets) != 1 {
			return fmt.Errorf("needs exactly one target (the jammer position)")
		}
	case KindLinkFade:
		if len(e.Targets) == 0 {
			return fmt.Errorf("needs at least one target")
		}
		if e.FadeDB <= 0 {
			return fmt.Errorf("needs fade_db > 0")
		}
	case KindPartition:
		if len(e.Targets) == 0 || len(e.Targets) >= topo.N() {
			return fmt.Errorf("island must be a proper non-empty subset of the network")
		}
	case KindClockDrift:
		if len(e.Targets) == 0 {
			return fmt.Errorf("needs at least one target")
		}
		if e.DriftPPM <= 0 {
			return fmt.Errorf("needs drift_ppm > 0")
		}
	default:
		return fmt.Errorf("unknown kind")
	}
	return nil
}

// Horizon returns the offset from the plan epoch at which the last
// scheduled fault boundary lands (permanent faults contribute their start
// slot). Callers size their runs past it, plus whatever recovery tail
// they want to observe.
func (p *Plan) Horizon() time.Duration {
	var h time.Duration
	for i := range p.Entries {
		e := &p.Entries[i]
		last := time.Duration(e.Start) +
			time.Duration(e.Period)*time.Duration(e.occurrences()-1) +
			time.Duration(e.Duration)
		if last > h {
			h = last
		}
	}
	return h
}

// seedFor returns the entry's effective randomness seed.
func (p *Plan) seedFor(idx int) int64 {
	if s := p.Entries[idx].Seed; s != 0 {
		return s
	}
	return p.Seed + int64(idx)*1000003
}

// driftMissProb maps a crystal tolerance in ppm to a per-slot miss
// probability. A TSCH node resynchronises on every frame it hears; between
// hearing opportunities the offset grows by drift, and slots whose
// accumulated offset exceeds the ~1 ms guard time miss their cell. With
// beacon periods of a few seconds, a d-ppm crystal overruns the guard in
// roughly d/550 of slots; the cap keeps a pathological plan from silently
// looking like a crash.
func driftMissProb(ppm float64) float64 {
	p := ppm / 550
	if p > 0.95 {
		p = 0.95
	}
	return p
}
