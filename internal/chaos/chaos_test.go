package chaos

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/digs-net/digs/internal/sim"
	"github.com/digs-net/digs/internal/telemetry"
	"github.com/digs-net/digs/internal/topology"
)

func lineTopology(t *testing.T, n int) *topology.Topology {
	t.Helper()
	topo := &topology.Topology{Name: "line", NumAPs: 1, TxPowerDBm: -15}
	topo.Nodes = append(topo.Nodes, topology.Node{})
	for i := 1; i <= n; i++ {
		topo.Nodes = append(topo.Nodes, topology.Node{
			ID: topology.NodeID(i), X: float64(i) * 5, IsAP: i == 1,
		})
	}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestPlanJSONRoundTrip(t *testing.T) {
	p := &Plan{
		Name: "demo",
		Seed: 7,
		Entries: []Entry{
			{Kind: KindNodeCrash, Targets: []topology.NodeID{4}, Start: Duration(10 * time.Second),
				Duration: Duration(2 * time.Minute), LoseState: true},
			{Kind: KindJamWiFi, Targets: []topology.NodeID{2}, WiFiChannel: 6,
				Start: Duration(30 * time.Second), Duration: Duration(time.Minute),
				Period: Duration(5 * time.Minute), Repeat: 3},
			{Kind: KindClockDrift, Targets: []topology.NodeID{3}, DriftPPM: 300,
				Start: Duration(time.Minute), Duration: Duration(3 * time.Minute)},
		},
	}
	blob, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	// Durations serialise as human-readable strings.
	if !bytes.Contains(blob, []byte(`"2m0s"`)) {
		t.Fatalf("durations not strings: %s", blob)
	}
	got, err := Load(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != p.Name || got.Seed != p.Seed || len(got.Entries) != len(p.Entries) {
		t.Fatalf("round trip lost data: %+v", got)
	}
	if !reflect.DeepEqual(got.Entries, p.Entries) {
		t.Fatalf("entries: got %+v want %+v", got.Entries, p.Entries)
	}
}

func TestLoadNumericSecondsAndUnknownFields(t *testing.T) {
	p, err := Load(strings.NewReader(
		`{"name":"n","seed":1,"entries":[{"kind":"node-crash","targets":[2],"start":5}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if got := time.Duration(p.Entries[0].Start); got != 5*time.Second {
		t.Fatalf("numeric start = %v, want 5s", got)
	}
	if _, err := Load(strings.NewReader(`{"name":"n","entrys":[]}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestValidateRejectsBadEntries(t *testing.T) {
	topo := lineTopology(t, 4)
	bad := []Entry{
		{Kind: KindNodeCrash},                                                               // no targets
		{Kind: KindNodeCrash, Targets: []topology.NodeID{9}},                                // out of range
		{Kind: KindJamWiFi, Targets: []topology.NodeID{2}, WiFiChannel: 3},                  // bad channel
		{Kind: KindLinkFade, Targets: []topology.NodeID{2}},                                 // no fade_db
		{Kind: KindClockDrift, Targets: []topology.NodeID{2}},                               // no ppm
		{Kind: KindAPFailover, Targets: []topology.NodeID{2}},                               // not an AP
		{Kind: Kind("volcano"), Targets: []topology.NodeID{2}},                              // unknown kind
		{Kind: KindPartition, Targets: []topology.NodeID{1, 2, 3, 4}},                       // whole network
		{Kind: KindNodeCrash, Targets: []topology.NodeID{2}, Period: Duration(time.Second)}, // period without repeat
		{Kind: KindNodeCrash, Targets: []topology.NodeID{2}, Period: Duration(time.Second),
			Repeat: 2, Duration: Duration(2 * time.Second)}, // duration >= period
	}
	for i, e := range bad {
		p := &Plan{Name: "bad", Entries: []Entry{e}}
		if err := p.Validate(topo); err == nil {
			t.Errorf("bad entry %d accepted: %+v", i, e)
		}
	}
	good := &Plan{Name: "good", Entries: []Entry{
		{Kind: KindAPFailover, Duration: Duration(time.Second)}, // default target: first AP
		{Kind: KindPartition, Targets: []topology.NodeID{3, 4}},
	}}
	if err := good.Validate(topo); err != nil {
		t.Fatalf("good plan rejected: %v", err)
	}
}

// collectTracer records events for assertions.
type collectTracer struct{ events []telemetry.Event }

func (c *collectTracer) Record(ev telemetry.Event) { c.events = append(c.events, ev) }
func (c *collectTracer) Flush() error              { return nil }

func (c *collectTracer) ofType(t telemetry.EventType) []telemetry.Event {
	var out []telemetry.Event
	for _, ev := range c.events {
		if ev.Type == t {
			out = append(out, ev)
		}
	}
	return out
}

func TestCrashLifecycleAndReboot(t *testing.T) {
	topo := lineTopology(t, 3)
	nw := sim.NewNetwork(topo, 1)
	sink := &collectTracer{}
	var reboots []topology.NodeID
	var rebootASN sim.ASN
	var rebootLose bool
	plan := &Plan{Name: "crash", Seed: 3, Entries: []Entry{{
		Kind:      KindNodeCrash,
		Targets:   []topology.NodeID{2},
		Start:     Duration(time.Second),     // slot 100
		Duration:  Duration(2 * time.Second), // ends slot 300
		LoseState: true,
	}}}
	inj, err := Apply(nw, plan, sink, Hooks{
		Reboot: func(id topology.NodeID, asn sim.ASN, lose bool) {
			reboots = append(reboots, id)
			rebootASN, rebootLose = asn, lose
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Sample the failed flag just inside and outside the window.
	var during, after bool
	nw.At(150, func() { during = nw.Failed(2) })
	nw.At(350, func() { after = nw.Failed(2) })
	nw.Run(2000)

	if !during || after {
		t.Fatalf("failed flag: during=%v after=%v, want true/false", during, after)
	}
	if len(reboots) != 1 || reboots[0] != 2 || rebootASN != 300 || !rebootLose {
		t.Fatalf("reboot hook: ids=%v asn=%d lose=%v", reboots, rebootASN, rebootLose)
	}
	starts := sink.ofType(telemetry.EvFaultStart)
	ends := sink.ofType(telemetry.EvFaultEnd)
	recon := sink.ofType(telemetry.EvReconverged)
	if len(starts) != 1 || starts[0].ASN != 100 || starts[0].Node != 2 ||
		starts[0].Flow != 0 || starts[0].Seq != 0 {
		t.Fatalf("fault_start = %+v", starts)
	}
	if len(ends) != 1 || ends[0].ASN != 300 {
		t.Fatalf("fault_end = %+v", ends)
	}
	// Quiet window: no route changes at all, so reconverged fires at the
	// first poll reaching start+quietSlots (polls align to the start).
	if len(recon) != 1 || recon[0].ASN != 100+quietSlots ||
		recon[0].Flow != 0 || recon[0].Seq != 0 {
		t.Fatalf("reconverged = %+v", recon)
	}
	_ = inj
}

func TestReconvergenceWaitsForRouteQuiescence(t *testing.T) {
	topo := lineTopology(t, 3)
	nw := sim.NewNetwork(topo, 1)
	sink := &collectTracer{}
	plan := &Plan{Name: "crash", Entries: []Entry{{
		Kind: KindNodeCrash, Targets: []topology.NodeID{2}, Start: Duration(time.Second),
	}}}
	inj, err := Apply(nw, plan, sink, Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	// Simulate route churn at slot 500: the quiet window must restart.
	nw.At(500, func() {
		inj.Record(telemetry.Event{ASN: 500, Type: telemetry.EvRouteChange, Node: 3})
	})
	nw.Run(3000)
	recon := sink.ofType(telemetry.EvReconverged)
	if len(recon) != 1 || recon[0].ASN != 500+quietSlots {
		t.Fatalf("reconverged = %+v, want at %d", recon, 500+quietSlots)
	}
}

func TestConvergedHookGates(t *testing.T) {
	topo := lineTopology(t, 3)
	nw := sim.NewNetwork(topo, 1)
	sink := &collectTracer{}
	plan := &Plan{Name: "crash", Entries: []Entry{{
		Kind: KindNodeCrash, Targets: []topology.NodeID{2},
	}}}
	converged := false
	if _, err := Apply(nw, plan, sink, Hooks{Converged: func() bool { return converged }}); err != nil {
		t.Fatal(err)
	}
	nw.At(2500, func() { converged = true })
	nw.Run(4000)
	recon := sink.ofType(telemetry.EvReconverged)
	if len(recon) != 1 || recon[0].ASN < 2500 {
		t.Fatalf("reconverged = %+v, want one event at/after 2500", recon)
	}
}

func TestPeriodicOccurrences(t *testing.T) {
	topo := lineTopology(t, 3)
	nw := sim.NewNetwork(topo, 1)
	sink := &collectTracer{}
	plan := &Plan{Name: "periodic", Entries: []Entry{{
		Kind: KindNodeCrash, Targets: []topology.NodeID{3},
		Start:    Duration(time.Second),
		Duration: Duration(time.Second),
		Period:   Duration(10 * time.Second),
		Repeat:   3,
	}}}
	if _, err := Apply(nw, plan, sink, Hooks{}); err != nil {
		t.Fatal(err)
	}
	nw.Run(4000)
	starts := sink.ofType(telemetry.EvFaultStart)
	if len(starts) != 3 {
		t.Fatalf("got %d fault_starts, want 3", len(starts))
	}
	for k, ev := range starts {
		wantASN := int64(100 + k*1000)
		if ev.ASN != wantASN || int(ev.Seq) != k {
			t.Fatalf("occurrence %d = %+v, want ASN %d", k, ev, wantASN)
		}
	}
	if ends := sink.ofType(telemetry.EvFaultEnd); len(ends) != 3 {
		t.Fatalf("got %d fault_ends, want 3", len(ends))
	}
}

func TestRecoveryReport(t *testing.T) {
	r := NewRecovery()
	feed := []telemetry.Event{
		{ASN: 50, Type: telemetry.EvGenerated, Origin: 5, Flow: 1, Seq: 0, Born: 50},
		{ASN: 80, Type: telemetry.EvDelivered, Origin: 5, Flow: 1, Seq: 0, Born: 50},
		{ASN: 100, Type: telemetry.EvFaultStart, Node: 4, Flow: 0, Seq: 0},
		{ASN: 120, Type: telemetry.EvGenerated, Origin: 5, Flow: 1, Seq: 1, Born: 120},
		{ASN: 150, Type: telemetry.EvDropped, Origin: 5, Flow: 1, Seq: 1,
			Reason: telemetry.ReasonMaxRetries},
		{ASN: 160, Type: telemetry.EvGenerated, Origin: 5, Flow: 1, Seq: 2, Born: 160},
		{ASN: 170, Type: telemetry.EvDropped, Origin: 6, Flow: 1, Seq: 2,
			Reason: telemetry.ReasonDuplicate}, // duplicates never count
		{ASN: 190, Type: telemetry.EvDelivered, Origin: 5, Flow: 1, Seq: 2, Born: 160},
		{ASN: 300, Type: telemetry.EvFaultEnd, Node: 4, Flow: 0, Seq: 0},
		{ASN: 1400, Type: telemetry.EvReconverged, Flow: 0, Seq: 0},
		// After the repair window: not attributed to the fault.
		{ASN: 1500, Type: telemetry.EvGenerated, Origin: 5, Flow: 1, Seq: 3, Born: 1500},
	}
	for _, ev := range feed {
		r.Record(ev)
	}
	reps := r.Report()
	if len(reps) != 1 {
		t.Fatalf("got %d fault reports, want 1", len(reps))
	}
	rep := reps[0]
	if rep.TTRSlots != 1300 {
		t.Fatalf("TTR = %d, want 1300", rep.TTRSlots)
	}
	if rep.StartASN != 100 || rep.EndASN != 300 || rep.ReconASN != 1400 {
		t.Fatalf("window = %+v", rep.FaultWindow)
	}
	if rep.Generated != 2 || rep.Lost != 1 {
		t.Fatalf("generated/lost = %d/%d, want 2/1", rep.Generated, rep.Lost)
	}
	if rep.Drops[telemetry.ReasonMaxRetries] != 1 || len(rep.Drops) != 1 {
		t.Fatalf("drops = %v", rep.Drops)
	}
	if r.Generated() != 4 || r.Lost() != 2 {
		t.Fatalf("totals = %d/%d, want 4 generated, 2 lost", r.Generated(), r.Lost())
	}
}

// A trace ending mid-fault (no fault_end, no reconverged) must still
// yield a report for the fault: TTR -1, the window clamped to the last
// event seen, and losses split into confirmed drops and in-flight
// packets whose fate the truncated trace cannot tell.
func TestRecoveryReportTruncatedMidFault(t *testing.T) {
	r := NewRecovery()
	feed := []telemetry.Event{
		{ASN: 100, Type: telemetry.EvFaultStart, Node: 4, Flow: 2, Seq: 0},
		{ASN: 120, Type: telemetry.EvGenerated, Origin: 5, Flow: 1, Seq: 1, Born: 120},
		{ASN: 150, Type: telemetry.EvDropped, Origin: 5, Flow: 1, Seq: 1,
			Reason: telemetry.ReasonMaxRetries},
		{ASN: 160, Type: telemetry.EvGenerated, Origin: 5, Flow: 1, Seq: 2, Born: 160},
		{ASN: 190, Type: telemetry.EvDelivered, Origin: 5, Flow: 1, Seq: 2, Born: 160},
		{ASN: 200, Type: telemetry.EvViolation, Node: 5, Code: 2},
		{ASN: 220, Type: telemetry.EvGenerated, Origin: 5, Flow: 1, Seq: 3, Born: 220},
		// Trace ends here: seq 3 is still in flight, the fault never closed.
	}
	for _, ev := range feed {
		r.Record(ev)
	}
	reps := r.Report()
	if len(reps) != 1 {
		t.Fatalf("truncated fault dropped from report: %+v", reps)
	}
	rep := reps[0]
	if !rep.Truncated || rep.TTRSlots != -1 || rep.EndASN != -1 || rep.ReconASN != -1 {
		t.Fatalf("truncation not reported: %+v", rep)
	}
	if rep.Generated != 3 || rep.Lost != 1 || rep.InFlight != 1 {
		t.Fatalf("generated/lost/inflight = %d/%d/%d, want 3/1/1",
			rep.Generated, rep.Lost, rep.InFlight)
	}
	if rep.Drops[telemetry.ReasonMaxRetries] != 1 {
		t.Fatalf("drops = %v", rep.Drops)
	}
	if rep.Violations != 1 {
		t.Fatalf("violations in window = %d, want 1", rep.Violations)
	}
}

// A reconverged fault keeps the original loss semantics: everything
// undelivered in the window counts lost, nothing is in flight.
func TestRecoveryReportClosedWindowUnchanged(t *testing.T) {
	r := NewRecovery()
	feed := []telemetry.Event{
		{ASN: 100, Type: telemetry.EvFaultStart, Node: 4},
		{ASN: 120, Type: telemetry.EvGenerated, Origin: 5, Flow: 1, Seq: 1, Born: 120},
		{ASN: 300, Type: telemetry.EvFaultEnd, Node: 4},
		{ASN: 400, Type: telemetry.EvReconverged},
		{ASN: 9000, Type: telemetry.EvGenerated, Origin: 5, Flow: 1, Seq: 9, Born: 9000},
	}
	for _, ev := range feed {
		r.Record(ev)
	}
	rep := r.Report()[0]
	if rep.Truncated || rep.InFlight != 0 || rep.Lost != 1 || rep.Generated != 1 {
		t.Fatalf("closed-window semantics changed: %+v", rep)
	}
}

func TestFig8JammerPlan(t *testing.T) {
	topo := topology.TestbedA()
	p := Fig8JammerPlan(topo, 9)
	if err := p.Validate(topo); err != nil {
		t.Fatal(err)
	}
	if want := 2 * len(topo.SuggestedJammers); len(p.Entries) != want {
		t.Fatalf("entries = %d, want %d", len(p.Entries), want)
	}
	// Every jammer position is both jammed and crashed, permanently.
	for i, at := range topo.SuggestedJammers {
		jam, crash := p.Entries[2*i], p.Entries[2*i+1]
		if jam.Kind != KindJamWiFi || jam.Targets[0] != at || jam.Duration != 0 {
			t.Fatalf("jam entry %d = %+v", i, jam)
		}
		if crash.Kind != KindNodeCrash || crash.Targets[0] != at || crash.Duration != 0 {
			t.Fatalf("crash entry %d = %+v", i, crash)
		}
	}
	// Applying on a fresh network registers without error.
	nw := sim.NewNetwork(topo, 1)
	if _, err := Apply(nw, p, nil, Hooks{}); err != nil {
		t.Fatal(err)
	}
	nw.Run(100)
	for _, at := range topo.SuggestedJammers {
		if !nw.Failed(at) {
			t.Fatalf("jammer position %d not failed", at)
		}
	}
}
