package chaos

import (
	"github.com/digs-net/digs/internal/topology"
)

// fig8WiFiChannels cycles the 802.11 channels the paper's three jammers
// occupy, so together they blanket most of the 2.4 GHz band.
var fig8WiFiChannels = []int{1, 6, 11}

// Fig8JammerPlan is the paper's Figure 8 interference scenario as a chaos
// plan: a JamLab WiFi-streaming jammer at each of the topology's
// suggested jammer positions, on permanently from the plan epoch. The
// motes running JamLab are repurposed, so each jammer position also
// crashes as a network node (matching the physical testbed, where a
// JamLab mote stops participating in the protocol).
func Fig8JammerPlan(topo *topology.Topology, seed int64) *Plan {
	p := &Plan{Name: "fig8-jammers", Seed: seed}
	for j, at := range topo.SuggestedJammers {
		p.Entries = append(p.Entries,
			Entry{
				Kind:        KindJamWiFi,
				Targets:     []topology.NodeID{at},
				WiFiChannel: fig8WiFiChannels[j%len(fig8WiFiChannels)],
				Seed:        seed + int64(j),
			},
			Entry{
				Kind:    KindNodeCrash,
				Targets: []topology.NodeID{at},
			},
		)
	}
	return p
}
