package chaos

import (
	"fmt"

	"github.com/digs-net/digs/internal/interference"
	"github.com/digs-net/digs/internal/sim"
	"github.com/digs-net/digs/internal/telemetry"
	"github.com/digs-net/digs/internal/topology"
)

// partitionFadeDB is the attenuation a partition applies when the plan
// does not override it: enough to kill any testbed link outright.
const partitionFadeDB = 200

// Reconvergence-watch tuning: the injector declares the network
// reconverged once the route-change rate over the trailing quietSlots
// (10 s) window has fallen back to the pre-fault baseline (plus a 25%
// allowance) and the caller's Converged hook agrees; it checks every
// pollSlots. On small settled networks the baseline is zero and this
// degenerates to a strict quiet window; on dense ones, where ETX noise
// reselects backup parents perpetually, it means "no more churn than
// before the fault".
const (
	quietSlots = 1000
	pollSlots  = 100
)

// Hooks are the engine's callbacks into whatever protocol stack runs on
// the network; all fields are optional.
type Hooks struct {
	// Converged, when set, gates reconvergence detection: the injector
	// only declares "reconverged" while it returns true (e.g. every live
	// node has a parent). Route-change quiescence is always required too.
	Converged func() bool
	// Reboot, when set, is called when a crashed node's fault window
	// ends, so the MAC/protocol layer can cold-restart it (see
	// mac.Node.Reboot). Without it the radio comes back with all state
	// intact — fine for stacks the plan never crashes.
	Reboot func(id topology.NodeID, asn sim.ASN, loseState bool)
}

// Injector is an applied plan: it owns the scheduled fault callbacks and
// watches the telemetry stream for reconvergence. It implements
// telemetry.Tracer so callers can chain it after their own sinks —
// installing it on the stack's tracer is what lets it observe route
// changes.
type Injector struct {
	nw    *sim.Network
	plan  *Plan
	emit  telemetry.Tracer
	hooks Hooks

	// recent holds the slots of route-change events inside the trailing
	// quiet window, oldest first (pruned as time advances).
	recent []sim.ASN

	// open holds every fault occurrence awaiting a reconvergence answer;
	// quiescence answers them all at once (the network is only "settled"
	// with respect to all faults thrown at it so far). baseline is the
	// route-change count over the quiet window preceding the first fault
	// of the open batch — the steady-state churn to get back to.
	open     []faultRef
	baseline int
	polling  bool
}

type faultRef struct {
	entry, occ int
	node       topology.NodeID
	start      sim.ASN
}

var _ telemetry.Tracer = (*Injector)(nil)

// Apply validates the plan against the network's topology and schedules
// every fault occurrence, relative to the network's current slot (the
// plan epoch). The returned Injector must be installed in the stack's
// tracer chain for reconvergence detection; with a nil emit the engine
// injects faults but stays silent (no lifecycle events, no watch).
//
// Fault injection consumes nothing from the network's RNG: all fault
// randomness is stateless hashing, so adding a plan does not perturb the
// unfaulted parts of a seeded run.
func Apply(nw *sim.Network, p *Plan, emit telemetry.Tracer, hooks Hooks) (*Injector, error) {
	topo := nw.Topology()
	if err := p.Validate(topo); err != nil {
		return nil, err
	}
	inj := &Injector{nw: nw, plan: p, emit: emit, hooks: hooks}
	base := nw.ASN()
	for i := range p.Entries {
		e := &p.Entries[i]
		for occ := 0; occ < e.occurrences(); occ++ {
			start := base + e.Start.Slots() + int64(occ)*e.Period.Slots()
			if err := inj.schedule(i, occ, e, start); err != nil {
				return nil, fmt.Errorf("chaos plan %q entry %d: %w", p.Name, i, err)
			}
		}
	}
	return inj, nil
}

// schedule wires one occurrence of one entry: interferers are registered
// up front behind slot windows; stateful faults (crashes, fades, drift)
// flip at their boundary slots via the network's event queue.
func (inj *Injector) schedule(idx, occ int, e *Entry, start sim.ASN) error {
	stop := sim.ASN(0)
	if e.Duration > 0 {
		stop = start + e.Duration.Slots()
	}
	seed := inj.plan.seedFor(idx)
	topo := inj.nw.Topology()

	switch e.Kind {
	case KindJamWiFi:
		inj.nw.AddInterferer(&interference.Window{
			Source:   interference.NewWiFiJammer(topo, e.Targets[0], e.WiFiChannel, seed+int64(occ)),
			StartASN: start, StopASN: stop,
		})
	case KindJamBluetooth:
		inj.nw.AddInterferer(&interference.Window{
			Source:   interference.NewBluetoothJammer(topo, e.Targets[0], seed+int64(occ)),
			StartASN: start, StopASN: stop,
		})
	case KindNodeCrash, KindAPFailover:
		targets := e.Targets
		if e.Kind == KindAPFailover && len(targets) == 0 {
			aps := topo.APs()
			if len(aps) == 0 {
				return fmt.Errorf("topology has no access points")
			}
			targets = aps[:1]
		}
		loseState := e.LoseState
		inj.nw.At(start, func() {
			for _, id := range targets {
				inj.nw.Fail(id)
			}
		})
		if stop != 0 {
			inj.nw.At(stop, func() {
				for _, id := range targets {
					inj.nw.Restore(id)
					if inj.hooks.Reboot != nil {
						inj.hooks.Reboot(id, inj.nw.ASN(), loseState)
					}
				}
			})
		}
	case KindLinkFade:
		inj.nw.At(start, func() { inj.fadeRegion(e.Targets, e.FadeDB) })
		if stop != 0 {
			inj.nw.At(stop, func() { inj.fadeRegion(e.Targets, -e.FadeDB) })
		}
	case KindPartition:
		dB := e.FadeDB
		if dB <= 0 {
			dB = partitionFadeDB
		}
		inj.nw.At(start, func() { inj.fadeCut(e.Targets, dB) })
		if stop != 0 {
			inj.nw.At(stop, func() { inj.fadeCut(e.Targets, -dB) })
		}
	case KindClockDrift:
		p := driftMissProb(e.DriftPPM)
		targets := e.Targets
		inj.nw.At(start, func() {
			for _, id := range targets {
				inj.nw.SetClockDrift(id, p, seed+int64(occ))
			}
		})
		if stop != 0 {
			inj.nw.At(stop, func() {
				for _, id := range targets {
					inj.nw.SetClockDrift(id, 0, 0)
				}
			})
		}
	}

	// Lifecycle events and the reconvergence watch ride the same event
	// queue; with no emit chain the plan runs silently.
	if inj.emit != nil {
		node := topology.NodeID(0)
		if len(e.Targets) > 0 {
			node = e.Targets[0]
		}
		inj.nw.At(start, func() {
			inj.event(telemetry.EvFaultStart, idx, occ, node)
			inj.watch(idx, occ, node)
		})
		if stop != 0 {
			inj.nw.At(stop, func() { inj.event(telemetry.EvFaultEnd, idx, occ, node) })
		}
	}
	return nil
}

// fadeRegion attenuates every link with at least one endpoint in the
// region, each exactly once (negative dB lifts a previous fade).
func (inj *Injector) fadeRegion(region []topology.NodeID, dB float64) {
	in := make(map[topology.NodeID]bool, len(region))
	for _, id := range region {
		in[id] = true
	}
	n := inj.nw.Topology().N()
	for _, a := range region {
		for b := 1; b <= n; b++ {
			id := topology.NodeID(b)
			if id == a || (in[id] && id < a) {
				continue // intra-region pairs fade once
			}
			inj.nw.AddLinkFade(a, id, dB)
		}
	}
}

// fadeCut attenuates only the links crossing the island boundary, leaving
// links inside the island (and outside it) untouched.
func (inj *Injector) fadeCut(island []topology.NodeID, dB float64) {
	in := make(map[topology.NodeID]bool, len(island))
	for _, id := range island {
		in[id] = true
	}
	n := inj.nw.Topology().N()
	for _, a := range island {
		for b := 1; b <= n; b++ {
			if id := topology.NodeID(b); !in[id] {
				inj.nw.AddLinkFade(a, id, dB)
			}
		}
	}
}

// event emits one fault-lifecycle event; Flow carries the plan entry
// index and Seq the occurrence number, tying recovery metrics back to the
// plan.
func (inj *Injector) event(t telemetry.EventType, entry, occ int, node topology.NodeID) {
	inj.emit.Record(telemetry.Event{
		ASN:  int64(inj.nw.ASN()),
		Type: t,
		Node: node,
		Flow: uint16(entry),
		Seq:  uint16(occ),
	})
}

// watch opens the reconvergence watch for a fault occurrence. The first
// fault of a batch samples the steady-state churn baseline; a fault
// landing while earlier watches are open extends them: the network is not
// recovered from fault A while fault B is still shaking it, so the window
// restarts from the newest fault and, once settled, answers every open
// fault at once.
func (inj *Injector) watch(entry, occ int, node topology.NodeID) {
	now := inj.nw.ASN()
	if len(inj.open) == 0 {
		inj.prune(now)
		inj.baseline = len(inj.recent)
	}
	inj.open = append(inj.open, faultRef{entry: entry, occ: occ, node: node, start: now})
	if !inj.polling {
		inj.polling = true
		inj.nw.At(now+pollSlots, inj.poll)
	}
}

// prune drops route-change records that have aged out of the trailing
// quiet window ending at now.
func (inj *Injector) prune(now sim.ASN) {
	for len(inj.recent) > 0 && inj.recent[0] <= now-quietSlots {
		inj.recent = inj.recent[1:]
	}
}

// poll checks whether churn is back at the baseline and either emits
// reconverged or reschedules itself; it lives on the network's own event
// queue, so it is exactly as deterministic as the rest of the run.
func (inj *Injector) poll() {
	if len(inj.open) == 0 {
		inj.polling = false
		return
	}
	now := inj.nw.ASN()
	inj.prune(now)
	newest := inj.open[len(inj.open)-1].start
	settled := now-newest >= quietSlots &&
		len(inj.recent) <= inj.baseline+inj.baseline/4
	if settled && (inj.hooks.Converged == nil || inj.hooks.Converged()) {
		for _, f := range inj.open {
			inj.event(telemetry.EvReconverged, f.entry, f.occ, f.node)
		}
		inj.open = inj.open[:0]
		inj.polling = false
		return
	}
	inj.nw.At(now+pollSlots, inj.poll)
}

// Record implements telemetry.Tracer: the injector listens for route
// changes to feed the churn-rate reconvergence detector. Install it in
// the stack's tracer chain (telemetry.Multi(yourSink, injector)).
func (inj *Injector) Record(ev telemetry.Event) {
	if ev.Type == telemetry.EvRouteChange {
		inj.prune(sim.ASN(ev.ASN))
		inj.recent = append(inj.recent, sim.ASN(ev.ASN))
	}
}

// Flush implements telemetry.Tracer.
func (inj *Injector) Flush() error { return nil }
