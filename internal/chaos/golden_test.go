package chaos_test

import (
	"fmt"
	"testing"
	"time"

	"github.com/digs-net/digs/internal/campaign"
	"github.com/digs-net/digs/internal/chaos"
	"github.com/digs-net/digs/internal/core"
	"github.com/digs-net/digs/internal/flows"
	"github.com/digs-net/digs/internal/mac"
	"github.com/digs-net/digs/internal/sim"
	"github.com/digs-net/digs/internal/telemetry"
	"github.com/digs-net/digs/internal/topology"
)

// goldenOutcome is everything the recovery analyzer says about one
// scripted run, comparable with ==.
type goldenOutcome struct {
	FormSlots int64
	StartASN  int64
	TTRSlots  int64
	Generated int
	Lost      int
}

// scriptedDeath runs the golden scenario once: form the DiGS stack on
// Testbed A, kill relay node 10 for a minute via a chaos plan while the
// suggested sources send, and report the recovery metrics.
func scriptedDeath(seed int64) (goldenOutcome, error) {
	topo := topology.TestbedA()
	nw := sim.NewNetwork(topo, seed)
	net, err := core.Build(nw, core.DefaultConfig(topo.NumAPs), mac.DefaultConfig(), seed)
	if err != nil {
		return goldenOutcome{}, err
	}
	formSlots, ok := nw.RunUntil(sim.SlotsFor(6*time.Minute), func() bool {
		return net.JoinedCount() == topo.N()
	})
	if !ok {
		return goldenOutcome{}, fmt.Errorf("only %d/%d joined", net.JoinedCount(), topo.N())
	}
	nw.Run(sim.SlotsFor(10 * time.Second))

	plan := &chaos.Plan{
		Name: "scripted-death",
		Seed: seed,
		Entries: []chaos.Entry{{
			Kind:      chaos.KindNodeCrash,
			Targets:   []topology.NodeID{10},
			Start:     chaos.Duration(10 * time.Second),
			Duration:  chaos.Duration(60 * time.Second),
			LoseState: true,
		}},
	}
	rec := chaos.NewRecovery()
	inj, err := chaos.Apply(nw, plan, rec, chaos.Hooks{
		Reboot: func(id topology.NodeID, asn sim.ASN, lose bool) {
			net.Nodes[int(id)].Reboot(asn, lose)
		},
	})
	if err != nil {
		return goldenOutcome{}, err
	}
	net.SetTracer(telemetry.Multi(rec, inj))
	telemetry.AttachSim(nw, rec)

	const period = 5 * time.Second
	fset := flows.FixedSet(topo.SuggestedSources, period)
	const window = 2 * time.Minute
	flows.Schedule(nw, fset, int(window/period), func(f flows.Flow, seq uint16, asn sim.ASN) {
		if nw.Failed(f.Source) {
			return
		}
		_ = net.Nodes[int(f.Source)].InjectData(&sim.Frame{
			Origin: f.Source, FlowID: f.ID, Seq: seq, BornASN: asn,
		})
	})
	nw.Run(sim.SlotsFor(window + 45*time.Second))
	net.SetTracer(nil)
	if err := rec.Flush(); err != nil {
		return goldenOutcome{}, err
	}

	reps := rec.Report()
	if len(reps) != 1 {
		return goldenOutcome{}, fmt.Errorf("got %d fault reports, want 1", len(reps))
	}
	r := reps[0]
	return goldenOutcome{
		FormSlots: formSlots,
		StartASN:  int64(r.StartASN),
		TTRSlots:  r.TTRSlots,
		Generated: r.Generated,
		Lost:      r.Lost,
	}, nil
}

// TestScriptedDeathDeterministic is the golden determinism check for the
// fault engine: one scripted node death on Testbed A yields the exact same
// time-to-reconverge and lost-packet count on every run — sequentially and
// under the campaign runner at any worker count.
func TestScriptedDeathDeterministic(t *testing.T) {
	const seed = 7
	want, err := scriptedDeath(seed)
	if err != nil {
		t.Fatal(err)
	}
	if want.TTRSlots < 0 {
		t.Fatalf("scenario never reconverged: %+v", want)
	}
	if want.Generated == 0 {
		t.Fatalf("no packets attributed to the fault window: %+v", want)
	}
	t.Logf("golden outcome: %+v", want)

	for _, workers := range []int{1, 4} {
		got, err := campaign.Map(campaign.New(workers), 2, func(int) (goldenOutcome, error) {
			return scriptedDeath(seed)
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, g := range got {
			if g != want {
				t.Fatalf("workers=%d job %d diverged:\n got %+v\nwant %+v", workers, i, g, want)
			}
		}
	}
}
