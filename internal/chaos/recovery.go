package chaos

import (
	"github.com/digs-net/digs/internal/telemetry"
	"github.com/digs-net/digs/internal/topology"
)

// Recovery is a telemetry sink that folds a single run's event stream
// into per-fault recovery metrics: time-to-reconverge, packets lost
// during the repair window and drop attribution by reason. Chain it with
// other sinks via telemetry.Multi; it ignores the Job field (wrap runs
// individually, not a merged trace).
type Recovery struct {
	faults  []*FaultWindow
	open    map[faultKey]*FaultWindow
	spans   map[spanKey]*spanRec
	drops   []dropRec
	viols   []int64
	horizon int64
}

type faultKey struct{ entry, occ uint16 }

type spanKey struct {
	origin topology.NodeID
	flow   uint16
	seq    uint16
}

type spanRec struct {
	born      int64
	delivered bool
	// dropped marks a confirmed loss (some node dropped the packet and no
	// redundant copy delivered); undelivered, undropped spans in a
	// truncated window are in flight, not lost.
	dropped bool
}

type dropRec struct {
	asn    int64
	reason telemetry.DropReason
}

// FaultWindow is the observed lifecycle of one fault occurrence.
type FaultWindow struct {
	// Entry is the plan entry index, Occ the occurrence number.
	Entry, Occ int
	// Node is the fault's first target (0 for region faults).
	Node topology.NodeID
	// StartASN is when the fault hit; EndASN when its window closed (-1
	// for permanent faults); ReconASN when the injector declared the
	// network reconverged (-1 if it never did before the trace ended).
	StartASN, EndASN, ReconASN int64
}

var _ telemetry.Tracer = (*Recovery)(nil)

// NewRecovery returns an empty recovery analyzer.
func NewRecovery() *Recovery {
	return &Recovery{
		open:  make(map[faultKey]*FaultWindow),
		spans: make(map[spanKey]*spanRec),
	}
}

// Record implements telemetry.Tracer.
func (r *Recovery) Record(ev telemetry.Event) {
	if ev.ASN > r.horizon {
		r.horizon = ev.ASN
	}
	switch ev.Type {
	case telemetry.EvFaultStart:
		w := &FaultWindow{
			Entry: int(ev.Flow), Occ: int(ev.Seq), Node: ev.Node,
			StartASN: ev.ASN, EndASN: -1, ReconASN: -1,
		}
		r.faults = append(r.faults, w)
		r.open[faultKey{ev.Flow, ev.Seq}] = w
	case telemetry.EvFaultEnd:
		if w := r.open[faultKey{ev.Flow, ev.Seq}]; w != nil {
			w.EndASN = ev.ASN
		}
	case telemetry.EvReconverged:
		if w := r.open[faultKey{ev.Flow, ev.Seq}]; w != nil && w.ReconASN < 0 {
			w.ReconASN = ev.ASN
		}
	case telemetry.EvGenerated:
		k := spanKey{ev.Origin, ev.Flow, ev.Seq}
		if r.spans[k] == nil {
			r.spans[k] = &spanRec{born: ev.Born}
		}
	case telemetry.EvDelivered:
		k := spanKey{ev.Origin, ev.Flow, ev.Seq}
		s := r.spans[k]
		if s == nil {
			s = &spanRec{born: ev.Born}
			r.spans[k] = s
		}
		s.delivered = true
	case telemetry.EvDropped:
		// Duplicates are redundancy working, not loss.
		if ev.Reason != telemetry.ReasonDuplicate {
			r.drops = append(r.drops, dropRec{asn: ev.ASN, reason: ev.Reason})
			if s := r.spans[spanKey{ev.Origin, ev.Flow, ev.Seq}]; s != nil {
				s.dropped = true
			}
		}
	case telemetry.EvViolation:
		r.viols = append(r.viols, ev.ASN)
	}
}

// Flush implements telemetry.Tracer.
func (r *Recovery) Flush() error { return nil }

// FaultReport is one fault occurrence's recovery metrics.
type FaultReport struct {
	FaultWindow
	// TTRSlots is the time-to-reconverge in slots (-1: never
	// reconverged before the trace ended).
	TTRSlots int64
	// Truncated marks a fault whose trace ended mid-repair: the window is
	// clamped to the last event seen, the loss attribution is partial and
	// TTRSlots stays -1.
	Truncated bool
	// Generated counts application packets born inside the repair window
	// [StartASN, ReconASN] (clamped to the trace horizon when the network
	// never reconverged); Lost are those confirmed lost — never delivered,
	// and for truncated windows also seen dropped. InFlight counts a
	// truncated window's undelivered, undropped packets, whose fate the
	// trace does not tell (always 0 for reconverged faults).
	Generated, Lost, InFlight int
	// Violations counts invariant-violation events inside the repair
	// window (0 unless the run had the invariant monitor enabled).
	Violations int
	// Drops attributes the window's drop events by reason (duplicates
	// excluded). Forwarding drops can exceed Lost when redundant routes
	// still deliver the packet.
	Drops map[telemetry.DropReason]int
}

// Report folds the collected stream into per-fault metrics, in fault
// start order. Call it after the run (it recomputes from scratch each
// time).
func (r *Recovery) Report() []FaultReport {
	out := make([]FaultReport, 0, len(r.faults))
	for _, w := range r.faults {
		rep := FaultReport{
			FaultWindow: *w,
			TTRSlots:    -1,
			Drops:       make(map[telemetry.DropReason]int),
		}
		wend := r.horizon
		if w.ReconASN >= 0 {
			rep.TTRSlots = w.ReconASN - w.StartASN
			wend = w.ReconASN
		} else {
			rep.Truncated = true
		}
		for _, s := range r.spans {
			if s.born < w.StartASN || s.born > wend {
				continue
			}
			rep.Generated++
			if s.delivered {
				continue
			}
			if rep.Truncated && !s.dropped {
				rep.InFlight++
			} else {
				rep.Lost++
			}
		}
		for _, d := range r.drops {
			if d.asn >= w.StartASN && d.asn <= wend {
				rep.Drops[d.reason]++
			}
		}
		for _, v := range r.viols {
			if v >= w.StartASN && v <= wend {
				rep.Violations++
			}
		}
		out = append(out, rep)
	}
	return out
}

// Lost returns the total number of packets in the trace that were
// generated but never delivered (whole run, not just fault windows).
func (r *Recovery) Lost() int {
	lost := 0
	for _, s := range r.spans {
		if !s.delivered {
			lost++
		}
	}
	return lost
}

// Generated returns the total number of distinct packets in the trace.
func (r *Recovery) Generated() int { return len(r.spans) }
