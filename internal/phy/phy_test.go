package phy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPathLossMonotoneInDistance(t *testing.T) {
	prev := PathLossDB(1, 0)
	for d := 2.0; d < 200; d += 1.0 {
		cur := PathLossDB(d, 0)
		if cur <= prev {
			t.Fatalf("path loss not monotone at %.0fm: %.2f <= %.2f", d, cur, prev)
		}
		prev = cur
	}
}

func TestPathLossClampsBelowOneMetre(t *testing.T) {
	if got, want := PathLossDB(0.1, 0), PathLossDB(1, 0); got != want {
		t.Fatalf("sub-metre distance not clamped: got %.2f want %.2f", got, want)
	}
}

func TestPathLossFloorPenalty(t *testing.T) {
	same := PathLossDB(10, 0)
	cross := PathLossDB(10, 1)
	if cross-same != FloorAttenuationDB {
		t.Fatalf("floor penalty: got %.2f want %.2f", cross-same, FloorAttenuationDB)
	}
}

func TestPRRShape(t *testing.T) {
	tests := []struct {
		name string
		rss  float64
		lo   float64
		hi   float64
	}{
		{"strong link is perfect", -60, 1.0, 1.0},
		{"edge of good region", -86, 0.9, 1.0},
		{"grey region is intermediate", -90, 0.2, 0.6},
		{"below sensitivity is dead", -95, 0, 0},
		{"far below sensitivity is dead", -120, 0, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := PRR(tt.rss)
			if p < tt.lo || p > tt.hi {
				t.Fatalf("PRR(%.1f) = %.3f, want in [%.2f, %.2f]", tt.rss, p, tt.lo, tt.hi)
			}
		})
	}
}

func TestPRRMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		lo, hi := math.Min(a, b), math.Max(a, b)
		// Constrain to a sane dBm range.
		lo = math.Mod(math.Abs(lo), 60) - 110
		hi = math.Mod(math.Abs(hi), 60) - 110
		if lo > hi {
			lo, hi = hi, lo
		}
		return PRR(lo) <= PRR(hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLinkETX(t *testing.T) {
	if got := LinkETX(1.0); got != 1.0 {
		t.Fatalf("perfect link ETX = %.2f, want 1", got)
	}
	if got := LinkETX(0.5); math.Abs(got-4.0) > 1e-9 {
		t.Fatalf("half-PRR link ETX = %.2f, want 4", got)
	}
	if got := LinkETX(0); got != ETXUnreachable {
		t.Fatalf("dead link ETX = %.2f, want %v", got, ETXUnreachable)
	}
	if got := LinkETX(0.05); got != ETXUnreachable {
		t.Fatalf("near-dead link ETX = %.2f, want capped at %v", got, ETXUnreachable)
	}
}

func TestSIRdB(t *testing.T) {
	// With no interferers the SIR is signal minus noise floor.
	if got := SIRdB(-80, nil); math.Abs(got-18.0) > 1e-9 {
		t.Fatalf("no-interferer SIR = %.2f, want 18", got)
	}
	// A co-channel interferer at equal power pins SIR near 0.
	if got := SIRdB(-80, []float64{-80}); got > 0.1 || got < -0.1 {
		t.Fatalf("equal-power SIR = %.2f, want ~0", got)
	}
	// A much stronger interferer drives SIR strongly negative.
	if got := SIRdB(-80, []float64{-60}); got > -19 {
		t.Fatalf("strong-interferer SIR = %.2f, want <= -19", got)
	}
}

func TestHopChannelCoversAllChannels(t *testing.T) {
	seen := make(map[Channel]bool)
	for asn := int64(0); asn < NumChannels; asn++ {
		ch := HopChannel(asn, 0)
		if !ch.Valid() {
			t.Fatalf("invalid channel %d at ASN %d", ch, asn)
		}
		seen[ch] = true
	}
	if len(seen) != NumChannels {
		t.Fatalf("hopping sequence covers %d channels, want %d", len(seen), NumChannels)
	}
}

func TestHopChannelOffsetShifts(t *testing.T) {
	for asn := int64(0); asn < 100; asn++ {
		if HopChannel(asn, 1) != HopChannel(asn+1, 0) {
			t.Fatalf("offset shift broken at ASN %d", asn)
		}
	}
}

func TestWiFiOverlap(t *testing.T) {
	// WiFi channel 1 (2412 MHz) blankets 802.15.4 channels 11-14.
	got := WiFiOverlap(1)
	want := []Channel{11, 12, 13, 14}
	if len(got) != len(want) {
		t.Fatalf("WiFiOverlap(1) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("WiFiOverlap(1) = %v, want %v", got, want)
		}
	}
	// All three common WiFi channels together still leave some 802.15.4
	// channels clear (that is what makes channel hopping help).
	covered := make(map[Channel]bool)
	for _, wc := range []int{1, 6, 11} {
		for _, c := range WiFiOverlap(wc) {
			covered[c] = true
		}
	}
	if len(covered) >= NumChannels {
		t.Fatalf("WiFi 1/6/11 cover all %d channels; expected some clear", NumChannels)
	}
}

func TestEnergyOrdering(t *testing.T) {
	order := []SlotActivity{
		ActivitySleep, ActivityRxIdle, ActivityTx,
		ActivityRxFrame, ActivityTxAwaitAck, ActivityScan,
	}
	for i := 1; i < len(order); i++ {
		lo, hi := EnergyJoules(order[i-1]), EnergyJoules(order[i])
		if lo >= hi {
			t.Fatalf("energy not increasing: activity %d (%.2e J) >= activity %d (%.2e J)",
				order[i-1], lo, order[i], hi)
		}
	}
}

func TestEnergySleepMagnitude(t *testing.T) {
	// One slot asleep: 3 V * 21 uA * 10 ms = 0.63 uJ.
	got := EnergyJoules(ActivitySleep)
	if math.Abs(got-6.3e-7) > 1e-9 {
		t.Fatalf("sleep energy = %.3e J, want 6.3e-7", got)
	}
}

func TestEnergyScanMagnitude(t *testing.T) {
	// Full-slot listen: 3 V * 18.8 mA * 10 ms = 564 uJ.
	got := EnergyJoules(ActivityScan)
	if math.Abs(got-5.64e-4) > 1e-9 {
		t.Fatalf("scan energy = %.3e J, want 5.64e-4", got)
	}
}

func TestRadioOnTimeBounds(t *testing.T) {
	for a := ActivitySleep; a <= ActivityScan; a++ {
		on := RadioOnTime(a)
		if on < 0 || on > SlotDuration {
			t.Fatalf("activity %d on-time %v outside [0, %v]", a, on, SlotDuration)
		}
	}
}

func TestEnergyUnknownActivityIsZero(t *testing.T) {
	if EnergyJoules(SlotActivity(0)) != 0 {
		t.Fatal("unknown activity should cost zero energy")
	}
	if RadioOnTime(SlotActivity(99)) != 0 {
		t.Fatal("unknown activity should have zero on-time")
	}
}
