// Package phy models the IEEE 802.15.4 physical layer used by the DiGS
// reproduction: log-distance path loss with per-link shadowing, an
// RSS-to-packet-reception-rate link curve, the 16 channels of the 2.4 GHz
// band, and the CC2420 radio energy accounting the paper's power metrics
// are based on.
//
// All signal strengths are in dBm and all powers in mW unless a name says
// otherwise.
package phy

import (
	"math"
)

// Radio and propagation constants. The propagation defaults reproduce a
// dense indoor office deployment (TelosB testbeds); the radio constants
// come from the CC2420 datasheet referenced by the paper.
const (
	// TxPowerDBm is the default transmission power (CC2420 at 0 dBm).
	TxPowerDBm = 0.0

	// SensitivityDBm is the receive sensitivity floor. Frames arriving
	// below it are never detected.
	SensitivityDBm = -94.0

	// NoiseFloorDBm is the thermal noise floor for SIR computations.
	NoiseFloorDBm = -98.0

	// CaptureThresholdDB is the minimum signal-to-interference ratio for
	// the strongest frame in a collision to survive (capture effect).
	CaptureThresholdDB = 3.0

	// ReferenceLossDBm is the path loss at the reference distance of 1 m.
	ReferenceLossDBm = 40.0

	// PathLossExponent is the indoor log-distance exponent.
	PathLossExponent = 3.0

	// FloorAttenuationDB is the extra attenuation per building floor
	// between transmitter and receiver (Testbed B spans two floors).
	FloorAttenuationDB = 12.0
)

// PathLossDB returns the deterministic log-distance path loss for a link of
// the given length in metres crossing the given number of floors.
func PathLossDB(distanceM float64, floors int) float64 {
	if distanceM < 1.0 {
		distanceM = 1.0
	}
	loss := ReferenceLossDBm + 10.0*PathLossExponent*math.Log10(distanceM)
	loss += float64(floors) * FloorAttenuationDB
	return loss
}

// RSS returns the received signal strength for a transmission at txPowerDBm
// over a link with the given path loss and static shadowing term.
func RSS(txPowerDBm, pathLossDB, shadowingDB float64) float64 {
	return txPowerDBm - pathLossDB + shadowingDB
}

// PRR maps received signal strength to packet reception rate. The curve is
// a logistic fit to the CC2420 PRR-vs-RSS transition region: links above
// about -87 dBm are near-perfect, links below about -92 dBm are dead, and
// the grey region in between produces the intermediate-quality links that
// drive ETX above 1.
func PRR(rssDBm float64) float64 {
	if rssDBm < SensitivityDBm {
		return 0
	}
	p := 1.0 / (1.0 + math.Exp(-(rssDBm+89.5)/1.1))
	switch {
	case p > 0.9999:
		return 1.0
	case p < 0.0001:
		return 0.0
	default:
		return p
	}
}

// LinkETX converts a packet reception rate into the expected transmission
// count for the link, assuming independent ACK loss at the same rate as
// data loss. A dead link reports ETXUnreachable.
func LinkETX(prr float64) float64 {
	if prr <= 0.01 {
		return ETXUnreachable
	}
	etx := 1.0 / (prr * prr)
	if etx > ETXUnreachable {
		return ETXUnreachable
	}
	return etx
}

// ETXUnreachable is the ETX value used for links that cannot carry traffic.
const ETXUnreachable = 16.0

// mwFromDBm converts dBm to milliwatts.
func mwFromDBm(dbm float64) float64 {
	return math.Pow(10, dbm/10)
}

// dbmFromMW converts milliwatts to dBm.
func dbmFromMW(mw float64) float64 {
	if mw <= 0 {
		return -math.MaxFloat64
	}
	return 10 * math.Log10(mw)
}

// SIRdB returns the signal-to-interference-plus-noise ratio in dB for a
// signal received at signalDBm against the given interferer powers.
func SIRdB(signalDBm float64, interferersDBm []float64) float64 {
	total := mwFromDBm(NoiseFloorDBm)
	for _, i := range interferersDBm {
		total += mwFromDBm(i)
	}
	return signalDBm - dbmFromMW(total)
}
