package phy

import "time"

// CC2420 radio power model. Currents are from the TI CC2420 datasheet the
// paper cites; the supply voltage matches a TelosB running on 2xAA cells.
// The paper's energy metric only counts radio energy, estimated from the
// time the radio spends in each state, so we reproduce exactly that
// accounting.
const (
	// SupplyVoltage is the radio supply voltage in volts.
	SupplyVoltage = 3.0

	// TxCurrentA, RxCurrentA and SleepCurrentA are the CC2420 state
	// currents in amperes (17.4 mA transmit at 0 dBm, 18.8 mA receive or
	// listen, 21 uA in power-down).
	TxCurrentA    = 0.0174
	RxCurrentA    = 0.0188
	SleepCurrentA = 0.000021
)

// Slot timing. A TSCH time slot is 10 ms; within it the radio is only
// active for the parts of the slot template it needs.
const (
	// SlotDuration is the length of one TSCH time slot.
	SlotDuration = 10 * time.Millisecond

	// MaxFrameTime is the on-air time of a maximum-length (133 byte)
	// 802.15.4 frame at 250 kbit/s.
	MaxFrameTime = 4256 * time.Microsecond

	// AckTime is the on-air time of a 27-byte acknowledgement plus turn
	// around.
	AckTime = 1056 * time.Microsecond

	// RxGuardTime is how long an idle receiver keeps the radio on waiting
	// for a frame that never arrives (TsLongGT style guard window).
	RxGuardTime = 2200 * time.Microsecond
)

// SlotActivity classifies what the radio did during one slot, for energy
// accounting.
type SlotActivity int

// Slot activities, from cheapest to most expensive.
const (
	// ActivitySleep means the radio stayed off for the whole slot.
	ActivitySleep SlotActivity = iota + 1
	// ActivityRxIdle means the radio listened for the guard time and heard
	// nothing.
	ActivityRxIdle
	// ActivityRxFrame means a frame was received (and an ACK possibly
	// transmitted).
	ActivityRxFrame
	// ActivityRxFrameAck means a frame was received and acknowledged.
	ActivityRxFrameAck
	// ActivityTx means a frame was transmitted with no ACK expected.
	ActivityTx
	// ActivityTxAwaitAck means a frame was transmitted and the sender
	// listened for an acknowledgement (whether or not one arrived).
	ActivityTxAwaitAck
	// ActivityScan means the radio listened for the entire slot
	// (unsynchronised network scanning while joining).
	ActivityScan
)

// EnergyJoules returns the radio energy consumed by one slot spent in the
// given activity.
func EnergyJoules(a SlotActivity) float64 {
	e := func(current float64, d time.Duration) float64 {
		return SupplyVoltage * current * d.Seconds()
	}
	sleepRemainder := func(active time.Duration) float64 {
		if active >= SlotDuration {
			return 0
		}
		return e(SleepCurrentA, SlotDuration-active)
	}
	switch a {
	case ActivitySleep:
		return e(SleepCurrentA, SlotDuration)
	case ActivityRxIdle:
		return e(RxCurrentA, RxGuardTime) + sleepRemainder(RxGuardTime)
	case ActivityRxFrame:
		active := RxGuardTime + MaxFrameTime
		return e(RxCurrentA, active) + sleepRemainder(active)
	case ActivityRxFrameAck:
		active := RxGuardTime + MaxFrameTime
		return e(RxCurrentA, active) + e(TxCurrentA, AckTime) +
			sleepRemainder(active+AckTime)
	case ActivityTx:
		return e(TxCurrentA, MaxFrameTime) + sleepRemainder(MaxFrameTime)
	case ActivityTxAwaitAck:
		return e(TxCurrentA, MaxFrameTime) + e(RxCurrentA, AckTime+RxGuardTime) +
			sleepRemainder(MaxFrameTime+AckTime+RxGuardTime)
	case ActivityScan:
		return e(RxCurrentA, SlotDuration)
	default:
		return 0
	}
}

// RadioOnTime returns how long the radio was powered (TX or RX) during one
// slot spent in the given activity. Duty cycle metrics divide the sum of
// these by total elapsed time.
func RadioOnTime(a SlotActivity) time.Duration {
	switch a {
	case ActivitySleep:
		return 0
	case ActivityRxIdle:
		return RxGuardTime
	case ActivityRxFrame:
		return RxGuardTime + MaxFrameTime
	case ActivityRxFrameAck:
		return RxGuardTime + MaxFrameTime + AckTime
	case ActivityTx:
		return MaxFrameTime
	case ActivityTxAwaitAck:
		return MaxFrameTime + AckTime + RxGuardTime
	case ActivityScan:
		return SlotDuration
	default:
		return 0
	}
}
