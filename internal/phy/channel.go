package phy

// IEEE 802.15.4 2.4 GHz band: 16 channels numbered 11..26, 5 MHz apart,
// centred at 2405 + 5*(ch-11) MHz.
const (
	// FirstChannel and LastChannel bound the 2.4 GHz channel page.
	FirstChannel = 11
	LastChannel  = 26
	// NumChannels is the size of the TSCH hopping sequence.
	NumChannels = LastChannel - FirstChannel + 1
)

// Channel identifies one IEEE 802.15.4 channel (11..26).
type Channel uint8

// Valid reports whether c is inside the 2.4 GHz channel page.
func (c Channel) Valid() bool {
	return c >= FirstChannel && c <= LastChannel
}

// CenterFrequencyMHz returns the channel centre frequency.
func (c Channel) CenterFrequencyMHz() float64 {
	return 2405 + 5*float64(c-FirstChannel)
}

// DefaultHoppingSequence is the TSCH channel hopping sequence used by all
// stacks in this repository. It is the IEEE 802.15.4e default sequence for
// the 2.4 GHz band, which maximises adjacent-hop frequency separation.
var DefaultHoppingSequence = [NumChannels]Channel{
	16, 17, 23, 18, 26, 15, 25, 22, 19, 11, 12, 13, 24, 14, 20, 21,
}

// HopChannel returns the physical channel for the given absolute slot
// number and channel offset, following the TSCH rule
// channel = sequence[(ASN + offset) mod len(sequence)].
func HopChannel(asn int64, channelOffset uint8) Channel {
	idx := (asn + int64(channelOffset)) % NumChannels
	if idx < 0 {
		idx += NumChannels
	}
	return DefaultHoppingSequence[idx]
}

// WiFiOverlap returns the set of 802.15.4 channels blanketed by an IEEE
// 802.11 transmitter on the given WiFi channel (1, 6 or 11 in practice).
// A 20 MHz WiFi channel covers four adjacent 802.15.4 channels.
func WiFiOverlap(wifiChannel int) []Channel {
	// WiFi channel n is centred at 2407 + 5n MHz and spans +/- 11 MHz.
	center := 2407.0 + 5.0*float64(wifiChannel)
	var out []Channel
	for c := Channel(FirstChannel); c <= LastChannel; c++ {
		f := c.CenterFrequencyMHz()
		if f >= center-11 && f <= center+11 {
			out = append(out, c)
		}
	}
	return out
}
