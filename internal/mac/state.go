package mac

import (
	"fmt"
	"sort"

	"github.com/digs-net/digs/internal/sim"
	"github.com/digs-net/digs/internal/topology"
)

// FrameState is a sim.Frame as plain old data, including the link-layer
// Src/Dst a queued frame carries from its last transmission plan.
type FrameState struct {
	Kind    uint8
	Src     topology.NodeID
	Dst     topology.NodeID
	Seq     uint16
	Origin  topology.NodeID
	FlowID  uint16
	BornASN int64
	Route   []topology.NodeID
	Payload []byte
}

func captureFrame(f *sim.Frame) FrameState {
	return FrameState{
		Kind: uint8(f.Kind), Src: f.Src, Dst: f.Dst, Seq: f.Seq,
		Origin: f.Origin, FlowID: f.FlowID, BornASN: f.BornASN,
		Route: f.Route, Payload: f.Payload,
	}
}

// restore materialises a fresh frame; Route and Payload are copied so
// branched restores from one snapshot never share mutable slices.
func (fs FrameState) restore() *sim.Frame {
	f := &sim.Frame{
		Kind: sim.FrameKind(fs.Kind), Src: fs.Src, Dst: fs.Dst, Seq: fs.Seq,
		Origin: fs.Origin, FlowID: fs.FlowID, BornASN: fs.BornASN,
	}
	if fs.Route != nil {
		f.Route = append([]topology.NodeID(nil), fs.Route...)
	}
	if fs.Payload != nil {
		f.Payload = append([]byte(nil), fs.Payload...)
	}
	return f
}

// CaptureFrame exports captureFrame for protocol stacks that checkpoint
// frames of their own (e.g. the SDN control queue).
func CaptureFrame(f *sim.Frame) FrameState { return captureFrame(f) }

// Restore exports restore for the same callers.
func (fs FrameState) Restore() *sim.Frame { return fs.restore() }

// PacketState is one queued packet (data or downlink command).
type PacketState struct {
	Frame   FrameState
	TxCount int
	From    topology.NodeID
	Blocked int
}

// SeenKeyState is one duplicate-suppression entry. Flow 0xFFFF marks
// downlink commands and 0xFFFE broadcast bulletins, mirroring the in-memory
// convention.
type SeenKeyState struct {
	Origin topology.NodeID
	Flow   uint16
	Seq    uint16
}

// BulletinState is the broadcast bulletin a node is currently relaying.
type BulletinState struct {
	Frame     FrameState
	Remaining int
}

// NodeState is the complete mutable MAC state of one node. Identity,
// configuration, protocol wiring and sink callbacks are construction-time
// and excluded: a restore overlays this onto a node freshly built by the
// same deterministic build path.
type NodeState struct {
	Synced    bool
	SyncedAt  int64
	LastRx    int64
	Queue     []PacketState
	DownQueue []PacketState
	Seen      []SeenKeyState // sorted by (origin, flow, seq)
	DownSeq   uint16
	BcastSeq  uint16
	CoinState uint64
	Bcast     *BulletinState
	WdDst     topology.NodeID
	WdFails   int
	Stats     Stats
}

func capturePackets(q []queuedPacket) []PacketState {
	if len(q) == 0 {
		return nil
	}
	out := make([]PacketState, len(q))
	for i, p := range q {
		out[i] = PacketState{Frame: captureFrame(p.frame), TxCount: p.txCount,
			From: p.from, Blocked: p.blocked}
	}
	return out
}

func restorePackets(ps []PacketState) []queuedPacket {
	if len(ps) == 0 {
		return nil
	}
	out := make([]queuedPacket, len(ps))
	for i, p := range ps {
		out[i] = queuedPacket{frame: p.Frame.restore(), txCount: p.TxCount,
			from: p.From, blocked: p.Blocked}
	}
	return out
}

// CaptureState snapshots the node's mutable state. The duplicate table is
// emitted in sorted order so the wire form is stable across runs.
func (n *Node) CaptureState() *NodeState {
	st := &NodeState{
		Synced:    n.synced,
		SyncedAt:  n.syncedAt,
		LastRx:    n.lastRx,
		Queue:     capturePackets(n.queue),
		DownQueue: capturePackets(n.downQueue),
		DownSeq:   n.downSeq,
		BcastSeq:  n.bcastSeq,
		CoinState: n.coinState,
		WdDst:     n.wdDst,
		WdFails:   n.wdFails,
		Stats:     n.stats,
	}
	if len(n.seen) > 0 {
		st.Seen = make([]SeenKeyState, 0, len(n.seen))
		for k := range n.seen {
			st.Seen = append(st.Seen, SeenKeyState{Origin: k.origin, Flow: k.flow, Seq: k.seq})
		}
		sort.Slice(st.Seen, func(i, j int) bool {
			a, b := st.Seen[i], st.Seen[j]
			if a.Origin != b.Origin {
				return a.Origin < b.Origin
			}
			if a.Flow != b.Flow {
				return a.Flow < b.Flow
			}
			return a.Seq < b.Seq
		})
	}
	if n.bcastOut != nil {
		st.Bcast = &BulletinState{Frame: captureFrame(n.bcastOut.frame),
			Remaining: n.bcastOut.remaining}
	}
	return st
}

// RestoreState overlays a captured state onto a freshly constructed node.
func (n *Node) RestoreState(st *NodeState) error {
	if st == nil {
		return fmt.Errorf("mac node %d: nil state", n.id)
	}
	n.synced = st.Synced
	n.syncedAt = st.SyncedAt
	n.lastRx = st.LastRx
	n.queue = restorePackets(st.Queue)
	n.downQueue = restorePackets(st.DownQueue)
	n.seen = make(map[seenKey]struct{}, len(st.Seen))
	for _, k := range st.Seen {
		n.seen[seenKey{origin: k.Origin, flow: k.Flow, seq: k.Seq}] = struct{}{}
	}
	n.downSeq = st.DownSeq
	n.bcastSeq = st.BcastSeq
	n.coinState = st.CoinState
	if st.Bcast != nil {
		n.bcastOut = &bulletin{frame: st.Bcast.Frame.restore(), remaining: st.Bcast.Remaining}
	} else {
		n.bcastOut = nil
	}
	n.wdDst = st.WdDst
	n.wdFails = st.WdFails
	n.stats = st.Stats
	return nil
}
