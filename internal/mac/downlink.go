package mac

import (
	"fmt"

	"github.com/digs-net/digs/internal/phy"
	"github.com/digs-net/digs/internal/sim"
	"github.com/digs-net/digs/internal/telemetry"
	"github.com/digs-net/digs/internal/topology"
)

// Downlink support: WSANs carry actuation commands from the gateway to
// field devices, not just sensor data upward. The paper's Section V
// (footnote 2) notes the downlink graph follows the same method as the
// uplink graph; this implementation follows the WirelessHART practice of
// source-routing downlink commands over the paths the gateway learned
// from uplink traffic (every forwarded data frame records its route).
//
// Scheduling stays autonomous: a downlink slotframe gives every node one
// command listen slot derived from its own ID; a node holding a command
// transmits in the next hop's slot. The slotframe has the lowest priority
// — it only uses slots the protocol schedule leaves idle.

// downSlot returns the downlink-slotframe slot a node listens in.
func downSlot(id topology.NodeID, frameLen int64) int64 {
	return (int64(id) * 31) % frameLen
}

// downChannelOffset keeps command cells off the protocol lanes' slot-0
// collisions; the owner's ID picks the lane.
func downChannelOffset(id topology.NodeID) uint8 {
	return 1 + uint8((int64(id)*7)%14)
}

// SendCommand queues a downlink command to be source-routed along the
// given path (excluding this node, ending at the destination). Requires a
// downlink slotframe (Config.DownlinkFrameLen > 0).
func (n *Node) SendCommand(route []topology.NodeID, payload []byte) error {
	if n.cfg.DownlinkFrameLen <= 0 {
		return fmt.Errorf("node %d: downlink disabled", n.id)
	}
	if len(route) == 0 {
		return fmt.Errorf("node %d: empty command route", n.id)
	}
	if len(n.downQueue) >= n.cfg.QueueCap {
		n.stats.DroppedQueue++
		if n.tracer != nil {
			n.tracer.Record(telemetry.Event{
				Type: telemetry.EvDropped, Node: n.id, Origin: n.id,
				Seq: n.downSeq + 1, Kind: uint8(sim.KindCommand),
				Reason: telemetry.ReasonQueueFull, Queue: int16(len(n.downQueue)),
			})
		}
		return fmt.Errorf("node %d: downlink queue full", n.id)
	}
	n.downSeq++
	f := &sim.Frame{
		Kind:    sim.KindCommand,
		Origin:  n.id,
		Seq:     n.downSeq,
		Route:   append([]topology.NodeID(nil), route...),
		Payload: payload,
	}
	n.downQueue = append(n.downQueue, queuedPacket{frame: f})
	return nil
}

// planDownlink fills slots the protocol schedule leaves idle with command
// cells.
func (n *Node) planDownlink(asn sim.ASN) sim.RadioOp {
	frameLen := int64(n.cfg.DownlinkFrameLen)
	offset := asn % frameLen

	if len(n.downQueue) > 0 {
		head := &n.downQueue[0]
		next := head.frame.Route[0]
		if offset == downSlot(next, frameLen) {
			head.frame.Src = n.id
			head.frame.Dst = next
			return sim.RadioOp{
				Kind:          sim.OpTx,
				Channel:       phy.HopChannel(asn, downChannelOffset(next)),
				Frame:         head.frame,
				NeedAck:       true,
				ChannelOffset: downChannelOffset(next),
			}
		}
	}
	if offset == downSlot(n.id, frameLen) {
		return sim.RadioOp{
			Kind:          sim.OpRx,
			Channel:       phy.HopChannel(asn, downChannelOffset(n.id)),
			ChannelOffset: downChannelOffset(n.id),
		}
	}
	return sim.Sleep()
}

// receiveCommand handles an arriving downlink command: deliver it if this
// node is the destination, otherwise advance the source route and keep
// relaying.
func (n *Node) receiveCommand(asn sim.ASN, f *sim.Frame) {
	key := seenKey{origin: f.Origin, flow: 0xFFFF, seq: f.Seq}
	if _, dup := n.seen[key]; dup {
		n.stats.Duplicates++
		return
	}
	n.seen[key] = struct{}{}

	if len(f.Route) <= 1 {
		// Final hop: this node is the command's destination.
		n.stats.CommandsDelivered++
		if n.CommandSink != nil {
			n.CommandSink(asn, f)
		}
		return
	}
	if len(n.downQueue) >= n.cfg.QueueCap {
		n.stats.DroppedQueue++
		if n.tracer != nil {
			n.tracer.Record(telemetry.Event{
				ASN: asn, Type: telemetry.EvDropped, Node: n.id, Peer: f.Src,
				Origin: f.Origin, Seq: f.Seq, Kind: uint8(f.Kind),
				Reason: telemetry.ReasonQueueFull, Queue: int16(len(n.downQueue)),
			})
		}
		return
	}
	fwd := &sim.Frame{
		Kind:    sim.KindCommand,
		Origin:  f.Origin,
		Seq:     f.Seq,
		BornASN: f.BornASN,
		Route:   append([]topology.NodeID(nil), f.Route[1:]...),
		Payload: f.Payload,
	}
	n.downQueue = append(n.downQueue, queuedPacket{frame: fwd})
}

// downlinkTxDone folds a command transmission outcome.
func (n *Node) downlinkTxDone(asn sim.ASN, acked bool) {
	if len(n.downQueue) == 0 {
		return
	}
	if acked {
		n.downQueue = n.downQueue[1:]
		return
	}
	n.downQueue[0].txCount++
	if n.downQueue[0].txCount >= n.cfg.MaxTxPerPacket {
		n.stats.DroppedRetries++
		if n.tracer != nil {
			f := n.downQueue[0].frame
			n.tracer.Record(telemetry.Event{
				ASN: asn, Type: telemetry.EvDropped, Node: n.id, Peer: f.Dst,
				Origin: f.Origin, Seq: f.Seq, Kind: uint8(f.Kind),
				Attempt: uint16(n.downQueue[0].txCount),
				Reason:  telemetry.ReasonMaxRetries, Queue: int16(len(n.downQueue) - 1),
			})
		}
		n.downQueue = n.downQueue[1:]
	}
}
