package mac

import (
	"testing"
	"time"

	"github.com/digs-net/digs/internal/sim"
	"github.com/digs-net/digs/internal/topology"
)

func downlinkChain(t *testing.T, n int) (*sim.Network, []*Node) {
	t.Helper()
	topo := lineTopology(t, n)
	nw := sim.NewNetwork(topo, 1)
	cfg := DefaultConfig()
	cfg.DownlinkFrameLen = 53
	nodes := make([]*Node, n+1)
	for i := 1; i <= n; i++ {
		id := topology.NodeID(i)
		p := &staticProto{id: id, parent: topology.NodeID(i - 1)}
		nodes[i] = NewNode(id, i == 1, p, cfg)
		if err := nw.Attach(nodes[i]); err != nil {
			t.Fatal(err)
		}
	}
	nw.Run(500) // join
	return nw, nodes
}

func TestSendCommandValidation(t *testing.T) {
	topo := lineTopology(t, 2)
	nw := sim.NewNetwork(topo, 1)
	p := &staticProto{id: 1}
	n1 := NewNode(1, true, p, DefaultConfig()) // downlink disabled
	if err := nw.Attach(n1); err != nil {
		t.Fatal(err)
	}
	if err := n1.SendCommand([]topology.NodeID{2}, nil); err == nil {
		t.Fatal("accepted command with downlink disabled")
	}

	cfg := DefaultConfig()
	cfg.DownlinkFrameLen = 53
	n2 := NewNode(2, false, &staticProto{id: 2}, cfg)
	if err := n2.SendCommand(nil, nil); err == nil {
		t.Fatal("accepted empty route")
	}
}

func TestDownlinkCommandTraversesChain(t *testing.T) {
	nw, nodes := downlinkChain(t, 4)
	var got []byte
	nodes[4].CommandSink = func(_ sim.ASN, f *sim.Frame) { got = f.Payload }

	// AP (node 1) source-routes a command 1 -> 2 -> 3 -> 4.
	if err := nodes[1].SendCommand([]topology.NodeID{2, 3, 4}, []byte{0xAB}); err != nil {
		t.Fatal(err)
	}
	nw.Run(1000)
	if got == nil {
		t.Fatal("command never reached node 4")
	}
	if got[0] != 0xAB {
		t.Fatalf("payload corrupted: %v", got)
	}
	if nodes[4].Stats().CommandsDelivered != 1 {
		t.Fatalf("CommandsDelivered = %d, want 1", nodes[4].Stats().CommandsDelivered)
	}
	// Intermediates relayed but did not consume.
	for _, i := range []int{2, 3} {
		if nodes[i].Stats().CommandsDelivered != 0 {
			t.Fatalf("intermediate %d consumed the command", i)
		}
	}
}

func TestDownlinkDuplicateCommandSuppressed(t *testing.T) {
	nw, nodes := downlinkChain(t, 2)
	count := 0
	nodes[2].CommandSink = func(sim.ASN, *sim.Frame) { count++ }
	if err := nodes[1].SendCommand([]topology.NodeID{2}, []byte{1}); err != nil {
		t.Fatal(err)
	}
	nw.Run(500)
	if count != 1 {
		t.Fatalf("command delivered %d times, want 1", count)
	}
}

func TestUplinkRecordsRoute(t *testing.T) {
	nw, nodes, _ := buildChain(t, 4)
	var path []topology.NodeID
	nodes[1].Sink = func(_ sim.ASN, f *sim.Frame) {
		path = append(append([]topology.NodeID(nil), f.Route...), f.Src)
	}
	nw.Run(500)
	if err := nodes[4].InjectData(&sim.Frame{Origin: 4, FlowID: 1, Seq: 0}); err != nil {
		t.Fatal(err)
	}
	nw.Run(300)
	if len(path) != 3 {
		t.Fatalf("recorded path %v, want 3 hops (4 -> 3 -> 2 -> AP)", path)
	}
	want := []topology.NodeID{4, 3, 2}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("recorded path %v, want %v", path, want)
		}
	}
}

// slotProto is a minimal protocol with explicit transmit/listen slots for
// loop-shaped routing tests.
type slotProto struct {
	id     topology.NodeID
	parent topology.NodeID
	txSlot int64
	rxSlot int64
}

func (p *slotProto) Assignment(asn sim.ASN) Assignment {
	switch asn % 10 {
	case int64(p.id - 1):
		return Assignment{Role: RoleTxEB}
	case p.txSlot:
		return Assignment{Role: RoleTxData, Attempt: 1}
	case p.rxSlot:
		return Assignment{Role: RoleRxData}
	default:
		return Assignment{Role: RoleSleep}
	}
}
func (p *slotProto) OnSynced(sim.ASN)                       {}
func (p *slotProto) EBPayload() []byte                      { return nil }
func (p *slotProto) OnFrame(sim.ASN, *sim.Frame, float64)   {}
func (p *slotProto) SharedFrame(sim.ASN) (*sim.Frame, bool) { return nil, false }
func (p *slotProto) NextHop(sim.ASN, int) (topology.NodeID, bool) {
	return p.parent, p.parent != 0
}
func (p *slotProto) OnTxResult(sim.ASN, *sim.Frame, topology.NodeID, bool) {}

func TestSplitHorizonParksAndDrops(t *testing.T) {
	// Node 2 routes to node 3 and node 3 routes back to node 2 (a stale
	// two-node loop): split horizon must park the bounced packet at node 3
	// and eventually drop it rather than return it to node 2.
	topo := lineTopology(t, 3)
	nw := sim.NewNetwork(topo, 1)
	cfg := Config{QueueCap: 4, MaxTxPerPacket: 8}
	p2 := &slotProto{id: 2, parent: 3, txSlot: 4, rxSlot: 6}
	p3 := &slotProto{id: 3, parent: 2, txSlot: 6, rxSlot: 4}
	n2 := NewNode(2, false, p2, cfg)
	n3 := NewNode(3, false, p3, cfg)
	n1 := NewNode(1, true, &slotProto{id: 1}, cfg)
	for _, n := range []*Node{n1, n2, n3} {
		if err := nw.Attach(n); err != nil {
			t.Fatal(err)
		}
	}
	nw.Run(300) // join

	// Node 2 originates: 2 -> 3 succeeds; 3 would forward back to 2, but
	// split horizon blocks that, and the packet eventually drops at 3.
	if err := n2.InjectData(&sim.Frame{Origin: 2, FlowID: 1, Seq: 1}); err != nil {
		t.Fatal(err)
	}
	nw.RunUntil(sim.SlotsFor(60*time.Second), func() bool {
		return n2.QueueLen() == 0 && n3.QueueLen() == 0
	})
	if n3.Stats().Duplicates != 0 {
		t.Fatal("split horizon failed: the packet bounced back")
	}
	if n3.QueueLen() != 0 {
		t.Fatal("blocked packet never dropped")
	}
	if n3.Stats().DroppedRetries == 0 {
		t.Fatal("blocked drop not accounted")
	}
}

func TestDownlinkQueueCap(t *testing.T) {
	topo := lineTopology(t, 2)
	nw := sim.NewNetwork(topo, 1)
	cfg := Config{QueueCap: 2, MaxTxPerPacket: 4, DownlinkFrameLen: 53}
	n1 := NewNode(1, true, &staticProto{id: 1}, cfg)
	if err := nw.Attach(n1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := n1.SendCommand([]topology.NodeID{2}, nil); err != nil {
			t.Fatalf("command %d rejected with room: %v", i, err)
		}
	}
	if err := n1.SendCommand([]topology.NodeID{2}, nil); err == nil {
		t.Fatal("command accepted into a full downlink queue")
	}
}
