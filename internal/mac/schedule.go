// Package mac implements the TSCH medium access layer shared by every
// protocol stack in this repository: slotframe-based schedules with
// dedicated and shared slots, channel hopping, enhanced-beacon time
// synchronisation, per-packet retransmission, duplicate suppression and
// radio energy accounting. Protocols (DiGS, Orchestra, WirelessHART) plug
// in through the Protocol interface: they decide the slot roles and the
// routing, the MAC executes them.
package mac

import (
	"sort"

	"github.com/digs-net/digs/internal/sim"
	"github.com/digs-net/digs/internal/topology"
)

// SlotRole says what a node does in a slot of its combined schedule.
type SlotRole int

// Slot roles.
const (
	// RoleSleep keeps the radio off.
	RoleSleep SlotRole = iota + 1
	// RoleTxEB broadcasts an enhanced beacon.
	RoleTxEB
	// RoleRxEB listens for the time-source neighbour's beacon.
	RoleRxEB
	// RoleShared is a shared slot: transmit a pending routing frame or
	// listen (CSMA-style contention happens naturally on the medium).
	RoleShared
	// RoleTxData transmits the head-of-queue data packet.
	RoleTxData
	// RoleRxData listens for a data packet.
	RoleRxData
)

// Assignment is the resolved decision for one slot.
type Assignment struct {
	Role SlotRole
	// ChannelOffset selects the hopping sequence lane.
	ChannelOffset uint8
	// Attempt numbers the transmission attempt within the slotframe for
	// RoleTxData (1-based); DiGS routes attempt 3 over the backup parent.
	Attempt int
}

// sleepAssignment is the default when no slotframe claims a slot.
var sleepAssignment = Assignment{Role: RoleSleep}

// Slotframe is one periodic schedule layer. Each protocol builds its
// combined schedule out of several slotframes with distinct priorities, as
// in the paper's Section VI: the highest-priority non-sleeping layer wins
// each slot, locally and independently at every node.
type Slotframe struct {
	// Length is the slotframe period in slots.
	Length int64
	// Priority orders layers during combination; lower wins. The paper
	// uses sync < routing < application.
	Priority int
	// ChannelOffset is the hopping lane for slots owned by this layer.
	ChannelOffset uint8
	// Role maps the slot offset within this slotframe to a role, or
	// RoleSleep when the layer does not use the slot. It may consult live
	// routing state (parents change at runtime).
	Role func(offset int64, asn sim.ASN) (SlotRole, int)
}

// Combiner resolves the per-slot winner among slotframes, implementing the
// paper's priority-based local schedule combination.
type Combiner struct {
	frames []Slotframe
}

// NewCombiner builds a combiner; frames are sorted by priority once.
func NewCombiner(frames ...Slotframe) *Combiner {
	sorted := make([]Slotframe, len(frames))
	copy(sorted, frames)
	sort.SliceStable(sorted, func(i, j int) bool {
		return sorted[i].Priority < sorted[j].Priority
	})
	return &Combiner{frames: sorted}
}

// Assignment returns the winning assignment for the slot.
func (c *Combiner) Assignment(asn sim.ASN) Assignment {
	for _, f := range c.frames {
		role, attempt := f.Role(asn%f.Length, asn)
		if role == RoleSleep {
			continue
		}
		return Assignment{Role: role, ChannelOffset: f.ChannelOffset, Attempt: attempt}
	}
	return sleepAssignment
}

// Protocol is the routing/scheduling brain a MAC node executes. All calls
// happen from the simulation loop, never concurrently.
type Protocol interface {
	// Assignment returns the node's combined-schedule decision for the
	// slot. Only called once the node is synchronised.
	Assignment(asn sim.ASN) Assignment

	// OnSynced tells the protocol the node has joined the TSCH network
	// (heard its first EB) and may begin routing.
	OnSynced(asn sim.ASN)

	// EBPayload returns the routing metadata to embed in this node's
	// enhanced beacons (the 802.15.4e join metric: rank and path cost),
	// or nil for none.
	EBPayload() []byte

	// OnFrame delivers a received protocol or data frame for routing-state
	// updates (parent selection, link estimation). Data frames are also
	// handled by the MAC (forwarding); protocols typically use them only
	// to refresh link statistics.
	OnFrame(asn sim.ASN, f *sim.Frame, rssiDBm float64)

	// SharedFrame returns the routing frame to transmit in a shared slot,
	// or nil to listen instead. NeedAck is true for unicast control
	// frames.
	SharedFrame(asn sim.ASN) (f *sim.Frame, needAck bool)

	// NextHop returns the forwarding destination for the given data
	// transmission attempt (1-based) in the given slot, or false when the
	// node has no route.
	NextHop(asn sim.ASN, attempt int) (topology.NodeID, bool)

	// OnTxResult reports the outcome of a unicast transmission so the
	// protocol can update link estimates and trigger repairs.
	OnTxResult(asn sim.ASN, f *sim.Frame, to topology.NodeID, acked bool)
}
