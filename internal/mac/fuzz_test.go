package mac

import (
	"bytes"
	"testing"

	"github.com/digs-net/digs/internal/sim"
	"github.com/digs-net/digs/internal/topology"
)

// FuzzDecodeFrame hammers the frame codec with arbitrary bytes: a
// malformed frame must come back as an error, never a panic or an
// out-of-bounds read, and anything that decodes must survive a
// re-encode/re-decode round trip unchanged.
func FuzzDecodeFrame(f *testing.F) {
	// Seed with real encodings (data, broadcast, source-routed, payload)
	// plus the classic trouble spots: empty, short header, a route length
	// octet pointing past the end.
	seeds := []*sim.Frame{
		{Kind: sim.KindData, Src: 4, Dst: 1, Seq: 9, Origin: 9, FlowID: 3, BornASN: 12345},
		{Kind: sim.KindEB, Src: 2, Dst: 0, Seq: 1, Origin: 2, BornASN: 1},
		{Kind: sim.KindData, Src: 7, Dst: 3, Seq: 2, Origin: 7, FlowID: 1, BornASN: 1 << 39,
			Route: []topology.NodeID{3, 2, 1}, Payload: []byte{0xde, 0xad}},
	}
	for _, s := range seeds {
		b, err := EncodeFrame(s)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte{})
	f.Add(make([]byte, frameHeaderSize-1))
	f.Add(append(make([]byte, frameHeaderSize-1), 200)) // nroute=200, no route bytes

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := DecodeFrame(data)
		if err != nil {
			return
		}
		// Decoded successfully: it must re-encode and round-trip. Frames
		// can decode from oversized input only if they also fit the MPDU
		// budget on the way back out.
		enc, err := EncodeFrame(fr)
		if err != nil {
			if len(data) > MaxFramePayload || fr.BornASN >= 1<<40 {
				return // legitimately over budget; decode is laxer than encode
			}
			t.Fatalf("decoded frame failed to re-encode: %v", err)
		}
		fr2, err := DecodeFrame(enc)
		if err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
		b2, err := EncodeFrame(fr2)
		if err != nil {
			t.Fatalf("round-tripped frame failed to encode: %v", err)
		}
		if !bytes.Equal(enc, b2) {
			t.Fatalf("round trip unstable:\n first %x\nsecond %x", enc, b2)
		}
	})
}
