package mac

import (
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"github.com/digs-net/digs/internal/sim"
	"github.com/digs-net/digs/internal/topology"
)

func TestFrameRoundTrip(t *testing.T) {
	f := func(kind uint8, src, dst, seq, origin, flow uint16, born uint32,
		route []uint16, payload []byte) bool {
		if len(route) > 20 {
			route = route[:20]
		}
		if len(payload) > 40 {
			payload = payload[:40]
		}
		in := &sim.Frame{
			Kind:    sim.FrameKind(kind),
			Src:     topology.NodeID(src),
			Dst:     topology.NodeID(dst),
			Seq:     seq,
			Origin:  topology.NodeID(origin),
			FlowID:  flow,
			BornASN: int64(born),
		}
		for _, h := range route {
			in.Route = append(in.Route, topology.NodeID(h))
		}
		if len(payload) > 0 {
			in.Payload = append([]byte(nil), payload...)
		}
		b, err := EncodeFrame(in)
		if err != nil {
			// Oversize frames are allowed to fail; nothing else is.
			return frameHeaderSize+2*len(in.Route)+len(in.Payload) > MaxFramePayload
		}
		out, err := DecodeFrame(b)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeFrameRejectsOversize(t *testing.T) {
	f := &sim.Frame{Kind: sim.KindData, Payload: make([]byte, 200)}
	if _, err := EncodeFrame(f); err == nil {
		t.Fatal("accepted a 200-byte payload")
	}
	f = &sim.Frame{Kind: sim.KindCommand, Route: make([]topology.NodeID, 60)}
	if _, err := EncodeFrame(f); err == nil {
		t.Fatal("accepted a 60-hop route")
	}
	f = &sim.Frame{Kind: sim.KindData, BornASN: 1 << 41}
	if _, err := EncodeFrame(f); err == nil {
		t.Fatal("accepted an out-of-range ASN")
	}
}

func TestDecodeFrameRejectsGarbage(t *testing.T) {
	if _, err := DecodeFrame(nil); err == nil {
		t.Fatal("decoded nil")
	}
	if _, err := DecodeFrame(make([]byte, 5)); err == nil {
		t.Fatal("decoded a short buffer")
	}
	// Claimed route longer than the buffer.
	b := make([]byte, frameHeaderSize)
	b[16] = 10
	if _, err := DecodeFrame(b); err == nil {
		t.Fatal("decoded a truncated route")
	}
}

// TestEveryTransmittedFrameIsCodable runs a real DiGS-era traffic mix (a
// MAC chain with uplink data, downlink commands and broadcasts) and
// round-trips every frame the medium carries through the wire codec: the
// whole protocol suite must stay within the 802.15.4 MPDU budget.
func TestEveryTransmittedFrameIsCodable(t *testing.T) {
	topo := lineTopology(t, 5)
	nw := sim.NewNetwork(topo, 1)
	cfg := DefaultConfig()
	cfg.DownlinkFrameLen = 53
	cfg.BroadcastFrameLen = 23
	nodes := make([]*Node, 6)
	for i := 1; i <= 5; i++ {
		id := topology.NodeID(i)
		p := &staticProto{id: id, parent: topology.NodeID(i - 1)}
		nodes[i] = NewNode(id, i == 1, p, cfg)
		if err := nw.Attach(nodes[i]); err != nil {
			t.Fatal(err)
		}
	}

	frames := 0
	nw.Trace = func(ev sim.TraceEvent) {
		if ev.Kind != sim.TraceTx || ev.Frame == nil {
			return
		}
		frames++
		b, err := EncodeFrame(ev.Frame)
		if err != nil {
			t.Fatalf("frame not encodable at ASN %d: %v (%+v)", ev.ASN, err, ev.Frame)
		}
		out, err := DecodeFrame(b)
		if err != nil {
			t.Fatalf("frame not decodable at ASN %d: %v", ev.ASN, err)
		}
		if out.Kind != ev.Frame.Kind || out.Src != ev.Frame.Src || out.Seq != ev.Frame.Seq {
			t.Fatalf("round trip mismatch at ASN %d: %+v vs %+v", ev.ASN, ev.Frame, out)
		}
	}

	nw.Run(sim.SlotsFor(5 * time.Second)) // join + EBs
	for seq := uint16(0); seq < 3; seq++ {
		_ = nodes[5].InjectData(&sim.Frame{Origin: 5, FlowID: 1, Seq: seq, BornASN: nw.ASN()})
		nw.Run(sim.SlotsFor(2 * time.Second))
	}
	_ = nodes[1].SendCommand([]topology.NodeID{2, 3, 4, 5}, []byte{9})
	_ = nodes[1].Broadcast([]byte("cfg v2"))
	nw.Run(sim.SlotsFor(10 * time.Second))

	if frames < 100 {
		t.Fatalf("trace saw only %d transmissions; the scenario did not run", frames)
	}
}
