package mac

import (
	"testing"

	"github.com/digs-net/digs/internal/sim"
	"github.com/digs-net/digs/internal/topology"
)

// lineTopology builds an n-node chain with 5 m spacing, no shadowing, full
// power: adjacent links are perfect, distant links are dead.
func lineTopology(t *testing.T, n int) *topology.Topology {
	t.Helper()
	topo := &topology.Topology{Name: "line", NumAPs: 1, TxPowerDBm: -15}
	topo.Nodes = append(topo.Nodes, topology.Node{})
	for i := 1; i <= n; i++ {
		topo.Nodes = append(topo.Nodes, topology.Node{
			ID: topology.NodeID(i), X: float64(i) * 5, IsAP: i == 1,
		})
	}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	return topo
}

// staticProto is a hand-wired protocol for MAC tests: a fixed parent, an
// EB slotframe of length 10 (node i beacons in slot i-1, listens in its
// parent's slot), and a data slotframe of length 10 where node i transmits
// in slot i+2 and listens in slot i+3 (its chain child's transmit slot);
// all other slots sleep, leaving room for the downlink slotframe.
type staticProto struct {
	id       topology.NodeID
	parent   topology.NodeID
	synced   bool
	syncASN  sim.ASN
	txResult []bool
}

func (p *staticProto) Assignment(asn sim.ASN) Assignment {
	slot := asn % 10
	switch {
	case slot == int64(p.id-1):
		return Assignment{Role: RoleTxEB}
	case p.parent != 0 && slot == int64(p.parent-1):
		return Assignment{Role: RoleRxEB}
	case slot == int64(p.id)+2:
		return Assignment{Role: RoleTxData, Attempt: 1}
	case slot == int64(p.id)+3:
		return Assignment{Role: RoleRxData} // chain child's transmit slot
	default:
		return Assignment{Role: RoleSleep}
	}
}

func (p *staticProto) OnSynced(asn sim.ASN)                   { p.synced = true; p.syncASN = asn }
func (p *staticProto) OnFrame(sim.ASN, *sim.Frame, float64)   {}
func (p *staticProto) SharedFrame(sim.ASN) (*sim.Frame, bool) { return nil, false }
func (p *staticProto) NextHop(sim.ASN, int) (topology.NodeID, bool) {
	return p.parent, p.parent != 0
}
func (p *staticProto) OnTxResult(_ sim.ASN, f *sim.Frame, _ topology.NodeID, acked bool) {
	if f.Kind == sim.KindData {
		p.txResult = append(p.txResult, acked)
	}
}

func buildChain(t *testing.T, n int) (*sim.Network, []*Node, []*staticProto) {
	t.Helper()
	topo := lineTopology(t, n)
	nw := sim.NewNetwork(topo, 1)
	nodes := make([]*Node, n+1)
	protos := make([]*staticProto, n+1)
	for i := 1; i <= n; i++ {
		id := topology.NodeID(i)
		parent := topology.NodeID(i - 1) // chain toward the AP
		p := &staticProto{id: id, parent: parent}
		protos[i] = p
		nodes[i] = NewNode(id, i == 1, p, DefaultConfig())
		if err := nw.Attach(nodes[i]); err != nil {
			t.Fatal(err)
		}
	}
	return nw, nodes, protos
}

func TestCombinerPriority(t *testing.T) {
	sync := Slotframe{Length: 4, Priority: 0, ChannelOffset: 0,
		Role: func(off int64, _ sim.ASN) (SlotRole, int) {
			if off == 0 {
				return RoleTxEB, 0
			}
			return RoleSleep, 0
		}}
	app := Slotframe{Length: 2, Priority: 2, ChannelOffset: 2,
		Role: func(off int64, _ sim.ASN) (SlotRole, int) {
			if off == 0 {
				return RoleTxData, 1
			}
			return RoleSleep, 0
		}}
	c := NewCombiner(app, sync) // construction order must not matter

	// Slot 0: both want it; sync wins.
	if got := c.Assignment(0); got.Role != RoleTxEB {
		t.Fatalf("slot 0 role = %v, want TxEB", got.Role)
	}
	// Slot 2: only app wants it.
	got := c.Assignment(2)
	if got.Role != RoleTxData || got.ChannelOffset != 2 || got.Attempt != 1 {
		t.Fatalf("slot 2 assignment = %+v, want TxData on offset 2 attempt 1", got)
	}
	// Slot 1: nobody.
	if got := c.Assignment(1); got.Role != RoleSleep {
		t.Fatalf("slot 1 role = %v, want Sleep", got.Role)
	}
}

func TestNodesJoinViaEBWave(t *testing.T) {
	nw, nodes, protos := buildChain(t, 4)
	nw.Run(500)
	for i := 1; i <= 4; i++ {
		synced, at := nodes[i].Synced()
		if !synced {
			t.Fatalf("node %d never synchronised", i)
		}
		if i == 1 && at != 0 {
			t.Fatalf("AP synced at %d, want 0", at)
		}
		if !protos[i].synced {
			t.Fatalf("protocol %d not told about sync", i)
		}
	}
	// The join wave must propagate outward: deeper nodes sync later.
	_, at2 := nodes[2].Synced()
	_, at4 := nodes[4].Synced()
	if at4 < at2 {
		t.Fatalf("node 4 synced at %d before node 2 at %d", at4, at2)
	}
}

func TestDataForwardingAlongChain(t *testing.T) {
	nw, nodes, _ := buildChain(t, 4)
	var delivered []*sim.Frame
	nodes[1].Sink = func(_ sim.ASN, f *sim.Frame) { delivered = append(delivered, f) }
	nw.Run(500) // let everyone join

	for seq := uint16(0); seq < 5; seq++ {
		if err := nodes[4].InjectData(&sim.Frame{
			Origin: 4, FlowID: 1, Seq: seq, BornASN: nw.ASN(),
		}); err != nil {
			t.Fatal(err)
		}
		nw.Run(200)
	}
	if len(delivered) != 5 {
		t.Fatalf("AP received %d packets, want 5", len(delivered))
	}
	for i, f := range delivered {
		if f.Origin != 4 || f.FlowID != 1 || int(f.Seq) != i {
			t.Fatalf("packet %d has identity %+v", i, f)
		}
		if f.BornASN == 0 {
			t.Fatal("BornASN lost in forwarding")
		}
	}
	// Intermediate nodes actually forwarded.
	if nodes[2].Stats().Forwarded != 5 || nodes[3].Stats().Forwarded != 5 {
		t.Fatalf("forward counts: node2=%d node3=%d, want 5 each",
			nodes[2].Stats().Forwarded, nodes[3].Stats().Forwarded)
	}
}

func TestRetryDropAfterBudget(t *testing.T) {
	topo := lineTopology(t, 2)
	nw := sim.NewNetwork(topo, 1)
	// Node 2's parent is node 1, but node 1 is failed: every transmission
	// goes unacknowledged and the packet must eventually be dropped.
	p := &staticProto{id: 2, parent: 1}
	cfg := Config{QueueCap: 4, MaxTxPerPacket: 3}
	n2 := NewNode(2, false, p, cfg)
	p1 := &staticProto{id: 1}
	n1 := NewNode(1, true, p1, cfg)
	if err := nw.Attach(n1); err != nil {
		t.Fatal(err)
	}
	if err := nw.Attach(n2); err != nil {
		t.Fatal(err)
	}
	nw.Run(200) // join
	nw.Fail(1)
	if err := n2.InjectData(&sim.Frame{Origin: 2, FlowID: 1, Seq: 0}); err != nil {
		t.Fatal(err)
	}
	nw.Run(100)
	if n2.QueueLen() != 0 {
		t.Fatalf("packet not dropped after retry budget; queue len %d", n2.QueueLen())
	}
	if got := n2.Stats().DroppedRetries; got != 1 {
		t.Fatalf("DroppedRetries = %d, want 1", got)
	}
	// The protocol saw the failed attempts.
	if len(p.txResult) != 3 {
		t.Fatalf("protocol saw %d data tx results, want 3", len(p.txResult))
	}
	for _, acked := range p.txResult {
		if acked {
			t.Fatal("ack reported while receiver was dead")
		}
	}
}

func TestQueueOverflow(t *testing.T) {
	topo := lineTopology(t, 2)
	nw := sim.NewNetwork(topo, 1)
	p := &staticProto{id: 2} // no parent: nothing ever leaves the queue
	cfg := Config{QueueCap: 2, MaxTxPerPacket: 3}
	n2 := NewNode(2, false, p, cfg)
	if err := nw.Attach(n2); err != nil {
		t.Fatal(err)
	}
	for seq := uint16(0); seq < 4; seq++ {
		err := n2.InjectData(&sim.Frame{Origin: 2, FlowID: 1, Seq: seq})
		if seq < 2 && err != nil {
			t.Fatalf("packet %d rejected with room in queue: %v", seq, err)
		}
		if seq >= 2 && err == nil {
			t.Fatalf("packet %d accepted into a full queue", seq)
		}
	}
	st := n2.Stats()
	if st.Generated != 4 || st.DroppedQueue != 2 {
		t.Fatalf("stats = %+v, want Generated 4, DroppedQueue 2", st)
	}
}

func TestDuplicateSuppression(t *testing.T) {
	nw, nodes, _ := buildChain(t, 2)
	var delivered int
	nodes[1].Sink = func(sim.ASN, *sim.Frame) { delivered++ }
	nw.Run(200)
	// Inject the same end-to-end identity twice (simulating a
	// retransmission after a lost ACK upstream).
	for i := 0; i < 2; i++ {
		if err := nodes[2].InjectData(&sim.Frame{Origin: 2, FlowID: 1, Seq: 7}); err != nil {
			t.Fatal(err)
		}
		nw.Run(100)
	}
	if delivered != 1 {
		t.Fatalf("AP delivered %d copies, want 1 (duplicate suppressed)", delivered)
	}
	if nodes[1].Stats().Duplicates != 1 {
		t.Fatalf("duplicate counter = %d, want 1", nodes[1].Stats().Duplicates)
	}
}

func TestUnsyncedNodeIgnoresDataFrames(t *testing.T) {
	topo := lineTopology(t, 2)
	nw := sim.NewNetwork(topo, 1)
	p := &staticProto{id: 2, parent: 1}
	n2 := NewNode(2, false, p, DefaultConfig())
	if err := nw.Attach(n2); err != nil {
		t.Fatal(err)
	}
	// Node 1 is a bare script device that spams data frames; node 2 must
	// not sync from them.
	f := &sim.Frame{Kind: sim.KindData, Src: 1, Dst: 2, Origin: 1, FlowID: 1}
	spammer := &fakeDevice{id: 1, op: sim.RadioOp{Kind: sim.OpTx, Channel: 16, Frame: f}}
	if err := nw.Attach(spammer); err != nil {
		t.Fatal(err)
	}
	nw.Run(100)
	if synced, _ := n2.Synced(); synced {
		t.Fatal("node synchronised from a data frame")
	}
}

type fakeDevice struct {
	id topology.NodeID
	op sim.RadioOp
}

func (d *fakeDevice) ID() topology.NodeID             { return d.id }
func (d *fakeDevice) Plan(sim.ASN) sim.RadioOp        { return d.op }
func (d *fakeDevice) EndSlot(sim.ASN, sim.SlotReport) {}

func TestEnergyAccumulates(t *testing.T) {
	nw, nodes, _ := buildChain(t, 3)
	nw.Run(1000)
	for i := 1; i <= 3; i++ {
		st := nodes[i].Stats()
		if st.Slots != 1000 && i == 1 {
			t.Fatalf("AP accounted %d slots, want 1000", st.Slots)
		}
		if st.EnergyJoules <= 0 {
			t.Fatalf("node %d accumulated no energy", i)
		}
		dc := st.DutyCycle()
		if dc <= 0 || dc > 1 {
			t.Fatalf("node %d duty cycle %.3f outside (0,1]", i, dc)
		}
	}
}

func (p *staticProto) EBPayload() []byte { return nil }
