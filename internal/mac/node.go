package mac

import (
	"fmt"
	"time"

	"github.com/digs-net/digs/internal/phy"
	"github.com/digs-net/digs/internal/sim"
	"github.com/digs-net/digs/internal/telemetry"
	"github.com/digs-net/digs/internal/topology"
)

// OverflowPolicy selects what a full data queue does with a new packet.
type OverflowPolicy uint8

const (
	// OverflowRejectNew drops the arriving packet when the queue is full
	// (the seed behaviour, and the default).
	OverflowRejectNew OverflowPolicy = iota
	// OverflowDropOldest evicts the oldest queued packet to admit the new
	// one: under congestion the queue carries the freshest samples, which
	// industrial monitoring flows prefer over stale ones.
	OverflowDropOldest
)

// Config tunes MAC behaviour.
type Config struct {
	// QueueCap bounds the data forwarding queue (TelosB-class memory).
	QueueCap int
	// MaxTxPerPacket bounds total transmission attempts before a data
	// packet is dropped.
	MaxTxPerPacket int
	// Overflow selects the full-queue policy (default: reject the new
	// packet).
	Overflow OverflowPolicy
	// WatchdogNoAckLimit, when positive, rotates the head-of-line packet
	// to the queue tail after that many consecutive un-acked data
	// attempts to the same destination, so a dead next-hop degrades
	// gracefully instead of stalling every packet behind it until the
	// retry budget runs out. Zero disables the watchdog.
	WatchdogNoAckLimit int
	// DownlinkFrameLen enables the downlink command slotframe when
	// positive: every node listens once per frame in a slot derived from
	// its ID, and source-routed commands ride the slots the protocol
	// schedule leaves idle. Zero disables downlink entirely.
	DownlinkFrameLen int
	// BroadcastFrameLen enables the network-wide dissemination slotframe
	// (the paper's broadcast graph) when positive. Zero disables it.
	BroadcastFrameLen int
}

// DefaultConfig returns the MAC configuration used across the evaluation.
func DefaultConfig() Config {
	return Config{QueueCap: 16, MaxTxPerPacket: 30}
}

// Stats aggregates a node's lifetime counters for the energy, duty-cycle
// and loss metrics.
type Stats struct {
	EnergyJoules  float64
	RadioOnTime   time.Duration
	Slots         int64
	TxData        int64
	TxControl     int64
	RxFrames      int64
	Generated     int64
	Forwarded     int64
	SinkDelivered int64
	// CommandsDelivered counts downlink commands that reached this node as
	// their destination.
	CommandsDelivered int64
	// BulletinsDelivered counts broadcast bulletins received (once each).
	BulletinsDelivered int64
	DroppedQueue       int64
	DroppedRetries     int64
	Duplicates         int64
	// Evicted counts packets the drop-oldest overflow policy pushed out
	// (a subset of DroppedQueue, which stays the total queue loss).
	Evicted int64
	// WatchdogRequeues counts head-of-line rotations the transmit
	// watchdog performed.
	WatchdogRequeues int64
}

// DutyCycle returns the fraction of elapsed time the radio was on.
func (s Stats) DutyCycle() float64 {
	if s.Slots == 0 {
		return 0
	}
	return float64(s.RadioOnTime) / float64(time.Duration(s.Slots)*phy.SlotDuration)
}

type seenKey struct {
	origin topology.NodeID
	flow   uint16
	seq    uint16
}

type queuedPacket struct {
	frame   *sim.Frame
	txCount int
	// from is the neighbour this packet was received from (0 when locally
	// generated). Split-horizon rule: never forward a packet back to the
	// node it came from — transient routing loops would otherwise bounce
	// it until duplicate suppression eats it.
	from topology.NodeID
	// blocked counts transmit opportunities skipped by split horizon; a
	// packet stuck behind it for too long is dropped (the route never
	// recovered).
	blocked int
}

// maxBlockedOpportunities bounds how long split horizon may park a packet.
const maxBlockedOpportunities = 90

// Node is one TSCH device: it executes a Protocol's schedule, manages the
// data queue with retransmissions and duplicate suppression, performs EB
// time synchronisation and accounts radio energy. It implements
// sim.Device.
type Node struct {
	id    topology.NodeID
	isAP  bool
	proto Protocol
	cfg   Config

	synced   bool
	syncedAt sim.ASN
	// lastRx is the last slot any frame was decoded — the liveness signal
	// the invariant monitor's desync check probes (EBs keep it fresh on a
	// healthy node even when no data flows).
	lastRx sim.ASN

	queue []queuedPacket
	seen  map[seenKey]struct{}

	// downQueue holds source-routed downlink commands in transit.
	downQueue []queuedPacket
	downSeq   uint16

	stats Stats

	// Sink receives data frames arriving at an access point. Experiments
	// set it on AP nodes.
	Sink func(asn sim.ASN, f *sim.Frame)

	// CommandSink receives downlink commands addressed to this node.
	CommandSink func(asn sim.ASN, f *sim.Frame)

	// BulletinSink receives network-wide broadcast bulletins.
	BulletinSink func(asn sim.ASN, f *sim.Frame)

	// bcastOut is the bulletin currently being relayed; coinState drives
	// the deterministic persistence coin.
	bcastOut  *bulletin
	bcastSeq  uint16
	coinState uint64

	// wdDst/wdFails track consecutive un-acked data attempts to one
	// destination for the transmit watchdog.
	wdDst   topology.NodeID
	wdFails int

	// tracer, when non-nil, receives a packet-lifecycle event per
	// generation, enqueue, transmission attempt, reception and drop. The
	// disabled path is a single nil check per hook point.
	tracer telemetry.Tracer
}

var _ sim.Device = (*Node)(nil)

// NewNode creates a MAC node for the given protocol. Access points start
// synchronised: they are the network's time source.
func NewNode(id topology.NodeID, isAP bool, proto Protocol, cfg Config) *Node {
	n := &Node{
		id:        id,
		isAP:      isAP,
		proto:     proto,
		cfg:       cfg,
		seen:      make(map[seenKey]struct{}),
		coinState: uint64(id)*0x9e3779b97f4a7c15 + 1,
	}
	if isAP {
		n.synced = true
		proto.OnSynced(0)
	}
	return n
}

// ID implements sim.Device.
func (n *Node) ID() topology.NodeID { return n.id }

// IsAP reports whether the node is an access point.
func (n *Node) IsAP() bool { return n.isAP }

// Synced reports whether the node has joined the TSCH network, and since
// which slot.
func (n *Node) Synced() (bool, sim.ASN) { return n.synced, n.syncedAt }

// Stats returns a copy of the node's counters.
func (n *Node) Stats() Stats { return n.stats }

// SetTracer installs (or with nil removes) the packet-lifecycle tracer.
func (n *Node) SetTracer(t telemetry.Tracer) { n.tracer = t }

// QueueLen returns the current data queue depth.
func (n *Node) QueueLen() int { return len(n.queue) }

// LastRx returns the last slot the node decoded any frame (0 if never).
func (n *Node) LastRx() sim.ASN { return n.lastRx }

// InjectData queues a locally generated application packet. The caller
// fills Origin, FlowID, Seq and BornASN.
func (n *Node) InjectData(f *sim.Frame) error {
	n.stats.Generated++
	f.Kind = sim.KindData
	if n.tracer != nil {
		n.tracer.Record(telemetry.Event{
			ASN: f.BornASN, Type: telemetry.EvGenerated, Node: n.id,
			Origin: f.Origin, Flow: f.FlowID, Seq: f.Seq,
			Kind: uint8(f.Kind), Queue: int16(len(n.queue)), Born: f.BornASN,
		})
	}
	if len(n.queue) >= n.cfg.QueueCap {
		if n.cfg.Overflow != OverflowDropOldest {
			n.stats.DroppedQueue++
			if n.tracer != nil {
				n.tracer.Record(telemetry.Event{
					ASN: f.BornASN, Type: telemetry.EvDropped, Node: n.id,
					Origin: f.Origin, Flow: f.FlowID, Seq: f.Seq, Kind: uint8(f.Kind),
					Reason: telemetry.ReasonQueueFull, Queue: int16(len(n.queue)), Born: f.BornASN,
				})
			}
			return fmt.Errorf("node %d: data queue full", n.id)
		}
		n.evictOldest(f.BornASN)
	}
	n.queue = append(n.queue, queuedPacket{frame: f})
	if n.tracer != nil {
		n.tracer.Record(telemetry.Event{
			ASN: f.BornASN, Type: telemetry.EvEnqueued, Node: n.id,
			Origin: f.Origin, Flow: f.FlowID, Seq: f.Seq, Kind: uint8(f.Kind),
			Queue: int16(len(n.queue)), Born: f.BornASN,
		})
	}
	return nil
}

// evictOldest drops the head-of-line packet to make room under the
// drop-oldest overflow policy. The caller admits the new packet after.
// If the evicted head is mid-transmission this slot, txDone's identity
// check (queue[0].frame) makes the late ACK report a no-op.
func (n *Node) evictOldest(asn sim.ASN) {
	head := n.queue[0]
	n.stats.DroppedQueue++
	n.stats.Evicted++
	if n.tracer != nil {
		f := head.frame
		n.tracer.Record(telemetry.Event{
			ASN: asn, Type: telemetry.EvDropped, Node: n.id,
			Origin: f.Origin, Flow: f.FlowID, Seq: f.Seq, Kind: uint8(f.Kind),
			Reason: telemetry.ReasonEvicted,
			Queue:  int16(len(n.queue) - 1), Born: f.BornASN,
		})
	}
	n.queue = n.queue[1:]
	n.wdFails = 0
}

// scanDwellSlots is how long a joining node camps on one channel before
// rotating to the next (a 5 s dwell, standard passive-scan behaviour).
const scanDwellSlots = 500

// Plan implements sim.Device.
func (n *Node) Plan(asn sim.ASN) sim.RadioOp {
	if !n.synced {
		// Passive scan: camp on one channel at a time. Beacons hop, so
		// the scanner statistically catches one after a few EB periods.
		idx := (int64(n.id)*7 + asn/scanDwellSlots) % phy.NumChannels
		return sim.RadioOp{Kind: sim.OpScan, Channel: phy.DefaultHoppingSequence[idx]}
	}
	a := n.proto.Assignment(asn)
	op := n.planProtocol(asn, a)
	if op.Kind != sim.OpSleep {
		return op
	}
	// Idle slot: the broadcast cell outranks downlink (alarms and
	// reconfiguration beat individual commands).
	if n.cfg.BroadcastFrameLen > 0 {
		if bop, ok := n.planBroadcast(asn); ok {
			return bop
		}
	}
	if n.cfg.DownlinkFrameLen > 0 {
		return n.planDownlink(asn)
	}
	return op
}

// planProtocol turns the protocol's slot assignment into a radio
// operation.
func (n *Node) planProtocol(asn sim.ASN, a Assignment) sim.RadioOp {
	switch a.Role {
	case RoleTxEB:
		return sim.RadioOp{
			Kind:    sim.OpTx,
			Channel: phy.HopChannel(asn, a.ChannelOffset),
			Frame: &sim.Frame{
				Kind:    sim.KindEB,
				Src:     n.id,
				Dst:     topology.Broadcast,
				Payload: n.proto.EBPayload(),
			},
			ChannelOffset: a.ChannelOffset,
		}
	case RoleRxEB, RoleRxData:
		return sim.RadioOp{Kind: sim.OpRx, Channel: phy.HopChannel(asn, a.ChannelOffset),
			ChannelOffset: a.ChannelOffset}
	case RoleShared:
		f, needAck := n.proto.SharedFrame(asn)
		if f == nil {
			return sim.RadioOp{Kind: sim.OpRx, Channel: phy.HopChannel(asn, a.ChannelOffset),
				ChannelOffset: a.ChannelOffset}
		}
		f.Src = n.id
		return sim.RadioOp{
			Kind:          sim.OpTx,
			Channel:       phy.HopChannel(asn, a.ChannelOffset),
			Frame:         f,
			NeedAck:       needAck && f.Dst != topology.Broadcast,
			ChannelOffset: a.ChannelOffset,
		}
	case RoleTxData:
		if len(n.queue) == 0 {
			return sim.Sleep()
		}
		hop, ok := n.proto.NextHop(asn, a.Attempt)
		if !ok {
			return sim.Sleep()
		}
		head := &n.queue[0]
		if hop == head.from {
			// Split horizon: wait for an attempt that goes elsewhere.
			head.blocked++
			if head.blocked >= maxBlockedOpportunities {
				n.stats.DroppedRetries++
				if n.tracer != nil {
					f := head.frame
					n.tracer.Record(telemetry.Event{
						ASN: asn, Type: telemetry.EvDropped, Node: n.id,
						Origin: f.Origin, Flow: f.FlowID, Seq: f.Seq, Kind: uint8(f.Kind),
						Reason: telemetry.ReasonSplitHorizon,
						Queue:  int16(len(n.queue) - 1), Born: f.BornASN,
					})
				}
				n.queue = n.queue[1:]
			}
			return sim.Sleep()
		}
		head.frame.Src = n.id
		head.frame.Dst = hop
		return sim.RadioOp{
			Kind:          sim.OpTx,
			Channel:       phy.HopChannel(asn, a.ChannelOffset),
			Frame:         head.frame,
			NeedAck:       true,
			ChannelOffset: a.ChannelOffset,
		}
	default:
		return sim.Sleep()
	}
}

// EndSlot implements sim.Device.
func (n *Node) EndSlot(asn sim.ASN, rep sim.SlotReport) {
	n.stats.Slots++
	n.stats.EnergyJoules += phy.EnergyJoules(rep.Activity)
	n.stats.RadioOnTime += phy.RadioOnTime(rep.Activity)

	if rep.Received != nil {
		n.receive(asn, rep.Received, rep.RSSI)
	}
	if rep.Op.Kind == sim.OpTx && rep.Op.Frame != nil {
		n.txDone(asn, rep.Op, rep.Acked)
	}
}

func (n *Node) receive(asn sim.ASN, f *sim.Frame, rssi float64) {
	n.stats.RxFrames++
	n.lastRx = asn
	if !n.synced {
		// EBs are the canonical sync source; broadcast routing beacons
		// are periodic enough to serve as one too (they carry the same
		// timeslot template in 802.15.4e networks).
		if f.Kind != sim.KindEB && f.Kind != sim.KindJoinIn {
			return
		}
		n.synced = true
		n.syncedAt = asn
		n.proto.OnSynced(asn)
	}
	n.proto.OnFrame(asn, f, rssi)
	if f.Kind == sim.KindCommand {
		if f.Broadcast() {
			n.receiveBroadcast(asn, f)
		} else {
			n.receiveCommand(asn, f)
		}
		return
	}
	if f.Kind != sim.KindData {
		return
	}

	// hop counts the links this frame has crossed: the hops recorded in
	// its route plus the link it just arrived over.
	hop := uint8(len(f.Route) + 1)
	if n.tracer != nil {
		n.tracer.Record(telemetry.Event{
			ASN: asn, Type: telemetry.EvReceived, Node: n.id, Peer: f.Src,
			Origin: f.Origin, Flow: f.FlowID, Seq: f.Seq, Kind: uint8(f.Kind),
			Hop: hop, RSS: rssi, Queue: int16(len(n.queue)), Born: f.BornASN,
		})
	}

	key := seenKey{origin: f.Origin, flow: f.FlowID, seq: f.Seq}
	if _, dup := n.seen[key]; dup {
		n.stats.Duplicates++
		if n.tracer != nil {
			n.tracer.Record(telemetry.Event{
				ASN: asn, Type: telemetry.EvDropped, Node: n.id, Peer: f.Src,
				Origin: f.Origin, Flow: f.FlowID, Seq: f.Seq, Kind: uint8(f.Kind),
				Hop: hop, Reason: telemetry.ReasonDuplicate,
				Queue: int16(len(n.queue)), Born: f.BornASN,
			})
		}
		return
	}
	n.seen[key] = struct{}{}

	if n.isAP {
		n.stats.SinkDelivered++
		if n.tracer != nil {
			n.tracer.Record(telemetry.Event{
				ASN: asn, Type: telemetry.EvDelivered, Node: n.id, Peer: f.Src,
				Origin: f.Origin, Flow: f.FlowID, Seq: f.Seq, Kind: uint8(f.Kind),
				Hop: hop, Born: f.BornASN,
			})
		}
		if n.Sink != nil {
			n.Sink(asn, f)
		}
		return
	}
	// Forward: copy the end-to-end identity into a fresh frame owned by
	// this node's queue.
	if len(n.queue) >= n.cfg.QueueCap {
		if n.cfg.Overflow != OverflowDropOldest {
			n.stats.DroppedQueue++
			if n.tracer != nil {
				n.tracer.Record(telemetry.Event{
					ASN: asn, Type: telemetry.EvDropped, Node: n.id, Peer: f.Src,
					Origin: f.Origin, Flow: f.FlowID, Seq: f.Seq, Kind: uint8(f.Kind),
					Hop: hop, Reason: telemetry.ReasonQueueFull,
					Queue: int16(len(n.queue)), Born: f.BornASN,
				})
			}
			return
		}
		n.evictOldest(asn)
	}
	fwd := &sim.Frame{
		Kind:    sim.KindData,
		Origin:  f.Origin,
		FlowID:  f.FlowID,
		Seq:     f.Seq,
		BornASN: f.BornASN,
		Payload: f.Payload,
		// Record route: gateways learn downlink paths from the hops data
		// frames accumulate on the way up.
		Route: append(append([]topology.NodeID(nil), f.Route...), f.Src),
	}
	n.queue = append(n.queue, queuedPacket{frame: fwd, from: f.Src})
	n.stats.Forwarded++
	if n.tracer != nil {
		n.tracer.Record(telemetry.Event{
			ASN: asn, Type: telemetry.EvEnqueued, Node: n.id, Peer: f.Src,
			Origin: f.Origin, Flow: f.FlowID, Seq: f.Seq, Kind: uint8(f.Kind),
			Hop: hop, Queue: int16(len(n.queue)), Born: f.BornASN,
		})
	}
}

func (n *Node) txDone(asn sim.ASN, op sim.RadioOp, acked bool) {
	f := op.Frame
	if f.Kind == sim.KindCommand {
		n.stats.TxData++
		n.traceTx(asn, op, acked, 0, int16(len(n.downQueue)))
		if !f.Broadcast() {
			n.downlinkTxDone(asn, acked)
		}
		return
	}
	if f.Kind == sim.KindData {
		n.stats.TxData++
		if len(n.queue) == 0 || n.queue[0].frame != f {
			return // queue changed underneath (should not happen)
		}
		n.traceTx(asn, op, acked, uint16(n.queue[0].txCount+1), int16(len(n.queue)))
		n.proto.OnTxResult(asn, f, f.Dst, acked)
		if acked {
			n.queue = n.queue[1:]
			n.wdFails = 0
			return
		}
		n.queue[0].txCount++
		if n.queue[0].txCount >= n.cfg.MaxTxPerPacket {
			n.stats.DroppedRetries++
			if n.tracer != nil {
				n.tracer.Record(telemetry.Event{
					ASN: asn, Type: telemetry.EvDropped, Node: n.id, Peer: f.Dst,
					Origin: f.Origin, Flow: f.FlowID, Seq: f.Seq, Kind: uint8(f.Kind),
					Attempt: uint16(n.queue[0].txCount),
					Reason:  telemetry.ReasonMaxRetries,
					Queue:   int16(len(n.queue) - 1), Born: f.BornASN,
				})
			}
			n.queue = n.queue[1:]
			n.wdFails = 0
			return
		}
		n.watchdog(f.Dst)
		return
	}
	n.stats.TxControl++
	n.traceTx(asn, op, acked, 0, int16(len(n.queue)))
	if op.NeedAck {
		n.proto.OnTxResult(asn, f, f.Dst, acked)
	}
}

// watchdog counts consecutive un-acked data attempts to one destination
// and, at the configured limit, rotates the head-of-line packet to the
// queue tail (keeping its retry count) so packets behind it get a turn
// while the routing layer notices the dead next-hop.
func (n *Node) watchdog(dst topology.NodeID) {
	if n.cfg.WatchdogNoAckLimit <= 0 {
		return
	}
	if dst != n.wdDst {
		n.wdDst, n.wdFails = dst, 0
	}
	n.wdFails++
	if n.wdFails < n.cfg.WatchdogNoAckLimit || len(n.queue) < 2 {
		return
	}
	head := n.queue[0]
	n.queue = append(n.queue[1:], head)
	n.stats.WatchdogRequeues++
	n.wdFails = 0
}

// NextActiver is optionally implemented by protocols whose schedule can
// be queried structurally: NextActive(after) returns the earliest slot at
// or after `after` in which the node's combined schedule assigns any
// non-sleep role. It must be conservative — returning a slot early is
// harmless (the node wakes, plans sleep, naps again), returning one late
// would make the node sleep through its own cells.
type NextActiver interface {
	NextActive(after sim.ASN) sim.ASN
}

// NextWake implements sim.Napper: it reports the next slot this node
// could possibly do radio work. A node only naps when it is synchronised
// with nothing queued anywhere and its protocol can enumerate its
// schedule structurally; the optional downlink/broadcast slotframes keep
// a node permanently wakeful because their cells depend on frames other
// nodes may send. Anything handing a napping node new work outside the
// radio path (flow injection) must go through Network.Wake.
func (n *Node) NextWake(asn sim.ASN) sim.ASN {
	if !n.synced || len(n.queue) > 0 || len(n.downQueue) > 0 || n.bcastOut != nil ||
		n.cfg.DownlinkFrameLen > 0 || n.cfg.BroadcastFrameLen > 0 {
		return asn + 1
	}
	na, ok := n.proto.(NextActiver)
	if !ok {
		return asn + 1
	}
	w := na.NextActive(asn + 1)
	if w < asn+1 {
		w = asn + 1
	}
	return w
}

// AccrueSleep implements sim.Napper: it settles the per-slot accounting
// for slots the engine skipped while this node napped. Energy accumulates
// one slot at a time so the totals are bit-identical to a run where
// EndSlot saw each sleep slot individually.
func (n *Node) AccrueSleep(slots int64) {
	e := phy.EnergyJoules(phy.ActivitySleep)
	for i := int64(0); i < slots; i++ {
		n.stats.EnergyJoules += e
	}
	n.stats.Slots += slots
	n.stats.RadioOnTime += time.Duration(slots) * phy.RadioOnTime(phy.ActivitySleep)
}

// Resetter is optionally implemented by protocols that can discard their
// routing state for a cold reboot (see Node.Reboot with state loss).
type Resetter interface {
	// Reset returns the protocol to its just-constructed state, keeping
	// only identity and configuration (and any installed callbacks).
	Reset()
}

// Reboot cold-restarts the node at the given slot: the data and downlink
// queues, relay state and duplicate table are lost, and non-AP nodes
// come back unsynchronised (the slot clock does not survive a reboot) —
// they must re-hear a beacon. Access points remain the time source.
// When loseState is true the protocol's routing state is also discarded
// (if it implements Resetter), so the node rejoins from scratch rather
// than resuming its old schedule and parents from persistent storage.
func (n *Node) Reboot(asn sim.ASN, loseState bool) {
	n.queue = nil
	n.downQueue = nil
	n.bcastOut = nil
	n.seen = make(map[seenKey]struct{})
	n.wdDst, n.wdFails = 0, 0
	n.lastRx = asn
	if loseState {
		if r, ok := n.proto.(Resetter); ok {
			r.Reset()
		}
	}
	if n.isAP {
		n.syncedAt = asn
		if loseState {
			n.proto.OnSynced(asn)
		}
	} else {
		n.synced = false
	}
}

// traceTx emits the transmission-attempt event for any frame kind. The
// disabled path is the nil check; attempt is 0 for frames the MAC does
// not retransmit from the data queue.
func (n *Node) traceTx(asn sim.ASN, op sim.RadioOp, acked bool, attempt uint16, queue int16) {
	if n.tracer == nil {
		return
	}
	f := op.Frame
	n.tracer.Record(telemetry.Event{
		ASN: asn, Type: telemetry.EvTxAttempt, Node: n.id, Peer: f.Dst,
		Origin: f.Origin, Flow: f.FlowID, Seq: f.Seq, Kind: uint8(f.Kind),
		Attempt: attempt, Channel: uint8(op.Channel), ChOff: op.ChannelOffset,
		Acked: acked, Queue: queue, Born: f.BornASN,
	})
}
