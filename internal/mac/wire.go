package mac

import (
	"encoding/binary"
	"fmt"

	"github.com/digs-net/digs/internal/sim"
	"github.com/digs-net/digs/internal/topology"
)

// Wire format. The simulator passes frames as structs for speed, but every
// frame must fit a real 802.15.4 MPDU; this codec defines the byte layout
// and the size budget, and the test suite round-trips every transmitted
// frame through it (TestEveryTransmittedFrameIsCodable).
//
// Layout (big endian):
//
//	kind    uint8
//	src     uint16
//	dst     uint16
//	seq     uint16
//	origin  uint16
//	flow    uint16
//	born    uint40 (slot numbers to ~348 years)
//	nroute  uint8, then nroute * uint16 route entries
//	payload the rest
const (
	// MaxFramePayload is the MPDU capacity available above the PHY header
	// (127 bytes a-MaxPHYPacketSize minus FCS).
	MaxFramePayload = 125

	frameHeaderSize = 1 + 2 + 2 + 2 + 2 + 2 + 5 + 1
)

// EncodeFrame serializes a frame. It fails when the frame exceeds the
// 802.15.4 MPDU budget (over-long source routes or payloads).
func EncodeFrame(f *sim.Frame) ([]byte, error) {
	size := frameHeaderSize + 2*len(f.Route) + len(f.Payload)
	if size > MaxFramePayload {
		return nil, fmt.Errorf("frame %d bytes exceeds the %d-byte MPDU budget "+
			"(route %d hops, payload %d bytes)",
			size, MaxFramePayload, len(f.Route), len(f.Payload))
	}
	if len(f.Route) > 255 {
		return nil, fmt.Errorf("route of %d hops does not fit the length octet", len(f.Route))
	}
	if f.BornASN < 0 || f.BornASN >= 1<<40 {
		return nil, fmt.Errorf("born ASN %d outside the 40-bit field", f.BornASN)
	}
	buf := make([]byte, 0, size)
	buf = append(buf, byte(f.Kind))
	buf = binary.BigEndian.AppendUint16(buf, uint16(f.Src))
	buf = binary.BigEndian.AppendUint16(buf, uint16(f.Dst))
	buf = binary.BigEndian.AppendUint16(buf, f.Seq)
	buf = binary.BigEndian.AppendUint16(buf, uint16(f.Origin))
	buf = binary.BigEndian.AppendUint16(buf, f.FlowID)
	buf = append(buf,
		byte(f.BornASN>>32), byte(f.BornASN>>24), byte(f.BornASN>>16),
		byte(f.BornASN>>8), byte(f.BornASN))
	buf = append(buf, byte(len(f.Route)))
	for _, hop := range f.Route {
		buf = binary.BigEndian.AppendUint16(buf, uint16(hop))
	}
	buf = append(buf, f.Payload...)
	return buf, nil
}

// DecodeFrame parses a serialized frame.
func DecodeFrame(b []byte) (*sim.Frame, error) {
	if len(b) < frameHeaderSize {
		return nil, fmt.Errorf("frame of %d bytes below the %d-byte header", len(b), frameHeaderSize)
	}
	f := &sim.Frame{
		Kind:   sim.FrameKind(b[0]),
		Src:    topology.NodeID(binary.BigEndian.Uint16(b[1:3])),
		Dst:    topology.NodeID(binary.BigEndian.Uint16(b[3:5])),
		Seq:    binary.BigEndian.Uint16(b[5:7]),
		Origin: topology.NodeID(binary.BigEndian.Uint16(b[7:9])),
		FlowID: binary.BigEndian.Uint16(b[9:11]),
	}
	f.BornASN = int64(b[11])<<32 | int64(b[12])<<24 | int64(b[13])<<16 |
		int64(b[14])<<8 | int64(b[15])
	nroute := int(b[16])
	rest := b[frameHeaderSize:]
	if len(rest) < 2*nroute {
		return nil, fmt.Errorf("frame truncated: %d route hops claimed, %d bytes left",
			nroute, len(rest))
	}
	if nroute > 0 {
		f.Route = make([]topology.NodeID, nroute)
		for i := 0; i < nroute; i++ {
			f.Route[i] = topology.NodeID(binary.BigEndian.Uint16(rest[2*i : 2*i+2]))
		}
	}
	if payload := rest[2*nroute:]; len(payload) > 0 {
		f.Payload = append([]byte(nil), payload...)
	}
	return f, nil
}
