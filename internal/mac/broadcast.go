package mac

import (
	"fmt"

	"github.com/digs-net/digs/internal/phy"
	"github.com/digs-net/digs/internal/sim"
	"github.com/digs-net/digs/internal/topology"
)

// Broadcast graph: the third graph type the paper names (footnote 2) —
// gateway-to-all dissemination for configuration changes, superframe
// updates and alarms. The implementation is an epidemic relay over a
// dedicated broadcast slotframe: every node listens once per frame in a
// common broadcast slot and, while it holds a fresh bulletin, rebroadcasts
// it a fixed number of times with a persistence coin (the slot is shared,
// so the coin plays the CSMA role). Duplicate suppression by
// (origin, sequence) stops the flood.

// broadcastRelayCount is how many times each node repeats a bulletin.
const broadcastRelayCount = 3

// BroadcastKind marks dissemination frames inside KindCommand space: a
// broadcast bulletin is a command frame with Dst == topology.Broadcast.

// Broadcast queues a network-wide bulletin for dissemination. Requires the
// broadcast slotframe (Config.BroadcastFrameLen > 0). Typically called on
// an access point, but any node may originate one.
func (n *Node) Broadcast(payload []byte) error {
	if n.cfg.BroadcastFrameLen <= 0 {
		return fmt.Errorf("node %d: broadcast disabled", n.id)
	}
	n.bcastSeq++
	n.bcastOut = &bulletin{
		frame: &sim.Frame{
			Kind:    sim.KindCommand,
			Origin:  n.id,
			Dst:     topology.Broadcast,
			Seq:     n.bcastSeq,
			Payload: payload,
		},
		remaining: broadcastRelayCount,
	}
	// The originator delivers to itself (it is part of "all nodes").
	n.markBulletinSeen(n.bcastOut.frame)
	return nil
}

type bulletin struct {
	frame     *sim.Frame
	remaining int
}

// broadcastSlot is the common slot offset of the broadcast slotframe.
const broadcastSlot = 1

// broadcastChannelOffset keeps the flood off the unicast lanes.
const broadcastChannelOffset = 15

// planBroadcast fills protocol-idle slots with the broadcast cell.
func (n *Node) planBroadcast(asn sim.ASN) (sim.RadioOp, bool) {
	frameLen := int64(n.cfg.BroadcastFrameLen)
	if asn%frameLen != broadcastSlot {
		return sim.RadioOp{}, false
	}
	ch := phy.HopChannel(asn, broadcastChannelOffset)
	if n.bcastOut != nil && n.bcastOut.remaining > 0 && n.rngCoin() {
		n.bcastOut.remaining--
		out := n.bcastOut.frame
		if n.bcastOut.remaining == 0 {
			n.bcastOut = nil
		}
		return sim.RadioOp{Kind: sim.OpTx, Channel: ch, Frame: out, ChannelOffset: broadcastChannelOffset}, true
	}
	return sim.RadioOp{Kind: sim.OpRx, Channel: ch, ChannelOffset: broadcastChannelOffset}, true
}

// rngCoin flips the persistence coin without a per-node RNG: derived from
// the node ID and the relay counter so behaviour stays deterministic.
func (n *Node) rngCoin() bool {
	n.coinState = n.coinState*6364136223846793005 + 1442695040888963407
	return (n.coinState>>33)&1 == 0
}

// receiveBroadcast handles an arriving bulletin: deliver once, then relay.
func (n *Node) receiveBroadcast(asn sim.ASN, f *sim.Frame) {
	if !n.markBulletinSeen(f) {
		n.stats.Duplicates++
		return
	}
	n.stats.BulletinsDelivered++
	if n.BulletinSink != nil {
		n.BulletinSink(asn, f)
	}
	n.bcastOut = &bulletin{
		frame: &sim.Frame{
			Kind:    sim.KindCommand,
			Origin:  f.Origin,
			Dst:     topology.Broadcast,
			Seq:     f.Seq,
			Payload: f.Payload,
		},
		remaining: broadcastRelayCount,
	}
}

// markBulletinSeen records the bulletin identity; false when already seen.
func (n *Node) markBulletinSeen(f *sim.Frame) bool {
	key := seenKey{origin: f.Origin, flow: 0xFFFE, seq: f.Seq}
	if _, dup := n.seen[key]; dup {
		return false
	}
	n.seen[key] = struct{}{}
	return true
}
