package mac

import (
	"testing"

	"github.com/digs-net/digs/internal/sim"
	"github.com/digs-net/digs/internal/topology"
)

func broadcastChain(t *testing.T, n int) (*sim.Network, []*Node) {
	t.Helper()
	topo := lineTopology(t, n)
	nw := sim.NewNetwork(topo, 1)
	cfg := DefaultConfig()
	cfg.BroadcastFrameLen = 23
	nodes := make([]*Node, n+1)
	for i := 1; i <= n; i++ {
		id := topology.NodeID(i)
		p := &staticProto{id: id, parent: topology.NodeID(i - 1)}
		nodes[i] = NewNode(id, i == 1, p, cfg)
		if err := nw.Attach(nodes[i]); err != nil {
			t.Fatal(err)
		}
	}
	nw.Run(500) // join
	return nw, nodes
}

func TestBroadcastDisabledByDefault(t *testing.T) {
	topo := lineTopology(t, 2)
	nw := sim.NewNetwork(topo, 1)
	n1 := NewNode(1, true, &staticProto{id: 1}, DefaultConfig())
	if err := nw.Attach(n1); err != nil {
		t.Fatal(err)
	}
	if err := n1.Broadcast([]byte{1}); err == nil {
		t.Fatal("broadcast accepted while disabled")
	}
}

func TestBroadcastFloodsTheChain(t *testing.T) {
	nw, nodes := broadcastChain(t, 5)
	got := map[topology.NodeID][]byte{}
	for i := 2; i <= 5; i++ {
		id := topology.NodeID(i)
		nodes[i].BulletinSink = func(_ sim.ASN, f *sim.Frame) { got[id] = f.Payload }
	}
	if err := nodes[1].Broadcast([]byte{0xC0, 0xDE}); err != nil {
		t.Fatal(err)
	}
	nw.Run(2000)

	for i := 2; i <= 5; i++ {
		payload, ok := got[topology.NodeID(i)]
		if !ok {
			t.Fatalf("bulletin never reached node %d", i)
		}
		if len(payload) != 2 || payload[0] != 0xC0 {
			t.Fatalf("node %d got corrupted payload %v", i, payload)
		}
		if nodes[i].Stats().BulletinsDelivered != 1 {
			t.Fatalf("node %d delivered %d bulletins, want 1",
				i, nodes[i].Stats().BulletinsDelivered)
		}
	}
}

func TestBroadcastDeliveredExactlyOnce(t *testing.T) {
	nw, nodes := broadcastChain(t, 3)
	count := 0
	nodes[3].BulletinSink = func(sim.ASN, *sim.Frame) { count++ }
	if err := nodes[1].Broadcast([]byte{1}); err != nil {
		t.Fatal(err)
	}
	nw.Run(2000)
	if count != 1 {
		t.Fatalf("bulletin delivered %d times to node 3, want exactly 1", count)
	}
}

func TestSequentialBroadcastsAllArrive(t *testing.T) {
	nw, nodes := broadcastChain(t, 3)
	var seqs []uint16
	nodes[3].BulletinSink = func(_ sim.ASN, f *sim.Frame) { seqs = append(seqs, f.Seq) }
	for k := 0; k < 3; k++ {
		if err := nodes[1].Broadcast([]byte{byte(k)}); err != nil {
			t.Fatal(err)
		}
		nw.Run(2000)
	}
	if len(seqs) != 3 {
		t.Fatalf("node 3 received %d bulletins, want 3 (%v)", len(seqs), seqs)
	}
}
