package mac

import (
	"testing"

	"github.com/digs-net/digs/internal/sim"
	"github.com/digs-net/digs/internal/telemetry"
	"github.com/digs-net/digs/internal/topology"
)

// TestHooksRecordLifecycle drives a packet down a 3-node chain with a ring
// tracer attached and checks the full event sequence comes out: generated
// and enqueued at the origin, transmission attempts at every hop, received
// at each forwarder, delivered at the AP with the right hop count.
func TestHooksRecordLifecycle(t *testing.T) {
	nw, nodes, _ := buildChain(t, 3)
	ring := telemetry.NewRing(4096)
	for i := 1; i <= 3; i++ {
		nodes[i].SetTracer(ring)
	}
	nw.Run(500) // let everyone join

	if err := nodes[3].InjectData(&sim.Frame{
		Origin: 3, FlowID: 7, Seq: 1, BornASN: nw.ASN(),
	}); err != nil {
		t.Fatal(err)
	}
	nw.Run(300)

	counts := map[telemetry.EventType]int{}
	var delivered *telemetry.Event
	for i, ev := range ring.Events() {
		if ev.Flow != 7 {
			continue
		}
		counts[ev.Type]++
		if ev.Type == telemetry.EvDelivered {
			e := ring.Events()[i]
			delivered = &e
		}
	}
	if counts[telemetry.EvGenerated] != 1 {
		t.Fatalf("generated events = %d, want 1", counts[telemetry.EvGenerated])
	}
	// Enqueued at the origin and at the intermediate forwarder.
	if counts[telemetry.EvEnqueued] != 2 {
		t.Fatalf("enqueued events = %d, want 2", counts[telemetry.EvEnqueued])
	}
	if counts[telemetry.EvTxAttempt] < 2 {
		t.Fatalf("tx attempts = %d, want >= 2 (one per hop)", counts[telemetry.EvTxAttempt])
	}
	// Received at node 2 (forwarder) and node 1 (AP).
	if counts[telemetry.EvReceived] != 2 {
		t.Fatalf("received events = %d, want 2", counts[telemetry.EvReceived])
	}
	if delivered == nil {
		t.Fatal("no delivered event")
	}
	if delivered.Node != 1 || delivered.Origin != 3 || delivered.Hop != 2 {
		t.Fatalf("delivered event = %+v, want node 1, origin 3, hop 2", delivered)
	}
}

// retxProto always transmits the head-of-queue packet toward a fixed next
// hop, so the data-path hook points can be exercised in a tight loop.
type retxProto struct{ next topology.NodeID }

func (p *retxProto) Assignment(sim.ASN) Assignment {
	return Assignment{Role: RoleTxData, ChannelOffset: 3, Attempt: 1}
}
func (p *retxProto) OnSynced(sim.ASN)                                      {}
func (p *retxProto) EBPayload() []byte                                     { return nil }
func (p *retxProto) OnFrame(sim.ASN, *sim.Frame, float64)                  {}
func (p *retxProto) SharedFrame(sim.ASN) (*sim.Frame, bool)                { return nil, false }
func (p *retxProto) NextHop(sim.ASN, int) (topology.NodeID, bool)          { return p.next, true }
func (p *retxProto) OnTxResult(sim.ASN, *sim.Frame, topology.NodeID, bool) {}

// TestDataPathZeroAllocsTracingDisabled pins the MAC's instrumented data
// path at zero heap allocations when no tracer is installed: the telemetry
// hook points must stay a plain nil check, or the engine's zero-allocation
// slot loop guarantee (see sim.TestSlotLoopZeroAllocs) silently erodes for
// real protocol stacks. The node retransmits one unacked packet forever,
// crossing the Plan tx path and the txDone fold every iteration.
func TestDataPathZeroAllocsTracingDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxTxPerPacket = 1 << 30 // never exhaust the retry budget
	n := NewNode(2, true, &retxProto{next: 1}, cfg)
	if err := n.InjectData(&sim.Frame{Origin: 2, FlowID: 1, Seq: 1}); err != nil {
		t.Fatal(err)
	}

	asn := sim.ASN(0)
	step := func() {
		op := n.Plan(asn)
		n.EndSlot(asn, sim.SlotReport{Op: op, Acked: false})
		asn++
	}
	step() // warm up
	if allocs := testing.AllocsPerRun(200, step); allocs != 0 {
		t.Fatalf("data path with tracing disabled allocates %.1f objects/slot, want 0", allocs)
	}
	if n.QueueLen() != 1 {
		t.Fatalf("queue drained unexpectedly (len %d); the loop no longer exercises the tx path", n.QueueLen())
	}
}
