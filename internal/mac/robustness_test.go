package mac

import (
	"testing"

	"github.com/digs-net/digs/internal/sim"
)

func TestDropOldestOverflowEvictsHead(t *testing.T) {
	topo := lineTopology(t, 2)
	nw := sim.NewNetwork(topo, 1)
	p := &staticProto{id: 2} // no parent: nothing ever leaves the queue
	cfg := Config{QueueCap: 2, MaxTxPerPacket: 3, Overflow: OverflowDropOldest}
	n2 := NewNode(2, false, p, cfg)
	if err := nw.Attach(n2); err != nil {
		t.Fatal(err)
	}
	for seq := uint16(0); seq < 4; seq++ {
		if err := n2.InjectData(&sim.Frame{Origin: 2, FlowID: 1, Seq: seq}); err != nil {
			t.Fatalf("packet %d rejected under drop-oldest: %v", seq, err)
		}
	}
	if n2.QueueLen() != 2 {
		t.Fatalf("queue len = %d, want 2", n2.QueueLen())
	}
	// The two freshest packets survive.
	for i, want := range []uint16{2, 3} {
		if got := n2.queue[i].frame.Seq; got != want {
			t.Fatalf("queue[%d].Seq = %d, want %d", i, got, want)
		}
	}
	st := n2.Stats()
	if st.Generated != 4 || st.DroppedQueue != 2 || st.Evicted != 2 {
		t.Fatalf("stats = %+v, want Generated 4, DroppedQueue 2, Evicted 2", st)
	}
}

func TestWatchdogRotatesHeadOfLine(t *testing.T) {
	topo := lineTopology(t, 2)
	nw := sim.NewNetwork(topo, 1)
	// Node 2's parent (node 1) is dead, so every attempt goes un-acked. A
	// large retry budget with a small watchdog limit must rotate the head
	// instead of burning the whole budget on packet 0.
	p := &staticProto{id: 2, parent: 1}
	cfg := Config{QueueCap: 4, MaxTxPerPacket: 100, WatchdogNoAckLimit: 2}
	n2 := NewNode(2, false, p, cfg)
	p1 := &staticProto{id: 1}
	n1 := NewNode(1, true, p1, Config{QueueCap: 4, MaxTxPerPacket: 100})
	if err := nw.Attach(n1); err != nil {
		t.Fatal(err)
	}
	if err := nw.Attach(n2); err != nil {
		t.Fatal(err)
	}
	nw.Run(200) // join
	nw.Fail(1)
	for seq := uint16(0); seq < 2; seq++ {
		if err := n2.InjectData(&sim.Frame{Origin: 2, FlowID: 1, Seq: seq}); err != nil {
			t.Fatal(err)
		}
	}
	nw.Run(60) // 6 transmit opportunities -> 3 rotations at limit 2
	st := n2.Stats()
	if st.WatchdogRequeues < 2 {
		t.Fatalf("WatchdogRequeues = %d, want >= 2", st.WatchdogRequeues)
	}
	if st.DroppedRetries != 0 {
		t.Fatalf("DroppedRetries = %d, want 0 (budget far from exhausted)", st.DroppedRetries)
	}
	// Both packets shared the un-acked attempts instead of seq 0 hogging
	// them all.
	counts := map[uint16]int{}
	for i := range n2.queue {
		counts[n2.queue[i].frame.Seq] = n2.queue[i].txCount
	}
	if counts[0] == 0 || counts[1] == 0 {
		t.Fatalf("tx counts not shared across queue: %v", counts)
	}
}

// resettableProto wraps staticProto and records Reset calls.
type resettableProto struct {
	staticProto
	resets int
}

func (p *resettableProto) Reset() { p.resets++; p.synced = false }

func TestRebootClearsStateAndResyncs(t *testing.T) {
	topo := lineTopology(t, 2)
	nw := sim.NewNetwork(topo, 1)
	p2 := &resettableProto{staticProto: staticProto{id: 2, parent: 1}}
	n2 := NewNode(2, false, p2, DefaultConfig())
	p1 := &staticProto{id: 1}
	n1 := NewNode(1, true, p1, DefaultConfig())
	if err := nw.Attach(n1); err != nil {
		t.Fatal(err)
	}
	if err := nw.Attach(n2); err != nil {
		t.Fatal(err)
	}
	nw.Run(200)
	if synced, _ := n2.Synced(); !synced {
		t.Fatal("node 2 never joined")
	}
	if err := n2.InjectData(&sim.Frame{Origin: 2, FlowID: 1, Seq: 0}); err != nil {
		t.Fatal(err)
	}

	n2.Reboot(nw.ASN(), true)
	if p2.resets != 1 {
		t.Fatalf("protocol Reset called %d times, want 1", p2.resets)
	}
	if n2.QueueLen() != 0 {
		t.Fatalf("queue survived reboot: len %d", n2.QueueLen())
	}
	if synced, _ := n2.Synced(); synced {
		t.Fatal("node 2 still synchronised after reboot")
	}

	// The node re-hears a beacon and rejoins.
	nw.Run(400)
	if synced, at := n2.Synced(); !synced || at == 0 {
		t.Fatalf("node 2 did not rejoin (synced=%v at=%d)", synced, at)
	}

	// A duplicate of a pre-reboot identity is accepted again: the seen
	// table was part of the lost state.
	if _, dup := n2.seen[seenKey{origin: 2, flow: 1, seq: 0}]; dup {
		t.Fatal("duplicate table survived reboot")
	}

	// Fast reboot (state kept): protocol Reset must not be called.
	n1.Reboot(nw.ASN(), false)
	if p2.resets != 1 {
		t.Fatalf("Reset called on fast reboot")
	}
}
