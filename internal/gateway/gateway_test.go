package gateway

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/digs-net/digs/internal/scenario"
	"github.com/digs-net/digs/internal/server"
)

// testSpec is a fast scenario (~tens of ms wall clock).
func testSpec(seed int64) scenario.Spec {
	return scenario.Spec{
		Topology: "half-testbed-a", Protocol: "digs", Seed: seed,
		Period: scenario.Duration(2 * time.Second),
		Window: scenario.Duration(10 * time.Second),
	}
}

// newBackendTS stands up one real digs-server on an httptest listener.
func newBackendTS(t *testing.T, name string) *httptest.Server {
	t.Helper()
	s, err := server.New(server.Config{Workers: 2, DataDir: t.TempDir(), Name: name})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return ts
}

func newTestGateway(t *testing.T, cfg Config) (*Gateway, *httptest.Server) {
	t.Helper()
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(g.Handler())
	t.Cleanup(func() {
		ts.Close()
		g.Close()
	})
	return g, ts
}

// postSpec submits a spec and returns the status code, decoded body,
// and response headers.
func postSpec(t *testing.T, url string, spec scenario.Spec, hdr map[string]string) (int, map[string]json.RawMessage, http.Header) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url+"/v1/scenarios", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("decoding %d response: %v", resp.StatusCode, err)
	}
	return resp.StatusCode, doc, resp.Header
}

func jsonStr(t *testing.T, doc map[string]json.RawMessage, key string) string {
	t.Helper()
	var s string
	if err := json.Unmarshal(doc[key], &s); err != nil {
		t.Fatalf("field %q: %v (doc: %v)", key, err, doc)
	}
	return s
}

// waitJobDone polls the gateway's status endpoint to a terminal state.
func waitJobDone(t *testing.T, gwURL, jobID string) *server.View {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(gwURL + "/v1/jobs/" + jobID)
		if err != nil {
			t.Fatal(err)
		}
		var v server.View
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || err != nil {
			t.Fatalf("status read: HTTP %d, decode err %v", resp.StatusCode, err)
		}
		switch v.Status {
		case server.StatusDone, server.StatusFailed, server.StatusCanceled:
			return &v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s at deadline", jobID, v.Status)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func specHash(t *testing.T, spec scenario.Spec) string {
	t.Helper()
	h, err := spec.Hash()
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestSubmitRoutesAndReplicates(t *testing.T) {
	urls := []string{newBackendTS(t, "b0").URL, newBackendTS(t, "b1").URL, newBackendTS(t, "b2").URL}
	g, ts := newTestGateway(t, Config{Backends: urls, Replicas: 2})

	spec := testSpec(42)
	code, doc, hdr := postSpec(t, ts.URL, spec, nil)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d (%v)", code, doc)
	}
	jobID := jsonStr(t, doc, "job_id")
	if !strings.HasPrefix(jobID, "g-") {
		t.Fatalf("gateway job ID %q not gateway-scoped", jobID)
	}
	if got := hdr.Get(server.HeaderJob); got != jobID {
		t.Fatalf("%s header %q, want %q", server.HeaderJob, got, jobID)
	}

	view := waitJobDone(t, ts.URL, jobID)
	if view.Status != server.StatusDone {
		t.Fatalf("job ended %s: %s", view.Status, view.Error)
	}
	if view.JobID != jobID {
		t.Fatalf("view carries job ID %q, want the gateway's %q", view.JobID, jobID)
	}
	rresp, err := http.Get(ts.URL + "/v1/jobs/" + jobID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	rbody := new(bytes.Buffer)
	rbody.ReadFrom(rresp.Body)
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("result read: HTTP %d", rresp.StatusCode)
	}
	sum := sha256.Sum256(bytes.TrimSpace(rbody.Bytes()))
	if got := hex.EncodeToString(sum[:]); got != view.ResultHash {
		t.Fatalf("result hashes to %s, view reports %s", got, view.ResultHash)
	}
	if got := rresp.Header.Get("X-DiGS-Result-Hash"); got != view.ResultHash {
		t.Fatalf("result read header X-DiGS-Result-Hash %q, want %q", got, view.ResultHash)
	}

	// R-way placement: both replicas must hold the stored result.
	hash := specHash(t, spec)
	replicas, _ := g.replicaSet(hash)
	for _, b := range replicas {
		ok := false
		for end := time.Now().Add(10 * time.Second); time.Now().Before(end); time.Sleep(50 * time.Millisecond) {
			resp, err := http.Get(b.base + "/v1/results/" + hash)
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					ok = true
					break
				}
			}
		}
		if !ok {
			t.Fatalf("replica %s never received the result — replication broke", b.key)
		}
	}

	// A byte-identical resubmission is a 200 cache hit through the tier.
	code, doc, _ = postSpec(t, ts.URL, spec, nil)
	if code != http.StatusOK {
		t.Fatalf("duplicate submit: HTTP %d, want a 200 cache hit", code)
	}
	var cached bool
	if json.Unmarshal(doc["cached"], &cached) != nil || !cached {
		t.Fatalf("duplicate submit not served from the cache: %v", doc)
	}
}

// TestSubmitFailsOverDeadPrimary: the spec's primary replica is a dead
// address; the submission must land on a survivor with no client error.
func TestSubmitFailsOverDeadPrimary(t *testing.T) {
	// Reserve an address, then close it: connection refused.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := "http://" + ln.Addr().String()
	ln.Close()

	urls := []string{newBackendTS(t, "b0").URL, newBackendTS(t, "b1").URL, dead}
	g, ts := newTestGateway(t, Config{Backends: urls, Replicas: 2, ProbeInterval: 100 * time.Millisecond})

	// Find a spec whose rendezvous primary is the dead backend.
	var spec scenario.Spec
	found := false
	for seed := int64(100); seed < 200; seed++ {
		spec = testSpec(seed)
		replicas, _ := g.replicaSet(specHash(t, spec))
		if replicas[0].key == dead {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no seed in range ranks the dead backend primary")
	}

	code, doc, _ := postSpec(t, ts.URL, spec, nil)
	if code != http.StatusAccepted {
		t.Fatalf("submit with a dead primary: HTTP %d (%v), want 202 via failover", code, doc)
	}
	view := waitJobDone(t, ts.URL, jsonStr(t, doc, "job_id"))
	if view.Status != server.StatusDone {
		t.Fatalf("job ended %s: %s", view.Status, view.Error)
	}
}

// TestHeaderPropagation: the request ID survives submit → status → SSE,
// and the answering backend identifies itself.
func TestHeaderPropagation(t *testing.T) {
	bts := newBackendTS(t, "b0")
	_, ts := newTestGateway(t, Config{Backends: []string{bts.URL}, Replicas: 1})

	const rid = "req-propagation-check"
	code, doc, hdr := postSpec(t, ts.URL, testSpec(7), map[string]string{server.HeaderRequest: rid})
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	if got := hdr.Get(server.HeaderRequest); got != rid {
		t.Fatalf("submit echoed %s %q, want %q", server.HeaderRequest, got, rid)
	}
	jobID := jsonStr(t, doc, "job_id")

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/"+jobID, nil)
	req.Header.Set(server.HeaderRequest, rid)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(server.HeaderRequest); got != rid {
		t.Fatalf("status echoed %s %q, want %q", server.HeaderRequest, got, rid)
	}
	if got := resp.Header.Get(server.HeaderJob); got != jobID {
		t.Fatalf("status %s header %q, want %q", server.HeaderJob, got, jobID)
	}

	sreq, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/"+jobID+"/stream", nil)
	sreq.Header.Set(server.HeaderRequest, rid)
	sresp, err := http.DefaultClient.Do(sreq)
	if err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if got := sresp.Header.Get(server.HeaderRequest); got != rid {
		t.Fatalf("stream echoed %s %q, want %q", server.HeaderRequest, got, rid)
	}

	// A submission without a request ID gets one minted.
	_, _, hdr = postSpec(t, ts.URL, testSpec(8), nil)
	if hdr.Get(server.HeaderRequest) == "" {
		t.Fatalf("gateway minted no %s for an unlabeled request", server.HeaderRequest)
	}

	// The backend names itself on its own surface.
	bresp, err := http.Get(bts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	bresp.Body.Close()
	if got := bresp.Header.Get(server.HeaderBackend); got != "b0" {
		t.Fatalf("backend %s header %q, want %q", server.HeaderBackend, got, "b0")
	}
}

// TestReadRepair: a result that survives on one replica is
// re-replicated to the rest of its placement by the read path.
func TestReadRepair(t *testing.T) {
	urls := []string{newBackendTS(t, "b0").URL, newBackendTS(t, "b1").URL}
	g, ts := newTestGateway(t, Config{Backends: urls, Replicas: 2})

	spec := testSpec(77)
	hash := specHash(t, spec)
	direct, _, err := scenario.RunSpec(context.Background(), spec, scenario.RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	canonical, err := direct.Encode()
	if err != nil {
		t.Fatal(err)
	}

	// Seed the result onto exactly one replica via the repair endpoint.
	replicas, _ := g.replicaSet(hash)
	holder, missing := replicas[0], replicas[1]
	req, _ := http.NewRequest(http.MethodPut, holder.base+"/v1/results/"+hash, bytes.NewReader(canonical))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("seeding PUT: HTTP %d", resp.StatusCode)
	}

	// A gateway read serves the single surviving copy...
	gresp, err := http.Get(ts.URL + "/v1/results/" + hash)
	if err != nil {
		t.Fatal(err)
	}
	got := new(bytes.Buffer)
	got.ReadFrom(gresp.Body)
	gresp.Body.Close()
	if gresp.StatusCode != http.StatusOK {
		t.Fatalf("gateway result read: HTTP %d", gresp.StatusCode)
	}
	if !bytes.Equal(bytes.TrimSpace(got.Bytes()), bytes.TrimSpace(canonical)) {
		t.Fatal("gateway served different result bytes than the surviving copy")
	}

	// ...and heals the under-replicated placement in the background.
	deadline := time.Now().Add(10 * time.Second)
	for {
		mresp, err := http.Get(missing.base + "/v1/results/" + hash)
		if err != nil {
			t.Fatal(err)
		}
		body := new(bytes.Buffer)
		body.ReadFrom(mresp.Body)
		mresp.Body.Close()
		if mresp.StatusCode == http.StatusOK {
			if !bytes.Equal(bytes.TrimSpace(body.Bytes()), bytes.TrimSpace(canonical)) {
				t.Fatal("read-repair replicated different bytes")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica %s never read-repaired", missing.key)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestResultPutRejectsNonCanonical: the repair endpoint only accepts
// bytes that decode and re-encode to themselves — a corrupted replica
// cannot be seeded.
func TestResultPutRejectsNonCanonical(t *testing.T) {
	bts := newBackendTS(t, "b0")
	spec := testSpec(78)
	hash := specHash(t, spec)
	req, _ := http.NewRequest(http.MethodPut, bts.URL+"/v1/results/"+hash,
		strings.NewReader(`{"not":"a canonical result"}`))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("non-canonical PUT: HTTP %d, want 400", resp.StatusCode)
	}
}

// putResult PUTs raw bytes to a backend's repair endpoint and returns
// the status code.
func putResult(t *testing.T, base, hash string, body []byte) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, base+"/v1/results/"+hash, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// TestResultPutValidation: the repair endpoint refuses to file a result
// under a spec hash it was not computed for, and never overwrites an
// existing entry with different bytes — a reachable backend cannot have
// its content-addressed store poisoned through the repair path.
func TestResultPutValidation(t *testing.T) {
	bts := newBackendTS(t, "b0")
	spec := testSpec(79)
	hash := specHash(t, spec)
	res, _, err := scenario.RunSpec(context.Background(), spec, scenario.RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	canonical, err := res.Encode()
	if err != nil {
		t.Fatal(err)
	}

	// Canonical bytes valid for spec A filed under spec B's hash: a later
	// submission of B would be served A's result as a verified cache hit.
	otherHash := specHash(t, testSpec(80))
	if code := putResult(t, bts.URL, otherHash, canonical); code != http.StatusBadRequest {
		t.Fatalf("cross-hash PUT: HTTP %d, want 400", code)
	}

	// Under its own hash the PUT is accepted, and idempotently repeatable.
	if code := putResult(t, bts.URL, hash, canonical); code != http.StatusNoContent {
		t.Fatalf("legitimate PUT: HTTP %d, want 204", code)
	}
	if code := putResult(t, bts.URL, hash, canonical); code != http.StatusNoContent {
		t.Fatalf("idempotent re-PUT: HTTP %d, want 204", code)
	}

	// Different bytes with a matching embedded spec_hash must not replace
	// the stored entry: repair fills missing replicas, never rewrites.
	tampered := *res
	tampered.Delivered++
	tbytes, err := tampered.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if code := putResult(t, bts.URL, hash, tbytes); code != http.StatusConflict {
		t.Fatalf("conflicting PUT: HTTP %d, want 409", code)
	}
	resp, err := http.Get(bts.URL + "/v1/results/" + hash)
	if err != nil {
		t.Fatal(err)
	}
	stored := new(bytes.Buffer)
	stored.ReadFrom(resp.Body)
	resp.Body.Close()
	if !bytes.Equal(bytes.TrimSpace(stored.Bytes()), canonical) {
		t.Fatal("conflicting PUT altered the stored result")
	}
}

// TestSubmitShedsDuringFullOutage: with every backend unroutable, a
// submission must degrade to the 503 + Retry-After shed path within the
// retry budget instead of spinning in zero-attempt retry rounds forever.
func TestSubmitShedsDuringFullOutage(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := "http://" + ln.Addr().String()
	ln.Close()
	_, ts := newTestGateway(t, Config{
		Backends: []string{dead}, Replicas: 1,
		ProbeInterval: 25 * time.Millisecond, ProbeTimeout: 250 * time.Millisecond,
		SubmitRetries: 3, RetryBase: 10 * time.Millisecond, RetryCap: 50 * time.Millisecond,
	})

	// Wait for the probes to mark the fleet unready, so the submission
	// exercises the no-routable-candidate rounds, not transport errors.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("gateway over a dead fleet never turned unready")
		}
		time.Sleep(10 * time.Millisecond)
	}

	body, _ := json.Marshal(testSpec(82))
	cl := &http.Client{Timeout: 30 * time.Second} // a hang here is the regression
	resp, err := cl.Post(ts.URL+"/v1/scenarios", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("submission during a full outage never returned: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit during full outage: HTTP %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response carries no Retry-After")
	}
}

// TestResultReadDistinguishesMissFromOutage: a definitive 404 verdict
// from a live backend and an unreachable fleet are different answers —
// only the former may be reported as "result does not exist".
func TestResultReadDistinguishesMissFromOutage(t *testing.T) {
	hash := strings.Repeat("ab", 32)

	// Healthy fleet, unknown hash: a real miss, 404.
	_, ts := newTestGateway(t, Config{Backends: []string{newBackendTS(t, "b0").URL}, Replicas: 1})
	resp, err := http.Get(ts.URL + "/v1/results/" + hash)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("miss on a healthy fleet: HTTP %d, want 404", resp.StatusCode)
	}

	// Unreachable fleet: no backend rendered a verdict, 503.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := "http://" + ln.Addr().String()
	ln.Close()
	_, dts := newTestGateway(t, Config{Backends: []string{dead}, Replicas: 1})
	dresp, err := http.Get(dts.URL + "/v1/results/" + hash)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("read against a dead fleet: HTTP %d, want 503", dresp.StatusCode)
	}
	if dresp.Header.Get("Retry-After") == "" {
		t.Fatal("outage response carries no Retry-After")
	}
}

// TestStreamCachedFallbackReportsGap: when every replica holds only the
// stored result (no live job to stream), the terminating done event must
// be preceded by a dropped event flagging the undeliverable telemetry as
// an indeterminate gap — never silently skipped.
func TestStreamCachedFallbackReportsGap(t *testing.T) {
	bts := newBackendTS(t, "b0")
	g, ts := newTestGateway(t, Config{Backends: []string{bts.URL}, Replicas: 1})

	spec := testSpec(81)
	hash := specHash(t, spec)
	res, _, err := scenario.RunSpec(context.Background(), spec, scenario.RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	canonical, err := res.Encode()
	if err != nil {
		t.Fatal(err)
	}
	// The backend holds the finished result but never held the job.
	if code := putResult(t, bts.URL, hash, canonical); code != http.StatusNoContent {
		t.Fatalf("seeding PUT: HTTP %d", code)
	}
	specJSON, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	replicas, _ := g.replicaSet(hash)
	j := g.registerJob(hash, "", specJSON, replicas)

	cap := followSSE(t, ts.URL, j.ID, nil)
	if cap.streamError != "" {
		t.Fatalf("stream errored: %s", cap.streamError)
	}
	if !cap.indeterminate {
		t.Fatal("cached-result termination reported no dropped gap")
	}
	if len(cap.lines) != 0 {
		t.Fatalf("cached-result termination delivered %d telemetry lines from nowhere", len(cap.lines))
	}
	if cap.done == nil || cap.done.Status != server.StatusDone {
		t.Fatalf("stream never reached a done view (%+v)", cap.done)
	}
	sum := sha256.Sum256(canonical)
	if got := hex.EncodeToString(sum[:]); cap.done.ResultHash != got {
		t.Fatalf("done view reports result hash %s, stored bytes hash to %s", cap.done.ResultHash, got)
	}
}

// TestGatewayReadyz: liveness always answers; readiness follows the
// backends.
func TestGatewayReadyz(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := "http://" + ln.Addr().String()
	ln.Close()
	_, ts := newTestGateway(t, Config{Backends: []string{dead}, Replicas: 1, ProbeInterval: 50 * time.Millisecond})

	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("gateway over a dead fleet still ready (HTTP %d)", resp.StatusCode)
		}
		time.Sleep(25 * time.Millisecond)
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("liveness: HTTP %d, want 200 regardless of the fleet", hresp.StatusCode)
	}
}
