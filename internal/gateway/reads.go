package gateway

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/digs-net/digs/internal/server"
)

// latTracker keeps a ring of recent read latencies and derives the
// hedging budget from them: a read that has waited past the p90 of its
// recent peers is probably stuck on a sick replica, so a hedge to the
// next replica is cheap insurance. A fixed configured delay overrides
// the adaptive budget.
type latTracker struct {
	fixed time.Duration
	mu    sync.Mutex
	ring  [64]time.Duration
	n, i  int
}

func newLatTracker(fixed time.Duration) *latTracker {
	return &latTracker{fixed: fixed}
}

func (l *latTracker) observe(d time.Duration) {
	if l.fixed > 0 {
		return
	}
	l.mu.Lock()
	l.ring[l.i] = d
	l.i = (l.i + 1) % len(l.ring)
	if l.n < len(l.ring) {
		l.n++
	}
	l.mu.Unlock()
}

// budget returns the current hedge delay: the configured fixed value,
// or the adaptive p90 clamped to [10ms, 2s] (100ms until enough
// samples exist to trust a percentile).
func (l *latTracker) budget() time.Duration {
	if l.fixed > 0 {
		return l.fixed
	}
	l.mu.Lock()
	n := l.n
	sorted := make([]time.Duration, n)
	copy(sorted, l.ring[:n])
	l.mu.Unlock()
	if n < 8 {
		return 100 * time.Millisecond
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	d := sorted[(n-1)*9/10]
	if d < 10*time.Millisecond {
		d = 10 * time.Millisecond
	}
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	return d
}

// hedged runs fn against the candidates with staggered starts: the
// first candidate fires immediately, each further one after another
// hedge budget elapses without an answer. The first success wins and
// cancels the rest; errors release the next candidate immediately.
func hedged[T any](ctx context.Context, g *Gateway, candidates []*backend,
	fn func(context.Context, *backend) (T, error)) (T, *backend, error) {
	var zero T
	if len(candidates) == 0 {
		return zero, nil, fmt.Errorf("no routable backend")
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type outcome struct {
		val T
		b   *backend
		err error
	}
	results := make(chan outcome, len(candidates))
	launch := func(b *backend, hedge bool) {
		if hedge {
			g.hedged.Add(1)
		}
		go func() {
			start := time.Now()
			v, err := fn(ctx, b)
			if err == nil {
				g.lat.observe(time.Since(start))
				if hedge {
					g.hedgeWins.Add(1)
				}
			}
			results <- outcome{v, b, err}
		}()
	}
	launch(candidates[0], false)
	next, pending := 1, 1
	var lastErr error
	for pending > 0 {
		var timer <-chan time.Time
		if next < len(candidates) {
			timer = time.After(g.lat.budget())
		}
		select {
		case out := <-results:
			pending--
			if out.err == nil {
				return out.val, out.b, nil
			}
			lastErr = out.err
			if next < len(candidates) {
				launch(candidates[next], false)
				next++
				pending++
			}
		case <-timer:
			launch(candidates[next], true)
			next++
			pending++
		case <-ctx.Done():
			return zero, nil, ctx.Err()
		}
	}
	return zero, nil, lastErr
}

// readCandidates orders the backends a job read should try: replicas
// the gateway holds acks from first (in placement order), then the rest
// of the placement, then the spillover fleet — all filtered to ready
// ones. With nothing ready, every backend is a candidate (the probe may
// be stale; better to try than to refuse).
func (g *Gateway) readCandidates(j *gwJob) []*backend {
	ranked := rank(j.SpecHash, g.backends)
	var acked, rest, down []*backend
	for _, b := range ranked {
		switch {
		case !b.ready.Load():
			down = append(down, b)
		case j.ack(b) != "":
			acked = append(acked, b)
		default:
			rest = append(rest, b)
		}
	}
	out := append(append(acked, rest...), down...)
	return out
}

// synthDoneView builds a terminal view for a job whose result came back
// from a replica's content-addressed store rather than a live job
// record (the job itself may have aged out of that backend's
// finished-job cap — the result is what matters).
func synthDoneView(j *gwJob, result []byte) *server.View {
	sum := sha256.Sum256(result)
	return &server.View{
		JobID:      j.ID,
		SpecHash:   j.SpecHash,
		Tenant:     j.Tenant,
		Status:     server.StatusDone,
		ResultHash: hex.EncodeToString(sum[:]),
		Result:     json.RawMessage(result),
	}
}

// viewFrom fetches the job's status from one backend, resubmitting the
// spec when the gateway holds no ack there or the backend no longer
// knows the job (journal recovery preserves jobs across crashes, but a
// forgotten terminal job past the finished-job cap answers 404; the
// resubmission then hits the backend's result cache or re-runs
// bit-identically). The returned view carries the gateway job ID.
func (g *Gateway) viewFrom(ctx context.Context, j *gwJob, b *backend) (*server.View, error) {
	localID := j.ack(b)
	if localID == "" {
		id, cached, err := g.resubmit(ctx, j, b)
		if err != nil {
			return nil, err
		}
		if cached != nil {
			return synthDoneView(j, cached), nil
		}
		localID = id
	}
	for attempt := 0; ; attempt++ {
		res, err := g.call(ctx, b, http.MethodGet, "/v1/jobs/"+localID, nil, nil)
		if err != nil {
			return nil, err
		}
		if res.status == http.StatusNotFound && attempt == 0 {
			j.dropAck(b)
			id, cached, rerr := g.resubmit(ctx, j, b)
			if rerr != nil {
				return nil, rerr
			}
			if cached != nil {
				return synthDoneView(j, cached), nil
			}
			localID = id
			continue
		}
		if res.status != http.StatusOK {
			return nil, fmt.Errorf("status read from %s: HTTP %d", b.key, res.status)
		}
		var v server.View
		if err := json.Unmarshal(res.body, &v); err != nil {
			return nil, err
		}
		v.JobID = j.ID
		return &v, nil
	}
}

// handleJob serves GET /v1/jobs/{id}: a hedged status read across the
// job's replicas, transparently resubmitting to a survivor when the
// replica that acknowledged the job is gone.
func (g *Gateway) handleJob(w http.ResponseWriter, r *http.Request) {
	j := g.jobByID(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, apiError{"no such job"})
		return
	}
	w.Header().Set(server.HeaderJob, j.ID)
	view, b, err := hedged(r.Context(), g, g.readCandidates(j),
		func(ctx context.Context, b *backend) (*server.View, error) {
			return g.viewFrom(ctx, j, b)
		})
	if err != nil {
		writeJSON(w, http.StatusServiceUnavailable, apiError{fmt.Sprintf("no replica answered: %v", err)})
		return
	}
	w.Header().Set(server.HeaderBackend, b.key)
	writeJSON(w, http.StatusOK, view)
}

// jobResult is one backend's answer to a job-result read.
type jobResult struct {
	status     int    // 200 done, 202 pending, 410 terminal failure
	body       []byte // raw result (200) or view JSON (202/410)
	resultHash string
}

// resultFrom fetches the job's result from one backend, with the same
// resubmit-on-miss semantics as viewFrom.
func (g *Gateway) resultFrom(ctx context.Context, j *gwJob, b *backend) (*jobResult, error) {
	localID := j.ack(b)
	if localID == "" {
		id, cached, err := g.resubmit(ctx, j, b)
		if err != nil {
			return nil, err
		}
		if cached != nil {
			sum := sha256.Sum256(cached)
			return &jobResult{status: http.StatusOK, body: cached, resultHash: hex.EncodeToString(sum[:])}, nil
		}
		localID = id
	}
	for attempt := 0; ; attempt++ {
		res, err := g.call(ctx, b, http.MethodGet, "/v1/jobs/"+localID+"/result", nil, nil)
		if err != nil {
			return nil, err
		}
		switch res.status {
		case http.StatusOK, http.StatusAccepted, http.StatusGone:
			out := &jobResult{status: res.status, body: res.body, resultHash: res.header.Get("X-DiGS-Result-Hash")}
			if res.status != http.StatusOK {
				// 202/410 bodies are job views: stamp the gateway ID.
				var v server.View
				if json.Unmarshal(res.body, &v) == nil {
					v.JobID = j.ID
					if b, err := json.Marshal(v); err == nil {
						out.body = b
					}
				}
			}
			return out, nil
		case http.StatusNotFound:
			if attempt > 0 {
				return nil, fmt.Errorf("result read from %s: job lost", b.key)
			}
			j.dropAck(b)
			id, cached, rerr := g.resubmit(ctx, j, b)
			if rerr != nil {
				return nil, rerr
			}
			if cached != nil {
				sum := sha256.Sum256(cached)
				return &jobResult{status: http.StatusOK, body: cached, resultHash: hex.EncodeToString(sum[:])}, nil
			}
			localID = id
		default:
			return nil, fmt.Errorf("result read from %s: HTTP %d", b.key, res.status)
		}
	}
}

// handleJobResult serves GET /v1/jobs/{id}/result with hedged reads and
// failover, mirroring a single backend's response shapes.
func (g *Gateway) handleJobResult(w http.ResponseWriter, r *http.Request) {
	j := g.jobByID(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, apiError{"no such job"})
		return
	}
	w.Header().Set(server.HeaderJob, j.ID)
	res, b, err := hedged(r.Context(), g, g.readCandidates(j),
		func(ctx context.Context, b *backend) (*jobResult, error) {
			return g.resultFrom(ctx, j, b)
		})
	if err != nil {
		writeJSON(w, http.StatusServiceUnavailable, apiError{fmt.Sprintf("no replica answered: %v", err)})
		return
	}
	w.Header().Set(server.HeaderBackend, b.key)
	if res.status == http.StatusOK {
		if res.resultHash != "" {
			w.Header().Set("X-DiGS-Result-Hash", res.resultHash)
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(res.body)
		if len(res.body) > 0 && res.body[len(res.body)-1] != '\n' {
			w.Write([]byte("\n"))
		}
		return
	}
	if res.status == http.StatusAccepted {
		w.Header().Set("Retry-After", "1")
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(res.status)
	w.Write(res.body)
	if len(res.body) > 0 && res.body[len(res.body)-1] != '\n' {
		w.Write([]byte("\n"))
	}
}

// handleResult serves GET /v1/results/{hash}: a hedged read across the
// hash's replica set (then the spillover fleet), and — when the result
// turns out to live on fewer replicas than the placement demands — a
// background read-repair that re-replicates it, so one surviving copy
// is enough to heal the set.
func (g *Gateway) handleResult(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	replicas, spill := g.replicaSet(hash)
	var ready, down []*backend
	for _, b := range append(append([]*backend(nil), replicas...), spill...) {
		if b.ready.Load() {
			ready = append(ready, b)
		} else {
			down = append(down, b)
		}
	}
	candidates := append(ready, down...)
	type hashRes struct {
		body []byte
	}
	// A 404 is a verdict (that backend is alive and does not hold the
	// result); a transport error or 5xx says nothing about existence. The
	// two must not collapse into one answer: a fleet outage reported as
	// "no stored result" reads as a definitive miss callers may cache.
	var saw404 atomic.Bool
	res, b, err := hedged(r.Context(), g, candidates,
		func(ctx context.Context, b *backend) (*hashRes, error) {
			fr, err := g.call(ctx, b, http.MethodGet, "/v1/results/"+hash, nil, nil)
			if err != nil {
				return nil, err
			}
			if fr.status == http.StatusNotFound {
				saw404.Store(true)
			}
			if fr.status != http.StatusOK {
				return nil, fmt.Errorf("%s: HTTP %d", b.key, fr.status)
			}
			return &hashRes{body: fr.body}, nil
		})
	if err != nil {
		if saw404.Load() {
			writeJSON(w, http.StatusNotFound, apiError{"no stored result for that spec hash"})
			return
		}
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, apiError{fmt.Sprintf("no replica reachable for that spec hash: %v", err)})
		return
	}
	w.Header().Set(server.HeaderBackend, b.key)
	w.Header().Set("Content-Type", "application/json")
	w.Write(res.body)
	go g.readRepair(hash, b, replicas, res.body)
}

// readRepair re-replicates a result onto replica-set members that are
// missing it. The source replica already holds it; every other ready
// member is asked, and a 404 is answered with a PUT of the bytes we
// just served. This is how a result that survived on a single replica
// (the others crashed before their run, or their stores were wiped)
// climbs back to full replication.
func (g *Gateway) readRepair(hash string, source *backend, replicas []*backend, result []byte) {
	ctx, cancel := context.WithTimeout(context.Background(), g.cfg.RequestTimeout)
	defer cancel()
	trimmed := result
	for len(trimmed) > 0 && (trimmed[len(trimmed)-1] == '\n' || trimmed[len(trimmed)-1] == ' ') {
		trimmed = trimmed[:len(trimmed)-1]
	}
	for _, b := range replicas {
		if b == source || !b.ready.Load() {
			continue
		}
		probe, err := g.call(ctx, b, http.MethodGet, "/v1/results/"+hash, nil, nil)
		if err != nil || probe.status != http.StatusNotFound {
			continue
		}
		put, err := g.call(ctx, b, http.MethodPut, "/v1/results/"+hash, trimmed, nil)
		if err == nil && put.status == http.StatusNoContent {
			g.readRepairs.Add(1)
		}
	}
}
