package gateway

import (
	"fmt"
	"testing"
)

func mkBackends(keys ...string) []*backend {
	bs := make([]*backend, len(keys))
	for i, k := range keys {
		bs[i] = &backend{key: k, base: k}
	}
	return bs
}

func TestRankDeterministic(t *testing.T) {
	bs := mkBackends("http://a", "http://b", "http://c", "http://d")
	r1 := rank("somespechash", bs)
	r2 := rank("somespechash", bs)
	for i := range r1 {
		if r1[i].key != r2[i].key {
			t.Fatalf("rank not deterministic at %d: %s vs %s", i, r1[i].key, r2[i].key)
		}
	}
	// Input order must not matter: the score is a pure function of
	// (specHash, backendKey).
	rev := mkBackends("http://d", "http://c", "http://b", "http://a")
	r3 := rank("somespechash", rev)
	for i := range r1 {
		if r1[i].key != r3[i].key {
			t.Fatalf("rank depends on input order at %d: %s vs %s", i, r1[i].key, r3[i].key)
		}
	}
}

// TestRankStableUnderRemoval is the rendezvous property the gateway
// leans on: removing one backend remaps only the keys it owned — every
// replica set that did not include the removed backend is unchanged.
func TestRankStableUnderRemoval(t *testing.T) {
	full := mkBackends("http://a", "http://b", "http://c", "http://d", "http://e")
	const removed = "http://c"
	var reduced []*backend
	for _, b := range full {
		if b.key != removed {
			reduced = append(reduced, b)
		}
	}
	const R = 2
	remapped := 0
	for i := 0; i < 300; i++ {
		h := fmt.Sprintf("spec-%03d", i)
		before := rank(h, full)[:R]
		if before[0].key == removed || before[1].key == removed {
			remapped++
			continue
		}
		after := rank(h, reduced)[:R]
		if before[0].key != after[0].key || before[1].key != after[1].key {
			t.Fatalf("spec %s: replica set changed from [%s %s] to [%s %s] though %s was not a member",
				h, before[0].key, before[1].key, after[0].key, after[1].key, removed)
		}
	}
	if remapped == 0 {
		t.Fatal("no spec ever placed on the removed backend — the stability check tested nothing")
	}
}

// TestRankSpreadsPrimaries: every backend must carry a meaningful share
// of primary placements, or the "distributed" tier is one hot box.
func TestRankSpreadsPrimaries(t *testing.T) {
	bs := mkBackends("http://a", "http://b", "http://c")
	counts := map[string]int{}
	const n = 300
	for i := 0; i < n; i++ {
		counts[rank(fmt.Sprintf("hash-%04d", i), bs)[0].key]++
	}
	for _, b := range bs {
		if counts[b.key] < n/6 {
			t.Fatalf("backend %s is primary for only %d/%d specs", b.key, counts[b.key], n)
		}
	}
}
