package gateway

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/digs-net/digs/internal/gateway/faultproxy"
	"github.com/digs-net/digs/internal/scenario"
	"github.com/digs-net/digs/internal/server"
)

// faultedTier is a gateway over real backends, each behind its own
// fault proxy.
type faultedTier struct {
	g     *Gateway
	ts    *httptest.Server
	fleet *faultproxy.Fleet
}

// proxyFor maps a gateway backend key (a proxy URL) to its proxy.
func (ft *faultedTier) proxyFor(t *testing.T, key string) *faultproxy.Proxy {
	t.Helper()
	for _, p := range ft.fleet.Proxies {
		if p.URL() == key {
			return p
		}
	}
	t.Fatalf("no fault proxy for backend %s", key)
	return nil
}

// newFaultedTier stands up n backends behind fault proxies and a
// gateway tuned for fast fault detection.
func newFaultedTier(t *testing.T, n int) *faultedTier {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		ts := newBackendTS(t, fmt.Sprintf("b%d", i))
		addrs[i] = strings.TrimPrefix(ts.URL, "http://")
	}
	fleet, err := faultproxy.NewFleet(addrs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fleet.Close)
	g, ts := newTestGateway(t, Config{
		Backends:        fleet.URLs(),
		Replicas:        2,
		ProbeInterval:   100 * time.Millisecond,
		ProbeTimeout:    500 * time.Millisecond,
		BreakerFailures: 2,
		BreakerOpenFor:  500 * time.Millisecond,
		RequestTimeout:  2 * time.Second,
	})
	return &faultedTier{g: g, ts: ts, fleet: fleet}
}

// TestFailoverMatrix partitions each replica rank mid-burst and demands
// the same outcome every time: zero submission errors, every
// acknowledged job done, every result intact.
func TestFailoverMatrix(t *testing.T) {
	for _, tc := range []struct {
		name       string
		victimRank int
	}{
		{"partition-primary", 0},
		{"partition-secondary", 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ft := newFaultedTier(t, 3)
			const jobs = 6
			seedBase := int64(20000 + 1000*tc.victimRank)

			type acked struct{ jobID, hash string }
			var (
				mu   sync.Mutex
				acc  []acked
				errs []string
			)
			halfway := make(chan struct{})
			var once sync.Once
			var wg sync.WaitGroup
			for i := 0; i < jobs; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					spec := testSpec(seedBase + int64(i))
					body, _ := json.Marshal(spec)
					resp, err := http.Post(ft.ts.URL+"/v1/scenarios", "application/json", bytes.NewReader(body))
					mu.Lock()
					defer mu.Unlock()
					if err != nil {
						errs = append(errs, err.Error())
						return
					}
					var doc struct {
						JobID    string `json:"job_id"`
						SpecHash string `json:"spec_hash"`
						Error    string `json:"error"`
					}
					derr := json.NewDecoder(resp.Body).Decode(&doc)
					resp.Body.Close()
					if derr != nil || resp.StatusCode != http.StatusAccepted {
						errs = append(errs, fmt.Sprintf("seed %d: HTTP %d %s (%v)", seedBase+int64(i), resp.StatusCode, doc.Error, derr))
						return
					}
					acc = append(acc, acked{doc.JobID, doc.SpecHash})
					if len(acc) == jobs/2 {
						once.Do(func() { close(halfway) })
					}
				}(i)
			}
			select {
			case <-halfway:
			case <-time.After(30 * time.Second):
				t.Fatal("burst never reached half acknowledged")
			}

			// Partition the chosen replica rank of the first acked job.
			mu.Lock()
			firstHash := acc[0].hash
			mu.Unlock()
			replicas, _ := ft.g.replicaSet(firstHash)
			victim := replicas[tc.victimRank]
			ft.proxyFor(t, victim.key).Partition()

			// The probe must evict the victim within interval + timeout
			// (wide slack here: the suite runs many sims concurrently, and
			// the tight-budget assertion lives in digs-load -partition).
			evictDeadline := time.Now().Add(10 * time.Second)
			for victim.ready.Load() {
				if st, _ := victim.br.snapshot(); st == stateOpen {
					break
				}
				if time.Now().After(evictDeadline) {
					st, opens := victim.br.snapshot()
					t.Fatalf("partitioned backend %s never evicted (ready=%v breaker=%v opens=%d probeErr=%q)",
						victim.key, victim.ready.Load(), st, opens, victim.probeErr.Load())
				}
				time.Sleep(20 * time.Millisecond)
			}

			wg.Wait()
			if len(errs) > 0 {
				t.Fatalf("%d submissions surfaced errors through the gateway:\n  %s",
					len(errs), strings.Join(errs, "\n  "))
			}

			for _, a := range acc {
				view := waitJobDone(t, ft.ts.URL, a.jobID)
				if view.Status != server.StatusDone {
					t.Fatalf("job %s ended %s: %s", a.jobID, view.Status, view.Error)
				}
				resp, err := http.Get(ft.ts.URL + "/v1/results/" + a.hash)
				if err != nil {
					t.Fatal(err)
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("job %s: result read HTTP %d", a.jobID, resp.StatusCode)
				}
				sum := sha256.Sum256(bytes.TrimSpace(body))
				if got := hex.EncodeToString(sum[:]); got != view.ResultHash {
					t.Fatalf("job %s: result hashes to %s, view reports %s", a.jobID, got, view.ResultHash)
				}
			}
		})
	}
}

// sseCapture is one followed SSE stream: the telemetry lines received,
// dropped-gap totals, and the terminal view. indeterminate records a
// "dropped -1" event — the gateway signalling an unknowable tail gap
// when it had to terminate from a stored result with no live job left.
type sseCapture struct {
	lines         []string
	dropped       int
	indeterminate bool
	failovers     int
	done          *server.View
	streamError   string
}

// followSSE consumes a gateway job stream to its terminal event.
func followSSE(t *testing.T, gwURL, jobID string, onLine func(n int)) *sseCapture {
	t.Helper()
	resp, err := http.Get(gwURL + "/v1/jobs/" + jobID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: HTTP %d", resp.StatusCode)
	}
	cap := &sseCapture{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	event := "message"
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "done":
				var v server.View
				if err := json.Unmarshal([]byte(data), &v); err != nil {
					t.Fatalf("done event: %v", err)
				}
				cap.done = &v
				return cap
			case "dropped":
				n, err := strconv.Atoi(strings.TrimSpace(data))
				if err != nil {
					t.Fatalf("dropped event %q: %v", data, err)
				}
				if n < 0 {
					cap.indeterminate = true
				} else {
					cap.dropped += n
				}
			case "failover":
				cap.failovers++
			case "error":
				cap.streamError = data
				return cap
			default:
				cap.lines = append(cap.lines, data)
				if onLine != nil {
					onLine(len(cap.lines))
				}
			}
		case line == "":
			event = "message"
		}
	}
	t.Fatalf("stream ended without a terminal event (%v)", sc.Err())
	return nil
}

// TestStreamFailoverReattach partitions the replica serving a live SSE
// stream and demands the stream keep going on a survivor: the client
// still reaches the done event, and the logical line accounting
// (delivered + reported-dropped) matches an uninterrupted reference
// stream — no duplicated and no silently lost telemetry.
func TestStreamFailoverReattach(t *testing.T) {
	ft := newFaultedTier(t, 3)

	// A longer window gives the stream time to be mid-flight when the
	// partition lands.
	spec := scenario.Spec{
		Topology: "half-testbed-a", Protocol: "digs", Seed: 31,
		Period: scenario.Duration(2 * time.Second),
		Window: scenario.Duration(120 * time.Second),
	}
	code, doc, _ := postSpec(t, ft.ts.URL, spec, nil)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	jobID := jsonStr(t, doc, "job_id")
	hash := jsonStr(t, doc, "spec_hash")
	replicas, _ := ft.g.replicaSet(hash)
	primaryProxy := ft.proxyFor(t, replicas[0].key)

	// Partition the stream's serving replica after a few lines arrive.
	var partitionOnce sync.Once
	live := followSSE(t, ft.ts.URL, jobID, func(n int) {
		if n == 5 {
			partitionOnce.Do(primaryProxy.Partition)
		}
	})
	if live.streamError != "" {
		t.Fatalf("stream errored: %s", live.streamError)
	}
	if live.done == nil || live.done.Status != server.StatusDone {
		t.Fatalf("stream never reached a done event (%+v)", live.done)
	}
	if live.done.JobID != jobID {
		t.Fatalf("done event carries job %q, want %q", live.done.JobID, jobID)
	}

	// Reference: heal and replay the whole stream uninterrupted.
	primaryProxy.Heal()
	ref := followSSE(t, ft.ts.URL, jobID, nil)
	if ref.done == nil || ref.done.Status != server.StatusDone {
		t.Fatal("reference stream never reached done")
	}
	if live.done.ResultHash != ref.done.ResultHash {
		t.Fatalf("result hash diverged across failover: %s vs %s", live.done.ResultHash, ref.done.ResultHash)
	}

	// Logical accounting: delivered + dropped must name every line once.
	// An indeterminate gap would mean the stream fell back to a stored
	// result — with eager replication a live replica must always exist
	// here, so exactness is required.
	if live.indeterminate || ref.indeterminate {
		t.Fatalf("stream reported an indeterminate gap (live=%v ref=%v), want exact accounting",
			live.indeterminate, ref.indeterminate)
	}
	liveTotal := len(live.lines) + live.dropped
	refTotal := len(ref.lines) + ref.dropped
	if liveTotal != refTotal {
		t.Fatalf("failover stream accounts for %d lines (%d delivered + %d dropped), reference for %d (%d + %d)",
			liveTotal, len(live.lines), live.dropped, refTotal, len(ref.lines), ref.dropped)
	}
	// Replicas are bit-identical, so the delivered suffixes must agree
	// line for line.
	n := len(live.lines)
	if len(ref.lines) < n {
		n = len(ref.lines)
	}
	for i := 1; i <= n; i++ {
		if live.lines[len(live.lines)-i] != ref.lines[len(ref.lines)-i] {
			t.Fatalf("line %d from the end diverges across failover", i)
		}
	}
}
