// Package faultproxy is a fault-injecting TCP reverse proxy for
// exercising the gateway's failover matrix deterministically: it sits
// between the gateway and one backend and, on command, drops
// connections, blackholes them (accept, read, never answer — a network
// partition as the client experiences one), delays traffic, answers
// with injected 503s, or resets connections mid-response-body. Tests
// and `digs-load -gateway -partition` flip the faults at exact moments
// instead of hoping a real network misbehaves on cue.
package faultproxy

import (
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Mode is the proxy's current fault behavior.
type Mode int32

const (
	// Forward passes traffic through untouched.
	Forward Mode = iota
	// Drop refuses connections: accepted and closed immediately, the
	// way a dead process's OS answers with RST.
	Drop
	// Blackhole accepts connections and reads forever without ever
	// answering — a partition or a hung process; only the client's
	// timeout gets it out.
	Blackhole
	// Err503 answers every request with a canned HTTP 503 and closes.
	Err503
)

// Proxy is one fault-injecting listener in front of one backend.
type Proxy struct {
	target string
	ln     net.Listener

	mode       atomic.Int32
	latency    atomic.Int64 // nanoseconds added before the backend sees each connection
	resetAfter atomic.Int64 // >0: cut the backend->client copy after this many bytes

	mu    sync.Mutex
	conns map[net.Conn]struct{}
	done  chan struct{}
}

// New starts a proxy on a kernel-assigned loopback port forwarding to
// target (a host:port). Close it when done.
func New(target string) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		target: target,
		ln:     ln,
		conns:  map[net.Conn]struct{}{},
		done:   make(chan struct{}),
	}
	go p.accept()
	return p, nil
}

// Addr is the proxy's listen address (host:port).
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// URL is the proxy's base URL.
func (p *Proxy) URL() string { return "http://" + p.Addr() }

// SetMode switches the fault behavior for all future connections.
// Existing connections are left alone — use CutConns to sever them,
// which is what a real partition does to established flows.
func (p *Proxy) SetMode(m Mode) { p.mode.Store(int32(m)) }

// SetLatency adds a fixed delay before each new connection reaches the
// backend (0 disables).
func (p *Proxy) SetLatency(d time.Duration) { p.latency.Store(int64(d)) }

// SetResetAfter arranges for every future backend response stream to be
// cut with a connection reset after n bytes (0 disables) — the mid-body
// failure that exposes clients who only check status codes.
func (p *Proxy) SetResetAfter(n int64) { p.resetAfter.Store(n) }

// Partition is Blackhole for new connections plus an immediate cut of
// every established one: the full partition experience.
func (p *Proxy) Partition() {
	p.SetMode(Blackhole)
	p.CutConns()
}

// Heal restores transparent forwarding.
func (p *Proxy) Heal() { p.SetMode(Forward) }

// CutConns severs every established connection with RST.
func (p *Proxy) CutConns() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for c := range p.conns {
		abort(c)
		delete(p.conns, c)
	}
}

// Close stops the listener and severs everything.
func (p *Proxy) Close() {
	close(p.done)
	p.ln.Close()
	p.CutConns()
}

// abort closes a TCP conn with linger 0 so the peer sees RST, not FIN —
// "connection reset by peer", the rudest failure shape.
func abort(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	c.Close()
}

func (p *Proxy) track(c net.Conn) {
	p.mu.Lock()
	p.conns[c] = struct{}{}
	p.mu.Unlock()
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

func (p *Proxy) accept() {
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		go p.serve(c)
	}
}

const canned503 = "HTTP/1.1 503 Service Unavailable\r\n" +
	"Content-Type: application/json\r\n" +
	"Retry-After: 1\r\n" +
	"Connection: close\r\n" +
	"Content-Length: 32\r\n\r\n" +
	`{"error":"injected fault: 503"}` + "\n"

func (p *Proxy) serve(client net.Conn) {
	switch Mode(p.mode.Load()) {
	case Drop:
		abort(client)
		return
	case Blackhole:
		p.track(client)
		defer p.untrack(client)
		// Swallow bytes until the client gives up or the mode changes
		// out from under us (poll so a healed proxy releases the conn).
		buf := make([]byte, 4096)
		for Mode(p.mode.Load()) == Blackhole {
			client.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
			if _, err := client.Read(buf); err != nil {
				if ne, ok := err.(net.Error); ok && ne.Timeout() {
					continue
				}
				client.Close()
				return
			}
		}
		// Healed mid-connection: too late to replay the request; reset so
		// the client retries against the now-healthy path.
		abort(client)
		return
	case Err503:
		p.track(client)
		defer p.untrack(client)
		// Read a request's worth of bytes, answer 503, close.
		client.SetReadDeadline(time.Now().Add(5 * time.Second))
		buf := make([]byte, 8192)
		client.Read(buf)
		client.Write([]byte(canned503))
		client.Close()
		return
	}

	if d := time.Duration(p.latency.Load()); d > 0 {
		select {
		case <-time.After(d):
		case <-p.done:
			abort(client)
			return
		}
	}
	upstream, err := net.DialTimeout("tcp", p.target, 5*time.Second)
	if err != nil {
		abort(client)
		return
	}
	p.track(client)
	p.track(upstream)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		io.Copy(upstream, client)
		if tc, ok := upstream.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
	}()
	go func() {
		defer wg.Done()
		if limit := p.resetAfter.Load(); limit > 0 {
			_, err := io.CopyN(client, upstream, limit)
			if err == nil {
				// Budget exhausted mid-body: reset both sides.
				abort(client)
				abort(upstream)
				return
			}
		} else {
			io.Copy(client, upstream)
		}
		if tc, ok := client.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
	}()
	wg.Wait()
	p.untrack(client)
	p.untrack(upstream)
	client.Close()
	upstream.Close()
}

// String names the mode for logs.
func (m Mode) String() string {
	switch m {
	case Drop:
		return "drop"
	case Blackhole:
		return "blackhole"
	case Err503:
		return "err503"
	default:
		return "forward"
	}
}

// Fleet is a set of proxies, one per backend, for harnesses that stand
// a whole tier behind faults.
type Fleet struct {
	Proxies []*Proxy
}

// NewFleet builds one proxy per target.
func NewFleet(targets []string) (*Fleet, error) {
	f := &Fleet{}
	for _, t := range targets {
		p, err := New(t)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("faultproxy for %s: %w", t, err)
		}
		f.Proxies = append(f.Proxies, p)
	}
	return f, nil
}

// URLs returns the proxy-side base URLs in target order.
func (f *Fleet) URLs() []string {
	urls := make([]string, len(f.Proxies))
	for i, p := range f.Proxies {
		urls[i] = p.URL()
	}
	return urls
}

// Close closes every proxy.
func (f *Fleet) Close() {
	for _, p := range f.Proxies {
		p.Close()
	}
}
