package faultproxy_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/digs-net/digs/internal/gateway/faultproxy"
)

// newUpstream is a plain HTTP server answering every request with body.
func newUpstream(t *testing.T, body []byte) string {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Write(body)
	}))
	t.Cleanup(ts.Close)
	return strings.TrimPrefix(ts.URL, "http://")
}

func newProxy(t *testing.T, target string) *faultproxy.Proxy {
	t.Helper()
	p, err := faultproxy.New(target)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

func TestForward(t *testing.T) {
	p := newProxy(t, newUpstream(t, []byte("through the proxy\n")))
	resp, err := http.Get(p.URL())
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || string(b) != "through the proxy\n" {
		t.Fatalf("forward: HTTP %d body %q", resp.StatusCode, b)
	}
}

func TestErr503(t *testing.T) {
	p := newProxy(t, newUpstream(t, []byte("ok")))
	p.SetMode(faultproxy.Err503)
	resp, err := http.Get(p.URL())
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("injected fault: HTTP %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("injected 503 carries Retry-After %q, want \"1\"", ra)
	}
	var doc struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil || doc.Error == "" {
		t.Fatalf("injected 503 body not a JSON error document: %v", err)
	}
}

func TestDropRefusesConnections(t *testing.T) {
	p := newProxy(t, newUpstream(t, []byte("ok")))
	p.SetMode(faultproxy.Drop)
	if _, err := http.Get(p.URL()); err == nil {
		t.Fatal("dropped connection still produced an HTTP response")
	}
}

func TestBlackholeAndHeal(t *testing.T) {
	p := newProxy(t, newUpstream(t, []byte("alive\n")))
	p.SetMode(faultproxy.Blackhole)
	cl := &http.Client{Timeout: 300 * time.Millisecond}
	start := time.Now()
	if _, err := cl.Get(p.URL()); err == nil {
		t.Fatal("blackholed request answered")
	}
	if d := time.Since(start); d < 250*time.Millisecond {
		t.Fatalf("blackholed request failed in %v — it was refused, not blackholed", d)
	}
	p.Heal()
	resp, err := http.Get(p.URL())
	if err != nil {
		t.Fatalf("healed proxy still failing: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healed proxy: HTTP %d", resp.StatusCode)
	}
}

func TestResetMidBody(t *testing.T) {
	p := newProxy(t, newUpstream(t, bytes.Repeat([]byte("x"), 256<<10)))
	p.SetResetAfter(4096)
	resp, err := http.Get(p.URL())
	if err != nil {
		// The reset can land before the headers finish; that is a valid
		// mid-stream failure too.
		return
	}
	defer resp.Body.Close()
	if _, err := io.ReadAll(resp.Body); err == nil {
		t.Fatal("256KiB body read completely through a 4KiB reset budget")
	}
}

// TestPartitionCutsEstablished: a partition must sever in-flight
// streams, not just refuse new connections.
func TestPartitionCutsEstablished(t *testing.T) {
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.(http.Flusher).Flush()
		w.Write([]byte("first chunk\n"))
		w.(http.Flusher).Flush()
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer ts.Close()
	defer close(release)

	p := newProxy(t, strings.TrimPrefix(ts.URL, "http://"))
	resp, err := http.Get(p.URL())
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 64)
	if _, err := resp.Body.Read(buf); err != nil {
		t.Fatalf("reading the first chunk: %v", err)
	}

	p.Partition()
	readErr := make(chan error, 1)
	go func() {
		_, err := io.ReadAll(resp.Body)
		readErr <- err
	}()
	select {
	case err := <-readErr:
		if err == nil {
			t.Fatal("stream ended cleanly across a partition")
		}
	case <-time.After(3 * time.Second):
		t.Fatal("partition left the established stream hanging instead of resetting it")
	}
}
