package gateway

import (
	"sync"
	"time"
)

// breakerState is one of the classic three circuit-breaker states.
type breakerState int

const (
	// stateClosed: requests flow; outcomes are counted.
	stateClosed breakerState = iota
	// stateOpen: the backend is presumed down; requests are refused
	// until the cooldown elapses.
	stateOpen
	// stateHalfOpen: the cooldown elapsed; exactly one trial request is
	// admitted to decide between closing and re-opening.
	stateHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case stateOpen:
		return "open"
	case stateHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breakerConfig parameterises one backend's circuit breaker.
type breakerConfig struct {
	// consecFailures trips the breaker after this many errors in a row
	// (default 3).
	consecFailures int
	// window is the sliding outcome window for the failure-rate trip
	// (default 16 outcomes).
	window int
	// rate trips the breaker when the windowed failure rate reaches this
	// fraction with at least window/2 outcomes recorded (default 0.5) —
	// catches a backend that fails every other request without ever
	// producing a long consecutive run.
	rate float64
	// openFor is the cooldown before an open breaker admits its
	// half-open trial (default 2s).
	openFor time.Duration
	// now is the test seam for the cooldown clock.
	now func() time.Time
}

func (c breakerConfig) withDefaults() breakerConfig {
	if c.consecFailures <= 0 {
		c.consecFailures = 3
	}
	if c.window <= 0 {
		c.window = 16
	}
	if c.rate <= 0 {
		c.rate = 0.5
	}
	if c.openFor <= 0 {
		c.openFor = 2 * time.Second
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// breaker is a per-backend circuit breaker fed by both health probes
// and real request outcomes. allow is a gate, not a pure query: in the
// half-open state it admits exactly one trial at a time, so callers
// must report the outcome of every allowed request via success/failure.
type breaker struct {
	mu       sync.Mutex
	cfg      breakerConfig
	state    breakerState
	consec   int
	outcomes []bool // ring of recent outcomes, true = failure
	oi, on   int
	openedAt time.Time
	trial    bool // a half-open trial is in flight
	opens    int64
}

func newBreaker(cfg breakerConfig) *breaker {
	cfg = cfg.withDefaults()
	return &breaker{cfg: cfg, outcomes: make([]bool, cfg.window)}
}

// allow reports whether a request may be sent to this backend now, and
// reserves the half-open trial slot when it grants one there.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stateClosed:
		return true
	case stateOpen:
		if b.cfg.now().Sub(b.openedAt) < b.cfg.openFor {
			return false
		}
		b.state = stateHalfOpen
		b.trial = true
		return true
	default: // half-open
		if b.trial {
			return false
		}
		b.trial = true
		return true
	}
}

// success records a request (or probe) that reached the backend and got
// a sane answer. A half-open trial success closes the breaker with a
// clean slate; in the closed state the outcome still lands in the
// window, so a backend failing every other request trips on rate even
// though successes keep breaking its consecutive run.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.trial = false
	b.consec = 0
	if b.state != stateClosed {
		b.state = stateClosed
		b.on, b.oi = 0, 0
		return
	}
	b.outcomes[b.oi] = false
	b.oi = (b.oi + 1) % b.cfg.window
	if b.on < b.cfg.window {
		b.on++
	}
}

// failure records a transport error, timeout, or 5xx. A half-open trial
// failure re-opens immediately; a closed breaker trips on a consecutive
// run or on the windowed failure rate.
func (b *breaker) failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.trial = false
	b.consec++
	b.outcomes[b.oi] = true
	b.oi = (b.oi + 1) % b.cfg.window
	if b.on < b.cfg.window {
		b.on++
	}
	switch b.state {
	case stateHalfOpen:
		b.trip()
	case stateClosed:
		if b.consec >= b.cfg.consecFailures || b.failureRate() >= b.cfg.rate {
			b.trip()
		}
	}
}

// failureRate is the windowed failure fraction, or 0 while the sample
// is too small to judge. Callers hold b.mu.
func (b *breaker) failureRate() float64 {
	if b.on < b.cfg.window/2 {
		return 0
	}
	fails := 0
	for i := 0; i < b.on; i++ {
		if b.outcomes[i] {
			fails++
		}
	}
	return float64(fails) / float64(b.on)
}

// trip opens the breaker. Callers hold b.mu.
func (b *breaker) trip() {
	b.state = stateOpen
	b.openedAt = b.cfg.now()
	b.opens++
	b.consec = 0
}

// snapshot returns the state and trip count for the stats surface.
func (b *breaker) snapshot() (breakerState, int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.opens
}
