// Package gateway is the fault-tolerant front tier over a fleet of
// digs-server backends: one HTTP surface that routes scenario
// submissions by rendezvous hashing on the canonical spec hash (the
// content address is the routing key) with R-way replica placement,
// probes every backend's /readyz, trips per-backend circuit breakers,
// fails submissions and reads over to surviving replicas, hedges slow
// reads after an adaptive latency budget, and read-repairs results that
// survive on only one replica. A client sees one durable service; the
// loss of a whole backend costs at most a failover, never an error.
package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/digs-net/digs/internal/scenario"
	"github.com/digs-net/digs/internal/server"
)

// Config parameterises a Gateway.
type Config struct {
	// Backends are the digs-server base URLs (e.g. http://10.0.0.1:8080).
	// Their order does not matter: placement is by rendezvous hash.
	Backends []string
	// Replicas is the R in R-way placement: how many backends each spec
	// is assigned to (default 2, clamped to len(Backends)).
	Replicas int
	// ProbeInterval is how often each backend's /readyz is polled
	// (default 500ms); ProbeTimeout bounds one probe (default 1s).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// BreakerFailures trips a backend's breaker after that many
	// consecutive errors (default 3); BreakerWindow/BreakerRate trip it
	// on a windowed failure rate; BreakerOpenFor is the open-state
	// cooldown before the half-open trial (default 2s).
	BreakerFailures int
	BreakerWindow   int
	BreakerRate     float64
	BreakerOpenFor  time.Duration
	// SubmitRetries bounds the total backend POST attempts one client
	// submission may consume across failover and 429/503 backoff rounds
	// (default 12).
	SubmitRetries int
	// RetryBase/RetryCap bound the jittered backoff between submission
	// retry rounds; Retry-After hints from backends are respected within
	// [RetryBase, RetryCap] (defaults 100ms / 2s).
	RetryBase time.Duration
	RetryCap  time.Duration
	// RequestTimeout bounds one backend API call (default 10s). SSE
	// streams are exempt: they live on the client's context instead.
	RequestTimeout time.Duration
	// HedgeDelay is how long a status/result read waits on one replica
	// before hedging to the next. Zero means adaptive: the p90 of recent
	// read latencies, clamped to [10ms, 2s].
	HedgeDelay time.Duration
	// JobCap bounds the gateway's job-record table (default 4096);
	// oldest records are forgotten first.
	JobCap int
	// Transport overrides the backend HTTP transport (tests).
	Transport http.RoundTripper
}

func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.Replicas > len(c.Backends) {
		c.Replicas = len(c.Backends)
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.BreakerOpenFor <= 0 {
		c.BreakerOpenFor = 2 * time.Second
	}
	if c.SubmitRetries <= 0 {
		c.SubmitRetries = 12
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 100 * time.Millisecond
	}
	if c.RetryCap <= 0 {
		c.RetryCap = 2 * time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.JobCap <= 0 {
		c.JobCap = 4096
	}
	return c
}

// backend is one digs-server behind the gateway.
type backend struct {
	key  string // routing key and display name: the base URL
	base string
	br   *breaker

	ready     atomic.Bool
	probeErr  atomic.Value // string: last probe failure, "" when ready
	requests  atomic.Int64
	failures  atomic.Int64
	primaries atomic.Int64 // jobs placed with this backend as primary
}

// routable reports whether new work may be sent to this backend now.
// It consults the probed readiness first so a half-open breaker is not
// spent on a backend the prober already knows is gone.
func (b *backend) routable() bool {
	return b.ready.Load() && b.br.allow()
}

// gwJob is the gateway's record of one accepted submission: the spec
// bytes (so any replica can be (re)submitted to at any time), the
// placement, and the per-backend acknowledgements collected so far.
type gwJob struct {
	ID       string
	SpecHash string
	Tenant   string
	specJSON []byte
	replicas []*backend // placement order: rank(hash)[:R]

	mu   sync.Mutex
	acks map[string]string // backend key -> backend-local job ID
}

func (j *gwJob) ack(b *backend) string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.acks[b.key]
}

func (j *gwJob) setAck(b *backend, localID string) {
	j.mu.Lock()
	j.acks[b.key] = localID
	j.mu.Unlock()
}

func (j *gwJob) dropAck(b *backend) {
	j.mu.Lock()
	delete(j.acks, b.key)
	j.mu.Unlock()
}

// Gateway is the front tier.
type Gateway struct {
	cfg      Config
	backends []*backend
	client   *http.Client // bounded API calls
	stream   *http.Client // SSE: no timeout, canceled by request context

	mu    sync.Mutex
	jobs  map[string]*gwJob
	order []string // job insertion order, for JobCap pruning

	nextID  atomic.Int64
	nextReq atomic.Int64
	stopCh  chan struct{}
	probeWg sync.WaitGroup
	lat     *latTracker

	submitted, accepted, dedupHits, cacheHits atomic.Int64
	failovers, resubmits, shed                atomic.Int64
	hedged, hedgeWins, readRepairs            atomic.Int64
	retried429                                atomic.Int64
}

// New builds a Gateway over the configured backends and starts their
// health probers. Close releases the probers.
func New(cfg Config) (*Gateway, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("gateway: no backends configured")
	}
	g := &Gateway{
		cfg:    cfg,
		jobs:   make(map[string]*gwJob),
		stopCh: make(chan struct{}),
		lat:    newLatTracker(cfg.HedgeDelay),
	}
	g.client = &http.Client{Transport: cfg.Transport}
	g.stream = &http.Client{Transport: cfg.Transport}
	seen := map[string]bool{}
	for _, raw := range cfg.Backends {
		base := strings.TrimRight(raw, "/")
		if _, err := url.Parse(base); err != nil || base == "" {
			return nil, fmt.Errorf("gateway: bad backend URL %q", raw)
		}
		if seen[base] {
			return nil, fmt.Errorf("gateway: duplicate backend %q", base)
		}
		seen[base] = true
		b := &backend{
			key:  base,
			base: base,
			br: newBreaker(breakerConfig{
				consecFailures: cfg.BreakerFailures,
				window:         cfg.BreakerWindow,
				rate:           cfg.BreakerRate,
				openFor:        cfg.BreakerOpenFor,
			}),
		}
		// Optimistic until the first probe answers: a gateway that boots
		// ahead of its probers must not shed its first requests.
		b.ready.Store(true)
		b.probeErr.Store("")
		g.backends = append(g.backends, b)
	}
	for _, b := range g.backends {
		g.probeWg.Add(1)
		go g.probeLoop(b)
	}
	return g, nil
}

// Close stops the health probers. In-flight requests finish on their
// own contexts.
func (g *Gateway) Close() {
	close(g.stopCh)
	g.probeWg.Wait()
}

// probeLoop polls one backend's /readyz forever: an unreachable, slow,
// draining, or degraded backend is marked not ready within one probe
// interval + timeout, and the breaker hears about it too, so routing
// walks past the backend without burning a client request on it. A
// recovering backend is re-admitted the same way (probe success is the
// half-open trial).
func (g *Gateway) probeLoop(b *backend) {
	defer g.probeWg.Done()
	t := time.NewTicker(g.cfg.ProbeInterval)
	defer t.Stop()
	for {
		g.probeOnce(b)
		select {
		case <-g.stopCh:
			return
		case <-t.C:
		}
	}
}

func (g *Gateway) probeOnce(b *backend) {
	ctx, cancel := context.WithTimeout(context.Background(), g.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.base+"/readyz", nil)
	if err != nil {
		return
	}
	resp, err := g.client.Do(req)
	if err != nil {
		b.ready.Store(false)
		b.probeErr.Store(err.Error())
		b.br.failure()
		return
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.ready.Store(false)
		b.probeErr.Store(fmt.Sprintf("readyz: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(body))))
		b.br.failure()
		return
	}
	b.ready.Store(true)
	b.probeErr.Store("")
	b.br.success()
}

// fetchRes is one completed backend HTTP exchange.
type fetchRes struct {
	status int
	body   []byte
	header http.Header
}

// call performs one bounded API call against a backend and feeds the
// breaker: transport errors and 5xx are failures, everything else
// (including 404 and 429 — the backend is alive and talking) is a
// success. The error return is non-nil only when no HTTP response
// exists.
func (g *Gateway) call(ctx context.Context, b *backend, method, path string, body []byte, hdr http.Header) (*fetchRes, error) {
	ctx, cancel := context.WithTimeout(ctx, g.cfg.RequestTimeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, b.base+path, rd)
	if err != nil {
		return nil, err
	}
	for k, vs := range hdr {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	b.requests.Add(1)
	resp, err := g.client.Do(req)
	if err != nil {
		b.failures.Add(1)
		b.br.failure()
		return nil, err
	}
	defer resp.Body.Close()
	rb, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		b.failures.Add(1)
		b.br.failure()
		return nil, fmt.Errorf("reading %s %s response: %w", method, path, err)
	}
	if resp.StatusCode >= 500 {
		b.failures.Add(1)
		b.br.failure()
	} else {
		b.br.success()
	}
	return &fetchRes{status: resp.StatusCode, body: rb, header: resp.Header}, nil
}

// replicaSet is the spec's placement: the top R backends by rendezvous
// rank, followed by the rest of the fleet as spillover candidates.
func (g *Gateway) replicaSet(specHash string) (replicas, spill []*backend) {
	ranked := rank(specHash, g.backends)
	return ranked[:g.cfg.Replicas], ranked[g.cfg.Replicas:]
}

// requestID returns the caller's X-DiGS-Request, minting one when the
// caller sent none, so every hop of this request shares one trace ID.
func (g *Gateway) requestID(r *http.Request) string {
	if rid := r.Header.Get(server.HeaderRequest); rid != "" {
		return rid
	}
	return fmt.Sprintf("r-%08d", g.nextReq.Add(1))
}

// backendHeaders builds the headers forwarded on every backend call.
func backendHeaders(reqID, tenant string) http.Header {
	h := http.Header{}
	h.Set(server.HeaderRequest, reqID)
	if tenant != "" {
		h.Set("X-DiGS-Tenant", tenant)
	}
	return h
}

// registerJob records an accepted submission under a fresh gateway job
// ID, pruning the oldest records past JobCap.
func (g *Gateway) registerJob(specHash, tenant string, specJSON []byte, replicas []*backend) *gwJob {
	j := &gwJob{
		ID:       fmt.Sprintf("g-%06d", g.nextID.Add(1)),
		SpecHash: specHash,
		Tenant:   tenant,
		specJSON: specJSON,
		replicas: replicas,
		acks:     map[string]string{},
	}
	g.mu.Lock()
	g.jobs[j.ID] = j
	g.order = append(g.order, j.ID)
	for len(g.order) > g.cfg.JobCap {
		delete(g.jobs, g.order[0])
		g.order = g.order[1:]
	}
	g.mu.Unlock()
	return j
}

func (g *Gateway) jobByID(id string) *gwJob {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.jobs[id]
}

// Handler returns the gateway's HTTP surface — the same API shape as a
// single digs-server, so clients cannot tell one durable process from a
// replicated tier.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/scenarios", g.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", g.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", g.handleStream)
	mux.HandleFunc("GET /v1/jobs/{id}/result", g.handleJobResult)
	mux.HandleFunc("GET /v1/results/{hash}", g.handleResult)
	mux.HandleFunc("GET /v1/stats", g.handleStats)
	// The gateway is alive as long as it answers; it is ready as long as
	// at least one backend is routable.
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		for _, b := range g.backends {
			if b.ready.Load() {
				w.Write([]byte("ok\n"))
				return
			}
		}
		http.Error(w, "no ready backends", http.StatusServiceUnavailable)
	})
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(server.HeaderRequest, g.requestID(r))
		mux.ServeHTTP(w, r)
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

// submitOutcome is what one successful submission routing produced.
type submitOutcome struct {
	backend *backend
	status  int    // 200 (cached) or 202 (accepted)
	localID string // backend job ID on 202
	body    []byte // raw backend response body
}

// handleSubmit routes POST /v1/scenarios: validate and hash the spec,
// pick its replica set, land it on the first routable replica (with
// bounded, Retry-After-respecting retries absorbing 429/503), replicate
// to the rest of the set in the background, and answer with a
// gateway-scoped job ID. Client errors (400/413) pass through from the
// first backend that renders the verdict — every backend would agree.
func (g *Gateway) handleSubmit(w http.ResponseWriter, r *http.Request) {
	reqID := w.Header().Get(server.HeaderRequest)
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	var spec scenario.Spec
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{fmt.Sprintf("decoding spec: %v", err)})
		return
	}
	if err := spec.Validate(); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{err.Error()})
		return
	}
	hash, err := spec.Hash()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{err.Error()})
		return
	}
	specJSON, err := json.Marshal(spec)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{err.Error()})
		return
	}
	g.submitted.Add(1)
	tenant := r.Header.Get("X-DiGS-Tenant")

	replicas, spill := g.replicaSet(hash)
	out, herr := g.submitSomewhere(r.Context(), hash, specJSON, replicas, spill, backendHeaders(reqID, tenant))
	if herr != nil {
		herr.write(w)
		return
	}
	if out.status == http.StatusOK {
		// Content-addressed cache hit on a replica: pass it through.
		g.cacheHits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.Write(out.body)
		return
	}
	out.backend.primaries.Add(1)
	g.accepted.Add(1)
	// Dedup is the backends' job (they collapse in-flight twins onto one
	// backend job and serve finished twins from the result store); the
	// gateway just keeps its own record per client submission. Two
	// gateway jobs may share one backend job — reads don't care.
	var acc struct {
		Dedup bool `json:"dedup"`
	}
	if json.Unmarshal(out.body, &acc) == nil && acc.Dedup {
		g.dedupHits.Add(1)
	}
	j := g.registerJob(hash, tenant, specJSON, replicas)
	j.setAck(out.backend, out.localID)
	// R-way placement: the remaining replicas get the same spec in the
	// background. Backends dedup by hash, runs are bit-identical, and a
	// replica that is down right now is caught later by the read-side
	// failover resubmit or the read-repair path.
	go g.replicate(j)
	w.Header().Set(server.HeaderJob, j.ID)
	writeJSON(w, http.StatusAccepted, map[string]any{
		"job_id": j.ID, "spec_hash": hash, "status": "queued",
		"backend": out.backend.key,
	})
}

// httpError is a deferred client-facing error response.
type httpError struct {
	status     int
	msg        string
	retryAfter bool
}

func (e *httpError) write(w http.ResponseWriter) {
	if e.retryAfter {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, e.status, apiError{e.msg})
}

// submitSomewhere lands the spec on the first candidate that takes it,
// under one shared attempt budget. Candidates are tried in placement
// order; 429/503 answers are absorbed by jittered backoff rounds that
// respect Retry-After, transport errors and 5xx fail the candidate over
// to the next, and 4xx verdicts are final. Every round consumes budget
// — each attempt costs one unit, and a round with no routable candidate
// at all costs one too — so even a fleet-wide outage degrades to the
// 503 + Retry-After shed path within SubmitRetries rounds instead of
// retrying forever.
func (g *Gateway) submitSomewhere(ctx context.Context, hash string, specJSON []byte, replicas, spill []*backend, hdr http.Header) (*submitOutcome, *httpError) {
	budget := g.cfg.SubmitRetries
	wait := g.cfg.RetryBase
	candidates := append(append([]*backend(nil), replicas...), spill...)
	for round := 0; budget > 0; round++ {
		sawBackpressure := false
		attempted := false
		var hint time.Duration
		for ci, b := range candidates {
			if budget <= 0 {
				break
			}
			if !b.routable() {
				continue
			}
			budget--
			attempted = true
			if round > 0 || ci > 0 {
				g.failovers.Add(1)
			}
			res, err := g.call(ctx, b, http.MethodPost, "/v1/scenarios", specJSON, hdr)
			if err != nil {
				if ctx.Err() != nil {
					return nil, &httpError{status: 499, msg: "client canceled"}
				}
				continue // transport failure: next candidate
			}
			switch {
			case res.status == http.StatusOK:
				return &submitOutcome{backend: b, status: res.status, body: res.body}, nil
			case res.status == http.StatusAccepted:
				var acc struct {
					JobID string `json:"job_id"`
				}
				if json.Unmarshal(res.body, &acc) != nil || acc.JobID == "" {
					continue
				}
				return &submitOutcome{backend: b, status: res.status, localID: acc.JobID, body: res.body}, nil
			case res.status == http.StatusTooManyRequests || res.status == http.StatusServiceUnavailable:
				// Backpressure or draining/degraded: remember the hint and
				// fail over to the next replica first; a backoff round only
				// happens when the whole fleet is pushing back.
				sawBackpressure = true
				if d := retryAfterHint(res.header); d > hint {
					hint = d
				}
				if res.status == http.StatusTooManyRequests {
					g.retried429.Add(1)
				}
				continue
			case res.status >= 500:
				continue
			default:
				// 400/413/...: a verdict about the spec, not the backend.
				var ae apiError
				_ = json.Unmarshal(res.body, &ae)
				return nil, &httpError{status: res.status, msg: ae.Error}
			}
		}
		if !attempted {
			// A fleet-wide outage (every probe failing or breaker open)
			// makes zero attempts, so the round must consume budget itself —
			// otherwise the loop would spin forever and the documented
			// 503 shed path would never be reached.
			budget--
		}
		if budget <= 0 {
			break
		}
		if !sawBackpressure {
			// Nothing routable answered at all this round: brief pause so a
			// probe can notice a recovery, then try again within budget.
			hint = wait
		}
		d := jitter(maxDur(hint, wait))
		if d > g.cfg.RetryCap {
			d = g.cfg.RetryCap
		}
		select {
		case <-ctx.Done():
			return nil, &httpError{status: 499, msg: "client canceled"}
		case <-time.After(d):
		}
		wait *= 2
		if wait > g.cfg.RetryCap {
			wait = g.cfg.RetryCap
		}
	}
	g.shed.Add(1)
	return nil, &httpError{
		status: http.StatusServiceUnavailable, retryAfter: true,
		msg: "no backend accepted the submission within the retry budget",
	}
}

// replicate pushes the job's spec to every replica the gateway holds no
// ack from yet. Best-effort: a replica that is down is repaired later
// by read-side resubmission or read-repair.
func (g *Gateway) replicate(j *gwJob) {
	ctx, cancel := context.WithTimeout(context.Background(), g.cfg.RequestTimeout)
	defer cancel()
	for _, b := range j.replicas {
		if j.ack(b) != "" || !b.routable() {
			continue
		}
		g.resubmit(ctx, j, b)
	}
}

// resubmit lands the job's spec on one specific backend and records the
// ack. A 200 means the backend already holds the result — the returned
// bytes stand in for an ack. Dedup 202s are acks like any other: the
// backend-local job (whether freshly queued or already running) is what
// this replica knows the spec as.
func (g *Gateway) resubmit(ctx context.Context, j *gwJob, b *backend) (localID string, cached []byte, err error) {
	hdr := backendHeaders(fmt.Sprintf("r-%08d", g.nextReq.Add(1)), j.Tenant)
	res, err := g.call(ctx, b, http.MethodPost, "/v1/scenarios", j.specJSON, hdr)
	if err != nil {
		return "", nil, err
	}
	switch res.status {
	case http.StatusOK:
		var c struct {
			Result json.RawMessage `json:"result"`
		}
		if err := json.Unmarshal(res.body, &c); err != nil {
			return "", nil, err
		}
		return "", c.Result, nil
	case http.StatusAccepted:
		var acc struct {
			JobID string `json:"job_id"`
		}
		if err := json.Unmarshal(res.body, &acc); err != nil || acc.JobID == "" {
			return "", nil, fmt.Errorf("resubmit to %s: malformed 202", b.key)
		}
		g.resubmits.Add(1)
		j.setAck(b, acc.JobID)
		return acc.JobID, nil, nil
	default:
		return "", nil, fmt.Errorf("resubmit to %s: HTTP %d", b.key, res.status)
	}
}

// retryAfterHint parses a Retry-After header into a bounded wait.
func retryAfterHint(h http.Header) time.Duration {
	secs, err := strconv.Atoi(strings.TrimSpace(h.Get("Retry-After")))
	if err != nil || secs < 0 {
		return 0
	}
	d := time.Duration(secs) * time.Second
	if d > 5*time.Second {
		d = 5 * time.Second
	}
	return d
}

// jitter spreads a delay to [d/2, d] so failover retries from a burst
// of clients do not land in lockstep.
func jitter(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	half := d / 2
	return half + time.Duration(rand.Int63n(int64(half)+1))
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// BackendStats is one backend's slice of the gateway stats document.
type BackendStats struct {
	Name         string `json:"name"`
	Ready        bool   `json:"ready"`
	Breaker      string `json:"breaker"`
	BreakerOpens int64  `json:"breaker_opens"`
	Requests     int64  `json:"requests"`
	Failures     int64  `json:"failures"`
	PrimaryJobs  int64  `json:"primary_jobs"`
	ProbeError   string `json:"probe_error,omitempty"`
}

// Stats is the gateway's /v1/stats document.
type Stats struct {
	Submitted   int64          `json:"submitted"`
	Accepted    int64          `json:"accepted"`
	DedupHits   int64          `json:"dedup_hits"`
	CacheHits   int64          `json:"cache_hits"`
	Failovers   int64          `json:"failovers"`
	Resubmits   int64          `json:"resubmits"`
	HedgedReads int64          `json:"hedged_reads"`
	HedgeWins   int64          `json:"hedge_wins"`
	ReadRepairs int64          `json:"read_repairs"`
	Retried429  int64          `json:"retried_429"`
	Shed        int64          `json:"shed"`
	Jobs        int            `json:"jobs"`
	Backends    []BackendStats `json:"backends"`
}

func (g *Gateway) handleStats(w http.ResponseWriter, _ *http.Request) {
	g.mu.Lock()
	jobs := len(g.jobs)
	g.mu.Unlock()
	st := Stats{
		Submitted:   g.submitted.Load(),
		Accepted:    g.accepted.Load(),
		DedupHits:   g.dedupHits.Load(),
		CacheHits:   g.cacheHits.Load(),
		Failovers:   g.failovers.Load(),
		Resubmits:   g.resubmits.Load(),
		HedgedReads: g.hedged.Load(),
		HedgeWins:   g.hedgeWins.Load(),
		ReadRepairs: g.readRepairs.Load(),
		Retried429:  g.retried429.Load(),
		Shed:        g.shed.Load(),
		Jobs:        jobs,
	}
	for _, b := range g.backends {
		state, opens := b.br.snapshot()
		st.Backends = append(st.Backends, BackendStats{
			Name:         b.key,
			Ready:        b.ready.Load(),
			Breaker:      state.String(),
			BreakerOpens: opens,
			Requests:     b.requests.Load(),
			Failures:     b.failures.Load(),
			PrimaryJobs:  b.primaries.Load(),
			ProbeError:   b.probeErr.Load().(string),
		})
	}
	writeJSON(w, http.StatusOK, st)
}
