package gateway

import (
	"hash/fnv"
	"sort"
)

// rendezvousScore is the highest-random-weight score binding one spec
// hash to one backend: FNV-1a over the spec hash and the backend's key.
// Every gateway instance computes the same ranking from the same
// backend list, with no coordination and no shared state — the content
// address is the routing key.
func rendezvousScore(specHash, backendKey string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(specHash))
	h.Write([]byte{0})
	h.Write([]byte(backendKey))
	return h.Sum64()
}

// rank orders backends by descending rendezvous score for a spec hash.
// The first R entries are the spec's replica set. Rendezvous hashing
// keeps placement stable under membership change: removing one backend
// remaps only the keys it owned, everything else keeps its replicas.
func rank(specHash string, backends []*backend) []*backend {
	ranked := append([]*backend(nil), backends...)
	sort.SliceStable(ranked, func(i, j int) bool {
		si := rendezvousScore(specHash, ranked[i].key)
		sj := rendezvousScore(specHash, ranked[j].key)
		if si != sj {
			return si > sj
		}
		return ranked[i].key < ranked[j].key
	})
	return ranked
}
