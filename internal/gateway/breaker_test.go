package gateway

import (
	"testing"
	"time"
)

// fakeClock is the breaker's test seam: cooldowns elapse only when the
// test says so.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestBreaker(cfg breakerConfig) (*breaker, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	cfg.now = clk.now
	return newBreaker(cfg), clk
}

func TestBreakerConsecutiveTripAndRecovery(t *testing.T) {
	b, clk := newTestBreaker(breakerConfig{consecFailures: 3, openFor: time.Second})

	b.failure()
	b.failure()
	if st, _ := b.snapshot(); st != stateClosed {
		t.Fatalf("breaker %v after 2 failures, want closed", st)
	}
	if !b.allow() {
		t.Fatal("closed breaker refused a request")
	}
	b.failure()
	if st, opens := b.snapshot(); st != stateOpen || opens != 1 {
		t.Fatalf("breaker %v opens=%d after 3 consecutive failures, want open opens=1", st, opens)
	}
	if b.allow() {
		t.Fatal("open breaker admitted a request before the cooldown")
	}

	clk.advance(time.Second)
	if !b.allow() {
		t.Fatal("cooldown elapsed but the half-open trial was refused")
	}
	if st, _ := b.snapshot(); st != stateHalfOpen {
		t.Fatal("breaker not half-open after the cooldown trial was granted")
	}
	if b.allow() {
		t.Fatal("half-open breaker admitted a second concurrent trial")
	}
	b.success()
	if st, _ := b.snapshot(); st != stateClosed {
		t.Fatalf("breaker %v after trial success, want closed", st)
	}
	if !b.allow() {
		t.Fatal("re-closed breaker refused a request")
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	b, clk := newTestBreaker(breakerConfig{consecFailures: 2, openFor: time.Second})
	b.failure()
	b.failure()
	clk.advance(time.Second)
	if !b.allow() {
		t.Fatal("cooldown elapsed but the trial was refused")
	}
	b.failure()
	if st, opens := b.snapshot(); st != stateOpen || opens != 2 {
		t.Fatalf("breaker %v opens=%d after a failed trial, want open opens=2", st, opens)
	}
	if b.allow() {
		t.Fatal("re-opened breaker admitted a request before its fresh cooldown")
	}
	clk.advance(time.Second)
	if !b.allow() {
		t.Fatal("second cooldown elapsed but the trial was refused")
	}
	b.success()
	if st, _ := b.snapshot(); st != stateClosed {
		t.Fatalf("breaker %v after second trial success, want closed", st)
	}
}

// TestBreakerRateTrip: a backend failing every other request never
// builds a consecutive run, but the windowed failure rate catches it.
func TestBreakerRateTrip(t *testing.T) {
	b, _ := newTestBreaker(breakerConfig{consecFailures: 100, window: 8, rate: 0.5, openFor: time.Second})
	for i := 0; i < 8; i++ {
		b.success()
		b.failure()
		if st, _ := b.snapshot(); st == stateOpen {
			return
		}
	}
	st, _ := b.snapshot()
	t.Fatalf("alternating failures never rate-tripped the breaker (state %v)", st)
}

// TestBreakerTrialSuccessResetsWindow: the window is wiped on recovery,
// so pre-outage failures cannot count against the recovered backend.
func TestBreakerTrialSuccessResetsWindow(t *testing.T) {
	b, clk := newTestBreaker(breakerConfig{consecFailures: 2, window: 8, rate: 0.5, openFor: time.Second})
	b.failure()
	b.failure() // trip
	clk.advance(time.Second)
	if !b.allow() {
		t.Fatal("trial refused")
	}
	b.success() // close with a clean slate
	// One failure among fresh successes must not trip on stale history.
	b.success()
	b.failure()
	if st, _ := b.snapshot(); st != stateClosed {
		t.Fatalf("breaker %v: stale pre-recovery outcomes counted against the window", st)
	}
}
