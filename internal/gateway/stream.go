package gateway

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"github.com/digs-net/digs/internal/server"
)

// handleStream serves GET /v1/jobs/{id}/stream: the job's SSE telemetry
// proxied from whichever replica is alive, with transparent reattach.
// Because replica runs are bit-identical, telemetry line K on one
// replica is line K on every replica — so the gateway tracks a logical
// cursor (how many lines the client has) and, after a mid-stream
// backend loss, resumes from a survivor by replaying its stream and
// skipping everything below the cursor. Retention gaps are surfaced
// with the same "dropped" events a single backend emits: the client's
// gap accounting works unchanged across a failover.
func (g *Gateway) handleStream(w http.ResponseWriter, r *http.Request) {
	j := g.jobByID(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, apiError{"no such job"})
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusNotImplemented, apiError{"streaming unsupported"})
		return
	}
	w.Header().Set(server.HeaderJob, j.ID)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	cursor := 0 // logical index of the next telemetry line the client needs
	tried := map[string]bool{}
	var cachedResult []byte // terminal fallback from a result-only replica
	for {
		b := g.nextStreamReplica(j, tried)
		if b == nil {
			if cachedResult != nil {
				// No replica holds a live job, but one holds the finished
				// result: close out from the stored bytes. The telemetry
				// backlog is gone, so the undelivered tail is reported as
				// a dropped gap before the done event — skipped lines are
				// never silent.
				finishFromCached(w, fl, j, cachedResult)
				return
			}
			fmt.Fprintf(w, "event: error\ndata: no replica can serve the stream\n\n")
			fl.Flush()
			return
		}
		tried[b.key] = true
		done, clientGone, cached := g.followBackendStream(r.Context(), w, fl, j, b, &cursor)
		if done || clientGone {
			return
		}
		if cached != nil {
			// This replica only has the stored result — remember it as the
			// fallback, but keep looking for a replica with a live job
			// first: a live stream can still deliver the telemetry.
			cachedResult = cached
			continue
		}
		// The backend died mid-stream: tell the client, then reattach to
		// the next replica at the current cursor.
		fmt.Fprintf(w, "event: failover\ndata: %s\n\n", b.key)
		fl.Flush()
	}
}

// nextStreamReplica picks the best untried backend for the stream:
// acked replicas first, then anything else in rank order.
func (g *Gateway) nextStreamReplica(j *gwJob, tried map[string]bool) *backend {
	for _, b := range g.readCandidates(j) {
		if !tried[b.key] {
			return b
		}
	}
	return nil
}

// followBackendStream attaches to one backend's SSE stream for the job
// and forwards events past the cursor. It returns done=true when the
// terminal event was delivered, clientGone=true when the client hung
// up, and cached non-nil when the replica holds only the stored result
// (no live job to stream — the caller should prefer another replica and
// keep the bytes as a terminal fallback). All three zero means the
// backend failed mid-stream and the caller should fail over.
func (g *Gateway) followBackendStream(ctx context.Context, w http.ResponseWriter, fl http.Flusher,
	j *gwJob, b *backend, cursor *int) (done, clientGone bool, cachedResult []byte) {
	localID := j.ack(b)
	if localID == "" {
		rctx, cancel := context.WithTimeout(ctx, g.cfg.RequestTimeout)
		id, cached, err := g.resubmit(rctx, j, b)
		cancel()
		if err != nil {
			return false, ctx.Err() != nil, nil
		}
		if cached != nil {
			return false, false, cached
		}
		localID = id
	}

	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.base+"/v1/jobs/"+localID+"/stream", nil)
	if err != nil {
		return false, false, nil
	}
	resp, err := g.stream.Do(req)
	if err != nil {
		b.br.failure()
		return false, ctx.Err() != nil, nil
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		// The backend forgot the job (finished-job cap): drop the stale
		// ack so a later pass resubmits instead of re-hitting the 404.
		j.dropAck(b)
		return false, false, nil
	}
	if resp.StatusCode != http.StatusOK {
		return false, false, nil
	}

	pos := 0 // this backend stream's logical position
	event := "message"
	rd := bufio.NewReaderSize(resp.Body, 64<<10)
	for {
		line, rerr := rd.ReadString('\n')
		if rerr != nil {
			// A backend dying mid-line leaves a partial trailing fragment
			// with no newline. Forwarding it would hand the client a
			// truncated line AND advance the cursor past the real one on
			// the surviving replica — so an unterminated line is never a
			// line, it is the failure signal.
			break
		}
		line = strings.TrimRight(line, "\r\n")
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "done":
				var v server.View
				if json.Unmarshal([]byte(data), &v) == nil {
					v.JobID = j.ID
					if enc, err := json.Marshal(v); err == nil {
						data = string(enc)
					}
				}
				fmt.Fprintf(w, "event: done\ndata: %s\n\n", data)
				fl.Flush()
				return true, false, nil
			case "dropped":
				n, err := strconv.Atoi(strings.TrimSpace(data))
				if err != nil || n < 0 {
					n = 0
				}
				// The backend lost lines [pos, pos+n) to retention. The
				// client only misses the part at or past its cursor —
				// lines below it were already delivered by this replica
				// or a previous one.
				end := pos + n
				if end > *cursor {
					if miss := end - max(*cursor, pos); miss > 0 {
						fmt.Fprintf(w, "event: dropped\ndata: %d\n\n", miss)
						fl.Flush()
					}
					*cursor = end
				}
				pos = end
			default: // telemetry line
				if pos >= *cursor {
					if _, err := fmt.Fprintf(w, "data: %s\n\n", data); err != nil {
						return false, true, nil
					}
					fl.Flush()
					*cursor = pos + 1
				}
				pos++
			}
		case line == "":
			event = "message"
		}
	}
	// Stream ended (or was cut mid-line) without a done event: mid-body
	// loss of the backend.
	b.br.failure()
	return false, ctx.Err() != nil, nil
}

// finishFromCached closes out a stream when no replica holds a live job
// and only the stored result survives: the terminal view built from the
// result bytes is delivered as the done event. The telemetry backlog is
// gone with the jobs, so every line at or past the client's cursor is
// undelivered — and since the total line count is unknowable without
// re-running the scenario, the gap is reported as an indeterminate
// dropped event (data: -1) rather than skipped silently. Clients doing
// exact delivered+dropped accounting see the accounting break flagged
// instead of a stream that quietly claims completeness.
func finishFromCached(w http.ResponseWriter, fl http.Flusher, j *gwJob, result []byte) {
	view := synthDoneView(j, result)
	enc, err := json.Marshal(view)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: dropped\ndata: -1\n\n")
	fmt.Fprintf(w, "event: done\ndata: %s\n\n", enc)
	fl.Flush()
}
