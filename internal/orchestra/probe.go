package orchestra

import (
	"github.com/digs-net/digs/internal/invariant"
	"github.com/digs-net/digs/internal/sim"
	"github.com/digs-net/digs/internal/topology"
)

// Prober returns the invariant-monitor probe for this stack. RPL keeps a
// single preferred parent, so Backup is always 0 — runs that enable the
// monitor's RequireBackup check will flag every Orchestra node, which is
// the honest reading of the paper's single-parent critique.
func (n *Network) Prober(nw *sim.Network) invariant.Prober {
	return func(states []invariant.NodeState) []invariant.NodeState {
		for i, node := range n.Nodes {
			if node == nil {
				continue
			}
			r := n.Stacks[i].Router()
			synced, _ := node.Synced()
			states = append(states, invariant.NodeState{
				ID:        topology.NodeID(i),
				IsAP:      node.IsAP(),
				Alive:     !nw.Failed(topology.NodeID(i)),
				Synced:    synced,
				Parent:    r.Parent(),
				Queue:     node.QueueLen(),
				LastRx:    node.LastRx(),
				Neighbors: r.Neighbors(),
			})
		}
		return states
	}
}

// Healer returns the watchdog hook: a cold restart through the stack's
// Resetter, so the node rejoins the DODAG from scratch.
func (n *Network) Healer() func(id topology.NodeID, asn sim.ASN) {
	return func(id topology.NodeID, asn sim.ASN) {
		if int(id) < len(n.Nodes) && n.Nodes[id] != nil {
			n.Nodes[id].Reboot(asn, true)
		}
	}
}
