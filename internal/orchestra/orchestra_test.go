package orchestra

import (
	"math/rand"
	"testing"
	"time"

	"github.com/digs-net/digs/internal/mac"
	"github.com/digs-net/digs/internal/rpl"
	"github.com/digs-net/digs/internal/sim"
	"github.com/digs-net/digs/internal/topology"
)

func TestRxSlotStableAndInRange(t *testing.T) {
	seen := map[int64]int{}
	for id := 1; id <= 200; id++ {
		s := RxSlot(topology.NodeID(id), 151)
		if s < 0 || s >= 151 {
			t.Fatalf("RxSlot(%d) = %d outside frame", id, s)
		}
		seen[s]++
	}
	// The hash must spread nodes over many distinct slots.
	if len(seen) < 100 {
		t.Fatalf("receiver-based hash uses only %d distinct slots for 200 nodes", len(seen))
	}
}

func TestUnicastRolesReceiverBasedMode(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ReceiverBased = true
	s, err := NewStack(9, false, cfg, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	// Give it a parent (node 4).
	s.Router().OnDIO(0, 4, rpl.DIO{Rank: 1, PathETX: 0}, -60)

	own := RxSlot(9, cfg.UnicastFrameLen)
	parent := RxSlot(4, cfg.UnicastFrameLen)
	if role, _ := s.unicastRole(own, 0); role != mac.RoleRxData {
		t.Fatalf("own slot role = %v, want RxData", role)
	}
	if role, _ := s.unicastRole(parent, 0); role != mac.RoleTxData {
		t.Fatalf("parent slot role = %v, want TxData", role)
	}
	if role, _ := s.unicastRole((own+parent+1)%cfg.UnicastFrameLen+2, 0); role == mac.RoleTxData {
		t.Fatal("unrelated slot marked TxData")
	}
}

func TestUnicastRolesSenderBasedMode(t *testing.T) {
	cfg := DefaultConfig() // sender-based by default
	s, err := NewStack(9, false, cfg, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	s.Router().OnDIO(0, 4, rpl.DIO{Rank: 1, PathETX: 0}, -60)
	// Learn about a potential child: node 12 advertising a higher rank.
	s.Router().OnDIO(0, 12, rpl.DIO{Rank: 25, PathETX: 4}, -70)
	s.refreshChildSlots()

	own := RxSlot(9, cfg.UnicastFrameLen)
	child := RxSlot(12, cfg.UnicastFrameLen)
	if role, _ := s.unicastRole(own, 0); role != mac.RoleTxData {
		t.Fatalf("own sender cell role = %v, want TxData", role)
	}
	if role, _ := s.unicastRole(child, 0); role != mac.RoleRxData {
		t.Fatalf("child sender cell role = %v, want RxData", role)
	}
}

func TestBackoffSkipsTransmitOpportunities(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ReceiverBased = true // backoff applies only to contended cells
	s, err := NewStack(9, false, cfg, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	s.Router().OnDIO(0, 4, rpl.DIO{Rank: 1, PathETX: 0}, -60)
	own := RxSlot(4, cfg.UnicastFrameLen) // we transmit in the parent's cell

	// Force failures until a non-zero backoff is drawn.
	backedOff := false
	for i := 0; i < 32 && !backedOff; i++ {
		s.OnTxResult(0, &sim.Frame{Kind: sim.KindData}, 4, false)
		if s.txBackoff > 0 {
			backedOff = true
		}
	}
	if !backedOff {
		t.Fatal("failures never produced a backoff")
	}
	want := s.txBackoff
	skips := 0
	for s.txBackoff > 0 {
		if role, _ := s.unicastRole(own, 0); role != mac.RoleSleep {
			t.Fatalf("role during backoff = %v, want Sleep", role)
		}
		skips++
	}
	if skips != want {
		t.Fatalf("skipped %d opportunities, want %d", skips, want)
	}
	if role, _ := s.unicastRole(own, 0); role != mac.RoleTxData {
		t.Fatalf("role after backoff = %v, want TxData", role)
	}
}

func TestNextHopIsAlwaysPreferredParent(t *testing.T) {
	s, err := NewStack(9, false, DefaultConfig(), rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.NextHop(0, 1); ok {
		t.Fatal("next hop before joining")
	}
	s.Router().OnDIO(0, 4, rpl.DIO{Rank: 1, PathETX: 0}, -60)
	for attempt := 1; attempt <= 3; attempt++ {
		hop, ok := s.NextHop(0, attempt)
		if !ok || hop != 4 {
			t.Fatalf("attempt %d next hop = (%d, %v), want (4, true)", attempt, hop, ok)
		}
	}
}

func TestOrchestraConvergesAndDelivers(t *testing.T) {
	topo := topology.TestbedA()
	nw := sim.NewNetwork(topo, 19)
	net, err := Build(nw, DefaultConfig(), mac.DefaultConfig(), 19)
	if err != nil {
		t.Fatal(err)
	}
	if _, done := nw.RunUntil(sim.SlotsFor(150*time.Second), func() bool {
		return net.JoinedCount() == topo.N()
	}); !done {
		t.Fatalf("only %d/%d joined", net.JoinedCount(), topo.N())
	}

	delivered := make(map[[2]uint16]bool)
	net.OnDeliver(func(_ sim.ASN, f *sim.Frame) {
		delivered[[2]uint16{f.FlowID, f.Seq}] = true
	})
	sent := 0
	for round := 0; round < 10; round++ {
		for fi, src := range topo.SuggestedSources {
			if err := net.Nodes[src].InjectData(&sim.Frame{
				Origin: src, FlowID: uint16(fi + 1), Seq: uint16(round), BornASN: nw.ASN(),
			}); err != nil {
				t.Fatal(err)
			}
			sent++
		}
		nw.Run(sim.SlotsFor(5 * time.Second))
	}
	nw.Run(sim.SlotsFor(5 * time.Second))
	pdr := float64(len(delivered)) / float64(sent)
	t.Logf("Orchestra clean-environment PDR: %.3f", pdr)
	if pdr < 0.9 {
		t.Fatalf("Orchestra clean PDR %.3f, want >= 0.9", pdr)
	}
}

func TestOrchestraFlowDisconnectsOnParentFailure(t *testing.T) {
	// The paper's Figure 11 contrast: with a single preferred parent and
	// no backup route, killing the parent interrupts delivery until RPL
	// repairs. Immediately after the failure, packets must be lost.
	topo := topology.TestbedA()
	nw := sim.NewNetwork(topo, 23)
	net, err := Build(nw, DefaultConfig(), mac.DefaultConfig(), 23)
	if err != nil {
		t.Fatal(err)
	}
	if _, done := nw.RunUntil(sim.SlotsFor(150*time.Second), func() bool {
		return net.JoinedCount() == topo.N()
	}); !done {
		t.Fatal("network did not converge")
	}
	var src, victim topology.NodeID
	for _, s := range topo.SuggestedSources {
		if p := net.Stacks[s].Router().Parent(); p != 0 && !topo.IsAP(p) {
			src, victim = s, p
			break
		}
	}
	if src == 0 {
		t.Skip("no source routed through a field device in this seed")
	}
	delivered := 0
	net.OnDeliver(func(_ sim.ASN, f *sim.Frame) {
		if f.Origin == src {
			delivered++
		}
	})
	nw.Fail(victim)
	// Two packets in quick succession right after the failure: with a
	// 12+ second detection window they cannot be delivered in time.
	for i := 0; i < 2; i++ {
		_ = net.Nodes[src].InjectData(&sim.Frame{
			Origin: src, FlowID: 1, Seq: uint16(i), BornASN: nw.ASN(),
		})
		nw.Run(sim.SlotsFor(2 * time.Second))
	}
	if delivered != 0 {
		t.Fatalf("delivered %d packets within 4 s of parent failure; Orchestra "+
			"should still be detecting the loss", delivered)
	}
	// Eventually RPL repairs and traffic resumes.
	nw.Run(sim.SlotsFor(90 * time.Second))
	resumed := delivered
	for i := 2; i < 6; i++ {
		_ = net.Nodes[src].InjectData(&sim.Frame{
			Origin: src, FlowID: 1, Seq: uint16(i), BornASN: nw.ASN(),
		})
		nw.Run(sim.SlotsFor(5 * time.Second))
	}
	if delivered-resumed == 0 {
		t.Fatal("flow never recovered after RPL repair")
	}
}
