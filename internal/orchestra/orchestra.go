// Package orchestra implements the autonomous-scheduling baseline the
// paper evaluates against (Duquennoy et al., SenSys'15): Orchestra over
// RPL. Nodes derive their TSCH schedule from local RPL state with three
// slotframes — EBs, a common shared slot for routing traffic, and a
// receiver-based unicast slotframe where every node listens in a slot
// hashed from its own ID and transmits in the slot hashed from its
// preferred parent's ID.
package orchestra

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/digs-net/digs/internal/detrand"
	"github.com/digs-net/digs/internal/mac"
	"github.com/digs-net/digs/internal/rpl"
	"github.com/digs-net/digs/internal/sim"
	"github.com/digs-net/digs/internal/topology"
	"github.com/digs-net/digs/internal/trickle"
)

// Channel offsets and priorities mirror the DiGS configuration so the
// comparison isolates routing/scheduling, not radio parameters.
const (
	ebChannelOffset      = 0
	sharedChannelOffset  = 1
	unicastChannelOffset = 2

	// unicastLanes spreads unicast cells over several channel offsets
	// derived from the cell owner's ID, so hash collisions in the cell
	// space land on different channels (standard Orchestra/ALICE
	// practice).
	unicastLanes = 12
)

// unicastLane returns the channel-offset lane of a node's unicast cells.
func unicastLane(id topology.NodeID) uint8 {
	return unicastChannelOffset + uint8((int64(id)*13)%unicastLanes)
}

// Config holds Orchestra parameters. The slotframe lengths default to the
// paper's evaluation values (557 / 47 / 151), shared with DiGS.
type Config struct {
	EBFrameLen      int64
	SharedFrameLen  int64
	UnicastFrameLen int64

	// ReceiverBased selects Orchestra's receiver-based unicast slotframe
	// (one listen cell per node, all its children contend in it) instead
	// of the default sender-based one (one transmit cell per node, the
	// parent listens in every potential child's cell). Sender-based is
	// what deployments use for collection traffic: it avoids funnelling
	// a whole subtree into the sink's single cell.
	ReceiverBased bool

	// Trickle gates DIO transmissions (slot units).
	Trickle trickle.Config

	NeighborTimeout time.Duration
	MaintainEvery   time.Duration

	// RankGranularity is RPL's MinHopRankIncrease (per-hop rank step is
	// link ETX scaled by this factor).
	RankGranularity int
}

// DefaultConfig returns the paper's evaluation configuration.
func DefaultConfig() Config {
	return Config{
		EBFrameLen:      557,
		SharedFrameLen:  47,
		UnicastFrameLen: 151,
		Trickle:         trickle.Config{IminSlots: 100, Doublings: 7, K: 6},
		NeighborTimeout: 5 * time.Minute,
		MaintainEvery:   5 * time.Second,
		RankGranularity: 4,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.EBFrameLen <= 0 || c.SharedFrameLen <= 0 || c.UnicastFrameLen <= 0 {
		return fmt.Errorf("orchestra config: slotframe lengths must be positive (%d, %d, %d)",
			c.EBFrameLen, c.SharedFrameLen, c.UnicastFrameLen)
	}
	return nil
}

// RxSlot returns the unicast-slotframe slot a node listens in
// (receiver-based scheduling: a hash of the node identity).
func RxSlot(id topology.NodeID, frameLen int64) int64 {
	return (int64(id) * 37) % frameLen
}

// Stack is one node's Orchestra + RPL instance. It implements
// mac.Protocol.
type Stack struct {
	id     topology.NodeID
	isRoot bool
	cfg    Config

	router   *rpl.Router
	tr       *trickle.Timer
	rng      *rand.Rand
	combiner *mac.Combiner
	// rngSrc is set when the stack was built over a counting source
	// (orchestra.Build does this); it is what makes the stack's RNG
	// position checkpointable.
	rngSrc *detrand.Source

	wantDIO      bool
	nextMaintain sim.ASN
	nextSolicit  sim.ASN
	synced       bool

	// txBackoff skips that many of our unicast transmit opportunities
	// after a failed data transmission (randomised retry, the slot-atomic
	// stand-in for CSMA backoff inside shared cells).
	txBackoff int

	// childSlots caches the sender cells of potential children
	// (sender-based mode), mapping cell offset to the child owning it;
	// refreshed at each maintenance tick.
	childSlots map[int64]topology.NodeID
}

var _ mac.Protocol = (*Stack)(nil)

// NewStack builds an Orchestra stack for one node.
func NewStack(id topology.NodeID, isRoot bool, cfg Config, rng *rand.Rand) (*Stack, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	tr, err := trickle.NewTimer(cfg.Trickle, rng)
	if err != nil {
		return nil, fmt.Errorf("orchestra stack %d: %w", id, err)
	}
	s := &Stack{
		id:     id,
		isRoot: isRoot,
		cfg:    cfg,
		router: rpl.NewRouter(id, isRoot, sim.SlotsFor(cfg.NeighborTimeout), cfg.RankGranularity),
		tr:     tr,
		rng:    rng,
	}
	s.combiner = mac.NewCombiner(
		mac.Slotframe{Length: cfg.EBFrameLen, Priority: 0, ChannelOffset: ebChannelOffset,
			Role: s.ebRole},
		mac.Slotframe{Length: cfg.SharedFrameLen, Priority: 1, ChannelOffset: sharedChannelOffset,
			Role: s.sharedRole},
		mac.Slotframe{Length: cfg.UnicastFrameLen, Priority: 2, ChannelOffset: unicastChannelOffset,
			Role: s.unicastRole},
	)
	return s, nil
}

// Router exposes the RPL state for experiments and tests.
func (s *Stack) Router() *rpl.Router { return s.router }

// Reset implements mac.Resetter: it discards the RPL neighbour set,
// parent and derived schedule caches, returning the stack to its
// just-constructed state. The installed OnParentChange callback and the
// configuration survive, so a chaos-plan reboot with state loss keeps
// reporting route changes through the same telemetry chain.
func (s *Stack) Reset() {
	onChange := s.router.OnParentChange
	router := rpl.NewRouter(s.id, s.isRoot, sim.SlotsFor(s.cfg.NeighborTimeout),
		s.cfg.RankGranularity)
	router.OnParentChange = onChange
	s.router = router
	// NewTimer only fails on invalid config, which Validate already
	// accepted at construction.
	s.tr, _ = trickle.NewTimer(s.cfg.Trickle, s.rng)
	s.wantDIO = false
	s.nextMaintain = 0
	s.nextSolicit = 0
	s.synced = false
	s.txBackoff = 0
	s.childSlots = nil
}

func (s *Stack) ebRole(offset int64, _ sim.ASN) (mac.SlotRole, int) {
	if offset == int64(s.id-1)%s.cfg.EBFrameLen {
		return mac.RoleTxEB, 0
	}
	if p := s.router.Parent(); p != 0 && offset == int64(p-1)%s.cfg.EBFrameLen {
		return mac.RoleRxEB, 0
	}
	return mac.RoleSleep, 0
}

func (s *Stack) sharedRole(offset int64, _ sim.ASN) (mac.SlotRole, int) {
	if offset == 0 {
		return mac.RoleShared, 0
	}
	return mac.RoleSleep, 0
}

// unicastRole dispatches on the configured Orchestra unicast mode.
func (s *Stack) unicastRole(offset int64, _ sim.ASN) (mac.SlotRole, int) {
	if s.cfg.ReceiverBased {
		return s.receiverBasedRole(offset)
	}
	return s.senderBasedRole(offset)
}

// receiverBasedRole: listen in the slot hashed from our own ID; transmit
// in the slot hashed from the preferred parent's ID. Transmit wins when
// both hash to the same slot.
func (s *Stack) receiverBasedRole(offset int64) (mac.SlotRole, int) {
	if p := s.router.Parent(); p != 0 && offset == RxSlot(p, s.cfg.UnicastFrameLen) {
		if s.txBackoff > 0 {
			s.txBackoff--
			return mac.RoleSleep, 0
		}
		return mac.RoleTxData, 1
	}
	if offset == RxSlot(s.id, s.cfg.UnicastFrameLen) {
		return mac.RoleRxData, 0
	}
	return mac.RoleSleep, 0
}

// senderBasedRole: transmit in the slot hashed from our own ID; listen in
// the sender cells of every potential child (the RPL neighbours below us).
func (s *Stack) senderBasedRole(offset int64) (mac.SlotRole, int) {
	if s.router.Parent() != 0 && offset == RxSlot(s.id, s.cfg.UnicastFrameLen) {
		if s.txBackoff > 0 {
			s.txBackoff--
			return mac.RoleSleep, 0
		}
		return mac.RoleTxData, 1
	}
	if _, ok := s.childSlots[offset]; ok {
		return mac.RoleRxData, 0
	}
	return mac.RoleSleep, 0
}

func (s *Stack) refreshChildSlots() {
	slots := make(map[int64]topology.NodeID)
	if s.isRoot || s.router.Parent() != 0 {
		for _, c := range s.router.PotentialChildren() {
			slots[RxSlot(c, s.cfg.UnicastFrameLen)] = c
		}
	}
	s.childSlots = slots
}

// Assignment implements mac.Protocol. Unicast cells get their channel
// lane from the cell owner's ID.
func (s *Stack) Assignment(asn sim.ASN) mac.Assignment {
	if asn >= s.nextMaintain {
		s.nextMaintain = asn + sim.SlotsFor(s.cfg.MaintainEvery)
		if s.router.Maintain(asn) && s.synced {
			s.tr.Reset(asn)
		}
		s.refreshChildSlots()
	}
	if s.tr.Fires(asn) {
		s.wantDIO = true
	}
	a := s.combiner.Assignment(asn)
	offset := asn % s.cfg.UnicastFrameLen
	switch a.Role {
	case mac.RoleTxData:
		if s.cfg.ReceiverBased {
			a.ChannelOffset = unicastLane(s.router.Parent())
		} else {
			a.ChannelOffset = unicastLane(s.id)
		}
	case mac.RoleRxData:
		if s.cfg.ReceiverBased {
			a.ChannelOffset = unicastLane(s.id)
		} else if c, ok := s.childSlots[offset]; ok {
			a.ChannelOffset = unicastLane(c)
		}
	}
	return a
}

// OnSynced implements mac.Protocol.
func (s *Stack) OnSynced(asn sim.ASN) {
	s.synced = true
	s.tr.Start(asn)
	s.nextSolicit = asn + 500 + sim.ASN(s.rng.Intn(500))
}

// EBPayload implements mac.Protocol: beacons carry the RPL join metric.
func (s *Stack) EBPayload() []byte {
	adv, ok := s.router.Advertisement()
	if !ok {
		return nil
	}
	return adv.Marshal()
}

// OnFrame implements mac.Protocol.
func (s *Stack) OnFrame(asn sim.ASN, f *sim.Frame, rssi float64) {
	switch f.Kind {
	case sim.KindEB:
		if d, err := rpl.UnmarshalDIO(f.Payload); err == nil {
			if s.router.OnDIO(asn, f.Src, d, rssi) && s.synced {
				s.tr.Reset(asn)
			}
			return
		}
		s.router.Observe(f.Src, rssi)
	case sim.KindJoinIn: // a DIO in this stack
		d, err := rpl.UnmarshalDIO(f.Payload)
		if err != nil {
			return
		}
		if s.router.OnDIO(asn, f.Src, d, rssi) {
			if s.synced {
				s.tr.Reset(asn)
			}
		} else {
			s.tr.Hear()
		}
	case sim.KindSolicit:
		s.router.Observe(f.Src, rssi)
		if s.router.Joined() {
			s.tr.Reset(asn)
		}
	case sim.KindData:
		s.router.Observe(f.Src, rssi)
	}
}

// SharedFrame implements mac.Protocol: DIS solicitation when parentless,
// Trickle-latched DIOs otherwise, both behind a persistence coin.
func (s *Stack) SharedFrame(asn sim.ASN) (*sim.Frame, bool) {
	if s.synced && !s.router.Joined() {
		if asn >= s.nextSolicit {
			s.nextSolicit = asn + 1000 + sim.ASN(s.rng.Intn(500))
			return &sim.Frame{Kind: sim.KindSolicit, Src: s.id, Dst: topology.Broadcast}, false
		}
		return nil, false
	}
	if !s.wantDIO || s.rng.Intn(2) == 1 {
		return nil, false
	}
	adv, ok := s.router.Advertisement()
	if !ok {
		s.wantDIO = false
		return nil, false
	}
	s.wantDIO = false
	return &sim.Frame{
		Kind:    sim.KindJoinIn,
		Src:     s.id,
		Dst:     topology.Broadcast,
		Payload: adv.Marshal(),
	}, false
}

// NextHop implements mac.Protocol: always the single preferred parent —
// Orchestra has no backup route, which is exactly what the paper's
// comparison exercises.
func (s *Stack) NextHop(sim.ASN, int) (topology.NodeID, bool) {
	p := s.router.Parent()
	return p, p != 0
}

// OnTxResult implements mac.Protocol. Random retry backoff applies only in
// receiver-based mode, where siblings contend in the parent's cell;
// sender-based cells are dedicated, so the retransmission goes out in the
// next slotframe.
func (s *Stack) OnTxResult(asn sim.ASN, f *sim.Frame, to topology.NodeID, acked bool) {
	if s.cfg.ReceiverBased && f.Kind == sim.KindData && !acked {
		s.txBackoff = s.rng.Intn(4)
	}
	if s.router.OnTxResult(asn, to, acked) && s.synced {
		s.tr.Reset(asn)
	}
}
