package orchestra

import (
	"fmt"
	"math/rand"

	"github.com/digs-net/digs/internal/detrand"
	"github.com/digs-net/digs/internal/mac"
	"github.com/digs-net/digs/internal/sim"
	"github.com/digs-net/digs/internal/telemetry"
	"github.com/digs-net/digs/internal/topology"
)

// Network bundles the per-node MAC and Orchestra instances running over
// one simulated network.
type Network struct {
	Nodes  []*mac.Node // indexed by node ID, entry 0 nil
	Stacks []*Stack    // indexed by node ID, entry 0 nil
}

// Build attaches a full Orchestra stack to every node of the network's
// topology (access points act as RPL roots).
func Build(nw *sim.Network, cfg Config, macCfg mac.Config, seed int64) (*Network, error) {
	topo := nw.Topology()
	out := &Network{
		Nodes:  make([]*mac.Node, topo.N()+1),
		Stacks: make([]*Stack, topo.N()+1),
	}
	for i := 1; i <= topo.N(); i++ {
		id := topology.NodeID(i)
		isRoot := topo.IsAP(id)
		// A counting source (same value stream as rand.NewSource) keeps
		// the stack's RNG position checkpointable for snapshots.
		src := detrand.New(seed*6151 + int64(i))
		stack, err := NewStack(id, isRoot, cfg, rand.New(src))
		if err != nil {
			return nil, err
		}
		stack.rngSrc = src
		node := mac.NewNode(id, isRoot, stack, macCfg)
		if err := nw.Attach(node); err != nil {
			return nil, fmt.Errorf("orchestra build: %w", err)
		}
		out.Nodes[i] = node
		out.Stacks[i] = stack
	}
	return out, nil
}

// OnDeliver installs the sink callback on every access point.
func (n *Network) OnDeliver(fn func(asn sim.ASN, f *sim.Frame)) {
	for _, node := range n.Nodes[1:] {
		if node.IsAP() {
			node.Sink = fn
		}
	}
}

// SetTracer installs (or, with nil, removes) a packet-lifecycle tracer on
// every node, and wires the RPL parent-switch callback so route churn
// appears in the event stream as route-change events.
func (n *Network) SetTracer(t telemetry.Tracer) {
	for i, node := range n.Nodes {
		if node == nil {
			continue
		}
		node.SetTracer(t)
		r := n.Stacks[i].Router()
		if t == nil {
			r.OnParentChange = nil
			continue
		}
		id := topology.NodeID(i)
		r.OnParentChange = func(asn sim.ASN, parent topology.NodeID) {
			t.Record(telemetry.Event{
				ASN:  int64(asn),
				Type: telemetry.EvRouteChange,
				Node: id,
				Peer: parent,
			})
		}
	}
}

// JoinedCount returns how many nodes are synchronised and in the DODAG.
func (n *Network) JoinedCount() int {
	joined := 0
	for i, node := range n.Nodes {
		if node == nil {
			continue
		}
		if synced, _ := node.Synced(); synced && n.Stacks[i].Router().Joined() {
			joined++
		}
	}
	return joined
}
