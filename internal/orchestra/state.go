package orchestra

import (
	"fmt"
	"sort"

	"github.com/digs-net/digs/internal/rpl"
	"github.com/digs-net/digs/internal/topology"
	"github.com/digs-net/digs/internal/trickle"
)

// ChildSlotState is one sender-cell cache entry (sender-based mode).
type ChildSlotState struct {
	Slot int64
	Node topology.NodeID
}

// StackState is the complete mutable state of one Orchestra stack. The
// child-slot cache is captured rather than recomputed on restore: it
// refreshes only at maintenance ticks, so a restore-time recompute could
// be fresher than the interrupted run's cache and diverge from it.
type StackState struct {
	Router   rpl.RouterState
	Trickle  trickle.State
	RNGDraws uint64

	WantDIO      bool
	NextMaintain int64
	NextSolicit  int64
	Synced       bool
	TxBackoff    int

	// HasChildSlots distinguishes a nil cache (never refreshed since
	// construction or reset) from an empty refreshed one.
	HasChildSlots bool
	ChildSlots    []ChildSlotState // sorted by slot
}

// CaptureState snapshots the stack. It fails for stacks constructed with
// an external RNG (NewStack with a caller-owned rand.Rand): only
// Build-created stacks track their generator position.
func (s *Stack) CaptureState() (*StackState, error) {
	if s.rngSrc == nil {
		return nil, fmt.Errorf("orchestra stack %d: not built with a checkpointable RNG (use orchestra.Build)", s.id)
	}
	st := &StackState{
		Router:       s.router.CaptureState(),
		Trickle:      s.tr.CaptureState(),
		RNGDraws:     s.rngSrc.Draws(),
		WantDIO:      s.wantDIO,
		NextMaintain: s.nextMaintain,
		NextSolicit:  s.nextSolicit,
		Synced:       s.synced,
		TxBackoff:    s.txBackoff,
	}
	if s.childSlots != nil {
		st.HasChildSlots = true
		st.ChildSlots = make([]ChildSlotState, 0, len(s.childSlots))
		for slot, id := range s.childSlots {
			st.ChildSlots = append(st.ChildSlots, ChildSlotState{Slot: slot, Node: id})
		}
		sort.Slice(st.ChildSlots, func(i, j int) bool { return st.ChildSlots[i].Slot < st.ChildSlots[j].Slot })
	}
	return st, nil
}

// RestoreState overlays a captured stack state onto a freshly built stack
// (same node, same configuration, same build seed).
func (s *Stack) RestoreState(st *StackState) error {
	if s.rngSrc == nil {
		return fmt.Errorf("orchestra stack %d: not built with a checkpointable RNG (use orchestra.Build)", s.id)
	}
	s.router.RestoreState(st.Router)
	s.tr.RestoreState(st.Trickle)
	s.rngSrc.Reset(st.RNGDraws)
	s.wantDIO = st.WantDIO
	s.nextMaintain = st.NextMaintain
	s.nextSolicit = st.NextSolicit
	s.synced = st.Synced
	s.txBackoff = st.TxBackoff
	if st.HasChildSlots {
		s.childSlots = make(map[int64]topology.NodeID, len(st.ChildSlots))
		for _, c := range st.ChildSlots {
			s.childSlots[c.Slot] = c.Node
		}
	} else {
		s.childSlots = nil
	}
	return nil
}

// CaptureState snapshots every stack of the network, indexed by node ID
// (entry 0 nil).
func (n *Network) CaptureState() ([]*StackState, error) {
	out := make([]*StackState, len(n.Stacks))
	for i, s := range n.Stacks {
		if s == nil {
			continue
		}
		st, err := s.CaptureState()
		if err != nil {
			return nil, err
		}
		out[i] = st
	}
	return out, nil
}

// RestoreState overlays captured stack states onto a freshly built
// network.
func (n *Network) RestoreState(states []*StackState) error {
	if len(states) != len(n.Stacks) {
		return fmt.Errorf("orchestra restore: %d stack states for %d stacks", len(states), len(n.Stacks))
	}
	for i, s := range n.Stacks {
		if s == nil {
			continue
		}
		if states[i] == nil {
			return fmt.Errorf("orchestra restore: missing state for node %d", i)
		}
		if err := s.RestoreState(states[i]); err != nil {
			return err
		}
	}
	return nil
}
