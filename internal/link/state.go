package link

import (
	"sort"

	"github.com/digs-net/digs/internal/topology"
)

// LinkState is one neighbour's estimator entry as plain old data.
type LinkState struct {
	Node           topology.NodeID
	ETX            float64
	RSSAvg         float64
	ConsecFails    int
	TxSeen         bool
	ResurrectCount int
}

// CaptureState returns every neighbour entry, sorted by node ID so the
// wire form is stable across runs. The reaction profile is
// construction-time configuration and not part of the state.
func (e *Estimator) CaptureState() []LinkState {
	if len(e.links) == 0 {
		return nil
	}
	out := make([]LinkState, 0, len(e.links))
	for id, s := range e.links {
		out = append(out, LinkState{Node: id, ETX: s.etx, RSSAvg: s.rssAvg,
			ConsecFails: s.consecFails, TxSeen: s.txSeen, ResurrectCount: s.resurrectCount})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// RestoreState replaces the neighbour table with the captured entries.
func (e *Estimator) RestoreState(entries []LinkState) {
	e.links = make(map[topology.NodeID]linkState, len(entries))
	for _, s := range entries {
		e.links[s.Node] = linkState{etx: s.ETX, rssAvg: s.RSSAvg,
			consecFails: s.ConsecFails, txSeen: s.TxSeen, resurrectCount: s.ResurrectCount}
	}
}
