package link

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/digs-net/digs/internal/phy"
)

func TestInitialETXPaperMapping(t *testing.T) {
	tests := []struct {
		name string
		rss  float64
		want float64
	}{
		{"strong link", -50, 1},
		{"threshold high", -60, 1},
		{"midpoint", -75, 2},
		{"threshold low", -90, 3},
		{"very weak", -100, 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := InitialETX(tt.rss); math.Abs(got-tt.want) > 1e-9 {
				t.Fatalf("InitialETX(%.0f) = %.3f, want %.3f", tt.rss, got, tt.want)
			}
		})
	}
}

func TestInitialETXMonotoneAndBounded(t *testing.T) {
	f := func(rss float64) bool {
		rss = math.Mod(math.Abs(rss), 80) - 110 // -110..-30
		etx := InitialETX(rss)
		return etx >= 1 && etx <= 3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	for rss := -110.0; rss < -30; rss += 0.5 {
		if InitialETX(rss) < InitialETX(rss+0.5) {
			t.Fatalf("InitialETX not non-increasing in RSS at %.1f", rss)
		}
	}
}

func TestEstimatorObserveTracksSmoothedRSS(t *testing.T) {
	e := NewEstimator()
	e.Observe(5, -60)
	if got := e.ETX(5); got != 1 {
		t.Fatalf("seeded ETX = %.2f, want 1", got)
	}
	// Before any transmission history, further observations move the
	// estimate, but only by the smoothed (EWMA) RSS — a single bad
	// reading cannot swing it to the floor.
	e.Observe(5, -95)
	got := e.ETX(5)
	if got <= 1 {
		t.Fatalf("worse RSS did not raise pre-tx estimate: %.2f", got)
	}
	if got > 2 {
		t.Fatalf("single bad reading over-penalised the estimate: %.2f", got)
	}
	// After a transmission outcome, RSS observations stop moving the ETX.
	e.TxResult(5, true)
	before := e.ETX(5)
	e.Observe(5, -95)
	if e.ETX(5) != before {
		t.Fatalf("RSS observation overrode transmission history: %.2f -> %.2f",
			before, e.ETX(5))
	}
}

func TestEstimatorDeadLinkResurrectsPessimistically(t *testing.T) {
	e := NewEstimator()
	e.Observe(5, -60)
	for i := 0; i < DeadThreshold; i++ {
		e.TxResult(5, false)
	}
	if got := e.ETX(5); got != phy.ETXUnreachable {
		t.Fatalf("ETX after %d consecutive failures = %.2f, want unreachable",
			DeadThreshold, got)
	}
	// A single decoded frame must NOT revive the link (nearly-dead links
	// occasionally decode one frame).
	e.Observe(5, -60)
	if got := e.ETX(5); got != phy.ETXUnreachable {
		t.Fatalf("one observation revived a dead link: %.2f", got)
	}
	// Sustained reception evidence does revive it, pessimistically.
	for i := 0; i < ResurrectObservations; i++ {
		e.Observe(5, -60)
	}
	got := e.ETX(5)
	if got >= phy.ETXUnreachable {
		t.Fatalf("resurrection did not revive the link: %.2f", got)
	}
	if got < failSample/2 {
		t.Fatalf("resurrected link too optimistic: %.2f", got)
	}
}

func TestEstimatorUnknownNeighbour(t *testing.T) {
	e := NewEstimator()
	if got := e.ETX(9); got != phy.ETXUnreachable {
		t.Fatalf("unknown neighbour ETX = %.2f, want unreachable", got)
	}
	if e.Known(9) {
		t.Fatal("unknown neighbour reported as known")
	}
	// TxResult on an unknown neighbour must not create state.
	e.TxResult(9, true)
	if e.Known(9) {
		t.Fatal("TxResult created state for unknown neighbour")
	}
}

func TestEstimatorPenaltyAndRecovery(t *testing.T) {
	e := NewEstimator()
	e.Observe(5, -60)
	base := e.ETX(5)
	e.TxResult(5, false)
	penalised := e.ETX(5)
	if penalised <= base {
		t.Fatalf("no-ACK did not penalise: %.3f <= %.3f", penalised, base)
	}
	for i := 0; i < 100; i++ {
		e.TxResult(5, true)
	}
	if got := e.ETX(5); got > 1.05 {
		t.Fatalf("sustained ACKs did not recover the estimate: %.3f", got)
	}
}

func TestEstimatorFailureDrivesTowardUnreachable(t *testing.T) {
	e := NewEstimator()
	e.Observe(5, -60)
	for i := 0; i < 500; i++ {
		e.TxResult(5, false)
	}
	if got := e.ETX(5); got < failSample-0.5 {
		t.Fatalf("sustained failures left ETX at %.3f", got)
	}
	if got := e.ETX(5); got > phy.ETXUnreachable {
		t.Fatalf("ETX exceeded the unreachable cap: %.3f", got)
	}
}

func TestEstimatorETXNeverBelowOne(t *testing.T) {
	e := NewEstimator()
	e.Observe(5, -40)
	for i := 0; i < 50; i++ {
		e.TxResult(5, true)
	}
	if got := e.ETX(5); got < 1 {
		t.Fatalf("ETX dropped below 1: %.3f", got)
	}
}

func TestEstimatorForget(t *testing.T) {
	e := NewEstimator()
	e.Observe(5, -60)
	e.Forget(5)
	if e.Known(5) {
		t.Fatal("forgotten neighbour still known")
	}
}

func TestEstimatorNeighbors(t *testing.T) {
	e := NewEstimator()
	e.Observe(5, -60)
	e.Observe(7, -70)
	got := e.Neighbors()
	if len(got) != 2 {
		t.Fatalf("Neighbors() returned %d entries, want 2", len(got))
	}
	seen := map[int]bool{}
	for _, n := range got {
		seen[int(n)] = true
	}
	if !seen[5] || !seen[7] {
		t.Fatalf("Neighbors() = %v, want {5, 7}", got)
	}
}
