// Package link implements per-neighbour link quality estimation as the
// paper specifies: the initial ETX of a link is derived from the received
// signal strength of the first frames heard from the neighbour (Section V:
// RSS >= -60 dBm maps to ETX 1, RSS <= -90 dBm maps to ETX 3, linear in
// between), and the estimate is then driven by transmission outcomes,
// penalised whenever a transmission error occurs (no ACK).
package link

import (
	"math"

	"github.com/digs-net/digs/internal/phy"
	"github.com/digs-net/digs/internal/topology"
)

// RSS thresholds for the initial ETX mapping (paper Section V).
const (
	RSSMinDBm = -90.0
	RSSMaxDBm = -60.0

	initialETXAtMax = 1.0
	initialETXAtMin = 3.0
)

// Profile tunes how the estimator reacts to transmission outcomes.
// Different stacks detect failures at very different speeds: the DiGS
// paper prescribes aggressive ETX penalties on transmission errors, while
// the Contiki RPL link statistics the Orchestra baseline builds on react
// far more slowly — a contrast the paper's repair-time measurements hinge
// on.
type Profile struct {
	// AlphaOK and AlphaFail are the EWMA weights for acknowledged and
	// unacknowledged transmissions.
	AlphaOK   float64
	AlphaFail float64
	// FailSample is the base ETX sample for a failed transmission.
	FailSample float64
	// Escalate multiplies the fail sample by the consecutive-failure
	// count, pricing a bad link out of routing within a few attempts.
	Escalate bool
	// DeadThreshold is the number of consecutive unacknowledged
	// transmissions after which the link is declared dead (ETX pinned to
	// unreachable).
	DeadThreshold int
	// ResurrectObservations is how many frames must be decoded from a
	// dead neighbour before its link is considered alive again. RSS is
	// only measurable on decoded frames, so a nearly-dead link
	// occasionally decodes one and would otherwise look usable (the
	// RSS-to-ETX bootstrap caps at 3).
	ResurrectObservations int
	// Seed maps a smoothed RSS to the initial (pre-transmission) ETX.
	Seed func(rssDBm float64) float64
}

// AggressiveProfile is the DiGS behaviour: a failed parent is priced out
// within a handful of attempts (the paper's "ETX value gets penalized if a
// transmission error occurs").
func AggressiveProfile() Profile {
	return Profile{
		AlphaOK:               0.10,
		AlphaFail:             0.12,
		FailSample:            6.0,
		Escalate:              true,
		DeadThreshold:         8,
		ResurrectObservations: 10,
		Seed:                  InitialETX, // the paper's RSS mapping
	}
}

// ConservativeProfile models Contiki-class link statistics: smooth,
// non-escalating penalties and a much longer dead-link horizon, which is
// why tree routing repairs slowly when a router dies.
func ConservativeProfile() Profile {
	return Profile{
		AlphaOK:               0.10,
		AlphaFail:             0.12,
		FailSample:            6.0,
		Escalate:              false,
		DeadThreshold:         24,
		ResurrectObservations: 10,
		// Seed from the physical PRR curve: a slow estimator cannot
		// afford an optimistic bootstrap (it would take minutes to back
		// out of a near-dead link the DiGS mapping caps at ETX 3).
		Seed: func(rssDBm float64) float64 {
			etx := phy.LinkETX(phy.PRR(rssDBm))
			if etx < 1 {
				return 1
			}
			return etx
		},
	}
}

// Compatibility aliases for the default (aggressive) profile's parameters,
// referenced by tests and documentation.
const (
	failSample            = 6.0
	DeadThreshold         = 8
	ResurrectObservations = 10
)

// InitialETX maps a received signal strength to the paper's initial ETX.
func InitialETX(rssDBm float64) float64 {
	switch {
	case rssDBm >= RSSMaxDBm:
		return initialETXAtMax
	case rssDBm <= RSSMinDBm:
		return initialETXAtMin
	default:
		frac := (RSSMaxDBm - rssDBm) / (RSSMaxDBm - RSSMinDBm)
		return initialETXAtMax + frac*(initialETXAtMin-initialETXAtMax)
	}
}

// rssAlpha smooths the per-neighbour RSS average that seeds the initial
// ETX: a single lucky fading spike on a marginal link must not make it
// look like a good route.
const rssAlpha = 0.3

type linkState struct {
	etx            float64
	rssAvg         float64
	consecFails    int
	txSeen         bool
	resurrectCount int
}

// Estimator tracks the ETX of every neighbour a node has heard from.
// The zero value is not usable; create one with NewEstimator.
type Estimator struct {
	links   map[topology.NodeID]linkState
	profile Profile
}

// NewEstimator returns an empty estimator with the aggressive (DiGS)
// profile.
func NewEstimator() *Estimator {
	return NewEstimatorWithProfile(AggressiveProfile())
}

// NewEstimatorWithProfile returns an empty estimator with the given
// reaction profile.
func NewEstimatorWithProfile(p Profile) *Estimator {
	return &Estimator{
		links:   make(map[topology.NodeID]linkState),
		profile: p,
	}
}

// Observe records a frame heard from the neighbour at the given RSS.
// Until the first unicast transmission outcome, the ETX tracks a smoothed
// RSS average through the paper's bootstrap mapping; after that, the
// transmission history is authoritative. Hearing from a neighbour that was
// declared dead resurrects it pessimistically (the link may only be
// intermittently alive).
func (e *Estimator) Observe(n topology.NodeID, rssDBm float64) {
	s, ok := e.links[n]
	switch {
	case !ok:
		e.links[n] = linkState{etx: e.profile.Seed(rssDBm), rssAvg: rssDBm}
		return
	case s.etx >= phy.ETXUnreachable:
		s.rssAvg = (1-rssAlpha)*s.rssAvg + rssAlpha*rssDBm
		s.resurrectCount++
		if s.resurrectCount >= e.profile.ResurrectObservations {
			s.etx = math.Max(e.profile.Seed(s.rssAvg), e.profile.FailSample/2)
			s.consecFails = 0
			s.resurrectCount = 0
			// Keep the pessimistic seed until real transmissions speak:
			// this link has failed us before.
			s.txSeen = true
		}
	default:
		s.rssAvg = (1-rssAlpha)*s.rssAvg + rssAlpha*rssDBm
		if !s.txSeen {
			s.etx = e.profile.Seed(s.rssAvg)
		}
	}
	e.links[n] = s
}

// TxResult folds one unicast transmission outcome into the neighbour's
// estimate. Unknown neighbours are ignored (we never transmit to a
// neighbour we have not first heard from). DeadThreshold consecutive
// failures pin the estimate to unreachable.
func (e *Estimator) TxResult(n topology.NodeID, acked bool) {
	s, ok := e.links[n]
	if !ok {
		return
	}
	s.txSeen = true
	sample, alpha := 1.0, e.profile.AlphaOK
	if acked {
		s.consecFails = 0
	} else {
		s.consecFails++
		sample, alpha = e.profile.FailSample, e.profile.AlphaFail
		if e.profile.Escalate {
			sample *= float64(s.consecFails)
		}
		if sample > phy.ETXUnreachable {
			sample = phy.ETXUnreachable
		}
	}
	s.etx = (1-alpha)*s.etx + alpha*sample
	if s.consecFails >= e.profile.DeadThreshold || s.etx > phy.ETXUnreachable {
		s.etx = phy.ETXUnreachable
	}
	if s.etx < 1 {
		s.etx = 1
	}
	e.links[n] = s
}

// ETX returns the neighbour's current estimate. Neighbours never heard
// from report phy.ETXUnreachable.
func (e *Estimator) ETX(n topology.NodeID) float64 {
	if s, ok := e.links[n]; ok {
		return s.etx
	}
	return phy.ETXUnreachable
}

// Known reports whether the neighbour has been heard from.
func (e *Estimator) Known(n topology.NodeID) bool {
	_, ok := e.links[n]
	return ok
}

// Forget drops a neighbour (used when a parent is declared dead).
func (e *Estimator) Forget(n topology.NodeID) {
	delete(e.links, n)
}

// Neighbors returns the IDs of all known neighbours, in unspecified order.
func (e *Estimator) Neighbors() []topology.NodeID {
	out := make([]topology.NodeID, 0, len(e.links))
	for n := range e.links {
		out = append(out, n)
	}
	return out
}
