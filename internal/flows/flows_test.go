package flows

import (
	"math/rand"
	"testing"
	"time"

	"github.com/digs-net/digs/internal/sim"
	"github.com/digs-net/digs/internal/topology"
)

func TestRandomSetDistinctFieldSources(t *testing.T) {
	topo := topology.TestbedA()
	rng := rand.New(rand.NewSource(1))
	set, err := RandomSet(topo, 8, 5*time.Second, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 8 {
		t.Fatalf("got %d flows, want 8", len(set))
	}
	seen := map[topology.NodeID]bool{}
	for _, f := range set {
		if topo.IsAP(f.Source) {
			t.Fatalf("flow %d sources from an AP", f.ID)
		}
		if seen[f.Source] {
			t.Fatalf("duplicate source %d", f.Source)
		}
		seen[f.Source] = true
		if f.Period != 5*time.Second {
			t.Fatalf("flow %d period %v", f.ID, f.Period)
		}
	}
}

func TestRandomSetRejectsOversizedRequest(t *testing.T) {
	topo := topology.TestbedA()
	if _, err := RandomSet(topo, 1000, time.Second, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("accepted more flows than field devices")
	}
}

func TestFixedSet(t *testing.T) {
	set := FixedSet([]topology.NodeID{5, 9}, time.Second)
	if len(set) != 2 || set[0].Source != 5 || set[1].Source != 9 {
		t.Fatalf("FixedSet = %+v", set)
	}
	if set[0].ID != 1 || set[1].ID != 2 {
		t.Fatalf("flow IDs = %d, %d; want 1, 2", set[0].ID, set[1].ID)
	}
}

func TestScheduleEmitsAllPackets(t *testing.T) {
	topo := topology.TestbedA()
	nw := sim.NewNetwork(topo, 1)
	set := FixedSet([]topology.NodeID{5, 9}, time.Second)

	type gen struct {
		flow uint16
		seq  uint16
		asn  sim.ASN
	}
	var got []gen
	Schedule(nw, set, 3, func(f Flow, seq uint16, asn sim.ASN) {
		got = append(got, gen{f.ID, seq, asn})
	})
	nw.Run(sim.SlotsFor(5 * time.Second))

	if len(got) != 6 {
		t.Fatalf("generated %d packets, want 6", len(got))
	}
	// Sequences per flow are 0,1,2 at one-period spacing; flows are
	// staggered within the period.
	perFlow := map[uint16][]gen{}
	for _, g := range got {
		perFlow[g.flow] = append(perFlow[g.flow], g)
	}
	for id, gs := range perFlow {
		if len(gs) != 3 {
			t.Fatalf("flow %d generated %d packets", id, len(gs))
		}
		for i := 1; i < len(gs); i++ {
			if gs[i].asn-gs[i-1].asn != sim.SlotsFor(time.Second) {
				t.Fatalf("flow %d spacing %d slots", id, gs[i].asn-gs[i-1].asn)
			}
		}
	}
	if perFlow[1][0].asn == perFlow[2][0].asn {
		t.Fatal("flows not staggered")
	}
}
