// Package flows generates the periodic uplink workloads of the paper's
// evaluation: sets of data flows with distinct sources, each producing one
// packet per period towards the access points.
package flows

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/digs-net/digs/internal/sim"
	"github.com/digs-net/digs/internal/topology"
)

// Flow is one periodic uplink data flow.
type Flow struct {
	ID     uint16
	Source topology.NodeID
	Period time.Duration
}

// RandomSet draws a flow set: n distinct random field-device sources, all
// with the same period (the paper's flow sets differ in their sources).
// Nodes in exclude (e.g. motes repurposed as jammers) are never drawn.
func RandomSet(topo *topology.Topology, n int, period time.Duration, rng *rand.Rand,
	exclude ...topology.NodeID) ([]Flow, error) {
	excluded := make(map[topology.NodeID]bool, len(exclude))
	for _, id := range exclude {
		excluded[id] = true
	}
	var pool []topology.NodeID
	for i := topo.NumAPs + 1; i <= topo.N(); i++ {
		if id := topology.NodeID(i); !excluded[id] {
			pool = append(pool, id)
		}
	}
	if n > len(pool) {
		return nil, fmt.Errorf("flows: want %d sources, topology has %d eligible field devices",
			n, len(pool))
	}
	perm := rng.Perm(len(pool))
	out := make([]Flow, n)
	for i := 0; i < n; i++ {
		out[i] = Flow{
			ID:     uint16(i + 1),
			Source: pool[perm[i]],
			Period: period,
		}
	}
	return out, nil
}

// FixedSet builds a flow set from explicit sources (e.g. the testbed's
// suggested sources from Figure 8).
func FixedSet(sources []topology.NodeID, period time.Duration) []Flow {
	out := make([]Flow, len(sources))
	for i, src := range sources {
		out[i] = Flow{ID: uint16(i + 1), Source: src, Period: period}
	}
	return out
}

// Schedule registers packet generation events on the network: each flow
// emits `packets` packets at its period, staggered so flows do not all
// generate in the same slot. The inject callback performs the actual
// enqueue (and any bookkeeping); seq numbers count from 0.
func Schedule(nw *sim.Network, set []Flow, packets int,
	inject func(f Flow, seq uint16, asn sim.ASN)) {
	base := nw.ASN()
	for fi, f := range set {
		f := f
		periodSlots := sim.SlotsFor(f.Period)
		stagger := sim.ASN(fi) * (periodSlots / sim.ASN(maxInt(len(set), 1)))
		for p := 0; p < packets; p++ {
			seq := uint16(p)
			at := base + stagger + sim.ASN(p)*periodSlots
			// A napping source must be woken before the enqueue: the
			// scale engine skips napping nodes entirely, and the nap was
			// computed from a schedule that assumed an empty queue.
			nw.At(at, func() { nw.Wake(f.Source); inject(f, seq, at) })
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
