package snapshot

import (
	"github.com/digs-net/digs/internal/controller"
	"github.com/digs-net/digs/internal/topology"
)

// Controller-layer stack sections (wire format version 3).

func encodeNodeIDs(w *writer, ids []topology.NodeID) {
	w.uvarint(uint64(len(ids)))
	for _, id := range ids {
		w.u64(uint64(id))
	}
}

func decodeNodeIDs(r *reader) []topology.NodeID {
	n := r.count(1)
	if n == 0 {
		return nil
	}
	out := make([]topology.NodeID, n)
	for i := range out {
		out[i] = topology.NodeID(r.u64())
	}
	return out
}

// --- SDN stacks ---

func encodeSDNNeighbors(w *writer, ns []controller.SDNReportNeighbor) {
	w.uvarint(uint64(len(ns)))
	for _, e := range ns {
		w.u64(uint64(e.Node))
		w.float(e.RSS)
	}
}

func decodeSDNNeighbors(r *reader) []controller.SDNReportNeighbor {
	n := r.count(9)
	if n == 0 {
		return nil
	}
	out := make([]controller.SDNReportNeighbor, n)
	for i := range out {
		out[i].Node = topology.NodeID(r.u64())
		out[i].RSS = r.float()
	}
	return out
}

func encodeSDNStack(w *writer, st *controller.SDNStackState) {
	w.boolean(st.Synced)
	w.u64(uint64(st.Uplink))
	w.u8(st.OwnHops)
	w.boolean(st.HasHops)
	if st.HasHops {
		w.uvarint(uint64(len(st.Hops)))
		for _, e := range st.Hops {
			w.u64(uint64(e.Node))
			w.u8(e.Hops)
			w.i64(e.Heard)
		}
	}
	w.boolean(st.HasRSS)
	if st.HasRSS {
		w.uvarint(uint64(len(st.RSS)))
		for _, e := range st.RSS {
			w.u64(uint64(e.Node))
			w.float(e.RSS)
			w.i64(e.Heard)
		}
	}
	w.i64(st.NextMaintain)
	w.i64(st.NextReport)
	w.u16(st.CfgEpoch)
	w.u64(uint64(st.Parent))
	encodeNodeIDs(w, st.Children)
	w.intval(st.ConsecParentFails)
	w.uvarint(uint64(len(st.CtrlQ)))
	for i := range st.CtrlQ {
		encodeFrame(w, &st.CtrlQ[i].Frame)
		w.intval(st.CtrlQ[i].Tries)
		w.i64(st.CtrlQ[i].NotBefore)
	}
	w.uvarint(uint64(len(st.Reports)))
	for i := range st.Reports {
		w.u64(uint64(st.Reports[i].Node))
		w.i64(st.Reports[i].ASN)
		encodeSDNNeighbors(w, st.Reports[i].Neigh)
	}
	w.u16(st.Epoch)
	w.i64(st.EpochCount)
	w.i64(st.NextRecompute)
	w.uvarint(uint64(len(st.LastSent)))
	for i := range st.LastSent {
		w.u64(uint64(st.LastSent[i].Node))
		w.u64(uint64(st.LastSent[i].Parent))
		encodeNodeIDs(w, st.LastSent[i].Children)
	}
}

func decodeSDNStack(r *reader) *controller.SDNStackState {
	st := &controller.SDNStackState{}
	st.Synced = r.boolean()
	st.Uplink = topology.NodeID(r.u64())
	st.OwnHops = r.u8()
	if r.boolean() {
		st.HasHops = true
		if n := r.count(3); n > 0 {
			st.Hops = make([]controller.SDNHopsState, n)
			for i := range st.Hops {
				st.Hops[i].Node = topology.NodeID(r.u64())
				st.Hops[i].Hops = r.u8()
				st.Hops[i].Heard = r.i64()
			}
		}
	}
	if r.boolean() {
		st.HasRSS = true
		if n := r.count(10); n > 0 {
			st.RSS = make([]controller.SDNRSSState, n)
			for i := range st.RSS {
				st.RSS[i].Node = topology.NodeID(r.u64())
				st.RSS[i].RSS = r.float()
				st.RSS[i].Heard = r.i64()
			}
		}
	}
	st.NextMaintain = r.i64()
	st.NextReport = r.i64()
	st.CfgEpoch = r.u16()
	st.Parent = topology.NodeID(r.u64())
	st.Children = decodeNodeIDs(r)
	st.ConsecParentFails = r.intval()
	if n := r.count(8); n > 0 {
		st.CtrlQ = make([]controller.SDNCtrlState, n)
		for i := range st.CtrlQ {
			st.CtrlQ[i].Frame = decodeFrame(r)
			st.CtrlQ[i].Tries = r.intval()
			st.CtrlQ[i].NotBefore = r.i64()
		}
	}
	if n := r.count(3); n > 0 {
		st.Reports = make([]controller.SDNReportState, n)
		for i := range st.Reports {
			st.Reports[i].Node = topology.NodeID(r.u64())
			st.Reports[i].ASN = r.i64()
			st.Reports[i].Neigh = decodeSDNNeighbors(r)
		}
	}
	st.Epoch = r.u16()
	st.EpochCount = r.i64()
	st.NextRecompute = r.i64()
	if n := r.count(3); n > 0 {
		st.LastSent = make([]controller.SDNSentState, n)
		for i := range st.LastSent {
			st.LastSent[i].Node = topology.NodeID(r.u64())
			st.LastSent[i].Parent = topology.NodeID(r.u64())
			st.LastSent[i].Children = decodeNodeIDs(r)
		}
	}
	return st
}

func encodeSDNStacks(w *writer, stacks []*controller.SDNStackState) {
	w.uvarint(uint64(len(stacks)))
	for _, s := range stacks {
		w.boolean(s != nil)
		if s != nil {
			encodeSDNStack(w, s)
		}
	}
}

func decodeSDNStacks(r *reader) []*controller.SDNStackState {
	n := r.count(1)
	out := make([]*controller.SDNStackState, n)
	for i := range out {
		if r.boolean() {
			out[i] = decodeSDNStack(r)
		}
		if r.err != nil {
			return nil
		}
	}
	return out
}

// --- adaptive stacks ---

func encodeAdaptiveStack(w *writer, st *controller.AdaptiveStackState) {
	encodeRPLRouter(w, &st.Router)
	tr := st.Trickle
	encodeTrickle(w, &tr)
	w.u64(st.RNGDraws)
	w.boolean(st.WantDIO)
	w.i64(st.NextMaintain)
	w.i64(st.NextSolicit)
	w.boolean(st.Synced)
	w.intval(st.TxCells)
	w.intval(st.IdleTicks)
	w.intval(st.FailsSinceTick)
	w.intval(st.SentSinceTick)
	w.boolean(st.HasNeighborCells)
	if st.HasNeighborCells {
		w.uvarint(uint64(len(st.NeighborCells)))
		for _, c := range st.NeighborCells {
			w.u64(uint64(c.Node))
			w.intval(c.Cells)
		}
	}
	w.boolean(st.HasChildCells)
	if st.HasChildCells {
		w.uvarint(uint64(len(st.ChildCells)))
		for _, c := range st.ChildCells {
			w.i64(c.Slot)
			w.u64(uint64(c.Node))
		}
	}
}

func decodeAdaptiveStack(r *reader) *controller.AdaptiveStackState {
	st := &controller.AdaptiveStackState{}
	st.Router = decodeRPLRouter(r)
	st.Trickle = decodeTrickle(r)
	st.RNGDraws = r.u64()
	st.WantDIO = r.boolean()
	st.NextMaintain = r.i64()
	st.NextSolicit = r.i64()
	st.Synced = r.boolean()
	st.TxCells = r.intval()
	st.IdleTicks = r.intval()
	st.FailsSinceTick = r.intval()
	st.SentSinceTick = r.intval()
	if r.boolean() {
		st.HasNeighborCells = true
		if n := r.count(2); n > 0 {
			st.NeighborCells = make([]controller.AdaptiveCellState, n)
			for i := range st.NeighborCells {
				st.NeighborCells[i].Node = topology.NodeID(r.u64())
				st.NeighborCells[i].Cells = r.intval()
			}
		}
	}
	if r.boolean() {
		st.HasChildCells = true
		if n := r.count(2); n > 0 {
			st.ChildCells = make([]controller.AdaptiveChildCellState, n)
			for i := range st.ChildCells {
				st.ChildCells[i].Slot = r.i64()
				st.ChildCells[i].Node = topology.NodeID(r.u64())
			}
		}
	}
	return st
}

func encodeAdaptiveStacks(w *writer, stacks []*controller.AdaptiveStackState) {
	w.uvarint(uint64(len(stacks)))
	for _, s := range stacks {
		w.boolean(s != nil)
		if s != nil {
			encodeAdaptiveStack(w, s)
		}
	}
}

func decodeAdaptiveStacks(r *reader) []*controller.AdaptiveStackState {
	n := r.count(1)
	out := make([]*controller.AdaptiveStackState, n)
	for i := range out {
		if r.boolean() {
			out[i] = decodeAdaptiveStack(r)
		}
		if r.err != nil {
			return nil
		}
	}
	return out
}
