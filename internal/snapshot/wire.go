package snapshot

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Low-level wire primitives. Integers are varints (zigzag for signed),
// floats are fixed 8-byte little-endian IEEE bit patterns (Inf and NaN
// round-trip exactly), byte strings are length-prefixed. The reader never
// panics on malformed input: every length and count is bounded by the
// bytes actually remaining, so truncated, corrupt or adversarial inputs
// fail with an error before any oversized allocation.

type writer struct {
	buf []byte
}

func (w *writer) uvarint(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }
func (w *writer) varint(v int64)   { w.buf = binary.AppendVarint(w.buf, v) }
func (w *writer) float(v float64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(v))
}
func (w *writer) bytes(b []byte) { w.uvarint(uint64(len(b))); w.buf = append(w.buf, b...) }
func (w *writer) str(s string)   { w.uvarint(uint64(len(s))); w.buf = append(w.buf, s...) }
func (w *writer) u8(v uint8)     { w.buf = append(w.buf, v) }
func (w *writer) u16(v uint16)   { w.uvarint(uint64(v)) }
func (w *writer) u64(v uint64)   { w.uvarint(v) }
func (w *writer) i64(v int64)    { w.varint(v) }
func (w *writer) intval(v int)   { w.varint(int64(v)) }
func (w *writer) boolean(v bool) {
	if v {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *reader) remaining() int { return len(r.buf) - r.off }

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail("snapshot: truncated or malformed uvarint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *reader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.fail("snapshot: truncated or malformed varint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *reader) float() float64 {
	if r.err != nil {
		return 0
	}
	if r.remaining() < 8 {
		r.fail("snapshot: truncated float at offset %d", r.off)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.buf[r.off:]))
	r.off += 8
	return v
}

func (r *reader) bytes() []byte {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(r.remaining()) {
		r.fail("snapshot: byte string of %d exceeds %d remaining at offset %d", n, r.remaining(), r.off)
		return nil
	}
	out := append([]byte(nil), r.buf[r.off:r.off+int(n)]...)
	r.off += int(n)
	return out
}

func (r *reader) str() string {
	return string(r.bytes())
}

func (r *reader) u8() uint8 {
	if r.err != nil {
		return 0
	}
	if r.remaining() < 1 {
		r.fail("snapshot: truncated byte at offset %d", r.off)
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

func (r *reader) u16() uint16 {
	v := r.uvarint()
	if v > math.MaxUint16 {
		r.fail("snapshot: value %d overflows uint16", v)
		return 0
	}
	return uint16(v)
}

func (r *reader) u64() uint64 { return r.uvarint() }
func (r *reader) i64() int64  { return r.varint() }

func (r *reader) intval() int {
	v := r.varint()
	if v > math.MaxInt32 || v < math.MinInt32 {
		r.fail("snapshot: value %d overflows int", v)
		return 0
	}
	return int(v)
}

func (r *reader) boolean() bool {
	switch r.u8() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail("snapshot: invalid bool at offset %d", r.off-1)
		return false
	}
}

// count reads a collection length and bounds it by the remaining input:
// every element costs at least minElemBytes on the wire, so a count
// exceeding remaining/minElemBytes proves corruption before allocation.
func (r *reader) count(minElemBytes int) int {
	n := r.uvarint()
	if r.err != nil {
		return 0
	}
	if minElemBytes < 1 {
		minElemBytes = 1
	}
	if n > uint64(r.remaining()/minElemBytes) {
		r.fail("snapshot: count %d exceeds remaining input at offset %d", n, r.off)
		return 0
	}
	return int(n)
}
