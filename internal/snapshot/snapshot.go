// Package snapshot implements the deterministic checkpoint/restore layer:
// a versioned, self-describing binary codec over the plain-old-data state
// every stateful package exports (sim.NetworkState, mac.NodeState, the
// protocol StackStates, metrics.CollectorState). A snapshot taken at a
// quiesce point restores into a freshly built scenario — same topology,
// configuration and seeds — such that continuing the run is bit-identical
// to never having stopped: every RNG stream position, queue, routing
// table, timer and counter round-trips exactly.
//
// What is not captured: scheduled event closures and interferers (the
// scenario layer re-schedules them after restore; taking a snapshot while
// any exist is an error), telemetry sinks (external observers, re-attached
// by the caller), and everything construction-derived (schedules, RSS
// matrices, wiring), which the deterministic build path reproduces.
package snapshot

import (
	"fmt"
	"hash/fnv"

	"github.com/digs-net/digs/internal/controller"
	"github.com/digs-net/digs/internal/core"
	"github.com/digs-net/digs/internal/mac"
	"github.com/digs-net/digs/internal/metrics"
	"github.com/digs-net/digs/internal/orchestra"
	"github.com/digs-net/digs/internal/sim"
	"github.com/digs-net/digs/internal/whart"
)

// Protocol identifiers stored in snapshot metadata.
const (
	ProtocolDiGS      = "digs"
	ProtocolOrchestra = "orchestra"
	ProtocolWHART     = "whart"
	ProtocolSDN       = "sdn"
	ProtocolAdaptive  = "adaptive"
)

// Meta is the self-describing header of a snapshot: everything a consumer
// needs to rebuild the scenario the state overlays onto, plus free-form
// labelling for caches and tooling.
type Meta struct {
	// Protocol is one of the Protocol* constants.
	Protocol string
	// Topology names the deployment (e.g. "testbed-a"); the restoring
	// side resolves it to the same generator the taking side used.
	Topology string
	Nodes    int
	NumAPs   int
	// Seed is the scenario seed: the sim.Network seed, from which the
	// per-node stack seeds derive in the build path.
	Seed int64
	// Slot is the ASN the snapshot was taken at.
	Slot int64
	// ConfigHash fingerprints the build configuration (HashConfig). A
	// restore under a different configuration would not be the same
	// simulation; consumers compare fingerprints before restoring.
	ConfigHash uint64
	// Label tags the scenario phase (e.g. "formed+30s"); the snapshot
	// cache keys on it alongside topology/protocol/seed/config.
	Label string
	// Extra carries free-form key/value pairs (e.g. the formation length
	// a warm-started run reports); encoded sorted by key.
	Extra map[string]string
}

// Snapshot is a fully decoded checkpoint.
type Snapshot struct {
	Meta Meta
	Net  *sim.NetworkState
	// MACs is indexed by node ID (entry 0 nil), length Nodes+1.
	MACs []*mac.NodeState
	// Exactly one of DiGS/Orchestra/SDN/Adaptive is populated for those
	// protocols; the WirelessHART stack is stateless beyond its MAC nodes.
	DiGS      []*core.StackState
	Orchestra []*orchestra.StackState
	SDN       []*controller.SDNStackState
	Adaptive  []*controller.AdaptiveStackState
	// Metrics optionally carries an in-window collector (snapshots taken
	// mid-measurement).
	Metrics *metrics.CollectorState

	// SectionSizes reports the encoded byte size per section tag after a
	// Decode (inspection/tooling); Encode ignores it.
	SectionSizes map[string]int
}

// HashConfig fingerprints build configuration values. Pass plain-old-data
// structs (mac.Config, core.Config, orchestra.Config, slotframe lengths…);
// the hash is over their printed form, stable across processes.
func HashConfig(parts ...any) uint64 {
	h := fnv.New64a()
	for _, p := range parts {
		fmt.Fprintf(h, "%+v|", p)
	}
	return h.Sum64()
}

func captureMACs(nodes []*mac.Node) []*mac.NodeState {
	out := make([]*mac.NodeState, len(nodes))
	for i, n := range nodes {
		if n != nil {
			out[i] = n.CaptureState()
		}
	}
	return out
}

func restoreMACs(nodes []*mac.Node, states []*mac.NodeState) error {
	if len(states) != len(nodes) {
		return fmt.Errorf("snapshot: %d MAC states for %d nodes", len(states), len(nodes))
	}
	for i, n := range nodes {
		if n == nil {
			continue
		}
		if err := n.RestoreState(states[i]); err != nil {
			return err
		}
	}
	return nil
}

func fillMeta(meta Meta, proto string, nw *sim.Network) Meta {
	meta.Protocol = proto
	meta.Nodes = nw.Topology().N()
	meta.NumAPs = nw.Topology().NumAPs
	meta.Slot = nw.ASN()
	return meta
}

func (s *Snapshot) checkRestore(proto string, nw *sim.Network) error {
	if s.Meta.Protocol != proto {
		return fmt.Errorf("snapshot: restoring %q snapshot into a %s scenario", s.Meta.Protocol, proto)
	}
	if s.Meta.Nodes != nw.Topology().N() {
		return fmt.Errorf("snapshot: %d nodes in snapshot, topology has %d", s.Meta.Nodes, nw.Topology().N())
	}
	if s.Net == nil {
		return fmt.Errorf("snapshot: missing network section")
	}
	return nil
}

// TakeDiGS captures a complete DiGS scenario at the current slot.
func TakeDiGS(meta Meta, nw *sim.Network, net *core.Network) (*Snapshot, error) {
	netSt, err := nw.CaptureState()
	if err != nil {
		return nil, err
	}
	stacks, err := net.CaptureState()
	if err != nil {
		return nil, err
	}
	return &Snapshot{
		Meta: fillMeta(meta, ProtocolDiGS, nw),
		Net:  netSt,
		MACs: captureMACs(net.Nodes),
		DiGS: stacks,
	}, nil
}

// RestoreDiGS overlays the snapshot onto a freshly built DiGS scenario.
func (s *Snapshot) RestoreDiGS(nw *sim.Network, net *core.Network) error {
	if err := s.checkRestore(ProtocolDiGS, nw); err != nil {
		return err
	}
	if err := nw.RestoreState(s.Net); err != nil {
		return err
	}
	if err := restoreMACs(net.Nodes, s.MACs); err != nil {
		return err
	}
	return net.RestoreState(s.DiGS)
}

// TakeOrchestra captures a complete Orchestra scenario at the current slot.
func TakeOrchestra(meta Meta, nw *sim.Network, net *orchestra.Network) (*Snapshot, error) {
	netSt, err := nw.CaptureState()
	if err != nil {
		return nil, err
	}
	stacks, err := net.CaptureState()
	if err != nil {
		return nil, err
	}
	return &Snapshot{
		Meta:      fillMeta(meta, ProtocolOrchestra, nw),
		Net:       netSt,
		MACs:      captureMACs(net.Nodes),
		Orchestra: stacks,
	}, nil
}

// RestoreOrchestra overlays the snapshot onto a freshly built Orchestra
// scenario.
func (s *Snapshot) RestoreOrchestra(nw *sim.Network, net *orchestra.Network) error {
	if err := s.checkRestore(ProtocolOrchestra, nw); err != nil {
		return err
	}
	if err := nw.RestoreState(s.Net); err != nil {
		return err
	}
	if err := restoreMACs(net.Nodes, s.MACs); err != nil {
		return err
	}
	return net.RestoreState(s.Orchestra)
}

// TakeWHART captures a complete WirelessHART scenario at the current slot.
// The centrally computed stack is stateless, so MAC state is all there is.
func TakeWHART(meta Meta, nw *sim.Network, net *whart.Network) (*Snapshot, error) {
	netSt, err := nw.CaptureState()
	if err != nil {
		return nil, err
	}
	return &Snapshot{
		Meta: fillMeta(meta, ProtocolWHART, nw),
		Net:  netSt,
		MACs: captureMACs(net.Nodes),
	}, nil
}

// RestoreWHART overlays the snapshot onto a freshly built WirelessHART
// scenario.
func (s *Snapshot) RestoreWHART(nw *sim.Network, net *whart.Network) error {
	if err := s.checkRestore(ProtocolWHART, nw); err != nil {
		return err
	}
	if err := nw.RestoreState(s.Net); err != nil {
		return err
	}
	return restoreMACs(net.Nodes, s.MACs)
}

// TakeSDN captures a complete SDN scenario at the current slot.
func TakeSDN(meta Meta, nw *sim.Network, net *controller.SDNNetwork) (*Snapshot, error) {
	netSt, err := nw.CaptureState()
	if err != nil {
		return nil, err
	}
	stacks, err := net.CaptureState()
	if err != nil {
		return nil, err
	}
	return &Snapshot{
		Meta: fillMeta(meta, ProtocolSDN, nw),
		Net:  netSt,
		MACs: captureMACs(net.Nodes),
		SDN:  stacks,
	}, nil
}

// RestoreSDN overlays the snapshot onto a freshly built SDN scenario.
func (s *Snapshot) RestoreSDN(nw *sim.Network, net *controller.SDNNetwork) error {
	if err := s.checkRestore(ProtocolSDN, nw); err != nil {
		return err
	}
	if err := nw.RestoreState(s.Net); err != nil {
		return err
	}
	if err := restoreMACs(net.Nodes, s.MACs); err != nil {
		return err
	}
	return net.RestoreState(s.SDN)
}

// TakeAdaptive captures a complete adaptive-allocator scenario at the
// current slot.
func TakeAdaptive(meta Meta, nw *sim.Network, net *controller.AdaptiveNetwork) (*Snapshot, error) {
	netSt, err := nw.CaptureState()
	if err != nil {
		return nil, err
	}
	stacks, err := net.CaptureState()
	if err != nil {
		return nil, err
	}
	return &Snapshot{
		Meta:     fillMeta(meta, ProtocolAdaptive, nw),
		Net:      netSt,
		MACs:     captureMACs(net.Nodes),
		Adaptive: stacks,
	}, nil
}

// RestoreAdaptive overlays the snapshot onto a freshly built adaptive
// scenario.
func (s *Snapshot) RestoreAdaptive(nw *sim.Network, net *controller.AdaptiveNetwork) error {
	if err := s.checkRestore(ProtocolAdaptive, nw); err != nil {
		return err
	}
	if err := nw.RestoreState(s.Net); err != nil {
		return err
	}
	if err := restoreMACs(net.Nodes, s.MACs); err != nil {
		return err
	}
	return net.RestoreState(s.Adaptive)
}
