package snapshot

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
	"time"

	"github.com/digs-net/digs/internal/core"
	"github.com/digs-net/digs/internal/link"
	"github.com/digs-net/digs/internal/mac"
	"github.com/digs-net/digs/internal/metrics"
	"github.com/digs-net/digs/internal/orchestra"
	"github.com/digs-net/digs/internal/rpl"
	"github.com/digs-net/digs/internal/sim"
	"github.com/digs-net/digs/internal/topology"
	"github.com/digs-net/digs/internal/trickle"
)

// synthDiGS builds a synthetic DiGS snapshot exercising every optional
// branch of the wire format: fade and drift overlays, queued packets with
// routes and payloads, an in-flight bulletin, pending callbacks, link
// tables and an open metrics window.
func synthDiGS() *Snapshot {
	nodes := 3
	macs := make([]*mac.NodeState, nodes+1)
	stacks := make([]*core.StackState, nodes+1)
	for i := 1; i <= nodes; i++ {
		macs[i] = &mac.NodeState{
			Synced: true, SyncedAt: int64(10 * i), LastRx: int64(100 * i),
			Queue: []mac.PacketState{{
				Frame: mac.FrameState{Kind: 2, Src: 1, Dst: 2, Seq: uint16(i),
					Origin: 3, FlowID: 7, BornASN: 555,
					Route: []topology.NodeID{1, 2, 3}, Payload: []byte{1, 2, 3}},
				TxCount: 1, From: 1, Blocked: 2,
			}},
			Seen:    []mac.SeenKeyState{{Origin: 3, Flow: 7, Seq: 1}, {Origin: 3, Flow: 0xFFFF, Seq: 2}},
			DownSeq: 4, BcastSeq: 5, CoinState: 0xDEADBEEF,
			Bcast: &mac.BulletinState{
				Frame:     mac.FrameState{Kind: 5, Origin: 1, Seq: 9, Payload: []byte("hi")},
				Remaining: 2,
			},
			WdDst: 2, WdFails: 1,
			Stats: mac.Stats{EnergyJoules: 1.5, RadioOnTime: 3 * time.Second, TxData: 42},
		}
		stacks[i] = &core.StackState{
			Router: core.RouterState{
				Rank: uint16(i), ETXw: 1.25, Best: 1, Second: 2,
				ETXaBest: 1.0, ETXaSecond: 2.0,
				Neighbors: []core.NeighborState{{Node: 1, Rank: 0, ETXw: 1, LastHeard: 50}},
				Children:  []core.ChildState{{Node: 2, Role: 1, LastHeard: 60}},
				Links: []link.LinkState{{Node: 1, ETX: 1.1, RSSAvg: -70,
					ConsecFails: 1, TxSeen: true, ResurrectCount: 2}},
				FirstParentAt: 120, HasParentedAt: true, ParentChanges: 3, ChildVersion: 4,
			},
			Trickle:  trickle.State{Interval: 100, IntervalStart: 400, FireAt: 450, Counter: 1, Started: true},
			RNGDraws: 987,
			Pending:  []core.PendingCallbackState{{To: 1, Role: 1, Tries: 2}},
			Synced:   true, NextMaintain: 700, NextSolicit: 900,
			LastBest: 1, LastSecond: 2, BestConfirmed: true, FallbackParent: 1,
		}
	}
	macs[1].Queue[0].Frame.Route = nil

	return &Snapshot{
		Meta: Meta{
			Protocol: ProtocolDiGS, Topology: "testbed-x", Nodes: nodes, NumAPs: 1,
			Seed: 42, Slot: 12345, ConfigHash: 0xABCDEF, Label: "formed+30s",
			Extra: map[string]string{"formed_slots": "8000", "period": "5s"},
		},
		Net: &sim.NetworkState{
			Seed: 42, ASN: 12345, Started: true, EventSeq: 17, RNGDraws: 999,
			FastFadingSigmaDB: 2.0,
			Failed:            []bool{false, false, true, false},
			Fade:              []float64{0, 1.5, 0, 2.5, 0, 0},
			DriftProb:         []float64{0, 0.001, 0.002, 0},
			DriftSeed:         []uint64{0, 7, 8, 9},
		},
		MACs: macs,
		DiGS: stacks,
		Metrics: &metrics.CollectorState{
			Sent:        []metrics.PacketRecord{{Flow: 1, Seq: 1, ASN: 100}, {Flow: 1, Seq: 2, ASN: 200}},
			Delivered:   []metrics.PacketRecord{{Flow: 1, Seq: 1, ASN: 140}},
			OutOfWindow: 1, DupDeliveries: 2,
		},
	}
}

func synthOrchestra() *Snapshot {
	s := synthDiGS()
	s.Meta.Protocol = ProtocolOrchestra
	s.DiGS = nil
	stacks := make([]*orchestra.StackState, s.Meta.Nodes+1)
	for i := 1; i <= s.Meta.Nodes; i++ {
		stacks[i] = &orchestra.StackState{
			Router: rpl.RouterState{
				Rank: uint16(i), PathETX: 1.5, Parent: 1,
				Neighbors:     []rpl.NeighborState{{Node: 1, Rank: 0, PathETX: 1, LastHeard: 80}},
				Links:         []link.LinkState{{Node: 1, ETX: 1.2, RSSAvg: -72}},
				FirstParentAt: 130, HasParentedAt: true, ParentChanges: 2,
			},
			Trickle:  trickle.State{Interval: 200, FireAt: 500, Started: true},
			RNGDraws: 321,
			WantDIO:  true, NextMaintain: 650, Synced: true, TxBackoff: 3,
		}
	}
	// Exercise all three child-slot cache shapes: never refreshed (nil),
	// refreshed empty, and populated.
	stacks[2].HasChildSlots = true
	stacks[3].HasChildSlots = true
	stacks[3].ChildSlots = []orchestra.ChildSlotState{{Slot: 4, Node: 2}, {Slot: 9, Node: 1}}
	s.Orchestra = stacks
	return s
}

func synthWHART() *Snapshot {
	s := synthDiGS()
	s.Meta.Protocol = ProtocolWHART
	s.DiGS = nil
	s.Metrics = nil
	return s
}

func roundTrip(t *testing.T, s *Snapshot) {
	t.Helper()
	b1, err := Encode(s)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	dec, err := Decode(b1)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if d := Diff(s, dec); len(d) != 0 {
		t.Fatalf("decoded snapshot differs:\n%v", d)
	}
	b2, err := Encode(dec)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("re-encoded bytes differ: %d vs %d bytes", len(b1), len(b2))
	}
	for _, tag := range []string{secMeta, secNet, secMAC} {
		if dec.SectionSizes[tag] == 0 {
			t.Fatalf("section %q has no reported size", tag)
		}
	}
}

func TestRoundTripDiGS(t *testing.T)      { roundTrip(t, synthDiGS()) }
func TestRoundTripOrchestra(t *testing.T) { roundTrip(t, synthOrchestra()) }
func TestRoundTripWHART(t *testing.T)     { roundTrip(t, synthWHART()) }

func TestDecodeRejectsTruncation(t *testing.T) {
	b, err := Encode(synthDiGS())
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(b); n++ {
		if _, err := Decode(b[:n]); err == nil {
			t.Fatalf("truncation to %d/%d bytes decoded without error", n, len(b))
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	b, err := Encode(synthOrchestra())
	if err != nil {
		t.Fatal(err)
	}
	// Any single-byte flip must be caught — by the checksum at the latest.
	for i := 0; i < len(b); i += 3 {
		mut := append([]byte(nil), b...)
		mut[i] ^= 0x5A
		if _, err := Decode(mut); err == nil {
			t.Fatalf("flip at byte %d decoded without error", i)
		}
	}
}

func TestDecodeRejectsVersionSkew(t *testing.T) {
	b, err := Encode(synthDiGS())
	if err != nil {
		t.Fatal(err)
	}
	mut := append([]byte(nil), b...)
	mut[len(magic)] = Version + 1 // single-byte uvarint
	// Recompute the checksum so only the version differs.
	binary.BigEndian.PutUint32(mut[len(mut)-4:], crc32.ChecksumIEEE(mut[:len(mut)-4]))
	if _, err := Decode(mut); err == nil {
		t.Fatal("future format version decoded without error")
	}
}

func TestDiffReportsDivergence(t *testing.T) {
	a, b := synthDiGS(), synthDiGS()
	if d := Diff(a, b); len(d) != 0 {
		t.Fatalf("identical snapshots diff: %v", d)
	}
	b.MACs[2].CoinState++
	b.DiGS[1].Router.Rank = 99
	d := Diff(a, b)
	if len(d) != 2 {
		t.Fatalf("want 2 diff lines, got %d: %v", len(d), d)
	}
}

func TestHashConfigStable(t *testing.T) {
	a := HashConfig(mac.DefaultConfig(), core.DefaultConfig(1))
	b := HashConfig(mac.DefaultConfig(), core.DefaultConfig(1))
	if a != b {
		t.Fatal("same configs hash differently")
	}
	if a == HashConfig(mac.DefaultConfig(), core.DefaultConfig(2)) {
		t.Fatal("different configs hash equal")
	}
}

func TestCacheRoundTrip(t *testing.T) {
	c := &Cache{Dir: t.TempDir()}
	s := synthDiGS()
	k := Key{Topology: s.Meta.Topology, Protocol: s.Meta.Protocol, Seed: s.Meta.Seed,
		ConfigHash: s.Meta.ConfigHash, Label: s.Meta.Label}

	if got, err := c.Load(k); err != nil || got != nil {
		t.Fatalf("miss on empty cache: %v, %v", got, err)
	}
	if err := c.Store(k, s); err != nil {
		t.Fatalf("store: %v", err)
	}
	got, err := c.Load(k)
	if err != nil || got == nil {
		t.Fatalf("load after store: %v, %v", got, err)
	}
	if d := Diff(s, got); len(d) != 0 {
		t.Fatalf("cached snapshot differs: %v", d)
	}
	other := k
	other.Seed++
	if got, err := c.Load(other); err != nil || got != nil {
		t.Fatalf("different seed must miss: %v, %v", got, err)
	}
	if err := c.Store(other, s); err == nil {
		t.Fatal("store under mismatched key must fail")
	}
}
