package snapshot

import (
	"bytes"
	"testing"
)

// FuzzDecodeSnapshot hammers the decoder with arbitrary bytes: corrupt,
// truncated and version-skewed inputs must return an error, never panic,
// and anything that does decode must re-encode canonically (encode ∘
// decode is a fixed point).
func FuzzDecodeSnapshot(f *testing.F) {
	for _, synth := range []*Snapshot{synthDiGS(), synthOrchestra(), synthWHART()} {
		b, err := Encode(synth)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
		f.Add(b[:len(b)/2])
		mut := append([]byte(nil), b...)
		mut[len(mut)/3] ^= 0xFF
		f.Add(mut)
	}
	f.Add([]byte(magic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			return
		}
		b2, err := Encode(s)
		if err != nil {
			t.Fatalf("decoded snapshot fails to encode: %v", err)
		}
		s2, err := Decode(b2)
		if err != nil {
			t.Fatalf("re-encoded snapshot fails to decode: %v", err)
		}
		b3, err := Encode(s2)
		if err != nil {
			t.Fatalf("second re-encode: %v", err)
		}
		if !bytes.Equal(b2, b3) {
			t.Fatal("encode∘decode is not a fixed point")
		}
	})
}
