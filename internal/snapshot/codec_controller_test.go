package snapshot

import (
	"reflect"
	"testing"

	"github.com/digs-net/digs/internal/controller"
	"github.com/digs-net/digs/internal/mac"
	"github.com/digs-net/digs/internal/rpl"
	"github.com/digs-net/digs/internal/sim"
	"github.com/digs-net/digs/internal/topology"
	"github.com/digs-net/digs/internal/trickle"
)

func testMeta(proto string, nodes int) Meta {
	return Meta{
		Protocol: proto, Topology: "testbed-a", Nodes: nodes, NumAPs: 1,
		Seed: 7, Slot: 1234, ConfigHash: 99, Label: "t",
	}
}

func testNet(nodes int) *sim.NetworkState {
	return &sim.NetworkState{Seed: 7, ASN: 1234, Started: true, Failed: make([]bool, nodes+1)}
}

func testMACs(nodes int) []*mac.NodeState {
	out := make([]*mac.NodeState, nodes+1)
	for i := 1; i <= nodes; i++ {
		out[i] = &mac.NodeState{Synced: true, SyncedAt: int64(i)}
	}
	return out
}

// TestSDNStackStateRoundTrip drives every field of the SDN stack section
// through the wire format: controller-only tables, bounded control queues
// with source-routed frames, and the nil-vs-empty table distinctions.
func TestSDNStackStateRoundTrip(t *testing.T) {
	stacks := []*controller.SDNStackState{
		nil,
		{ // controller: collected reports, dissemination dedup, epochs
			Synced: true, OwnHops: 0,
			HasHops: true, HasRSS: true,
			Hops: []controller.SDNHopsState{{Node: 2, Hops: 1, Heard: 900}},
			RSS: []controller.SDNRSSState{{Node: 2, RSS: -61.25, Heard: 901}, {Node: 3, RSS: -80, Heard: 800}},
			NextMaintain: 1300, NextReport: 0,
			CfgEpoch: 5, Parent: 0, Children: []topology.NodeID{2, 3},
			CtrlQ: []controller.SDNCtrlState{
				{
					Frame: mac.FrameState{
						Kind: 9, Src: 1, Dst: 2, Origin: 3, BornASN: 1200,
						Route:   []topology.NodeID{2, 3},
						Payload: []byte{0, 5, 0, 0, 0, 2, 0},
					},
					Tries: 2, NotBefore: 1250,
				},
			},
			Reports: []controller.SDNReportState{
				{Node: 2, ASN: 1100, Neigh: []controller.SDNReportNeighbor{{Node: 1, RSS: -60}, {Node: 3, RSS: -72}}},
				{Node: 3, ASN: 1050, Neigh: nil},
			},
			Epoch: 5, EpochCount: 5, NextRecompute: 2700,
			LastSent: []controller.SDNSentState{
				{Node: 2, Parent: 1, Children: []topology.NodeID{3}},
				{Node: 3, Parent: 2},
			},
		},
		{ // routed switch: configured parent, pending relay, fresh tables
			Synced: true, Uplink: 1, OwnHops: 1,
			HasHops: true, Hops: []controller.SDNHopsState{{Node: 1, Hops: 0, Heard: 1000}},
			HasRSS:  true, RSS: []controller.SDNRSSState{{Node: 1, RSS: -55, Heard: 1000}},
			NextMaintain: 1290, NextReport: 2100,
			CfgEpoch: 5, Parent: 1, Children: []topology.NodeID{3},
			ConsecParentFails: 3,
			CtrlQ: []controller.SDNCtrlState{
				{Frame: mac.FrameState{Kind: 8, Src: 2, Dst: 1, Origin: 2, BornASN: 1280, Payload: []byte{1, 0, 0, 0, 1, 60}}},
			},
		},
		{ // never-synced node: nil tables survive as nil
			OwnHops: 255,
		},
	}
	snap := &Snapshot{
		Meta: testMeta(ProtocolSDN, 3),
		Net:  testNet(3),
		MACs: testMACs(3),
		SDN:  stacks,
	}
	wire, err := Encode(snap)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	back, err := Decode(wire)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(back.SDN, stacks) {
		t.Fatalf("sdn stacks did not round-trip:\n got %+v\nwant %+v", back.SDN, stacks)
	}
}

// TestAdaptiveStackStateRoundTrip drives the adaptive allocator's section:
// RPL/trickle state, the cell budget counters, and both caches with their
// nil-vs-empty distinction.
func TestAdaptiveStackStateRoundTrip(t *testing.T) {
	stacks := []*controller.AdaptiveStackState{
		nil,
		{
			Router:   rpl.RouterState{Rank: 4, Parent: 0},
			Trickle:  trickle.State{Interval: 100, Started: true},
			RNGDraws: 17,
			WantDIO:  true, NextMaintain: 500, NextSolicit: 700, Synced: true,
			TxCells: 2, IdleTicks: 1, FailsSinceTick: 3, SentSinceTick: 4,
			HasNeighborCells: true,
			NeighborCells:    []controller.AdaptiveCellState{{Node: 2, Cells: 2}, {Node: 3, Cells: 1}},
			HasChildCells:    true,
			ChildCells:       []controller.AdaptiveChildCellState{{Slot: 74, Node: 2}, {Slot: 111, Node: 3}},
		},
		{
			Router:  rpl.RouterState{Rank: 8, Parent: 1},
			Trickle: trickle.State{Interval: 200},
			// Nil caches and an empty-but-refreshed child cache both
			// round-trip distinctly.
			HasChildCells: true,
			TxCells:       1,
		},
	}
	snap := &Snapshot{
		Meta:     testMeta(ProtocolAdaptive, 2),
		Net:      testNet(2),
		MACs:     testMACs(2),
		Adaptive: stacks,
	}
	wire, err := Encode(snap)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	back, err := Decode(wire)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(back.Adaptive, stacks) {
		t.Fatalf("adaptive stacks did not round-trip:\n got %+v\nwant %+v", back.Adaptive, stacks)
	}
}

// TestValidateControllerSections rejects snapshots whose protocol and stack
// sections disagree.
func TestValidateControllerSections(t *testing.T) {
	snap := &Snapshot{
		Meta: testMeta(ProtocolSDN, 2),
		Net:  testNet(2),
		MACs: testMACs(2),
		SDN:  []*controller.SDNStackState{nil, {}}, // 2 entries for 2 nodes: wrong
	}
	if _, err := Encode(snap); err != nil {
		t.Fatalf("encode: %v", err)
	}
	wire, _ := Encode(snap)
	if _, err := Decode(wire); err == nil {
		t.Fatal("decode accepted an sdn snapshot with a short stack section")
	}
}
